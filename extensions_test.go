package repro

import (
	"math"
	"math/rand"
	"testing"
)

// Tests of the public API for the extension features (DESIGN.md §7).

func TestPublicSolveLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 120
	a := NewRandomMatrix(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	xTrue := NewRandomMatrix(n, 2, rng)
	b := NewMatrix(n, 2)
	DGEMM(NoTrans, NoTrans, n, 2, n, 1, a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)
	x, err := SolveLinear(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		for i := 0; i < n; i++ {
			if d := math.Abs(x.At(i, j) - xTrue.At(i, j)); d > 1e-9 {
				t.Fatalf("solution error %g at (%d,%d)", d, i, j)
			}
		}
	}
}

func TestPublicFactorLUEngineChoice(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	n := 96
	a := NewRandomMatrix(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	lu1, err := FactorLU(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	lu2, err := FactorLU(a, &LUOptions{Mul: StrassenEigenMultiplier{}, BlockSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	if d := lu1.Det() - lu2.Det(); math.Abs(d) > 1e-3*math.Abs(lu1.Det()) {
		t.Fatalf("determinants differ across engines: %v vs %v", lu1.Det(), lu2.Det())
	}
}

func TestPublicZGEFMM(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	n := 30
	a := NewZMatrix(n, n)
	b := NewZMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a.Set(i, j, complex(rng.Float64(), rng.Float64()))
			b.Set(i, j, complex(rng.Float64(), rng.Float64()))
		}
	}
	c1 := NewZMatrix(n, n)
	c2 := NewZMatrix(n, n)
	alpha := complex(1, -0.5)
	ZGEMM(ZNoTrans, ZConjTrans, n, n, n, alpha, a, b, 0, c1)
	ZGEFMM(nil, ZNoTrans, ZConjTrans, n, n, n, alpha, a, b, 0, c2)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := c1.At(i, j) - c2.At(i, j)
			if math.Hypot(real(d), imag(d)) > 1e-10 {
				t.Fatalf("complex mismatch at (%d,%d): %v", i, j, d)
			}
		}
	}
}

func TestPublicCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	n := 60
	g := NewRandomMatrix(n, n, rng)
	a := NewMatrix(n, n)
	DGEMM(Trans, NoTrans, n, n, n, 1, g.Data, g.Stride, g.Data, g.Stride, 0, a.Data, a.Stride)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	ch, err := FactorCholesky(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := func() float64 {
		back := ch.Reconstruct()
		var worst float64
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				if v := math.Abs(back.At(i, j) - a.At(i, j)); v > worst {
					worst = v
				}
			}
		}
		return worst
	}(); d > 1e-9 {
		t.Fatalf("Cholesky reconstruction off by %g", d)
	}
}

func TestPublicQRLeastSquares(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	m, n := 50, 20
	a := NewRandomMatrix(m, n, rng)
	xTrue := NewRandomMatrix(n, 1, rng)
	b := NewMatrix(m, 1)
	DGEMM(NoTrans, NoTrans, m, 1, n, 1, a.Data, a.Stride, xTrue.Data, xTrue.Stride, 0, b.Data, b.Stride)
	f, err := FactorQR(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	x, err := f.LeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if d := math.Abs(x.At(i, 0) - xTrue.At(i, 0)); d > 1e-9 {
			t.Fatalf("LS solution error %g at %d", d, i)
		}
	}
}

func TestPublicFastLevel3(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	n, k := 40, 24
	a := NewRandomMatrix(n, k, rng)
	c1 := NewMatrix(n, n)
	c2 := NewMatrix(n, n)
	// Reference via DGEMM full product, compare lower triangle.
	DGEMM(NoTrans, Trans, n, n, k, 1, a.Data, a.Stride, a.Data, a.Stride, 0, c1.Data, c1.Stride)
	FastDsyrk('L', NoTrans, n, k, 1, a.Data, a.Stride, 0, c2.Data, c2.Stride)
	for j := 0; j < n; j++ {
		for i := j; i < n; i++ {
			if d := math.Abs(c1.At(i, j) - c2.At(i, j)); d > 1e-11 {
				t.Fatalf("FastDsyrk mismatch at (%d,%d): %g", i, j, d)
			}
		}
	}
	// FastDtrsm round trip: solve L·X = B after forming B = L·X.
	l := NewMatrix(n, n)
	for j := 0; j < n; j++ {
		l.Set(j, j, 2+rng.Float64())
		for i := j + 1; i < n; i++ {
			l.Set(i, j, rng.Float64())
		}
	}
	x := NewRandomMatrix(n, 3, rng)
	b := NewMatrix(n, 3)
	DGEMM(NoTrans, NoTrans, n, 3, n, 1, l.Data, l.Stride, x.Data, x.Stride, 0, b.Data, b.Stride)
	FastDtrsm('L', NoTrans, 'N', n, 3, 1, l.Data, l.Stride, b.Data, b.Stride)
	if !b.EqualApprox(x, 1e-9) {
		t.Fatal("FastDtrsm solve wrong")
	}
}

func TestPublicParallelConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	m := 128
	a := NewRandomMatrix(m, m, rng)
	b := NewRandomMatrix(m, m, rng)
	c1 := NewMatrix(m, m)
	c2 := NewMatrix(m, m)
	Multiply(nil, c1, NoTrans, NoTrans, 1, a, b, 0)
	cfg := DefaultConfig(nil)
	cfg.Parallel = 4
	cfg.ParallelLevels = 2
	Multiply(cfg, c2, NoTrans, NoTrans, 1, a, b, 0)
	if !c1.EqualApprox(c2, 1e-10) {
		t.Fatal("parallel config changes the result")
	}
}
