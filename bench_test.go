package repro

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (each regenerates the experiment at reduced "quick" scale; run
// cmd/dgefmm-bench for the full-scale console reports), plus direct
// microbenchmarks of the kernels and of DGEFMM itself.
//
// Run with: go test -bench=. -benchmem

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/experiments"
	"repro/internal/strassen"
)

var quickScale = experiments.Scale{Quick: true}

// ---- Direct multiply benchmarks --------------------------------------

func benchSizes() []int { return []int{128, 256, 512} }

func BenchmarkDGEMMKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, name := range blas.KernelNames() {
		kern := blas.KernelByName(name)
		for _, m := range benchSizes() {
			a := NewRandomMatrix(m, m, rng)
			bb := NewRandomMatrix(m, m, rng)
			c := NewMatrix(m, m)
			b.Run(fmt.Sprintf("%s/m=%d", name, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					blas.DgemmKernel(kern, blas.NoTrans, blas.NoTrans, m, m, m, 1,
						a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
				}
				b.SetBytes(int64(2 * m * m * m)) // flops as "bytes": MFLOPS ∝ MB/s
			})
		}
	}
}

func BenchmarkDGEFMM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, m := range benchSizes() {
		a := NewRandomMatrix(m, m, rng)
		bb := NewRandomMatrix(m, m, rng)
		c := NewMatrix(m, m)
		for _, beta := range []float64{0, 0.5} {
			b.Run(fmt.Sprintf("m=%d/beta=%v", m, beta), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					DGEFMM(nil, NoTrans, NoTrans, m, m, m, 1,
						a.Data, a.Stride, bb.Data, bb.Stride, beta, c.Data, c.Stride)
				}
				b.SetBytes(int64(2 * m * m * m))
			})
		}
	}
}

func BenchmarkDGEFMMOddSizes(b *testing.B) {
	// The dynamic-peeling worst case: odd at every recursion level.
	rng := rand.New(rand.NewSource(3))
	for _, m := range []int{127, 255, 511} {
		a := NewRandomMatrix(m, m, rng)
		bb := NewRandomMatrix(m, m, rng)
		c := NewMatrix(m, m)
		b.Run(fmt.Sprintf("m=%d", m), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DGEFMM(nil, NoTrans, NoTrans, m, m, m, 1,
					a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
			}
			b.SetBytes(int64(2 * m * m * m))
		})
	}
}

func BenchmarkDGEFMMRectangular(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	for _, dims := range [][3]int{{64, 512, 512}, {512, 64, 512}, {512, 512, 64}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := NewRandomMatrix(m, k, rng)
		bb := NewRandomMatrix(k, n, rng)
		c := NewMatrix(m, n)
		b.Run(fmt.Sprintf("m=%d,k=%d,n=%d", m, k, n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DGEFMM(nil, NoTrans, NoTrans, m, n, k, 1,
					a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
			}
			b.SetBytes(int64(2 * m * k * n))
		})
	}
}

// ---- One benchmark per paper table/figure -----------------------------

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table1(io.Discard, 128, quickScale)
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure2(io.Discard, "blocked", 0, 0, 0, quickScale)
	}
}

func BenchmarkTable2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table2(io.Discard, quickScale)
	}
}

func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table3(io.Discard, quickScale)
	}
}

func BenchmarkTable4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table4(io.Discard, 4, quickScale)
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table5(io.Discard, 2, quickScale)
	}
}

func BenchmarkFigure3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure3(io.Discard, quickScale)
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure4(io.Discard, quickScale)
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure5(io.Discard, quickScale)
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Figure6(io.Discard, 4, quickScale)
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Table6(io.Discard, 96, quickScale)
	}
}

func BenchmarkModel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Model(io.Discard, quickScale)
	}
}

// ---- Ablation benchmarks (DESIGN.md §5) -------------------------------

func BenchmarkAblationSchedules(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationSchedules(io.Discard, quickScale)
	}
}

func BenchmarkAblationOddHandling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationOddHandling(io.Discard, quickScale)
	}
}

func BenchmarkAblationVariant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationVariant(io.Discard, quickScale)
	}
}

func BenchmarkAblationCutoffs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationCutoffs(io.Discard, quickScale)
	}
}

func BenchmarkKernels(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationKernels(io.Discard, quickScale)
	}
}

func BenchmarkAblationPeeling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationPeeling(io.Discard, quickScale)
	}
}

func BenchmarkAblationParallel(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.AblationParallel(io.Discard, quickScale)
	}
}

// ---- Extension benchmarks (DESIGN.md §7) -------------------------------

func BenchmarkLU(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	n := 512
	a := NewRandomMatrix(n, n, rng)
	for i := 0; i < n; i++ {
		a.Set(i, i, a.At(i, i)+float64(n))
	}
	for _, eng := range []struct {
		name string
		opts *LUOptions
	}{
		{"dgemm", &LUOptions{BlockSize: 128}},
		{"dgefmm", &LUOptions{BlockSize: 128, Mul: StrassenEigenMultiplier{}}},
	} {
		b.Run(eng.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := FactorLU(a, eng.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(2 * n * n * n / 3)) // LU flops
		})
	}
}

func BenchmarkZGEFMM(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	n := 192
	za := NewZMatrix(n, n)
	zb := NewZMatrix(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			za.Set(i, j, complex(rng.Float64(), rng.Float64()))
			zb.Set(i, j, complex(rng.Float64(), rng.Float64()))
		}
	}
	zc := NewZMatrix(n, n)
	b.Run("zgemm-4m", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ZGEMM(ZNoTrans, ZNoTrans, n, n, n, 1, za, zb, 0, zc)
		}
	})
	b.Run("zgefmm-3m", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ZGEFMM(nil, ZNoTrans, ZNoTrans, n, n, n, 1, za, zb, 0, zc)
		}
	})
}

func BenchmarkParallelStrassen(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := 512
	a := NewRandomMatrix(m, m, rng)
	bb := NewRandomMatrix(m, m, rng)
	c := NewMatrix(m, m)
	for _, par := range []int{0, 2, 4, 7} {
		cfg := DefaultConfig(nil)
		cfg.Parallel = par
		b.Run(fmt.Sprintf("products=%d", par), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DGEFMM(cfg, NoTrans, NoTrans, m, m, m, 1,
					a.Data, a.Stride, bb.Data, bb.Stride, 0, c.Data, c.Stride)
			}
			b.SetBytes(int64(2 * m * m * m))
		})
	}
}

// ---- Schedule-level microbenchmarks ------------------------------------

func BenchmarkSchedules(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	m := 256
	a := NewRandomMatrix(m, m, rng)
	bb := NewRandomMatrix(m, m, rng)
	c := NewMatrix(m, m)
	for _, cfg := range []struct {
		name  string
		sched strassen.Schedule
		beta  float64
	}{
		{"strassen1/beta=0", strassen.ScheduleStrassen1, 0},
		{"strassen2/beta=0", strassen.ScheduleStrassen2, 0},
		{"strassen2/beta=1", strassen.ScheduleStrassen2, 1},
		{"original/beta=0", strassen.ScheduleOriginal, 0},
	} {
		conf := DefaultConfig(nil)
		conf.Schedule = cfg.sched
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DGEFMM(conf, NoTrans, NoTrans, m, m, m, 1,
					a.Data, a.Stride, bb.Data, bb.Stride, cfg.beta, c.Data, c.Stride)
			}
			b.SetBytes(int64(2 * m * m * m))
		})
	}
}

func BenchmarkStability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Stability(io.Discard, 0, 0, quickScale)
	}
}
