package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stability"
	"repro/internal/strassen"
)

func TestPublicDGEFMMMatchesDGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{64, 64, 64}, {65, 33, 97}, {10, 200, 30}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := NewRandomMatrix(m, k, rng)
		b := NewRandomMatrix(k, n, rng)
		c1 := NewRandomMatrix(m, n, rng)
		c2 := c1.Clone()
		DGEMM(NoTrans, NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c1.Data, c1.Stride)
		cfg := DefaultConfig(KernelByName("naive"))
		cfg.Criterion = SimpleCriterion{Tau: 16}
		DGEFMM(cfg, NoTrans, NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c2.Data, c2.Stride)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if d := math.Abs(c1.At(i, j) - c2.At(i, j)); d > 1e-10 {
					t.Fatalf("dims=%v (%d,%d): |Δ|=%g", dims, i, j, d)
				}
			}
		}
	}
}

func TestPublicMultiplyConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewRandomMatrix(20, 30, rng)
	b := NewRandomMatrix(30, 10, rng)
	c := NewMatrix(20, 10)
	Multiply(nil, c, NoTrans, NoTrans, 2, a, b, 0)
	// Check one entry against a dot product.
	var want float64
	for l := 0; l < 30; l++ {
		want += a.At(3, l) * b.At(l, 7)
	}
	if d := math.Abs(c.At(3, 7) - 2*want); d > 1e-12 {
		t.Fatalf("entry mismatch: %g", d)
	}
}

func TestPublicBaselinesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := 40
	a := NewRandomMatrix(m, m, rng)
	b := NewRandomMatrix(m, m, rng)
	ref := NewMatrix(m, m)
	DGEMM(NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, ref.Data, ref.Stride)

	c := NewMatrix(m, m)
	DGEMMS(NoTrans, NoTrans, m, m, m, a.Data, a.Stride, b.Data, b.Stride, c.Data, c.Stride)
	if !c.EqualApprox(ref, 1e-10) {
		t.Fatal("DGEMMS disagrees")
	}
	c.Zero()
	SGEMMS(NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if !c.EqualApprox(ref, 1e-10) {
		t.Fatal("SGEMMS disagrees")
	}
	c.Zero()
	DGEMMW(NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if !c.EqualApprox(ref, 1e-10) {
		t.Fatal("DGEMMW disagrees")
	}
}

func TestPublicEigenSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewRandomSymmetric(40, rng)
	res, err := SolveSymmetric(a, &EigenOptions{BaseSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 40 || res.Vectors.Rows != 40 {
		t.Fatal("result shape")
	}
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] < res.Values[i-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestPublicMemoryTrackerPlumbing(t *testing.T) {
	if sel := (&Config{}).AlgoSelection(); sel != "default" {
		t.Skipf("DGEFMM_ALGO pins %q; the 2m\u00b2/3 bound is the Winograd schedules'", sel)
	}
	rng := rand.New(rand.NewSource(5))
	tr := NewMemoryTracker()
	cfg := DefaultConfig(KernelByName("naive"))
	cfg.Criterion = SimpleCriterion{Tau: 8}
	cfg.Tracker = tr
	m := 64
	a := NewRandomMatrix(m, m, rng)
	b := NewRandomMatrix(m, m, rng)
	c := NewMatrix(m, m)
	DGEFMM(cfg, NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if tr.Peak() == 0 {
		t.Fatal("tracker saw no allocations")
	}
	if tr.Peak() > int64(2*m*m/3) {
		t.Fatalf("peak %d exceeds the paper's 2m²/3 bound", tr.Peak())
	}
}

func TestSetDefaultParamsAffectsDefaultConfig(t *testing.T) {
	old := strassen.DefaultParams("vector")
	defer SetDefaultParams("vector", old)
	SetDefaultParams("vector", Params{Tau: 123, TauM: 1, TauK: 2, TauN: 3})
	cfg := DefaultConfig(KernelByName("vector"))
	h, ok := cfg.Criterion.(HybridCriterion)
	if !ok {
		t.Fatalf("default criterion is %T, want Hybrid", cfg.Criterion)
	}
	if h.Tau != 123 {
		t.Fatalf("params not propagated: %+v", h)
	}
}

func TestPublicBatchedMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	cfg := DefaultConfig(KernelByName("naive"))
	cfg.Criterion = SimpleCriterion{Tau: 8}
	var calls []BatchCall
	var got, want []*Matrix
	for _, dims := range [][3]int{{48, 48, 48}, {65, 33, 97}, {48, 48, 48}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := NewRandomMatrix(m, k, rng)
		b := NewRandomMatrix(k, n, rng)
		c0 := NewRandomMatrix(m, n, rng)
		cb, cs := c0.Clone(), c0.Clone()
		calls = append(calls, NewBatchCall(cb, NoTrans, NoTrans, 1.5, a, b, 0.5))
		Multiply(cfg, cs, NoTrans, NoTrans, 1.5, a, b, 0.5)
		got, want = append(got, cb), append(want, cs)
	}
	if err := BatchedMultiply(cfg, calls); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		for j := 0; j < got[i].Cols; j++ {
			for r := 0; r < got[i].Rows; r++ {
				if got[i].At(r, j) != want[i].At(r, j) {
					t.Fatalf("call %d: batched result differs from Multiply at (%d,%d)", i, r, j)
				}
			}
		}
	}

	// The persistent-pool form with stats.
	pool := NewBatchPool(&BatchOptions{Workers: 2, Config: cfg})
	defer pool.Close()
	if err := pool.Execute(calls); err != nil {
		t.Fatal(err)
	}
	s := pool.Stats()
	if s.Calls != int64(len(calls)) || s.Workers != 2 || s.Buckets == 0 {
		t.Fatalf("unexpected pool stats: %+v", s)
	}
}

func TestKernelByNameUnknown(t *testing.T) {
	if KernelByName("no-such-kernel") != nil {
		t.Fatal("unknown kernel should be nil")
	}
	for _, name := range []string{"packed", "blocked", "vector", "naive"} {
		if KernelByName(name) == nil {
			t.Fatalf("kernel %q missing", name)
		}
	}
}

// TestPackedKernelCompatMatchesDGEMM pins the public compat contract: a
// DGEFMM run below the cutoff on PackedKernel(true) is bit-for-bit the
// DGEMM result.
func TestPackedKernelCompatMatchesDGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n = 63 // below every cutoff → one base-case kernel call
	a := NewRandomMatrix(n, n, rng)
	b := NewRandomMatrix(n, n, rng)
	want := NewMatrix(n, n)
	got := NewMatrix(n, n)
	DGEMM(NoTrans, NoTrans, n, n, n, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0, want.Data, want.Stride)
	cfg := DefaultConfig(PackedKernel(true))
	DGEFMM(cfg, NoTrans, NoTrans, n, n, n, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0, got.Data, got.Stride)
	for i := range want.Data {
		if math.Float64bits(want.Data[i]) != math.Float64bits(got.Data[i]) {
			t.Fatalf("element %d: %v != %v (compat mode must be bit-identical)", i, got.Data[i], want.Data[i])
		}
	}
}

// fuzzScalar folds an arbitrary fuzzed float64 into a well-behaved scalar in
// [-2, 2] (NaN/Inf become 1) so α/β stress the accumulation paths without
// making the error bound vacuous.
func fuzzScalar(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 1
	}
	return math.Remainder(x, 4)
}

// fuzzOracle is the naive O(mnk) reference for C ← α·op(A)·op(B) + β·C₀.
func fuzzOracle(transA, transB Transpose, alpha float64, a, b *Matrix, beta float64, c0 *Matrix) *Matrix {
	m, n := c0.Rows, c0.Cols
	k := a.Cols
	if transA == Trans {
		k = a.Rows
	}
	opA := func(i, l int) float64 {
		if transA == Trans {
			return a.At(l, i)
		}
		return a.At(i, l)
	}
	opB := func(l, j int) float64 {
		if transB == Trans {
			return b.At(j, l)
		}
		return b.At(l, j)
	}
	out := NewMatrix(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum float64
			for l := 0; l < k; l++ {
				sum += opA(i, l) * opB(l, j)
			}
			out.Set(i, j, alpha*sum+beta*c0.At(i, j))
		}
	}
	return out
}

// FuzzDGEFMM is the differential fuzz harness for the headline export: for
// arbitrary (including odd and rectangular) shapes, all four op(A)/op(B)
// combinations and random α/β, DGEFMM must stay within the Brent/Higham
// forward-error bound of the naive triple-loop oracle. The seed corpus in
// testdata/fuzz/FuzzDGEFMM pins odd sizes, transposes and β ≠ 0.
func FuzzDGEFMM(f *testing.F) {
	f.Add(int64(1), byte(31), byte(31), byte(31), false, false, 1.0, 0.0)
	f.Add(int64(2), byte(64), byte(16), byte(40), true, false, -1.5, 0.5)
	f.Add(int64(3), byte(9), byte(63), byte(27), false, true, 2.0, -1.0)
	f.Add(int64(4), byte(33), byte(33), byte(33), true, true, 0.5, 1.0)
	f.Add(int64(5), byte(1), byte(7), byte(2), false, false, 3.0, 0.25)
	f.Fuzz(func(t *testing.T, seed int64, mb, nb, kb byte, ta, tb bool, alpha, beta float64) {
		m, n, k := int(mb)%64+1, int(nb)%64+1, int(kb)%64+1
		alpha, beta = fuzzScalar(alpha), fuzzScalar(beta)
		transA, transB := NoTrans, NoTrans
		if ta {
			transA = Trans
		}
		if tb {
			transB = Trans
		}
		rng := rand.New(rand.NewSource(seed))
		rowsA, colsA := m, k
		if ta {
			rowsA, colsA = k, m
		}
		rowsB, colsB := k, n
		if tb {
			rowsB, colsB = n, k
		}
		a := NewRandomMatrix(rowsA, colsA, rng)
		b := NewRandomMatrix(rowsB, colsB, rng)
		c0 := NewRandomMatrix(m, n, rng)
		want := fuzzOracle(transA, transB, alpha, a, b, beta, c0)

		cfg := DefaultConfig(KernelByName("naive"))
		cfg.Criterion = SimpleCriterion{Tau: 8}
		c := c0.Clone()
		DGEFMM(cfg, transA, transB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)

		// Recursion depth under Simple{Tau: 8}: halve until a dimension hits τ.
		depth := 0
		for mm, kk, nn := m, k, n; mm > 8 && kk > 8 && nn > 8; depth++ {
			mm, kk, nn = mm/2, kk/2, nn/2
		}
		// Higham §23.2.2: error grows like 6^d·k·u·‖A‖‖B‖; entries are in
		// [-1, 1) and α, β in [-2, 2], so scale by the scalars and allow a
		// generous constant — real bugs produce O(1) errors, not O(100u).
		tol := stability.Unit * stability.HighamGrowth(depth) * float64(k+8) *
			(math.Abs(alpha) + math.Abs(beta) + 1) * 64
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if d := math.Abs(c.At(i, j) - want.At(i, j)); !(d <= tol) {
					t.Fatalf("m=%d n=%d k=%d ta=%v tb=%v α=%g β=%g: |Δ|=%g at (%d,%d) exceeds bound %g",
						m, n, k, ta, tb, alpha, beta, d, i, j, tol)
				}
			}
		}
	})
}
