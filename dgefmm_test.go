package repro

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/strassen"
)

func TestPublicDGEFMMMatchesDGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, dims := range [][3]int{{64, 64, 64}, {65, 33, 97}, {10, 200, 30}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := NewRandomMatrix(m, k, rng)
		b := NewRandomMatrix(k, n, rng)
		c1 := NewRandomMatrix(m, n, rng)
		c2 := c1.Clone()
		DGEMM(NoTrans, NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c1.Data, c1.Stride)
		cfg := DefaultConfig(KernelByName("naive"))
		cfg.Criterion = SimpleCriterion{Tau: 16}
		DGEFMM(cfg, NoTrans, NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c2.Data, c2.Stride)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if d := math.Abs(c1.At(i, j) - c2.At(i, j)); d > 1e-10 {
					t.Fatalf("dims=%v (%d,%d): |Δ|=%g", dims, i, j, d)
				}
			}
		}
	}
}

func TestPublicMultiplyConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewRandomMatrix(20, 30, rng)
	b := NewRandomMatrix(30, 10, rng)
	c := NewMatrix(20, 10)
	Multiply(nil, c, NoTrans, NoTrans, 2, a, b, 0)
	// Check one entry against a dot product.
	var want float64
	for l := 0; l < 30; l++ {
		want += a.At(3, l) * b.At(l, 7)
	}
	if d := math.Abs(c.At(3, 7) - 2*want); d > 1e-12 {
		t.Fatalf("entry mismatch: %g", d)
	}
}

func TestPublicBaselinesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := 40
	a := NewRandomMatrix(m, m, rng)
	b := NewRandomMatrix(m, m, rng)
	ref := NewMatrix(m, m)
	DGEMM(NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, ref.Data, ref.Stride)

	c := NewMatrix(m, m)
	DGEMMS(NoTrans, NoTrans, m, m, m, a.Data, a.Stride, b.Data, b.Stride, c.Data, c.Stride)
	if !c.EqualApprox(ref, 1e-10) {
		t.Fatal("DGEMMS disagrees")
	}
	c.Zero()
	SGEMMS(NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if !c.EqualApprox(ref, 1e-10) {
		t.Fatal("SGEMMS disagrees")
	}
	c.Zero()
	DGEMMW(NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if !c.EqualApprox(ref, 1e-10) {
		t.Fatal("DGEMMW disagrees")
	}
}

func TestPublicEigenSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := NewRandomSymmetric(40, rng)
	res, err := SolveSymmetric(a, &EigenOptions{BaseSize: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 40 || res.Vectors.Rows != 40 {
		t.Fatal("result shape")
	}
	for i := 1; i < len(res.Values); i++ {
		if res.Values[i] < res.Values[i-1] {
			t.Fatal("eigenvalues not sorted")
		}
	}
}

func TestPublicMemoryTrackerPlumbing(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tr := NewMemoryTracker()
	cfg := DefaultConfig(KernelByName("naive"))
	cfg.Criterion = SimpleCriterion{Tau: 8}
	cfg.Tracker = tr
	m := 64
	a := NewRandomMatrix(m, m, rng)
	b := NewRandomMatrix(m, m, rng)
	c := NewMatrix(m, m)
	DGEFMM(cfg, NoTrans, NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if tr.Peak() == 0 {
		t.Fatal("tracker saw no allocations")
	}
	if tr.Peak() > int64(2*m*m/3) {
		t.Fatalf("peak %d exceeds the paper's 2m²/3 bound", tr.Peak())
	}
}

func TestSetDefaultParamsAffectsDefaultConfig(t *testing.T) {
	old := strassen.DefaultParams("vector")
	defer SetDefaultParams("vector", old)
	SetDefaultParams("vector", Params{Tau: 123, TauM: 1, TauK: 2, TauN: 3})
	cfg := DefaultConfig(KernelByName("vector"))
	h, ok := cfg.Criterion.(HybridCriterion)
	if !ok {
		t.Fatalf("default criterion is %T, want Hybrid", cfg.Criterion)
	}
	if h.Tau != 123 {
		t.Fatalf("params not propagated: %+v", h)
	}
}

func TestKernelByNameUnknown(t *testing.T) {
	if KernelByName("no-such-kernel") != nil {
		t.Fatal("unknown kernel should be nil")
	}
	for _, name := range []string{"blocked", "vector", "naive"} {
		if KernelByName(name) == nil {
			t.Fatalf("kernel %q missing", name)
		}
	}
}
