// Command calibrate reruns the paper's Section 4.2 cutoff measurement on
// the current machine: the square crossover sweep (Figure 2 / Table 2) and
// the three rectangular sweeps with two dimensions held large (Table 3),
// for one or all DGEMM kernels. The output is the parameter set to feed to
// strassen.SetDefaultParams (or to hardcode as this machine's defaults).
//
// A second calibration mode, -blocks, tunes the packed kernel's cache
// blocking instead of the Strassen cutoff: it sweeps (MC, KC) around the
// cache-derived analytic seeds and prints the kernel.SetDefaultBlocks call
// that installs the winner.
//
// Usage:
//
//	calibrate                        # calibrate all kernels' cutoffs
//	calibrate -kernel packed -v      # one kernel, with the ratio curve
//	calibrate -sq-hi 512 -fixed 1024 # wider sweeps (slower, finer)
//	calibrate -blocks                # tune the packed kernel's MC/KC/NC
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/blas"
	"repro/internal/cli"
	"repro/internal/cutoff"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/strassen"
)

func main() {
	var (
		kernName   = flag.String("kernel", "", "kernel to calibrate (packed|blocked|vector|naive); empty = all")
		blocks     = flag.Bool("blocks", false, "tune the packed kernel's cache blocking instead of the cutoff")
		blockN     = flag.Int("block-n", 512, "-blocks: problem order timed per candidate")
		blockReps  = flag.Int("block-reps", 3, "-blocks: timing repetitions per candidate (best kept)")
		sqLo       = flag.Int("sq-lo", 16, "square sweep: low order")
		sqHi       = flag.Int("sq-hi", 256, "square sweep: high order")
		sqStep     = flag.Int("sq-step", 8, "square sweep: step")
		rectLo     = flag.Int("rect-lo", 8, "rectangular sweep: low value")
		rectHi     = flag.Int("rect-hi", 128, "rectangular sweep: high value")
		rectSt     = flag.Int("rect-step", 4, "rectangular sweep: step")
		fixed      = flag.Int("fixed", 512, "rectangular sweep: the two fixed (large) dimensions")
		coresFlag  = flag.String("cores", "", "comma-separated worker counts for the parallel crossover sweep (or \"auto\" = powers of two up to GOMAXPROCS); rows install under \"<kernel>@<cores>\"")
		seed       = flag.Int64("seed", 1, "RNG seed for the test matrices")
		verbose    = flag.Bool("v", false, "print the full square ratio curve (Figure 2 data)")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file when done")
		httpAddr   = flag.String("http", "", "serve live expvar/pprof/metrics endpoints on this address (e.g. :6060)")
		fusedFlag  = cli.FusedFlag(nil)
		algoFlag   = cli.AlgoFlag(nil)
		logLevel   = cli.LogLevelFlag(nil)
	)
	flag.Parse()
	cli.InitLogging(*logLevel)

	fusedMode, err := strassen.ParseFusedMode(*fusedFlag)
	if err != nil {
		slog.Error("bad -fused", "err", err)
		os.Exit(2)
	}

	coreCounts, err := parseCores(*coresFlag)
	if err != nil {
		slog.Error("bad -cores", "err", err)
		os.Exit(2)
	}

	// The sweeps build their one-level configurations internally, so an
	// explicit -algo propagates through the DGEFMM_ALGO override; the
	// resulting parameters install under the "<kernel>/<algo>" key the
	// per-algorithm cutoff resolution reads.
	algoSel, err := strassen.ParseAlgo(*algoFlag)
	if err != nil {
		slog.Error("bad -algo", "err", err)
		os.Exit(2)
	}
	if algoSel != "" {
		os.Setenv("DGEFMM_ALGO", algoSel)
	}
	algoName := (&strassen.Config{Algo: *algoFlag}).AlgoSelection()
	slog.Info("fast algorithm", "selection", algoName)

	if *blocks {
		calibrateBlocks(*blockN, *blockReps, *seed)
		return
	}

	// The sweeps build their one-level configurations internally, so the
	// collector reaches them through the package's config hook. Note the
	// tracing instruments only the DGEFMM side of each timed pair, so the
	// measured ratios shift by the (small) tracing overhead — acceptable for
	// an opt-in diagnostic view of a calibration run.
	var col *obs.Collector
	if *metricsOut != "" || *httpAddr != "" {
		col = obs.NewCollector()
		cutoff.SetConfigHook(func(cfg *strassen.Config) { col.Attach(cfg) })
	}
	if *httpAddr != "" {
		_, bound, err := obs.StartDebugServer(*httpAddr, col)
		if err != nil {
			slog.Error("start debug server", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		slog.Info("observability endpoints up", "url", "http://"+bound,
			"paths", "/metrics /openmetrics /debug/vars /debug/pprof/")
	}

	names := blas.KernelNames()
	if *kernName != "" {
		if blas.KernelByName(*kernName) == nil {
			slog.Error("unknown kernel", "kernel", *kernName, "known", blas.KernelNames())
			os.Exit(2)
		}
		names = []string{*kernName}
	}

	for _, name := range names {
		kern := blas.KernelByName(name)
		fmt.Printf("kernel %s:\n", name)
		tau, pts := cutoff.SquareCutoff(kern, *sqLo, *sqHi, *sqStep, *seed)
		if *verbose {
			for _, p := range pts {
				marker := ""
				if p.Ratio > 1 {
					marker = "  <- Strassen wins"
				}
				fmt.Printf("  m=%4d  DGEMM/DGEFMM(1 level) = %.4f%s\n", p.Dim, p.Ratio, marker)
			}
		}
		p := cutoff.RectParams(kern, *rectLo, *rectHi, *rectSt, *fixed, *seed+1)
		p.Tau = tau
		// Calibrating a non-default table installs its own τ row under
		// "<kernel>/<algo>" (auto calibrates whichever tables the sweep
		// shapes select, so it keeps the plain kernel key).
		paramsKey := name
		if algoName != "default" && algoName != strassen.AlgoAuto {
			paramsKey = name + "/" + algoName
		}
		if col != nil {
			col.Registry.Gauge("calibrate." + paramsKey + ".tau").Set(int64(p.Tau))
			col.Registry.Gauge("calibrate." + paramsKey + ".tau_m").Set(int64(p.TauM))
			col.Registry.Gauge("calibrate." + paramsKey + ".tau_k").Set(int64(p.TauK))
			col.Registry.Gauge("calibrate." + paramsKey + ".tau_n").Set(int64(p.TauN))
		}
		fmt.Printf("  measured: τ=%d τm=%d τk=%d τn=%d (fixed dims %d)\n", p.Tau, p.TauM, p.TauK, p.TauN, *fixed)
		fmt.Printf("  apply with: strassen.SetDefaultParams(%q, strassen.Params{Tau: %d, TauM: %d, TauK: %d, TauN: %d})\n",
			paramsKey, p.Tau, p.TauM, p.TauK, p.TauN)
		cur := strassen.DefaultParams(paramsKey)
		fmt.Printf("  current defaults: τ=%d τm=%d τk=%d τn=%d\n", cur.Tau, cur.TauM, cur.TauK, cur.TauN)

		// The -cores sweep re-measures the square crossover with both arms
		// parallel — the threaded kernel against a one-level seven-product
		// DAG on a c-worker runtime — because τ is a function of the worker
		// count: the DAG arm's speedup saturates at 7 tasks while the
		// threaded kernel's keeps scaling, so the crossover moves with c.
		// Rows install under "<kernel>@<cores>"; the rectangular parameters
		// are carried over from the sequential sweep above (the thin-
		// dimension crossovers are kernel-bound, not schedule-bound).
		for _, c := range coreCounts {
			if c < 2 {
				continue // the sequential row above covers one core
			}
			ctau, cpts := cutoff.SquareCutoffCores(kern, c, *sqLo, *sqHi, *sqStep, *seed+int64(c))
			if *verbose {
				for _, pt := range cpts {
					marker := ""
					if pt.Ratio > 1 {
						marker = "  <- parallel Strassen wins"
					}
					fmt.Printf("  m=%4d  DGEMM(%d cores)/DGEFMM(1 level, %d workers) = %.4f%s\n", pt.Dim, c, c, pt.Ratio, marker)
				}
			}
			coresKey := fmt.Sprintf("%s@%d", name, c)
			if algoName != "default" && algoName != strassen.AlgoAuto {
				coresKey += "/" + algoName
			}
			if col != nil {
				col.Registry.Gauge("calibrate." + coresKey + ".tau").Set(int64(ctau))
			}
			fmt.Printf("  @%d cores: τ=%d (τm/τk/τn carried from the sequential sweep)\n", c, ctau)
			fmt.Printf("  apply with: strassen.SetDefaultParams(%q, strassen.Params{Tau: %d, TauM: %d, TauK: %d, TauN: %d})\n",
				coresKey, ctau, p.TauM, p.TauK, p.TauN)
		}

		// Kernels with fused packing/write-out hooks get a second sweep with
		// the one-level arm running fused; its (lower) crossover installs
		// under the "<kernel>+fused" parameter key.
		fusedCapable := (&strassen.Config{Kernel: kern, Fused: fusedMode}).FusedActive()
		slog.Info("fused winograd", "kernel", name, "mode", fusedMode, "sweep", fusedCapable)
		if fusedCapable {
			ftau, fpts := cutoff.SquareCutoffFused(kern, *sqLo, *sqHi, *sqStep, *seed)
			if *verbose {
				for _, p := range fpts {
					marker := ""
					if p.Ratio > 1 {
						marker = "  <- fused Strassen wins"
					}
					fmt.Printf("  m=%4d  DGEMM/DGEFMM(1 fused level) = %.4f%s\n", p.Dim, p.Ratio, marker)
				}
			}
			fp := cutoff.RectParamsFused(kern, *rectLo, *rectHi, *rectSt, *fixed, *seed+1)
			fp.Tau = ftau
			if col != nil {
				col.Registry.Gauge("calibrate." + name + "+fused.tau").Set(int64(fp.Tau))
				col.Registry.Gauge("calibrate." + name + "+fused.tau_m").Set(int64(fp.TauM))
				col.Registry.Gauge("calibrate." + name + "+fused.tau_k").Set(int64(fp.TauK))
				col.Registry.Gauge("calibrate." + name + "+fused.tau_n").Set(int64(fp.TauN))
			}
			fmt.Printf("  fused:    τ=%d τm=%d τk=%d τn=%d (fixed dims %d)\n", fp.Tau, fp.TauM, fp.TauK, fp.TauN, *fixed)
			fmt.Printf("  apply with: strassen.SetDefaultParams(%q, strassen.Params{Tau: %d, TauM: %d, TauK: %d, TauN: %d})\n",
				name+"+fused", fp.Tau, fp.TauM, fp.TauK, fp.TauN)
			fcur := strassen.DefaultParams(name + "+fused")
			fmt.Printf("  current defaults: τ=%d τm=%d τk=%d τn=%d\n", fcur.Tau, fcur.TauM, fcur.TauK, fcur.TauN)
		}
	}

	if col != nil && *metricsOut != "" {
		if err := col.WriteMetricsFile(*metricsOut); err != nil {
			slog.Error("write metrics snapshot", "path", *metricsOut, "err", err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
	if *httpAddr != "" {
		slog.Info("calibration done; endpoints stay up until interrupt (Ctrl-C)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// parseCores parses the -cores list: a comma-separated set of worker
// counts, or "auto" for powers of two up to GOMAXPROCS (always including
// GOMAXPROCS itself when it is above one).
func parseCores(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	if s == "auto" {
		max := runtime.GOMAXPROCS(0)
		var out []int
		for c := 2; c < max; c *= 2 {
			out = append(out, c)
		}
		if max > 1 {
			out = append(out, max)
		}
		return out, nil
	}
	var out []int
	for _, f := range strings.Split(s, ",") {
		c, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad worker count %q", f)
		}
		out = append(out, c)
	}
	return out, nil
}

// calibrateBlocks times the packed kernel over a grid of (MC, KC)
// candidates around the cache-derived analytic seeds (NC is held at the
// derived value: it only matters once problems exceed the L3-scale panel,
// where its influence is flat) and prints the winning blocking plus the
// kernel.SetDefaultBlocks call that installs it — the block-size analogue
// of the cutoff-parameter workflow above.
func calibrateBlocks(n, reps int, seed int64) {
	caches := kernel.DetectCaches()
	dmc, dkc, dnc := kernel.DeriveBlocks(caches)
	fmt.Printf("caches: L1d=%dK L2=%dK L3=%dK\n", caches.L1D>>10, caches.L2>>10, caches.L3>>10)
	fmt.Printf("analytic seeds: MC=%d KC=%d NC=%d\n", dmc, dkc, dnc)

	rng := rand.New(rand.NewSource(seed))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	flops := 2 * float64(n) * float64(n) * float64(n)

	grid := func(center, lo int, unit int) []int {
		var out []int
		for _, f := range []float64{0.5, 0.75, 1, 1.25, 1.5} {
			v := int(float64(center) * f)
			v = v / unit * unit
			if v >= lo {
				out = append(out, v)
			}
		}
		return out
	}

	type result struct {
		mc, kc int
		gflops float64
	}
	var best result
	for _, kc := range grid(dkc, 32, 32) {
		for _, mc := range grid(dmc, kernel.MR, kernel.MR) {
			k := &kernel.Packed{MC: mc, KC: kc, NC: dnc}
			var top float64
			for r := 0; r < reps; r++ {
				start := time.Now()
				k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n)
				if g := flops / time.Since(start).Seconds() / 1e9; g > top {
					top = g
				}
			}
			fmt.Printf("  MC=%-4d KC=%-4d  %.2f GFLOPS\n", mc, kc, top)
			if top > best.gflops {
				best = result{mc: mc, kc: kc, gflops: top}
			}
		}
	}
	fmt.Printf("best: MC=%d KC=%d NC=%d (%.2f GFLOPS at order %d)\n", best.mc, best.kc, dnc, best.gflops, n)
	fmt.Printf("apply with: kernel.SetDefaultBlocks(%d, %d, %d)\n", best.mc, best.kc, dnc)
}
