// Command calibrate reruns the paper's Section 4.2 cutoff measurement on
// the current machine: the square crossover sweep (Figure 2 / Table 2) and
// the three rectangular sweeps with two dimensions held large (Table 3),
// for one or all DGEMM kernels. The output is the parameter set to feed to
// strassen.SetDefaultParams (or to hardcode as this machine's defaults).
//
// Usage:
//
//	calibrate                        # calibrate all kernels
//	calibrate -kernel blocked -v     # one kernel, with the ratio curve
//	calibrate -sq-hi 512 -fixed 1024 # wider sweeps (slower, finer)
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"

	"repro/internal/blas"
	"repro/internal/cutoff"
	"repro/internal/obs"
	"repro/internal/strassen"
)

func main() {
	var (
		kernel     = flag.String("kernel", "", "kernel to calibrate (blocked|vector|naive); empty = all")
		sqLo       = flag.Int("sq-lo", 16, "square sweep: low order")
		sqHi       = flag.Int("sq-hi", 256, "square sweep: high order")
		sqStep     = flag.Int("sq-step", 8, "square sweep: step")
		rectLo     = flag.Int("rect-lo", 8, "rectangular sweep: low value")
		rectHi     = flag.Int("rect-hi", 128, "rectangular sweep: high value")
		rectSt     = flag.Int("rect-step", 4, "rectangular sweep: step")
		fixed      = flag.Int("fixed", 512, "rectangular sweep: the two fixed (large) dimensions")
		seed       = flag.Int64("seed", 1, "RNG seed for the test matrices")
		verbose    = flag.Bool("v", false, "print the full square ratio curve (Figure 2 data)")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file when done")
		httpAddr   = flag.String("http", "", "serve live expvar/pprof/metrics endpoints on this address (e.g. :6060)")
	)
	flag.Parse()

	// The sweeps build their one-level configurations internally, so the
	// collector reaches them through the package's config hook. Note the
	// tracing instruments only the DGEFMM side of each timed pair, so the
	// measured ratios shift by the (small) tracing overhead — acceptable for
	// an opt-in diagnostic view of a calibration run.
	var col *obs.Collector
	if *metricsOut != "" || *httpAddr != "" {
		col = obs.NewCollector()
		cutoff.SetConfigHook(func(cfg *strassen.Config) { col.Attach(cfg) })
	}
	if *httpAddr != "" {
		_, bound, err := obs.StartDebugServer(*httpAddr, col)
		if err != nil {
			fmt.Fprintf(os.Stderr, "start debug server on %s: %v\n", *httpAddr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "observability on http://%s (/metrics /debug/vars /debug/pprof/)\n", bound)
	}

	names := blas.KernelNames()
	if *kernel != "" {
		if blas.KernelByName(*kernel) == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q; known: %v\n", *kernel, blas.KernelNames())
			os.Exit(2)
		}
		names = []string{*kernel}
	}

	for _, name := range names {
		kern := blas.KernelByName(name)
		fmt.Printf("kernel %s:\n", name)
		tau, pts := cutoff.SquareCutoff(kern, *sqLo, *sqHi, *sqStep, *seed)
		if *verbose {
			for _, p := range pts {
				marker := ""
				if p.Ratio > 1 {
					marker = "  <- Strassen wins"
				}
				fmt.Printf("  m=%4d  DGEMM/DGEFMM(1 level) = %.4f%s\n", p.Dim, p.Ratio, marker)
			}
		}
		p := cutoff.RectParams(kern, *rectLo, *rectHi, *rectSt, *fixed, *seed+1)
		p.Tau = tau
		if col != nil {
			col.Registry.Gauge("calibrate." + name + ".tau").Set(int64(p.Tau))
			col.Registry.Gauge("calibrate." + name + ".tau_m").Set(int64(p.TauM))
			col.Registry.Gauge("calibrate." + name + ".tau_k").Set(int64(p.TauK))
			col.Registry.Gauge("calibrate." + name + ".tau_n").Set(int64(p.TauN))
		}
		fmt.Printf("  measured: τ=%d τm=%d τk=%d τn=%d (fixed dims %d)\n", p.Tau, p.TauM, p.TauK, p.TauN, *fixed)
		fmt.Printf("  apply with: strassen.SetDefaultParams(%q, strassen.Params{Tau: %d, TauM: %d, TauK: %d, TauN: %d})\n",
			name, p.Tau, p.TauM, p.TauK, p.TauN)
		cur := strassen.DefaultParams(name)
		fmt.Printf("  current defaults: τ=%d τm=%d τk=%d τn=%d\n", cur.Tau, cur.TauM, cur.TauK, cur.TauN)
	}

	if col != nil && *metricsOut != "" {
		if err := col.WriteMetricsFile(*metricsOut); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *metricsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
	}
	if *httpAddr != "" {
		fmt.Fprintln(os.Stderr, "calibration done; endpoints stay up until interrupt (Ctrl-C)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}
