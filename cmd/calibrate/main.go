// Command calibrate reruns the paper's Section 4.2 cutoff measurement on
// the current machine: the square crossover sweep (Figure 2 / Table 2) and
// the three rectangular sweeps with two dimensions held large (Table 3),
// for one or all DGEMM kernels. The output is the parameter set to feed to
// strassen.SetDefaultParams (or to hardcode as this machine's defaults).
//
// Usage:
//
//	calibrate                        # calibrate all kernels
//	calibrate -kernel blocked -v     # one kernel, with the ratio curve
//	calibrate -sq-hi 512 -fixed 1024 # wider sweeps (slower, finer)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/blas"
	"repro/internal/cutoff"
	"repro/internal/strassen"
)

func main() {
	var (
		kernel  = flag.String("kernel", "", "kernel to calibrate (blocked|vector|naive); empty = all")
		sqLo    = flag.Int("sq-lo", 16, "square sweep: low order")
		sqHi    = flag.Int("sq-hi", 256, "square sweep: high order")
		sqStep  = flag.Int("sq-step", 8, "square sweep: step")
		rectLo  = flag.Int("rect-lo", 8, "rectangular sweep: low value")
		rectHi  = flag.Int("rect-hi", 128, "rectangular sweep: high value")
		rectSt  = flag.Int("rect-step", 4, "rectangular sweep: step")
		fixed   = flag.Int("fixed", 512, "rectangular sweep: the two fixed (large) dimensions")
		seed    = flag.Int64("seed", 1, "RNG seed for the test matrices")
		verbose = flag.Bool("v", false, "print the full square ratio curve (Figure 2 data)")
	)
	flag.Parse()

	names := blas.KernelNames()
	if *kernel != "" {
		if blas.KernelByName(*kernel) == nil {
			fmt.Fprintf(os.Stderr, "unknown kernel %q; known: %v\n", *kernel, blas.KernelNames())
			os.Exit(2)
		}
		names = []string{*kernel}
	}

	for _, name := range names {
		kern := blas.KernelByName(name)
		fmt.Printf("kernel %s:\n", name)
		tau, pts := cutoff.SquareCutoff(kern, *sqLo, *sqHi, *sqStep, *seed)
		if *verbose {
			for _, p := range pts {
				marker := ""
				if p.Ratio > 1 {
					marker = "  <- Strassen wins"
				}
				fmt.Printf("  m=%4d  DGEMM/DGEFMM(1 level) = %.4f%s\n", p.Dim, p.Ratio, marker)
			}
		}
		p := cutoff.RectParams(kern, *rectLo, *rectHi, *rectSt, *fixed, *seed+1)
		p.Tau = tau
		fmt.Printf("  measured: τ=%d τm=%d τk=%d τn=%d (fixed dims %d)\n", p.Tau, p.TauM, p.TauK, p.TauN, *fixed)
		fmt.Printf("  apply with: strassen.SetDefaultParams(%q, strassen.Params{Tau: %d, TauM: %d, TauK: %d, TauN: %d})\n",
			name, p.Tau, p.TauM, p.TauK, p.TauN)
		cur := strassen.DefaultParams(name)
		fmt.Printf("  current defaults: τ=%d τm=%d τk=%d τn=%d\n", cur.Tau, cur.TauM, cur.TauK, cur.TauN)
	}
}
