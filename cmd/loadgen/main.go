// Command loadgen drives a deterministic concurrent GEMM load against a
// running dgefmmd and reports throughput, latency percentiles, and the
// coalesce ratio. With -out it writes the measurements as a benchdiff
// report (the serve.* metric family), so serving-layer performance gates
// in CI exactly like the kernel metrics.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8433
//	loadgen -shapes '96x96x96:3,128x128x128:1' -clients 8 -calls 400
//	loadgen -check -seed 7               # verify every response
//	loadgen -out BENCH_PR7.json          # record the serve.* metric family
//
// The run is deterministic for a given -seed and -shapes mix: each client
// owns a seeded RNG and pre-generated operands, so two runs issue the same
// calls (timing, and therefore coalescing, still varies with scheduling).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/cli"
	"repro/internal/kernel"
	"repro/internal/serve"
)

func main() {
	var (
		addr    = flag.String("addr", "http://127.0.0.1:8433", "dgefmmd base URL")
		clients = flag.Int("clients", 8, "concurrent client goroutines")
		calls   = flag.Int("calls", 400, "total measured calls across clients")
		warmup  = flag.Int("warmup", 4, "discarded warmup calls per client")
		shapes  = flag.String("shapes", "96x96x96:3,64x64x64:2,128x96x64:1", "weighted shape mix: MxKxN:weight,...")
		seed    = flag.Int64("seed", 1, "operand and shape-sequence seed")
		tenant  = flag.String("tenant", "", "X-Tenant header value")
		timeout = flag.Duration("timeout", 0, "per-call deadline (propagated to the server; 0 = none)")
		check   = flag.Bool("check", false, "verify every response against a local sequential reference")
		out     = flag.String("out", "", "write the serve.* metrics as a benchdiff report to this file")
		runFor  = flag.Duration("max-duration", 2*time.Minute, "abort the run past this wall-clock budget")

		logLevel = cli.LogLevelFlag(nil)
	)
	flag.Parse()
	logger := cli.InitLogging(*logLevel)

	mix, err := serve.ParseShapes(*shapes)
	if err != nil {
		fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *runFor)
	defer cancel()
	logger.Info("load starting", "addr", *addr, "clients", *clients, "calls", *calls, "shapes", *shapes, "seed", *seed)

	res, err := serve.RunLoad(ctx, serve.LoadOptions{
		BaseURL: *addr,
		Clients: *clients,
		Calls:   *calls,
		Warmup:  *warmup,
		Shapes:  mix,
		Seed:    *seed,
		Tenant:  *tenant,
		Timeout: *timeout,
		Check:   *check,
	})
	if err != nil {
		fatal(err)
	}

	fmt.Printf("calls       %d ok, %d rejected (429), %d errors in %v\n",
		res.Calls, res.Rejected, res.Errors, res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput  %.1f calls/s\n", res.CallsPerSec)
	fmt.Printf("latency     p50 %.2f ms, p99 %.2f ms\n", res.P50ms, res.P99ms)
	fmt.Printf("coalesce    %.2f calls/batch (%d served out of core)\n", res.CoalesceRatio, res.OutOfCore)
	if *check {
		if res.CheckFailures > 0 {
			fmt.Printf("CHECK FAILED on %d call(s)\n", res.CheckFailures)
			os.Exit(1)
		}
		fmt.Println("check       all responses match the sequential reference")
	}
	if res.Calls == 0 {
		fatal(fmt.Errorf("no call succeeded (%d errors, %d rejected)", res.Errors, res.Rejected))
	}

	if *out != "" {
		if err := writeReport(*out, res); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

// report mirrors cmd/benchdiff's Report JSON, so a loadgen output file
// merges into BENCH_BASELINE.json and gates like any other metric family.
type report struct {
	Go         string             `json:"go"`
	Reps       int                `json:"reps"`
	Metrics    map[string]float64 `json:"metrics"`
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	ISA        string             `json:"isa,omitempty"`
	Requires   map[string]string  `json:"requires,omitempty"`
}

func writeReport(path string, res *serve.LoadResult) error {
	r := &report{
		Go:   runtime.Version(),
		Reps: 1,
		Metrics: map[string]float64{
			"serve.calls_per_sec":  res.CallsPerSec,
			"serve.p50_ms":         res.P50ms,
			"serve.p99_ms":         res.P99ms,
			"serve.coalesce_ratio": res.CoalesceRatio,
		},
		ISA: dispatchedISA(),
		// End-to-end serving numbers follow both the dispatched micro-kernel
		// and the host's parallelism: a single-CPU gating host serializes the
		// pool, the coalescer, and the client goroutines onto one core, so
		// its numbers are not comparable to a multicore baseline and the gate
		// SKIPs them there instead of failing.
		Requires: map[string]string{
			"serve.calls_per_sec":  "multicore",
			"serve.p50_ms":         "multicore",
			"serve.p99_ms":         "multicore",
			"serve.coalesce_ratio": "multicore",
		},
		// Wide per-metric tolerances: wall-clock service latency under
		// concurrent load is far noisier than single-threaded kernel timing
		// (scheduling, coalesce timing races); see EXPERIMENTS.md.
		Tolerances: map[string]float64{
			"serve.calls_per_sec":  0.50,
			"serve.p50_ms":         0.50,
			"serve.p99_ms":         0.60,
			"serve.coalesce_ratio": 0.50,
		},
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// dispatchedISA matches cmd/benchdiff: the ISA the default kernel actually
// runs on this host. loadgen and dgefmmd share the host in the CI smoke,
// so recording the client side's dispatch describes the server too.
func dispatchedISA() string {
	if ik, ok := kernel.Default().(interface{ ISA() string }); ok {
		return ik.ISA()
	}
	return "go"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
