package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/serve"
)

// writeReport must emit a file cmd/benchdiff can merge and gate: the four
// serve.* metrics, each tagged `requires: multicore` with its tolerance.
func TestWriteReport(t *testing.T) {
	res := &serve.LoadResult{
		CallsPerSec:   123.4,
		P50ms:         2.5,
		P99ms:         7.5,
		CoalesceRatio: 1.5,
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := writeReport(path, res); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	want := map[string]float64{
		"serve.calls_per_sec":  123.4,
		"serve.p50_ms":         2.5,
		"serve.p99_ms":         7.5,
		"serve.coalesce_ratio": 1.5,
	}
	for name, v := range want {
		if r.Metrics[name] != v {
			t.Fatalf("metric %s = %v, want %v", name, r.Metrics[name], v)
		}
		if r.Requires[name] != "multicore" {
			t.Fatalf("metric %s requires %q, want multicore", name, r.Requires[name])
		}
		if r.Tolerances[name] <= 0 {
			t.Fatalf("metric %s has no tolerance", name)
		}
	}
	if r.Go == "" {
		t.Fatal("report omits the Go version")
	}
	if got := dispatchedISA(); got == "" {
		t.Fatal("dispatchedISA returned an empty string")
	}
}
