package main

import (
	"time"

	"repro/internal/blas"
	"repro/internal/obs"
	"repro/internal/phase"
	"repro/internal/strassen"
)

// Observability-derived metrics for the gate: per-phase attribution
// rates, the cost of attribution itself, and hardware-counter efficiency
// where perf_event is available.

// phaseMetrics runs instrumented depth-pinned STRASSEN1 multiplies at
// order n and reports the per-phase GFLOPS for the three phases that
// dominate the attribution: the SIMD tile loop, the Winograd add/sub
// passes (S/T formation) and the quadrant write-out. Rates are medians
// over reps independently-profiled runs. Gating these catches attribution
// skew (a phase suddenly absorbing time that belongs to another) as well
// as plain slowdowns inside one phase.
func phaseMetrics(n, depth, reps int) map[string]float64 {
	a, b, c := randomSquare(n, 109)
	cfg := &strassen.Config{
		Schedule:  strassen.ScheduleStrassen1,
		Criterion: strassen.Always{},
		MaxDepth:  depth,
	}
	run := func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	}
	run() // warm plans, arena, caches

	tracked := map[string]phase.ID{
		"phase.kernel.micro.256.gflops":      phase.KernelMicro,
		"phase.strassen.addsub.256.gflops":   phase.StrassenAddSub,
		"phase.strassen.quadrant.256.gflops": phase.StrassenQuadrant,
	}
	samples := make(map[string][]float64, len(tracked))
	for r := 0; r < reps; r++ {
		prof := &phase.Profiler{}
		prev := phase.SetActive(prof)
		run()
		phase.SetActive(prev)
		snap := prof.Snapshot()
		for name, id := range tracked {
			samples[name] = append(samples[name], snap[id].GFLOPS())
		}
	}
	out := make(map[string]float64, len(tracked))
	for name, vals := range samples {
		recordNoise(name, vals)
		out[name] = medianOf(vals)
	}
	return out
}

// overheadRatio measures what installing the phase profiler costs a
// default-configuration multiply: profiler-off batch time divided by
// profiler-on batch time (higher is better, 1.0 = free). Near 1.0 by
// design; the baseline pins it so instrumentation creep in the hot loop
// fails the gate. The off side is the shipped fast path (nil profiler) —
// the compile-time phaseoff build removes even the nil checks, so this
// ratio upper-bounds that path's overhead too.
func overheadRatio(n, reps int) float64 {
	a, b, c := randomSquare(n, 113)
	cfg := strassen.DefaultConfig(nil)
	run := func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	}
	// Single-shot ratios are useless for a percent-level budget: one
	// multiply lasts ~1 ms and shot-to-shot scheduler noise is several
	// percent, and shared CI hosts add slow frequency drift on top. Each
	// sample therefore amortizes a batch of runs sized to ~40 ms of work;
	// the off and on batches of a round run back to back, so drift slower
	// than a round cancels inside the pair; and the recorded value is the
	// median of the per-round ratios, which rejects the occasional
	// co-tenant spike that hits only one side.
	run() // warm
	start := time.Now()
	run()
	per := time.Since(start)
	batch := int(40*time.Millisecond/per) + 1
	sample := func() float64 { // seconds per batch, lower is better
		s := time.Now()
		for i := 0; i < batch; i++ {
			run()
		}
		return time.Since(s).Seconds()
	}
	rounds := reps + 2
	if rounds < 5 {
		rounds = 5
	}
	return medianNoise("obs.overhead.ratio", rounds, func() float64 {
		off := sample()
		prev := phase.SetActive(&phase.Profiler{})
		on := sample()
		phase.SetActive(prev)
		return off / on // >1 would mean attribution sped it up, i.e. noise
	})
}

// perfIPC measures instructions per cycle over a default multiply using
// the perf_event counter group. Only called when obs.PerfAvailable(); a
// mid-run failure reports 0, which the gate will flag rather than hide.
func perfIPC(n, reps int) float64 {
	a, b, c := randomSquare(n, 127)
	cfg := strassen.DefaultConfig(nil)
	run := func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	}
	run() // warm
	return medianNoise("perf.multiply.256.ipc", reps, func() float64 {
		counts, ok := obs.MeasurePerf(run)
		if !ok {
			return 0
		}
		return counts.IPC()
	})
}
