package main

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/blas"
	"repro/internal/memtrack"
	"repro/internal/strassen"
)

// fusedSuite measures the fused Winograd driver against the plain SIMD
// kernel at the orders where the crossover argument lives (n ≥ 1024, one
// materialized-or-fused recursion level in play under the calibrated
// "+fused" parameters). The host drifts several percent between
// measurement windows, so each rep times the two arms back to back and the
// gated ratio is the median of per-rep ratios — drift hits both arms of a
// rep equally and cancels, where a ratio of two independently measured
// medians would inherit it.
func fusedSuite(reps int) map[string]float64 {
	out := map[string]float64{}
	for _, n := range []int{1024, 1536} {
		a, b, c := randomSquare(n, 109)
		kern := blas.KernelByName("simd")
		cfg := strassen.DefaultConfig(kern)
		cfg.Fused = strassen.FusedOn
		cfg.Criterion = nil // re-resolve against the "+fused" calibrated row
		// Steady-state comparison: the tracker lets repeated calls reuse the
		// materialized level's temporaries the same way the kernel arm
		// reuses its packing arena (the calibration sweeps do the same).
		cfg.Tracker = memtrack.New()
		flops := 2 * float64(n) * float64(n) * float64(n)
		gemm := func() float64 {
			start := time.Now()
			kern.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n)
			return time.Since(start).Seconds()
		}
		fused := func() float64 {
			start := time.Now()
			strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
			return time.Since(start).Seconds()
		}
		gemm()
		fused() // warm caches, arena and plan
		gemmS := make([]float64, 0, reps)
		fusedS := make([]float64, 0, reps)
		ratios := make([]float64, 0, reps)
		for i := 0; i < reps; i++ {
			tg, tf := gemm(), fused()
			gemmS = append(gemmS, flops/tg/1e9)
			fusedS = append(fusedS, flops/tf/1e9)
			ratios = append(ratios, tg/tf)
		}
		for name, vals := range map[string][]float64{
			fmt.Sprintf("kernel.simd.%d.gflops", n):    gemmS,
			fmt.Sprintf("fused.multiply.%d.gflops", n): fusedS,
			fmt.Sprintf("fused.vs_kernel.%d.ratio", n): ratios,
		} {
			recordNoise(name, vals)
			out[name] = medianOf(vals)
		}
	}
	return out
}

func medianOf(vals []float64) float64 {
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if n := len(s); n%2 == 1 {
		return s[n/2]
	} else {
		return (s[n/2-1] + s[n/2]) / 2
	}
}
