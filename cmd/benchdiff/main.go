// Command benchdiff runs the repository's pinned micro-benchmark suite and
// gates on regressions against a checked-in baseline: every metric is
// re-measured (median of -reps runs), compared to BENCH_BASELINE.json with
// a relative noise tolerance, and any drop beyond -tol fails the run with
// exit code 1. CI runs it on every pull request and uploads the fresh
// report as an artifact; see EXPERIMENTS.md for the noise-tolerance
// methodology.
//
// Usage:
//
//	benchdiff -baseline BENCH_BASELINE.json            # gate (CI mode)
//	benchdiff -out BENCH_PR4.json -update-baseline     # refresh both files
//	benchdiff -baseline BENCH_BASELINE.json -scale 0.8 # gate self-test:
//	                                                   # a synthetic 20%
//	                                                   # slowdown must fail
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/batch"
	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/strassen"
)

func main() {
	var (
		baseline = flag.String("baseline", "", "baseline report to gate against (empty = measure only)")
		out      = flag.String("out", "", "write the measured report to this file")
		update   = flag.Bool("update-baseline", false, "rewrite the baseline file with the fresh measurements")
		tol      = flag.Float64("tol", 0.10, "relative drop tolerated before a metric fails (0.10 = 10%)")
		reps     = flag.Int("reps", 5, "repetitions per metric; the median is recorded")
		scale    = flag.Float64("scale", 1.0, "scale measured metrics before comparing (gate self-test hook)")
		noisy    = flag.Bool("allow-noisy", false, "let -update-baseline freeze metrics whose rep-to-rep spread exceeds their tolerance")
	)
	flag.Parse()

	report := &Report{
		Go:       runtime.Version(),
		Reps:     *reps,
		ISA:      dispatchedISA(),
		Metrics:  runSuite(*reps),
		Requires: suiteRequires(),
	}
	report.Noise = noiseSnapshot()
	fmt.Printf("host micro-kernel ISA: %s\n", report.ISA)
	if *scale != 1.0 {
		for name := range report.Metrics {
			report.Metrics[name] *= *scale
		}
		fmt.Printf("note: metrics scaled by %g (self-test mode)\n", *scale)
	}

	names := make([]string, 0, len(report.Metrics))
	for name := range report.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Printf("measured (%s, median of %d, ±spread):\n", report.Go, *reps)
	for _, name := range names {
		if spread, ok := report.Noise[name]; ok {
			fmt.Printf("  %-28s %10.2f  ±%.1f%%\n", name, report.Metrics[name], spread*100)
		} else {
			fmt.Printf("  %-28s %10.2f\n", name, report.Metrics[name])
		}
	}

	if *out != "" {
		if err := writeReport(*out, report); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
	if *update && *baseline != "" {
		// Carry the noise model over: per-metric tolerances belong to the
		// benchmark's behavior, not to one baseline's numbers.
		if old, err := readReport(*baseline); err == nil {
			report.Tolerances = old.Tolerances
		}
		// A baseline is only as good as the host it was measured on: refuse
		// to freeze numbers whose observed spread exceeds the tolerance that
		// will judge future runs against them.
		if bad := NoisyMetrics(report.Noise, *tol, report.Tolerances); len(bad) > 0 && !*noisy {
			for _, name := range bad {
				mtol := *tol
				if o, ok := report.Tolerances[name]; ok && o > 0 {
					mtol = o
				}
				fmt.Printf("  %-28s spread ±%.1f%% exceeds its tolerance %.0f%%\n",
					name, report.Noise[name]*100, mtol*100)
			}
			fmt.Printf("FAIL: host too noisy to mint a baseline for %d metric(s); rerun on a quieter host, widen tolerances, or pass -allow-noisy\n", len(bad))
			os.Exit(1)
		}
		if err := writeReport(*baseline, report); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline %s refreshed\n", *baseline)
		return
	}
	if *baseline == "" {
		return
	}

	base, err := readReport(*baseline)
	if err != nil {
		fatal(err)
	}
	// Capability = "the suite measured it", not raw hardware: a
	// DGEFMM_KERNEL=packed override (the CI fallback leg) must gate
	// exactly like a scalar host.
	caps := map[string]bool{
		"simd":       blas.KernelByName("simd") != nil,
		"perf_event": obs.PerfAvailable(),
		// End-to-end serving numbers (serve.*) need real parallelism: on a
		// single-CPU host the pool workers, the coalescer, and the load
		// clients all serialize onto one core, so a multicore baseline must
		// SKIP there rather than fail.
		"multicore": runtime.NumCPU() > 1,
	}
	deltas := Compare(base.Metrics, report.Metrics, *tol, base.Tolerances, base.Requires, caps)
	fmt.Printf("vs %s (default tolerance %.0f%%):\n", *baseline, *tol*100)
	for _, d := range deltas {
		switch {
		case d.Skipped:
			fmt.Printf("  %-28s SKIPPED (requires %s; host has isa=%s perf_event=%v)\n",
				d.Name, d.Needs, dispatchedISA(), obs.PerfAvailable())
		case d.Missing:
			fmt.Printf("  %-28s MISSING (baseline %.2f)\n", d.Name, d.Base)
		case d.Regress:
			fmt.Printf("  %-28s %10.2f -> %8.2f  %.1f%%  REGRESSION (tol %.0f%%)\n", d.Name, d.Base, d.Current, (d.Ratio-1)*100, d.Tol*100)
		case d.Improved:
			fmt.Printf("  %-28s %10.2f -> %8.2f  %+.1f%%  improved\n", d.Name, d.Base, d.Current, (d.Ratio-1)*100)
		default:
			fmt.Printf("  %-28s %10.2f -> %8.2f  %+.1f%%\n", d.Name, d.Base, d.Current, (d.Ratio-1)*100)
		}
	}
	if regs := Regressions(deltas); len(regs) > 0 {
		fmt.Printf("FAIL: %d metric(s) regressed beyond %.0f%%\n", len(regs), *tol*100)
		os.Exit(1)
	}
	fmt.Println("ok: no regressions")
}

// dispatchedISA is the ISA the default kernel actually runs — "scalar"
// under a DGEFMM_KERNEL=packed override even on AVX2 hardware.
func dispatchedISA() string {
	if ik, ok := kernel.Default().(interface{ ISA() string }); ok {
		return ik.ISA()
	}
	return "go"
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}

// runSuite measures the pinned suite. Metric names are stable identifiers:
// renaming one orphans its baseline entry and fails the gate until the
// baseline is refreshed deliberately. kernel.packed.* pins the scalar tile
// explicitly (Mode, not dispatch) so those numbers stay comparable across
// hosts; kernel.simd.* exists only where feature detection passes and is
// marked capability-gated via suiteRequires.
func runSuite(reps int) map[string]float64 {
	scalar := blas.KernelByName("packed")
	m := map[string]float64{
		"kernel.packed.512.gflops":  kernelGflops("kernel.packed.512.gflops", scalar, 512, reps),
		"kernel.packed.256.gflops":  kernelGflops("kernel.packed.256.gflops", scalar, 256, reps),
		"kernel.blocked.512.gflops": kernelGflops("kernel.blocked.512.gflops", &blas.BlockedKernel{}, 512, reps),
		"multiply.256.gflops":       multiplyGflops("multiply.256.gflops", 256, reps),
		"multiply.512.gflops":       multiplyGflops("multiply.512.gflops", 512, reps),
		"batch.192.calls_per_s":     batchThroughput("batch.192.calls_per_s", 192, 24, reps),
	}
	// The leaf-kernel speedup itself is a gated metric: the packed kernel
	// falling back toward the legacy blocked kernel is a regression even if
	// both moved with machine noise.
	m["kernel.packed_vs_blocked.512.ratio"] = m["kernel.packed.512.gflops"] / m["kernel.blocked.512.gflops"]
	for name, v := range phaseMetrics(256, 2, reps) {
		m[name] = v
	}
	m["obs.overhead.ratio"] = overheadRatio(256, reps)
	// The serving layer gates end to end: an in-process dgefmmd under the
	// standard load mix (see serve.go). Same metric family loadgen records.
	for name, v := range serveSuite(reps) {
		m[name] = v
	}
	if obs.PerfAvailable() {
		m["perf.multiply.256.ipc"] = perfIPC(256, reps)
	}
	// The multi-core task-runtime family exists only where the host can
	// actually run tasks in parallel; a 1-CPU measurement would freeze
	// scheduler overhead as if it were parallel throughput.
	if runtime.NumCPU() > 1 {
		for name, v := range parSuite(reps) {
			m[name] = v
		}
	}
	if simd := blas.KernelByName("simd"); simd != nil {
		m["kernel.simd.512.gflops"] = kernelGflops("kernel.simd.512.gflops", simd, 512, reps)
		m["kernel.simd.256.gflops"] = kernelGflops("kernel.simd.256.gflops", simd, 256, reps)
		// The SIMD-over-scalar speedup is the PR's headline invariant (the
		// acceptance bar is 2x); gate the ratio, not just the absolutes.
		m["kernel.simd_vs_packed.512.ratio"] = m["kernel.simd.512.gflops"] / m["kernel.packed.512.gflops"]
		// The fused-Winograd-over-plain-kernel family: the crossover-crusher
		// invariant is the fused.vs_kernel.*.ratio staying above 1.
		for name, v := range fusedSuite(reps) {
			m[name] = v
		}
	}
	return m
}

// suiteRequires records which of this report's metrics are only
// comparable under SIMD dispatch. The kernel.simd.* metrics exist only
// there; the engine-level multiply/batch throughputs are measured
// everywhere but their numbers follow the dispatched micro-kernel, so a
// SIMD-measured baseline must not judge a fallback host (the scalar leaf
// is gated separately by the always-scalar kernel.packed.* metrics).
func suiteRequires() map[string]string {
	req := map[string]string{
		"kernel.simd.512.gflops":          "simd",
		"kernel.simd.256.gflops":          "simd",
		"kernel.simd_vs_packed.512.ratio": "simd",
		// The fused driver's win exists where the SIMD tile does: on a
		// scalar-dispatch host the comparison is meaningless noise, so the
		// whole family SKIPs rather than flags.
		"kernel.simd.1024.gflops":    "simd",
		"kernel.simd.1536.gflops":    "simd",
		"fused.multiply.1024.gflops": "simd",
		"fused.multiply.1536.gflops": "simd",
		"fused.vs_kernel.1024.ratio": "simd",
		"fused.vs_kernel.1536.ratio": "simd",
		// Hardware-counter efficiency exists only where perf_event_open
		// works; unprivileged CI containers SKIP it cleanly.
		"perf.multiply.256.ipc": "perf_event",
		// The serving metrics depend on the host's parallelism, not just its
		// micro-kernel: single-CPU hosts serialize the whole pipeline and
		// must not be judged against a multicore baseline.
		"serve.calls_per_sec":  "multicore",
		"serve.p50_ms":         "multicore",
		"serve.p99_ms":         "multicore",
		"serve.coalesce_ratio": "multicore",
		// The task-runtime family is only measured on multicore hosts (see
		// runSuite); a single-core host SKIPs it against any baseline.
		"par.multiply.256.gflops": "multicore",
		"par.multiply.512.gflops": "multicore",
		"par.scale.1.gflops":      "multicore",
		"par.scale.2.speedup":     "multicore",
		"par.scale.4.speedup":     "multicore",
	}
	if blas.KernelByName("simd") != nil {
		req["multiply.256.gflops"] = "simd"
		req["multiply.512.gflops"] = "simd"
		req["batch.192.calls_per_s"] = "simd"
		// The micro-phase rate follows the dispatched tile loop, exactly
		// like the whole-multiply throughputs above. The addsub/quadrant
		// phases are streaming passes whose rate tracks memory bandwidth,
		// not the vector unit, so they gate on every host.
		req["phase.kernel.micro.256.gflops"] = "simd"
	}
	return req
}

func randomSquare(n int, seed int64) (a, b, c []float64) {
	rng := rand.New(rand.NewSource(seed))
	a = make([]float64, n*n)
	b = make([]float64, n*n)
	c = make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()*2 - 1
		b[i] = rng.Float64()*2 - 1
	}
	return a, b, c
}

// kernelGflops times one leaf-kernel MulAdd at order n.
func kernelGflops(name string, k blas.Kernel, n, reps int) float64 {
	a, b, c := randomSquare(n, 101)
	flops := 2 * float64(n) * float64(n) * float64(n)
	k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n) // warm caches and arena
	return medianNoise(name, reps, func() float64 {
		start := time.Now()
		k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n)
		return flops / time.Since(start).Seconds() / 1e9
	})
}

// multiplyGflops times a full DGEFMM call (default configuration: packed
// kernel under the hybrid cutoff) at order n.
func multiplyGflops(name string, n, reps int) float64 {
	a, b, c := randomSquare(n, 103)
	cfg := strassen.DefaultConfig(nil)
	flops := 2 * float64(n) * float64(n) * float64(n)
	run := func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	}
	run() // warm
	return medianNoise(name, reps, func() float64 {
		start := time.Now()
		run()
		return flops / time.Since(start).Seconds() / 1e9
	})
}

// batchThroughput times a pool executing `count` independent order-n
// multiplies and reports calls per second.
func batchThroughput(name string, n, count, reps int) float64 {
	rng := rand.New(rand.NewSource(107))
	mk := func() []float64 {
		v := make([]float64, n*n)
		for i := range v {
			v[i] = rng.Float64()*2 - 1
		}
		return v
	}
	a, b := mk(), mk()
	calls := make([]batch.Call, count)
	for i := range calls {
		calls[i] = batch.Call{
			TransA: blas.NoTrans, TransB: blas.NoTrans,
			M: n, N: n, K: n, Alpha: 1, Beta: 0,
			A: a, Lda: n, B: b, Ldb: n, C: mk(), Ldc: n,
		}
	}
	pool := batch.NewPool(nil)
	defer pool.Close()
	if err := pool.Execute(calls); err != nil { // warm plans and arenas
		fatal(err)
	}
	return medianNoise(name, reps, func() float64 {
		start := time.Now()
		if err := pool.Execute(calls); err != nil {
			fatal(err)
		}
		return float64(count) / time.Since(start).Seconds()
	})
}
