package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Report is the benchmark-suite result format checked in as
// BENCH_BASELINE.json and uploaded as a CI artifact. Metrics are
// higher-is-better (GFLOPS or calls/s) except those whose name marks them
// as latencies (see LowerIsBetter); the gate inverts the latter's ratio so
// the comparison rule stays uniform: a regression is a relative move in the
// bad direction beyond the tolerance.
type Report struct {
	// Go is the toolchain that produced the report (context only; the gate
	// does not compare across toolchains' absolute numbers, the tolerance
	// absorbs that).
	Go string `json:"go"`
	// Reps is the repetitions per metric; the recorded value is the median.
	Reps int `json:"reps"`
	// Metrics maps metric name to its median value.
	Metrics map[string]float64 `json:"metrics"`
	// Tolerances overrides the gate's default relative tolerance per
	// metric, for benchmarks whose observed run-to-run spread exceeds it
	// (the batch throughput metric schedules goroutines, so it is noisier
	// than the single-threaded kernel timings; see EXPERIMENTS.md). Kept in
	// the baseline file so the noise model travels with the numbers it was
	// measured from.
	Tolerances map[string]float64 `json:"tolerances,omitempty"`
	// Noise is the host-noise fingerprint: per metric, the relative
	// rep-to-rep spread, (max − min)/|median|, observed while this report
	// was measured. Derived metrics (ratios of two medians) carry no entry.
	// -update-baseline refuses to freeze a baseline whose spread exceeds
	// the tolerance that will judge it (see NoisyMetrics); -allow-noisy
	// overrides.
	Noise map[string]float64 `json:"noise,omitempty"`
	// ISA is the micro-kernel instruction set dispatched on the measuring
	// host ("avx2+fma", "neon", "scalar"). Context for readers of the
	// report: absolute numbers from different ISAs are not comparable, and
	// a report whose ISA says "scalar" must not be read as a SIMD
	// regression.
	ISA string `json:"isa,omitempty"`
	// Requires maps a metric name to the dispatch capability its baseline
	// number was measured under (currently only "simd"): kernel.simd.*
	// exists only there, and multiply/batch throughput depends on which
	// micro-kernel dispatched. When the gating host lacks the capability,
	// the metric is SKIPPED rather than reported MISSING or REGRESSION —
	// a fallback host must not fail the gate for lacking a vector unit,
	// and the report says so explicitly instead of silently passing.
	Requires map[string]string `json:"requires,omitempty"`
}

// LowerIsBetter reports whether a metric is a latency: the "_ms"/"_ns"
// name suffix is the convention (serve.p50_ms, serve.p99_ms). Throughputs
// and ratios carry no time-unit suffix.
func LowerIsBetter(name string) bool {
	return strings.HasSuffix(name, "_ms") || strings.HasSuffix(name, "_ns")
}

// Delta is one metric's baseline-to-current comparison.
type Delta struct {
	Name     string
	Base     float64
	Current  float64
	Ratio    float64 // goodness ratio; <1 is a slowdown (inverted for latencies)
	Tol      float64 // the tolerance this metric was judged against
	Regress  bool    // ratio below 1-tol
	Improved bool    // ratio above 1+tol
	Missing  bool    // in the baseline but not measured now
	Skipped  bool    // baseline requires a capability this host lacks
	Needs    string  // the missing capability when Skipped
}

// Compare evaluates the current metrics against a baseline with relative
// tolerance tol (0.10 = fail on >10% drop); overrides, if non-nil, widens
// (or narrows) the tolerance per metric. Metrics present only in the
// current report are ignored (new benchmarks must not fail the gate before
// the baseline is refreshed); metrics missing from the current report are
// flagged, so a deleted benchmark cannot silently pass — unless the
// baseline marks the metric as measured under a capability (requires) the
// current host lacks (caps), in which case it is Skipped: numbers taken
// under different micro-kernel dispatch are not comparable, and a missing
// SIMD-only metric is conditional on hardware, not deleted.
func Compare(base, current map[string]float64, tol float64, overrides map[string]float64, requires map[string]string, caps map[string]bool) []Delta {
	names := make([]string, 0, len(base))
	for name := range base {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Delta, 0, len(names))
	for _, name := range names {
		mtol := tol
		if o, ok := overrides[name]; ok && o > 0 {
			mtol = o
		}
		b := base[name]
		c, ok := current[name]
		d := Delta{Name: name, Base: b, Current: c, Tol: mtol}
		// A metric whose baseline was measured under a capability this
		// host's dispatch lacks is skipped: even when re-measured, the
		// numbers are not comparable across micro-kernels.
		if need, gated := requires[name]; gated && !caps[need] {
			d.Skipped = true
			d.Needs = need
			out = append(out, d)
			continue
		}
		switch {
		case !ok:
			d.Missing = true
			d.Regress = true
		case b <= 0:
			// A non-positive baseline cannot anchor a relative rule; treat
			// any positive measurement as fine.
			d.Ratio = 1
		default:
			if LowerIsBetter(name) {
				// Invert so <1 still means "worse": a latency doubling is
				// ratio 0.5. A non-positive current latency cannot regress.
				if c <= 0 {
					d.Ratio = 1
				} else {
					d.Ratio = b / c
				}
			} else {
				d.Ratio = c / b
			}
			d.Regress = d.Ratio < 1-mtol
			d.Improved = d.Ratio > 1+mtol
		}
		out = append(out, d)
	}
	return out
}

// Regressions filters a comparison down to the failures.
func Regressions(deltas []Delta) []Delta {
	var out []Delta
	for _, d := range deltas {
		if d.Regress {
			out = append(out, d)
		}
	}
	return out
}

func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Metrics == nil {
		return nil, fmt.Errorf("%s: no metrics", path)
	}
	return &r, nil
}

func writeReport(path string, r *Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
