package main

import (
	"context"
	"net/http/httptest"
	"time"

	"repro/internal/serve"
)

// serveSuite measures the serving layer end to end: an in-process dgefmmd
// (Server.Handler on an httptest listener — real sockets, real HTTP) under
// the standard loadgen mix. This is the same measurement `loadgen -out`
// records against an external daemon, so the serve.* family in the baseline
// can come from either path.
//
// Latency metrics (serve.p50_ms, serve.p99_ms) are lower-is-better; the
// gate inverts their ratio (see LowerIsBetter) so the uniform
// "ratio < 1-tol fails" rule still applies.
func serveSuite(reps int) map[string]float64 {
	shapes, err := serve.ParseShapes("96x96x96:3,64x64x64:2,128x96x64:1")
	if err != nil {
		fatal(err)
	}
	srv := serve.New(&serve.Options{CoalesceWindow: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		srv.Close()
	}()

	load := func() *serve.LoadResult {
		res, err := serve.RunLoad(context.Background(), serve.LoadOptions{
			BaseURL: ts.URL,
			Clients: 6,
			Calls:   180,
			Warmup:  3,
			Shapes:  shapes,
			Seed:    1,
		})
		if err != nil {
			fatal(err)
		}
		return res
	}
	load() // warm plans, arenas, and HTTP connections

	runs := make([]*serve.LoadResult, reps)
	for i := range runs {
		runs[i] = load()
	}
	pick := func(name string, f func(*serve.LoadResult) float64) float64 {
		vals := make([]float64, len(runs))
		for i, r := range runs {
			vals[i] = f(r)
		}
		recordNoise(name, vals)
		return medianOf(vals)
	}
	return map[string]float64{
		"serve.calls_per_sec":  pick("serve.calls_per_sec", func(r *serve.LoadResult) float64 { return r.CallsPerSec }),
		"serve.p50_ms":         pick("serve.p50_ms", func(r *serve.LoadResult) float64 { return r.P50ms }),
		"serve.p99_ms":         pick("serve.p99_ms", func(r *serve.LoadResult) float64 { return r.P99ms }),
		"serve.coalesce_ratio": pick("serve.coalesce_ratio", func(r *serve.LoadResult) float64 { return r.CoalesceRatio }),
	}
}
