package main

import "sort"

// Host-noise fingerprint: every metric measured by repetition records its
// rep-to-rep relative spread, (max − min)/|median|, into the report. The
// fingerprint serves two purposes: readers of a report can judge how
// trustworthy its numbers are without access to the host, and
// -update-baseline refuses to freeze numbers whose observed spread exceeds
// the tolerance that will judge future runs against them — a baseline
// minted on a noisy host would make the gate a coin flip.

var noiseSpread = map[string]float64{}

// recordNoise stores the relative rep-to-rep spread of one metric's
// samples. Derived metrics (ratios of two medians) record nothing: their
// inputs carry the fingerprint.
func recordNoise(name string, vals []float64) {
	if len(vals) < 2 {
		return
	}
	med := medianOf(vals)
	if med == 0 {
		return
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if med < 0 {
		med = -med
	}
	noiseSpread[name] = (hi - lo) / med
}

// medianNoise measures a metric reps times, records its spread under the
// metric's name, and returns the median.
func medianNoise(name string, reps int, measure func() float64) float64 {
	vals := make([]float64, 0, reps)
	for i := 0; i < reps; i++ {
		vals = append(vals, measure())
	}
	recordNoise(name, vals)
	return medianOf(vals)
}

// noiseSnapshot returns the fingerprint accumulated by the suite run.
func noiseSnapshot() map[string]float64 {
	out := make(map[string]float64, len(noiseSpread))
	for k, v := range noiseSpread {
		out[k] = v
	}
	return out
}

// NoisyMetrics returns, sorted, the metrics whose measured spread exceeds
// the tolerance that would judge them (the per-metric override when
// present, else the default): exactly the metrics a baseline refresh would
// freeze into an unreliable gate.
func NoisyMetrics(noise map[string]float64, tol float64, overrides map[string]float64) []string {
	var out []string
	for name, spread := range noise {
		mtol := tol
		if o, ok := overrides[name]; ok && o > 0 {
			mtol = o
		}
		if spread > mtol {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
