package main

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/blas"
	"repro/internal/sched"
	"repro/internal/strassen"
)

// The par.* family gates the multi-core task runtime: whole multiplies
// executed as a seven-product DAG on a work-stealing runtime, plus the
// speedup-vs-workers curve. The family is measured only on hosts with more
// than one CPU and every metric is capability-gated behind "multicore" —
// on a single-core host the DAG serializes onto one worker and its numbers
// would measure scheduler overhead, not parallel execution (see
// EXPERIMENTS.md for the methodology and the 1-CPU caveats).

// parMultiplyGflops times a full DGEFMM call whose product DAG runs on a
// dedicated workers-sized runtime (default configuration otherwise).
func parMultiplyGflops(name string, n, workers, reps int) float64 {
	rt := sched.New(workers, 211)
	defer rt.Close()
	a, b, c := randomSquare(n, 109)
	cfg := strassen.DefaultConfig(nil)
	cfg.Sched = rt
	flops := 2 * float64(n) * float64(n) * float64(n)
	run := func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, c, n)
	}
	run() // warm plans, arenas and worker deques
	return medianNoise(name, reps, func() float64 {
		start := time.Now()
		run()
		return flops / time.Since(start).Seconds() / 1e9
	})
}

// parSuite measures the family: absolute parallel throughput at the host's
// full worker count, the one-worker runtime (the scheduler-overhead floor
// the speedups divide by), and the speedup at 2 and 4 workers where the
// host has them.
func parSuite(reps int) map[string]float64 {
	cores := runtime.GOMAXPROCS(0)
	m := map[string]float64{
		"par.multiply.256.gflops": parMultiplyGflops("par.multiply.256.gflops", 256, cores, reps),
		"par.multiply.512.gflops": parMultiplyGflops("par.multiply.512.gflops", 512, cores, reps),
		"par.scale.1.gflops":      parMultiplyGflops("par.scale.1.gflops", 512, 1, reps),
	}
	for _, w := range []int{2, 4} {
		if w > cores {
			break
		}
		name := fmt.Sprintf("par.scale.%d.speedup", w)
		m[name] = parMultiplyGflops(name+".gflops", 512, w, reps) / m["par.scale.1.gflops"]
	}
	return m
}
