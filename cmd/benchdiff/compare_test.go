package main

import (
	"os"
	"path/filepath"
	"testing"
)

func metricsLike(scale float64) (base, cur map[string]float64) {
	base = map[string]float64{
		"kernel.packed.512.gflops":  4.50,
		"kernel.blocked.512.gflops": 3.60,
		"multiply.512.gflops":       4.80,
		"batch.192.calls_per_s":     310.0,
	}
	cur = make(map[string]float64, len(base))
	for k, v := range base {
		cur[k] = v * scale
	}
	return base, cur
}

func TestCompareWithinTolerancePasses(t *testing.T) {
	for _, scale := range []float64{1.0, 0.95, 0.901, 1.3} {
		base, cur := metricsLike(scale)
		if regs := Regressions(Compare(base, cur, 0.10, nil, nil, nil)); len(regs) != 0 {
			t.Errorf("scale %g: unexpected regressions %v", scale, regs)
		}
	}
}

// TestCompareFailsOnInjectedSlowdown is the gate's acceptance check: a
// synthetic 20% slowdown on every metric must fail a 10%-tolerance compare
// (the CLI equivalent is `benchdiff -baseline ... -scale 0.8`).
func TestCompareFailsOnInjectedSlowdown(t *testing.T) {
	base, cur := metricsLike(0.80)
	regs := Regressions(Compare(base, cur, 0.10, nil, nil, nil))
	if len(regs) != len(base) {
		t.Fatalf("20%% slowdown: %d of %d metrics flagged", len(regs), len(base))
	}
	for _, d := range regs {
		if !d.Regress || d.Ratio > 0.81 || d.Ratio < 0.79 {
			t.Errorf("delta %+v: expected ratio ~0.80 flagged as regression", d)
		}
	}
}

func TestCompareSingleMetricSlowdown(t *testing.T) {
	base, cur := metricsLike(1.0)
	cur["multiply.512.gflops"] *= 0.8
	regs := Regressions(Compare(base, cur, 0.10, nil, nil, nil))
	if len(regs) != 1 || regs[0].Name != "multiply.512.gflops" {
		t.Fatalf("want exactly multiply.512.gflops flagged, got %v", regs)
	}
}

func TestCompareMissingMetricFails(t *testing.T) {
	base, cur := metricsLike(1.0)
	delete(cur, "batch.192.calls_per_s")
	regs := Regressions(Compare(base, cur, 0.10, nil, nil, nil))
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("deleted metric must fail the gate, got %v", regs)
	}
}

func TestCompareNewMetricIgnored(t *testing.T) {
	base, cur := metricsLike(1.0)
	cur["kernel.packed.1024.gflops"] = 4.2 // not yet in the baseline
	if regs := Regressions(Compare(base, cur, 0.10, nil, nil, nil)); len(regs) != 0 {
		t.Fatalf("new metric must not fail the gate before a baseline refresh, got %v", regs)
	}
}

func TestReportRoundTrip(t *testing.T) {
	base, _ := metricsLike(1.0)
	path := filepath.Join(t.TempDir(), "bench.json")
	in := &Report{Go: "go1.24.0", Reps: 5, Metrics: base}
	if err := writeReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.Go != in.Go || out.Reps != in.Reps || len(out.Metrics) != len(in.Metrics) {
		t.Fatalf("round trip mismatch: %+v vs %+v", out, in)
	}
	for k, v := range in.Metrics {
		if out.Metrics[k] != v {
			t.Errorf("metric %s: %v != %v", k, out.Metrics[k], v)
		}
	}
}

func TestReadReportRejectsEmpty(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readReport(path); err == nil {
		t.Fatal("report without metrics must be rejected")
	}
}

func TestComparePerMetricToleranceOverride(t *testing.T) {
	base, cur := metricsLike(1.0)
	cur["batch.192.calls_per_s"] *= 0.82 // within a 25% override, beyond the 10% default
	overrides := map[string]float64{"batch.192.calls_per_s": 0.25}
	if regs := Regressions(Compare(base, cur, 0.10, overrides, nil, nil)); len(regs) != 0 {
		t.Fatalf("override not honored: %v", regs)
	}
	if regs := Regressions(Compare(base, cur, 0.10, nil, nil, nil)); len(regs) != 1 {
		t.Fatalf("without override the drop must fail, got %v", regs)
	}
	// The override must not loosen other metrics.
	cur["multiply.512.gflops"] *= 0.85
	if regs := Regressions(Compare(base, cur, 0.10, overrides, nil, nil)); len(regs) != 1 || regs[0].Name != "multiply.512.gflops" {
		t.Fatalf("default tolerance lost: %v", regs)
	}
}

// TestCompareSkipsCapabilityGatedMetrics: a SIMD-only metric in the
// baseline must SKIP (not MISSING-fail) on a host without the capability,
// while still failing where the capability exists.
func TestCompareSkipsCapabilityGatedMetrics(t *testing.T) {
	base, cur := metricsLike(1.0)
	base["kernel.simd.512.gflops"] = 30.0
	requires := map[string]string{"kernel.simd.512.gflops": "simd"}

	// Fallback host: metric unmeasured, capability absent -> skipped.
	deltas := Compare(base, cur, 0.10, nil, requires, map[string]bool{"simd": false})
	var skip *Delta
	for i := range deltas {
		if deltas[i].Name == "kernel.simd.512.gflops" {
			skip = &deltas[i]
		}
	}
	if skip == nil || !skip.Skipped || skip.Needs != "simd" || skip.Regress {
		t.Fatalf("fallback host must skip the gated metric, got %+v", skip)
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("fallback host must pass, got %v", regs)
	}

	// SIMD host that failed to measure it -> still a hard MISSING failure.
	deltas = Compare(base, cur, 0.10, nil, requires, map[string]bool{"simd": true})
	regs := Regressions(deltas)
	if len(regs) != 1 || !regs[0].Missing {
		t.Fatalf("capable host must fail on the missing gated metric, got %v", regs)
	}

	// Fallback host that measured it anyway: still skipped — numbers
	// taken under different dispatch are not comparable.
	cur["kernel.simd.512.gflops"] = 20.0
	deltas = Compare(base, cur, 0.10, nil, requires, map[string]bool{"simd": false})
	for _, d := range deltas {
		if d.Name == "kernel.simd.512.gflops" && (!d.Skipped || d.Regress) {
			t.Fatalf("gated metric must skip regardless of measurement, got %+v", d)
		}
	}

	// Engine-level metrics gated the same way: a SIMD-measured multiply
	// baseline must not judge a scalar host's (slower) re-measurement.
	base["multiply.512.gflops"] = 27.0
	cur["multiply.512.gflops"] = 4.8
	requires["multiply.512.gflops"] = "simd"
	regs = Regressions(Compare(base, cur, 0.10, nil, requires, map[string]bool{"simd": false}))
	if len(regs) != 0 {
		t.Fatalf("scalar host vs SIMD baseline must not regress on dispatch-sensitive metrics, got %v", regs)
	}
}

// TestReportRoundTripISARequires pins the new report fields through JSON.
func TestReportRoundTripISARequires(t *testing.T) {
	base, _ := metricsLike(1.0)
	path := filepath.Join(t.TempDir(), "bench.json")
	in := &Report{
		Go: "go1.24.0", Reps: 5, Metrics: base,
		ISA:      "avx2+fma",
		Requires: map[string]string{"kernel.simd.512.gflops": "simd"},
	}
	if err := writeReport(path, in); err != nil {
		t.Fatal(err)
	}
	out, err := readReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.ISA != in.ISA || out.Requires["kernel.simd.512.gflops"] != "simd" {
		t.Fatalf("ISA/Requires lost in round trip: %+v", out)
	}
}

// TestCompareLatencyInversion: "_ms"/"_ns" metrics are lower-is-better —
// a latency increase beyond tolerance must regress, a decrease must show
// as improvement, and throughputs keep the direct ratio.
func TestCompareLatencyInversion(t *testing.T) {
	base := map[string]float64{
		"serve.p50_ms":        4.0,
		"serve.latency_ns":    8000,
		"serve.calls_per_sec": 500,
	}

	slower := map[string]float64{
		"serve.p50_ms":        8.0,  // doubled latency: ratio 0.5
		"serve.latency_ns":    8000, // unchanged
		"serve.calls_per_sec": 500,
	}
	regs := Regressions(Compare(base, slower, 0.10, nil, nil, nil))
	if len(regs) != 1 || regs[0].Name != "serve.p50_ms" {
		t.Fatalf("doubled p50 not flagged: %v", regs)
	}
	if r := regs[0].Ratio; r < 0.49 || r > 0.51 {
		t.Fatalf("inverted ratio %g, want ~0.5", r)
	}

	faster := map[string]float64{
		"serve.p50_ms":        2.0, // halved latency: ratio 2.0 = improved
		"serve.latency_ns":    8000,
		"serve.calls_per_sec": 500,
	}
	for _, d := range Compare(base, faster, 0.10, nil, nil, nil) {
		if d.Name == "serve.p50_ms" && (!d.Improved || d.Regress) {
			t.Fatalf("halved p50 not an improvement: %+v", d)
		}
	}
}

func TestLowerIsBetterNames(t *testing.T) {
	for name, want := range map[string]bool{
		"serve.p50_ms":             true,
		"serve.p99_ms":             true,
		"serve.latency_ns":         true,
		"serve.calls_per_sec":      false,
		"serve.coalesce_ratio":     false,
		"kernel.packed.512.gflops": false,
	} {
		if got := LowerIsBetter(name); got != want {
			t.Errorf("LowerIsBetter(%q) = %v, want %v", name, got, want)
		}
	}
}

// TestCompareSkipsMulticoreGatedMetrics: a serve.* baseline measured on a
// multicore host is SKIPPED, not failed, when the gating host has one CPU
// — even when the metric was measured (numbers are not comparable) or is
// missing entirely.
func TestCompareSkipsMulticoreGatedMetrics(t *testing.T) {
	base := map[string]float64{
		"serve.calls_per_sec":      500,
		"serve.p99_ms":             12.0,
		"kernel.packed.512.gflops": 4.5,
	}
	cur := map[string]float64{
		"serve.calls_per_sec":      90, // measured, but on one core
		"kernel.packed.512.gflops": 4.5,
	}
	requires := map[string]string{
		"serve.calls_per_sec": "multicore",
		"serve.p99_ms":        "multicore",
	}

	oneCPU := map[string]bool{"multicore": false}
	deltas := Compare(base, cur, 0.10, nil, requires, oneCPU)
	for _, d := range deltas {
		switch d.Name {
		case "serve.calls_per_sec", "serve.p99_ms":
			if !d.Skipped || d.Needs != "multicore" || d.Regress {
				t.Fatalf("%s on a 1-CPU host: %+v, want skipped", d.Name, d)
			}
		default:
			if d.Skipped {
				t.Fatalf("ungated %s skipped: %+v", d.Name, d)
			}
		}
	}
	if regs := Regressions(deltas); len(regs) != 0 {
		t.Fatalf("1-CPU host failed the gate: %v", regs)
	}

	// On a multicore host the same baseline gates normally: the collapsed
	// throughput and the missing latency metric both fail.
	manyCPU := map[string]bool{"multicore": true}
	regs := Regressions(Compare(base, cur, 0.10, nil, requires, manyCPU))
	if len(regs) != 2 {
		t.Fatalf("multicore host: %d regressions, want 2 (collapse + missing)", len(regs))
	}
}

// The noise fingerprint: recordNoise captures relative rep-to-rep spread,
// and NoisyMetrics flags exactly the metrics whose spread exceeds the
// tolerance that would judge them — the -update-baseline refusal set.
func TestNoiseFingerprint(t *testing.T) {
	defer func() { noiseSpread = map[string]float64{} }()
	noiseSpread = map[string]float64{}

	recordNoise("steady.gflops", []float64{10, 10.2, 9.9, 10.1, 10})
	recordNoise("jittery.calls_per_s", []float64{100, 140, 90, 130, 110})
	recordNoise("derived.ratio", []float64{1.5}) // single sample: no entry
	recordNoise("dead.metric", []float64{0, 0, 0})

	noise := noiseSnapshot()
	if _, ok := noise["derived.ratio"]; ok {
		t.Error("single-sample metric got a noise entry")
	}
	if _, ok := noise["dead.metric"]; ok {
		t.Error("zero-median metric got a noise entry")
	}
	if got := noise["steady.gflops"]; got < 0.02 || got > 0.04 {
		t.Errorf("steady spread = %v, want (10.2-9.9)/10 = 0.03", got)
	}
	if got := noise["jittery.calls_per_s"]; got < 0.44 || got > 0.47 {
		t.Errorf("jittery spread = %v, want (140-90)/110 ≈ 0.4545", got)
	}

	// Default tolerance 10%: only the jittery metric is unmintable.
	bad := NoisyMetrics(noise, 0.10, nil)
	if len(bad) != 1 || bad[0] != "jittery.calls_per_s" {
		t.Fatalf("NoisyMetrics = %v, want [jittery.calls_per_s]", bad)
	}
	// A per-metric tolerance override wider than the spread clears it.
	bad = NoisyMetrics(noise, 0.10, map[string]float64{"jittery.calls_per_s": 0.5})
	if len(bad) != 0 {
		t.Fatalf("NoisyMetrics with wide override = %v, want none", bad)
	}
	// And a narrowed override flags the steady one too.
	bad = NoisyMetrics(noise, 0.10, map[string]float64{"steady.gflops": 0.01})
	if len(bad) != 2 {
		t.Fatalf("NoisyMetrics with narrow override = %v, want both", bad)
	}
}

// medianNoise records while it measures: the spread of the samples it took
// lands in the fingerprint under the metric's name.
func TestMedianNoiseRecords(t *testing.T) {
	defer func() { noiseSpread = map[string]float64{} }()
	noiseSpread = map[string]float64{}
	vals := []float64{4, 6, 5, 5, 5}
	i := 0
	got := medianNoise("m.gflops", len(vals), func() float64 { v := vals[i]; i++; return v })
	if got != 5 {
		t.Fatalf("median = %v, want 5", got)
	}
	if s := noiseSnapshot()["m.gflops"]; s < 0.39 || s > 0.41 {
		t.Fatalf("recorded spread = %v, want (6-4)/5 = 0.4", s)
	}
}
