// Command matmul is the end-user face of the library: it multiplies two
// matrices (from whitespace-text files, or randomly generated) with DGEFMM
// and reports timing and a recursion trace. It is what "replacing DGEMM
// with our routine" looks like as a tool.
//
// Usage:
//
//	matmul -a a.txt -b b.txt -out c.txt          # C = A·B from files
//	matmul -random 1200 -engine both             # compare engines
//	matmul -random 999 -trace                    # see peeling in action
//	matmul -a a.txt -b b.txt -ta                 # C = Aᵀ·B
//	matmul -random 2048 -trace-out t.json        # timed recursion tree (Perfetto)
//
// Engines: dgefmm (default), dgemm, both (times the two and checks
// agreement). Kernels: auto (default: SIMD when the CPU has it, scalar
// packed otherwise), simd, packed, blocked, vector, naive.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/blas"
	"repro/internal/cli"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/strassen"
)

func main() {
	var (
		aPath      = flag.String("a", "", "left operand file (text rows)")
		bPath      = flag.String("b", "", "right operand file")
		outPath    = flag.String("out", "", "output file (omit to skip writing)")
		random     = flag.Int("random", 0, "generate random square operands of this order instead of reading files")
		seed       = flag.Int64("seed", 1, "seed for -random")
		engine     = flag.String("engine", "dgefmm", "dgefmm | dgemm | both")
		kernelName = flag.String("kernel", "auto", "auto | simd | packed | blocked | vector | naive")
		ta         = flag.Bool("ta", false, "use Aᵀ")
		tb         = flag.Bool("tb", false, "use Bᵀ")
		alpha      = flag.Float64("alpha", 1, "alpha scalar")
		trace      = flag.Bool("trace", false, "print a recursion trace summary")
		par        = flag.Int("parallel", 0, "run up to this many of the 7 products concurrently")
		metricsOut = flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file when done")
		traceOut   = flag.String("trace-out", "", "write the recorded spans (Chrome trace-event JSON) to this file when done")
		httpAddr   = flag.String("http", "", "serve live expvar/pprof/metrics endpoints on this address (e.g. :6060)")
		fused      = cli.FusedFlag(nil)
		algoFlag   = cli.AlgoFlag(nil)
		logLevel   = cli.LogLevelFlag(nil)
	)
	flag.Parse()
	cli.InitLogging(*logLevel)

	var kern blas.Kernel
	if *kernelName == "auto" || *kernelName == "" {
		kern = kernel.Default()
	} else if kern = blas.KernelByName(*kernelName); kern == nil {
		fatalf("unknown kernel %q (have auto %s)", *kernelName, strings.Join(blas.KernelNames(), " "))
	}
	slog.Info("kernel selected", "name", kern.Name(), "isa", kernelISA(kern))

	var a, b *matrix.Dense
	switch {
	case *random > 0:
		rng := rand.New(rand.NewSource(*seed))
		a = matrix.NewRandom(*random, *random, rng)
		b = matrix.NewRandom(*random, *random, rng)
	case *aPath != "" && *bPath != "":
		a = mustRead(*aPath)
		b = mustRead(*bPath)
	default:
		fatalf("provide -a and -b files, or -random N")
	}

	m, k := a.Rows, a.Cols
	if *ta {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if *tb {
		kb, n = n, kb
	}
	if kb != k {
		fatalf("inner dimensions mismatch: op(A) is %dx%d, op(B) is %dx%d", m, k, kb, n)
	}
	transA, transB := blas.NoTrans, blas.NoTrans
	if *ta {
		transA = blas.Trans
	}
	if *tb {
		transB = blas.Trans
	}

	cfg := strassen.DefaultConfig(kern)
	fusedMode, err := strassen.ParseFusedMode(*fused)
	if err != nil {
		fatalf("%v", err)
	}
	cfg.Fused = fusedMode
	// Re-resolve the cutoff so the "+fused" calibrated parameters apply
	// when the fused driver is active.
	cfg.Criterion = nil
	slog.Info("fused winograd", "mode", fusedMode, "active", cfg.FusedActive())
	// -algo keeps its raw spelling: "" defers to DGEFMM_ALGO, an explicit
	// "default" beats it (the PR 5 precedence, as with -kernel and -fused).
	if _, err := strassen.ParseAlgo(*algoFlag); err != nil {
		fatalf("%v", err)
	}
	cfg.Algo = *algoFlag
	slog.Info("fast algorithm", "selection", cfg.AlgoSelection())
	cfg.Parallel = *par
	var tracer *strassen.CountTracer
	if *trace {
		tracer = strassen.NewCountTracer()
		cfg.Tracer = tracer
	}
	var col *obs.Collector
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		col = obs.NewCollector()
		col.Attach(cfg) // composes with the -trace CountTracer if both are set
		restore := col.EnablePhases()
		defer restore()
	}
	if *httpAddr != "" {
		_, bound, err := obs.StartDebugServer(*httpAddr, col)
		if err != nil {
			fatalf("start debug server on %s: %v", *httpAddr, err)
		}
		slog.Info("observability endpoints up", "url", "http://"+bound,
			"paths", "/metrics /openmetrics /trace /spans /debug/vars /debug/pprof/")
	}

	runDgefmm := func() (*matrix.Dense, time.Duration) {
		c := matrix.NewDense(m, n)
		start := time.Now()
		strassen.DGEFMM(cfg, transA, transB, m, n, k, *alpha,
			a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		return c, time.Since(start)
	}
	runDgemm := func() (*matrix.Dense, time.Duration) {
		c := matrix.NewDense(m, n)
		start := time.Now()
		blas.DgemmKernel(kern, transA, transB, m, n, k, *alpha,
			a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		return c, time.Since(start)
	}

	var result *matrix.Dense
	switch *engine {
	case "dgefmm":
		c, d := runDgefmm()
		fmt.Printf("DGEFMM: %dx%d·%dx%d in %.1f ms (%.0f MFLOPS)\n", m, k, k, n,
			d.Seconds()*1e3, 2*float64(m)*float64(k)*float64(n)/d.Seconds()/1e6)
		result = c
	case "dgemm":
		c, d := runDgemm()
		fmt.Printf("DGEMM:  %dx%d·%dx%d in %.1f ms (%.0f MFLOPS)\n", m, k, k, n,
			d.Seconds()*1e3, 2*float64(m)*float64(k)*float64(n)/d.Seconds()/1e6)
		result = c
	case "both":
		c1, d1 := runDgemm()
		c2, d2 := runDgefmm()
		fmt.Printf("DGEMM:  %.1f ms\nDGEFMM: %.1f ms (%.2fx)\n",
			d1.Seconds()*1e3, d2.Seconds()*1e3, d1.Seconds()/d2.Seconds())
		diff := matrix.MaxAbsDiff(c1, c2)
		fmt.Printf("max |Δ| between engines: %.2e\n", diff)
		result = c2
	default:
		fatalf("unknown engine %q", *engine)
	}

	if tracer != nil {
		fmt.Printf("trace: %s\n", tracer)
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatalf("create %s: %v", *outPath, err)
		}
		defer f.Close()
		if err := matrix.WriteText(f, result); err != nil {
			fatalf("write %s: %v", *outPath, err)
		}
		fmt.Printf("wrote %dx%d result to %s\n", result.Rows, result.Cols, *outPath)
	}

	if col != nil {
		if *metricsOut != "" {
			if err := col.WriteMetricsFile(*metricsOut); err != nil {
				fatalf("write %s: %v", *metricsOut, err)
			}
			fmt.Printf("wrote metrics snapshot to %s\n", *metricsOut)
		}
		if *traceOut != "" {
			if err := col.WriteTraceFile(*traceOut); err != nil {
				fatalf("write %s: %v", *traceOut, err)
			}
			fmt.Printf("wrote Chrome trace to %s\n", *traceOut)
		}
	}
	if *httpAddr != "" {
		slog.Info("done; endpoints stay up until interrupt (Ctrl-C)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

func mustRead(path string) *matrix.Dense {
	f, err := os.Open(path)
	if err != nil {
		fatalf("open %s: %v", path, err)
	}
	defer f.Close()
	m, err := matrix.ReadText(f)
	if err != nil {
		fatalf("parse %s: %v", path, err)
	}
	return m
}

// kernelISA reports the instruction set a kernel's inner loop runs on:
// the dispatched ISA for kernels that expose one, "go" for portable Go.
func kernelISA(k blas.Kernel) string {
	if ik, ok := k.(interface{ ISA() string }); ok {
		return ik.ISA()
	}
	return "go"
}

func fatalf(format string, args ...interface{}) {
	slog.Error(fmt.Sprintf(format, args...))
	os.Exit(2)
}
