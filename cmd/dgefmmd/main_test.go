package main

import (
	"reflect"
	"testing"

	"repro/internal/serve"
)

func TestParseTenantQuotas(t *testing.T) {
	cases := []struct {
		spec string
		want map[string]serve.TenantQuota
	}{
		{"", map[string]serve.TenantQuota{}},
		{"vip=100:200", map[string]serve.TenantQuota{"vip": {Rate: 100, Burst: 200}}},
		{"vip=100", map[string]serve.TenantQuota{"vip": {Rate: 100, Burst: 100}}},
		{"banned=0", map[string]serve.TenantQuota{"banned": {}}},
		{" a=1:2 , b=3 ,", map[string]serve.TenantQuota{
			"a": {Rate: 1, Burst: 2}, "b": {Rate: 3, Burst: 3}}},
	}
	for _, tc := range cases {
		got, err := parseTenantQuotas(tc.spec)
		if err != nil {
			t.Fatalf("parseTenantQuotas(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("parseTenantQuotas(%q) = %v, want %v", tc.spec, got, tc.want)
		}
	}

	for _, bad := range []string{"noequals", "=5", "t=x", "t=-1", "t=1:x", "t=1:-2"} {
		if _, err := parseTenantQuotas(bad); err == nil {
			t.Fatalf("parseTenantQuotas(%q) succeeded", bad)
		}
	}
}
