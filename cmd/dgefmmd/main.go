// Command dgefmmd serves GEMM over HTTP: binary DGEFMM calls on
// POST /v1/gemm (see internal/serve for the wire format), with same-shape
// request coalescing into the batch pool, per-tenant token-bucket quotas,
// admission-control backpressure (429 + Retry-After past the high-water
// mark), client deadline propagation, and an out-of-core tiled path for
// operands past -large-words. The full observability surface rides on the
// same mux: /debug/vars, /debug/pprof/..., /metrics, /openmetrics, /trace,
// /spans, plus /healthz and /v1/stats.
//
// Usage:
//
//	dgefmmd -addr :8433
//	dgefmmd -addr :8433 -workers 4 -coalesce-window 1ms -max-batch 16
//	dgefmmd -quota-rate 100 -quota-burst 20 -tenant-quotas 'bulk=10:5,vip=1000:200'
//	dgefmmd -large-words 1048576 -spool-dir /var/tmp
//
// SIGINT/SIGTERM shut down gracefully: stop accepting, drain in-flight
// requests, flush pending coalesce groups, close the pool.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	var (
		addr      = flag.String("addr", ":8433", "listen address")
		workers   = flag.Int("workers", 0, "batch pool workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "batch pool queue depth (0 = 4x workers)")
		highWater = flag.Int("high-water", 0, "admission high-water mark; past it requests get 429 (0 = 4x queue depth)")
		window    = flag.Duration("coalesce-window", 0, "how long the first request of a shape waits for company (0 = 500us default, negative disables)")
		maxBatch  = flag.Int("max-batch", 0, "flush a shape group early at this many calls (0 = 32)")

		quotaRate  = flag.Float64("quota-rate", 0, "default tenant quota: sustained requests/s (0 = unlimited)")
		quotaBurst = flag.Float64("quota-burst", 0, "default tenant quota: burst size (0 = rate)")
		tenants    = flag.String("tenant-quotas", "", "per-tenant overrides: 'name=rate:burst,...' (rate 0 = always reject)")

		largeWords = flag.Int64("large-words", 0, "route operands past this many float64 words out of core (0 = 1<<24)")
		ooWords    = flag.Int("oo-words", 0, "out-of-core in-core workspace budget in words (0 = package default)")
		spoolDir   = flag.String("spool-dir", "", "stage out-of-core operands in files under this directory (empty = in memory)")

		shutdownTimeout = flag.Duration("shutdown-timeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")
		logLevel        = cli.LogLevelFlag(nil)
	)
	flag.Parse()
	logger := cli.InitLogging(*logLevel)

	quota := serve.QuotaConfig{
		Default: serve.TenantQuota{Rate: *quotaRate, Burst: *quotaBurst},
	}
	if *tenants != "" {
		var err error
		if quota.Tenants, err = parseTenantQuotas(*tenants); err != nil {
			fatal(err)
		}
	}

	gemm := serve.New(&serve.Options{
		Workers:        *workers,
		QueueDepth:     *queue,
		HighWater:      *highWater,
		CoalesceWindow: *window,
		MaxBatch:       *maxBatch,
		Quota:          quota,
		LargeWords:     *largeWords,
		OutOfCoreWords: *ooWords,
		SpoolDir:       *spoolDir,
		Logger:         logger,
	})

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           gemm.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	h2c := serve.EnableH2C(httpSrv, nil)
	logger.Info("dgefmmd listening", "addr", *addr, "h2c", h2c)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	logger.Info("shutting down", "drain_budget", *shutdownTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		logger.Warn("drain incomplete, closing", "err", err)
		httpSrv.Close()
	}
	gemm.Close()
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Info("dgefmmd stopped")
}

// parseTenantQuotas parses 'name=rate:burst,...'; burst defaults to rate
// when omitted ("name=rate"). An explicit zero rate rejects every request
// from that tenant.
func parseTenantQuotas(spec string) (map[string]serve.TenantQuota, error) {
	out := make(map[string]serve.TenantQuota)
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		eq := strings.IndexByte(ent, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("bad -tenant-quotas entry %q (want name=rate:burst)", ent)
		}
		name, val := ent[:eq], ent[eq+1:]
		var q serve.TenantQuota
		rateStr, burstStr, hasBurst := strings.Cut(val, ":")
		rate, err := strconv.ParseFloat(rateStr, 64)
		if err != nil || rate < 0 {
			return nil, fmt.Errorf("bad rate in -tenant-quotas entry %q", ent)
		}
		q.Rate = rate
		q.Burst = rate
		if hasBurst {
			burst, err := strconv.ParseFloat(burstStr, 64)
			if err != nil || burst < 0 {
				return nil, fmt.Errorf("bad burst in -tenant-quotas entry %q", ent)
			}
			q.Burst = burst
		}
		out[name] = q
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dgefmmd:", err)
	os.Exit(1)
}
