// Command obsreport turns the phase-attribution counters into a
// performance report: per-phase GFLOPS, memory traffic, arithmetic
// intensity and roofline position for DGEFMM multiplies run in-process,
// with the FLOP accounting cross-checked against the analytic Winograd
// operation counts (internal/opcount).
//
// The roofline model is measured, not assumed: the compute roof is the
// packed kernel's best observed rate on an in-cache multiply, and the
// memory roof is a streaming-triad sweep over a working set sized from
// the detected cache geometry (the same detection cmd/calibrate's -blocks
// mode uses). When perf_event hardware counters are available the report
// adds cycles, IPC and LLC misses for the measured region; elsewhere it
// degrades to FLOP/wall-clock attribution with no error.
//
// Usage:
//
//	obsreport                          # attribution for n=256,512 at depth 2
//	obsreport -sizes 512 -depth 3 -v   # one size, deeper recursion, prose
//	obsreport -format json             # machine-readable report array
//	obsreport -trace-out run.trace     # also dump a Chrome trace of spans
//	obsreport -metrics snap.json       # offline: re-render a saved snapshot
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/blas"
	"repro/internal/cli"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/opcount"
	"repro/internal/phase"
	"repro/internal/strassen"
)

func main() {
	var (
		sizes      = flag.String("sizes", "256,512", "comma-separated problem orders to attribute")
		depth      = flag.Int("depth", 2, "forced Strassen recursion depth (Always criterion)")
		reps       = flag.Int("reps", 3, "repetitions per size (counters accumulate)")
		seed       = flag.Int64("seed", 1, "RNG seed for the test matrices")
		format     = flag.String("format", "text", "output format: text or json")
		verbose    = flag.Bool("v", false, "text format: add per-phase roofline prose")
		noRoof     = flag.Bool("no-roofline", false, "skip the roofline calibration (faster)")
		traceOut   = flag.String("trace-out", "", "write a Chrome trace of the recursion spans to this file")
		metricsOut = flag.String("metrics-out", "", "write the collector snapshot (JSON) to this file")
		metricsIn  = flag.String("metrics", "", "offline mode: render a saved snapshot file instead of running")
		logLevel   = cli.LogLevelFlag(nil)
	)
	flag.Parse()
	cli.InitLogging(*logLevel)

	if *metricsIn != "" {
		data, err := os.ReadFile(*metricsIn)
		if err != nil {
			slog.Error("read snapshot", "path", *metricsIn, "err", err)
			os.Exit(1)
		}
		rep, err := offlineReport(data)
		if err != nil {
			slog.Error("render snapshot", "path", *metricsIn, "err", err)
			os.Exit(1)
		}
		emit([]Report{rep}, *format, *verbose)
		return
	}

	ns, err := parseSizes(*sizes)
	if err != nil {
		slog.Error("bad -sizes", "err", err)
		os.Exit(2)
	}
	if *depth < 1 {
		slog.Error("-depth must be >= 1")
		os.Exit(2)
	}

	var roof *Roofline
	if !*noRoof {
		slog.Debug("calibrating roofline model")
		r := measureRoofline()
		roof = &r
		slog.Info("roofline calibrated",
			"peak_gflops", fmt.Sprintf("%.2f", r.PeakGFLOPS),
			"mem_gbps", fmt.Sprintf("%.2f", r.MemGBps),
			"ridge_ai", fmt.Sprintf("%.2f", r.RidgeAI))
	}

	col := obs.NewCollector()
	reports := make([]Report, 0, len(ns))
	for _, n := range ns {
		reports = append(reports, runOne(col, n, *depth, *reps, *seed, roof))
	}

	emit(reports, *format, *verbose)

	if *traceOut != "" {
		if err := col.WriteTraceFile(*traceOut); err != nil {
			slog.Error("write trace", "path", *traceOut, "err", err)
			os.Exit(1)
		}
		slog.Info("wrote Chrome trace", "path", *traceOut)
	}
	if *metricsOut != "" {
		if err := col.WriteMetricsFile(*metricsOut); err != nil {
			slog.Error("write metrics", "path", *metricsOut, "err", err)
			os.Exit(1)
		}
		slog.Info("wrote metrics snapshot", "path", *metricsOut)
	}

	// A mismatch between measured and analytic FLOPs means the
	// instrumentation itself is wrong — fail loudly so CI smoke runs gate
	// on attribution correctness, not just on producing output.
	for _, r := range reports {
		if r.Check != nil && !r.Check.Exact {
			slog.Error("flop cross-check mismatch", "n", r.N, "depth", r.Depth)
			os.Exit(1)
		}
	}
}

func parseSizes(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad size %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

// runOne runs reps instrumented multiplies of order n at the forced
// depth and builds the attribution report. The phase profiler is scoped
// to this size so each report's counters stand alone; the span collector
// accumulates across sizes for the optional Chrome trace.
func runOne(col *obs.Collector, n, depth, reps int, seed int64, roof *Roofline) Report {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewRandom(n, n, rng)
	b := matrix.NewRandom(n, n, rng)
	c := matrix.NewDense(n, n)

	cfg := col.Attach(&strassen.Config{
		Schedule:  strassen.ScheduleStrassen1,
		Criterion: strassen.Always{},
		MaxDepth:  depth,
	})
	restore := col.EnablePhases()

	var wall time.Duration
	perf, perfOK := obs.MeasurePerf(func() {
		start := time.Now()
		for r := 0; r < reps; r++ {
			strassen.Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
		}
		wall = time.Since(start)
	})
	restore()

	stats := col.Phases().Snapshot()
	analytic := opcount.Strassen1Counts(depth, n, n, n)
	rep := Report{
		N:        n,
		Depth:    depth,
		Reps:     reps,
		WallNS:   int64(wall),
		GFLOPS:   float64(analytic.Total()*int64(reps)) / wall.Seconds() / 1e9,
		Roofline: roof,
		Phases:   buildRows(stats, roof),
		Check:    crossCheck(stats, n, depth, reps),
	}
	if !phase.Enabled {
		// Under -tags phaseoff there are no samples to check against;
		// report timing only rather than a vacuous mismatch.
		rep.Check = nil
		rep.Phases = nil
	}
	if perfOK {
		rep.Perf = &perf
	} else {
		slog.Debug("hardware counters unavailable; FLOP/wall attribution only")
	}
	col.Phases().Reset()
	return rep
}

func emit(reports []Report, format string, verbose bool) {
	switch format {
	case "json":
		if err := writeJSON(os.Stdout, reports); err != nil {
			slog.Error("encode report", "err", err)
			os.Exit(1)
		}
	case "text":
		for i, r := range reports {
			if i > 0 {
				fmt.Println()
			}
			r.writeText(os.Stdout)
			if verbose && r.Roofline != nil {
				for _, row := range r.Phases {
					fmt.Println("  " + rooflineNote(row, *r.Roofline))
				}
			}
		}
	default:
		slog.Error("unknown -format", "format", format)
		os.Exit(2)
	}
}

// measureRoofline measures the two ceilings. Compute: the default
// (packed) kernel's best rate on an order-256 multiply, repeated — the
// same figure calibrate's -blocks sweep maximises. Memory: a
// streaming triad c[i] = a[i] + s·b[i] over a working set 4× the
// detected L3, counting 24 bytes moved per element (read a, read b,
// write c, ignoring write-allocate traffic as roofline convention does).
func measureRoofline() Roofline {
	caches := kernel.DetectCaches()

	const n = 256
	rng := rand.New(rand.NewSource(99))
	a := make([]float64, n*n)
	b := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		b[i] = rng.Float64()
	}
	k := kernel.Default()
	flops := 2 * float64(n) * float64(n) * float64(n)
	var peak float64
	for r := 0; r < 5; r++ {
		start := time.Now()
		k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n)
		if g := flops / time.Since(start).Seconds() / 1e9; g > peak {
			peak = g
		}
	}

	// 4× L3 defeats caching, but detected L3 can be a multi-instance sum
	// on big boxes — cap the sweep at 3×128 MB of arrays.
	words := int(4 * caches.L3 / 8)
	if words > 16<<20 {
		words = 16 << 20
	}
	if words < 1<<20 {
		words = 1 << 20
	}
	sa := make([]float64, words)
	sb := make([]float64, words)
	sc := make([]float64, words)
	for i := range sa {
		sa[i] = 1.0
		sb[i] = 2.0
	}
	var bw float64
	for r := 0; r < 3; r++ {
		start := time.Now()
		for i := range sc {
			sc[i] = sa[i] + 3.0*sb[i]
		}
		bytes := 24 * float64(words)
		if g := bytes / time.Since(start).Seconds() / 1e9; g > bw {
			bw = g
		}
	}

	roof := Roofline{PeakGFLOPS: peak, MemGBps: bw, Caches: caches}
	if bw > 0 {
		roof.RidgeAI = peak / bw
	}
	return roof
}
