package main

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/opcount"
	"repro/internal/phase"
)

// Roofline is the machine model the attribution rows are positioned
// against: a measured compute ceiling, a measured memory-bandwidth
// ceiling, and the ridge intensity where they cross. The cache geometry
// that sized the bandwidth working set rides along for the report.
type Roofline struct {
	PeakGFLOPS float64       `json:"peak_gflops"`
	MemGBps    float64       `json:"mem_gbps"`
	RidgeAI    float64       `json:"ridge_ai"` // FLOP/byte where the roofs meet
	Caches     kernel.Caches `json:"caches"`
}

// Attainable returns the roofline ceiling (GFLOPS) at intensity ai.
func (r Roofline) Attainable(ai float64) float64 {
	if bw := ai * r.MemGBps; bw < r.PeakGFLOPS {
		return bw
	}
	return r.PeakGFLOPS
}

// PhaseRow is one phase's attribution: the raw counters plus derived
// rates and its roofline position. Phase byte counters measure traffic
// at the touched-operand level (every word the phase reads or writes),
// not DRAM lines, so AI is a lower bound on the true DRAM intensity and
// cache-resident phases can legitimately exceed 100% of the DRAM-fed
// roof — that excess is itself the signal that the blocking is working.
type PhaseRow struct {
	phase.Stat
	GFLOPS     float64 `json:"gflops"`
	GBps       float64 `json:"gbps"`
	AI         float64 `json:"ai"` // arithmetic intensity, FLOP/byte
	Attainable float64 `json:"attainable_gflops"`
	PctRoof    float64 `json:"pct_of_roof"`
	Bound      string  `json:"bound"` // "compute" | "memory" | "-" (no FLOPs)
}

// FlopCheck records the cross-check of measured phase FLOPs against the
// analytic per-phase Winograd decomposition (internal/opcount).
type FlopCheck struct {
	MeasuredMul      int64 `json:"measured_mul"`
	MeasuredAddSub   int64 `json:"measured_addsub"`
	MeasuredQuadrant int64 `json:"measured_quadrant"`
	AnalyticMul      int64 `json:"analytic_mul"`
	AnalyticAddSub   int64 `json:"analytic_addsub"`
	AnalyticQuadrant int64 `json:"analytic_quadrant"`
	Exact            bool  `json:"exact"`
}

// Report is the full attribution report for one problem size.
type Report struct {
	N        int             `json:"n"`
	Depth    int             `json:"depth"`
	Reps     int             `json:"reps"`
	WallNS   int64           `json:"wall_ns"`
	GFLOPS   float64         `json:"gflops"` // whole-multiply effective rate
	Roofline *Roofline       `json:"roofline,omitempty"`
	Phases   []PhaseRow      `json:"phases"`
	Check    *FlopCheck      `json:"flop_check,omitempty"`
	Perf     *obs.PerfCounts `json:"perf,omitempty"`
}

// buildRows derives attribution rows from a phase snapshot, dropping
// phases that never fired.
func buildRows(stats []phase.Stat, roof *Roofline) []PhaseRow {
	rows := make([]PhaseRow, 0, len(stats))
	for _, st := range stats {
		if st.Count == 0 {
			continue
		}
		row := PhaseRow{
			Stat:   st,
			GFLOPS: st.GFLOPS(),
			GBps:   st.GBps(),
			AI:     st.Intensity(),
			Bound:  "-",
		}
		if st.Flops > 0 && roof != nil {
			row.Attainable = roof.Attainable(row.AI)
			if row.Attainable > 0 {
				row.PctRoof = 100 * row.GFLOPS / row.Attainable
			}
			if row.AI >= roof.RidgeAI {
				row.Bound = "compute"
			} else {
				row.Bound = "memory"
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// crossCheck compares measured phase FLOPs (over reps repetitions of an
// n×n×n depth-d STRASSEN1 multiply) against the analytic decomposition.
func crossCheck(stats []phase.Stat, n, depth, reps int) *FlopCheck {
	want := opcount.Strassen1Counts(depth, n, n, n)
	r := int64(reps)
	c := &FlopCheck{
		MeasuredMul:      stats[phase.KernelMicro].Flops + stats[phase.KernelFringe].Flops,
		MeasuredAddSub:   stats[phase.StrassenAddSub].Flops,
		MeasuredQuadrant: stats[phase.StrassenQuadrant].Flops,
		AnalyticMul:      want.Mul * r,
		AnalyticAddSub:   want.AddSub * r,
		AnalyticQuadrant: want.Quadrant * r,
	}
	c.Exact = c.MeasuredMul == c.AnalyticMul &&
		c.MeasuredAddSub == c.AnalyticAddSub &&
		c.MeasuredQuadrant == c.AnalyticQuadrant
	return c
}

// writeText renders the report as a fixed-width attribution table.
func (r Report) writeText(w io.Writer) {
	fmt.Fprintf(w, "n=%d  depth=%d  reps=%d  wall=%v  %.2f GFLOPS effective\n",
		r.N, r.Depth, r.Reps, time.Duration(r.WallNS), r.GFLOPS)
	if r.Roofline != nil {
		fmt.Fprintf(w, "roofline: peak %.2f GFLOPS, mem %.2f GB/s, ridge at %.2f FLOP/byte (L1d=%dK L2=%dK L3=%dK)\n",
			r.Roofline.PeakGFLOPS, r.Roofline.MemGBps, r.Roofline.RidgeAI,
			r.Roofline.Caches.L1D>>10, r.Roofline.Caches.L2>>10, r.Roofline.Caches.L3>>10)
	}
	fmt.Fprintf(w, "%-22s %10s %12s %9s %9s %8s %9s %8s\n",
		"phase", "count", "time", "GFLOPS", "GB/s", "AI", "%roof", "bound")
	var totNS, totFlops int64
	for _, row := range r.Phases {
		pct := "-"
		if row.Bound != "-" {
			pct = fmt.Sprintf("%.1f", row.PctRoof)
		}
		fmt.Fprintf(w, "%-22s %10d %12v %9.2f %9.2f %8.3f %9s %8s\n",
			row.Name, row.Count, time.Duration(row.NS).Round(time.Microsecond),
			row.GFLOPS, row.GBps, row.AI, pct, row.Bound)
		totNS += row.NS
		totFlops += row.Flops
	}
	fmt.Fprintf(w, "%-22s %10s %12v  (%.1f%% of wall attributed, %d FLOPs)\n",
		"total", "", time.Duration(totNS).Round(time.Microsecond),
		100*float64(totNS)/float64(r.WallNS), totFlops)
	if r.Check != nil {
		status := "EXACT"
		if !r.Check.Exact {
			status = "MISMATCH"
		}
		fmt.Fprintf(w, "flop cross-check vs opcount.Strassen1Counts: %s (mul %d/%d, addsub %d/%d, quadrant %d/%d)\n",
			status,
			r.Check.MeasuredMul, r.Check.AnalyticMul,
			r.Check.MeasuredAddSub, r.Check.AnalyticAddSub,
			r.Check.MeasuredQuadrant, r.Check.AnalyticQuadrant)
	}
	if r.Perf != nil {
		scaled := ""
		if r.Perf.Scaled {
			scaled = " (multiplexed, scaled)"
		}
		fmt.Fprintf(w, "hardware: %d cycles, %d instructions (IPC %.2f), %d LLC misses (%.2f MPKI)%s\n",
			r.Perf.Cycles, r.Perf.Instructions, r.Perf.IPC(),
			r.Perf.LLCMisses, r.Perf.MissesPerKiloInstruction(), scaled)
	}
}

// writeJSON renders one or more reports as an indented JSON array.
func writeJSON(w io.Writer, reports []Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}

// offlineReport rebuilds an attribution table from a saved obs.Snapshot
// (as written by -metrics-out here or in cmd/calibrate). No roofline or
// cross-check: the machine and run shape that produced the file are
// unknown.
func offlineReport(data []byte) (Report, error) {
	var snap obs.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return Report{}, fmt.Errorf("not an obs snapshot: %w", err)
	}
	if len(snap.Phases) == 0 {
		return Report{}, fmt.Errorf("snapshot has no phase stats (run with phases enabled)")
	}
	var wall int64
	for _, st := range snap.Phases {
		wall += st.NS
	}
	return Report{WallNS: wall, Phases: buildRows(snap.Phases, nil)}, nil
}

// rooflineNote explains a phase's position in prose, for -v output.
func rooflineNote(row PhaseRow, roof Roofline) string {
	if row.Bound == "-" {
		return fmt.Sprintf("%s: no FLOPs (data movement only, %.2f GB/s)", row.Name, row.GBps)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s: AI %.3f FLOP/byte is %s-bound (ridge %.2f); ", row.Name, row.AI, row.Bound, roof.RidgeAI)
	fmt.Fprintf(&b, "achieved %.2f of attainable %.2f GFLOPS (%.1f%%)", row.GFLOPS, row.Attainable, row.PctRoof)
	return b.String()
}
