package main

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/phase"
)

func TestRooflineAttainable(t *testing.T) {
	r := Roofline{PeakGFLOPS: 40, MemGBps: 10, RidgeAI: 4}
	if got := r.Attainable(1); got != 10 {
		t.Errorf("Attainable(1) = %v, want 10 (memory roof)", got)
	}
	if got := r.Attainable(8); got != 40 {
		t.Errorf("Attainable(8) = %v, want 40 (compute roof)", got)
	}
	if got := r.Attainable(4); got != 40 {
		t.Errorf("Attainable(ridge) = %v, want 40", got)
	}
}

func TestBuildRowsClassifiesBound(t *testing.T) {
	roof := &Roofline{PeakGFLOPS: 40, MemGBps: 10, RidgeAI: 4}
	stats := []phase.Stat{
		{Name: "compute-heavy", Count: 1, NS: 1e9, Flops: 80e9, Bytes: 10e9}, // AI 8
		{Name: "stream", Count: 1, NS: 1e9, Flops: 5e9, Bytes: 10e9},         // AI 0.5
		{Name: "copy-only", Count: 1, NS: 1e9, Flops: 0, Bytes: 10e9},
		{Name: "never-fired", Count: 0},
	}
	rows := buildRows(stats, roof)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 (zero-count dropped)", len(rows))
	}
	if rows[0].Bound != "compute" || rows[0].Attainable != 40 {
		t.Errorf("compute-heavy row: %+v", rows[0])
	}
	if rows[1].Bound != "memory" || rows[1].Attainable != 5 {
		t.Errorf("stream row: bound=%q attainable=%v, want memory/5", rows[1].Bound, rows[1].Attainable)
	}
	if rows[1].PctRoof != 100 {
		t.Errorf("stream row achieves exactly its roof: PctRoof = %v", rows[1].PctRoof)
	}
	if rows[2].Bound != "-" {
		t.Errorf("zero-FLOP row bound = %q, want -", rows[2].Bound)
	}
}

func TestRunOneCrossChecksExactly(t *testing.T) {
	if !phase.Enabled {
		t.Skip("phase accounting compiled out (-tags phaseoff)")
	}
	col := obs.NewCollector()
	rep := runOne(col, 128, 2, 2, 1, nil)
	if rep.Check == nil || !rep.Check.Exact {
		t.Fatalf("flop cross-check not exact: %+v", rep.Check)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phase rows")
	}
	if rep.WallNS <= 0 || rep.GFLOPS <= 0 {
		t.Errorf("implausible wall/GFLOPS: %d ns, %v", rep.WallNS, rep.GFLOPS)
	}
	// Counters were reset for the next size.
	for _, st := range col.Phases().Snapshot() {
		if st.Count != 0 {
			t.Errorf("phase %s not reset between sizes: %+v", st.Name, st)
		}
	}
}

func TestTextAndJSONRendering(t *testing.T) {
	if !phase.Enabled {
		t.Skip("phase accounting compiled out (-tags phaseoff)")
	}
	col := obs.NewCollector()
	rep := runOne(col, 64, 1, 1, 1, &Roofline{PeakGFLOPS: 40, MemGBps: 10, RidgeAI: 4})

	var sb strings.Builder
	rep.writeText(&sb)
	out := sb.String()
	for _, want := range []string{"kernel.micro", "strassen.addsub", "EXACT", "roofline:"} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	if err := writeJSON(&sb, []Report{rep}); err != nil {
		t.Fatal(err)
	}
	var back []Report
	if err := json.Unmarshal([]byte(sb.String()), &back); err != nil {
		t.Fatalf("JSON report does not round-trip: %v", err)
	}
	if len(back) != 1 || back[0].N != 64 || !back[0].Check.Exact {
		t.Errorf("round-tripped report: %+v", back)
	}
}

func TestOfflineReportFromSnapshot(t *testing.T) {
	if !phase.Enabled {
		t.Skip("phase accounting compiled out (-tags phaseoff)")
	}
	col := obs.NewCollector()
	runOne(col, 64, 1, 1, 1, nil)
	// runOne resets the profiler; rebuild some state and snapshot it the
	// way -metrics-out would.
	restore := col.EnablePhases()
	s := phase.Active().Begin(phase.KernelMicro)
	s.End(1<<20, 1<<16)
	restore()
	data, err := json.Marshal(col.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := offlineReport(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 || rep.Phases[0].Name != "kernel.micro" {
		t.Errorf("offline phases: %+v", rep.Phases)
	}
	if rep.Roofline != nil || rep.Check != nil {
		t.Error("offline report must not invent roofline or cross-check")
	}

	if _, err := offlineReport([]byte(`{"metrics":{}}`)); err == nil {
		t.Error("snapshot without phases must error")
	}
}

func TestParseSizes(t *testing.T) {
	got, err := parseSizes("256, 512,64")
	if err != nil || len(got) != 3 || got[0] != 256 || got[2] != 64 {
		t.Errorf("parseSizes: %v, %v", got, err)
	}
	for _, bad := range []string{"", "abc", "256,,512", "0"} {
		if _, err := parseSizes(bad); err == nil {
			t.Errorf("parseSizes(%q) accepted", bad)
		}
	}
}
