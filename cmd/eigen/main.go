// Command eigen reproduces the paper's Table 6 experiment interactively:
// it runs the ISDA symmetric eigensolver on a random matrix twice — once
// with DGEMM and once with DGEFMM as the multiplication engine — and
// reports total time, matrix-multiplication time, and the achieved
// accuracy.
//
// Usage:
//
//	eigen -n 384            # order-384 random symmetric matrix
//	eigen -n 256 -kernel vector
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"repro/internal/blas"
	"repro/internal/eigen"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

func main() {
	var (
		n      = flag.Int("n", 384, "matrix order (paper used 1000 on the RS/6000)")
		kernel = flag.String("kernel", "blocked", "DGEMM kernel (packed|blocked|vector|naive)")
		base   = flag.Int("base", 48, "Jacobi base-case size")
		seed   = flag.Int64("seed", 1, "RNG seed")
	)
	flag.Parse()

	kern := blas.KernelByName(*kernel)
	if kern == nil {
		fmt.Fprintf(os.Stderr, "unknown kernel %q\n", *kernel)
		os.Exit(2)
	}

	rng := rand.New(rand.NewSource(*seed))
	a := matrix.NewRandomSymmetric(*n, rng)
	fmt.Printf("ISDA eigensolver, random symmetric %d×%d, kernel=%s\n\n", *n, *n, *kernel)

	run := func(mul eigen.Multiplier) *eigen.Result {
		start := time.Now()
		res, err := eigen.Solve(a, &eigen.Options{Mul: mul, BaseSize: *base})
		if err != nil {
			fmt.Fprintf(os.Stderr, "solve failed: %v\n", err)
			os.Exit(1)
		}
		total := time.Since(start)
		fmt.Printf("using %s:\n", mul.Name())
		fmt.Printf("  total time:   %8.3fs\n", total.Seconds())
		fmt.Printf("  MM time:      %8.3fs  (%.0f%% of total, %d calls)\n",
			res.Stats.MMTime.Seconds(), 100*res.Stats.MMTime.Seconds()/total.Seconds(), res.Stats.MMCount)
		fmt.Printf("  poly iters:   %d   splits: %d   Jacobi blocks: %d\n",
			res.Stats.PolyIters, res.Stats.Splits, res.Stats.JacobiBlocks)
		fmt.Printf("  residual ‖AV−VΛ‖max: %.2e\n\n", residual(a, res))
		return res
	}

	gm := run(eigen.GemmMultiplier{Kernel: kern})
	sm := run(eigen.StrassenMultiplier{Config: strassen.DefaultConfig(kern)})

	var maxDiff float64
	for i := range gm.Values {
		if d := math.Abs(gm.Values[i] - sm.Values[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("MM-time saving with DGEFMM: %.1f%%  (paper saw ≈20%% at order 1000)\n",
		100*(1-sm.Stats.MMTime.Seconds()/gm.Stats.MMTime.Seconds()))
	fmt.Printf("max eigenvalue disagreement between engines: %.2e\n", maxDiff)
}

func residual(a *matrix.Dense, res *eigen.Result) float64 {
	n := a.Rows
	av := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a.Data, a.Stride,
		res.Vectors.Data, res.Vectors.Stride, 0, av.Data, av.Stride)
	var worst float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := math.Abs(av.At(i, j) - res.Values[j]*res.Vectors.At(i, j))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
