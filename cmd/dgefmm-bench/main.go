// Command dgefmm-bench regenerates the tables and figures of the paper's
// evaluation (Section 4). Each experiment prints the same rows/series the
// paper reports, plus the paper's own numbers for comparison.
//
// Usage:
//
//	dgefmm-bench                     # run everything at default scale
//	dgefmm-bench -exp table5,fig2    # run selected experiments
//	dgefmm-bench -quick              # small sizes (smoke run)
//	dgefmm-bench -exp table6 -n 512  # eigensolver at a chosen order
//
//	dgefmm-bench -batch -batch-out BENCH_PR2.json
//	                                 # batched-pool vs sequential-loop throughput
//
// Experiments: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4
// fig5 fig6 model stability parallel ablations.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/strassen"
)

func main() {
	var (
		expFlag      = flag.String("exp", "all", "comma-separated experiments (table1..table6, fig2..fig6, model, stability, parallel, ablations) or 'all'")
		quick        = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		mFlag        = flag.Int("m", 0, "matrix order override for table1")
		nFlag        = flag.Int("n", 0, "matrix order override for table6 (eigensolver)")
		samples      = flag.Int("samples", 0, "sample-count override for table4/fig6")
		kernelName   = flag.String("kernel", "auto", "kernel for fig2 and -batch (auto|simd|packed|blocked|vector|naive)")
		batchMode    = flag.Bool("batch", false, "run the batched-vs-loop throughput comparison instead of the paper experiments")
		batchCalls   = flag.Int("batch-calls", 0, "batch size for -batch (0 = 64, quick 16)")
		batchOrder   = flag.Int("batch-order", 0, "matrix order for -batch (0 = 512, quick 128)")
		batchWorkers = flag.Int("batch-workers", 0, "pool workers for -batch (0 = GOMAXPROCS)")
		batchReps    = flag.Int("batch-reps", 0, "repetitions for -batch (0 = 3); times are best-of")
		batchOut     = flag.String("batch-out", "", "write the -batch comparison as JSON to this file (e.g. BENCH_PR2.json)")
		metricsOut   = flag.String("metrics-out", "", "write a metrics snapshot (JSON) to this file when done")
		traceOut     = flag.String("trace-out", "", "write the recorded spans (Chrome trace-event JSON) to this file when done")
		httpAddr     = flag.String("http", "", "serve live expvar/pprof/metrics endpoints on this address (e.g. :6060)")
		fused        = cli.FusedFlag(nil)
		algoFlag     = cli.AlgoFlag(nil)
		logLevel     = cli.LogLevelFlag(nil)
	)
	flag.Parse()
	cli.InitLogging(*logLevel)

	// The experiments build their own Configs internally, so an explicit
	// -fused propagates through the DGEFMM_FUSED override (read lazily,
	// once, on first DGEFMM call — setting it here is race-free). The env
	// var itself still works when the flag is left at auto.
	fusedMode, err := strassen.ParseFusedMode(*fused)
	if err != nil {
		slog.Error("bad -fused", "err", err)
		os.Exit(1)
	}
	if fusedMode != strassen.FusedAuto {
		os.Setenv("DGEFMM_FUSED", fusedMode.String())
	}
	slog.Info("fused winograd", "mode", fusedMode, "env", os.Getenv("DGEFMM_FUSED"))

	// -algo propagates the same way: through the DGEFMM_ALGO override, read
	// once on first DGEFMM call, so every internally-built Config sees it.
	algoSel, err := strassen.ParseAlgo(*algoFlag)
	if err != nil {
		slog.Error("bad -algo", "err", err)
		os.Exit(1)
	}
	if algoSel != "" {
		os.Setenv("DGEFMM_ALGO", algoSel)
	}
	slog.Info("fast algorithm", "selection", (&strassen.Config{Algo: *algoFlag}).AlgoSelection(),
		"env", os.Getenv("DGEFMM_ALGO"))

	// The collector only exists when an observability flag asks for it; a
	// nil collector keeps the experiments on the untraced fast path.
	var col *obs.Collector
	if *metricsOut != "" || *traceOut != "" || *httpAddr != "" {
		col = obs.NewCollector()
		experiments.SetCollector(col)
	}
	if *httpAddr != "" {
		_, bound, err := obs.StartDebugServer(*httpAddr, col)
		if err != nil {
			slog.Error("start debug server", "addr", *httpAddr, "err", err)
			os.Exit(1)
		}
		slog.Info("observability endpoints up", "url", "http://"+bound,
			"paths", "/metrics /openmetrics /trace /spans /debug/vars /debug/pprof/")
	}

	sc := experiments.Scale{Quick: *quick}
	w := os.Stdout
	slog.Info("kernel dispatch", "info", experiments.KernelInfo(*kernelName))

	if *batchMode {
		res := experiments.BatchBench(w, *batchCalls, *batchOrder, *batchWorkers, *batchReps, *kernelName, sc)
		if *batchOut != "" {
			if err := res.WriteFile(*batchOut); err != nil {
				slog.Error("write batch comparison", "path", *batchOut, "err", err)
				os.Exit(1)
			}
			slog.Info("wrote batch comparison", "path", *batchOut)
		}
		return
	}

	all := map[string]func(){
		"table1": func() {
			rows := experiments.Table1(w, *mFlag, sc)
			if col == nil {
				return
			}
			for _, r := range rows {
				col.Registry.Gauge(fmt.Sprintf("table1.peak_words.%s.beta%d", slug(r.Impl), int(r.Beta))).Set(r.MeasuredWords)
			}
		},
		"fig2":   func() { experiments.Figure2(w, *kernelName, 0, 0, 0, sc) },
		"table2": func() { experiments.Table2(w, sc) },
		"table3": func() { experiments.Table3(w, sc) },
		"table4": func() { experiments.Table4(w, *samples, sc) },
		"table5": func() {
			rows := experiments.Table5(w, 0, sc)
			if col == nil {
				return
			}
			for _, r := range rows {
				o := float64(r.Order)
				col.Registry.FloatGauge(fmt.Sprintf("table5.gflops.%s.r%d", slug(r.Machine.Paper), r.Recursions)).
					Set(2 * o * o * o / r.TDgefmm / 1e9)
			}
		},
		"fig3":      func() { experiments.Figure3(w, sc) },
		"fig4":      func() { experiments.Figure4(w, sc) },
		"fig5":      func() { experiments.Figure5(w, sc) },
		"fig6":      func() { experiments.Figure6(w, *samples, sc) },
		"table6":    func() { experiments.Table6(w, *nFlag, sc) },
		"model":     func() { experiments.Model(w, sc) },
		"stability": func() { experiments.Stability(w, 0, 0, sc) },
		"parallel": func() {
			rows := experiments.ParallelScaling(w, *mFlag, sc)
			if col == nil {
				return
			}
			for _, r := range rows {
				col.Registry.FloatGauge(fmt.Sprintf("parallel.speedup.w%d", r.Workers)).Set(r.Speedup)
			}
		},
		"ablations": func() {
			experiments.AblationKernels(w, sc)
			fmt.Fprintln(w)
			experiments.AblationSchedules(w, sc)
			fmt.Fprintln(w)
			experiments.AblationOddHandling(w, sc)
			fmt.Fprintln(w)
			experiments.AblationPeeling(w, sc)
			fmt.Fprintln(w)
			experiments.AblationVariant(w, sc)
			fmt.Fprintln(w)
			experiments.AblationCutoffs(w, sc)
			fmt.Fprintln(w)
			experiments.AblationParallel(w, sc)
		},
	}
	order := []string{"table1", "fig2", "table2", "table3", "table4", "table5",
		"fig3", "fig4", "fig5", "fig6", "table6", "model", "stability", "parallel", "ablations"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(name)
			if _, ok := all[name]; !ok {
				slog.Error("unknown experiment", "experiment", name, "known", strings.Join(order, " "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	for i, name := range selected {
		run, ok := all[name]
		if !ok {
			slog.Error("internal error: experiment listed but not registered", "experiment", name)
			continue
		}
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "=== %s ===\n", name)
		start := time.Now()
		run()
		elapsed := time.Since(start)
		fmt.Fprintf(w, "[%s completed in %.1fs]\n", name, elapsed.Seconds())
		if col != nil {
			col.Registry.FloatGauge("bench.exp." + name + ".seconds").Set(elapsed.Seconds())
		}
	}

	if col != nil {
		if *metricsOut != "" {
			if err := col.WriteMetricsFile(*metricsOut); err != nil {
				slog.Error("write metrics snapshot", "path", *metricsOut, "err", err)
				os.Exit(1)
			}
			slog.Info("wrote metrics snapshot", "path", *metricsOut)
		}
		if *traceOut != "" {
			if err := col.WriteTraceFile(*traceOut); err != nil {
				slog.Error("write Chrome trace", "path", *traceOut, "err", err)
				os.Exit(1)
			}
			slog.Info("wrote Chrome trace", "path", *traceOut)
		}
	}
	if *httpAddr != "" {
		slog.Info("experiments done; endpoints stay up until interrupt (Ctrl-C)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt)
		<-ch
	}
}

// slug turns a free-form label ("RS/6000", "SGEMMS (CRAY style)") into a
// metric-name segment.
func slug(s string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}
