// Command dgefmm-bench regenerates the tables and figures of the paper's
// evaluation (Section 4). Each experiment prints the same rows/series the
// paper reports, plus the paper's own numbers for comparison.
//
// Usage:
//
//	dgefmm-bench                     # run everything at default scale
//	dgefmm-bench -exp table5,fig2    # run selected experiments
//	dgefmm-bench -quick              # small sizes (smoke run)
//	dgefmm-bench -exp table6 -n 512  # eigensolver at a chosen order
//
// Experiments: table1 table2 table3 table4 table5 table6 fig2 fig3 fig4
// fig5 fig6 ablations.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		expFlag = flag.String("exp", "all", "comma-separated experiments (table1..table6, fig2..fig6, ablations) or 'all'")
		quick   = flag.Bool("quick", false, "shrink sizes for a fast smoke run")
		mFlag   = flag.Int("m", 0, "matrix order override for table1")
		nFlag   = flag.Int("n", 0, "matrix order override for table6 (eigensolver)")
		samples = flag.Int("samples", 0, "sample-count override for table4/fig6")
		kernel  = flag.String("kernel", "blocked", "kernel for fig2 (blocked|vector|naive)")
	)
	flag.Parse()

	sc := experiments.Scale{Quick: *quick}
	w := os.Stdout

	all := map[string]func(){
		"table1":    func() { experiments.Table1(w, *mFlag, sc) },
		"fig2":      func() { experiments.Figure2(w, *kernel, 0, 0, 0, sc) },
		"table2":    func() { experiments.Table2(w, sc) },
		"table3":    func() { experiments.Table3(w, sc) },
		"table4":    func() { experiments.Table4(w, *samples, sc) },
		"table5":    func() { experiments.Table5(w, 0, sc) },
		"fig3":      func() { experiments.Figure3(w, sc) },
		"fig4":      func() { experiments.Figure4(w, sc) },
		"fig5":      func() { experiments.Figure5(w, sc) },
		"fig6":      func() { experiments.Figure6(w, *samples, sc) },
		"table6":    func() { experiments.Table6(w, *nFlag, sc) },
		"model":     func() { experiments.Model(w, sc) },
		"stability": func() { experiments.Stability(w, 0, 0, sc) },
		"ablations": func() {
			experiments.AblationKernels(w, sc)
			fmt.Fprintln(w)
			experiments.AblationSchedules(w, sc)
			fmt.Fprintln(w)
			experiments.AblationOddHandling(w, sc)
			fmt.Fprintln(w)
			experiments.AblationPeeling(w, sc)
			fmt.Fprintln(w)
			experiments.AblationVariant(w, sc)
			fmt.Fprintln(w)
			experiments.AblationCutoffs(w, sc)
			fmt.Fprintln(w)
			experiments.AblationParallel(w, sc)
		},
	}
	order := []string{"table1", "fig2", "table2", "table3", "table4", "table5",
		"fig3", "fig4", "fig5", "fig6", "table6", "model", "stability", "ablations"}

	var selected []string
	if *expFlag == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*expFlag, ",") {
			name = strings.TrimSpace(name)
			if _, ok := all[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q; known: %s\n", name, strings.Join(order, " "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}

	for i, name := range selected {
		run, ok := all[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "internal error: experiment %q listed but not registered\n", name)
			continue
		}
		if i > 0 {
			fmt.Fprintln(w)
		}
		fmt.Fprintf(w, "=== %s ===\n", name)
		start := time.Now()
		run()
		fmt.Fprintf(w, "[%s completed in %.1fs]\n", name, time.Since(start).Seconds())
	}
}
