package eigen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/matrix"
)

func TestSolveZeroMatrix(t *testing.T) {
	// Width-zero Gershgorin interval: the solver must shortcut to the
	// diagonal answer without iterating.
	res, err := Solve(matrix.NewDense(50, 50), &Options{BaseSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if v != 0 {
			t.Fatalf("zero matrix eigenvalue %v", v)
		}
	}
	if o := orthogonality(res.Vectors); o > 1e-14 {
		t.Fatalf("vectors not orthonormal: %g", o)
	}
}

func TestSolveScalarMultipleOfIdentity(t *testing.T) {
	n := 40
	a := matrix.NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, -2.5)
	}
	res, err := Solve(a, &Options{BaseSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if math.Abs(v+2.5) > 1e-12 {
			t.Fatalf("eigenvalue %v, want -2.5", v)
		}
	}
}

func TestSolveTinyMatrices(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	for n := 1; n <= 4; n++ {
		a := matrix.NewRandomSymmetric(n, rng)
		res, err := Solve(a, &Options{BaseSize: 2})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := residual(a, res.Values, res.Vectors); r > 1e-10 {
			t.Fatalf("n=%d: residual %g", n, r)
		}
	}
}

func TestSolveNegativeSpectrum(t *testing.T) {
	// All eigenvalues negative: the split-point search must work on the
	// left of zero as well.
	rng := rand.New(rand.NewSource(92))
	want := []float64{-9, -7.5, -6, -4.4, -3.3, -2.2, -1.5, -1}
	a := knownSpectrumMatrix(want, rng)
	res, err := Solve(a, &Options{BaseSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Values[i]-want[i]) > 1e-8 {
			t.Fatalf("eigenvalue %d: %v vs %v", i, res.Values[i], want[i])
		}
	}
}

func TestSolveWideSpread(t *testing.T) {
	// Eigenvalues spanning several orders of magnitude.
	rng := rand.New(rand.NewSource(93))
	want := []float64{1e-4, 1e-2, 0.1, 1, 5, 50, 500, 1000}
	a := knownSpectrumMatrix(want, rng)
	res, err := Solve(a, &Options{BaseSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Values[i]-want[i]) > 1e-6*(1+want[i]) {
			t.Fatalf("eigenvalue %d: %v vs %v", i, res.Values[i], want[i])
		}
	}
}

func TestStatsAccumulateAcrossRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	a := matrix.NewRandomSymmetric(60, rng)
	res, err := Solve(a, &Options{BaseSize: 12})
	if err != nil {
		t.Fatal(err)
	}
	s := res.Stats
	if s.Splits < 1 {
		t.Error("expected at least one split")
	}
	if s.JacobiBlocks < 2 {
		t.Error("expected multiple Jacobi base cases")
	}
	if s.PolyIters < s.Splits {
		t.Error("each split needs at least one polynomial iteration")
	}
	if s.MMCount < 2*s.PolyIters {
		t.Error("each polynomial iteration costs two multiplications")
	}
}
