package eigen

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Multiplier is the pluggable matrix-multiplication engine:
// C ← alpha·A·B + beta·C. The paper swaps DGEMM for DGEFMM here by
// "renaming all calls"; this interface is the Go equivalent.
type Multiplier interface {
	// Name identifies the engine in reports ("DGEMM", "DGEFMM").
	Name() string
	// Mul computes c ← alpha*a*b + beta*c for dense column-major matrices.
	Mul(c *matrix.Dense, alpha float64, a, b *matrix.Dense, beta float64)
}

// Options configures the ISDA eigensolver.
type Options struct {
	// Mul is the multiplication engine; nil selects plain DGEMM on the
	// default kernel.
	Mul Multiplier
	// BaseSize is the subproblem order at or below which the cyclic Jacobi
	// solver finishes the job. Default 32.
	BaseSize int
	// MaxPolyIters bounds the smoothstep polynomial iterations per split.
	// Default 80.
	MaxPolyIters int
	// MaxSplitAttempts bounds how many split points are tried per level
	// before falling back to Jacobi. Default 5.
	MaxSplitAttempts int
	// Tol is the relative convergence tolerance. Default 1e-12.
	Tol float64
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.Mul == nil {
		out.Mul = GemmMultiplier{}
	}
	if out.BaseSize <= 0 {
		out.BaseSize = 32
	}
	if out.MaxPolyIters <= 0 {
		out.MaxPolyIters = 80
	}
	if out.MaxSplitAttempts <= 0 {
		out.MaxSplitAttempts = 5
	}
	if out.Tol <= 0 {
		out.Tol = 1e-12
	}
	return out
}

// Stats records where the eigensolver spent its effort, supporting the
// paper's Table 6 split into total time and matrix-multiplication time.
type Stats struct {
	// MMTime is the time spent inside the Multiplier.
	MMTime time.Duration
	// MMCount is the number of Multiplier calls.
	MMCount int
	// PolyIters is the total number of polynomial iterations.
	PolyIters int
	// Splits is the number of successful subspace divisions.
	Splits int
	// JacobiBlocks is the number of base-case solves.
	JacobiBlocks int
}

// Result is the full eigendecomposition A = V·diag(Values)·Vᵀ.
type Result struct {
	// Values are the eigenvalues in ascending order.
	Values []float64
	// Vectors holds the corresponding orthonormal eigenvectors as columns.
	Vectors *matrix.Dense
	// Stats is the effort breakdown.
	Stats Stats
}

// GemmMultiplier multiplies with the standard algorithm (the DGEMM
// baseline of Table 6).
type GemmMultiplier struct {
	// Kernel below; nil selects blas.DefaultKernel.
	Kernel blas.Kernel
}

// Name implements Multiplier.
func (g GemmMultiplier) Name() string { return "DGEMM" }

// Mul implements Multiplier.
func (g GemmMultiplier) Mul(c *matrix.Dense, alpha float64, a, b *matrix.Dense, beta float64) {
	blas.DgemmKernel(g.Kernel, blas.NoTrans, blas.NoTrans, c.Rows, c.Cols, a.Cols,
		alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}

// solver carries options and accumulating statistics through the recursion.
type solver struct {
	opt   Options
	stats Stats
}

// mul dispatches to the Multiplier and accounts its time.
func (s *solver) mul(c *matrix.Dense, alpha float64, a, b *matrix.Dense, beta float64) {
	start := time.Now()
	s.opt.Mul.Mul(c, alpha, a, b, beta)
	s.stats.MMTime += time.Since(start)
	s.stats.MMCount++
}

// mulT computes c ← aᵀ·b (needed for the similarity transform VᵀAV). It is
// routed through the Multiplier by materializing aᵀ, so the flops still run
// on the configured engine.
func (s *solver) mulT(c *matrix.Dense, a, b *matrix.Dense) {
	at := a.T()
	s.mul(c, 1, at, b, 0)
}

// Solve computes the full eigendecomposition of the symmetric matrix a.
// a is not modified.
func Solve(a *matrix.Dense, opt *Options) (*Result, error) {
	n := a.Rows
	if a.Cols != n {
		return nil, errors.New("eigen: Solve requires a square matrix")
	}
	if err := checkSymmetric(a); err != nil {
		return nil, err
	}
	s := &solver{opt: opt.withDefaults()}
	values, vectors, err := s.solve(a.Clone(), 0)
	if err != nil {
		return nil, err
	}
	sortEigenpairs(values, vectors)
	return &Result{Values: values, Vectors: vectors, Stats: s.stats}, nil
}

func checkSymmetric(a *matrix.Dense) error {
	n := a.Rows
	scale := matrix.MaxAbs(a)
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			if d := math.Abs(a.At(i, j) - a.At(j, i)); d > 1e-12*(1+scale) {
				return fmt.Errorf("eigen: matrix not symmetric at (%d,%d): |Δ|=%g", i, j, d)
			}
		}
	}
	return nil
}

// solve is the recursive ISDA step on a (owned, mutable) symmetric block.
func (s *solver) solve(a *matrix.Dense, depth int) ([]float64, *matrix.Dense, error) {
	n := a.Rows
	if n <= s.opt.BaseSize || depth > 64 {
		vals, vecs := Jacobi(a, 50, s.opt.Tol)
		s.stats.JacobiBlocks++
		return vals, vecs, nil
	}

	lo, hi := gershgorin(a)
	width := hi - lo
	scale := math.Max(math.Abs(lo), math.Abs(hi))
	if width <= s.opt.Tol*(1+scale) {
		// Spectrum numerically a single point: A ≈ λI on this block.
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = a.At(i, i)
		}
		return vals, matrix.Identity(n), nil
	}

	// Try a sequence of split points: the Gershgorin midpoint first, then
	// points biased toward whichever side the projector trace said was
	// overloaded.
	tLo, tHi := 0.0, 1.0
	for attempt := 0; attempt < s.opt.MaxSplitAttempts; attempt++ {
		t := (tLo + tHi) / 2
		theta := lo + t*width
		p, iters, converged := s.projector(a, theta, lo, hi)
		s.stats.PolyIters += iters
		if !converged {
			// An eigenvalue is sitting too close to theta; nudge the split.
			tHi = t * 0.9
			if tHi <= tLo {
				break
			}
			continue
		}
		r := int(math.Round(traceOf(p)))
		if r <= 0 {
			// Everything below theta: move the split down.
			tHi = t
			continue
		}
		if r >= n {
			// Everything above theta: move the split up.
			tLo = t
			continue
		}
		vals, vecs, err := s.divide(a, p, r, depth)
		if err == nil {
			return vals, vecs, nil
		}
		// Split produced an inaccurate decoupling — try another theta.
		tHi = t * 0.95
	}

	// Could not find a usable split (tight cluster): fall back to Jacobi.
	vals, vecs := Jacobi(a, 60, s.opt.Tol)
	s.stats.JacobiBlocks++
	return vals, vecs, nil
}

// projector runs the ISDA polynomial iteration: it maps the spectrum so
// that theta ↦ 1/2 with range within [0,1], then repeatedly applies the
// incomplete-beta smoothstep p(x) = 3x² − 2x³, whose fixed points 0 and 1
// attract eigenvalues below/above theta. The converged matrix is the
// spectral projector onto the invariant subspace for eigenvalues > theta.
// Each iteration costs two matrix multiplications — the kernel operation
// the paper accelerates.
func (s *solver) projector(a *matrix.Dense, theta, lo, hi float64) (p *matrix.Dense, iters int, converged bool) {
	n := a.Rows
	// Affine map B = 1/2·I + (A − theta·I)/(2h), h = max(hi−theta, theta−lo),
	// sends theta→1/2 and keeps the spectrum in [0,1].
	h := math.Max(hi-theta, theta-lo)
	b := a.Clone()
	b.Scale(1 / (2 * h))
	shift := 0.5 - theta/(2*h)
	for i := 0; i < n; i++ {
		b.Set(i, i, b.At(i, i)+shift)
	}

	b2 := matrix.NewDense(n, n)
	next := matrix.NewDense(n, n)
	tol := s.opt.Tol * float64(n)
	for iters = 0; iters < s.opt.MaxPolyIters; iters++ {
		s.mul(b2, 1, b, b, 0) // B² (MM)
		// Idempotency check ‖B² − B‖_F: converged when B is a projector.
		if frobDiff(b2, b) <= tol {
			return b, iters, true
		}
		// next = 3B² − 2B·B² (second MM), then roll.
		next.CopyFrom(b2)
		next.Scale(3)
		s.mul(next, -2, b, b2, 1)
		b, next = next, b
	}
	// Final check after the budget.
	s.mul(b2, 1, b, b, 0)
	if frobDiff(b2, b) <= tol*10 {
		return b, iters, true
	}
	return b, iters, false
}

// divide performs the subspace split: rank-revealing QR of the projector
// gives an orthogonal V whose leading r columns span the invariant
// subspace; Â = VᵀAV is then block-diagonal and the two diagonal blocks
// recurse. Returns an error if the off-diagonal coupling is too large
// (projector was inaccurate).
func (s *solver) divide(a, p *matrix.Dense, r, depth int) ([]float64, *matrix.Dense, error) {
	n := a.Rows
	v, _, _ := QRColumnPivot(p)

	// Â = Vᵀ·(A·V): two multiplications through the engine.
	av := matrix.NewDense(n, n)
	s.mul(av, 1, a, v, 0)
	ahat := matrix.NewDense(n, n)
	s.mulT(ahat, v, av)

	// Decoupling check: the off-diagonal blocks must be negligible.
	offNorm := math.Max(
		matrix.FrobeniusNorm(ahat.Slice(r, 0, n-r, r)),
		matrix.FrobeniusNorm(ahat.Slice(0, r, r, n-r)))
	aNorm := matrix.FrobeniusNorm(a)
	if offNorm > 1e-8*(1+aNorm) {
		return nil, nil, fmt.Errorf("eigen: subspace split failed to decouple: off-block norm %g", offNorm)
	}
	s.stats.Splits++

	// Symmetrize the diagonal blocks against roundoff and recurse.
	a1 := ahat.Slice(0, 0, r, r).Clone()
	a2 := ahat.Slice(r, r, n-r, n-r).Clone()
	symmetrize(a1)
	symmetrize(a2)

	v1, q1, err := s.solve(a1, depth+1)
	if err != nil {
		return nil, nil, err
	}
	v2, q2, err := s.solve(a2, depth+1)
	if err != nil {
		return nil, nil, err
	}

	// Assemble eigenvectors: V·diag(Q1, Q2), two rectangular products.
	vecs := matrix.NewDense(n, n)
	s.mul(vecs.Slice(0, 0, n, r), 1, v.Slice(0, 0, n, r), q1, 0)
	s.mul(vecs.Slice(0, r, n, n-r), 1, v.Slice(0, r, n, n-r), q2, 0)

	return append(v1, v2...), vecs, nil
}

// gershgorin returns an interval [lo, hi] containing all eigenvalues.
func gershgorin(a *matrix.Dense) (lo, hi float64) {
	n := a.Rows
	lo, hi = math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		var radius float64
		for j := 0; j < n; j++ {
			if j != i {
				radius += math.Abs(a.At(i, j))
			}
		}
		d := a.At(i, i)
		lo = math.Min(lo, d-radius)
		hi = math.Max(hi, d+radius)
	}
	return lo, hi
}

func traceOf(m *matrix.Dense) float64 {
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

func frobDiff(a, b *matrix.Dense) float64 {
	var ss float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			d := a.At(i, j) - b.At(i, j)
			ss += d * d
		}
	}
	return math.Sqrt(ss)
}

func symmetrize(a *matrix.Dense) {
	n := a.Rows
	for j := 0; j < n; j++ {
		for i := 0; i < j; i++ {
			v := (a.At(i, j) + a.At(j, i)) / 2
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
}

// sortEigenpairs sorts values ascending, permuting vector columns to match.
func sortEigenpairs(values []float64, vectors *matrix.Dense) {
	n := len(values)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return values[idx[i]] < values[idx[j]] })
	sorted := make([]float64, n)
	perm := matrix.NewDense(vectors.Rows, n)
	for newCol, oldCol := range idx {
		sorted[newCol] = values[oldCol]
		perm.Slice(0, newCol, vectors.Rows, 1).CopyFrom(vectors.Slice(0, oldCol, vectors.Rows, 1))
	}
	copy(values, sorted)
	vectors.CopyFrom(perm)
}
