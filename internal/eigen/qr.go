package eigen

import (
	"math"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// QRColumnPivot computes the rank-revealing Householder QR factorization
// with column pivoting, A·Π = Q·R, of a square matrix. It returns the full
// orthogonal factor Q (n×n), the diagonal of R (whose decay reveals the
// numerical rank), and the column permutation.
//
// ISDA uses it on the converged spectral projector P: because P is an
// orthogonal projector of rank r, the first r columns of Q form an
// orthonormal basis of range(P) (the invariant subspace for eigenvalues
// above the split point) and the remaining columns span the null space —
// "the range and null space of the converged matrix ... provides the
// subspaces necessary for dividing the original matrix into two
// subproblems" (Section 4.4).
func QRColumnPivot(a *matrix.Dense) (q *matrix.Dense, rdiag []float64, perm []int) {
	n := a.Rows
	if a.Cols != n {
		panic("eigen: QRColumnPivot requires a square matrix")
	}
	w := a.Clone()
	perm = make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	// Householder vectors are stored below the diagonal of w; betas aside.
	betas := make([]float64, n)
	colNorms := make([]float64, n)
	for j := 0; j < n; j++ {
		colNorms[j] = blas.Dnrm2(n, w.Data[j*w.Stride:j*w.Stride+n], 1)
	}

	for j := 0; j < n; j++ {
		// Pivot: bring the column with the largest remaining norm to j.
		best := j
		for l := j + 1; l < n; l++ {
			if colNorms[l] > colNorms[best] {
				best = l
			}
		}
		if best != j {
			blas.Dswap(n, w.Data[j*w.Stride:j*w.Stride+n], 1, w.Data[best*w.Stride:best*w.Stride+n], 1)
			perm[j], perm[best] = perm[best], perm[j]
			colNorms[j], colNorms[best] = colNorms[best], colNorms[j]
		}

		// Householder reflector annihilating w[j+1:, j].
		col := w.Data[j*w.Stride : j*w.Stride+n]
		alpha := blas.Dnrm2(n-j, col[j:], 1)
		if col[j] > 0 {
			alpha = -alpha
		}
		if alpha == 0 {
			betas[j] = 0
			continue
		}
		v0 := col[j] - alpha
		col[j] = alpha // R(j,j)
		// v = [1, col[j+1:]/v0]; beta = -v0/alpha.
		for i := j + 1; i < n; i++ {
			col[i] /= v0
		}
		betas[j] = -v0 / alpha

		// Apply (I − beta·v·vᵀ) to the trailing columns.
		for l := j + 1; l < n; l++ {
			cl := w.Data[l*w.Stride : l*w.Stride+n]
			s := cl[j]
			for i := j + 1; i < n; i++ {
				s += col[i] * cl[i]
			}
			s *= betas[j]
			cl[j] -= s
			for i := j + 1; i < n; i++ {
				cl[i] -= s * col[i]
			}
		}

		// Downdate remaining column norms (recompute for robustness: this
		// is O(n²) per step in the worst case but we favor correctness).
		for l := j + 1; l < n; l++ {
			colNorms[l] = blas.Dnrm2(n-j-1, w.Data[l*w.Stride+j+1:l*w.Stride+n], 1)
		}
	}

	rdiag = make([]float64, n)
	for j := 0; j < n; j++ {
		rdiag[j] = w.At(j, j)
	}

	// Accumulate Q = H0·H1·…·H(n−1) applied to I, backwards.
	q = matrix.Identity(n)
	for j := n - 1; j >= 0; j-- {
		if betas[j] == 0 {
			continue
		}
		v := w.Data[j*w.Stride : j*w.Stride+n] // v[j]=1 implicit, v[j+1:] stored
		for l := 0; l < n; l++ {
			cl := q.Data[l*q.Stride : l*q.Stride+n]
			s := cl[j]
			for i := j + 1; i < n; i++ {
				s += v[i] * cl[i]
			}
			s *= betas[j]
			cl[j] -= s
			for i := j + 1; i < n; i++ {
				cl[i] -= s * v[i]
			}
		}
	}
	return q, rdiag, perm
}

// NumericalRank counts the leading rdiag entries exceeding tol·|rdiag[0]|.
func NumericalRank(rdiag []float64, tol float64) int {
	if len(rdiag) == 0 {
		return 0
	}
	cut := tol * math.Abs(rdiag[0])
	r := 0
	for _, d := range rdiag {
		if math.Abs(d) > cut {
			r++
		}
	}
	return r
}
