// Package eigen implements a symmetric eigensolver based on the Invariant
// Subspace Decomposition Algorithm (ISDA) of the PRISM project — the
// application code of the paper's Section 4.4. The ISDA "uses matrix
// multiplication to apply a polynomial function to a matrix until a certain
// convergence criterion is met", then splits the problem via the range and
// null space of the converged spectral projector; its kernel operation is
// therefore matrix multiplication, which is what makes it the paper's
// demonstration vehicle for DGEFMM (Table 6).
//
// The multiplication engine is pluggable (see Multiplier), so the same
// eigensolver runs on DGEMM or DGEFMM, exactly as the paper's experiment
// was "accomplished easily by renaming all calls to DGEMM as calls to
// DGEFMM".
package eigen

import (
	"math"

	"repro/internal/matrix"
)

// Jacobi diagonalizes a symmetric matrix with the classical cyclic Jacobi
// rotation method. It is ISDA's base-case solver for subproblems at or
// below Options.BaseSize. Returns the eigenvalues (unsorted) and the
// orthogonal eigenvector matrix V with A = V·diag(values)·Vᵀ.
//
// The input matrix is not modified.
func Jacobi(a *matrix.Dense, maxSweeps int, tol float64) (values []float64, vectors *matrix.Dense) {
	n := a.Rows
	if a.Cols != n {
		panic("eigen: Jacobi requires a square matrix")
	}
	w := a.Clone()
	v := matrix.Identity(n)
	if n == 0 {
		return nil, v
	}
	if maxSweeps <= 0 {
		maxSweeps = 30
	}
	if tol <= 0 {
		tol = 1e-13
	}
	scale := matrix.MaxAbs(w)
	if scale == 0 {
		return make([]float64, n), v
	}
	thresh := tol * scale

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := offDiagNorm(w)
		if off <= thresh*float64(n) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) <= thresh*1e-3/float64(n) {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				// Rotation angle: tan(2θ) = 2apq/(app−aqq).
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				applyJacobiRotation(w, v, p, q, c, s)
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	return values, v
}

// applyJacobiRotation applies the rotation J(p,q,θ) to W (two-sided,
// preserving symmetry) and accumulates it into V (right multiplication).
func applyJacobiRotation(w, v *matrix.Dense, p, q int, c, s float64) {
	n := w.Rows
	for i := 0; i < n; i++ {
		wip, wiq := w.At(i, p), w.At(i, q)
		w.Set(i, p, c*wip-s*wiq)
		w.Set(i, q, s*wip+c*wiq)
	}
	for j := 0; j < n; j++ {
		wpj, wqj := w.At(p, j), w.At(q, j)
		w.Set(p, j, c*wpj-s*wqj)
		w.Set(q, j, s*wpj+c*wqj)
	}
	for i := 0; i < n; i++ {
		vip, viq := v.At(i, p), v.At(i, q)
		v.Set(i, p, c*vip-s*viq)
		v.Set(i, q, s*vip+c*viq)
	}
}

// offDiagNorm returns the Frobenius norm of the strictly off-diagonal part.
func offDiagNorm(w *matrix.Dense) float64 {
	var ss float64
	n := w.Rows
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if i != j {
				x := w.At(i, j)
				ss += x * x
			}
		}
	}
	return math.Sqrt(ss)
}
