package eigen

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// residual returns ‖A·V − V·diag(λ)‖_max, the eigenpair residual.
func residual(a *matrix.Dense, values []float64, vectors *matrix.Dense) float64 {
	n := a.Rows
	av := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a.Data, a.Stride, vectors.Data, vectors.Stride, 0, av.Data, av.Stride)
	var worst float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			d := math.Abs(av.At(i, j) - values[j]*vectors.At(i, j))
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// orthogonality returns ‖VᵀV − I‖_max.
func orthogonality(v *matrix.Dense) float64 {
	n := v.Cols
	g := matrix.NewDense(n, n)
	blas.Dgemm(blas.Trans, blas.NoTrans, n, n, v.Rows, 1, v.Data, v.Stride, v.Data, v.Stride, 0, g.Data, g.Stride)
	var worst float64
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if d := math.Abs(g.At(i, j) - want); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// knownSpectrumMatrix builds A = Q·diag(values)·Qᵀ with a random orthogonal
// Q (from QR of a random matrix), so the spectrum is known exactly.
func knownSpectrumMatrix(values []float64, rng *rand.Rand) *matrix.Dense {
	n := len(values)
	m := matrix.NewRandom(n, n, rng)
	q, _, _ := QRColumnPivot(m)
	a := matrix.NewDense(n, n)
	// A = Q·D·Qᵀ
	qd := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			qd.Set(i, j, q.At(i, j)*values[j])
		}
	}
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, n, 1, qd.Data, qd.Stride, q.Data, q.Stride, 0, a.Data, a.Stride)
	// Clean up roundoff asymmetry.
	symmetrize(a)
	return a
}

func TestJacobiSmallKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := matrix.FromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := Jacobi(a, 30, 1e-14)
	sort.Float64s(vals)
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("Jacobi eigenvalues: %v", vals)
	}
	if r := residual(a, valsInColumnOrder(a, vals, vecs), vecs); r > 1e-10 {
		t.Fatalf("residual %g", r)
	}
	if o := orthogonality(vecs); o > 1e-12 {
		t.Fatalf("orthogonality %g", o)
	}
}

// valsInColumnOrder re-derives per-column eigenvalues via Rayleigh
// quotients, since Jacobi's return order matches its vector columns but the
// test sorted a copy.
func valsInColumnOrder(a *matrix.Dense, _ []float64, vecs *matrix.Dense) []float64 {
	n := a.Rows
	out := make([]float64, n)
	av := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.NoTrans, n, n, n, 1, a.Data, a.Stride, vecs.Data, vecs.Stride, 0, av.Data, av.Stride)
	for j := 0; j < n; j++ {
		var num, den float64
		for i := 0; i < n; i++ {
			num += vecs.At(i, j) * av.At(i, j)
			den += vecs.At(i, j) * vecs.At(i, j)
		}
		out[j] = num / den
	}
	return out
}

func TestJacobiRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 5, 16, 24} {
		a := matrix.NewRandomSymmetric(n, rng)
		vals, vecs := Jacobi(a, 40, 1e-14)
		if len(vals) != n {
			t.Fatalf("n=%d: got %d values", n, len(vals))
		}
		if r := residual(a, vals, vecs); r > 1e-9*float64(n) {
			t.Fatalf("n=%d: residual %g", n, r)
		}
		if o := orthogonality(vecs); o > 1e-11*float64(n+1) {
			t.Fatalf("n=%d: orthogonality %g", n, o)
		}
	}
}

func TestJacobiDiagonalInput(t *testing.T) {
	a := matrix.FromRows([][]float64{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}})
	vals, vecs := Jacobi(a, 10, 1e-14)
	sort.Float64s(vals)
	want := []float64{-1, 3, 7}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-14 {
			t.Fatalf("vals %v", vals)
		}
	}
	if o := orthogonality(vecs); o > 1e-14 {
		t.Fatal("vectors of a diagonal matrix should stay orthonormal")
	}
}

func TestQRColumnPivotOrthogonality(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for _, n := range []int{1, 3, 8, 20} {
		a := matrix.NewRandom(n, n, rng)
		q, rdiag, perm := QRColumnPivot(a)
		if o := orthogonality(q); o > 1e-12*float64(n+1) {
			t.Fatalf("n=%d: Q not orthogonal: %g", n, o)
		}
		if len(rdiag) != n || len(perm) != n {
			t.Fatal("output sizes")
		}
		// perm must be a permutation.
		seen := make([]bool, n)
		for _, p := range perm {
			if p < 0 || p >= n || seen[p] {
				t.Fatal("perm not a permutation")
			}
			seen[p] = true
		}
		// |rdiag| must be non-increasing (pivoting property).
		for i := 1; i < n; i++ {
			if math.Abs(rdiag[i]) > math.Abs(rdiag[i-1])+1e-10 {
				t.Fatalf("rdiag not decreasing: %v", rdiag)
			}
		}
	}
}

func TestQRColumnPivotReconstruction(t *testing.T) {
	// Verify A·Π = Q·R by rebuilding R = Qᵀ·A·Π and checking it is upper
	// triangular with the returned diagonal.
	rng := rand.New(rand.NewSource(73))
	n := 7
	a := matrix.NewRandom(n, n, rng)
	q, rdiag, perm := QRColumnPivot(a)
	ap := matrix.NewDense(n, n)
	for j := 0; j < n; j++ {
		ap.Slice(0, j, n, 1).CopyFrom(a.Slice(0, perm[j], n, 1))
	}
	r := matrix.NewDense(n, n)
	blas.Dgemm(blas.Trans, blas.NoTrans, n, n, n, 1, q.Data, q.Stride, ap.Data, ap.Stride, 0, r.Data, r.Stride)
	for j := 0; j < n; j++ {
		for i := j + 1; i < n; i++ {
			if math.Abs(r.At(i, j)) > 1e-12 {
				t.Fatalf("R not upper triangular at (%d,%d): %g", i, j, r.At(i, j))
			}
		}
		if math.Abs(r.At(j, j)-rdiag[j]) > 1e-12 {
			t.Fatalf("rdiag mismatch at %d: %g vs %g", j, r.At(j, j), rdiag[j])
		}
	}
}

func TestQRRankRevealing(t *testing.T) {
	// Rank-2 projector: QR must expose rank 2.
	rng := rand.New(rand.NewSource(74))
	n := 8
	u := matrix.NewRandom(n, 2, rng)
	q, _, _ := QRColumnPivot(padTo(u, n))
	// Build P = q1·q1ᵀ (projector onto 2-dim space).
	q1 := q.Slice(0, 0, n, 2)
	p := matrix.NewDense(n, n)
	blas.Dgemm(blas.NoTrans, blas.Trans, n, n, 2, 1, q1.Data, q1.Stride, q1.Data, q1.Stride, 0, p.Data, p.Stride)
	_, rdiag, _ := QRColumnPivot(p)
	if r := NumericalRank(rdiag, 1e-8); r != 2 {
		t.Fatalf("projector rank = %d, want 2 (rdiag %v)", r, rdiag)
	}
}

func padTo(u *matrix.Dense, n int) *matrix.Dense {
	out := matrix.NewDense(n, n)
	out.Slice(0, 0, u.Rows, u.Cols).CopyFrom(u)
	return out
}

func TestNumericalRankEdge(t *testing.T) {
	if NumericalRank(nil, 1e-8) != 0 {
		t.Fatal("empty rank")
	}
	if NumericalRank([]float64{5, 1e-12}, 1e-8) != 1 {
		t.Fatal("tiny trailing diag should not count")
	}
}

func TestSolveKnownSpectrum(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	want := []float64{-4, -1.5, -0.2, 0.3, 1.1, 2.5, 3.7, 5, 6.25, 8}
	a := knownSpectrumMatrix(want, rng)
	res, err := Solve(a, &Options{BaseSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.Values[i]-want[i]) > 1e-8 {
			t.Fatalf("eigenvalue %d: got %v want %v (all: %v)", i, res.Values[i], want[i], res.Values)
		}
	}
	if r := residual(a, res.Values, res.Vectors); r > 1e-7 {
		t.Fatalf("residual %g", r)
	}
	if o := orthogonality(res.Vectors); o > 1e-8 {
		t.Fatalf("orthogonality %g", o)
	}
	if res.Stats.Splits == 0 {
		t.Error("expected at least one ISDA split for n=10, base 4")
	}
	if res.Stats.MMCount == 0 || res.Stats.MMTime <= 0 {
		t.Error("MM statistics not collected")
	}
}

func TestSolveRandomAgainstJacobi(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	for _, n := range []int{33, 48, 65} {
		a := matrix.NewRandomSymmetric(n, rng)
		res, err := Solve(a, &Options{BaseSize: 16})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		jv, _ := Jacobi(a, 60, 1e-14)
		sort.Float64s(jv)
		for i := range jv {
			if math.Abs(res.Values[i]-jv[i]) > 1e-7*(1+math.Abs(jv[i])) {
				t.Fatalf("n=%d eigenvalue %d: ISDA %v vs Jacobi %v", n, i, res.Values[i], jv[i])
			}
		}
		if r := residual(a, res.Values, res.Vectors); r > 1e-6 {
			t.Fatalf("n=%d residual %g", n, r)
		}
	}
}

func TestSolveWithStrassenMultiplierMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 48
	a := matrix.NewRandomSymmetric(n, rng)
	gm, err := Solve(a, &Options{BaseSize: 12, Mul: GemmMultiplier{Kernel: blas.NaiveKernel{}}})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := Solve(a, &Options{BaseSize: 12, Mul: StrassenMultiplier{
		Config: &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range gm.Values {
		if math.Abs(gm.Values[i]-sm.Values[i]) > 1e-7*(1+math.Abs(gm.Values[i])) {
			t.Fatalf("eigenvalue %d differs: DGEMM %v, DGEFMM %v", i, gm.Values[i], sm.Values[i])
		}
	}
	if r := residual(a, sm.Values, sm.Vectors); r > 1e-6 {
		t.Fatalf("DGEFMM-based residual %g", r)
	}
}

func TestSolveIdentityAndDiagonal(t *testing.T) {
	id := matrix.Identity(40)
	res, err := Solve(id, &Options{BaseSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Values {
		if math.Abs(v-1) > 1e-10 {
			t.Fatalf("identity eigenvalue %v", v)
		}
	}
	d := matrix.NewDense(40, 40)
	for i := 0; i < 40; i++ {
		d.Set(i, i, float64(i))
	}
	res, err = Solve(d, &Options{BaseSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Values {
		if math.Abs(v-float64(i)) > 1e-8 {
			t.Fatalf("diag eigenvalue %d: %v", i, v)
		}
	}
}

func TestSolveClusteredSpectrum(t *testing.T) {
	// Two tight clusters force the split-retry logic.
	rng := rand.New(rand.NewSource(78))
	vals := make([]float64, 24)
	for i := range vals {
		if i < 12 {
			vals[i] = 1 + 1e-6*float64(i)
		} else {
			vals[i] = 5 + 1e-6*float64(i)
		}
	}
	a := knownSpectrumMatrix(vals, rng)
	res, err := Solve(a, &Options{BaseSize: 6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Abs(res.Values[i]-vals[i]) > 1e-6 {
			t.Fatalf("clustered eigenvalue %d: %v vs %v", i, res.Values[i], vals[i])
		}
	}
}

func TestSolveRejectsNonSymmetric(t *testing.T) {
	a := matrix.FromRows([][]float64{{1, 2}, {3, 4}})
	if _, err := Solve(a, nil); err == nil {
		t.Fatal("expected symmetry error")
	}
	b := matrix.NewDense(2, 3)
	if _, err := Solve(b, nil); err == nil {
		t.Fatal("expected squareness error")
	}
}

func TestSolveDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	a := matrix.NewRandomSymmetric(40, rng)
	orig := a.Clone()
	if _, err := Solve(a, &Options{BaseSize: 10}); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(orig) {
		t.Fatal("Solve modified its input")
	}
}

func TestMultiplierNames(t *testing.T) {
	if (GemmMultiplier{}).Name() != "DGEMM" || (StrassenMultiplier{}).Name() != "DGEFMM" {
		t.Fatal("multiplier names")
	}
}
