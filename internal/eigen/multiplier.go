package eigen

import (
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// StrassenMultiplier multiplies with DGEFMM — the paper's Table 6 variant,
// obtained by "renaming all calls to DGEMM as calls to DGEFMM".
type StrassenMultiplier struct {
	// Config for DGEFMM; nil selects the default configuration.
	Config *strassen.Config
}

// Name implements Multiplier.
func (s StrassenMultiplier) Name() string { return "DGEFMM" }

// Mul implements Multiplier.
func (s StrassenMultiplier) Mul(c *matrix.Dense, alpha float64, a, b *matrix.Dense, beta float64) {
	strassen.DGEFMM(s.Config, blas.NoTrans, blas.NoTrans, c.Rows, c.Cols, a.Cols,
		alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}
