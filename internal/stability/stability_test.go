package stability

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

func TestExactMulIsExactOnIntegers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 20
	a := matrix.NewDense(n, n)
	b := matrix.NewDense(n, n)
	for idx := range a.Data {
		a.Data[idx] = float64(rng.Intn(201) - 100)
		b.Data[idx] = float64(rng.Intn(201) - 100)
	}
	got := ExactMul(a, b)
	// Direct integer accumulation (exact in float64 at these magnitudes).
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			var s float64
			for l := 0; l < n; l++ {
				s += a.At(i, l) * b.At(l, j)
			}
			if got.At(i, j) != s {
				t.Fatalf("ExactMul not exact at (%d,%d)", i, j)
			}
		}
	}
}

func TestExactMulBeatsNaiveOnCancellation(t *testing.T) {
	// Ill-conditioned dot products: compensated summation must be at least
	// as accurate as the plain loop (and typically far better).
	n := 64
	rng := rand.New(rand.NewSource(2))
	a := matrix.NewDense(1, n)
	b := matrix.NewDense(n, 1)
	for l := 0; l < n; l++ {
		big := math.Ldexp(rng.Float64(), 30)
		a.Set(0, l, big)
		if l%2 == 0 {
			b.Set(l, 0, 1)
		} else {
			b.Set(l, 0, -1)
		}
	}
	got := ExactMul(a, b).At(0, 0)
	// The compensated result equals itself recomputed at higher effort.
	var naive float64
	for l := 0; l < n; l++ {
		naive += a.At(0, l) * b.At(l, 0)
	}
	// Both should be close, and ExactMul self-consistent across orderings.
	perm := ExactMul(a, b).At(0, 0)
	if got != perm {
		t.Fatal("ExactMul not deterministic")
	}
	if math.Abs(got-naive) > 1e-3*math.Abs(got)+1 {
		t.Logf("naive drifted by %g (expected on cancellation)", got-naive)
	}
}

func TestGemmErrorWithinClassicalBound(t *testing.T) {
	for _, n := range []int{16, 64, 128} {
		m := MeasureGemm(blas.NaiveKernel{}, n, 3)
		// The classical bound is n·u·max|A|·max|B| elementwise (normalized
		// value ≤ 1 up to rounding of the bound itself; allow 2× slack).
		if m.Normalized > 2 {
			t.Errorf("n=%d: conventional error %v times bound", n, m.Normalized)
		}
	}
}

func TestStrassenErrorGrowsWithDepthButBounded(t *testing.T) {
	kern := blas.NaiveKernel{}
	n := 64
	ms := Study(kern, n, 3, 2, 7)
	if len(ms) != 4 {
		t.Fatalf("want 4 measurements, got %d", len(ms))
	}
	if ms[0].Engine != "DGEMM" {
		t.Fatal("baseline first")
	}
	deepest := ms[len(ms)-1]
	// Higham's analysis: growth like 6^d over the conventional constant.
	// Use a generous multiple — the point is the order of magnitude.
	capFactor := 10 * HighamGrowth(deepest.Depth)
	if deepest.Normalized > capFactor {
		t.Errorf("depth-%d error %v exceeds %v (10·6^d) times the classical bound",
			deepest.Depth, deepest.Normalized, capFactor)
	}
	// And it must still be a *small* absolute error for unit-scaled inputs.
	if deepest.MaxAbsErr > 1e-10 {
		t.Errorf("absolute error %g too large for unit inputs at n=%d", deepest.MaxAbsErr, n)
	}
}

func TestHighamGrowth(t *testing.T) {
	if HighamGrowth(0) != 1 || HighamGrowth(2) != 36 {
		t.Fatal("growth factors")
	}
}

func TestStudyShape(t *testing.T) {
	ms := Study(blas.NaiveKernel{}, 32, 2, 1, 5)
	if len(ms) != 3 {
		t.Fatalf("want 3 rows")
	}
	for i, m := range ms {
		if m.Depth != i {
			t.Fatalf("row %d has depth %d", i, m.Depth)
		}
		if m.N != 32 || m.MaxAbsErr < 0 {
			t.Fatalf("bad row %+v", m)
		}
	}
}
