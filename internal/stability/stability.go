// Package stability quantifies the numerical behavior that made Strassen's
// algorithm acceptable for the paper's purposes: its introduction leans on
// Brent's and Higham's analyses showing "Strassen's algorithm is stable
// enough to be studied further and considered seriously in the development
// of high-performance codes".
//
// For conventional multiplication the forward error satisfies
// |Ĉ − C| ≤ n·u·|A|·|B| elementwise. For Strassen with d recursion levels
// on top of cutoff-size n₀ blocks, Higham's bound (Acc. & Stab., §23.2.2)
// takes the normwise form
//
//	‖Ĉ − C‖ ≤ f(n, d)·u·‖A‖‖B‖,  f(n, d) = (n₀² + 5n₀)·6ᵈ − 5n² ... (up to
//	low-order terms), growing like 6ᵈ instead of linearly — larger, but
//	still fully forward stable for the recursion depths real cutoffs allow.
//
// This package measures the actual error of every engine against an exact
// (compensated, extended-precision) reference and reports it normalized by
// u·n·‖A‖·‖B‖, so the growth with depth is visible and testable.
package stability

import (
	"math"
	"math/rand"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// Unit roundoff of float64.
const Unit = 2.220446049250313e-16

// ExactMul computes the m×n product with compensated (Kahan/Neumaier)
// summation and pairwise products, giving a reference accurate to well
// below one ulp of the working precision for the sizes studied here.
func ExactMul(a, b *matrix.Dense) *matrix.Dense {
	m, k, n := a.Rows, a.Cols, b.Cols
	out := matrix.NewDense(m, n)
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var sum, comp float64
			for l := 0; l < k; l++ {
				v := a.At(i, l) * b.At(l, j)
				t := sum + v
				if math.Abs(sum) >= math.Abs(v) {
					comp += (sum - t) + v
				} else {
					comp += (v - t) + sum
				}
				sum = t
			}
			out.Set(i, j, sum+comp)
		}
	}
	return out
}

// Measurement is one engine's error on one problem.
type Measurement struct {
	Engine     string
	N          int
	Depth      int // Strassen recursion depth (0 for DGEMM)
	MaxAbsErr  float64
	Normalized float64 // MaxAbsErr / (u·n·max|A|·max|B|)
}

// MeasureGemm returns the conventional algorithm's error on a random
// order-n problem.
func MeasureGemm(kern blas.Kernel, n int, seed int64) Measurement {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewRandom(n, n, rng)
	b := matrix.NewRandom(n, n, rng)
	exact := ExactMul(a, b)
	c := matrix.NewDense(n, n)
	blas.DgemmKernel(kern, blas.NoTrans, blas.NoTrans, n, n, n, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return measurement("DGEMM", n, 0, a, b, c, exact)
}

// MeasureStrassen returns DGEFMM's error at a forced recursion depth on a
// random order-n problem.
func MeasureStrassen(kern blas.Kernel, n, depth int, seed int64) Measurement {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewRandom(n, n, rng)
	b := matrix.NewRandom(n, n, rng)
	exact := ExactMul(a, b)
	cfg := &strassen.Config{Kernel: kern, Criterion: strassen.Always{}, MaxDepth: depth}
	c := matrix.NewDense(n, n)
	strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return measurement("DGEFMM", n, depth, a, b, c, exact)
}

func measurement(engine string, n, depth int, a, b, c, exact *matrix.Dense) Measurement {
	err := matrix.MaxAbsDiff(c, exact)
	den := Unit * float64(n) * matrix.MaxAbs(a) * matrix.MaxAbs(b)
	m := Measurement{Engine: engine, N: n, Depth: depth, MaxAbsErr: err}
	if den > 0 {
		m.Normalized = err / den
	}
	return m
}

// HighamGrowth returns the growth factor of Higham's Strassen bound
// relative to the conventional bound at recursion depth d: the error
// constant multiplies by about 6 per level of Winograd recursion (the
// conventional algorithm's constant is recovered at d = 0).
func HighamGrowth(d int) float64 {
	return math.Pow(6, float64(d))
}

// Study measures DGEMM and DGEFMM at depths 0..maxDepth on order n,
// averaging over trials random problems. The returned slice is ordered by
// depth with the DGEMM baseline first.
func Study(kern blas.Kernel, n, maxDepth, trials int, seed int64) []Measurement {
	if trials < 1 {
		trials = 1
	}
	avg := func(f func(trial int64) Measurement) Measurement {
		out := f(0)
		for t := int64(1); t < int64(trials); t++ {
			m := f(t)
			out.MaxAbsErr = math.Max(out.MaxAbsErr, m.MaxAbsErr)
			out.Normalized = math.Max(out.Normalized, m.Normalized)
		}
		return out
	}
	res := []Measurement{avg(func(t int64) Measurement { return MeasureGemm(kern, n, seed+t) })}
	for d := 1; d <= maxDepth; d++ {
		d := d
		res = append(res, avg(func(t int64) Measurement { return MeasureStrassen(kern, n, d, seed+100*int64(d)+t) }))
	}
	return res
}
