package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/memtrack"
	"repro/internal/sched"
)

// TestMulAddTasksBitIdentical pins the threading contract of MulAddTasks:
// chunk boundaries fall on the sequential nest's MC block edges and KC
// panels retire in order, so the result is bit-for-bit MulAdd's — for every
// transpose case, across shapes that exercise edge blocks and chunk counts
// above, below and equal to the worker count.
func TestMulAddTasksBitIdentical(t *testing.T) {
	rt := sched.New(4, 1)
	defer rt.Close()
	rng := rand.New(rand.NewSource(501))
	shapes := [][3]int{{96, 80, 64}, {33, 47, 29}, {130, 24, 70}, {16, 16, 16}}
	for _, mode := range []Mode{ModeAuto, ModeScalar} {
		for _, dims := range shapes {
			m, n, kk := dims[0], dims[1], dims[2]
			for _, ta := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
					rowsA, colsA := m, kk
					if ta.IsTrans() {
						rowsA, colsA = kk, m
					}
					rowsB, colsB := kk, n
					if tb.IsTrans() {
						rowsB, colsB = n, kk
					}
					a := randSlice(rng, rowsA*colsA)
					b := randSlice(rng, rowsB*colsB)
					c1 := randSlice(rng, m*n)
					c2 := append([]float64(nil), c1...)

					// Small blocks force many MC chunks even at these sizes.
					k1 := &Packed{MC: 16, KC: 12, NC: 20, Mode: mode}
					k2 := &Packed{MC: 16, KC: 12, NC: 20, Mode: mode}
					k1.MulAdd(ta, tb, m, n, kk, 1.25, a, rowsA, b, rowsB, c1, m)
					k2.MulAddTasks(rt, 4, ta, tb, m, n, kk, 1.25, a, rowsA, b, rowsB, c2, m)
					for i := range c1 {
						if c1[i] != c2[i] {
							t.Fatalf("mode=%v dims=%v ta=%v tb=%v: c[%d] = %v (tasks) vs %v (sequential)",
								mode, dims, ta, tb, i, c2[i], c1[i])
						}
					}
				}
			}
		}
	}
}

// TestMulAddTasksDegradesToMulAdd pins the fallback cases: nil submitter
// and a single effective chunk both run the plain nest (still correct).
func TestMulAddTasksDegradesToMulAdd(t *testing.T) {
	rt := sched.New(2, 3)
	defer rt.Close()
	rng := rand.New(rand.NewSource(502))
	m, n, kk := 24, 20, 16
	a := randSlice(rng, m*kk)
	b := randSlice(rng, kk*n)
	c0 := randSlice(rng, m*n)

	cases := []struct {
		name string
		mc   int
		sub  sched.Submitter
	}{
		{"nil submitter", 16, nil},
		// MC ≥ m leaves one chunk: threads clamp to 1 and the task path
		// is skipped even with a live runtime.
		{"one chunk", 64, rt},
	}
	for _, tc := range cases {
		want := append([]float64(nil), c0...)
		got := append([]float64(nil), c0...)
		seq := &Packed{MC: tc.mc, KC: 12, NC: 20}
		seq.MulAdd(blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, want, m)
		tk := &Packed{MC: tc.mc, KC: 12, NC: 20}
		tk.MulAddTasks(tc.sub, 8, blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, got, m)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: diverged at %d", tc.name, i)
			}
		}
	}
}

// TestLeafWorkspaceParallelBoundsArena pins the accounting: the arena's
// high-water mark under MulAddTasks never exceeds LeafWorkspaceParallel,
// and the parallel figure collapses to LeafWorkspace at one thread.
func TestLeafWorkspaceParallelBoundsArena(t *testing.T) {
	rt := sched.New(4, 9)
	defer rt.Close()
	rng := rand.New(rand.NewSource(503))
	m, n, kk := 96, 64, 48
	k := &Packed{MC: 16, KC: 12, NC: 20}
	arena := memtrack.New()
	k.SetArena(arena)
	a := randSlice(rng, m*kk)
	b := randSlice(rng, kk*n)
	c := make([]float64, m*n)
	k.MulAddTasks(rt, 4, blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, c, m)
	if peak, bound := arena.Peak(), k.LeafWorkspaceParallel(m, n, kk, 4); peak > bound {
		t.Fatalf("arena peak %d exceeds LeafWorkspaceParallel %d", peak, bound)
	}
	if live := arena.Live(); live != 0 {
		t.Fatalf("%d arena words leaked", live)
	}
	if got, want := k.LeafWorkspaceParallel(m, n, kk, 1), k.LeafWorkspace(m, n, kk); got != want {
		t.Fatalf("1-thread parallel workspace %d != sequential %d", got, want)
	}
}

func randSlice(rng *rand.Rand, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = rng.NormFloat64()
	}
	return s
}
