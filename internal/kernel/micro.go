package kernel

// The register micro-kernel. MR×NR accumulators live in registers across
// the whole KC-deep update; the k loop is unrolled by two, which measured
// ~1.3x over the straight loop on the development host (the unroll halves
// loop/bounds bookkeeping while the 16 independent accumulator chains keep
// both scalar FP ports saturated). Each C element's partial sum is
// accumulated strictly in increasing-k order by a single accumulator, so
// the result is bitwise independent of the unroll factor and of MR/NR —
// only the KC split (where alpha is applied per block) affects rounding.

// Micro-tile dimensions of the portable scalar tile. They are exported so
// tests can enumerate every edge-remainder class relative to the register
// tile; the active tile's dimensions (8×4 when a SIMD micro-kernel is
// dispatched) are SIMDTileMR×SIMDTileNR.
const (
	// MR is the number of C rows a scalar inner-kernel invocation computes.
	MR = 4
	// NR is the number of C columns a scalar inner-kernel invocation
	// computes.
	NR = 4
)

// SIMD register-tile dimensions. Both supported ISAs use an 8×4 tile:
// 8 rows fill two YMM registers (AVX2) or four 128-bit registers (NEON)
// per column, and 4 columns keep all accumulators plus operands within
// the architectural register file. Exported for tests and for
// cmd/calibrate's block grids.
const (
	SIMDTileMR = 8
	SIMDTileNR = 4
)

// microTile computes the MR×NR register tile
//
//	C[0:rows, 0:cols] += alpha * Ã·B̃
//
// over packed micro-panels ap (MR·kb words, column-of-MR layout) and bp
// (NR·kb words, row-of-NR layout), scattering only the valid rows×cols of a
// ragged edge tile. c points at the tile's top-left element of the
// column-major output with leading dimension ldc.
func microTile(ap, bp []float64, c []float64, ldc int, rows, cols, kb int, alpha float64) {
	var c00, c01, c02, c03 float64
	var c10, c11, c12, c13 float64
	var c20, c21, c22, c23 float64
	var c30, c31, c32, c33 float64

	// Advance head-reslices instead of indexing at l·MR: the loop
	// conditions carry the length facts the compiler needs to elide every
	// bounds check in the k loop (verified with -d=ssa/check_bce; see
	// EXPERIMENTS.md).
	a, b := ap[:kb*MR], bp[:kb*NR]
	for len(a) >= 2*MR && len(b) >= 2*NR {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a0, a1, a2, a3 = a[4], a[5], a[6], a[7]
		b0, b1, b2, b3 = b[4], b[5], b[6], b[7]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
		a, b = a[2*MR:], b[2*NR:]
	}
	if len(a) >= MR && len(b) >= NR {
		a0, a1, a2, a3 := a[0], a[1], a[2], a[3]
		b0, b1, b2, b3 := b[0], b[1], b[2], b[3]
		c00 += a0 * b0
		c01 += a0 * b1
		c02 += a0 * b2
		c03 += a0 * b3
		c10 += a1 * b0
		c11 += a1 * b1
		c12 += a1 * b2
		c13 += a1 * b3
		c20 += a2 * b0
		c21 += a2 * b1
		c22 += a2 * b2
		c23 += a2 * b3
		c30 += a3 * b0
		c31 += a3 * b1
		c32 += a3 * b2
		c33 += a3 * b3
	}

	if rows == MR && cols == NR {
		// Interior tile: straight-line scatter. Multiplying by alpha == 1 is
		// exact, so the specialised branch stays bitwise identical.
		if alpha == 1 {
			c0 := c[0*ldc : 0*ldc+MR : 0*ldc+MR]
			c0[0] += c00
			c0[1] += c10
			c0[2] += c20
			c0[3] += c30
			c1 := c[1*ldc : 1*ldc+MR : 1*ldc+MR]
			c1[0] += c01
			c1[1] += c11
			c1[2] += c21
			c1[3] += c31
			c2 := c[2*ldc : 2*ldc+MR : 2*ldc+MR]
			c2[0] += c02
			c2[1] += c12
			c2[2] += c22
			c2[3] += c32
			c3 := c[3*ldc : 3*ldc+MR : 3*ldc+MR]
			c3[0] += c03
			c3[1] += c13
			c3[2] += c23
			c3[3] += c33
		} else {
			c0 := c[0*ldc : 0*ldc+MR : 0*ldc+MR]
			c0[0] += alpha * c00
			c0[1] += alpha * c10
			c0[2] += alpha * c20
			c0[3] += alpha * c30
			c1 := c[1*ldc : 1*ldc+MR : 1*ldc+MR]
			c1[0] += alpha * c01
			c1[1] += alpha * c11
			c1[2] += alpha * c21
			c1[3] += alpha * c31
			c2 := c[2*ldc : 2*ldc+MR : 2*ldc+MR]
			c2[0] += alpha * c02
			c2[1] += alpha * c12
			c2[2] += alpha * c22
			c2[3] += alpha * c32
			c3 := c[3*ldc : 3*ldc+MR : 3*ldc+MR]
			c3[0] += alpha * c03
			c3[1] += alpha * c13
			c3[2] += alpha * c23
			c3[3] += alpha * c33
		}
		return
	}

	// Ragged edge tile: scatter only the valid rows/columns.
	acc := [NR][MR]float64{
		{c00, c10, c20, c30},
		{c01, c11, c21, c31},
		{c02, c12, c22, c32},
		{c03, c13, c23, c33},
	}
	for s := 0; s < cols; s++ {
		col := c[s*ldc : s*ldc+rows : s*ldc+rows]
		for r := range col {
			col[r] += alpha * acc[s][r]
		}
	}
}

// microTileEdge8x4 is the scalar tail for the 8×4 SIMD packed layout: it
// computes the ragged rows×cols prefix of a full tile over micro-panels
// packed for SIMDTileMR×SIMDTileNR. The zero padding the packers write
// into ragged panels accumulates into scratch lanes the scatter discards,
// exactly like the scalar tile's edge path. Fringe tiles are an O(n²)
// sliver of an O(n³) computation, so this path stays simple rather than
// unrolled.
func microTileEdge8x4(ap, bp, c []float64, ldc, rows, cols, kb int, alpha float64) {
	var acc [SIMDTileNR][SIMDTileMR]float64
	// Length-guarded head-reslicing: the loop condition proves the array
	// pointer conversions in range, so the k loop runs bounds-check free.
	av, bv := ap[:kb*SIMDTileMR], bp[:kb*SIMDTileNR]
	for len(av) >= SIMDTileMR && len(bv) >= SIMDTileNR {
		a := (*[SIMDTileMR]float64)(av)
		b := (*[SIMDTileNR]float64)(bv)
		for j, bj := range b {
			col := &acc[j]
			for i := range a {
				col[i] += a[i] * bj
			}
		}
		av, bv = av[SIMDTileMR:], bv[SIMDTileNR:]
	}
	for s := 0; s < cols; s++ {
		col := c[s*ldc : s*ldc+rows : s*ldc+rows]
		for r := range col {
			col[r] += alpha * acc[s][r]
		}
	}
}
