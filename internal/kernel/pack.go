package kernel

// Panel packing. Ã holds an mb×kb block of op(A) as a sequence of mr-row
// micro-panels (element (i, l) at dst[(i/mr)·mr·kb + l·mr + i%mr]); B̃ holds
// a kb×nb block of op(B) as nr-column micro-panels (element (l, j) at
// dst[(j/nr)·nr·kb + l·nr + j%nr]). The panel heights follow the active
// register tile (scalar 4×4 or SIMD 8×4), which is why the packers take
// mr/nr as parameters; the used values get unrolled fast paths. Ragged
// final panels are zero-padded so the micro-kernel never branches on panel
// height; padded lanes accumulate into scratch accumulators that the edge
// scatter discards.
//
// Packing is what makes the four transpose cases uniform (the packers read
// through op(A)/op(B); one micro-kernel serves all cases) and what turns
// the inner loop's operand streams into contiguous, cache-resident reads.

// packA copies the mb×kb block of op(A) with top-left (ic, pc) into dst as
// mr-row micro-panels.
func packA(mr int, dst []float64, a []float64, lda int, ta bool, ic, pc, mb, kb int) {
	if mr < 1 || kb < 1 {
		// Nothing to pack; the positive-mr fact also lets the prove pass
		// discharge every bounds check in the strided copy loops below.
		return
	}
	for ip := 0; ip < mb; ip += mr {
		rows := mb - ip
		if rows > mr {
			rows = mr
		}
		base := (ip / mr) * (mr * kb)
		if !ta {
			// op(A)(i, l) = A(ic+i, pc+l), column l contiguous in storage.
			if rows == mr {
				switch mr {
				case MR:
					for l := 0; l < kb; l++ {
						src := (*[MR]float64)(a[(pc+l)*lda+ic+ip:])
						d := (*[MR]float64)(dst[base+l*MR:])
						*d = *src
					}
					continue
				case SIMDTileMR:
					for l := 0; l < kb; l++ {
						src := (*[SIMDTileMR]float64)(a[(pc+l)*lda+ic+ip:])
						d := (*[SIMDTileMR]float64)(dst[base+l*SIMDTileMR:])
						*d = *src
					}
					continue
				}
				for l := 0; l < kb; l++ {
					src := a[(pc+l)*lda+ic+ip:]
					d := dst[base+l*mr : base+l*mr+mr : base+l*mr+mr]
					copy(d, src[:mr])
				}
				continue
			}
			for l := 0; l < kb; l++ {
				src := a[(pc+l)*lda+ic+ip:]
				d := dst[base+l*mr : base+l*mr+mr : base+l*mr+mr]
				copy(d, src[:rows])
				clear(d[rows:])
			}
			continue
		}
		// op(A)(i, l) = A(pc+l, ic+i): row i of the block is a contiguous
		// run of storage column ic+i, so copy k-runs row by row.
		// The strided stores advance d by mr per element instead of
		// indexing d[l*mr]: the loop conditions carry the length facts
		// that make the body bounds-check free (-d=ssa/check_bce).
		for r := 0; r < rows; r++ {
			src := a[(ic+ip+r)*lda+pc:]
			src = src[:kb]
			d := dst[base+r:]
			for len(src) > 1 && len(d) >= mr {
				d[0] = src[0]
				d, src = d[mr:], src[1:]
			}
			if len(src) > 0 && len(d) > 0 {
				d[0] = src[0]
			}
		}
		for r := rows; r < mr; r++ {
			d := dst[base+r:]
			for n := kb; n > 1 && len(d) >= mr; n-- {
				d[0] = 0
				d = d[mr:]
			}
			if len(d) > 0 {
				d[0] = 0
			}
		}
	}
}

// packB copies the kb×nb block of op(B) with top-left (pc, jc) into dst as
// nr-column micro-panels.
func packB(nr int, dst []float64, b []float64, ldb int, tb bool, pc, jc, kb, nb int) {
	if nr < 1 || kb < 1 {
		return
	}
	for jp := 0; jp < nb; jp += nr {
		cols := nb - jp
		if cols > nr {
			cols = nr
		}
		base := (jp / nr) * (nr * kb)
		if !tb {
			// op(B)(l, j) = B(pc+l, jc+j): column j of the block is a
			// contiguous run of storage column jc+j.
			for s := 0; s < cols; s++ {
				src := b[(jc+jp+s)*ldb+pc:]
				src = src[:kb]
				d := dst[base+s:]
				for len(src) > 1 && len(d) >= nr {
					d[0] = src[0]
					d, src = d[nr:], src[1:]
				}
				if len(src) > 0 && len(d) > 0 {
					d[0] = src[0]
				}
			}
			for s := cols; s < nr; s++ {
				d := dst[base+s:]
				for n := kb; n > 1 && len(d) >= nr; n-- {
					d[0] = 0
					d = d[nr:]
				}
				if len(d) > 0 {
					d[0] = 0
				}
			}
			continue
		}
		// op(B)(l, j) = B(jc+j, pc+l), row l of the block contiguous.
		if cols == nr && nr == NR {
			for l := 0; l < kb; l++ {
				src := (*[NR]float64)(b[(pc+l)*ldb+jc+jp:])
				d := (*[NR]float64)(dst[base+l*NR:])
				*d = *src
			}
			continue
		}
		for l := 0; l < kb; l++ {
			src := b[(pc+l)*ldb+jc+jp:]
			d := dst[base+l*nr : base+l*nr+nr : base+l*nr+nr]
			copy(d, src[:cols])
			clear(d[cols:])
		}
	}
}
