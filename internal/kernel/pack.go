package kernel

// Panel packing. Ã holds an mb×kb block of op(A) as a sequence of MR-row
// micro-panels (element (i, l) at dst[(i/MR)·MR·kb + l·MR + i%MR]); B̃ holds
// a kb×nb block of op(B) as NR-column micro-panels (element (l, j) at
// dst[(j/NR)·NR·kb + l·NR + j%NR]). Ragged final panels are zero-padded so
// the micro-kernel never branches on panel height; padded lanes accumulate
// into scratch accumulators that the edge scatter discards.
//
// Packing is what makes the four transpose cases uniform (the packers read
// through op(A)/op(B); one micro-kernel serves all cases) and what turns
// the inner loop's operand streams into contiguous, cache-resident reads.

// packA copies the mb×kb block of op(A) with top-left (ic, pc) into dst.
func packA(dst []float64, a []float64, lda int, ta bool, ic, pc, mb, kb int) {
	for ip := 0; ip < mb; ip += MR {
		rows := mb - ip
		if rows > MR {
			rows = MR
		}
		base := (ip / MR) * (MR * kb)
		if !ta {
			// op(A)(i, l) = A(ic+i, pc+l), column l contiguous in storage.
			if rows == MR {
				for l := 0; l < kb; l++ {
					src := a[(pc+l)*lda+ic+ip:]
					src = src[:MR:MR]
					d := dst[base+l*MR : base+l*MR+MR : base+l*MR+MR]
					d[0] = src[0]
					d[1] = src[1]
					d[2] = src[2]
					d[3] = src[3]
				}
				continue
			}
			for l := 0; l < kb; l++ {
				src := a[(pc+l)*lda+ic+ip:]
				d := dst[base+l*MR : base+l*MR+MR : base+l*MR+MR]
				for r := 0; r < rows; r++ {
					d[r] = src[r]
				}
				for r := rows; r < MR; r++ {
					d[r] = 0
				}
			}
			continue
		}
		// op(A)(i, l) = A(pc+l, ic+i): row i of the block is a contiguous
		// run of storage column ic+i, so copy k-runs row by row.
		for r := 0; r < rows; r++ {
			src := a[(ic+ip+r)*lda+pc:]
			src = src[:kb]
			d := dst[base+r:]
			for l, v := range src {
				d[l*MR] = v
			}
		}
		for r := rows; r < MR; r++ {
			d := dst[base+r:]
			for l := 0; l < kb; l++ {
				d[l*MR] = 0
			}
		}
	}
}

// packB copies the kb×nb block of op(B) with top-left (pc, jc) into dst.
func packB(dst []float64, b []float64, ldb int, tb bool, pc, jc, kb, nb int) {
	for jp := 0; jp < nb; jp += NR {
		cols := nb - jp
		if cols > NR {
			cols = NR
		}
		base := (jp / NR) * (NR * kb)
		if !tb {
			// op(B)(l, j) = B(pc+l, jc+j): column j of the block is a
			// contiguous run of storage column jc+j.
			for s := 0; s < cols; s++ {
				src := b[(jc+jp+s)*ldb+pc:]
				src = src[:kb]
				d := dst[base+s:]
				for l, v := range src {
					d[l*NR] = v
				}
			}
			for s := cols; s < NR; s++ {
				d := dst[base+s:]
				for l := 0; l < kb; l++ {
					d[l*NR] = 0
				}
			}
			continue
		}
		// op(B)(l, j) = B(jc+j, pc+l), row l of the block contiguous.
		if cols == NR {
			for l := 0; l < kb; l++ {
				src := b[(pc+l)*ldb+jc+jp:]
				src = src[:NR:NR]
				d := dst[base+l*NR : base+l*NR+NR : base+l*NR+NR]
				d[0] = src[0]
				d[1] = src[1]
				d[2] = src[2]
				d[3] = src[3]
			}
			continue
		}
		for l := 0; l < kb; l++ {
			src := b[(pc+l)*ldb+jc+jp:]
			d := dst[base+l*NR : base+l*NR+NR : base+l*NR+NR]
			for s := 0; s < cols; s++ {
				d[s] = src[s]
			}
			for s := cols; s < NR; s++ {
				d[s] = 0
			}
		}
	}
}
