package kernel

// NEON 8×4 micro-kernel glue; see micro_amd64.go for the amd64 twin.

//go:noescape
func microTile8x4NEON(kb int, alpha float64, ap, bp, c *float64, ldc int)

// neonFull adapts the assembly tile to the microImpl signature.
func neonFull(ap, bp, c []float64, ldc, kb int, alpha float64) {
	if kb <= 0 {
		return
	}
	ap = ap[:SIMDTileMR*kb]
	bp = bp[:SIMDTileNR*kb]
	c = c[:3*ldc+SIMDTileMR]
	microTile8x4NEON(kb, alpha, &ap[0], &bp[0], &c[0], ldc)
}

// newSIMDImpl probes HWCAP and returns the NEON tile, or nil when AdvSIMD
// is unavailable.
func newSIMDImpl() *microImpl {
	if !detectSIMD() {
		return nil
	}
	return &microImpl{
		mr:   SIMDTileMR,
		nr:   SIMDTileNR,
		isa:  "neon",
		full: neonFull,
		edge: microTileEdge8x4,
	}
}
