package kernel

import (
	"encoding/binary"
	"os"
	"runtime"
)

// Runtime CPU-feature detection for the NEON micro-kernel. On Linux the
// kernel publishes HWCAP through the ELF auxiliary vector; AT_HWCAP bit 1
// is ASIMD (AdvSIMD, i.e. NEON with double-precision lanes, mandatory in
// the ARMv8-A AArch64 base profile). Reading /proc/self/auxv avoids both
// cgo and a golang.org/x/sys dependency.

const (
	atHWCAP    = 16     // AT_HWCAP tag in the auxiliary vector
	hwcapASIMD = 1 << 1 // HWCAP_ASIMD
)

// detectSIMD reports whether the NEON micro-kernel can run.
func detectSIMD() bool {
	if runtime.GOOS == "linux" {
		if buf, err := os.ReadFile("/proc/self/auxv"); err == nil {
			return auxvHasASIMD(buf)
		}
	}
	// No auxv (non-Linux, or /proc masked off): every AArch64 profile Go
	// supports — including darwin/arm64 — mandates AdvSIMD, so default on.
	return true
}

// auxvHasASIMD scans an ELF auxiliary vector for AT_HWCAP and tests the
// ASIMD bit. A missing AT_HWCAP entry defaults on (the capability is
// architecturally mandatory; the probe exists to honor a kernel that says
// otherwise).
func auxvHasASIMD(auxv []byte) bool {
	for i := 0; i+16 <= len(auxv); i += 16 {
		tag := binary.LittleEndian.Uint64(auxv[i:])
		val := binary.LittleEndian.Uint64(auxv[i+8:])
		if tag == atHWCAP {
			return val&hwcapASIMD != 0
		}
	}
	return true
}
