package kernel

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/blas"
)

// Runtime micro-kernel dispatch. The packed NC/KC/MC loop nest is ISA
// independent; only the innermost register tile changes between machines.
// At startup the package probes the CPU (CPUID on amd64, HWCAP on arm64 —
// see cpu_*.go; no cgo, no external deps) and, when the host has the
// required vector extension, swaps the hand-written SIMD micro-kernel in
// for the portable scalar tile. Everything above the tile — packing
// layout, blocking, workspace accounting — adapts through the microImpl
// descriptor, so the scalar path remains the universal fallback and the
// bit-compat path (Compat) is always pinned to the scalar tile.
//
// The selection is overridable per process with the DGEFMM_KERNEL
// environment variable, so tests and CI can force any path:
//
//	DGEFMM_KERNEL=simd     force the SIMD tile (scalar fallback when the
//	                       host lacks the extension — ISA() reports which)
//	DGEFMM_KERNEL=packed   pin the scalar packed kernel
//	DGEFMM_KERNEL=blocked  Default() returns the legacy blocked kernel
//
// "packed" and "blocked" also pin ModeAuto instances to the scalar tile,
// so a DGEFMM_KERNEL=packed test run exercises the fallback everywhere,
// not just through Default().

// microImpl describes one register micro-kernel: its tile shape, the ISA
// it needs, and the two entry points the macro kernel calls. full computes
// a complete mr×nr tile; edge handles ragged boundary tiles (and is always
// scalar — fringes are a vanishing fraction of the flops).
type microImpl struct {
	// mr, nr are the register-tile dimensions. The Ã packing layout is
	// mr-row micro-panels and B̃ is nr-column micro-panels, so the packers
	// and workspace bounds follow the active tile shape.
	mr, nr int
	// isa names the instruction set ("avx2+fma", "neon", "scalar").
	isa string
	// full computes C[0:mr, 0:nr] += alpha·Ã·B̃ over a kb-deep micro-panel
	// pair. c points at the tile's top-left element (column-major, leading
	// dimension ldc).
	full func(ap, bp, c []float64, ldc, kb int, alpha float64)
	// edge computes the ragged rows×cols prefix of the tile.
	edge func(ap, bp, c []float64, ldc, rows, cols, kb int, alpha float64)
	// dual, when non-nil, computes one full mr×nr tile and scatters it into
	// two destinations with independent scalars (c0 += alpha0·acc,
	// c1 += alpha1·acc) — the fused Winograd write-out's two-quadrant fast
	// path. Nil means the fused sweep captures the tile in a buffer and
	// scatters scalar instead.
	dual func(ap, bp, c0 []float64, ldc0 int, c1 []float64, ldc1 int, kb int, alpha0, alpha1 float64)
}

// scalarImpl is the portable tile: the unrolled 4×4 register kernel that
// was PR 4's pure-Go ceiling. It is complete (full == edge specialisation)
// and runs on every GOARCH.
var scalarImpl = microImpl{
	mr:   MR,
	nr:   NR,
	isa:  "scalar",
	full: scalarFull,
	edge: microTile,
}

func scalarFull(ap, bp, c []float64, ldc, kb int, alpha float64) {
	microTile(ap, bp, c, ldc, MR, NR, kb, alpha)
}

// simdImpl is the host's SIMD tile, built by the platform file
// (micro_amd64.go, micro_arm64.go, micro_noasm.go); nil means the scalar
// tile is the only choice. It is a package-variable initialization — not
// an init() func — so it is ready before this package's init registers
// kernels with blas (var initialization precedes all init functions).
var simdImpl = newSIMDImpl()

// Mode selects a Packed instance's micro-kernel dispatch policy.
type Mode int

const (
	// ModeAuto (the zero value) uses the SIMD tile when the host supports
	// one and DGEFMM_KERNEL does not pin the scalar path.
	ModeAuto Mode = iota
	// ModeScalar pins the portable scalar tile regardless of the host.
	ModeScalar
	// ModeSIMD requests the SIMD tile even under DGEFMM_KERNEL=packed;
	// on hosts without a SIMD tile it still falls back to scalar (check
	// ISA() when the distinction matters).
	ModeSIMD
)

// envKernel returns the cached DGEFMM_KERNEL override ("" when unset).
// Unknown values are reported once on stderr and ignored.
var envKernel = sync.OnceValue(func() string {
	return normalizeEnvKernel(os.Getenv("DGEFMM_KERNEL"))
})

// normalizeEnvKernel validates a DGEFMM_KERNEL value, warning once on
// stderr and ignoring anything unknown. Split from the cached reader so
// tests can drive it directly.
func normalizeEnvKernel(v string) string {
	n := strings.ToLower(strings.TrimSpace(v))
	switch n {
	case "", "auto", "simd", "packed", "blocked":
		return n
	}
	fmt.Fprintf(os.Stderr, "kernel: ignoring unknown DGEFMM_KERNEL=%q (want simd|packed|blocked)\n", v)
	return ""
}

// impl resolves the receiver's active micro-kernel. Compat always pins the
// scalar tile: bit-for-bit legacy results require the legacy operation
// order, and FMA contraction would change rounding.
func (k *Packed) impl() *microImpl { return k.implFor(envKernel()) }

// implFor is impl with the environment override passed explicitly (tests
// exercise every combination without mutating the process environment).
func (k *Packed) implFor(env string) *microImpl {
	if k.Compat || k.Mode == ModeScalar || simdImpl == nil {
		return &scalarImpl
	}
	if k.Mode == ModeAuto {
		switch env {
		case "packed", "blocked":
			return &scalarImpl
		}
	}
	return simdImpl
}

// ISA reports the instruction set the receiver's inner loop dispatches to:
// "avx2+fma", "neon", or "scalar". internal/obs surfaces it in snapshots
// and cmd/benchdiff names it in reports.
func (k *Packed) ISA() string { return k.impl().isa }

// HasSIMD reports whether the host CPU (and OS) support this package's
// SIMD micro-kernel: AVX2+FMA with OS-enabled YMM state on amd64, AdvSIMD
// on arm64.
func HasSIMD() bool { return simdImpl != nil }

// SIMDISA names the host's SIMD micro-kernel ISA, or "scalar" when the
// fallback tile is the only choice.
func SIMDISA() string {
	if simdImpl == nil {
		return "scalar"
	}
	return simdImpl.isa
}

// Shared process-wide instances. Sharing is safe because every MulAdd
// draws private buffers from the mutex-guarded arena.
var (
	// defaultPacked auto-dispatches; it is what Default() returns absent an
	// override and what DGEFMM runs on by default.
	defaultPacked = &Packed{}
	// defaultScalar pins the scalar tile; registered as "packed" so the
	// pre-SIMD kernel stays addressable for ablations and baselines.
	defaultScalar = &Packed{Mode: ModeScalar}
	// defaultSIMD forces the SIMD tile (scalar fallback on non-SIMD hosts).
	defaultSIMD = &Packed{Mode: ModeSIMD}
)

// Default returns the process-default base-case kernel — the kernel
// internal/strassen, internal/fastlevel3 and internal/batch run below the
// cutoff: the auto-dispatching packed kernel, unless DGEFMM_KERNEL
// overrides the choice.
func Default() blas.Kernel { return defaultFor(envKernel()) }

// defaultFor is Default with the environment override passed explicitly.
func defaultFor(env string) blas.Kernel {
	switch env {
	case "simd":
		return defaultSIMD
	case "packed":
		return defaultScalar
	case "blocked":
		if k := blas.KernelByName("blocked"); k != nil {
			return k
		}
	}
	return defaultPacked
}

func init() {
	// Order matters: the last-registered new name leads reports. Register
	// the pinned scalar kernel first ("packed"), then the auto instance —
	// on SIMD hosts it contributes the leading "simd" name; on scalar
	// hosts its name is also "packed" and simply replaces the entry with
	// an equivalently scalar instance.
	blas.RegisterKernel(defaultScalar)
	blas.RegisterKernel(defaultPacked)
}
