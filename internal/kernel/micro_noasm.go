//go:build !amd64 && !arm64

package kernel

// No hand-written micro-kernel exists for this architecture: every Packed
// instance runs the portable scalar 4×4 tile (ISA() == "scalar",
// HasSIMD() == false). Adding a new ISA means an assembly tile plus a
// platform glue file like micro_amd64.go; nothing above the micro-kernel
// changes.

func newSIMDImpl() *microImpl { return nil }
