package kernel

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
)

// benchMulAdd reports MB/s == MFLOP/s by setting bytes to the 2·m·n·k flop
// count, so `go test -bench` output reads directly as a flop rate.
func benchMulAdd(b *testing.B, k blas.Kernel, n int) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, n*n)
	bb := make([]float64, n*n)
	c := make([]float64, n*n)
	for i := range a {
		a[i] = rng.Float64()
		bb[i] = rng.Float64()
	}
	b.SetBytes(int64(2 * n * n * n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, c, n)
	}
}

func BenchmarkPacked256(b *testing.B) { benchMulAdd(b, &Packed{}, 256) }
func BenchmarkPacked512(b *testing.B) { benchMulAdd(b, &Packed{}, 512) }
func BenchmarkScalar256(b *testing.B) { benchMulAdd(b, &Packed{Mode: ModeScalar}, 256) }
func BenchmarkScalar512(b *testing.B) { benchMulAdd(b, &Packed{Mode: ModeScalar}, 512) }
func BenchmarkSIMD512(b *testing.B) {
	if !HasSIMD() {
		b.Skipf("no SIMD micro-kernel (ISA %s)", SIMDISA())
	}
	benchMulAdd(b, &Packed{Mode: ModeSIMD}, 512)
}
func BenchmarkBlocked256(b *testing.B) { benchMulAdd(b, &blas.BlockedKernel{}, 256) }
func BenchmarkBlocked512(b *testing.B) { benchMulAdd(b, &blas.BlockedKernel{}, 512) }
func BenchmarkPackedCompat512(b *testing.B) {
	benchMulAdd(b, &Packed{Compat: true}, 512)
}
