package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/memtrack"
)

// The fused differential contract (fused.go): FusedMulAdd must equal
// "materialize the operand combinations with one rounding per added term in
// term order, then MulAdd once per destination at alpha·coeff" — bit for bit
// on the scalar/Compat tiles, and under a widened Higham bound on the FMA
// tile. The widening: the unfused SIMD-vs-scalar bound is 2·γ_{k+2}
// (simd_test.go); each fused operand adds (terms−1) pre-roundings per
// element, so two 2-term operands give 2·γ_{k+4} — in general
// 2·γ_{k+2+(tA−1)+(tB−1)}.

// combineTerms materializes Σ γᵢ·termᵢ elementwise over the shared storage
// layout, rounding once per added term in term order — exactly the order
// packAFused/packBFused round in, so a scalar fused call must match a
// reference built from this bit for bit.
func combineTerms(terms []Term, n int) []float64 {
	out := make([]float64, n)
	t0 := terms[0]
	for i := range out {
		out[i] = t0.Coeff * t0.Data[i]
	}
	for _, t := range terms[1:] {
		for i := range out {
			out[i] += t.Coeff * t.Data[i]
		}
	}
	return out
}

func boolTrans(tr bool) blas.Transpose {
	if tr {
		return blas.Trans
	}
	return blas.NoTrans
}

// fusedCase is one fused-vs-unfused differential: operand term coefficients,
// destination coefficients, shape, transposes and alpha.
type fusedCase struct {
	m, n, kk  int
	ta, tb    bool
	alpha     float64
	aCoeffs   []float64
	bCoeffs   []float64
	dstCoeffs []float64
}

// runFusedCase drives FusedMulAdd on k and the materialized reference
// (unfused MulAdd on the same kernel, once per destination) on identical
// inputs. exact demands bitwise equality; otherwise the widened Higham
// bound applies. NaN canaries guard every destination's ldc padding.
func runFusedCase(t *testing.T, k *Packed, tc fusedCase, rng *rand.Rand, exact bool) {
	t.Helper()
	m, n, kk := tc.m, tc.n, tc.kk
	ar, ac := opDims(tc.ta, m, kk)
	br, bc := opDims(tc.tb, kk, n)
	lda, ldb, ldc := ar+1, br+2, m+2

	aOp := Operand{Ld: lda, Trans: tc.ta}
	for _, g := range tc.aCoeffs {
		aOp.Terms = append(aOp.Terms, Term{Data: fill(rng, ar, ac, lda), Coeff: g})
	}
	bOp := Operand{Ld: ldb, Trans: tc.tb}
	for _, g := range tc.bCoeffs {
		bOp.Terms = append(bOp.Terms, Term{Data: fill(rng, br, bc, ldb), Coeff: g})
	}

	c0s := make([][]float64, len(tc.dstCoeffs))
	got := make([]Dest, len(tc.dstCoeffs))
	for i, g := range tc.dstCoeffs {
		c0s[i] = fill(rng, m, n, ldc)
		got[i] = Dest{Data: append([]float64(nil), c0s[i]...), Ld: ldc, Coeff: g}
	}
	k.FusedMulAdd(m, n, kk, tc.alpha, aOp, bOp, got)

	refA := combineTerms(aOp.Terms, lda*ac)
	refB := combineTerms(bOp.Terms, ldb*bc)
	ta, tb := boolTrans(tc.ta), boolTrans(tc.tb)
	var absProd []float64
	if !exact {
		absProd = absMulOracle(ta, tb, m, n, kk, refA, lda, refB, ldb)
	}
	for di, g := range tc.dstCoeffs {
		want := append([]float64(nil), c0s[di]...)
		k.MulAdd(ta, tb, m, n, kk, tc.alpha*g, refA, lda, refB, ldb, want, ldc)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				gv, wv := got[di].Data[j*ldc+i], want[j*ldc+i]
				if exact {
					if math.Float64bits(gv) != math.Float64bits(wv) {
						t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d aT=%v bT=%v dst=%d coeff=%g: bitwise mismatch at (%d,%d): %x vs %x",
							tc.ta, tc.tb, m, n, kk, tc.aCoeffs, tc.bCoeffs, di, g, i, j,
							math.Float64bits(gv), math.Float64bits(wv))
					}
					continue
				}
				// The widened bound: 2·γ_{k+2+(tA−1)+(tB−1)}·|α·coeff|·(|Ã|·|B̃|)_{ij}
				// plus a few ulps for the C₀ accumulate (absProd is m×n dense,
				// the destinations use ldc).
				gHi := 2 * gammaN(kk+2+(len(tc.aCoeffs)-1)+(len(tc.bCoeffs)-1))
				bound := gHi*math.Abs(tc.alpha*g)*absProd[j*m+i] + 4*0x1p-53*math.Abs(c0s[di][j*ldc+i]) + 1e-300
				if d := math.Abs(gv - wv); d > bound {
					t.Fatalf("ta=%v tb=%v m=%d n=%d k=%d dst=%d: |fused-ref|=%g > tol %g at (%d,%d)",
						tc.ta, tc.tb, m, n, kk, di, d, bound, i, j)
				}
			}
		}
		checkPadding(t, got[di].Data, m, n, ldc)
	}
}

var fusedSigns = [][2]float64{{1, 1}, {1, -1}, {-1, 1}, {-1, -1}}

// TestFusedCompatBitwiseExhaustive is the satellite's exhaustive sweep on
// the Compat (legacy-blocked, scalar) kernel: every (m mod 8, n mod 4)
// fringe class × all four transpose combinations × all four sign patterns
// per operand, two destinations with opposite signs. Bit-for-bit.
func TestFusedCompatBitwiseExhaustive(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	k := &Packed{Compat: true}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for dm := 0; dm < SIMDTileMR; dm++ {
				for dn := 0; dn < SIMDTileNR; dn++ {
					for _, sa := range fusedSigns {
						for _, sb := range fusedSigns {
							runFusedCase(t, k, fusedCase{
								m: SIMDTileMR + dm, n: SIMDTileNR + dn, kk: 19,
								ta: ta, tb: tb, alpha: 1.5,
								aCoeffs:   sa[:],
								bCoeffs:   sb[:],
								dstCoeffs: []float64{1, -1},
							}, rng, true)
						}
					}
				}
			}
		}
	}
}

// TestFusedScalarBlockCrossing drives the tiny-block scalar kernel so every
// fused call crosses jc/pc/ic block boundaries, with the deeper 4-term /
// 4-destination records of the two-level table. Still bit-for-bit: the
// tile-buffer capture preserves single-destination rounding per destination
// no matter how many destinations share the sweep. The mode must be pinned
// scalar — on a SIMD host the asm tile's FMA scatter rounds c+α·acc once
// where the capture's scalar scatter rounds twice, a 1-ulp difference the
// Higham test covers instead.
func TestFusedScalarBlockCrossing(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	k := &Packed{Mode: ModeScalar, MC: 2 * MR, KC: 3, NC: 2 * NR}
	shapes := [][3]int{{1, 1, 1}, {5, 3, 7}, {9, 7, 13}, {13, 11, 8}, {17, 9, 19}}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, s := range shapes {
				runFusedCase(t, k, fusedCase{
					m: s[0], n: s[1], kk: s[2],
					ta: ta, tb: tb, alpha: -0.75,
					aCoeffs:   []float64{1, -1, -1, 1},
					bCoeffs:   []float64{-1, 1, 1, 1},
					dstCoeffs: []float64{1, -1, 1, 1},
				}, rng, true)
				runFusedCase(t, k, fusedCase{
					m: s[0], n: s[1], kk: s[2],
					ta: ta, tb: tb, alpha: 2,
					aCoeffs:   []float64{1},
					bCoeffs:   []float64{1, -1},
					dstCoeffs: []float64{-1},
				}, rng, true)
			}
		}
	}
}

// TestFusedSIMDHigham exercises the SIMD dispatch (dual-scatter tile on
// two-destination full tiles, buffer capture elsewhere) against the
// materialized reference under the widened bound 2·γ_{k+4} for 2-term
// operands. Off-host ModeSIMD degrades to scalar; the check stays valid.
func TestFusedSIMDHigham(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	k := &Packed{Mode: ModeSIMD}
	// Full-tile shapes (dual-scatter eligible), fringe shapes, and
	// block-crossing sizes.
	shapes := [][3]int{
		{SIMDTileMR, SIMDTileNR, 16}, {2 * SIMDTileMR, 2 * SIMDTileNR, 32},
		{SIMDTileMR + 1, SIMDTileNR + 1, 33}, {3*SIMDTileMR - 1, 3*SIMDTileNR - 1, 37},
		{64, 48, 64}, {129, 65, 300},
	}
	for _, ta := range []bool{false, true} {
		for _, tb := range []bool{false, true} {
			for _, s := range shapes {
				for _, sa := range fusedSigns {
					runFusedCase(t, k, fusedCase{
						m: s[0], n: s[1], kk: s[2],
						ta: ta, tb: tb, alpha: 1.25,
						aCoeffs:   sa[:],
						bCoeffs:   []float64{1, -1},
						dstCoeffs: []float64{1, -1},
					}, rng, false)
				}
				// Four destinations force the buffer-capture scatter even on
				// full tiles.
				runFusedCase(t, k, fusedCase{
					m: s[0], n: s[1], kk: s[2],
					ta: ta, tb: tb, alpha: -1,
					aCoeffs:   []float64{1, -1, 1, -1},
					bCoeffs:   []float64{1, 1, -1, -1},
					dstCoeffs: []float64{1, -1, -1, 1},
				}, rng, false)
			}
		}
	}
}

// TestFusedSingleTermIsMulAdd pins the degenerate fused call (one term,
// coefficient 1, one destination) to the plain MulAdd path bit for bit on
// every dispatch mode — it literally shares the code.
func TestFusedSingleTermIsMulAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for _, mode := range []Mode{ModeAuto, ModeScalar, ModeSIMD} {
		k := &Packed{Mode: mode}
		for _, ta := range []bool{false, true} {
			runFusedCase(t, k, fusedCase{
				m: 33, n: 17, kk: 40,
				ta: ta, tb: !ta, alpha: 1.75,
				aCoeffs:   []float64{1},
				bCoeffs:   []float64{1},
				dstCoeffs: []float64{1},
			}, rng, true)
		}
	}
}

// TestFusedWorkspaceExact: a fused call draws exactly the two packed panels
// MulAdd draws — LeafWorkspace is unchanged and the arena peak must equal
// it. This is the kernel-side half of the Plan/KernelWords == memtrack-peak
// acceptance check (the strassen side asserts the whole plan).
func TestFusedWorkspaceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	shapes := [][3]int{{1, 1, 1}, {8, 4, 8}, {9, 5, 3}, {64, 64, 64}, {130, 70, 90}}
	for _, mode := range []Mode{ModeScalar, ModeSIMD} {
		for _, s := range shapes {
			m, n, kk := s[0], s[1], s[2]
			k := &Packed{Mode: mode, MC: 32, KC: 24, NC: 40}
			tr := memtrack.New()
			k.SetArena(tr)
			aOp := Operand{Ld: m, Terms: []Term{
				{Data: fill(rng, m, kk, m), Coeff: 1},
				{Data: fill(rng, m, kk, m), Coeff: -1},
			}}
			bOp := Operand{Ld: kk, Terms: []Term{
				{Data: fill(rng, kk, n, kk), Coeff: 1},
				{Data: fill(rng, kk, n, kk), Coeff: 1},
			}}
			dests := []Dest{
				{Data: make([]float64, m*n), Ld: m, Coeff: 1},
				{Data: make([]float64, m*n), Ld: m, Coeff: -1},
			}
			k.FusedMulAdd(m, n, kk, 1, aOp, bOp, dests)
			if got, want := tr.Peak(), k.LeafWorkspace(m, n, kk); got != want {
				t.Errorf("mode=%v %v: arena peak %d, LeafWorkspace %d", mode, s, got, want)
			}
			if tr.Live() != 0 {
				t.Errorf("mode=%v %v: %d words leaked", mode, s, tr.Live())
			}
		}
	}
}

// TestFusedDegenerateArgs: empty dims, zero alpha, and empty operand/dest
// lists are complete no-ops that must not touch any destination.
func TestFusedDegenerateArgs(t *testing.T) {
	k := &Packed{}
	a := Operand{Ld: 2, Terms: []Term{{Data: []float64{1, 2, 3, 4}, Coeff: 1}}}
	b := Operand{Ld: 2, Terms: []Term{{Data: []float64{5, 6, 7, 8}, Coeff: 1}}}
	c := []float64{math.NaN(), 1, 2, math.Inf(1)}
	d := []Dest{{Data: c, Ld: 2, Coeff: 1}}
	k.FusedMulAdd(0, 2, 2, 1, a, b, d)
	k.FusedMulAdd(2, 0, 2, 1, a, b, d)
	k.FusedMulAdd(2, 2, 0, 1, a, b, d)
	k.FusedMulAdd(2, 2, 2, 0, a, b, d)
	k.FusedMulAdd(2, 2, 2, 1, Operand{Ld: 2}, b, d)
	k.FusedMulAdd(2, 2, 2, 1, a, Operand{Ld: 2}, d)
	k.FusedMulAdd(2, 2, 2, 1, a, b, nil)
	if !math.IsNaN(c[0]) || c[1] != 1 || c[2] != 2 || !math.IsInf(c[3], 1) {
		t.Fatalf("degenerate FusedMulAdd touched C: %v", c)
	}
	if k.FusedCounters() != 0 {
		t.Fatalf("degenerate calls counted: %d", k.FusedCounters())
	}
}

// TestFusedCounters: served fused calls increment the fused counter and
// fold their packed words into the regular packing counters.
func TestFusedCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	k := &Packed{Mode: ModeScalar}
	m, n, kk := 12, 8, 16
	aOp := Operand{Ld: m, Terms: []Term{
		{Data: fill(rng, m, kk, m), Coeff: 1}, {Data: fill(rng, m, kk, m), Coeff: -1},
	}}
	bOp := Operand{Ld: kk, Terms: []Term{{Data: fill(rng, kk, n, kk), Coeff: 1}}}
	dests := []Dest{{Data: make([]float64, m*n), Ld: m, Coeff: 1}}
	k.FusedMulAdd(m, n, kk, 1, aOp, bOp, dests)
	k.FusedMulAdd(m, n, kk, 1, aOp, bOp, dests)
	if got := k.FusedCounters(); got != 2 {
		t.Fatalf("FusedCounters() = %d, want 2", got)
	}
	_, pa, pb := k.Counters()
	if wantA := int64(2 * m * kk); pa != wantA {
		t.Errorf("packed A words = %d, want %d", pa, wantA)
	}
	if wantB := int64(2 * kk * n); pb != wantB {
		t.Errorf("packed B words = %d, want %d", pb, wantB)
	}
}

// FuzzFused differential-fuzzes FusedMulAdd against the materialized
// reference over shape, transposes, term/destination counts, ±1 sign
// patterns, blocking and dispatch mode. CI runs a 10s smoke.
func FuzzFused(f *testing.F) {
	f.Add(uint8(8), uint8(4), uint8(16), false, false, uint8(0x1b), uint8(2), int64(1), uint8(0))
	f.Add(uint8(9), uint8(5), uint8(3), true, false, uint8(0x42), uint8(1), int64(2), uint8(1))
	f.Add(uint8(16), uint8(8), uint8(32), false, true, uint8(0xff), uint8(4), int64(3), uint8(2))
	f.Add(uint8(1), uint8(1), uint8(1), true, true, uint8(0x00), uint8(3), int64(4), uint8(3))
	f.Add(uint8(33), uint8(17), uint8(40), false, false, uint8(0x7c), uint8(2), int64(5), uint8(4))

	f.Fuzz(func(t *testing.T, m8, n8, k8 uint8, ta, tb bool, signBits, destBits uint8, seed int64, blk uint8) {
		m, n, kk := int(m8%48)+1, int(n8%48)+1, int(k8%48)+1
		var k *Packed
		switch blk % 5 {
		case 0:
			k = &Packed{}
		case 1:
			k = &Packed{Compat: true}
		case 2:
			k = &Packed{MC: 2 * MR, KC: 3, NC: 2 * NR}
		case 3:
			k = &Packed{Mode: ModeSIMD}
		default:
			k = &Packed{Mode: ModeScalar, MC: 16, KC: 8, NC: 12}
		}
		sign := func(bit uint8) float64 {
			if bit != 0 {
				return -1
			}
			return 1
		}
		nA, nB := int(signBits&3)+1, int(signBits>>2&3)+1
		nD := int(destBits%4) + 1
		rng := rand.New(rand.NewSource(seed))
		ar, ac := opDims(ta, m, kk)
		br, bc := opDims(tb, kk, n)
		lda, ldb, ldc := ar, br+1, m+1

		mk := func(rows, cols, ld int) []float64 {
			v := make([]float64, ld*cols)
			for j := 0; j < cols; j++ {
				for i := 0; i < rows; i++ {
					v[j*ld+i] = rng.Float64()*2 - 1
				}
			}
			return v
		}
		aOp := Operand{Ld: lda, Trans: ta}
		for i := 0; i < nA; i++ {
			aOp.Terms = append(aOp.Terms, Term{Data: mk(ar, ac, lda), Coeff: sign(signBits >> (4 + i) & 1)})
		}
		bOp := Operand{Ld: ldb, Trans: tb}
		for i := 0; i < nB; i++ {
			bOp.Terms = append(bOp.Terms, Term{Data: mk(br, bc, ldb), Coeff: sign(destBits >> (2 + i) & 1)})
		}
		alpha := [3]float64{1, -0.5, 2.25}[blk%3]
		c0s := make([][]float64, nD)
		dests := make([]Dest, nD)
		for i := range dests {
			c0s[i] = mk(m, n, ldc)
			dests[i] = Dest{Data: append([]float64(nil), c0s[i]...), Ld: ldc, Coeff: sign(uint8(seed) >> i & 1)}
		}
		k.FusedMulAdd(m, n, kk, alpha, aOp, bOp, dests)

		refA := combineTerms(aOp.Terms, lda*ac)
		refB := combineTerms(bOp.Terms, ldb*bc)
		tra, trb := boolTrans(ta), boolTrans(tb)
		absProd := absMulOracle(tra, trb, m, n, kk, refA, lda, refB, ldb)
		for di := range dests {
			want := append([]float64(nil), c0s[di]...)
			k.MulAdd(tra, trb, m, n, kk, alpha*dests[di].Coeff, refA, lda, refB, ldb, want, ldc)
			for j := 0; j < n; j++ {
				for i := 0; i < m; i++ {
					g := 2 * gammaN(kk+2+(nA-1)+(nB-1))
					tol := g*math.Abs(alpha)*absProd[j*m+i] + 4*0x1p-53*math.Abs(c0s[di][j*ldc+i]) + 1e-300
					if d := math.Abs(dests[di].Data[j*ldc+i] - want[j*ldc+i]); d > tol {
						t.Fatalf("m=%d n=%d k=%d ta=%v tb=%v nA=%d nB=%d nD=%d blk=%d dst=%d: diff %g > %g at (%d,%d)",
							m, n, kk, ta, tb, nA, nB, nD, blk%5, di, d, tol, i, j)
					}
				}
			}
		}
	})
}
