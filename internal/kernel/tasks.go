package kernel

// Threaded leaf execution: the packed loop nest's MC loop run as
// work-stealing tasks (internal/sched). The threading point follows the
// BLIS analysis (Huang et al., arXiv:1605.01078, §parallelization): the
// jc/pc loops carry the B̃ panel and the KC-accumulation order, so the ic
// loop — whose iterations write disjoint row bands of C and share B̃
// read-only — is where parallelism is free of synchronization on C.

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/phase"
	"repro/internal/sched"
)

// MulAddTasks is MulAdd with the MC (ic) loop of each (jc, pc) panel split
// into up to threads contiguous block chunks executed as scheduler tasks.
// The B̃ panel is packed once per (jc, pc) by the calling goroutine and
// shared read-only; every chunk packs its own Ã micro-panels into a private
// buffer, so the concurrent arena draw is threads·MC·KC + KC·NC
// (LeafWorkspaceParallel). Chunk boundaries fall on the same MC block edges
// the sequential loop uses and the KC panels retire in order (each panel's
// DAG is a barrier), so results are bit-for-bit identical to MulAdd.
//
// sub may be an external *sched.Runtime or the *sched.Worker handle of a
// running task — chunks then go to the worker's own deque, the worker
// executes them itself and idle workers steal, which is what lets a
// Strassen product task thread its leaves without blocking the pool. With
// a nil submitter, fewer than two effective chunks, or a single-worker
// runtime, it degrades to plain MulAdd.
func (k *Packed) MulAddTasks(sub sched.Submitter, threads int, transA, transB blas.Transpose, m, n, kk int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m <= 0 || n <= 0 || kk <= 0 || alpha == 0 {
		return
	}
	mi := k.impl()
	mcE, kcE, ncE := k.effBlocks(mi, m, n, kk)
	icBlocks := (m + mcE - 1) / mcE
	if sub != nil && threads > sub.Workers() {
		threads = sub.Workers()
	}
	if threads > icBlocks {
		threads = icBlocks
	}
	if sub == nil || threads < 2 {
		k.MulAdd(transA, transB, m, n, kk, alpha, a, lda, b, ldb, c, ldc)
		return
	}

	ar := k.Arena()
	bpack := ar.AllocUninit(kcE * ncE)
	ta, tb := transA.IsTrans(), transB.IsTrans()

	prof := phase.Active()
	var acct phaseAcct // pack_b runs on the calling goroutine
	var packedB int64
	var packedA, fullTiles, edgeTiles atomic.Int64
	var t0 time.Time
	for jc := 0; jc < n; jc += ncE {
		nb := n - jc
		if nb > ncE {
			nb = ncE
		}
		for pc := 0; pc < kk; pc += kcE {
			kb := kk - pc
			if kb > kcE {
				kb = kcE
			}
			if prof != nil {
				t0 = time.Now()
			}
			packB(mi.nr, bpack, b, ldb, tb, pc, jc, kb, nb)
			if prof != nil {
				acct.packBNS += int64(time.Since(t0))
			}
			packedB += int64(kb) * int64(nb)

			d := sched.NewDAG()
			for t := 0; t < threads; t++ {
				lo, hi := t*icBlocks/threads, (t+1)*icBlocks/threads
				if lo == hi {
					continue
				}
				jc, pc, nb, kb := jc, pc, nb, kb
				d.Add(func(w *sched.Worker) {
					apack := ar.AllocUninit(mcE * kcE)
					var cacct phaseAcct
					var aWords, ft, et int64
					var ct0 time.Time
					for blk := lo; blk < hi; blk++ {
						ic := blk * mcE
						mb := m - ic
						if mb > mcE {
							mb = mcE
						}
						if prof != nil {
							ct0 = time.Now()
						}
						packA(mi.mr, apack, a, lda, ta, ic, pc, mb, kb)
						if prof != nil {
							cacct.packANS += int64(time.Since(ct0))
							ct0 = time.Now()
						}
						aWords += int64(mb) * int64(kb)
						f, e := macroKernel(mi, apack, bpack, c, ldc, ic, jc, mb, nb, kb, alpha)
						if prof != nil {
							cacct.macro(mi, int64(time.Since(ct0)), mb, nb, kb, f, e)
						}
						ft += f
						et += e
					}
					ar.Free(apack)
					if prof != nil {
						cacct.flush(prof, aWords, 0)
					}
					packedA.Add(aWords)
					fullTiles.Add(ft)
					edgeTiles.Add(et)
				})
			}
			// Barrier per (jc, pc): the next KC step accumulates into the
			// same C columns, so panels must retire in order — that order is
			// what makes the summation bit-identical to the sequential nest.
			_ = sub.Run(context.Background(), d)
		}
	}
	ar.Free(bpack)
	if prof != nil {
		acct.flush(prof, 0, packedB)
	}
	k.mulAdds.Add(1)
	k.packAWords.Add(packedA.Load())
	k.packBWords.Add(packedB)
	if mi.isa != "scalar" {
		k.simdTiles.Add(fullTiles.Load())
		k.scalarTiles.Add(edgeTiles.Load())
	} else {
		k.scalarTiles.Add(fullTiles.Load() + edgeTiles.Load())
	}
}

// LeafWorkspaceParallel is LeafWorkspace under MulAddTasks with the given
// thread count: each concurrent chunk owns an Ã panel while the B̃ panel is
// shared. strassen.PlanFor consults it (through the parallelLeafSizer
// structural interface) when a task runtime may thread the plan's leaves.
func (k *Packed) LeafWorkspaceParallel(m, n, kk, threads int) int64 {
	if m <= 0 || n <= 0 || kk <= 0 {
		return 0
	}
	mcE, kcE, ncE := k.effBlocks(k.impl(), m, n, kk)
	icBlocks := (m + mcE - 1) / mcE
	if threads > icBlocks {
		threads = icBlocks
	}
	if threads < 1 {
		threads = 1
	}
	return int64(threads)*int64(mcE)*int64(kcE) + int64(kcE)*int64(ncE)
}
