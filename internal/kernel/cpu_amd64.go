package kernel

// Runtime CPU-feature detection for the AVX2+FMA micro-kernel, via raw
// CPUID/XGETBV (no dependency on golang.org/x/sys/cpu). The OS check
// matters: AVX registers are usable only when the kernel saves YMM state
// (OSXSAVE set and XCR0 enabling both XMM and YMM), so a hypervisor that
// masks XSAVE correctly demotes us to the scalar tile.

// cpuidex executes CPUID with the given leaf/subleaf. Implemented in
// cpu_amd64.s.
//
//go:noescape
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)

// xgetbv0 reads XCR0 (extended control register 0). Only valid when
// CPUID.1:ECX.OSXSAVE is set. Implemented in cpu_amd64.s.
//
//go:noescape
func xgetbv0() (eax, edx uint32)

// detectSIMD reports whether the AVX2+FMA micro-kernel can run: the CPU
// advertises AVX, AVX2 and FMA, and the OS saves the YMM register state.
func detectSIMD() bool {
	maxLeaf, _, _, _ := cpuidex(0, 0)
	if maxLeaf < 7 {
		return false
	}
	const (
		fmaBit     = 1 << 12 // CPUID.1:ECX.FMA
		osxsaveBit = 1 << 27 // CPUID.1:ECX.OSXSAVE
		avxBit     = 1 << 28 // CPUID.1:ECX.AVX
	)
	_, _, ecx1, _ := cpuidex(1, 0)
	if ecx1&fmaBit == 0 || ecx1&osxsaveBit == 0 || ecx1&avxBit == 0 {
		return false
	}
	// XCR0 bits 1 (SSE/XMM) and 2 (AVX/YMM) must both be OS-enabled.
	xcr0lo, _ := xgetbv0()
	if xcr0lo&0x6 != 0x6 {
		return false
	}
	const avx2Bit = 1 << 5 // CPUID.7.0:EBX.AVX2
	_, ebx7, _, _ := cpuidex(7, 0)
	return ebx7&avx2Bit != 0
}
