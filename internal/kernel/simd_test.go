package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/memtrack"
)

// SIMD correctness moves from bit-equality to a forward-error bound: the
// FMA tile contracts each multiply-add into one rounding, so results
// differ from the scalar tile in the last bits while both stay within
// Higham's DGEMM bound (Accuracy and Stability of Numerical Algorithms,
// §3.5): |computed − exact| ≤ γ_{k+2}·(|α|·|A|·|B|)_{ij} elementwise (the
// +2 absorbs the alpha application and the C accumulate). The difference
// between any two conforming implementations is bounded by twice that.

// gammaN is Higham's γ_n = n·u/(1−n·u) for unit roundoff u = 2⁻⁵³.
func gammaN(n int) float64 {
	const u = 0x1p-53
	nu := float64(n) * u
	return nu / (1 - nu)
}

// highamDiffTol returns the elementwise tolerance for comparing two
// conforming DGEMM implementations: 2·γ_{k+2}·(|α|·|A|·|B|)_{ij} plus a
// few ulps of the inputs' contribution for the β/C₀ handling.
func highamDiffTol(absProd []float64, c0 []float64, i int, alpha float64, kk int) float64 {
	g := 2 * gammaN(kk+2)
	return g*math.Abs(alpha)*absProd[i] + 4*0x1p-53*math.Abs(c0[i]) + 1e-300
}

// absMulOracle computes (|op(A)|·|op(B)|)[i,j] with the naive kernel —
// the magnitude term the Higham bound scales.
func absMulOracle(ta, tb blas.Transpose, m, n, kk int, a []float64, lda int, b []float64, ldb int) []float64 {
	absA := make([]float64, len(a))
	for i, v := range a {
		absA[i] = math.Abs(v)
	}
	absB := make([]float64, len(b))
	for i, v := range b {
		absB[i] = math.Abs(v)
	}
	out := make([]float64, m*n)
	blas.NaiveKernel{}.MulAdd(ta, tb, m, n, kk, 1, absA, lda, absB, ldb, out, m)
	return out
}

// TestSIMDvsScalarHigham is the SIMD-vs-scalar differential: identical
// inputs through the SIMD-dispatched and scalar-pinned kernels must agree
// elementwise under the Higham bound, for all four transpose combinations
// and shapes covering every fringe class of the 8×4 tile (m mod 8 and
// n mod 4 from 0 to tile−1), plus multi-block shapes that cross MC/KC/NC
// boundaries.
func TestSIMDvsScalarHigham(t *testing.T) {
	if !HasSIMD() {
		t.Skipf("host has no SIMD micro-kernel (ISA %s)", SIMDISA())
	}
	rng := rand.New(rand.NewSource(42))
	simd := &Packed{Mode: ModeSIMD}
	scalar := &Packed{Mode: ModeScalar}

	shapes := [][3]int{
		// Every fringe class around one tile.
		{8, 4, 16}, {9, 4, 16}, {15, 4, 16}, {16, 5, 16}, {8, 7, 16},
		{1, 1, 1}, {7, 3, 5}, {3, 9, 33},
		// Around the register tile at larger k.
		{17, 13, 100}, {24, 12, 257},
		// Crossing the default cache blocks.
		{300, 129, 300}, {129, 300, 513},
	}
	alphas := []float64{1, -0.5, 2.25}
	for _, ta := range transposes {
		for _, tb := range transposes {
			for _, alpha := range alphas {
				for _, s := range shapes {
					m, n, kk := s[0], s[1], s[2]
					ar, ac := opDims(ta.IsTrans(), m, kk)
					br, bc := opDims(tb.IsTrans(), kk, n)
					a := fill(rng, ar, ac, ar)
					b := fill(rng, br, bc, br)
					c0 := fill(rng, m, n, m)
					got := append([]float64(nil), c0...)
					want := append([]float64(nil), c0...)
					simd.MulAdd(ta, tb, m, n, kk, alpha, a, ar, b, br, got, m)
					scalar.MulAdd(ta, tb, m, n, kk, alpha, a, ar, b, br, want, m)
					absProd := absMulOracle(ta, tb, m, n, kk, a, ar, b, br)
					for i := range got {
						tol := highamDiffTol(absProd, c0, i, alpha, kk)
						if d := math.Abs(got[i] - want[i]); d > tol {
							t.Fatalf("ta=%v tb=%v alpha=%g %v: |simd-scalar|=%g > Higham tol %g at %d",
								ta, tb, alpha, s, d, tol, i)
						}
					}
				}
			}
		}
	}
}

// TestSIMDDegenerateArgs pins the k=0 / alpha=0 contract on the SIMD
// path: both are complete no-ops that must not touch C (C may even hold
// NaN padding).
func TestSIMDDegenerateArgs(t *testing.T) {
	simd := &Packed{Mode: ModeSIMD} // scalar fallback on non-SIMD hosts is fine: contract is identical
	c := []float64{math.NaN(), 1, 2, math.Inf(1)}
	a := []float64{1, 2}
	b := []float64{3, 4}
	simd.MulAdd(blas.NoTrans, blas.NoTrans, 2, 2, 0, 1.5, a, 2, b, 2, c, 2)
	simd.MulAdd(blas.NoTrans, blas.NoTrans, 2, 2, 1, 0, a, 2, b, 2, c, 2)
	simd.MulAdd(blas.NoTrans, blas.NoTrans, 0, 2, 1, 1, a, 2, b, 2, c, 2)
	simd.MulAdd(blas.NoTrans, blas.NoTrans, 2, 0, 1, 1, a, 2, b, 2, c, 2)
	if !math.IsNaN(c[0]) || c[1] != 1 || c[2] != 2 || !math.IsInf(c[3], 1) {
		t.Fatalf("degenerate MulAdd touched C: %v", c)
	}
}

// TestSIMDFringeTail verifies the scalar tail really handles the fringes:
// a shape one short of the tile in both dimensions must produce SIMD full
// tiles AND scalar edge tiles, counted by the dispatch counters, and the
// NaN canaries past m must survive (the tail must scatter only valid
// rows/cols even though the packed panel is zero-padded).
func TestSIMDFringeTail(t *testing.T) {
	if !HasSIMD() {
		t.Skipf("host has no SIMD micro-kernel (ISA %s)", SIMDISA())
	}
	rng := rand.New(rand.NewSource(43))
	k := &Packed{Mode: ModeSIMD}
	m, n, kk := 3*SIMDTileMR-1, 3*SIMDTileNR-1, 37
	ldc := m + 3
	a := fill(rng, m, kk, m)
	b := fill(rng, kk, n, kk)
	got := fill(rng, m, n, ldc)
	want := append([]float64(nil), got...)
	k.MulAdd(blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, got, ldc)
	blas.NaiveKernel{}.MulAdd(blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, want, ldc)
	if d := maxAbsDiff(t, got, want, m, n, ldc); d > 1e-12 {
		t.Fatalf("fringe shape m=%d n=%d: max diff %g", m, n, d)
	}
	checkPadding(t, got, m, n, ldc)
	simd, scalar := k.TileCounters()
	if simd == 0 || scalar == 0 {
		t.Fatalf("fringe shape must exercise both paths: simd=%d scalar=%d tiles", simd, scalar)
	}
}

// TestSIMDAllTransposeFringes sweeps every (m mod 8, n mod 4) fringe class
// for all transpose combinations against the naive oracle at moderate k.
func TestSIMDAllTransposeFringes(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	k := &Packed{Mode: ModeSIMD} // falls back to scalar off-host; oracle check still valid
	kk := 19
	for _, ta := range transposes {
		for _, tb := range transposes {
			for dm := 0; dm < SIMDTileMR; dm++ {
				for dn := 0; dn < SIMDTileNR; dn++ {
					m, n := SIMDTileMR+dm, SIMDTileNR+dn
					ar, ac := opDims(ta.IsTrans(), m, kk)
					br, bc := opDims(tb.IsTrans(), kk, n)
					a := fill(rng, ar, ac, ar)
					b := fill(rng, br, bc, br)
					got := fill(rng, m, n, m)
					want := append([]float64(nil), got...)
					k.MulAdd(ta, tb, m, n, kk, -1.25, a, ar, b, br, got, m)
					blas.NaiveKernel{}.MulAdd(ta, tb, m, n, kk, -1.25, a, ar, b, br, want, m)
					if d := maxAbsDiff(t, got, want, m, n, m); d > 1e-12 {
						t.Fatalf("ta=%v tb=%v m=%d n=%d: max diff %g", ta, tb, m, n, d)
					}
				}
			}
		}
	}
}

// TestSIMDLeafWorkspaceExact re-asserts the LeafWorkspace == arena-peak
// invariant under the 8-row SIMD panel shapes (the scalar variant is
// covered by TestLeafWorkspaceExact).
func TestSIMDLeafWorkspaceExact(t *testing.T) {
	if !HasSIMD() {
		t.Skipf("host has no SIMD micro-kernel (ISA %s)", SIMDISA())
	}
	rng := rand.New(rand.NewSource(45))
	shapes := [][3]int{{1, 1, 1}, {8, 4, 8}, {9, 5, 3}, {64, 64, 64}, {130, 70, 90}}
	for _, s := range shapes {
		m, n, kk := s[0], s[1], s[2]
		k := &Packed{Mode: ModeSIMD, MC: 32, KC: 24, NC: 40}
		tr := memtrack.New()
		k.SetArena(tr)
		a := fill(rng, m, kk, m)
		b := fill(rng, kk, n, kk)
		c := make([]float64, m*n)
		k.MulAdd(blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, c, m)
		if got, want := tr.Peak(), k.LeafWorkspace(m, n, kk); got != want {
			t.Errorf("%v: arena peak %d, LeafWorkspace %d", s, got, want)
		}
		if tr.Live() != 0 {
			t.Errorf("%v: %d words leaked", s, tr.Live())
		}
	}
}
