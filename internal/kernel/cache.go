package kernel

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// Cache geometry drives the packed kernel's block sizes the same way the
// paper's τ calibration drives the Strassen cutoff: measured once per
// machine, with analytic defaults good enough to start from. The rules are
// GotoBLAS's (Goto & van de Geijn, "Anatomy of High-Performance Matrix
// Multiplication"):
//
//   - KC: a KC×NR micro-panel of B̃ plus an MR×KC micro-panel of Ã must sit
//     in L1d with room left for the streamed C tile, so KC ≈ L1d/(2·8·(MR+NR));
//   - MC: the MC×KC packed Ã panel should occupy about half of L2, leaving
//     the other half for B̃ micro-panels and C traffic;
//   - NC: the KC×NC packed B̃ panel should not evict Ã from L2's parent
//     level, so it is bounded by a fraction of L3.
//
// cmd/calibrate -blocks re-derives the values empirically by sweeping around
// these analytic seeds, mirroring the paper's cutoff-parameter workflow.

// Caches holds the per-core data-cache capacities in bytes.
type Caches struct {
	L1D, L2, L3 int64
}

// fallbackCaches is used when detection fails (non-Linux, masked sysfs):
// a conservative modern x86 core.
var fallbackCaches = Caches{L1D: 32 << 10, L2: 1 << 20, L3: 8 << 20}

// DetectCaches reads the per-core cache hierarchy from Linux sysfs, falling
// back to conservative defaults when the information is unavailable.
func DetectCaches() Caches {
	c := Caches{}
	for idx := 0; idx < 8; idx++ {
		base := "/sys/devices/system/cpu/cpu0/cache/index" + strconv.Itoa(idx)
		level, err1 := os.ReadFile(base + "/level")
		typ, err2 := os.ReadFile(base + "/type")
		size, err3 := os.ReadFile(base + "/size")
		if err1 != nil || err2 != nil || err3 != nil {
			break
		}
		ty := strings.TrimSpace(string(typ))
		if ty != "Data" && ty != "Unified" {
			continue
		}
		bytes := parseCacheSize(strings.TrimSpace(string(size)))
		if bytes <= 0 {
			continue
		}
		switch strings.TrimSpace(string(level)) {
		case "1":
			c.L1D = bytes
		case "2":
			c.L2 = bytes
		case "3":
			c.L3 = bytes
		}
	}
	if c.L1D <= 0 {
		c.L1D = fallbackCaches.L1D
	}
	if c.L2 <= 0 {
		c.L2 = fallbackCaches.L2
	}
	if c.L3 <= 0 {
		c.L3 = fallbackCaches.L3
	}
	return c
}

// parseCacheSize parses sysfs cache sizes like "48K", "2048K", "16M".
func parseCacheSize(s string) int64 {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0
	}
	return v * mult
}

// DeriveBlocks maps a cache geometry to (MC, KC, NC) by the rules above,
// clamped to ranges that measured well across the micro-kernel prototypes
// (very large KC overflows L1d once both micro-panels and the C tile
// contend; very large MC makes the Ã pack dominate small leaves).
func DeriveBlocks(c Caches) (mc, kc, nc int) {
	const wordBytes = 8
	kc = int(c.L1D / (2 * wordBytes * (MR + NR)))
	// The 256 cap matters beyond cache arithmetic: it divides the
	// power-of-two leaf sizes the Strassen recursion produces evenly (a
	// 512-deep k split into 256+256 beats 384+128 measurably), and larger
	// KC gains nothing once both micro-panels already fit L1d.
	kc = clampRound(kc, 128, 256, 32)
	mc = int(c.L2 / 2 / int64(kc*wordBytes))
	mc = clampRound(mc, 64, 256, MR)
	nc = int(c.L3 / 4 / int64(kc*wordBytes))
	nc = clampRound(nc, 512, 4096, NR)
	return mc, kc, nc
}

func clampRound(v, lo, hi, unit int) int {
	if v < lo {
		v = lo
	}
	if v > hi {
		v = hi
	}
	return v / unit * unit
}

var (
	blocksOnce sync.Once
	blocksMu   sync.RWMutex
	defMC      int
	defKC      int
	defNC      int
)

// DefaultBlocks returns the process-wide default (MC, KC, NC), derived from
// the detected cache hierarchy on first use and overridable with
// SetDefaultBlocks (the hook cmd/calibrate -blocks uses).
func DefaultBlocks() (mc, kc, nc int) {
	blocksOnce.Do(func() {
		mc, kc, nc := DeriveBlocks(DetectCaches())
		blocksMu.Lock()
		if defMC == 0 {
			defMC = mc
		}
		if defKC == 0 {
			defKC = kc
		}
		if defNC == 0 {
			defNC = nc
		}
		blocksMu.Unlock()
	})
	blocksMu.RLock()
	defer blocksMu.RUnlock()
	return defMC, defKC, defNC
}

// SetDefaultBlocks overrides the derived defaults, the programmatic
// equivalent of re-running the block calibration on a new machine. Values
// are rounded to micro-tile multiples; non-positive values are ignored.
func SetDefaultBlocks(mc, kc, nc int) {
	blocksMu.Lock()
	defer blocksMu.Unlock()
	if mc > 0 {
		defMC = clampRound(mc, MR, 1<<20, MR)
	}
	if kc > 0 {
		defKC = clampRound(kc, 1, 1<<20, 1)
	}
	if nc > 0 {
		defNC = clampRound(nc, NR, 1<<20, NR)
	}
}
