package kernel

import "repro/internal/phase"

// phaseAcct accumulates one MulAdd's phase attribution locally so the
// profiler sees a single Add per phase per call, not one per cache block.
//
// The macro-kernel sweep is timed as a whole (timing each MR×NR register
// tile would perturb the very loop being measured) and the elapsed time is
// apportioned between the micro and fringe phases in proportion to their
// FLOPs. For the power-of-two shapes the Strassen quadrants produce, every
// tile is full and the split is exact; on ragged shapes the fringe share
// is an estimate with the right totals (times and FLOPs both sum to the
// sweep's true values).
type phaseAcct struct {
	packANS, packBNS        int64
	microNS, fringeNS       int64
	microFlops, fringeFlops int64
	microBytes, fringeBytes int64
}

// macro folds one macroKernel sweep: mb×nb×kb logical block, ft full tiles
// and et edge tiles, swept in ns nanoseconds.
func (a *phaseAcct) macro(mi *microImpl, ns int64, mb, nb, kb int, ft, et int64) {
	total := 2 * int64(mb) * int64(nb) * int64(kb)
	full := ft * 2 * int64(mi.mr) * int64(mi.nr) * int64(kb)
	edge := total - full
	// Per-tile traffic: both panels are zero-padded to mr/nr, so an edge
	// tile streams the same mr·kb + nr·kb packed words as a full one; C is
	// read and written once per tile (bounded by mr·nr each way).
	tileBytes := 8 * (int64(mi.mr)*int64(kb) + int64(mi.nr)*int64(kb) + 2*int64(mi.mr)*int64(mi.nr))
	a.microFlops += full
	a.fringeFlops += edge
	a.microBytes += ft * tileBytes
	a.fringeBytes += et * tileBytes
	if edge <= 0 || total <= 0 {
		a.microNS += ns
		return
	}
	mNS := ns * full / total
	a.microNS += mNS
	a.fringeNS += ns - mNS
}

// flush records the call's totals. Packing performs no FLOPs; its traffic
// is one read plus one write per packed word (16 bytes).
func (a *phaseAcct) flush(p *phase.Profiler, packedA, packedB int64) {
	p.Add(phase.KernelPackA, a.packANS, 0, packedA*16)
	p.Add(phase.KernelPackB, a.packBNS, 0, packedB*16)
	p.Add(phase.KernelMicro, a.microNS, a.microFlops, a.microBytes)
	if a.fringeFlops > 0 || a.fringeNS > 0 {
		p.Add(phase.KernelFringe, a.fringeNS, a.fringeFlops, a.fringeBytes)
	}
}
