// Package kernel provides the packed, cache-blocked, register-tiled DGEMM
// micro-kernel that serves as DGEFMM's base-case multiplier below the
// Strassen cutoff. The paper's speedups are multiplicative over whatever
// DGEMM runs at the leaves (its machines used vendor BLAS); this package is
// the reproduction's equivalent of that tuned substrate, in the style of
// Huang et al., "Implementing Strassen's Algorithm with BLIS"
// (arXiv:1605.01078): a GotoBLAS loop nest (NC/KC/MC blocking), operands
// repacked into contiguous zero-padded panels, and an unrolled MR×NR
// register kernel with edge-case handlers, covering alpha and all four
// transpose combinations.
//
// The register tile is dispatched at runtime (see dispatch.go): hosts with
// AVX2+FMA (amd64) or AdvSIMD (arm64) run a hand-written 8×4 assembly tile
// — Goto & van de Geijn's point that the micro-kernel is where the vector
// ISA earns its multiple — while every other host, and every Compat
// instance, runs the portable scalar 4×4 tile. The DGEFMM_KERNEL
// environment variable forces either path.
//
// Packing buffers are drawn from an internal/memtrack arena, so workspace
// stays measurable and bounded the same way the Strassen temporaries are
// (Boyer et al., arXiv:0707.2347 motivate keeping scratch inside the
// accounted budget): LeafWorkspace gives the closed-form words per call and
// tests assert the measured arena peak equals it. The arena's free list
// makes the steady state allocation-free, and because every MulAdd draws
// its own buffers, a single *Packed is safe for concurrent use — unlike
// blas.BlockedKernel, whose packing buffers are per-instance state.
package kernel

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/memtrack"
	"repro/internal/phase"
)

// Compat block sizes: blas.BlockedKernel's defaults. Rounding of a C
// element depends only on where the k dimension is split into KC blocks
// (alpha is applied per block), not on MR/NR/MC/NC, so pinning KC to the
// legacy kernel's value — and the micro-kernel to the scalar tile, since
// FMA contraction changes rounding — makes results bit-for-bit identical
// to it.
const (
	compatMC = 128
	compatKC = 256
	compatNC = 1024
)

// Packed is the packed cache-blocked kernel. The zero value is ready to
// use: block sizes default to the cache-derived DefaultBlocks, the
// micro-kernel to the best tile the host supports (ModeAuto), and the
// packing arena is created on first use. All methods are safe for
// concurrent use.
type Packed struct {
	// MC×KC is the packed Ã panel (sized for L2); KC×NC is the packed B̃
	// panel (sized against L3). Zero values select DefaultBlocks.
	MC, KC, NC int
	// Mode selects the micro-kernel dispatch policy; see Mode. The zero
	// value auto-dispatches.
	Mode Mode
	// Compat pins the blocking to blas.BlockedKernel's defaults and the
	// micro-kernel to the scalar tile, making results bit-for-bit
	// identical to the legacy blocked leaf (at some speed cost). Off by
	// default: the tuned blocking changes the KC split and the SIMD tile
	// fuses multiply-adds, both changing rounding while staying within the
	// same error bounds.
	Compat bool

	mu    sync.Mutex
	arena *memtrack.Tracker

	mulAdds      atomic.Int64
	fusedMulAdds atomic.Int64
	packAWords   atomic.Int64
	packBWords   atomic.Int64
	simdTiles    atomic.Int64
	scalarTiles  atomic.Int64
}

// Name implements blas.Kernel. A Packed whose inner loop dispatches to a
// SIMD tile reports "simd" (its calibrated cutoff parameters differ from
// the scalar kernel's — a faster leaf raises the crossover); the scalar
// paths report "packed".
func (k *Packed) Name() string {
	if k.impl().isa != "scalar" {
		return "simd"
	}
	return "packed"
}

// Clone implements blas.Cloner. The clone shares the receiver's tuning but
// owns a fresh arena, so per-worker clones (internal/batch) get per-worker
// workspace accounting.
func (k *Packed) Clone() blas.Kernel {
	return &Packed{MC: k.MC, KC: k.KC, NC: k.NC, Mode: k.Mode, Compat: k.Compat}
}

// Arena returns the packing-buffer arena, creating it on first use.
func (k *Packed) Arena() *memtrack.Tracker {
	k.mu.Lock()
	defer k.mu.Unlock()
	if k.arena == nil {
		k.arena = memtrack.New()
	}
	return k.arena
}

// SetArena installs an externally owned arena (internal/batch points worker
// kernels at observed arenas). Must be called before the first MulAdd.
func (k *Packed) SetArena(t *memtrack.Tracker) {
	k.mu.Lock()
	k.arena = t
	k.mu.Unlock()
}

// Counters reports cumulative work counters: MulAdd calls and the words
// packed into Ã and B̃ panels. internal/obs snapshots them per kernel.
func (k *Packed) Counters() (mulAdds, packAWords, packBWords int64) {
	return k.mulAdds.Load(), k.packAWords.Load(), k.packBWords.Load()
}

// TileCounters reports how many register-tile invocations ran on the SIMD
// micro-kernel versus the scalar one (full tiles dispatch; ragged fringe
// tiles always run the scalar tail). internal/obs snapshots these so a
// silently mis-dispatched host shows up as scalar-heavy traffic.
func (k *Packed) TileCounters() (simd, scalar int64) {
	return k.simdTiles.Load(), k.scalarTiles.Load()
}

// blocks resolves the effective (MC, KC, NC) for the active micro-kernel.
func (k *Packed) blocks(mi *microImpl) (mc, kc, nc int) {
	if k.Compat {
		return compatMC, compatKC, compatNC
	}
	mc, kc, nc = k.MC, k.KC, k.NC
	dmc, dkc, dnc := DefaultBlocks()
	if mc <= 0 {
		mc = dmc
	}
	if kc <= 0 {
		kc = dkc
	}
	if nc <= 0 {
		nc = dnc
	}
	mc = roundUpMul(mc, mi.mr)
	nc = roundUpMul(nc, mi.nr)
	return mc, kc, nc
}

// effBlocks clamps the blocking to the problem so small leaves draw small
// buffers (a τ-sized Strassen leaf must not pay for an NC-wide panel).
func (k *Packed) effBlocks(mi *microImpl, m, n, kk int) (mcE, kcE, ncE int) {
	mc, kc, nc := k.blocks(mi)
	mcE = roundUpMul(m, mi.mr)
	if mcE > mc {
		mcE = mc
	}
	kcE = kk
	if kcE > kc {
		kcE = kc
	}
	ncE = roundUpMul(n, mi.nr)
	if ncE > nc {
		ncE = nc
	}
	return mcE, kcE, ncE
}

// LeafWorkspace returns the exact packing workspace, in float64 words, one
// MulAdd of the given logical shape draws from the arena: the Ã panel plus
// the B̃ panel at the clamped blocking (which follows the active tile's
// panel shapes — an 8-row SIMD Ã panel rounds m up to 8, not 4).
// strassen.PlanFor folds the maximum over a plan's base cases into
// Plan.KernelWords.
func (k *Packed) LeafWorkspace(m, n, kk int) int64 {
	if m <= 0 || n <= 0 || kk <= 0 {
		return 0
	}
	mcE, kcE, ncE := k.effBlocks(k.impl(), m, n, kk)
	return int64(mcE)*int64(kcE) + int64(kcE)*int64(ncE)
}

// MulAdd implements blas.Kernel: C ← C + alpha·op(A)·op(B) on column-major
// storage, op(A) m×k, op(B) k×n. The caller (blas.DgemmKernel) has already
// validated arguments and applied beta.
func (k *Packed) MulAdd(transA, transB blas.Transpose, m, n, kk int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if m <= 0 || n <= 0 || kk <= 0 || alpha == 0 {
		return
	}
	mi := k.impl()
	mcE, kcE, ncE := k.effBlocks(mi, m, n, kk)
	ar := k.Arena()
	apack := ar.AllocUninit(mcE * kcE)
	bpack := ar.AllocUninit(kcE * ncE)
	ta, tb := transA.IsTrans(), transB.IsTrans()

	// Phase attribution is hoisted to one Active() load per MulAdd; with no
	// profiler installed the loop nest below takes the prof==nil branches
	// only. Pack and macro-kernel durations accumulate locally and fold into
	// the profiler in one Add per phase at the end of the call.
	prof := phase.Active()
	var acct phaseAcct

	var packedA, packedB int64
	var fullTiles, edgeTiles int64
	var t0 time.Time
	for jc := 0; jc < n; jc += ncE {
		nb := n - jc
		if nb > ncE {
			nb = ncE
		}
		for pc := 0; pc < kk; pc += kcE {
			kb := kk - pc
			if kb > kcE {
				kb = kcE
			}
			if prof != nil {
				t0 = time.Now()
			}
			packB(mi.nr, bpack, b, ldb, tb, pc, jc, kb, nb)
			if prof != nil {
				acct.packBNS += int64(time.Since(t0))
			}
			packedB += int64(kb) * int64(nb)
			for ic := 0; ic < m; ic += mcE {
				mb := m - ic
				if mb > mcE {
					mb = mcE
				}
				if prof != nil {
					t0 = time.Now()
				}
				packA(mi.mr, apack, a, lda, ta, ic, pc, mb, kb)
				if prof != nil {
					acct.packANS += int64(time.Since(t0))
					t0 = time.Now()
				}
				packedA += int64(mb) * int64(kb)
				ft, et := macroKernel(mi, apack, bpack, c, ldc, ic, jc, mb, nb, kb, alpha)
				if prof != nil {
					acct.macro(mi, int64(time.Since(t0)), mb, nb, kb, ft, et)
				}
				fullTiles += ft
				edgeTiles += et
			}
		}
	}
	ar.Free(bpack)
	ar.Free(apack)
	if prof != nil {
		acct.flush(prof, packedA, packedB)
	}
	k.mulAdds.Add(1)
	k.packAWords.Add(packedA)
	k.packBWords.Add(packedB)
	if mi.isa != "scalar" {
		k.simdTiles.Add(fullTiles)
		k.scalarTiles.Add(edgeTiles)
	} else {
		k.scalarTiles.Add(fullTiles + edgeTiles)
	}
}

// macroKernel sweeps the packed panels with the register micro-kernel:
// for each nr-wide B̃ micro-panel (kept hot in L1), stream the Ã panel's
// mr-row micro-panels from L2 through the register tile. Full tiles run
// the impl's fast path (the SIMD tile when dispatched); ragged boundary
// tiles run its scalar edge handler. Returns the tile counts for the
// dispatch counters.
func macroKernel(mi *microImpl, apack, bpack []float64, c []float64, ldc int, ic, jc, mb, nb, kb int, alpha float64) (fullTiles, edgeTiles int64) {
	mr, nr := mi.mr, mi.nr
	for jp := 0; jp < nb; jp += nr {
		cols := nb - jp
		if cols > nr {
			cols = nr
		}
		bp := bpack[(jp/nr)*(nr*kb):]
		ctile := c[(jc+jp)*ldc+ic:]
		for ip := 0; ip < mb; ip += mr {
			rows := mb - ip
			if rows > mr {
				rows = mr
			}
			ap := apack[(ip/mr)*(mr*kb):]
			if rows == mr && cols == nr {
				mi.full(ap, bp, ctile[ip:], ldc, kb, alpha)
				fullTiles++
			} else {
				mi.edge(ap, bp, ctile[ip:], ldc, rows, cols, kb, alpha)
				edgeTiles++
			}
		}
	}
	return fullTiles, edgeTiles
}

func roundUpMul(v, unit int) int {
	return (v + unit - 1) / unit * unit
}
