package kernel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/blas"
	"repro/internal/memtrack"
)

// fill populates a column-major rows×cols matrix (leading dimension ld) with
// deterministic pseudo-random values, leaving any ld-rows padding untouched
// so differential tests also catch out-of-tile writes.
func fill(rng *rand.Rand, rows, cols, ld int) []float64 {
	m := make([]float64, ld*cols)
	for i := range m {
		m[i] = math.NaN() // padding canary; overwritten below for real elements
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m[j*ld+i] = rng.Float64()*2 - 1
		}
	}
	return m
}

// opDims returns the storage dims of A given op(A) is m×k.
func opDims(trans bool, m, k int) (rows, cols int) {
	if trans {
		return k, m
	}
	return m, k
}

func maxAbsDiff(t *testing.T, got, want []float64, rows, cols, ld int) float64 {
	t.Helper()
	var worst float64
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			d := math.Abs(got[j*ld+i] - want[j*ld+i])
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}

// checkPadding verifies the NaN canaries outside the rows×cols window
// survived: the kernel must never write past m even when ld > m.
func checkPadding(t *testing.T, c []float64, rows, cols, ld int) {
	t.Helper()
	for j := 0; j < cols; j++ {
		for i := rows; i < ld; i++ {
			if !math.IsNaN(c[j*ld+i]) {
				t.Fatalf("padding clobbered at (%d,%d)", i, j)
			}
		}
	}
}

var transposes = []blas.Transpose{blas.NoTrans, blas.Trans}

// TestDifferentialEdgeShapes runs the packed kernel against the naive oracle
// for every transpose/alpha/beta combination over all edge-remainder shapes
// relative to the MR×NR register tile: m, n ∈ {1..2·MR+1}, k ∈ {1..2·KC+1}
// scaled down via tiny block sizes so each shape exercises every loop level
// (jc/pc/ic block loops, panel edges, ragged micro-tiles).
func TestDifferentialEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Tiny blocks so even single-digit dims cross block boundaries.
	k := &Packed{MC: 2 * MR, KC: 3, NC: 2 * NR}
	oracle := blas.NaiveKernel{}

	dims := func(unit int) []int {
		var out []int
		for v := 1; v <= 2*unit+1; v++ {
			out = append(out, v)
		}
		return out
	}
	ks := []int{1, 2, 3, 4, 6, 7} // around KC=3: below, equal, above, 2·KC, 2·KC±1

	for _, ta := range transposes {
		for _, tb := range transposes {
			for _, alpha := range []float64{1, -0.5, 2.25} {
				for _, beta := range []float64{0, 1, -1.5} {
					for _, m := range dims(MR) {
						for _, n := range dims(NR) {
							for _, kk := range ks {
								ar, ac := opDims(ta.IsTrans(), m, kk)
								br, bc := opDims(tb.IsTrans(), kk, n)
								lda, ldb, ldc := ar+1, br, m+2
								a := fill(rng, ar, ac, lda)
								b := fill(rng, br, bc, ldb)
								c0 := fill(rng, m, n, ldc)
								got := append([]float64(nil), c0...)
								want := append([]float64(nil), c0...)
								blas.DgemmKernel(k, ta, tb, m, n, kk, alpha, a, lda, b, ldb, beta, got, ldc)
								blas.DgemmKernel(oracle, ta, tb, m, n, kk, alpha, a, lda, b, ldb, beta, want, ldc)
								tol := 1e-13 * float64(kk)
								if d := maxAbsDiff(t, got, want, m, n, ldc); d > tol {
									t.Fatalf("ta=%v tb=%v alpha=%g beta=%g m=%d n=%d k=%d: max diff %g",
										ta, tb, alpha, beta, m, n, kk, d)
								}
								checkPadding(t, got, m, n, ldc)
							}
						}
					}
				}
			}
		}
	}
}

// TestDifferentialLarge checks realistic leaf sizes (crossing the real
// default blocks, including ragged edges) against the oracle.
func TestDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	k := &Packed{}
	oracle := blas.NaiveKernel{}
	shapes := [][3]int{{64, 64, 64}, {129, 257, 300}, {100, 50, 311}, {257, 65, 129}}
	for _, ta := range transposes {
		for _, tb := range transposes {
			for _, s := range shapes {
				m, n, kk := s[0], s[1], s[2]
				ar, ac := opDims(ta.IsTrans(), m, kk)
				br, bc := opDims(tb.IsTrans(), kk, n)
				a := fill(rng, ar, ac, ar)
				b := fill(rng, br, bc, br)
				c0 := fill(rng, m, n, m)
				got := append([]float64(nil), c0...)
				want := append([]float64(nil), c0...)
				blas.DgemmKernel(k, ta, tb, m, n, kk, 1.25, a, ar, b, br, 0.5, got, m)
				blas.DgemmKernel(oracle, ta, tb, m, n, kk, 1.25, a, ar, b, br, 0.5, want, m)
				tol := 1e-12 * float64(kk)
				if d := maxAbsDiff(t, got, want, m, n, m); d > tol {
					t.Fatalf("ta=%v tb=%v %v: max diff %g", ta, tb, s, d)
				}
			}
		}
	}
}

// TestCompatBitwise verifies Compat mode reproduces blas.BlockedKernel
// bit for bit: with KC pinned to the legacy kernel's split, every C element
// sees the identical sequence of rounded operations.
func TestCompatBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	packed := &Packed{Compat: true}
	legacy := &blas.BlockedKernel{}
	shapes := [][3]int{{64, 64, 64}, {300, 300, 300}, {129, 257, 513}, {33, 7, 311}}
	for _, ta := range transposes {
		for _, tb := range transposes {
			for _, s := range shapes {
				m, n, kk := s[0], s[1], s[2]
				ar, ac := opDims(ta.IsTrans(), m, kk)
				br, bc := opDims(tb.IsTrans(), kk, n)
				a := fill(rng, ar, ac, ar)
				b := fill(rng, br, bc, br)
				c0 := fill(rng, m, n, m)
				got := append([]float64(nil), c0...)
				want := append([]float64(nil), c0...)
				blas.DgemmKernel(packed, ta, tb, m, n, kk, 1.5, a, ar, b, br, 1, got, m)
				blas.DgemmKernel(legacy, ta, tb, m, n, kk, 1.5, a, ar, b, br, 1, want, m)
				for i := range got {
					if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
						t.Fatalf("ta=%v tb=%v %v: bitwise mismatch at %d: %x vs %x",
							ta, tb, s, i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}
		}
	}
}

// TestLeafWorkspaceExact asserts the closed-form LeafWorkspace bound equals
// the measured arena peak — the property strassen.PlanFor relies on when it
// reports Plan.KernelWords.
func TestLeafWorkspaceExact(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	shapes := [][3]int{{1, 1, 1}, {7, 5, 3}, {64, 64, 64}, {130, 70, 90}, {300, 300, 300}}
	for _, s := range shapes {
		m, n, kk := s[0], s[1], s[2]
		k := &Packed{MC: 32, KC: 24, NC: 40}
		tr := memtrack.New()
		k.SetArena(tr)
		a := fill(rng, m, kk, m)
		b := fill(rng, kk, n, kk)
		c := make([]float64, m*n)
		k.MulAdd(blas.NoTrans, blas.NoTrans, m, n, kk, 1, a, m, b, kk, c, m)
		if got, want := tr.Peak(), k.LeafWorkspace(m, n, kk); got != want {
			t.Errorf("%v: arena peak %d, LeafWorkspace %d", s, got, want)
		}
		if tr.Live() != 0 {
			t.Errorf("%v: %d words leaked", s, tr.Live())
		}
	}
}

// TestZeroAllocSteadyState: after warm-up the arena free list satisfies
// every packing draw, so MulAdd performs no heap allocation.
func TestZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k := &Packed{}
	n := 96
	a := fill(rng, n, n, n)
	b := fill(rng, n, n, n)
	c := make([]float64, n*n)
	k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n) // warm the free list
	avg := testing.AllocsPerRun(10, func() {
		k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n)
	})
	if avg != 0 {
		t.Fatalf("packed MulAdd allocates %.1f objects/op in steady state, want 0", avg)
	}
}

// TestConcurrentMulAdd drives one shared *Packed from several goroutines
// (run under -race in CI): per-call arena draws must make sharing safe.
func TestConcurrentMulAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	k := &Packed{MC: 16, KC: 12, NC: 16}
	oracle := blas.NaiveKernel{}
	const workers = 4
	n := 48
	a := fill(rng, n, n, n)
	b := fill(rng, n, n, n)
	want := make([]float64, n*n)
	blas.DgemmKernel(oracle, blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, 0, want, n)

	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := make([]float64, n*n)
			for iter := 0; iter < 8; iter++ {
				for i := range c {
					c[i] = 0
				}
				k.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, b, n, c, n)
				for i := range c {
					if math.Abs(c[i]-want[i]) > 1e-11 {
						errs[w] = fmt.Errorf("worker %d iter %d: mismatch at %d", w, iter, i)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if live := k.Arena().Live(); live != 0 {
		t.Fatalf("%d words live after concurrent runs", live)
	}
}

// TestCloneIndependence: clones share tuning but own distinct arenas.
func TestCloneIndependence(t *testing.T) {
	k := &Packed{MC: 16, KC: 12, NC: 16, Compat: true}
	ck, ok := k.Clone().(*Packed)
	if !ok {
		t.Fatal("Clone did not return *Packed")
	}
	if ck.MC != k.MC || ck.KC != k.KC || ck.NC != k.NC || ck.Compat != k.Compat {
		t.Fatal("Clone dropped tuning")
	}
	if ck.Arena() == k.Arena() {
		t.Fatal("Clone shares the parent's arena")
	}
}

func TestRegisteredWithBlas(t *testing.T) {
	if blas.KernelByName("packed") == nil {
		t.Fatal(`blas.KernelByName("packed") = nil; init registration missing`)
	}
	// The scalar-pinned kernel owns the "packed" name regardless of host.
	if pk, ok := blas.KernelByName("packed").(*Packed); !ok || pk.ISA() != "scalar" {
		t.Fatalf(`KernelByName("packed") is not the scalar-pinned kernel`)
	}
	names := blas.KernelNames()
	if len(names) == 0 {
		t.Fatal("KernelNames() empty")
	}
	// "simd" registers exactly when dispatch resolves it: the host has the
	// extension AND DGEFMM_KERNEL does not pin another path. Keying on the
	// effective state (not HasSIMD alone) keeps this test meaningful under
	// the CI fallback leg's DGEFMM_KERNEL=packed.
	env := envKernel()
	wantSIMD := HasSIMD() && (env == "" || env == "auto" || env == "simd")
	if wantSIMD {
		// SIMD hosts lead reports with the dispatched kernel.
		if names[0] != "simd" {
			t.Fatalf("KernelNames() = %v, want simd first on a SIMD host", names)
		}
		if blas.KernelByName("simd") == nil {
			t.Fatal(`blas.KernelByName("simd") = nil on a SIMD host`)
		}
	} else {
		if names[0] != "packed" {
			t.Fatalf("KernelNames() = %v, want packed first when dispatching scalar (env=%q)", names, env)
		}
		if blas.KernelByName("simd") != nil {
			t.Fatalf(`blas.KernelByName("simd") registered while dispatch is pinned scalar (env=%q)`, env)
		}
	}
}

func TestDeriveBlocks(t *testing.T) {
	cases := []struct {
		c       Caches
		mc, kc  int
		ncFloor int
	}{
		// Development host: Xeon with 48K L1d, 2M L2, large L3.
		{Caches{L1D: 48 << 10, L2: 2 << 20, L3: 256 << 20}, 256, 256, 4096},
		// Fallback geometry.
		{fallbackCaches, 256, 256, 512},
	}
	for _, tc := range cases {
		mc, kc, nc := DeriveBlocks(tc.c)
		if mc != tc.mc || kc != tc.kc {
			t.Errorf("DeriveBlocks(%+v) = mc=%d kc=%d, want mc=%d kc=%d", tc.c, mc, kc, tc.mc, tc.kc)
		}
		if nc < tc.ncFloor || nc%NR != 0 {
			t.Errorf("DeriveBlocks(%+v) nc=%d, want ≥%d and a multiple of %d", tc.c, nc, tc.ncFloor, NR)
		}
		if mc%MR != 0 {
			t.Errorf("mc=%d not a multiple of MR", mc)
		}
	}
}

func TestParseCacheSize(t *testing.T) {
	cases := map[string]int64{
		"48K": 48 << 10, "2048K": 2048 << 10, "16M": 16 << 20,
		"1G": 1 << 30, "512": 512, "bogus": 0, "": 0,
	}
	for in, want := range cases {
		if got := parseCacheSize(in); got != want {
			t.Errorf("parseCacheSize(%q) = %d, want %d", in, got, want)
		}
	}
}
