package kernel

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
)

// FuzzKernel differential-fuzzes the packed kernel against the naive oracle
// over shape, transposes, scaling, blocking, and matrix content (generated
// from the seed). CI runs a short smoke (-fuzz with a deadline); the nightly
// workflow runs longer sessions.
func FuzzKernel(f *testing.F) {
	f.Add(uint8(1), uint8(1), uint8(1), false, false, 1.0, 1.0, int64(1), uint8(0))
	f.Add(uint8(4), uint8(4), uint8(4), false, false, 1.0, 0.0, int64(2), uint8(1))
	f.Add(uint8(5), uint8(3), uint8(7), true, false, -0.5, 1.0, int64(3), uint8(2))
	f.Add(uint8(9), uint8(9), uint8(9), false, true, 2.0, -1.0, int64(4), uint8(3))
	f.Add(uint8(17), uint8(33), uint8(25), true, true, 1.5, 0.5, int64(5), uint8(0))
	f.Add(uint8(64), uint8(64), uint8(64), false, false, 1.0, 1.0, int64(6), uint8(3))
	f.Add(uint8(31), uint8(1), uint8(63), true, false, 3.0, 0.0, int64(7), uint8(2))

	f.Fuzz(func(t *testing.T, m8, n8, k8 uint8, ta, tb bool, alpha, beta float64, seed int64, blk uint8) {
		m, n, kk := int(m8%80)+1, int(n8%80)+1, int(k8%80)+1
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) || math.IsNaN(beta) || math.IsInf(beta, 0) {
			t.Skip()
		}
		if math.Abs(alpha) > 1e6 || math.Abs(beta) > 1e6 {
			t.Skip()
		}
		// Vary the blocking and dispatch mode so block-boundary logic and
		// the SIMD/scalar tail split are fuzzed too. ModeSIMD degrades to
		// the scalar tile on hosts without a vector unit, so every case is
		// valid everywhere.
		var k *Packed
		switch blk % 6 {
		case 0:
			k = &Packed{} // cache-derived defaults, auto dispatch
		case 1:
			k = &Packed{Compat: true}
		case 2:
			k = &Packed{MC: 2 * MR, KC: 3, NC: 2 * NR}
		case 3:
			k = &Packed{MC: 16, KC: 8, NC: 12}
		case 4:
			k = &Packed{Mode: ModeSIMD}
		default:
			k = &Packed{Mode: ModeScalar, MC: 16, KC: 8, NC: 12}
		}
		transOf := func(tr bool) blas.Transpose {
			if tr {
				return blas.Trans
			}
			return blas.NoTrans
		}
		dims := func(tr bool, r, c int) (int, int) {
			if tr {
				return c, r
			}
			return r, c
		}
		rng := rand.New(rand.NewSource(seed))
		ar, ac := dims(ta, m, kk)
		br, bc := dims(tb, kk, n)
		mk := func(rows, cols int) []float64 {
			v := make([]float64, rows*cols)
			for i := range v {
				v[i] = rng.Float64()*2 - 1
			}
			return v
		}
		a := mk(ar, ac)
		b := mk(br, bc)
		c0 := mk(m, n)
		got := append([]float64(nil), c0...)
		want := append([]float64(nil), c0...)
		blas.DgemmKernel(k, transOf(ta), transOf(tb), m, n, kk, alpha, a, ar, b, br, beta, got, m)
		blas.DgemmKernel(blas.NaiveKernel{}, transOf(ta), transOf(tb), m, n, kk, alpha, a, ar, b, br, beta, want, m)
		scale := math.Abs(alpha)*float64(kk) + math.Abs(beta) + 1
		tol := 1e-13 * scale
		for i := range got {
			if d := math.Abs(got[i] - want[i]); d > tol {
				t.Fatalf("m=%d n=%d k=%d ta=%v tb=%v alpha=%g beta=%g blk=%d: diff %g at %d",
					m, n, kk, ta, tb, alpha, beta, blk%6, d, i)
			}
		}
	})
}
