#include "textflag.h"

// func microTile8x4AVX2(kb int, alpha float64, ap, bp, c *float64, ldc int)
//
// C[0:8, 0:4] += alpha · Ã·B̃ over a kb-deep packed micro-panel pair.
// Ã is packed in 8-row micro-panels (element (i, l) at ap[l*8+i]), B̃ in
// 4-column micro-panels (element (l, j) at bp[l*4+j]); C is column-major
// with leading dimension ldc (in elements).
//
// Register plan: column j of the tile lives in Y(2j) (rows 0–3) and
// Y(2j+1) (rows 4–7) — eight YMM accumulators that stay live across the
// whole k loop. Each k step loads the 8-row Ã column into two YMM
// registers, broadcasts the four B̃ elements, and issues 8 VFMADD231PD:
// every C element is one FMA chain in strictly increasing k, the same
// association as the scalar tile, so SIMD-vs-scalar differences come only
// from FMA contraction (no intermediate product rounding).
//
// The k loop is unrolled by two with a second pair of Ã registers
// (Y12/Y13) so the loads of step l+1 overlap the FMAs of step l.
TEXT ·microTile8x4AVX2(SB), NOSPLIT, $0-48
	MOVQ kb+0(FP), CX
	MOVQ ap+16(FP), SI
	MOVQ bp+24(FP), BX
	MOVQ c+32(FP), DI
	MOVQ ldc+40(FP), DX
	SHLQ $3, DX              // ldc in bytes

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, AX
	SHRQ $1, AX
	JZ   tail

loop2:
	// k step l
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (BX), Y10
	VBROADCASTSD 8(BX), Y11
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VBROADCASTSD 16(BX), Y10
	VBROADCASTSD 24(BX), Y11
	VFMADD231PD  Y10, Y8, Y4
	VFMADD231PD  Y10, Y9, Y5
	VFMADD231PD  Y11, Y8, Y6
	VFMADD231PD  Y11, Y9, Y7

	// k step l+1
	VMOVUPD      64(SI), Y12
	VMOVUPD      96(SI), Y13
	VBROADCASTSD 32(BX), Y10
	VBROADCASTSD 40(BX), Y11
	VFMADD231PD  Y10, Y12, Y0
	VFMADD231PD  Y10, Y13, Y1
	VFMADD231PD  Y11, Y12, Y2
	VFMADD231PD  Y11, Y13, Y3
	VBROADCASTSD 48(BX), Y10
	VBROADCASTSD 56(BX), Y11
	VFMADD231PD  Y10, Y12, Y4
	VFMADD231PD  Y10, Y13, Y5
	VFMADD231PD  Y11, Y12, Y6
	VFMADD231PD  Y11, Y13, Y7

	ADDQ $128, SI
	ADDQ $64, BX
	DECQ AX
	JNZ  loop2

tail:
	TESTQ $1, CX
	JZ    scatter

	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (BX), Y10
	VBROADCASTSD 8(BX), Y11
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VBROADCASTSD 16(BX), Y10
	VBROADCASTSD 24(BX), Y11
	VFMADD231PD  Y10, Y8, Y4
	VFMADD231PD  Y10, Y9, Y5
	VFMADD231PD  Y11, Y8, Y6
	VFMADD231PD  Y11, Y9, Y7

scatter:
	// C[:, j] += alpha · acc_j. With alpha == 1 the FMA is exactly c + acc,
	// so one path serves both cases.
	VBROADCASTSD alpha+8(FP), Y14

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y0, Y8
	VFMADD231PD Y14, Y1, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y2, Y8
	VFMADD231PD Y14, Y3, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y4, Y8
	VFMADD231PD Y14, Y5, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y6, Y8
	VFMADD231PD Y14, Y7, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)

	VZEROUPPER
	RET

// func microTile8x4AVX2Dual(kb int, alpha0, alpha1 float64, ap, bp, c0 *float64, ldc0 int, c1 *float64, ldc1 int)
//
// The fused Winograd write-out tile: the same 8×4 product accumulation as
// microTile8x4AVX2, scattered into two destinations with independent
// scalars — C0[:, j] += alpha0·acc_j, then C1[:, j] += alpha1·acc_j. The
// accumulators Y0–Y7 survive the first scatter (it works in Y8/Y9 only),
// so the product is computed once and written twice; with alpha ±1 each
// FMA write-out is a single rounding, identical to the single-destination
// scatter at that alpha.
TEXT ·microTile8x4AVX2Dual(SB), NOSPLIT, $0-72
	MOVQ kb+0(FP), CX
	MOVQ ap+24(FP), SI
	MOVQ bp+32(FP), BX

	VXORPD Y0, Y0, Y0
	VXORPD Y1, Y1, Y1
	VXORPD Y2, Y2, Y2
	VXORPD Y3, Y3, Y3
	VXORPD Y4, Y4, Y4
	VXORPD Y5, Y5, Y5
	VXORPD Y6, Y6, Y6
	VXORPD Y7, Y7, Y7

	MOVQ CX, AX
	SHRQ $1, AX
	JZ   dtail

dloop2:
	// k step l
	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (BX), Y10
	VBROADCASTSD 8(BX), Y11
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VBROADCASTSD 16(BX), Y10
	VBROADCASTSD 24(BX), Y11
	VFMADD231PD  Y10, Y8, Y4
	VFMADD231PD  Y10, Y9, Y5
	VFMADD231PD  Y11, Y8, Y6
	VFMADD231PD  Y11, Y9, Y7

	// k step l+1
	VMOVUPD      64(SI), Y12
	VMOVUPD      96(SI), Y13
	VBROADCASTSD 32(BX), Y10
	VBROADCASTSD 40(BX), Y11
	VFMADD231PD  Y10, Y12, Y0
	VFMADD231PD  Y10, Y13, Y1
	VFMADD231PD  Y11, Y12, Y2
	VFMADD231PD  Y11, Y13, Y3
	VBROADCASTSD 48(BX), Y10
	VBROADCASTSD 56(BX), Y11
	VFMADD231PD  Y10, Y12, Y4
	VFMADD231PD  Y10, Y13, Y5
	VFMADD231PD  Y11, Y12, Y6
	VFMADD231PD  Y11, Y13, Y7

	ADDQ $128, SI
	ADDQ $64, BX
	DECQ AX
	JNZ  dloop2

dtail:
	TESTQ $1, CX
	JZ    dscatter

	VMOVUPD      (SI), Y8
	VMOVUPD      32(SI), Y9
	VBROADCASTSD (BX), Y10
	VBROADCASTSD 8(BX), Y11
	VFMADD231PD  Y10, Y8, Y0
	VFMADD231PD  Y10, Y9, Y1
	VFMADD231PD  Y11, Y8, Y2
	VFMADD231PD  Y11, Y9, Y3
	VBROADCASTSD 16(BX), Y10
	VBROADCASTSD 24(BX), Y11
	VFMADD231PD  Y10, Y8, Y4
	VFMADD231PD  Y10, Y9, Y5
	VFMADD231PD  Y11, Y8, Y6
	VFMADD231PD  Y11, Y9, Y7

dscatter:
	// First destination: C0[:, j] += alpha0 · acc_j.
	VBROADCASTSD alpha0+8(FP), Y14
	MOVQ         c0+40(FP), DI
	MOVQ         ldc0+48(FP), DX
	SHLQ         $3, DX

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y0, Y8
	VFMADD231PD Y14, Y1, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y2, Y8
	VFMADD231PD Y14, Y3, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y4, Y8
	VFMADD231PD Y14, Y5, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y6, Y8
	VFMADD231PD Y14, Y7, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)

	// Second destination: C1[:, j] += alpha1 · acc_j.
	VBROADCASTSD alpha1+16(FP), Y14
	MOVQ         c1+56(FP), DI
	MOVQ         ldc1+64(FP), DX
	SHLQ         $3, DX

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y0, Y8
	VFMADD231PD Y14, Y1, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y2, Y8
	VFMADD231PD Y14, Y3, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y4, Y8
	VFMADD231PD Y14, Y5, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)
	ADDQ        DX, DI

	VMOVUPD     (DI), Y8
	VMOVUPD     32(DI), Y9
	VFMADD231PD Y14, Y6, Y8
	VFMADD231PD Y14, Y7, Y9
	VMOVUPD     Y8, (DI)
	VMOVUPD     Y9, 32(DI)

	VZEROUPPER
	RET
