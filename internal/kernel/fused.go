package kernel

// Operand-fused packing and multi-destination write-out: the kernel-side
// half of the fused Winograd path (Huang et al., "Implementing Strassen's
// Algorithm with BLIS", arXiv:1605.01078). A Strassen level's add/sub
// linear combinations are folded into the two places the operands are
// touched anyway — Ã/B̃ packing reads and the micro-kernel's C update — so
// each level costs almost no extra memory traffic instead of a full set of
// materialized S/T/M temporaries.
//
// FusedMulAdd runs the exact NC/KC/MC loop nest of MulAdd over the same
// arena-drawn packed panels (LeafWorkspace is unchanged), but:
//
//   - the packers form Ã ← Σᵢ γᵢ·op(Aᵢ) (and B̃ likewise) on the fly from
//     up to four strided source panels sharing one leading dimension and
//     transpose — the quadrants of a common parent matrix;
//   - the write-out accumulates each computed product panel into every
//     destination with its own ±1 coefficient (times the call's alpha).
//     One destination degenerates to the unfused sweep; two full SIMD
//     tiles use the dual-scatter assembly tile when the ISA provides one;
//     everything else captures the tile product exactly in a register-tile
//     buffer and scatters it scalar per destination.
//
// Bitwise contract: coefficients are ±1 in the Strassen tables, and both
// negation and ±1 multiplication are exact in IEEE-754, so a fused pack
// produces bit-for-bit the panel an unfused add/sub-then-pack would, with
// one rounding per added term in term order; and the tile-buffer capture
// (zeroed buffer, alpha = 1) holds the accumulator exactly, so the scalar
// multi-destination scatter rounds exactly like a direct single-destination
// write-out at alpha·coeff. A Compat instance therefore matches the
// unfused Compat kernel bit for bit per destination (see fused_test.go);
// the SIMD tile differs only by its usual FMA contraction.

import (
	"time"

	"repro/internal/phase"
)

// Term is one source panel of a fused operand: a matrix (sharing the
// enclosing Operand's leading dimension and transpose) and its ±1
// combination coefficient. Coefficients other than ±1 are computed
// correctly but void the bitwise-equality contract (they round once per
// term where a pre-materialized combination may round differently).
type Term struct {
	Data  []float64
	Coeff float64
}

// Operand is a fused input: the linear combination Σᵢ Coeffᵢ·op(Termᵢ) of
// 1–4 equally-shaped panels, all stored with leading dimension Ld and the
// same transpose. The Strassen quadrants of one parent matrix satisfy this
// by construction.
type Operand struct {
	Terms []Term
	Ld    int
	Trans bool
}

// Dest is one write-out destination: a column-major C panel with leading
// dimension Ld receiving Coeff·(product panel), Coeff again ±1 under the
// bitwise contract.
type Dest struct {
	Data  []float64
	Ld    int
	Coeff float64
}

// FusedCounters reports how many FusedMulAdd calls the kernel has served.
// Packed words from fused calls fold into the regular packing counters.
func (k *Packed) FusedCounters() (fusedMulAdds int64) {
	return k.fusedMulAdds.Load()
}

// FusedDestLimit reports how many destinations FusedMulAdd accumulates
// without leaving the active tile's native write-out. The SIMD tile
// scatters one or two destinations in assembly (single and dual scatter)
// but spills full tiles to a buffered scalar scatter beyond that, so its
// limit is 2; the scalar tile pays the same per-element loop for any
// count, so its limit is the table maximum (4, a two-level Strassen
// composition). The fused Strassen driver consults this to decide how
// many trailing levels to fuse: a record fan-out past the limit costs
// more in write-out than the fusion saves in adds.
func (k *Packed) FusedDestLimit() int {
	if k.impl().dual != nil {
		return 2
	}
	return 4
}

// FusedMulAdd computes, for every destination d,
//
//	d.Data ← d.Data + alpha·d.Coeff·(Σᵢ γᵢ·op(Aᵢ))·(Σⱼ δⱼ·op(Bⱼ))
//
// where the fused operand is m×k (a) and k×n (b). The caller pre-applies
// beta; write-out is pure accumulation. The combination runs inside the
// packing and the C update — no operand or product temporaries beyond the
// same two packed panels MulAdd draws (LeafWorkspace is unchanged).
func (k *Packed) FusedMulAdd(m, n, kk int, alpha float64, a, b Operand, dests []Dest) {
	if m <= 0 || n <= 0 || kk <= 0 || alpha == 0 ||
		len(a.Terms) == 0 || len(b.Terms) == 0 || len(dests) == 0 {
		return
	}
	mi := k.impl()
	mcE, kcE, ncE := k.effBlocks(mi, m, n, kk)
	ar := k.Arena()
	apack := ar.AllocUninit(mcE * kcE)
	bpack := ar.AllocUninit(kcE * ncE)

	prof := phase.Active()
	var acct fusedAcct

	var packedA, packedB int64
	var fullTiles, edgeTiles int64
	var t0 time.Time
	for jc := 0; jc < n; jc += ncE {
		nb := n - jc
		if nb > ncE {
			nb = ncE
		}
		for pc := 0; pc < kk; pc += kcE {
			kb := kk - pc
			if kb > kcE {
				kb = kcE
			}
			if prof != nil {
				t0 = time.Now()
			}
			packBFused(mi.nr, bpack, b, pc, jc, kb, nb)
			if prof != nil {
				acct.packNS += int64(time.Since(t0))
			}
			packedB += int64(kb) * int64(nb)
			for ic := 0; ic < m; ic += mcE {
				mb := m - ic
				if mb > mcE {
					mb = mcE
				}
				if prof != nil {
					t0 = time.Now()
				}
				packAFused(mi.mr, apack, a, ic, pc, mb, kb)
				if prof != nil {
					acct.packNS += int64(time.Since(t0))
					t0 = time.Now()
				}
				packedA += int64(mb) * int64(kb)
				ft, et := macroKernelFused(mi, apack, bpack, dests, ic, jc, mb, nb, kb, alpha)
				if prof != nil {
					acct.macro(mi, int64(time.Since(t0)), mb, nb, kb, ft, et, len(dests))
				}
				fullTiles += ft
				edgeTiles += et
			}
		}
	}
	ar.Free(bpack)
	ar.Free(apack)
	if prof != nil {
		acct.flush(prof, len(a.Terms), len(b.Terms), packedA, packedB)
	}
	k.fusedMulAdds.Add(1)
	k.packAWords.Add(packedA)
	k.packBWords.Add(packedB)
	if mi.isa != "scalar" {
		k.simdTiles.Add(fullTiles)
		k.scalarTiles.Add(edgeTiles)
	} else {
		k.scalarTiles.Add(fullTiles + edgeTiles)
	}
}

// packAFused packs the mb×kb block with top-left (ic, pc) of the fused
// operand Σᵢ γᵢ·op(Aᵢ) into dst as mr-row micro-panels: packA generalized
// to combine the term panels element-wise during the copy. Term 0 assigns
// (scaled), later terms accumulate in order, so the combination rounds once
// per added term exactly like a separate add/sub pass would.
func packAFused(mr int, dst []float64, op Operand, ic, pc, mb, kb int) {
	if len(op.Terms) == 1 && op.Terms[0].Coeff == 1 {
		packA(mr, dst, op.Terms[0].Data, op.Ld, op.Trans, ic, pc, mb, kb)
		return
	}
	if mr < 1 || kb < 1 {
		return
	}
	lda := op.Ld
	for ip := 0; ip < mb; ip += mr {
		rows := mb - ip
		if rows > mr {
			rows = mr
		}
		base := (ip / mr) * (mr * kb)
		if !op.Trans {
			// op(A)(i, l) = A(ic+i, pc+l): column l contiguous in every term.
			for l := 0; l < kb; l++ {
				off := (pc+l)*lda + ic + ip
				d := dst[base+l*mr : base+l*mr+mr : base+l*mr+mr]
				if len(op.Terms) == 2 {
					x := op.Terms[0].Data[off : off+rows]
					y := op.Terms[1].Data[off : off+rows]
					g0, g1 := op.Terms[0].Coeff, op.Terms[1].Coeff
					for r := 0; r < rows; r++ {
						d[r] = g0*x[r] + g1*y[r]
					}
				} else {
					t0 := op.Terms[0]
					x := t0.Data[off : off+rows]
					for r := 0; r < rows; r++ {
						d[r] = t0.Coeff * x[r]
					}
					for _, t := range op.Terms[1:] {
						x := t.Data[off : off+rows]
						for r := 0; r < rows; r++ {
							d[r] += t.Coeff * x[r]
						}
					}
				}
				clear(d[rows:])
			}
			continue
		}
		// op(A)(i, l) = A(pc+l, ic+i): row r of the block is a contiguous
		// run of each term's storage; strided stores advance by mr. The
		// panel buffer is mcE×kcE with mcE rounded up to whole mr-row
		// panels (effBlocks), so d[l·mr] stays in bounds; the two-term
		// fast path combines in one strided pass (see packBFused).
		for r := 0; r < rows; r++ {
			row := (ic+ip+r)*lda + pc
			d := dst[base+r:]
			if len(op.Terms) == 2 {
				x := op.Terms[0].Data[row : row+kb]
				y := op.Terms[1].Data[row : row+kb]
				g0, g1 := op.Terms[0].Coeff, op.Terms[1].Coeff
				for l := 0; l < kb; l++ {
					d[l*mr] = g0*x[l] + g1*y[l]
				}
				continue
			}
			t0 := op.Terms[0]
			x := t0.Data[row : row+kb]
			for l := 0; l < kb; l++ {
				d[l*mr] = t0.Coeff * x[l]
			}
			for _, t := range op.Terms[1:] {
				x := t.Data[row : row+kb]
				g := t.Coeff
				for l := 0; l < kb; l++ {
					d[l*mr] += g * x[l]
				}
			}
		}
		for r := rows; r < mr; r++ {
			d := dst[base+r:]
			for n := kb; n > 1 && len(d) >= mr; n-- {
				d[0] = 0
				d = d[mr:]
			}
			if len(d) > 0 {
				d[0] = 0
			}
		}
	}
}

// packBFused packs the kb×nb block with top-left (pc, jc) of the fused
// operand Σⱼ δⱼ·op(Bⱼ) into dst as nr-column micro-panels; the fused
// counterpart of packB with the same term-order rounding as packAFused.
func packBFused(nr int, dst []float64, op Operand, pc, jc, kb, nb int) {
	if len(op.Terms) == 1 && op.Terms[0].Coeff == 1 {
		packB(nr, dst, op.Terms[0].Data, op.Ld, op.Trans, pc, jc, kb, nb)
		return
	}
	if nr < 1 || kb < 1 {
		return
	}
	ldb := op.Ld
	for jp := 0; jp < nb; jp += nr {
		cols := nb - jp
		if cols > nr {
			cols = nr
		}
		base := (jp / nr) * (nr * kb)
		if !op.Trans {
			// op(B)(l, j) = B(pc+l, jc+j): column j of the block is a
			// contiguous run of each term's storage column jc+j. The panel
			// buffer is allocated at ncE×kcE with ncE rounded up to whole
			// nr-wide panels (effBlocks), so the strided stores d[l·nr] are
			// in bounds even for the last ragged panel. The two-term fast
			// path makes one combined pass over the strided destination
			// where assign-then-accumulate would make two (the pack is
			// bandwidth-bound — see the fused_pack phase in obsreport).
			for s := 0; s < cols; s++ {
				col := (jc+jp+s)*ldb + pc
				d := dst[base+s:]
				if len(op.Terms) == 2 {
					x := op.Terms[0].Data[col : col+kb]
					y := op.Terms[1].Data[col : col+kb]
					g0, g1 := op.Terms[0].Coeff, op.Terms[1].Coeff
					for l := 0; l < kb; l++ {
						d[l*nr] = g0*x[l] + g1*y[l]
					}
					continue
				}
				t0 := op.Terms[0]
				x := t0.Data[col : col+kb]
				for l := 0; l < kb; l++ {
					d[l*nr] = t0.Coeff * x[l]
				}
				for _, t := range op.Terms[1:] {
					x := t.Data[col : col+kb]
					g := t.Coeff
					for l := 0; l < kb; l++ {
						d[l*nr] += g * x[l]
					}
				}
			}
			for s := cols; s < nr; s++ {
				d := dst[base+s:]
				for n := kb; n > 1 && len(d) >= nr; n-- {
					d[0] = 0
					d = d[nr:]
				}
				if len(d) > 0 {
					d[0] = 0
				}
			}
			continue
		}
		// op(B)(l, j) = B(jc+j, pc+l): row l of the block contiguous.
		for l := 0; l < kb; l++ {
			off := (pc+l)*ldb + jc + jp
			d := dst[base+l*nr : base+l*nr+nr : base+l*nr+nr]
			if len(op.Terms) == 2 {
				x := op.Terms[0].Data[off : off+cols]
				y := op.Terms[1].Data[off : off+cols]
				g0, g1 := op.Terms[0].Coeff, op.Terms[1].Coeff
				for s := 0; s < cols; s++ {
					d[s] = g0*x[s] + g1*y[s]
				}
			} else {
				t0 := op.Terms[0]
				x := t0.Data[off : off+cols]
				for s := 0; s < cols; s++ {
					d[s] = t0.Coeff * x[s]
				}
				for _, t := range op.Terms[1:] {
					x := t.Data[off : off+cols]
					for s := 0; s < cols; s++ {
						d[s] += t.Coeff * x[s]
					}
				}
			}
			clear(d[cols:])
		}
	}
}

// macroKernelFused sweeps the packed panels once and accumulates every
// register tile into all destinations. One destination is the unfused
// sweep at alpha·coeff; two destinations on a full tile use the ISA's
// dual-scatter tile when present; otherwise the tile product is captured
// exactly (zeroed buffer, alpha = 1 — adding an accumulator to zero is
// exact) and scattered scalar per destination, which preserves the
// single-destination rounding per destination.
func macroKernelFused(mi *microImpl, apack, bpack []float64, dests []Dest, ic, jc, mb, nb, kb int, alpha float64) (fullTiles, edgeTiles int64) {
	if len(dests) == 1 {
		d := dests[0]
		return macroKernel(mi, apack, bpack, d.Data, d.Ld, ic, jc, mb, nb, kb, alpha*d.Coeff)
	}
	mr, nr := mi.mr, mi.nr
	var buf [SIMDTileMR * SIMDTileNR]float64
	for jp := 0; jp < nb; jp += nr {
		cols := nb - jp
		if cols > nr {
			cols = nr
		}
		bp := bpack[(jp/nr)*(nr*kb):]
		for ip := 0; ip < mb; ip += mr {
			rows := mb - ip
			if rows > mr {
				rows = mr
			}
			ap := apack[(ip/mr)*(mr*kb):]
			full := rows == mr && cols == nr
			if full && len(dests) == 2 && mi.dual != nil {
				d0, d1 := dests[0], dests[1]
				c0 := d0.Data[(jc+jp)*d0.Ld+ic+ip:]
				c1 := d1.Data[(jc+jp)*d1.Ld+ic+ip:]
				mi.dual(ap, bp, c0, d0.Ld, c1, d1.Ld, kb, alpha*d0.Coeff, alpha*d1.Coeff)
				fullTiles++
				continue
			}
			clear(buf[:mr*nr])
			if full {
				mi.full(ap, bp, buf[:], mr, kb, 1)
				fullTiles++
			} else {
				mi.edge(ap, bp, buf[:], mr, rows, cols, kb, 1)
				edgeTiles++
			}
			for _, d := range dests {
				ad := alpha * d.Coeff
				cd := d.Data[(jc+jp)*d.Ld+ic+ip:]
				for s := 0; s < cols; s++ {
					col := cd[s*d.Ld : s*d.Ld+rows : s*d.Ld+rows]
					acc := buf[s*mr : s*mr+rows]
					for r := range col {
						col[r] += ad * acc[r]
					}
				}
			}
		}
	}
	return fullTiles, edgeTiles
}

// fusedAcct is phaseAcct's counterpart for FusedMulAdd: fused packing
// replaces the pack_a/pack_b phases, the sweep still splits micro/fringe
// by FLOP share, and the extra destinations' accumulation traffic is
// carved out into the fused write-out phase (so KernelMicro stays
// comparable to the unfused kernel's).
type fusedAcct struct {
	packNS                  int64
	microNS, fringeNS       int64
	microFlops, fringeFlops int64
	microBytes, fringeBytes int64
	writeNS                 int64
	writeFlops, writeBytes  int64
}

// macro folds one fused sweep over an mb×nb×kb block with nd destinations.
func (a *fusedAcct) macro(mi *microImpl, ns int64, mb, nb, kb int, ft, et int64, nd int) {
	total := 2 * int64(mb) * int64(nb) * int64(kb)
	full := ft * 2 * int64(mi.mr) * int64(mi.nr) * int64(kb)
	edge := total - full
	tileBytes := 8 * (int64(mi.mr)*int64(kb) + int64(mi.nr)*int64(kb) + 2*int64(mi.mr)*int64(mi.nr))
	if nd > 1 {
		// Each extra destination costs one multiply-add per product element
		// per sweep and one C read+write (16 bytes) per element; its time
		// share is apportioned by FLOPs like the micro/fringe split.
		e := int64(nd - 1)
		wFlops := e * 2 * int64(mb) * int64(nb)
		wBytes := e * 16 * int64(mb) * int64(nb)
		wNS := ns * wFlops / (total + wFlops)
		a.writeFlops += wFlops
		a.writeBytes += wBytes
		a.writeNS += wNS
		ns -= wNS
	}
	a.microFlops += full
	a.fringeFlops += edge
	a.microBytes += ft * tileBytes
	a.fringeBytes += et * tileBytes
	if edge <= 0 || total <= 0 {
		a.microNS += ns
		return
	}
	mNS := ns * full / total
	a.microNS += mNS
	a.fringeNS += ns - mNS
}

// flush records the call's totals. Fused packing reads every term once and
// writes the packed word ((terms+1)·8 bytes per word) and performs
// (terms−1) adds per word.
func (a *fusedAcct) flush(p *phase.Profiler, aTerms, bTerms int, packedA, packedB int64) {
	flops := int64(aTerms-1)*packedA + int64(bTerms-1)*packedB
	bytes := int64(aTerms+1)*8*packedA + int64(bTerms+1)*8*packedB
	p.Add(phase.KernelFusedPack, a.packNS, flops, bytes)
	p.Add(phase.KernelMicro, a.microNS, a.microFlops, a.microBytes)
	if a.fringeFlops > 0 || a.fringeNS > 0 {
		p.Add(phase.KernelFringe, a.fringeNS, a.fringeFlops, a.fringeBytes)
	}
	if a.writeFlops > 0 || a.writeNS > 0 {
		p.Add(phase.KernelFusedWriteout, a.writeNS, a.writeFlops, a.writeBytes)
	}
}
