#include "textflag.h"

// func microTile8x4NEON(kb int, alpha float64, ap, bp, c *float64, ldc int)
//
// C[0:8, 0:4] += alpha · Ã·B̃ over a kb-deep packed micro-panel pair; the
// packed layouts and semantics match microTile8x4AVX2 (micro_amd64.s).
//
// Register plan: column j of the tile lives in V(4j)..V(4j+3), two
// float64 lanes each — sixteen 128-bit accumulators. Each k step loads
// the 8-row Ã column into V16–V19 and the four B̃ elements into V20/V21,
// duplicates each B̃ element across a vector (V22–V25), and issues 16
// FMLA: every C element is a single FMA chain in increasing k, matching
// the scalar tile's association with FMA contraction as the only
// difference.
TEXT ·microTile8x4NEON(SB), NOSPLIT, $0-48
	MOVD kb+0(FP), R0
	MOVD ap+16(FP), R1
	MOVD bp+24(FP), R2
	MOVD c+32(FP), R3
	MOVD ldc+40(FP), R4
	LSL  $3, R4              // ldc in bytes

	VEOR V0.B16, V0.B16, V0.B16
	VEOR V1.B16, V1.B16, V1.B16
	VEOR V2.B16, V2.B16, V2.B16
	VEOR V3.B16, V3.B16, V3.B16
	VEOR V4.B16, V4.B16, V4.B16
	VEOR V5.B16, V5.B16, V5.B16
	VEOR V6.B16, V6.B16, V6.B16
	VEOR V7.B16, V7.B16, V7.B16
	VEOR V8.B16, V8.B16, V8.B16
	VEOR V9.B16, V9.B16, V9.B16
	VEOR V10.B16, V10.B16, V10.B16
	VEOR V11.B16, V11.B16, V11.B16
	VEOR V12.B16, V12.B16, V12.B16
	VEOR V13.B16, V13.B16, V13.B16
	VEOR V14.B16, V14.B16, V14.B16
	VEOR V15.B16, V15.B16, V15.B16

	CBZ R0, scatter

loop:
	VLD1.P 64(R1), [V16.D2, V17.D2, V18.D2, V19.D2]
	VLD1.P 32(R2), [V20.D2, V21.D2]

	VDUP V20.D[0], V22.D2
	VDUP V20.D[1], V23.D2
	VDUP V21.D[0], V24.D2
	VDUP V21.D[1], V25.D2

	VFMLA V22.D2, V16.D2, V0.D2
	VFMLA V22.D2, V17.D2, V1.D2
	VFMLA V22.D2, V18.D2, V2.D2
	VFMLA V22.D2, V19.D2, V3.D2
	VFMLA V23.D2, V16.D2, V4.D2
	VFMLA V23.D2, V17.D2, V5.D2
	VFMLA V23.D2, V18.D2, V6.D2
	VFMLA V23.D2, V19.D2, V7.D2
	VFMLA V24.D2, V16.D2, V8.D2
	VFMLA V24.D2, V17.D2, V9.D2
	VFMLA V24.D2, V18.D2, V10.D2
	VFMLA V24.D2, V19.D2, V11.D2
	VFMLA V25.D2, V16.D2, V12.D2
	VFMLA V25.D2, V17.D2, V13.D2
	VFMLA V25.D2, V18.D2, V14.D2
	VFMLA V25.D2, V19.D2, V15.D2

	SUBS $1, R0, R0
	BNE  loop

scatter:
	// C[:, j] += alpha · acc_j (FMA; exact for alpha == 1).
	FMOVD alpha+8(FP), F26
	VDUP  V26.D[0], V26.D2

	VLD1  (R3), [V16.D2, V17.D2, V18.D2, V19.D2]
	VFMLA V26.D2, V0.D2, V16.D2
	VFMLA V26.D2, V1.D2, V17.D2
	VFMLA V26.D2, V2.D2, V18.D2
	VFMLA V26.D2, V3.D2, V19.D2
	VST1  [V16.D2, V17.D2, V18.D2, V19.D2], (R3)
	ADD   R4, R3

	VLD1  (R3), [V16.D2, V17.D2, V18.D2, V19.D2]
	VFMLA V26.D2, V4.D2, V16.D2
	VFMLA V26.D2, V5.D2, V17.D2
	VFMLA V26.D2, V6.D2, V18.D2
	VFMLA V26.D2, V7.D2, V19.D2
	VST1  [V16.D2, V17.D2, V18.D2, V19.D2], (R3)
	ADD   R4, R3

	VLD1  (R3), [V16.D2, V17.D2, V18.D2, V19.D2]
	VFMLA V26.D2, V8.D2, V16.D2
	VFMLA V26.D2, V9.D2, V17.D2
	VFMLA V26.D2, V10.D2, V18.D2
	VFMLA V26.D2, V11.D2, V19.D2
	VST1  [V16.D2, V17.D2, V18.D2, V19.D2], (R3)
	ADD   R4, R3

	VLD1  (R3), [V16.D2, V17.D2, V18.D2, V19.D2]
	VFMLA V26.D2, V12.D2, V16.D2
	VFMLA V26.D2, V13.D2, V17.D2
	VFMLA V26.D2, V14.D2, V18.D2
	VFMLA V26.D2, V15.D2, V19.D2
	VST1  [V16.D2, V17.D2, V18.D2, V19.D2], (R3)

	RET
