package kernel

// AVX2+FMA 8×4 micro-kernel glue. The assembly routine (micro_amd64.s)
// computes full register tiles only; ragged edges fall back to the
// generic scalar tail over the same packed layout.

//go:noescape
func microTile8x4AVX2(kb int, alpha float64, ap, bp, c *float64, ldc int)

//go:noescape
func microTile8x4AVX2Dual(kb int, alpha0, alpha1 float64, ap, bp, c0 *float64, ldc0 int, c1 *float64, ldc1 int)

// avx2Full adapts the assembly tile to the microImpl signature. The slice
// prefix re-slicings compile to bounds checks that document (and enforce)
// the contract the macro kernel already guarantees.
func avx2Full(ap, bp, c []float64, ldc, kb int, alpha float64) {
	if kb <= 0 {
		return
	}
	ap = ap[:SIMDTileMR*kb]
	bp = bp[:SIMDTileNR*kb]
	c = c[:3*ldc+SIMDTileMR]
	microTile8x4AVX2(kb, alpha, &ap[0], &bp[0], &c[0], ldc)
}

// avx2Dual adapts the dual-destination assembly tile (the fused Winograd
// two-quadrant write-out) the same way.
func avx2Dual(ap, bp, c0 []float64, ldc0 int, c1 []float64, ldc1 int, kb int, alpha0, alpha1 float64) {
	if kb <= 0 {
		return
	}
	ap = ap[:SIMDTileMR*kb]
	bp = bp[:SIMDTileNR*kb]
	c0 = c0[:3*ldc0+SIMDTileMR]
	c1 = c1[:3*ldc1+SIMDTileMR]
	microTile8x4AVX2Dual(kb, alpha0, alpha1, &ap[0], &bp[0], &c0[0], ldc0, &c1[0], ldc1)
}

// newSIMDImpl probes the CPU and returns the AVX2+FMA tile, or nil when
// the host (or its OS) cannot run it.
func newSIMDImpl() *microImpl {
	if !detectSIMD() {
		return nil
	}
	return &microImpl{
		mr:   SIMDTileMR,
		nr:   SIMDTileNR,
		isa:  "avx2+fma",
		full: avx2Full,
		edge: microTileEdge8x4,
		dual: avx2Dual,
	}
}
