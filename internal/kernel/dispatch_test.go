package kernel

import (
	"testing"

	"repro/internal/blas"
)

func TestNormalizeEnvKernel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"auto", "auto"},
		{"AUTO", "auto"},
		{"simd", "simd"},
		{" Simd ", "simd"},
		{"packed", "packed"},
		{"blocked", "blocked"},
		{"avx512", ""}, // unknown values warn once and act as unset
		{"scalar", ""},
	}
	for _, c := range cases {
		if got := normalizeEnvKernel(c.in); got != c.want {
			t.Errorf("normalizeEnvKernel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestImplFor pins the dispatch matrix: Compat and ModeScalar always pin
// the scalar tile; the env override only steers ModeAuto; ModeSIMD asks
// for SIMD but degrades to scalar when the host has none.
func TestImplFor(t *testing.T) {
	wantSIMD := func(mi *microImpl) bool { return mi.isa != "scalar" }
	cases := []struct {
		name   string
		k      *Packed
		env    string
		simdOK bool // expected only when the host has a SIMD impl
	}{
		{"auto default", &Packed{}, "", true},
		{"auto explicit", &Packed{}, "auto", true},
		{"auto env simd", &Packed{}, "simd", true},
		{"auto env packed", &Packed{}, "packed", false},
		{"auto env blocked", &Packed{}, "blocked", false},
		{"mode scalar ignores env", &Packed{Mode: ModeScalar}, "simd", false},
		{"mode simd ignores env", &Packed{Mode: ModeSIMD}, "packed", true},
		{"compat wins over mode", &Packed{Compat: true, Mode: ModeSIMD}, "simd", false},
		{"compat default", &Packed{Compat: true}, "", false},
	}
	for _, c := range cases {
		mi := c.k.implFor(c.env)
		if mi == nil {
			t.Fatalf("%s: implFor returned nil", c.name)
		}
		want := c.simdOK && HasSIMD()
		if got := wantSIMD(mi); got != want {
			t.Errorf("%s: implFor(%q) ISA %q, want simd=%v (host simd=%v)",
				c.name, c.env, mi.isa, want, HasSIMD())
		}
		if mi.full == nil || mi.edge == nil || mi.mr <= 0 || mi.nr <= 0 {
			t.Errorf("%s: incomplete microImpl %+v", c.name, mi)
		}
	}
}

// TestDefaultFor checks the process-wide kernel choice for each
// DGEFMM_KERNEL value.
func TestDefaultFor(t *testing.T) {
	if k := defaultFor("packed"); k != blas.Kernel(defaultScalar) {
		t.Errorf("defaultFor(packed) = %v, want the scalar-pinned instance", k.Name())
	}
	if k := defaultFor("simd"); k != blas.Kernel(defaultSIMD) {
		t.Errorf("defaultFor(simd) = %v, want the SIMD-pinned instance", k.Name())
	}
	if k := defaultFor("blocked"); k == nil || k.Name() != "blocked" {
		t.Errorf("defaultFor(blocked) = %v, want the legacy blocked kernel", k)
	}
	for _, env := range []string{"", "auto"} {
		if k := defaultFor(env); k != blas.Kernel(defaultPacked) {
			t.Errorf("defaultFor(%q) = %v, want the auto packed instance", env, k.Name())
		}
	}
}

// TestNameTracksDispatch: the kernel's registry name reflects what it will
// actually run, so τ-parameter lookup and obs snapshots never misreport a
// fallback host as SIMD.
func TestNameTracksDispatch(t *testing.T) {
	scalar := &Packed{Mode: ModeScalar}
	if scalar.Name() != "packed" || scalar.ISA() != "scalar" {
		t.Errorf("scalar-pinned kernel: Name=%q ISA=%q, want packed/scalar", scalar.Name(), scalar.ISA())
	}
	auto := &Packed{}
	env := envKernel()
	if HasSIMD() && (env == "" || env == "auto" || env == "simd") {
		if auto.Name() != "simd" || auto.ISA() != SIMDISA() {
			t.Errorf("auto kernel on SIMD host: Name=%q ISA=%q, want simd/%s", auto.Name(), auto.ISA(), SIMDISA())
		}
	} else {
		// Scalar host, or DGEFMM_KERNEL pinned the scalar path.
		if auto.Name() != "packed" || auto.ISA() != "scalar" {
			t.Errorf("auto kernel dispatching scalar (env=%q): Name=%q ISA=%q, want packed/scalar", env, auto.Name(), auto.ISA())
		}
	}
	compat := &Packed{Compat: true}
	if compat.ISA() != "scalar" {
		t.Errorf("compat kernel ISA=%q, want scalar", compat.ISA())
	}
}

// TestCloneKeepsMode: Clone must preserve the pinned mode (strassen and
// batch clone kernels per worker).
func TestCloneKeepsMode(t *testing.T) {
	for _, mode := range []Mode{ModeAuto, ModeScalar, ModeSIMD} {
		k := &Packed{Mode: mode, MC: 8, KC: 8, NC: 8}
		ck, ok := k.Clone().(*Packed)
		if !ok {
			t.Fatalf("Clone returned %T", k.Clone())
		}
		if ck.Mode != mode {
			t.Errorf("Clone dropped Mode %v (got %v)", mode, ck.Mode)
		}
		if ck.ISA() != k.ISA() {
			t.Errorf("mode %v: clone ISA %q != original %q", mode, ck.ISA(), k.ISA())
		}
	}
}
