package batch

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/strassen"
)

// caseSpec describes one call of a test batch.
type caseSpec struct {
	m, n, k        int
	transA, transB blas.Transpose
	alpha, beta    float64
}

// buildCalls materializes a spec list twice: once as batch Calls writing
// into cBatch, once as the matching operands for a sequential reference
// loop writing into cSeq. A and B are shared between the two paths (they
// are only read); each C starts from the same random contents.
func buildCalls(specs []caseSpec, rng *rand.Rand) (calls []Call, seq []Call, cBatch, cSeq []*matrix.Dense) {
	for _, s := range specs {
		rowsA, colsA := s.m, s.k
		if s.transA.IsTrans() {
			rowsA, colsA = s.k, s.m
		}
		rowsB, colsB := s.k, s.n
		if s.transB.IsTrans() {
			rowsB, colsB = s.n, s.k
		}
		a := matrix.NewRandom(rowsA, colsA, rng)
		b := matrix.NewRandom(rowsB, colsB, rng)
		c0 := matrix.NewRandom(s.m, s.n, rng)
		cb, cs := c0.Clone(), c0.Clone()
		calls = append(calls, NewCall(cb, s.transA, s.transB, s.alpha, a, b, s.beta))
		seq = append(seq, NewCall(cs, s.transA, s.transB, s.alpha, a, b, s.beta))
		cBatch = append(cBatch, cb)
		cSeq = append(cSeq, cs)
	}
	return
}

// runSequential executes the reference loop: one Multiply-equivalent
// DGEFMM call after another, same base config, fresh workspace each call —
// the naive usage batching replaces.
func runSequential(cfg *strassen.Config, calls []Call) {
	for i := range calls {
		c := &calls[i]
		run := *cfg
		strassen.DGEFMM(&run, c.TransA, c.TransB, c.M, c.N, c.K, c.Alpha,
			c.A, c.Lda, c.B, c.Ldb, c.Beta, c.C, c.Ldc)
	}
}

// mixedSpecs is the standard mixed batch: square/rectangular, even/odd,
// all four op combinations, β = 0 and β ≠ 0 in one batch (so both
// schedules and both plan classes are exercised side by side).
func mixedSpecs() []caseSpec {
	return []caseSpec{
		{64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0},
		{64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0}, // same bucket again
		{65, 33, 97, blas.NoTrans, blas.NoTrans, 1.5, 0.5},
		{48, 96, 24, blas.Trans, blas.NoTrans, -0.75, 1},
		{30, 70, 50, blas.NoTrans, blas.Trans, 2, 0},
		{57, 57, 57, blas.Trans, blas.Trans, 0.5, -1.25},
		{64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0.25}, // β≠0 twin of bucket 1
		{1, 7, 3, blas.NoTrans, blas.NoTrans, 3, 0},       // degenerate small
	}
}

func naiveConfig() *strassen.Config {
	return &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}}
}

// TestBatchedMatchesSequentialBitForBit is the equivalence contract:
// BatchedMultiply must produce results bit-for-bit identical to the
// sequential loop of single Multiply calls for the same configs — mixed
// shapes in one batch, β = 0 vs β ≠ 0 schedule selection, both kernels,
// one and several workers.
func TestBatchedMatchesSequentialBitForBit(t *testing.T) {
	kernels := map[string]blas.Kernel{
		"naive":   blas.NaiveKernel{},
		"blocked": blas.DefaultKernel,
	}
	for kname, kern := range kernels {
		for _, workers := range []int{1, 3} {
			t.Run(kname+"/workers="+string(rune('0'+workers)), func(t *testing.T) {
				cfg := &strassen.Config{Kernel: kern, Criterion: strassen.Simple{Tau: 16}}
				rng := rand.New(rand.NewSource(7))
				calls, seq, cBatch, cSeq := buildCalls(mixedSpecs(), rng)

				runSequential(cfg, seq)

				pool := NewPool(&Options{Workers: workers, Config: cfg})
				defer pool.Close()
				if err := pool.Execute(calls); err != nil {
					t.Fatalf("Execute: %v", err)
				}

				for i := range cBatch {
					if cBatch[i].Rows != cSeq[i].Rows || cBatch[i].Cols != cSeq[i].Cols {
						t.Fatalf("call %d: shape mismatch", i)
					}
					for j := 0; j < cBatch[i].Cols; j++ {
						for r := 0; r < cBatch[i].Rows; r++ {
							if cBatch[i].At(r, j) != cSeq[i].At(r, j) {
								t.Fatalf("call %d: batched differs from sequential at (%d,%d): %v vs %v",
									i, r, j, cBatch[i].At(r, j), cSeq[i].At(r, j))
							}
						}
					}
				}
			})
		}
	}
}

// TestBatchedRepeatedBatchesStayIdentical re-runs the same batch through a
// warm pool: arena reuse must not perturb results (recycled scratch is
// re-zeroed), so run 1 and run 3 agree bitwise.
func TestBatchedRepeatedBatchesStayIdentical(t *testing.T) {
	cfg := naiveConfig()
	rng := rand.New(rand.NewSource(11))
	calls, seq, cBatch, cSeq := buildCalls(mixedSpecs(), rng)
	pool := NewPool(&Options{Workers: 2, Config: cfg})
	defer pool.Close()

	runSequential(cfg, seq)
	for round := 0; round < 3; round++ {
		// β ≠ 0 calls accumulate into C, so reset C to the reference start
		// state before every round: copy from the sequential twin's
		// pre-run contents is gone, so rebuild instead.
		calls2, _, cBatch2, _ := buildCalls(mixedSpecs(), rand.New(rand.NewSource(11)))
		if err := pool.Execute(calls2); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range cBatch2 {
			for j := 0; j < cBatch2[i].Cols; j++ {
				for r := 0; r < cBatch2[i].Rows; r++ {
					if cBatch2[i].At(r, j) != cSeq[i].At(r, j) {
						t.Fatalf("round %d call %d: warm-pool result differs at (%d,%d)", round, i, r, j)
					}
				}
			}
		}
	}
	_ = calls
	_ = cBatch
}

// TestPoolConcurrentBatches hammers one pool from several submitting
// goroutines with overlapping (shared-input) batches — the race-detector
// test for arena reuse; CI runs it under -race in the short suite.
func TestPoolConcurrentBatches(t *testing.T) {
	cfg := naiveConfig()
	pool := NewPool(&Options{Workers: 4, Config: cfg})
	defer pool.Close()

	// Shared inputs: every goroutine's batch reads the same A and B.
	rng := rand.New(rand.NewSource(21))
	const m, k, n = 65, 48, 33
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	want := matrix.NewDense(m, n)
	strassen.Multiply(cfg, want, blas.NoTrans, blas.NoTrans, 1, a, b, 0)

	const submitters = 6
	const rounds = 3
	errs := make(chan error, submitters)
	outs := make([][]*matrix.Dense, submitters)
	var wg sync.WaitGroup
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				var calls []Call
				var cs []*matrix.Dense
				for i := 0; i < 4; i++ {
					c := matrix.NewDense(m, n)
					calls = append(calls, NewCall(c, blas.NoTrans, blas.NoTrans, 1, a, b, 0))
					cs = append(cs, c)
				}
				if err := pool.Execute(calls); err != nil {
					errs <- err
					return
				}
				outs[g] = cs
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for g, cs := range outs {
		for i, c := range cs {
			if d := matrix.MaxAbsDiff(c, want); d != 0 {
				t.Fatalf("goroutine %d call %d: concurrent result differs by %g", g, i, d)
			}
		}
	}
	if s := pool.Stats(); s.Calls != submitters*rounds*4 {
		t.Fatalf("pool saw %d calls, want %d", s.Calls, submitters*rounds*4)
	}
}

// TestArenaZeroAllocSteadyState is the arena contract: after the first
// batch warms a worker's free lists, later same-shape batches perform zero
// fresh workspace allocations — the Alloc/Free cycle itself is
// allocation-free (AllocsPerRun == 0) and the arena's fresh-alloc counter
// stops moving while its reuse counter keeps climbing.
func TestArenaZeroAllocSteadyState(t *testing.T) {
	cfg := naiveConfig()
	pool := NewPool(&Options{Workers: 1, Config: cfg})
	defer pool.Close()

	makeBatch := func() []Call {
		rng := rand.New(rand.NewSource(31))
		calls, _, _, _ := buildCalls([]caseSpec{
			{64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0},
			{65, 33, 97, blas.NoTrans, blas.NoTrans, 1, 0.5},
			{64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0},
		}, rng)
		return calls
	}

	// Warmup: first batch populates plans and the worker's free lists.
	if err := pool.Execute(makeBatch()); err != nil {
		t.Fatal(err)
	}
	warm := pool.Stats()
	if len(warm.Arenas) != 1 {
		t.Fatalf("want 1 arena, got %d", len(warm.Arenas))
	}
	if warm.Arenas[0].Allocs == 0 {
		t.Fatal("warmup performed no arena allocations — arena not in the path")
	}

	// Steady state: three more identical batches.
	for i := 0; i < 3; i++ {
		if err := pool.Execute(makeBatch()); err != nil {
			t.Fatal(err)
		}
	}
	steady := pool.Stats()
	if steady.Arenas[0].Allocs != warm.Arenas[0].Allocs {
		t.Errorf("arena allocated fresh scratch after warmup: %d → %d fresh allocs",
			warm.Arenas[0].Allocs, steady.Arenas[0].Allocs)
	}
	if steady.Arenas[0].Reused <= warm.Arenas[0].Reused {
		t.Errorf("arena reuse did not grow in steady state: %d → %d",
			warm.Arenas[0].Reused, steady.Arenas[0].Reused)
	}
	if steady.Arenas[0].Live != 0 {
		t.Errorf("arena leak: %d words live after batches", steady.Arenas[0].Live)
	}

	// The Alloc/Free cycle on a warmed arena is itself allocation-free:
	// this is the testing.AllocsPerRun == 0 acceptance gate on the arena
	// path.
	tr := memtrack.New()
	sizes := []int{64 * 64, 32 * 32, 16 * 16, 33 * 49}
	for _, s := range sizes { // warm the free lists
		tr.Free(tr.Alloc(s))
	}
	allocs := testing.AllocsPerRun(100, func() {
		b1 := tr.Alloc(sizes[0])
		b2 := tr.Alloc(sizes[1])
		b3 := tr.Alloc(sizes[3])
		tr.Free(b3)
		tr.Free(b2)
		tr.Free(b1)
	})
	if allocs != 0 {
		t.Errorf("warmed arena Alloc/Free cycle allocates: AllocsPerRun = %v, want 0", allocs)
	}
}

// TestPerWorkerArenaWithinPaperBound asserts the paper's Table 1 bounds
// hold for the batched arena path per worker, not per batch: every worker
// arena's peak is within the strassen.WorkspaceBound of the largest shape
// class it served, no matter how many calls the batch held.
func TestPerWorkerArenaWithinPaperBound(t *testing.T) {
	const m = 96
	mk := func(beta float64, count int) []Call {
		rng := rand.New(rand.NewSource(41))
		var specs []caseSpec
		for i := 0; i < count; i++ {
			specs = append(specs, caseSpec{m, m, m, blas.NoTrans, blas.NoTrans, 1, beta})
		}
		calls, _, _, _ := buildCalls(specs, rng)
		return calls
	}
	for _, tc := range []struct {
		name  string
		beta  float64
		bound int64
	}{
		{"beta0/2m2over3", 0, strassen.WorkspaceBound(strassen.ScheduleAuto, m, m, m, true)},
		{"betaN/m2", 0.5, strassen.WorkspaceBound(strassen.ScheduleAuto, m, m, m, false)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Always{}, MaxDepth: 6}
			pool := NewPool(&Options{Workers: 3, Config: cfg})
			defer pool.Close()
			if err := pool.Execute(mk(tc.beta, 24)); err != nil {
				t.Fatal(err)
			}
			s := pool.Stats()
			if tc.beta == 0 {
				if want := int64(2*m*m) / 3; tc.bound != want {
					t.Fatalf("β=0 bound = %d, want 2m²/3 = %d", tc.bound, want)
				}
			} else if want := int64(m * m); tc.bound != want {
				t.Fatalf("β≠0 bound = %d, want m² = %d", tc.bound, want)
			}
			for i, a := range s.Arenas {
				if a.Peak > tc.bound {
					t.Errorf("worker %d arena peak %d exceeds per-worker paper bound %d", i, a.Peak, tc.bound)
				}
			}
			if s.PlanWords > tc.bound {
				t.Errorf("plan words %d exceed bound %d", s.PlanWords, tc.bound)
			}
		})
	}
}

// TestPoolErrorPropagation: an invalid call reports an error (not a crash)
// and the pool keeps serving afterwards.
func TestPoolErrorPropagation(t *testing.T) {
	pool := NewPool(&Options{Workers: 2, Config: naiveConfig()})
	defer pool.Close()
	bad := Call{
		TransA: blas.NoTrans, TransB: blas.NoTrans,
		M: 8, N: 8, K: 8, Alpha: 1,
		A: make([]float64, 64), Lda: 8,
		B: make([]float64, 64), Ldb: 8,
		C: make([]float64, 8), Ldc: 1, // ldc too small: DGEMM argument error
	}
	err := pool.Execute([]Call{bad})
	if err == nil || !strings.Contains(err.Error(), "failed") {
		t.Fatalf("want argument-error propagation, got %v", err)
	}
	// Pool still works.
	rng := rand.New(rand.NewSource(51))
	calls, seq, cb, cs := buildCalls([]caseSpec{{16, 16, 16, blas.NoTrans, blas.NoTrans, 1, 0}}, rng)
	runSequential(naiveConfig(), seq)
	if err := pool.Execute(calls); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(cb[0], cs[0]); d != 0 {
		t.Fatalf("post-error call differs by %g", d)
	}
	if err := pool.Execute(nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	pool.Close()
	if err := pool.Execute(calls); err == nil {
		t.Fatal("Execute on closed pool should error")
	}
}

// TestMultiplyConvenienceAndCollector covers the one-shot form plus the
// obs wiring: queue gauge, call counter, arena-reuse counter and
// per-bucket histograms all appear in the collector's snapshot.
func TestMultiplyConvenienceAndCollector(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	calls, seq, cb, cs := buildCalls(mixedSpecs(), rng)
	cfg := naiveConfig()
	runSequential(cfg, seq)
	if err := Multiply(cfg, calls); err != nil {
		t.Fatal(err)
	}
	for i := range cb {
		if d := matrix.MaxAbsDiff(cb[i], cs[i]); d != 0 {
			t.Fatalf("call %d differs by %g", i, d)
		}
	}

	col := obs.NewCollector()
	pool := NewPool(&Options{Workers: 2, Config: cfg, Collector: col})
	defer pool.Close()
	calls2, _, _, _ := buildCalls(mixedSpecs(), rand.New(rand.NewSource(61)))
	for i := 0; i < 2; i++ {
		calls3, _, _, _ := buildCalls(mixedSpecs(), rand.New(rand.NewSource(61)))
		if err := pool.Execute(calls3); err != nil {
			t.Fatal(err)
		}
	}
	if err := pool.Execute(calls2); err != nil {
		t.Fatal(err)
	}
	snap := col.Snapshot()
	if got := snap.Metrics.Counters["batch.calls"]; got != int64(3*len(calls2)) {
		t.Errorf("batch.calls = %d, want %d", got, 3*len(calls2))
	}
	if snap.Metrics.Counters["batch.arena.reuses"] == 0 {
		t.Error("arena-reuse counter did not move across repeated batches")
	}
	if _, ok := snap.Metrics.Gauges["batch.queue_depth"]; !ok {
		t.Error("queue-depth gauge missing")
	}
	var bucketHists int
	for name, h := range snap.Metrics.Histograms {
		if strings.HasPrefix(name, "batch.bucket.") {
			bucketHists++
			if h.Count == 0 {
				t.Errorf("bucket histogram %s has no observations", name)
			}
		}
	}
	if bucketHists < 4 {
		t.Errorf("want ≥4 per-bucket latency histograms, got %d", bucketHists)
	}
	if snap.Memory.Peak == 0 {
		t.Error("worker arenas not bridged into collector snapshot")
	}
}

// TestPoolCoreBudget: intra-call parallelism is scaled down so
// workers × per-call threads never exceeds GOMAXPROCS.
func TestPoolCoreBudget(t *testing.T) {
	pk := &blas.ParallelKernel{Workers: 8, Base: blas.NaiveKernel{}}
	cfg := &strassen.Config{Kernel: pk, Criterion: strassen.Simple{Tau: 8}, Parallel: 8}
	pool := NewPool(&Options{Workers: 4, Config: cfg})
	defer pool.Close()
	// With GOMAXPROCS likely ≤ 4 here, per-call budget is 1: the parallel
	// kernel must be unwrapped and Config.Parallel disabled. Verify by
	// behavior: the batch still computes correctly.
	rng := rand.New(rand.NewSource(71))
	calls, seq, cb, cs := buildCalls([]caseSpec{
		{64, 64, 64, blas.NoTrans, blas.NoTrans, 1, 0},
		{65, 33, 97, blas.NoTrans, blas.NoTrans, 1.5, 0.5},
	}, rng)
	runSequential(&strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}}, seq)
	if err := pool.Execute(calls); err != nil {
		t.Fatal(err)
	}
	for i := range cb {
		if d := matrix.MaxAbsDiff(cb[i], cs[i]); d != 0 {
			t.Fatalf("call %d: core-budgeted result differs by %g", i, d)
		}
	}
}

func TestPoolSchedRoutedNoOversubscription(t *testing.T) {
	// Regression for the core-oversubscription bug: a pool with more
	// workers than the attached runtime must not run more strassen tasks
	// concurrently than the runtime has workers. Routed pool workers are
	// pure submitters; the runtime's worker count is the structural cap,
	// which Stats().MaxRunning records as a high-water mark.
	rt := sched.New(2, 11)
	defer rt.Close()
	mkCfg := func() *strassen.Config {
		return &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}}
	}
	pool := NewPool(&Options{Workers: 8, Config: mkCfg(), Sched: rt})
	defer pool.Close()

	rng := rand.New(rand.NewSource(81))
	specs := make([]caseSpec, 12)
	for i := range specs {
		specs[i] = caseSpec{m: 64, n: 64, k: 64, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1, beta: 0.5}
	}
	calls, seq, cb, cs := buildCalls(specs, rng)
	runSequential(mkCfg(), seq)
	if err := pool.Execute(calls); err != nil {
		t.Fatal(err)
	}
	for i := range cb {
		if d := matrix.MaxAbsDiff(cb[i], cs[i]); d > 1e-8 {
			t.Fatalf("call %d: routed result differs from sequential by %g", i, d)
		}
	}
	st := rt.Stats()
	if st.TasksRun == 0 {
		t.Fatal("no tasks reached the runtime: calls were not routed")
	}
	if st.MaxRunning > int64(rt.Workers()) {
		t.Fatalf("%d tasks ran concurrently on a %d-worker runtime", st.MaxRunning, rt.Workers())
	}
}

// cancelKernel wraps a leaf kernel and, once armed, cancels the stored
// context on its Nth MulAdd call — a deterministic way to land a
// cancellation in the middle of a running multiply (the engine polls the
// context between products, so the call must abort shortly after).
type cancelKernel struct {
	blas.Kernel
	calls  atomic.Int64
	armed  atomic.Bool
	after  int64
	cancel atomic.Value // context.CancelFunc
}

func (k *cancelKernel) MulAdd(transA, transB blas.Transpose, m, n, kk int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if seen := k.calls.Add(1); k.armed.Load() && seen == k.after {
		k.cancel.Load().(context.CancelFunc)()
	}
	k.Kernel.MulAdd(transA, transB, m, n, kk, alpha, a, lda, b, ldb, c, ldc)
}

func TestExecuteEachCancelMidExecution(t *testing.T) {
	kern := &cancelKernel{Kernel: blas.NaiveKernel{}}
	cfg := &strassen.Config{Kernel: kern, Criterion: strassen.Simple{Tau: 8}}
	p := NewPool(&Options{Workers: 1, Config: cfg})
	defer p.Close()

	rng := rand.New(rand.NewSource(82))
	mk := func() []Call {
		calls, _, _, _ := buildCalls([]caseSpec{
			{m: 64, n: 64, k: 64, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1},
		}, rng)
		return calls
	}
	// Run 1 warms the shape bucket; run 2 runs against the warm plan, so
	// its delta is the deterministic leaf-multiply count of one call.
	if errs := p.ExecuteEach(mk()); errs[0] != nil {
		t.Fatal(errs[0])
	}
	before := kern.calls.Load()
	if errs := p.ExecuteEach(mk()); errs[0] != nil {
		t.Fatal(errs[0])
	}
	perCall := kern.calls.Load() - before
	if perCall < 2 {
		t.Fatalf("kernel saw %d leaf multiplies per call; cannot land mid-execution", perCall)
	}

	// Arm: cancel halfway through the next call's leaf multiplies, while
	// the call is running. The pool's admission check has already passed
	// by then, so this exercises the mid-execution polling path.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	kern.after = kern.calls.Load() + perCall/2
	kern.cancel.Store(cancel)
	kern.armed.Store(true)
	calls := mk()
	calls[0].Ctx = ctx
	errs := p.ExecuteEach(calls)
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("mid-execution cancel: err = %v, want context.Canceled", errs[0])
	}
}

// benchSetup builds the acceptance workload: a batch of 64 independent
// 512×512 β = 0 multiplies sharing A, each with its own B_i and C_i.
func benchSetup(calls, order int) (*strassen.Config, []Call) {
	rng := rand.New(rand.NewSource(2026))
	cfg := strassen.DefaultConfig(nil)
	a := matrix.NewRandom(order, order, rng)
	out := make([]Call, calls)
	for i := range out {
		b := matrix.NewRandom(order, order, rng)
		c := matrix.NewDense(order, order)
		out[i] = NewCall(c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
	}
	return cfg, out
}

// BenchmarkBatch compares a 64-call batch of 512×512 multiplies run as a
// sequential Multiply loop against the same batch through a warm Pool. The
// pool's speedup comes from inter-call parallelism (needs GOMAXPROCS > 1)
// plus arena and plan reuse; cmd/dgefmm-bench -batch records the same
// comparison with arena accounting into BENCH_PR2.json.
func BenchmarkBatch(b *testing.B) {
	const calls, order = 64, 512
	b.Run("loop", func(b *testing.B) {
		cfg, cs := benchSetup(calls, order)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			runSequential(cfg, cs)
		}
	})
	b.Run("pool", func(b *testing.B) {
		cfg, cs := benchSetup(calls, order)
		pool := NewPool(&Options{Config: cfg})
		defer pool.Close()
		if err := pool.Execute(cs); err != nil { // warm plans and arenas
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pool.Execute(cs); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		warm := pool.Stats()
		if err := pool.Execute(cs); err != nil {
			b.Fatal(err)
		}
		if after := pool.Stats(); after.Arenas[0].Allocs != warm.Arenas[0].Allocs {
			b.Fatalf("steady-state batch allocated fresh workspace: %d → %d",
				warm.Arenas[0].Allocs, after.Arenas[0].Allocs)
		}
	})
}

func TestExecuteEachPerCallErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	specs := []caseSpec{
		{m: 24, n: 24, k: 24, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1},
		{m: 17, n: 9, k: 31, transA: blas.Trans, transB: blas.NoTrans, alpha: -2, beta: 0.5},
		{m: 24, n: 24, k: 24, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1},
	}
	calls, seq, cBatch, cSeq := buildCalls(specs, rng)
	// Poison the middle call: an inner-dimension mismatch panics inside
	// DGEFMM, which must surface as that call's error only.
	calls[1].K = calls[1].K + 1

	p := NewPool(&Options{Workers: 2})
	defer p.Close()
	errs := p.ExecuteEach(calls)
	if len(errs) != len(calls) {
		t.Fatalf("ExecuteEach returned %d errors for %d calls", len(errs), len(calls))
	}
	if errs[0] != nil || errs[2] != nil {
		t.Fatalf("healthy calls reported errors: %v, %v", errs[0], errs[2])
	}
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "failed") {
		t.Fatalf("poisoned call error = %v, want failure", errs[1])
	}

	cfg := strassen.DefaultConfig(nil)
	runSequential(cfg, []Call{seq[0], seq[2]})
	for _, i := range []int{0, 2} {
		if !cBatch[i].Equal(cSeq[i]) {
			t.Errorf("call %d: ExecuteEach result differs from sequential DGEFMM", i)
		}
	}
}

func TestExecuteEachContextCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	specs := []caseSpec{
		{m: 32, n: 32, k: 32, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1},
		{m: 32, n: 32, k: 32, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1},
	}
	calls, _, cBatch, _ := buildCalls(specs, rng)

	// An already-canceled context must skip its call (C untouched) and
	// report the context error; the sibling call still runs.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls[0].Ctx = ctx
	before := cBatch[0].Clone()

	p := NewPool(&Options{Workers: 1})
	defer p.Close()
	errs := p.ExecuteEach(calls)
	if !errors.Is(errs[0], context.Canceled) {
		t.Fatalf("canceled call error = %v, want context.Canceled", errs[0])
	}
	if errs[1] != nil {
		t.Fatalf("sibling call failed: %v", errs[1])
	}
	if !cBatch[0].Equal(before) {
		t.Error("canceled call mutated its output")
	}
}

func TestExecuteEachConcurrent(t *testing.T) {
	// Many goroutines race ExecuteEach on one pool (run under -race in CI):
	// per-call error slots must not interfere across batches.
	rng := rand.New(rand.NewSource(23))
	p := NewPool(&Options{Workers: 2})
	defer p.Close()

	const batches = 6
	var wg sync.WaitGroup
	for g := 0; g < batches; g++ {
		specs := []caseSpec{
			{m: 20 + g, n: 24, k: 16, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1},
			{m: 20 + g, n: 24, k: 16, transA: blas.NoTrans, transB: blas.NoTrans, alpha: 1, beta: 1},
		}
		calls, seq, cBatch, cSeq := buildCalls(specs, rng)
		wg.Add(1)
		go func() {
			defer wg.Done()
			errs := p.ExecuteEach(calls)
			for i, err := range errs {
				if err != nil {
					t.Errorf("call %d failed: %v", i, err)
				}
			}
			runSequential(strassen.DefaultConfig(nil), seq)
			for i := range cBatch {
				if !cBatch[i].Equal(cSeq[i]) {
					t.Errorf("concurrent ExecuteEach result %d differs from sequential", i)
				}
			}
		}()
	}
	wg.Wait()
}

func TestExecuteEachClosedPool(t *testing.T) {
	p := NewPool(&Options{Workers: 1})
	p.Close()
	calls := make([]Call, 2)
	errs := p.ExecuteEach(calls)
	for i, err := range errs {
		if err == nil || !strings.Contains(err.Error(), "closed pool") {
			t.Fatalf("errs[%d] = %v, want closed-pool error", i, err)
		}
	}
}
