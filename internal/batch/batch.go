// Package batch executes many independent DGEFMM calls — C_i ← α_i·op(A_i)·
// op(B_i) + β_i·C_i — through a fixed worker pool with reusable per-worker
// workspace arenas and per-shape execution plans.
//
// The paper positions DGEFMM as a drop-in, memory-lean DGEMM replacement;
// this package is what makes it serviceable under batched traffic, the hot
// path of real multiply-heavy workloads:
//
//   - Worker pool: a fixed number of goroutines consume calls from a
//     bounded queue, so inter-call parallelism is explicit and capped.
//   - Workspace arena: each worker owns a memtrack.Tracker whose free list
//     recycles the Strassen temporaries; after the first call of a given
//     shape the worker's arena serves every later same-shape call with
//     zero fresh allocations. The arena's peak obeys the paper's Table 1
//     bounds per worker (strassen.WorkspaceBound), not per batch.
//   - Shape bucketing: calls with the same (op(A), op(B), m, n, k, β-class)
//     share one strassen.Plan, so the cutoff decisions, peel schedule and
//     recursion depth are derived once and replayed by table lookup.
//   - Core budgeting: the pool divides GOMAXPROCS between inter-call
//     workers and intra-call parallelism (Config.Parallel and
//     blas.ParallelKernel worker counts are scaled down) so the two levels
//     of concurrency do not oversubscribe the machine. With a work-stealing
//     runtime attached (Options.Sched or Config.Sched) the budget is
//     structural instead: every call executes as a task DAG on the runtime,
//     whose worker count caps tasks in flight regardless of how many pool
//     workers submit concurrently.
//
// Observability: give Options.Collector an obs.Collector and the pool
// maintains a queue-depth gauge ("batch.queue_depth"), a call counter
// ("batch.calls"), an arena-reuse counter ("batch.arena.reuses") and one
// latency histogram per shape bucket ("batch.bucket.<m>x<k>x<n>.<β>.ns"),
// and registers every worker arena so snapshots carry the workspace
// accounting.
package batch

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/obs"
	"repro/internal/phase"
	"repro/internal/sched"
	"repro/internal/strassen"
)

// Call describes one C ← alpha·op(A)·op(B) + beta·C multiplication of a
// batch, in the raw BLAS convention of DGEFMM (column-major storage with
// leading dimensions). Calls of one batch must not overlap in C; A and B
// may be shared freely (they are only read).
type Call struct {
	// TransA, TransB select op(A) and op(B).
	TransA, TransB blas.Transpose
	// M, N, K are the logical dimensions: op(A) is M×K, op(B) is K×N,
	// C is M×N.
	M, N, K int
	// Alpha and Beta are the scalar coefficients.
	Alpha, Beta float64
	// A, B, C are the column-major operand buffers with leading dimensions
	// Lda, Ldb, Ldc.
	A   []float64
	Lda int
	B   []float64
	Ldb int
	C   []float64
	Ldc int
	// Ctx, if non-nil, cancels the call: a context already done when a
	// worker picks the call up skips it outright, and one that expires
	// mid-execution stops the running multiply at the next product
	// boundary (the recursion polls the context between products, and the
	// task DAG drains its remaining bodies). Either way the call reports
	// the context's error without disturbing the rest of the batch; its C
	// may hold a partial result the caller must discard.
	Ctx context.Context
}

// NewCall builds a Call from Dense operands, validating shapes exactly as
// strassen.Multiply does: C ← alpha·op(A)·op(B) + beta·C.
func NewCall(c *matrix.Dense, transA, transB blas.Transpose, alpha float64, a, b *matrix.Dense, beta float64) Call {
	m, k := a.Rows, a.Cols
	if transA.IsTrans() {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if transB.IsTrans() {
		kb, n = n, kb
	}
	if kb != k {
		panic("batch: NewCall: inner dimensions mismatch")
	}
	if c.Rows != m || c.Cols != n {
		panic("batch: NewCall: output shape mismatch")
	}
	return Call{
		TransA: transA, TransB: transB,
		M: m, N: n, K: k,
		Alpha: alpha, Beta: beta,
		A: a.Data, Lda: a.Stride,
		B: b.Data, Ldb: b.Stride,
		C: c.Data, Ldc: c.Stride,
	}
}

// Options configures NewPool. The zero value (and a nil *Options) selects
// GOMAXPROCS workers running the paper's default DGEFMM configuration.
type Options struct {
	// Workers is the number of pool goroutines; <= 0 selects GOMAXPROCS.
	Workers int
	// QueueDepth bounds the job queue; <= 0 selects 4×Workers (min 16).
	// Execute blocks while the queue is full, providing backpressure.
	QueueDepth int
	// Config is the base DGEFMM configuration every call runs under. The
	// pool copies it and re-budgets its intra-call parallelism (Parallel,
	// ParallelKernel workers) against the worker count; per-worker kernels
	// and trackers replace Kernel and Tracker. Nil selects the defaults.
	Config *strassen.Config
	// Collector, if non-nil, receives the pool's metrics and the worker
	// arenas' workspace accounting (see the package comment for names).
	Collector *obs.Collector
	// Sched, if non-nil, routes every call through this work-stealing
	// runtime: a pool worker submits its call as a task and the runtime's
	// workers execute the call's product DAG and threaded leaves, so
	// intra-call parallelism across all concurrent calls shares the
	// runtime's single core budget (tasks in flight never exceed its
	// worker count, however many pool workers submit). Equivalent to
	// setting Config.Sched; when both are set, Options.Sched wins. Nil
	// (with a nil Config.Sched) keeps the pool's legacy direct execution
	// with the GOMAXPROCS/Workers core split.
	Sched *sched.Runtime
}

// Pool is a batched-DGEFMM execution engine. Create with NewPool, submit
// with Execute (any number of goroutines may call it concurrently), and
// release the workers with Close. The zero value is not usable.
type Pool struct {
	base    strassen.Config // worker template: Kernel/Tracker filled per worker
	kern    blas.Kernel     // re-budgeted kernel template workers clone
	sched   *sched.Runtime  // non-nil: calls run as tasks on this runtime
	jobs    chan job
	workers []*worker
	done    sync.WaitGroup
	closed  atomic.Bool
	ncalls  atomic.Int64

	mu      sync.RWMutex
	buckets map[bucketKey]*bucket

	col        *obs.Collector
	queueDepth *obs.Gauge
	calls      *obs.Counter
	arenaReuse *obs.Counter
}

// worker is one pool goroutine's private state: a kernel clone (stateful
// kernels must not be shared) and the workspace arena.
type worker struct {
	kern       blas.Kernel
	tracker    *memtrack.Tracker
	lastReused int64
}

// bucketKey identifies a shape class: calls agreeing on it share a plan.
type bucketKey struct {
	m, n, k        int
	transA, transB bool
	betaZero       bool
}

// bucket is one shape class's shared execution state.
type bucket struct {
	cfg  strassen.Config // base + planned criterion; Kernel/Tracker per worker
	plan *strassen.Plan
	hist *obs.Histogram // per-bucket call latency (nil without a collector)
}

// job is one queued call plus its batch's completion state. enqueued is
// stamped only while a phase profiler is installed; a worker attributes
// the dequeue latency to phase.BatchQueueWait. A job reports failure
// through errAt (per-call, ExecuteEach) when set, else through err
// (first-failure-wins, Execute).
type job struct {
	call     *Call
	bkt      *bucket
	wg       *sync.WaitGroup
	err      *errSlot
	errAt    *error
	enqueued time.Time
}

// fail records the job's failure in its batch's reporting slot. errAt is
// written race-free: each ExecuteEach call owns a distinct slice element,
// and the caller reads it only after wg.Wait.
func (j job) fail(err error) {
	if j.errAt != nil {
		*j.errAt = err
		return
	}
	j.err.set(err)
}

// errSlot records the first failure of a batch.
type errSlot struct {
	mu  sync.Mutex
	err error
}

func (s *errSlot) set(err error) {
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
}

func (s *errSlot) get() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// NewPool starts a worker pool. Close it when done; an unclosed pool leaks
// its worker goroutines.
func NewPool(opts *Options) *Pool {
	var o Options
	if opts != nil {
		o = *opts
	}
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := o.QueueDepth
	if queue <= 0 {
		queue = 4 * workers
		if queue < 16 {
			queue = 16
		}
	}
	base := o.Config
	if base == nil {
		base = strassen.DefaultConfig(nil)
	}

	p := &Pool{
		base:    *base,
		jobs:    make(chan job, queue),
		buckets: make(map[bucketKey]*bucket),
		col:     o.Collector,
	}
	p.base.Tracker = nil // workers install their own arenas

	// Core budget. With a task runtime (Options.Sched or Config.Sched) the
	// budget is structural: calls run as tasks on the runtime, which never
	// has more tasks in flight than workers, so pool workers are pure
	// submitters and no per-call scaling is needed. Without one, the
	// legacy split applies: threads per call = GOMAXPROCS / workers, so
	// inter-call and intra-call parallelism together never exceed the
	// machine.
	if o.Sched != nil {
		p.base.Sched = o.Sched
	}
	p.sched = p.base.Sched
	perCall := runtime.GOMAXPROCS(0) / workers
	if perCall < 1 {
		perCall = 1
	}
	if p.sched == nil {
		if p.base.Parallel > perCall {
			p.base.Parallel = perCall
		}
		if p.base.Parallel <= 1 {
			p.base.Parallel, p.base.ParallelLevels = 0, 0
		}
	}
	p.kern = p.base.Kernel
	if p.kern == nil {
		p.kern = kernel.Default()
	}
	if pk, ok := p.kern.(*blas.ParallelKernel); ok && pk.Workers > perCall {
		if perCall < 2 {
			p.kern = pk.Base
			if p.kern == nil {
				p.kern = kernel.Default()
			}
		} else {
			p.kern = &blas.ParallelKernel{Workers: perCall, Base: pk.Base}
		}
	}

	if p.col != nil {
		p.queueDepth = p.col.Registry.Gauge("batch.queue_depth")
		p.calls = p.col.Registry.Counter("batch.calls")
		p.arenaReuse = p.col.Registry.Counter("batch.arena.reuses")
	}

	for i := 0; i < workers; i++ {
		w := &worker{kern: blas.CloneKernel(p.kern), tracker: memtrack.New()}
		if p.col != nil {
			p.col.ObserveTracker(w.tracker)
			p.col.ObserveKernel(w.kern)
		}
		p.workers = append(p.workers, w)
		p.done.Add(1)
		go p.loop(w)
	}
	return p
}

// Execute runs every call of the batch and returns when all have finished,
// reporting the first failure (an invalid call panics inside DGEFMM; the
// pool converts that to an error and keeps serving). Calls are executed
// concurrently across the pool's workers; the slice and the operand buffers
// must stay valid until Execute returns. Concurrent Execute calls from
// several goroutines interleave safely at call granularity.
func (p *Pool) Execute(calls []Call) error {
	if p.closed.Load() {
		return errors.New("batch: Execute on closed pool")
	}
	var wg sync.WaitGroup
	var slot errSlot
	wg.Add(len(calls))
	prof := phase.Active()
	for i := range calls {
		c := &calls[i]
		j := job{call: c, bkt: p.bucketFor(c), wg: &wg, err: &slot}
		if prof != nil {
			j.enqueued = time.Now()
		}
		p.jobs <- j
		if p.queueDepth != nil {
			p.queueDepth.Set(int64(len(p.jobs)))
		}
	}
	wg.Wait()
	return slot.get()
}

// ExecuteEach runs every call of the batch like Execute but reports a
// per-call outcome: the i-th error corresponds to calls[i], nil meaning
// success. A call whose Ctx is done before a worker picks it up is skipped
// and receives its context's error (wrapped, so errors.Is sees
// context.DeadlineExceeded/Canceled); the other calls proceed. This is the
// granularity network serving needs — one coalesced batch carries many
// independent requests with independent deadlines, and one late request
// must not fail its neighbors.
func (p *Pool) ExecuteEach(calls []Call) []error {
	errs := make([]error, len(calls))
	if p.closed.Load() {
		err := errors.New("batch: ExecuteEach on closed pool")
		for i := range errs {
			errs[i] = err
		}
		return errs
	}
	var wg sync.WaitGroup
	wg.Add(len(calls))
	prof := phase.Active()
	for i := range calls {
		c := &calls[i]
		j := job{call: c, bkt: p.bucketFor(c), wg: &wg, errAt: &errs[i]}
		if prof != nil {
			j.enqueued = time.Now()
		}
		p.jobs <- j
		if p.queueDepth != nil {
			p.queueDepth.Set(int64(len(p.jobs)))
		}
	}
	wg.Wait()
	return errs
}

// Close drains outstanding work and stops the workers. The pool must not
// be used afterwards; Close is idempotent. Do not race Close with Execute.
func (p *Pool) Close() {
	if p.closed.CompareAndSwap(false, true) {
		close(p.jobs)
		p.done.Wait()
	}
}

// Multiply is the one-shot convenience form: it runs the batch through a
// transient pool with default sizing and closes it. For repeated batches
// keep a Pool — that is what amortizes plans and arena warmup.
func Multiply(cfg *strassen.Config, calls []Call) error {
	p := NewPool(&Options{Config: cfg})
	defer p.Close()
	return p.Execute(calls)
}

// loop is one worker goroutine.
func (p *Pool) loop(w *worker) {
	defer p.done.Done()
	for j := range p.jobs {
		p.run(w, j)
	}
}

// run executes one call on a worker, translating panics (argument errors
// surface that way, matching DGEMM) into the batch's error slot.
func (p *Pool) run(w *worker, j job) {
	defer j.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			j.fail(fmt.Errorf("batch: call m=%d n=%d k=%d failed: %v",
				j.call.M, j.call.N, j.call.K, r))
		}
	}()
	if p.queueDepth != nil {
		p.queueDepth.Set(int64(len(p.jobs)))
	}
	if !j.enqueued.IsZero() {
		phase.Active().Add(phase.BatchQueueWait, int64(time.Since(j.enqueued)), 0, 0)
	}
	if ctx := j.call.Ctx; ctx != nil {
		if err := ctx.Err(); err != nil {
			j.fail(fmt.Errorf("batch: call m=%d n=%d k=%d canceled before start: %w",
				j.call.M, j.call.N, j.call.K, err))
			return
		}
	}
	cfg := j.bkt.cfg
	cfg.Kernel = w.kern
	cfg.Tracker = w.tracker
	var start time.Time
	if j.bkt.hist != nil {
		start = time.Now()
	}
	c := j.call
	var err error
	if p.sched != nil {
		// Routed execution: the pool worker is a pure submitter. The call
		// runs as a task DAG on the shared runtime, so intra-call
		// parallelism across every concurrent call draws from the
		// runtime's single worker budget.
		rctx := c.Ctx
		if rctx == nil {
			rctx = context.Background()
		}
		d := sched.NewDAG()
		d.Add(func(wk *sched.Worker) {
			err = strassen.DGEFMMTask(rctx, wk, &cfg, c.TransA, c.TransB,
				c.M, c.N, c.K, c.Alpha, c.A, c.Lda, c.B, c.Ldb, c.Beta, c.C, c.Ldc)
		})
		if rerr := p.sched.Run(rctx, d); err == nil {
			err = rerr
		}
	} else {
		err = strassen.DGEFMMCtx(c.Ctx, &cfg, c.TransA, c.TransB, c.M, c.N, c.K, c.Alpha,
			c.A, c.Lda, c.B, c.Ldb, c.Beta, c.C, c.Ldc)
	}
	if err != nil {
		j.fail(fmt.Errorf("batch: call m=%d n=%d k=%d: %w", c.M, c.N, c.K, err))
		return
	}
	if j.bkt.hist != nil {
		j.bkt.hist.Observe(time.Since(start))
	}
	p.ncalls.Add(1)
	if p.calls != nil {
		p.calls.Add(1)
	}
	if p.arenaReuse != nil {
		if r := w.tracker.Reused(); r > w.lastReused {
			p.arenaReuse.Add(r - w.lastReused)
			w.lastReused = r
		}
	}
}

// bucketFor returns (planning on first sight) the shape bucket of a call.
func (p *Pool) bucketFor(c *Call) *bucket {
	key := bucketKey{
		m: c.M, n: c.N, k: c.K,
		transA: c.TransA.IsTrans(), transB: c.TransB.IsTrans(),
		betaZero: c.Beta == 0,
	}
	p.mu.RLock()
	b := p.buckets[key]
	p.mu.RUnlock()
	if b != nil {
		return b
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if b = p.buckets[key]; b != nil {
		return b
	}
	plan := strassen.PlanFor(&p.base, key.m, key.n, key.k, key.betaZero)
	b = &bucket{cfg: *plan.Apply(&p.base), plan: plan}
	if p.col != nil {
		beta := "beta0"
		if !key.betaZero {
			beta = "betaN"
		}
		b.hist = p.col.Registry.Histogram(
			fmt.Sprintf("batch.bucket.%dx%dx%d.%s.ns", key.m, key.k, key.n, beta))
	}
	p.buckets[key] = b
	return b
}

// Stats is a snapshot of a pool's activity and arena accounting.
type Stats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// Calls is the number of completed calls since creation.
	Calls int64 `json:"calls"`
	// Buckets is the number of distinct shape classes planned so far.
	Buckets int `json:"buckets"`
	// Arenas holds each worker arena's workspace accounting; Peak is the
	// figure the paper's Table 1 bounds (per worker, not per batch).
	Arenas []memtrack.Stats `json:"arenas"`
	// PlanWords is the largest planned workspace requirement across
	// buckets — the steady-state words each worker arena converges to
	// at most.
	PlanWords int64 `json:"plan_words"`
}

// Stats snapshots the pool.
func (p *Pool) Stats() Stats {
	s := Stats{Workers: len(p.workers), Calls: p.ncalls.Load()}
	for _, w := range p.workers {
		s.Arenas = append(s.Arenas, w.tracker.Stats())
	}
	p.mu.RLock()
	s.Buckets = len(p.buckets)
	for _, b := range p.buckets {
		if b.plan.Words > s.PlanWords {
			s.PlanWords = b.plan.Words
		}
	}
	p.mu.RUnlock()
	return s
}

// Plans returns the execution plans of every shape bucket seen so far.
func (p *Pool) Plans() []*strassen.Plan {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]*strassen.Plan, 0, len(p.buckets))
	for _, b := range p.buckets {
		out = append(out, b.plan)
	}
	return out
}
