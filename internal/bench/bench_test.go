package bench

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestSecondsPositiveAndSane(t *testing.T) {
	d := Seconds(func() { time.Sleep(2 * time.Millisecond) })
	if d < 0.001 || d > 0.5 {
		t.Fatalf("Seconds returned %v, want ≈ 2ms", d)
	}
}

func TestSecondsOnce(t *testing.T) {
	d := SecondsOnce(func() { time.Sleep(5 * time.Millisecond) })
	if d < 0.004 || d > 0.5 {
		t.Fatalf("SecondsOnce = %v", d)
	}
}

func TestBestOfNotWorseThanSingle(t *testing.T) {
	f := func() { time.Sleep(time.Millisecond) }
	best := BestOf(3, f)
	if best <= 0 {
		t.Fatal("BestOf must be positive")
	}
}

func TestGemmFlops(t *testing.T) {
	if GemmFlops(10, 20, 30) != 12000 {
		t.Fatal("GemmFlops wrong")
	}
}

func TestSummarizeKnownData(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Min != 1 || s.Max != 5 || s.Median != 3 || s.Mean != 3 {
		t.Fatalf("summary: %+v", s)
	}
	if s.Q1 != 2 || s.Q3 != 4 {
		t.Fatalf("quartiles: %+v", s)
	}
	if s.N != 5 {
		t.Fatal("N")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Min != 7 || s.Max != 7 || s.Q1 != 7 || s.Median != 7 || s.Q3 != 7 || s.Mean != 7 {
		t.Fatalf("singleton summary: %+v", s)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestSummarizeEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	Summarize(nil)
}

func TestQuantileInterpolation(t *testing.T) {
	s := Summarize([]float64{0, 10})
	if s.Q1 != 2.5 || s.Median != 5 || s.Q3 != 7.5 {
		t.Fatalf("interpolation: %+v", s)
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{0.9, 1.0, 1.1})
	str := s.String()
	if !strings.Contains(str, "0.9") || !strings.Contains(str, ";") {
		t.Fatalf("format: %q", str)
	}
}

func TestRandomProblemsInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lo, hi := Problem{10, 20, 30}, Problem{15, 25, 35}
	ps := RandomProblems(rng, 200, lo, hi)
	if len(ps) != 200 {
		t.Fatal("count")
	}
	for _, p := range ps {
		if p.M < 10 || p.M > 15 || p.K < 20 || p.K > 25 || p.N < 30 || p.N > 35 {
			t.Fatalf("out of range: %+v", p)
		}
	}
}

func TestFilterProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ps := FilterProblems(rng, 50, Problem{1, 1, 1}, Problem{100, 100, 100},
		func(p Problem) bool { return p.M%2 == 0 })
	if len(ps) != 50 {
		t.Fatalf("got %d problems", len(ps))
	}
	for _, p := range ps {
		if p.M%2 != 0 {
			t.Fatal("filter violated")
		}
	}
}

func TestFilterProblemsImpossiblePredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ps := FilterProblems(rng, 5, Problem{1, 1, 1}, Problem{4, 4, 4},
		func(p Problem) bool { return false })
	if len(ps) != 0 {
		t.Fatal("impossible predicate should yield nothing (after budget)")
	}
}

func TestProblemVol(t *testing.T) {
	p := Problem{M: 2, K: 3, N: 4}
	if p.Vol() != 48 {
		t.Fatalf("Vol = %v", p.Vol())
	}
	if math.Abs(math.Log10(p.Vol())-1.6812) > 1e-3 {
		t.Fatal("log10 volume sanity")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("size", "ratio")
	tb.AddRow(128, 0.95)
	tb.AddRow(2048, 1.0625)
	out := tb.String()
	if !strings.Contains(out, "size") || !strings.Contains(out, "2048") || !strings.Contains(out, "0.95") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, 2 rows
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
}
