package bench

import "math/rand"

// Problem is one (m, k, n) multiplication instance: op(A) is m×k, op(B) is
// k×n.
type Problem struct {
	M, K, N int
}

// RandomProblems draws count problems with each dimension uniform in
// [lo, hi], the generation scheme of the paper's Table 4 and Figure 6
// experiments ("randomly selecting the input dimensions m, k, and n").
func RandomProblems(rng *rand.Rand, count int, lo, hi Problem) []Problem {
	ps := make([]Problem, count)
	for i := range ps {
		ps[i] = Problem{
			M: lo.M + rng.Intn(hi.M-lo.M+1),
			K: lo.K + rng.Intn(hi.K-lo.K+1),
			N: lo.N + rng.Intn(hi.N-lo.N+1),
		}
	}
	return ps
}

// FilterProblems draws problems satisfying keep until count are found (or
// the attempt budget is exhausted). The paper uses this to build the
// Table 4 sample: "we randomly selected the input dimensions ... and then
// tested for those on which the two criteria would make opposite
// determinations".
func FilterProblems(rng *rand.Rand, count int, lo, hi Problem, keep func(Problem) bool) []Problem {
	var ps []Problem
	const maxAttempts = 1 << 20
	for attempts := 0; len(ps) < count && attempts < maxAttempts; attempts++ {
		p := Problem{
			M: lo.M + rng.Intn(hi.M-lo.M+1),
			K: lo.K + rng.Intn(hi.K-lo.K+1),
			N: lo.N + rng.Intn(hi.N-lo.N+1),
		}
		if keep(p) {
			ps = append(ps, p)
		}
	}
	return ps
}

// Vol returns 2mkn, the standard-algorithm flop volume of the problem (the
// x-axis of the paper's Figure 6 is Log10(2mnk)).
func (p Problem) Vol() float64 {
	return 2 * float64(p.M) * float64(p.K) * float64(p.N)
}
