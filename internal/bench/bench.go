// Package bench provides the measurement harness used to regenerate the
// paper's tables and figures: wall-clock timing of multiply kernels,
// quartile statistics for the cutoff-criteria comparison (Table 4), and the
// random workload generators of Sections 4.2–4.3.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// MinSampleTime is the minimum accumulated duration per measurement; calls
// are repeated until it is reached so that fast multiplies are not timed at
// clock granularity.
const MinSampleTime = 20 * time.Millisecond

// Seconds times f, repeating it until MinSampleTime has accumulated, and
// returns the per-call time in seconds. The paper's methodology: "Timing was
// accomplished by starting a clock just before the call ... and stopping the
// clock right after the call"; repetitions are the modern equivalent on a
// machine whose single call can be far below timer resolution.
func Seconds(f func()) float64 {
	// One warmup call outside the clock (page-faults, cache state).
	f()
	var (
		elapsed time.Duration
		n       int
	)
	for elapsed < MinSampleTime {
		start := time.Now()
		f()
		elapsed += time.Since(start)
		n++
	}
	return elapsed.Seconds() / float64(n)
}

// SecondsOnce times a single call of f. Used for long-running measurements
// (e.g. the eigensolver of Table 6) where one call is already seconds long.
func SecondsOnce(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// BestOf returns the minimum of n Seconds measurements, discarding
// scheduler noise.
func BestOf(n int, f func()) float64 {
	best := Seconds(f)
	for i := 1; i < n; i++ {
		if s := Seconds(f); s < best {
			best = s
		}
	}
	return best
}

// GemmFlops returns the floating-point operation count 2mkn of a standard
// m×k by k×n multiply, for MFLOPS reporting.
func GemmFlops(m, k, n int) float64 {
	return 2 * float64(m) * float64(k) * float64(n)
}

// Table is a minimal fixed-width text table writer for regenerating the
// paper's tables as aligned console output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, sb.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_, _ = t.WriteTo(&sb)
	return sb.String()
}
