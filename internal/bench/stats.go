package bench

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the statistics the paper reports for each criteria
// comparison in Table 4: "the range, average, and quartiles, values that
// mark the quarter, half (or median), and three-quarter points in the data".
type Summary struct {
	N              int
	Min, Max       float64
	Q1, Median, Q3 float64
	Mean           float64
}

// Summarize computes a Summary of xs. It panics on an empty slice.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		panic("bench: Summarize of empty data")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	return Summary{
		N:      len(s),
		Min:    s[0],
		Max:    s[len(s)-1],
		Q1:     quantile(s, 0.25),
		Median: quantile(s, 0.5),
		Q3:     quantile(s, 0.75),
		Mean:   sum / float64(len(s)),
	}
}

// quantile returns the p-quantile of sorted data by linear interpolation
// (the common "type 7" definition).
func quantile(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String formats the summary in the layout of the paper's Table 4 rows:
// range, quartiles, average.
func (s Summary) String() string {
	return fmt.Sprintf("%.4f–%.4f  %.4f;%.4f;%.4f  %.4f",
		s.Min, s.Max, s.Q1, s.Median, s.Q3, s.Mean)
}
