package strassen

import (
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

// skipIfAlgoPinned skips a test that asserts the default Winograd
// recursion structure (seven products per level, its trace shape, its
// memory bounds) when DGEFMM_ALGO pins a table algorithm for the whole
// process — the same convention the fused tests follow for DGEFMM_FUSED.
// The per-table CI legs run the Table* tests, which pin Config.Algo
// explicitly and stay valid under any ambient selection.
func skipIfAlgoPinned(t *testing.T) {
	t.Helper()
	if sel := (&Config{}).AlgoSelection(); sel != "default" {
		t.Skipf("DGEFMM_ALGO pins %q; this test asserts the default Winograd structure", sel)
	}
}

// tableDims picks the boundary-rich shape set for one grid dimension d:
// degenerate (1), just under/over the grid, exactly divisible, and a
// divisible-plus-fringe size, so every peel remainder class is exercised.
func tableDims(d int) []int {
	set := []int{1, d - 1, d, d + 1, 2 * d, 2*d + 1}
	out := set[:0]
	seen := map[int]bool{}
	for _, v := range set {
		if v >= 1 && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// TestAlgoOracleExhaustive is the per-table verification-matrix leg: every
// registered coefficient table, driven through the generic executor, must
// match the naive oracle across all transpose, sign, and fringe
// combinations on a small shape box. CI runs one table per matrix entry
// via -run 'TestAlgoOracleExhaustive/<table>'.
func TestAlgoOracleExhaustive(t *testing.T) {
	for _, tbl := range algo.Tables() {
		tbl := tbl
		t.Run(tbl.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(7 + tbl.R)))
			cfg := &Config{
				Kernel:    blas.NaiveKernel{},
				Criterion: Simple{Tau: 2},
				Algo:      tbl.Name,
			}
			transposes := []blas.Transpose{blas.NoTrans, blas.Trans}
			scalars := [][2]float64{{1, 0}, {1, 1}, {-2, 0.5}}
			for _, m := range tableDims(tbl.M) {
				for _, k := range tableDims(tbl.K) {
					for _, n := range tableDims(tbl.N) {
						for _, ta := range transposes {
							for _, tb := range transposes {
								for _, ab := range scalars {
									runCase(t, cfg, ta, tb, m, n, k, ab[0], ab[1], rng)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestTableClassicBitParity anchors the generic executor to the legacy
// path: the classic ⟨2,2,2⟩ table replays Strassen's original 1969 product
// order, so running it through the table machinery must be bit-for-bit
// identical to ScheduleOriginal — same operand formation order, same
// destination accumulation order, same peel fixups. Fusion is off on both
// sides (the legacy ScheduleOriginal path never fuses).
func TestTableClassicBitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	legacy := &Config{
		Kernel:    blas.NaiveKernel{},
		Criterion: Simple{Tau: 2},
		Schedule:  ScheduleOriginal,
		Fused:     FusedOff,
		Algo:      "default", // stay on the legacy path even when DGEFMM_ALGO picks a table
	}
	table := &Config{
		Kernel:    blas.NaiveKernel{},
		Criterion: Simple{Tau: 2},
		Fused:     FusedOff,
		Algo:      "classic",
	}
	for _, dims := range [][3]int{
		{4, 4, 4}, {8, 8, 8}, {16, 16, 16}, // pure recursion
		{7, 7, 7}, {9, 5, 13}, {6, 12, 10}, {13, 4, 8}, // peel fixups
	} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ab := range [][2]float64{{1, 0}, {1.5, 0.5}, {-1.0 / 3, 2}} {
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c := matrix.NewRandom(m, n, rng)
			want := c.Clone()
			DGEFMM(legacy, blas.NoTrans, blas.NoTrans, m, n, k, ab[0],
				a.Data, a.Stride, b.Data, b.Stride, ab[1], want.Data, want.Stride)
			got := c.Clone()
			DGEFMM(table, blas.NoTrans, blas.NoTrans, m, n, k, ab[0],
				a.Data, a.Stride, b.Data, b.Stride, ab[1], got.Data, got.Stride)
			if d := matrix.MaxAbsDiff(got, want); d != 0 {
				t.Fatalf("(%d,%d,%d) α=%v β=%v: table path diverges from ScheduleOriginal by %g",
					m, k, n, ab[0], ab[1], d)
			}
		}
	}
}

// TestTableFusedDifferential exercises the generalized fused driver: each
// table whose term structure fits the kernel's fan-out limit must engage
// FusedMulAdd at the deepest level and still match the oracle, on both
// grid-divisible and fringe shapes.
func TestTableFusedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, tbl := range algo.Tables() {
		tbl := tbl
		t.Run(tbl.Name, func(t *testing.T) {
			pk := &kernel.Packed{MC: 16, KC: 12, NC: 16}
			if !tableFusable(tbl, pk.FusedDestLimit()) {
				t.Skipf("table %s exceeds the kernel fan-out limit", tbl.Name)
			}
			cfg := &Config{
				Kernel:    pk,
				Criterion: Simple{Tau: 8},
				Fused:     FusedOn,
				Algo:      tbl.Name,
			}
			shapes := [][3]int{
				{6 * tbl.M, 6 * tbl.K, 6 * tbl.N},
				{6*tbl.M + 1, 6*tbl.K + 1, 6*tbl.N + 1},
			}
			for _, dims := range shapes {
				m, k, n := dims[0], dims[1], dims[2]
				before := pk.FusedCounters()
				a := matrix.NewRandom(m, k, rng)
				b := matrix.NewRandom(k, n, rng)
				c := matrix.NewRandom(m, n, rng)
				want := refMul(blas.NoTrans, blas.NoTrans, 1.5, a, b, 0.5, c)
				got := c.Clone()
				DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
					a.Data, a.Stride, b.Data, b.Stride, 0.5, got.Data, got.Stride)
				if d := matrix.MaxAbsDiff(got, want); d > tol(k) {
					t.Fatalf("(%d,%d,%d): maxdiff %g", m, k, n, d)
				}
				if pk.FusedCounters() == before {
					t.Fatalf("(%d,%d,%d): fused driver never engaged", m, k, n)
				}
			}
		})
	}
}

// TestDefaultPathUnchanged pins the compatibility contract: with no -algo
// selection (and with selections that resolve to the default), DGEFMM
// resolves to the legacy hand-coded Winograd path (nil table) and its
// output is bit-for-bit identical across the equivalent spellings.
func TestDefaultPathUnchanged(t *testing.T) {
	skipIfAlgoPinned(t)
	for _, name := range []string{"", "default", algo.DefaultName} {
		cfg := &Config{Algo: name}
		if tbl := cfg.resolveAlgo(64, 64, 64); tbl != nil {
			t.Errorf("Algo=%q resolved to table %s, want legacy path", name, tbl.Name)
		}
	}
	// Auto-selection landing on the default table also takes the legacy path.
	auto := &Config{Algo: AlgoAuto}
	if tbl := auto.resolveAlgo(512, 512, 512); tbl != nil {
		t.Errorf("auto on square shapes resolved to %s, want legacy path", tbl.Name)
	}

	rng := rand.New(rand.NewSource(5))
	m, k, n := 37, 29, 41
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	var ref *matrix.Dense
	for _, name := range []string{"", "default", algo.DefaultName} {
		cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Algo: name}
		got := c.Clone()
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
			a.Data, a.Stride, b.Data, b.Stride, 0.5, got.Data, got.Stride)
		if ref == nil {
			ref = got
			continue
		}
		if d := matrix.MaxAbsDiff(got, ref); d != 0 {
			t.Errorf("Algo=%q differs from unset by %g", name, d)
		}
	}
}

// TestAlgoPrecedence: an explicit Config.Algo beats DGEFMM_ALGO, which
// beats the default, and an explicit "default" still beats the
// environment — the PR 5 dispatch-policy contract.
func TestAlgoPrecedence(t *testing.T) {
	for _, tc := range []struct {
		cfg  string
		env  string
		want string
	}{
		{"", "", ""},
		{"", "323", "323"},
		{"", "auto", AlgoAuto},
		{"333", "323", "333"},
		{"default", "323", algo.DefaultName},
		{"auto", "323", AlgoAuto},
	} {
		cfg := &Config{Algo: tc.cfg}
		if got := cfg.algoNameFor(tc.env); got != tc.want {
			t.Errorf("Algo=%q env=%q: resolved %q, want %q", tc.cfg, tc.env, got, tc.want)
		}
	}
	if got := normalizeEnvAlgo("bogus-table"); got != "" {
		t.Errorf("normalizeEnvAlgo(bogus) = %q, want ignored", got)
	}
	if _, err := ParseAlgo("no-such-algo"); err == nil {
		t.Error("ParseAlgo(no-such-algo) succeeded, want error")
	}
	for in, want := range map[string]string{
		"": "", "default": "", " Auto ": AlgoAuto, "323": "323", "WINOGRAD": "winograd",
	} {
		if got, err := ParseAlgo(in); err != nil || got != want {
			t.Errorf("ParseAlgo(%q) = %q, %v; want %q", in, got, err, want)
		}
	}
}

// TestPlanForTables asserts the workspace simulation stays exact for
// non-default tables: Plan.Words equals the measured memtrack peak and
// Plan.KernelWords equals the measured kernel-arena peak, to the word, for
// the rectangular ⟨3,2,3⟩ and square ⟨3,3,3⟩ tables at two recursion
// depths each.
func TestPlanForTables(t *testing.T) {
	type tcase struct {
		algo string
		crit Criterion
		dims [3]int
	}
	cases := []tcase{
		// One and two table levels, divisible and fringe shapes.
		{"323", Simple{Tau: 8}, [3]int{18, 8, 18}},
		{"323", Simple{Tau: 4}, [3]int{27, 8, 27}},
		{"323", Simple{Tau: 8}, [3]int{19, 9, 20}},
		{"333", Simple{Tau: 8}, [3]int{18, 18, 18}},
		{"333", Simple{Tau: 4}, [3]int{27, 27, 27}},
		{"333", Simple{Tau: 8}, [3]int{20, 19, 21}},
	}
	for _, tc := range cases {
		for _, beta := range []float64{0, 0.5} {
			rng := rand.New(rand.NewSource(int64(tc.dims[0] + tc.dims[1])))
			m, k, n := tc.dims[0], tc.dims[1], tc.dims[2]
			cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: tc.crit, Algo: tc.algo}
			run := *cfg
			tr := memtrack.New()
			run.Tracker = tr
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c := matrix.NewRandom(m, n, rng)
			DGEFMM(&run, blas.NoTrans, blas.NoTrans, m, n, k, 1,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
			plan := PlanFor(cfg, m, n, k, beta == 0)
			if plan.Algo != tc.algo {
				t.Errorf("algo=%s dims=%v: plan.Algo = %q", tc.algo, tc.dims, plan.Algo)
			}
			if got, want := plan.Words, tr.Peak(); got != want {
				t.Errorf("algo=%s dims=%v beta=%g: plan words %d != measured peak %d",
					tc.algo, tc.dims, beta, got, want)
			}
		}
	}
}

// TestPlanForTablesKernelWords covers the packed-kernel arena half of the
// simulation, including the fused driver where the kernel's
// FusedDestLimit permits fusion: KernelWords must equal the arena peak
// exactly, and the arena must drain.
func TestPlanForTablesKernelWords(t *testing.T) {
	for _, tc := range []struct {
		algo  string
		fused FusedMode
		crit  Criterion
		dims  [3]int
	}{
		{"323", FusedOff, Simple{Tau: 8}, [3]int{18, 8, 18}},
		{"323", FusedOn, Simple{Tau: 8}, [3]int{18, 8, 18}},
		{"323", FusedOn, Simple{Tau: 4}, [3]int{27, 8, 28}},
		{"333", FusedOff, Simple{Tau: 8}, [3]int{18, 18, 18}},
		{"333", FusedOn, Simple{Tau: 8}, [3]int{18, 18, 18}},
		{"333", FusedOn, Simple{Tau: 4}, [3]int{28, 27, 27}},
	} {
		rng := rand.New(rand.NewSource(int64(tc.dims[0] * tc.dims[2])))
		m, k, n := tc.dims[0], tc.dims[1], tc.dims[2]
		pk := &kernel.Packed{MC: 16, KC: 12, NC: 16}
		arena := memtrack.New()
		pk.SetArena(arena)
		cfg := &Config{Kernel: pk, Criterion: tc.crit, Fused: tc.fused, Algo: tc.algo}
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(k, n, rng)
		c := matrix.NewRandom(m, n, rng)
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1,
			a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		plan := PlanFor(cfg, m, n, k, true)
		if got, want := plan.KernelWords, arena.Peak(); got != want {
			t.Errorf("algo=%s fused=%v dims=%v: kernel words %d != arena peak %d",
				tc.algo, tc.fused, tc.dims, got, want)
		}
		if live := arena.Live(); live != 0 {
			t.Errorf("algo=%s fused=%v dims=%v: arena leak, %d words live",
				tc.algo, tc.fused, tc.dims, live)
		}
	}
}
