package strassen

import "repro/internal/algo"

// This file adds shape plans on top of the recursion: a Plan freezes every
// decision DGEFMM would make for one (m, k, n, β-class) shape — the cutoff
// verdict at each level, the peel/pad actions, the recursion depth and the
// exact temporary-workspace peak in words — so repeated same-shape calls
// (the batched workload of internal/batch) replay cached decisions instead
// of re-deriving them, and so a workspace arena can be sized up front.
//
// The workspace figures mirror the allocation sites exactly: strassen1's
// R1/R2 pair, strassen2's R1/R2/R3 triple (Figure 1), strassen1General's
// m×n fold buffer, the original schedule's S/T/M triple, the padded copies
// of the padding strategies, and the parallel schedule's S1..S4/T1..T4 plus
// seven product buffers. Plan.Words therefore equals the measured
// memtrack peak (memory_test.go asserts equality), while WorkspaceBound
// gives the closed-form Table 1 bound the measurements sit under.

// WorkspaceBound returns the paper's analytic bound (Table 1), in float64
// words, on the temporary workspace DGEFMM needs for an m×k by k×n product
// under the given schedule and β class:
//
//   - STRASSEN1 with β = 0 (and auto, which selects it):
//     (m·max(k,n) + kn)/3 — 2m²/3 in the square case;
//   - STRASSEN2 (and auto with β ≠ 0, and the original 1969 schedule, which
//     uses the same three temporaries): (mk + kn + mn)/3 — m² square;
//   - STRASSEN1 forced with β ≠ 0: mn on top of the β = 0 figure (the
//     general case folds a β = 0 product through an m×n scratch), within
//     the paper's 2m² square bound.
//
// The bound covers the peeling odd-dimension strategy (whose fixups
// allocate nothing); the padding and parallel schedules trade extra
// workspace for their benefits and are bounded by Plan.Words instead.
func WorkspaceBound(sched Schedule, m, k, n int, betaZero bool) int64 {
	mx := k
	if n > mx {
		mx = n
	}
	strassen1 := (int64(m)*int64(mx) + int64(k)*int64(n)) / 3
	switch sched {
	case ScheduleStrassen1:
		if betaZero {
			return strassen1
		}
		return int64(m)*int64(n) + strassen1
	case ScheduleAuto:
		if betaZero {
			return strassen1
		}
	}
	// STRASSEN2, the original schedule, and auto with β ≠ 0.
	return (int64(m)*int64(k) + int64(k)*int64(n) + int64(m)*int64(n)) / 3
}

// Plan is a frozen set of recursion decisions for one DGEFMM shape class:
// every (m, k, n) triple the recursion reaches, with the cutoff criterion's
// verdict for it, plus the resulting recursion depth and the exact peak
// temporary workspace in words. Same-shape calls share one Plan; its cached
// criterion is read-only after construction and safe for concurrent use
// from any number of goroutines.
type Plan struct {
	// M, N, K and BetaZero identify the planned shape class: C is M×N,
	// the inner dimension is K, and BetaZero tells whether β = 0 (which
	// selects STRASSEN1 under the auto schedule).
	M, N, K  int
	BetaZero bool
	// Depth is the number of recursion levels the criterion produces.
	Depth int
	// Words is the exact peak temporary workspace, in float64 words, a
	// call of this shape allocates from Config.Tracker (the figure a
	// per-worker arena must hold to serve the shape with zero fresh
	// allocations). It excludes the base-case kernel's packing workspace,
	// which lives in the kernel's own arena and is reported separately in
	// KernelWords — keeping Words directly comparable to the paper's
	// Table 1 bounds.
	Words int64
	// KernelWords is the peak packing workspace, in float64 words, the
	// base-case kernel draws from its own arena while serving this shape:
	// the worst leaf's requirement, times the number of concurrent leaves
	// under the parallel schedule. Zero when the kernel keeps no accounted
	// workspace (naive, vector, blocked).
	KernelWords int64
	// TopSchedule is the schedule the top level resolves to (auto resolved
	// to STRASSEN1 or STRASSEN2 by β). On a table-driven plan it reports
	// the schedule the default path would have used; the executor is the
	// table named in Algo instead.
	TopSchedule Schedule
	// Algo is the coefficient table the plan simulates ("" for the default
	// hand-coded Winograd path), resolved from the planned Config exactly
	// as DGEFMM resolves it (including per-shape auto-selection).
	Algo string

	decisions map[[3]int]bool
	fallback  Criterion
}

// PlanFor simulates the recursion cfg would perform on an m×k by k×n
// product (betaZero tells whether β = 0) and returns the frozen Plan.
// A nil cfg plans the default configuration.
func PlanFor(cfg *Config, m, n, k int, betaZero bool) *Plan {
	if cfg == nil {
		cfg = DefaultConfig(nil)
	}
	tbl := cfg.resolveAlgo(m, k, n)
	prodR := 7
	if tbl != nil {
		prodR = tbl.R
	}
	lanes, levels, dag := cfg.schedParams(prodR)
	cores := cfg.schedCores()
	algoName := ""
	if tbl != nil {
		algoName = tbl.Name
	}
	p := &Plan{
		M: m, N: n, K: k, BetaZero: betaZero,
		TopSchedule: resolveSchedule(cfg.Schedule, betaZero),
		decisions:   make(map[[3]int]bool),
		fallback:    cfg.criterionCores(algoName, cores),
	}
	if tbl != nil {
		p.Algo = tbl.Name
	}
	s := &planSim{
		crit:      p.fallback,
		sched:     cfg.Schedule,
		odd:       cfg.Odd,
		maxDepth:  cfg.MaxDepth,
		parallel:  lanes,
		parLevels: levels,
		dag:       dag,
		tbl:       tbl,
		plan:      p,
		memo:      make(map[planKey]simResult),
	}
	if ls, ok := cfg.kernel().(leafSizer); ok {
		s.leaf = ls.LeafWorkspace
	}
	if dag && cores > 1 {
		// A multi-worker runtime threads the plan's leaves (MulAddTasks):
		// each leaf's arena draw grows to the parallel figure.
		if pls, ok := cfg.kernel().(parallelLeafSizer); ok {
			s.leaf = func(m, n, k int) int64 {
				return pls.LeafWorkspaceParallel(m, n, k, cores)
			}
		}
	}
	if cfg.fusedMode() != FusedOff {
		if _, ok := cfg.kernel().(fusedKernel); ok {
			s.fused = true
			s.destLimit = 4
			if l, ok := cfg.kernel().(fusedDestLimiter); ok {
				s.destLimit = l.FusedDestLimit()
			}
		}
	}
	var r simResult
	switch {
	case tbl != nil:
		r = s.simTable(m, k, n, betaZero, 0)
	case cfg.Odd == OddPadStatic:
		r = s.simStatic(m, k, n, betaZero)
	default:
		r = s.sim(m, k, n, betaZero, 0)
	}
	p.Words, p.KernelWords = r.words, r.kernel
	return p
}

// leafSizer is the structural interface a kernel implements to report its
// per-call workspace (internal/kernel's Packed does): the exact words one
// MulAdd of the given logical shape draws from the kernel's arena. Kept
// structural so the strassen package does not choose a kernel
// implementation for its callers.
type leafSizer interface {
	LeafWorkspace(m, n, k int) int64
}

// parallelLeafSizer is the threaded-leaf analogue (kernel.Packed's
// LeafWorkspaceParallel): the words one MulAddTasks draws when its MC loop
// splits across the given thread count. Structural for the same reason as
// leafSizer.
type parallelLeafSizer interface {
	LeafWorkspaceParallel(m, n, k, threads int) int64
}

// Criterion returns a cutoff criterion that replays the plan's cached
// decisions by table lookup, falling back to the planned configuration's
// live criterion for triples outside the plan (which a call of the planned
// shape never produces). The returned value is safe for concurrent use.
func (p *Plan) Criterion() Criterion {
	return plannedCriterion{decisions: p.decisions, fallback: p.fallback}
}

// Apply returns a copy of cfg with the plan's cached criterion installed —
// the hook batched execution uses to share one plan across workers.
func (p *Plan) Apply(cfg *Config) *Config {
	if cfg == nil {
		cfg = DefaultConfig(nil)
	}
	out := *cfg
	out.Criterion = p.Criterion()
	return &out
}

// resolveSchedule maps the auto schedule to the concrete schedule β selects
// (Table 1, last row); explicit schedules resolve to themselves.
func resolveSchedule(sched Schedule, betaZero bool) Schedule {
	if sched != ScheduleAuto {
		return sched
	}
	if betaZero {
		return ScheduleStrassen1
	}
	return ScheduleStrassen2
}

// plannedCriterion replays a Plan's decision table.
type plannedCriterion struct {
	decisions map[[3]int]bool
	fallback  Criterion
}

// Name implements Criterion.
func (c plannedCriterion) Name() string { return "planned(" + c.fallback.Name() + ")" }

// Recurse implements Criterion.
func (c plannedCriterion) Recurse(m, k, n int) bool {
	if d, ok := c.decisions[[3]int{m, k, n}]; ok {
		return d
	}
	return c.fallback.Recurse(m, k, n)
}

// planKey memoizes simulated subproblems. Depth participates because
// MaxDepth and ParallelLevels make behavior depth-dependent.
type planKey struct {
	m, k, n  int
	betaZero bool
	depth    int
}

// simResult is one subtree's workspace accounting: Strassen temporaries
// (words) and base-case kernel packing workspace (kernel), tracked apart
// because they come from different arenas.
type simResult struct {
	words  int64
	kernel int64
}

// planSim walks the recursion exactly as engine.mul would, recording
// criterion verdicts and accumulating the peak workspace of each subtree.
type planSim struct {
	crit      Criterion
	sched     Schedule
	odd       OddStrategy
	maxDepth  int
	parallel  int         // lane cap of the task DAG (products in flight per level)
	parLevels int         // top levels expanded into task DAGs
	dag       bool        // a task runtime is active (Config.Sched or Parallel > 1)
	tbl       *algo.Table // non-nil for a table-driven plan (simTable runs)
	plan      *Plan
	leaf      func(m, n, k int) int64 // nil for kernels without accounted workspace
	fused     bool                    // kernel has the fused hooks and the mode is not off
	destLimit int                     // kernel's native write-out fan-out (fusedDestLimit)
	memo      map[planKey]simResult
}

// decide evaluates (and records) the criterion's verdict for one triple.
func (s *planSim) decide(m, k, n int) bool {
	key := [3]int{m, k, n}
	if d, ok := s.plan.decisions[key]; ok {
		return d
	}
	d := s.crit.Recurse(m, k, n)
	s.plan.decisions[key] = d
	return d
}

// wouldRecurse mirrors engine.wouldRecurse on the recorded decision table,
// so fused-level planning replays identically at run time.
func (s *planSim) wouldRecurse(m, k, n, depth int) bool {
	return m > 1 && k > 1 && n > 1 &&
		(s.maxDepth == 0 || depth < s.maxDepth) &&
		s.decide(m, k, n)
}

// fusedLevels mirrors engine.fusedLevels (fused.go) decision for decision.
func (s *planSim) fusedLevels(m, k, n, depth int) int {
	m2, k2, n2 := m/2, k/2, n/2
	if !s.wouldRecurse(m2, k2, n2, depth+1) {
		return 1
	}
	if m2&1 == 0 && k2&1 == 0 && n2&1 == 0 &&
		!s.wouldRecurse(m2/2, k2/2, n2/2, depth+2) &&
		s.destLimit >= 4 {
		return 2
	}
	return 0
}

// sim mirrors engine.mul: cutoff test, odd-dimension strategy, then one
// schedule level. It returns the peak workspace of the subtree in words.
func (s *planSim) sim(m, k, n int, betaZero bool, depth int) simResult {
	if m == 0 || n == 0 || k == 0 {
		return simResult{}
	}
	key := planKey{m: m, k: k, n: n, betaZero: betaZero, depth: depth}
	if r, ok := s.memo[key]; ok {
		return r
	}
	var r simResult
	recurse := m > 1 && k > 1 && n > 1 &&
		(s.maxDepth == 0 || depth < s.maxDepth) &&
		s.decide(m, k, n)
	if recurse {
		if depth+1 > s.plan.Depth {
			s.plan.Depth = depth + 1
		}
		switch s.odd {
		case OddPadDynamic:
			mp, kp, np := m+(m&1), k+(k&1), n+(n&1)
			var pad int64
			if mp != m || kp != k || np != n {
				pad = int64(mp)*int64(kp) + int64(kp)*int64(np) + int64(mp)*int64(np)
			}
			r = s.schedWords(mp, kp, np, betaZero, depth)
			r.words += pad
		default: // OddPeel, OddPeelFirst, OddPadStatic below the padded top
			r = s.schedWords(m&^1, k&^1, n&^1, betaZero, depth)
		}
	} else if s.leaf != nil {
		// Base case: one kernel MulAdd of this exact shape.
		r.kernel = s.leaf(m, n, k)
	}
	s.memo[key] = r
	return r
}

// schedWords accounts one level of the selected schedule on an all-even
// problem: the level's own temporaries plus the worst concurrent child.
func (s *planSim) schedWords(m, k, n int, betaZero bool, depth int) simResult {
	m2, k2, n2 := m/2, k/2, n/2
	if s.dag && depth < s.parLevels {
		// dagLevel on the builtin Winograd table: S1..S4 (4·mk/4), T1..T4
		// (4·kn/4), P1..P7 (7·mn/4), with up to min(lanes, 7) β = 0
		// children live at once (the lane edges make the cap structural) —
		// each of which can be inside a kernel MulAdd simultaneously.
		own := 4*int64(m2)*int64(k2) + 4*int64(k2)*int64(n2) + 7*int64(m2)*int64(n2)
		conc := s.parallel
		if conc > 7 {
			conc = 7
		}
		if conc < 1 {
			conc = 1
		}
		child := s.sim(m2, k2, n2, true, depth+1)
		return simResult{
			words:  own + int64(conc)*child.words,
			kernel: int64(conc) * child.kernel,
		}
	}
	if s.fused && s.sched == ScheduleAuto {
		if lv := s.fusedLevels(m, k, n, depth); lv > 0 {
			// Fused levels allocate no Strassen temporaries; the only
			// workspace is the kernel's packed panels at the fused block
			// shape (every record's FusedMulAdd draws the same pair).
			if depth+lv > s.plan.Depth {
				s.plan.Depth = depth + lv
			}
			var r simResult
			if s.leaf != nil {
				r.kernel = s.leaf(m>>lv, n>>lv, k>>lv)
			}
			return r
		}
	}
	switch resolveSchedule(s.sched, betaZero) {
	case ScheduleStrassen1:
		if !betaZero {
			// strassen1General: an m×n fold buffer wrapping the β = 0
			// schedule on the same (not halved) problem.
			r := s.schedWords(m, k, n, true, depth)
			r.words += int64(m) * int64(n)
			return r
		}
		// strassen1: R1 is (m/2)·max(k/2, n/2), R2 is (k/2)·(n/2); the
		// seven children run sequentially, all with β = 0.
		mx := k2
		if n2 > mx {
			mx = n2
		}
		own := int64(m2)*int64(mx) + int64(k2)*int64(n2)
		child := s.sim(m2, k2, n2, true, depth+1)
		return simResult{words: own + child.words, kernel: child.kernel}
	case ScheduleOriginal:
		// original: S (mk/4), T (kn/4), M (mn/4); children all β = 0.
		own := int64(m2)*int64(k2) + int64(k2)*int64(n2) + int64(m2)*int64(n2)
		child := s.sim(m2, k2, n2, true, depth+1)
		return simResult{words: own + child.words, kernel: child.kernel}
	default: // ScheduleStrassen2
		// strassen2: R1 (mk/4), R2 (kn/4), R3 (mn/4); sequential children
		// of both β classes — take the worse of each accounting axis.
		own := int64(m2)*int64(k2) + int64(k2)*int64(n2) + int64(m2)*int64(n2)
		w0 := s.sim(m2, k2, n2, true, depth+1)
		w1 := s.sim(m2, k2, n2, false, depth+1)
		if w0.words > w1.words {
			w1.words = w0.words
		}
		if w0.kernel > w1.kernel {
			w1.kernel = w0.kernel
		}
		return simResult{words: own + w1.words, kernel: w1.kernel}
	}
}

// tableRecurse mirrors engine.tableRecurse on the recorded decision table.
func (s *planSim) tableRecurse(m, k, n, depth int) bool {
	return m >= s.tbl.M && k >= s.tbl.K && n >= s.tbl.N &&
		(s.maxDepth == 0 || depth < s.maxDepth) &&
		s.decide(m, k, n)
}

// simTable mirrors engine.tableMul: cutoff test, generalized peeling,
// then one table level — with the same memoized exact accounting as sim.
// A table level allocates the S/T/P triple (mq·kq + kq·nq + mq·nq) unless
// it fuses (no Strassen temporaries, one kernel leaf at the block shape);
// wide peel remainders add base-case GEMM leaves on the kernel axis (the
// rank-one DGER/DGEMV fixups draw nothing, as on the default path).
func (s *planSim) simTable(m, k, n int, betaZero bool, depth int) simResult {
	if m == 0 || n == 0 || k == 0 {
		return simResult{}
	}
	key := planKey{m: m, k: k, n: n, betaZero: betaZero, depth: depth}
	if r, ok := s.memo[key]; ok {
		return r
	}
	var r simResult
	if !s.tableRecurse(m, k, n, depth) {
		if s.leaf != nil {
			r.kernel = s.leaf(m, n, k)
		}
		s.memo[key] = r
		return r
	}
	if depth+1 > s.plan.Depth {
		s.plan.Depth = depth + 1
	}
	t := s.tbl
	me, ke, ne := m-m%t.M, k-k%t.K, n-n%t.N
	mq, kq, nq := me/t.M, ke/t.K, ne/t.N
	if s.dag && depth < s.parLevels {
		// dagLevel on the table: one buffer per multi-term operand column
		// plus all R products, with up to min(lanes, R) β = 0 children
		// live at once under the lane edges.
		sB, tB := dagBuffers(t)
		own := int64(sB)*int64(mq)*int64(kq) + int64(tB)*int64(kq)*int64(nq) +
			int64(t.R)*int64(mq)*int64(nq)
		conc := s.parallel
		if conc > t.R {
			conc = t.R
		}
		if conc < 1 {
			conc = 1
		}
		child := s.simTable(mq, kq, nq, true, depth+1)
		r.words = own + int64(conc)*child.words
		r.kernel = int64(conc) * child.kernel
	} else if s.fused && s.sched == ScheduleAuto && !s.tableRecurse(mq, kq, nq, depth+1) &&
		tableFusable(t, s.destLimit) {
		if s.leaf != nil {
			r.kernel = s.leaf(mq, nq, kq)
		}
	} else {
		own := int64(mq)*int64(kq) + int64(kq)*int64(nq) + int64(mq)*int64(nq)
		child := s.simTable(mq, kq, nq, true, depth+1)
		r.words = own + child.words
		r.kernel = child.kernel
	}
	if s.leaf != nil {
		// The wide peel fixups run after the core level's temporaries are
		// freed; each is one kernel leaf, so only the kernel peak can move.
		// A remainder of exactly 1 repairs with DGER/DGEMV (no draw).
		for _, fix := range []struct{ rem, m, n, k int }{
			{k - ke, me, ne, k - ke}, // inner-dimension repair into the core
			{n - ne, me, n - ne, k},  // peeled columns
			{m - me, m - me, n, k},   // peeled rows
		} {
			if fix.rem > 1 {
				if w := s.leaf(fix.m, fix.n, fix.k); w > r.kernel {
					r.kernel = w
				}
			}
		}
	}
	s.memo[key] = r
	return r
}

// simStatic mirrors staticPadMul: predict the depth, pad once to a multiple
// of 2^depth, then run the recursion depth-bounded with no odd dimensions.
func (s *planSim) simStatic(m, k, n int, betaZero bool) simResult {
	d := 0
	mm, kk, nn := m, k, n
	for mm > 1 && kk > 1 && nn > 1 &&
		(s.maxDepth == 0 || d < s.maxDepth) &&
		s.decide(mm, kk, nn) {
		mm, kk, nn = (mm+1)/2, (kk+1)/2, (nn+1)/2
		d++
	}
	s.plan.Depth = d
	if d == 0 {
		var r simResult
		if s.leaf != nil {
			r.kernel = s.leaf(m, n, k)
		}
		return r
	}
	unit := 1 << uint(d)
	mp, kp, np := roundUp(m, unit), roundUp(k, unit), roundUp(n, unit)
	inner := &planSim{
		crit:      s.crit,
		sched:     s.sched,
		odd:       OddPeel,
		maxDepth:  d,
		parallel:  s.parallel,
		parLevels: s.parLevels,
		dag:       s.dag,
		plan:      s.plan,
		leaf:      s.leaf,
		memo:      make(map[planKey]simResult),
	}
	var pad int64
	if mp != m || kp != k || np != n {
		pad = int64(mp)*int64(kp) + int64(kp)*int64(np) + int64(mp)*int64(np)
	}
	r := inner.sim(mp, kp, np, betaZero, 0)
	r.words += pad
	return r
}
