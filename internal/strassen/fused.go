package strassen

// The fused Winograd driver: the last one or two recursion levels executed
// straight through the kernel's operand-fused packing and multi-destination
// write-out hooks (internal/kernel's FusedMulAdd), after Huang et al.,
// "Implementing Strassen's Algorithm with BLIS" (arXiv:1605.01078). Each of
// the 7 (or 49, two-level) products is one (A-terms, B-terms, destinations)
// record; the add/sub linear combinations happen inside the kernel's
// packing and C update, so a fused level allocates no S/T/M temporaries at
// all — the only workspace is the kernel's own two packed panels.
//
// The records are Strassen's original 1969 construction, not the Winograd
// 15-add variant the materialized schedules use: Winograd's chained sums
// (S2 = A21 + A22 − A11, T4 = B22 − B12 + B11 − B21) need three- and
// four-term operand combinations whose intermediates its schedules reuse
// across products, while the 1969 form keeps every operand a ≤2-term and
// every product a ≤2-destination combination — exactly what a fused
// packing/write-out pass can form on the fly (Huang et al. fuse the same
// construction for the same reason). A fused level therefore trades
// Winograd's 15 O(n²) passes for 0 at the cost of re-reading quadrants
// during packing; the two-level table composes the construction with
// itself (49 records, ≤4 terms and destinations, coefficients still ±1).
//
// Engagement: ScheduleAuto only (pinned schedules keep their exact
// materialized form — the analytic opcount and workspace tests depend on
// it), and only for the last levels of the recursion, where the criterion
// says the children (or grandchildren) are base cases. Deeper trees fall
// through to the materialized schedules and re-test at each child, so
// fusion always replaces the leaf-adjacent levels where the O(n²) overhead
// bites hardest relative to the O(n³) saved.

import (
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/kernel"
	"repro/internal/matrix"
)

// FusedMode selects whether DGEFMM may route the last recursion levels
// through the kernel's fused packing/write-out hooks.
type FusedMode int

const (
	// FusedAuto (the zero value) uses the fused driver whenever the
	// dispatched kernel implements the hooks, the schedule is auto, and the
	// cutoff criterion marks the children as base cases. The DGEFMM_FUSED
	// environment variable can override it per process.
	FusedAuto FusedMode = iota
	// FusedOn requests the fused driver explicitly (it still requires the
	// hooks and the auto schedule — a pinned schedule or hook-less kernel
	// runs unfused regardless).
	FusedOn
	// FusedOff disables the fused driver: the legacy materialized
	// schedules run exactly as before the hooks existed.
	FusedOff
)

// String returns the mode's flag spelling.
func (f FusedMode) String() string {
	switch f {
	case FusedAuto:
		return "auto"
	case FusedOn:
		return "on"
	case FusedOff:
		return "off"
	}
	return "unknown"
}

// ParseFusedMode parses a -fused flag value.
func ParseFusedMode(s string) (FusedMode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return FusedAuto, nil
	case "on":
		return FusedOn, nil
	case "off":
		return FusedOff, nil
	}
	return FusedAuto, fmt.Errorf("unknown fused mode %q (want auto|on|off)", s)
}

// envFused returns the cached DGEFMM_FUSED override ("" when unset).
// Unknown values are reported once on stderr and ignored, mirroring
// internal/kernel's DGEFMM_KERNEL handling.
var envFused = sync.OnceValue(func() string {
	return normalizeEnvFused(os.Getenv("DGEFMM_FUSED"))
})

// normalizeEnvFused validates a DGEFMM_FUSED value. Split from the cached
// reader so tests can drive it directly.
func normalizeEnvFused(v string) string {
	n := strings.ToLower(strings.TrimSpace(v))
	switch n {
	case "", "auto", "on", "off":
		return n
	}
	fmt.Fprintf(os.Stderr, "strassen: ignoring unknown DGEFMM_FUSED=%q (want auto|on|off)\n", v)
	return ""
}

// fusedMode resolves the effective mode with the PR 5 dispatch-policy
// precedence: an explicit Config.Fused beats the environment, which beats
// auto-detection.
func (cfg *Config) fusedMode() FusedMode { return cfg.fusedModeFor(envFused()) }

// fusedModeFor is fusedMode with the environment override passed explicitly.
func (cfg *Config) fusedModeFor(env string) FusedMode {
	if cfg.Fused != FusedAuto {
		return cfg.Fused
	}
	switch env {
	case "on":
		return FusedOn
	case "off":
		return FusedOff
	}
	return FusedAuto
}

// FusedActive reports whether this configuration routes eligible recursion
// levels through the fused driver: the effective mode is not off, the
// schedule is auto, and the kernel implements the fused hooks. CLI tools
// log it as the effective -fused choice.
func (cfg *Config) FusedActive() bool {
	if cfg.fusedMode() == FusedOff || cfg.Schedule != ScheduleAuto {
		return false
	}
	_, ok := cfg.kernel().(fusedKernel)
	return ok
}

// fusedKernel is the structural hook interface a kernel implements to serve
// fused Strassen levels (internal/kernel's Packed does). Kept structural
// like leafSizer so the strassen package does not choose a kernel
// implementation for its callers.
type fusedKernel interface {
	FusedMulAdd(m, n, kk int, alpha float64, a, b kernel.Operand, dests []kernel.Dest)
}

// fusedDestLimiter is the optional capability report alongside the hook:
// how many destinations the kernel's write-out serves natively. Kernels
// that do not say are assumed to handle the two-level table's fan-out.
type fusedDestLimiter interface {
	FusedDestLimit() int
}

// fusedDestLimit resolves the kernel's write-out fan-out limit.
func (e *engine) fusedDestLimit() int {
	if l, ok := e.fk.(fusedDestLimiter); ok {
		return l.FusedDestLimit()
	}
	return 4
}

// fusedTerm is one quadrant reference in a record: grid position (r, c) in
// the 2^L×2^L block partition and its ±1 coefficient.
type fusedTerm struct {
	r, c int
	g    float64
}

// fusedRecord is one product: Ã = Σ a, B̃ = Σ b, accumulated into every
// destination in dst.
type fusedRecord struct {
	a, b, dst []fusedTerm
}

// fusedLevel1 is Strassen's 1969 construction over the 2×2 partition:
//
//	M1 = (A11+A22)(B11+B22) → C11, C22      M5 = (A11+A12)B22 → −C11, C12
//	M2 = (A21+A22)B11       → C21, −C22     M6 = (A21−A11)(B11+B12) → C22
//	M3 = A11(B12−B22)       → C12, C22      M7 = (A12−A22)(B21+B22) → C11
//	M4 = A22(B21−B11)       → C11, C21
//
// (quadrant (r, c) = block row r, block column c, zero-based). Every
// operand has ≤2 terms and every product ≤2 destinations, all ±1.
var fusedLevel1 = []fusedRecord{
	{a: []fusedTerm{{0, 0, 1}, {1, 1, 1}}, b: []fusedTerm{{0, 0, 1}, {1, 1, 1}}, dst: []fusedTerm{{0, 0, 1}, {1, 1, 1}}},
	{a: []fusedTerm{{1, 0, 1}, {1, 1, 1}}, b: []fusedTerm{{0, 0, 1}}, dst: []fusedTerm{{1, 0, 1}, {1, 1, -1}}},
	{a: []fusedTerm{{0, 0, 1}}, b: []fusedTerm{{0, 1, 1}, {1, 1, -1}}, dst: []fusedTerm{{0, 1, 1}, {1, 1, 1}}},
	{a: []fusedTerm{{1, 1, 1}}, b: []fusedTerm{{1, 0, 1}, {0, 0, -1}}, dst: []fusedTerm{{0, 0, 1}, {1, 0, 1}}},
	{a: []fusedTerm{{0, 0, 1}, {0, 1, 1}}, b: []fusedTerm{{1, 1, 1}}, dst: []fusedTerm{{0, 0, -1}, {0, 1, 1}}},
	{a: []fusedTerm{{1, 0, 1}, {0, 0, -1}}, b: []fusedTerm{{0, 0, 1}, {0, 1, 1}}, dst: []fusedTerm{{1, 1, 1}}},
	{a: []fusedTerm{{0, 1, 1}, {1, 1, -1}}, b: []fusedTerm{{1, 0, 1}, {1, 1, 1}}, dst: []fusedTerm{{0, 0, 1}}},
}

// fusedLevel2 is the construction composed with itself over the 4×4 block
// grid: 49 records with ≤4-term operands and ≤4 destinations.
var fusedLevel2 = composeFused(fusedLevel1, fusedLevel1)

// composeFused applies inner to each of outer's products: quadrant (r', c')
// of the outer operand Σ G·X_{(R,C)} is Σ G·(X_{(R,C)})_{(r',c')}, block
// (2R+r', 2C+c') of the refined grid, and the inner destinations of each
// outer product land in the same refined positions of the outer
// destinations.
func composeFused(outer, inner []fusedRecord) []fusedRecord {
	out := make([]fusedRecord, 0, len(outer)*len(inner))
	for _, p := range outer {
		for _, q := range inner {
			out = append(out, fusedRecord{
				a:   crossTerms(p.a, q.a),
				b:   crossTerms(p.b, q.b),
				dst: crossTerms(p.dst, q.dst),
			})
		}
	}
	return out
}

func crossTerms(outer, inner []fusedTerm) []fusedTerm {
	out := make([]fusedTerm, 0, len(outer)*len(inner))
	for _, o := range outer {
		for _, i := range inner {
			out = append(out, fusedTerm{r: 2*o.r + i.r, c: 2*o.c + i.c, g: o.g * i.g})
		}
	}
	return out
}

// wouldRecurse reproduces engine.mul's recursion test for a prospective
// child: the fused driver may only replace levels whose children the
// criterion would make base cases, or the recursion tree would change.
func (e *engine) wouldRecurse(m, k, n, depth int) bool {
	return m > 1 && k > 1 && n > 1 &&
		(e.maxDepth == 0 || depth < e.maxDepth) &&
		e.crit.Recurse(m, k, n)
}

// fusedLevels decides how many trailing levels to fuse for an all-even
// (m, k, n) problem at the given depth: 1 when the children are base
// cases, 2 when the children recurse once more into base cases, the
// quadrants split evenly again, and the kernel's write-out handles the
// two-level table's 4-way fan-out natively (FusedDestLimit ≥ 4; on the
// SIMD tile the limit is 2, and measurement shows the buffered scalar
// scatter the 4-destination records would take costs more than two-level
// fusion saves — so a materialized level runs here instead and each child
// re-tests, fusing its own last level), 0 otherwise (fall through to a
// materialized level and re-test at each child).
func (e *engine) fusedLevels(m, k, n, depth int) int {
	m2, k2, n2 := m/2, k/2, n/2
	if !e.wouldRecurse(m2, k2, n2, depth+1) {
		return 1
	}
	if m2&1 == 0 && k2&1 == 0 && n2&1 == 0 &&
		!e.wouldRecurse(m2/2, k2/2, n2/2, depth+2) &&
		e.fusedDestLimit() >= 4 {
		return 2
	}
	return 0
}

// fusedWinograd executes levels (1 or 2) fused Strassen levels: β applied
// once up front, then every record streamed through the kernel hooks with
// quadrant views as operand terms and quadrant slices as destinations. No
// Strassen temporaries are allocated.
func (e *engine) fusedWinograd(c *matrix.Dense, a, b matrix.View, alpha, beta float64, levels int) {
	g := 1 << levels
	mq, kq, nq := a.Rows/g, a.Cols/g, b.Cols/g
	e.phScaleQuads([]*matrix.Dense{c}, beta)
	recs := fusedLevel1
	if levels == 2 {
		recs = fusedLevel2
	}
	var at, bt [4]kernel.Term
	var dt [4]kernel.Dest
	aOp := kernel.Operand{Ld: a.Stride, Trans: a.Trans}
	bOp := kernel.Operand{Ld: b.Stride, Trans: b.Trans}
	fk := e.fk
	for _, rec := range recs {
		for i, t := range rec.a {
			at[i] = kernel.Term{Data: a.Slice(t.r*mq, t.c*kq, mq, kq).Data, Coeff: t.g}
		}
		for i, t := range rec.b {
			bt[i] = kernel.Term{Data: b.Slice(t.r*kq, t.c*nq, kq, nq).Data, Coeff: t.g}
		}
		for i, t := range rec.dst {
			q := c.Slice(t.r*mq, t.c*nq, mq, nq)
			dt[i] = kernel.Dest{Data: q.Data, Ld: q.Stride, Coeff: t.g}
		}
		aOp.Terms = at[:len(rec.a)]
		bOp.Terms = bt[:len(rec.b)]
		fk.FusedMulAdd(mq, nq, kq, alpha, aOp, bOp, dt[:len(rec.dst)])
	}
}
