package strassen

import (
	"context"

	"repro/internal/algo"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/phase"
	"repro/internal/sched"
)

// DGEFMM computes C ← alpha*op(A)*op(B) + beta*C with the paper's Strassen
// implementation. The signature mirrors the Level 3 BLAS DGEMM exactly
// (Section 3.1): op(A) is m×k, op(B) is k×n, C is m×n, all column-major
// with leading dimensions lda, ldb, ldc. cfg may be nil for the default
// configuration.
func DGEFMM(cfg *Config, transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	_ = dgefmm(nil, nil, cfg, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEFMMCtx is DGEFMM with mid-execution cancellation: the recursion polls
// ctx between products (and the task DAG drains its remaining bodies), so
// an expired deadline stops a running multiply instead of only gating
// admission. On a non-nil error C holds a partial result the caller must
// discard; A and B are never written.
func DGEFMMCtx(ctx context.Context, cfg *Config, transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) error {
	return dgefmm(ctx, nil, cfg, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DGEFMMTask is DGEFMMCtx for callers already running inside a sched task:
// sub must be the *sched.Worker the task body received (or an external
// *sched.Runtime), and the call's DAG levels and threaded leaves submit
// through it — nesting by helping on the worker's own deque rather than
// blocking the pool from outside, which is how internal/batch routes calls
// through one shared core budget without deadlock.
func DGEFMMTask(ctx context.Context, sub sched.Submitter, cfg *Config, transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) error {
	return dgefmm(ctx, sub, cfg, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

func dgefmm(ctx context.Context, outer sched.Submitter, cfg *Config, transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) error {
	if cfg == nil {
		cfg = DefaultConfig(nil)
	}
	// Validate exactly as DGEMM would; reuse its checks by constructing the
	// same parameter expectations.
	rowsA, colsA := m, k
	if transA.IsTrans() {
		rowsA, colsA = k, m
	}
	rowsB, colsB := k, n
	if transB.IsTrans() {
		rowsB, colsB = n, k
	}
	validate(transA, transB, m, n, k, lda, ldb, ldc, rowsA, colsA, rowsB, colsB, a, b, c)
	if m == 0 || n == 0 {
		return ctxErr(ctx)
	}

	cm := matrix.FromColMajor(m, n, ldc, c)
	if alpha == 0 || k == 0 {
		scaleInPlace(cm, beta)
		return ctxErr(ctx)
	}

	av := matrix.View{Rows: m, Cols: k, Stride: lda, Trans: transA.IsTrans(), Data: a}
	bv := matrix.View{Rows: k, Cols: n, Stride: ldb, Trans: transB.IsTrans(), Data: b}

	tbl := cfg.resolveAlgo(m, k, n)
	prodR := 7
	if tbl != nil {
		prodR = tbl.R
	}
	lanes, levels, dag := cfg.schedParams(prodR)
	sub := outer
	if sub == nil && dag {
		if cfg.Sched != nil {
			sub = cfg.Sched
		} else {
			sub = sched.Shared()
		}
	}
	cores := 0
	if sub != nil {
		cores = sub.Workers()
	}
	algoName := ""
	if tbl != nil {
		algoName = tbl.Name
	}
	e := &engine{
		kern:       cfg.kernel(),
		crit:       cfg.criterionCores(algoName, cores),
		sched:      cfg.Schedule,
		odd:        cfg.Odd,
		maxDepth:   cfg.MaxDepth,
		tracker:    cfg.Tracker,
		sub:        sub,
		schedLanes: lanes,
		tracer:     cfg.Tracer,
		prof:       phase.Active(),
		tbl:        tbl,
		ctx:        ctx,
	}
	if dag {
		e.schedLevels = levels
	}
	if st, ok := cfg.Tracer.(SpanTracer); ok {
		e.spans = st
	}
	if cfg.fusedMode() != FusedOff {
		if fk, ok := e.kern.(fusedKernel); ok {
			e.fk = fk
		}
	}
	switch {
	case e.tbl != nil:
		// Table-driven recursion (see table.go): generalized peeling only —
		// the pad strategies stay default-path, but the task DAG applies
		// (all R products of the table run as scheduler tasks).
		e.tableMul(cm, av, bv, alpha, beta, 0)
	case e.odd == OddPadStatic:
		e.staticPadMul(cm, av, bv, alpha, beta)
	default:
		e.mul(cm, av, bv, alpha, beta, 0)
	}
	return ctxErr(ctx)
}

// ctxErr adapts the optional context to the error DGEFMMCtx reports.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// Multiply is a convenience wrapper over DGEFMM for *matrix.Dense values:
// C ← alpha*op(A)*op(B) + beta*C.
func Multiply(cfg *Config, c *matrix.Dense, transA, transB blas.Transpose,
	alpha float64, a, b *matrix.Dense, beta float64) {
	m, k := a.Rows, a.Cols
	if transA.IsTrans() {
		m, k = k, m
	}
	kb, n := b.Rows, b.Cols
	if transB.IsTrans() {
		kb, n = n, kb
	}
	if kb != k {
		panic("strassen: Multiply: inner dimensions mismatch")
	}
	if c.Rows != m || c.Cols != n {
		panic("strassen: Multiply: output shape mismatch")
	}
	DGEFMM(cfg, transA, transB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}

func validate(transA, transB blas.Transpose, m, n, k, lda, ldb, ldc, rowsA, colsA, rowsB, colsB int, a, b, c []float64) {
	// Run the identical checks DGEMM performs, by calling it with alpha=0,
	// beta=1 so no arithmetic happens but every argument is vetted. This
	// guarantees DGEFMM accepts exactly the inputs DGEMM accepts.
	blas.Dgemm(transA, transB, m, n, k, 0, a, lda, b, ldb, 1, c, ldc)
}

// engine carries the resolved configuration through the recursion.
type engine struct {
	kern     blas.Kernel
	crit     Criterion
	sched    Schedule
	odd      OddStrategy
	maxDepth int
	tracker  *memtrack.Tracker
	// sub is the task runtime this call submits to (nil for a purely
	// sequential call): an external *sched.Runtime at the top, or the
	// executing *sched.Worker inside a product task so nested DAGs help on
	// the worker's own deque. schedLevels is the number of top recursion
	// levels expanded into task DAGs (0 when only the leaves may thread),
	// and schedLanes caps the products in flight per level via lane edges.
	// ctx, when non-nil, is polled between products for mid-execution
	// cancellation. See taskdag.go.
	sub         sched.Submitter
	schedLevels int
	schedLanes  int
	ctx         context.Context
	tracer      Tracer
	// spans is tracer narrowed to SpanTracer (nil when the tracer does not
	// record spans); curSpan is the innermost open span on this engine's
	// goroutine — worker engines copy it, so spans opened inside a parallel
	// product are parented under the "parallel" node that spawned them.
	spans   SpanTracer
	curSpan int64
	// prof is the process-wide phase profiler captured once per DGEFMM call
	// (nil when attribution is off). Worker engines copy it by value.
	prof *phase.Profiler
	// fk is the kernel narrowed to the fused hook interface (nil when the
	// kernel lacks the hooks or the fused mode is off); the auto schedule
	// routes its last levels through it. See fused.go.
	fk fusedKernel
	// tbl is the coefficient table driving a non-default recursion (nil on
	// the default path, where the hand-coded Winograd schedules run). See
	// table.go.
	tbl *algo.Table
}

// mul computes c ← alpha*a*b + beta*c where a is m×k and b is k×n (both as
// logical, possibly transposed, views). It applies the cutoff criterion,
// then the odd-dimension strategy, then one level of the selected schedule.
func (e *engine) mul(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || n == 0 || e.canceled() {
		return
	}
	if k == 0 || alpha == 0 {
		scaleInPlace(c, beta)
		return
	}
	recurse := m > 1 && k > 1 && n > 1 &&
		(e.maxDepth == 0 || depth < e.maxDepth) &&
		e.crit.Recurse(m, k, n)
	if !recurse {
		done := e.trace(depth, m, k, n, "base")
		e.baseGemm(c, a, b, alpha, beta)
		done()
		return
	}
	done := noopDone
	switch e.odd {
	case OddPadDynamic:
		if m&1|k&1|n&1 != 0 {
			done = e.trace(depth, m, k, n, "pad-dynamic")
		}
		e.padDynamicMul(c, a, b, alpha, beta, depth)
	case OddPeelFirst:
		if m&1|k&1|n&1 != 0 {
			done = e.trace(depth, m, k, n, "peel-first")
		}
		e.peelFirstMul(c, a, b, alpha, beta, depth)
	default: // OddPeel (and OddPadStatic below the pre-padded top level)
		if m&1|k&1|n&1 != 0 {
			done = e.trace(depth, m, k, n, "peel")
		}
		e.peelMul(c, a, b, alpha, beta, depth)
	}
	done()
}

// peelMul implements dynamic peeling (Section 3.3 and equation (9)): strip
// the odd row/column, apply one Strassen level to the even core, and repair
// the three border blocks with a DGER rank-one update and two DGEMV
// matrix-vector products.
func (e *engine) peelMul(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	me, ke, ne := m&^1, k&^1, n&^1

	coreA := a.Slice(0, 0, me, ke)
	coreB := b.Slice(0, 0, ke, ne)
	coreC := c.Slice(0, 0, me, ne)
	e.schedule(coreC, coreA, coreB, alpha, beta, depth)

	if k != ke {
		// C11 ← C11 + alpha * a12 * b21 : rank-one update with A's peeled
		// column and B's peeled row.
		done := e.trace(depth, m, k, n, "fixup-ger")
		s := e.prof.Begin(phase.StrassenPeel)
		x, incX := colVec(a, ke)
		y, incY := rowVec(b, ke)
		blas.Dger(me, ne, alpha, x, incX, y, incY, coreC.Data, coreC.Stride)
		s.End(2*int64(me)*int64(ne), 8*(int64(me)+int64(ne)+2*int64(me)*int64(ne)))
		done()
	}
	if n != ne {
		// c12 ← alpha * [A11 a12]·[b12; b22] + beta*c12 : the full first me
		// rows of op(A) (all k columns) times B's peeled column.
		done := e.trace(depth, m, k, n, "fixup-col")
		s := e.prof.Begin(phase.StrassenPeel)
		aTop := a.Slice(0, 0, me, k)
		x, incX := colVec(b, ne)
		e.gemvN(aTop, alpha, x, incX, beta, c.Data[ne*c.Stride:], 1)
		s.End(2*int64(me)*int64(k), 8*(int64(me)*int64(k)+int64(k)+2*int64(me)))
		done()
	}
	if m != me {
		// [c21 c22] ← alpha * [a21 a22]·B + beta*row : op(A)'s peeled row
		// times the whole of op(B), covering the bottom-right corner too.
		done := e.trace(depth, m, k, n, "fixup-row")
		s := e.prof.Begin(phase.StrassenPeel)
		x, incX := rowVec(a, me)
		e.gemvT(b, alpha, x, incX, beta, c.Data[me:], c.Stride)
		s.End(2*int64(k)*int64(n), 8*(int64(k)*int64(n)+int64(k)+2*int64(n)))
		done()
	}
}

// schedule applies exactly one level of the selected Strassen schedule to an
// all-even (m, k, n) problem.
func (e *engine) schedule(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if e.schedActive(depth) {
		done := e.trace(depth, m, k, n, "parallel")
		e.dagLevel(c, a, b, alpha, beta, depth)
		done()
		return
	}
	if e.fk != nil && e.sched == ScheduleAuto {
		if lv := e.fusedLevels(m, k, n, depth); lv > 0 {
			action := "fused1"
			if lv == 2 {
				action = "fused2"
			}
			done := e.trace(depth, m, k, n, action)
			e.fusedWinograd(c, a, b, alpha, beta, lv)
			done()
			return
		}
	}
	switch e.sched {
	case ScheduleOriginal:
		done := e.trace(depth, m, k, n, "original")
		e.original(c, a, b, alpha, beta, depth)
		done()
	case ScheduleStrassen1:
		if beta == 0 {
			done := e.trace(depth, m, k, n, "strassen1")
			e.strassen1(c, a, b, alpha, depth)
			done()
		} else {
			done := e.trace(depth, m, k, n, "strassen1")
			e.strassen1General(c, a, b, alpha, beta, depth)
			done()
		}
	case ScheduleStrassen2:
		done := e.trace(depth, m, k, n, "strassen2")
		e.strassen2(c, a, b, alpha, beta, depth)
		done()
	default: // ScheduleAuto: the paper's DGEFMM dispatch (Table 1 last row).
		if beta == 0 {
			done := e.trace(depth, m, k, n, "strassen1")
			e.strassen1(c, a, b, alpha, depth)
			done()
		} else {
			done := e.trace(depth, m, k, n, "strassen2")
			e.strassen2(c, a, b, alpha, beta, depth)
			done()
		}
	}
}

// baseGemm performs the standard-algorithm multiplication below the cutoff.
// With a multi-worker task runtime attached and a kernel that supports it,
// the leaf threads its MC loop through the runtime (see kernel.MulAddTasks):
// the adapter still routes through blas.DgemmKernel so argument validation
// and the beta pass stay identical to the sequential leaf.
func (e *engine) baseGemm(c *matrix.Dense, a, b matrix.View, alpha, beta float64) {
	ta, tb := blas.NoTrans, blas.NoTrans
	if a.Trans {
		ta = blas.Trans
	}
	if b.Trans {
		tb = blas.Trans
	}
	kern := e.kern
	if e.sub != nil && e.sub.Workers() > 1 {
		if tk, ok := kern.(taskLeafKernel); ok {
			kern = taskKernel{tk, e.sub, e.sub.Workers()}
		}
	}
	blas.DgemmKernel(kern, ta, tb, c.Rows, c.Cols, a.Cols, alpha,
		a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
}

// taskLeafKernel is the structural interface of a kernel whose leaf loop
// nest can run as scheduler tasks (kernel.Packed implements it).
type taskLeafKernel interface {
	blas.Kernel
	MulAddTasks(sub sched.Submitter, threads int, transA, transB blas.Transpose, m, n, k int, alpha float64,
		a []float64, lda int, b []float64, ldb int, c []float64, ldc int)
}

// taskKernel adapts a taskLeafKernel so its MulAdd threads through the
// engine's submitter; embedding forwards every other Kernel method.
type taskKernel struct {
	taskLeafKernel
	sub     sched.Submitter
	threads int
}

func (t taskKernel) MulAdd(transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	t.MulAddTasks(t.sub, t.threads, transA, transB, m, n, k, alpha, a, lda, b, ldb, c, ldc)
}

// gemvN computes y ← alpha*V*x + beta*y for a logical view V (y has V.Rows
// elements, x has V.Cols).
func (e *engine) gemvN(v matrix.View, alpha float64, x []float64, incX int, beta float64, y []float64, incY int) {
	if !v.Trans {
		blas.Dgemv(blas.NoTrans, v.Rows, v.Cols, alpha, v.Data, v.Stride, x, incX, beta, y, incY)
		return
	}
	// Storage holds Vᵀ (V.Cols × V.Rows): y = alpha*storageᵀ*x + beta*y.
	blas.Dgemv(blas.Trans, v.Cols, v.Rows, alpha, v.Data, v.Stride, x, incX, beta, y, incY)
}

// gemvT computes y ← alpha*Vᵀ*x + beta*y for a logical view V (y has V.Cols
// elements, x has V.Rows).
func (e *engine) gemvT(v matrix.View, alpha float64, x []float64, incX int, beta float64, y []float64, incY int) {
	if !v.Trans {
		blas.Dgemv(blas.Trans, v.Rows, v.Cols, alpha, v.Data, v.Stride, x, incX, beta, y, incY)
		return
	}
	blas.Dgemv(blas.NoTrans, v.Cols, v.Rows, alpha, v.Data, v.Stride, x, incX, beta, y, incY)
}

// colVec returns logical column j of a view as a strided vector.
func colVec(v matrix.View, j int) ([]float64, int) {
	if !v.Trans {
		return v.Data[j*v.Stride:], 1
	}
	return v.Data[j:], v.Stride
}

// rowVec returns logical row i of a view as a strided vector.
func rowVec(v matrix.View, i int) ([]float64, int) {
	if !v.Trans {
		return v.Data[i:], v.Stride
	}
	return v.Data[i*v.Stride:], 1
}

// allocMat takes an r×c scratch matrix from the tracker.
func (e *engine) allocMat(r, c int) *matrix.Dense {
	buf := e.tracker.Alloc(r * c)
	ld := r
	if ld < 1 {
		ld = 1
	}
	return matrix.FromColMajor(r, c, ld, buf)
}

// freeMat returns scratch to the tracker.
func (e *engine) freeMat(m *matrix.Dense) {
	e.tracker.Free(m.Data)
}

func scaleInPlace(c *matrix.Dense, beta float64) {
	switch beta {
	case 1:
	case 0:
		c.Zero()
	default:
		c.Scale(beta)
	}
}
