package strassen

import (
	"repro/internal/matrix"
	"repro/internal/phase"
)

// This file carries the phase-attribution brackets for the O(n²) parts of
// the recursion: the stage (1)/(2) S/T sum formation (phase
// strassen.addsub), the stage (4) combinations into C quadrants (phase
// strassen.quadrant), and the dynamic-peeling fixups (phase strassen.peel).
// The schedules call the ph* wrappers below instead of the raw matrix ops;
// each wrapper is one elementwise pass bracketed by a Begin/End pair, so
// with no profiler installed (e.prof == nil) the cost over the raw call is
// two nil checks — negligible against an mn-element sweep.
//
// FLOP convention (matches internal/opcount: one add or one multiply each
// count 1): a binary add/sub pass over an r×c destination is r·c FLOPs;
// AddSubAssign performs two combinations per element, 2·r·c; a copy is 0.
// Byte convention: 8 bytes per word touched — a binary pass reads two
// operands and writes one (24 B/elem), an in-place pass reads destination
// and operand and writes destination (24 B/elem), AddSubAssign reads three
// and writes one (32 B/elem), a copy reads one and writes one (16 B/elem).

const (
	phAS = phase.StrassenAddSub
	phQ  = phase.StrassenQuadrant
)

func elems(d *matrix.Dense) int64 { return int64(d.Rows) * int64(d.Cols) }

func (e *engine) phAdd(id phase.ID, dst *matrix.Dense, x, y matrix.View) {
	s := e.prof.Begin(id)
	matrix.Add(dst, x, y)
	s.End(elems(dst), 24*elems(dst))
}

func (e *engine) phSub(id phase.ID, dst *matrix.Dense, x, y matrix.View) {
	s := e.prof.Begin(id)
	matrix.Sub(dst, x, y)
	s.End(elems(dst), 24*elems(dst))
}

func (e *engine) phAddAssign(id phase.ID, dst *matrix.Dense, x matrix.View) {
	s := e.prof.Begin(id)
	matrix.AddAssign(dst, x)
	s.End(elems(dst), 24*elems(dst))
}

func (e *engine) phSubAssign(id phase.ID, dst *matrix.Dense, x matrix.View) {
	s := e.prof.Begin(id)
	matrix.SubAssign(dst, x)
	s.End(elems(dst), 24*elems(dst))
}

func (e *engine) phRevSubAssign(id phase.ID, dst *matrix.Dense, x matrix.View) {
	s := e.prof.Begin(id)
	matrix.RevSubAssign(dst, x)
	s.End(elems(dst), 24*elems(dst))
}

// phAddSubAssign brackets dst ← x − dst' + … (two combinations/element).
func (e *engine) phAddSubAssign(id phase.ID, dst *matrix.Dense, x, y matrix.View) {
	s := e.prof.Begin(id)
	matrix.AddSubAssign(dst, x, y)
	s.End(2*elems(dst), 32*elems(dst))
}

func (e *engine) phCopy(id phase.ID, dst, src *matrix.Dense) {
	s := e.prof.Begin(id)
	dst.CopyFrom(src)
	s.End(0, 16*elems(dst))
}

// axpbyFlops counts dst ← x + beta·dst at the schedules' call sites (the
// x coefficient is always 1 there): β=0 degenerates to a copy, β=1 to one
// add per element, and general β costs a multiply plus an add.
func axpbyFlops(beta float64, n int64) int64 {
	switch beta {
	case 0:
		return 0
	case 1:
		return n
	default:
		return 2 * n
	}
}

func (e *engine) phAxpby(id phase.ID, dst *matrix.Dense, x matrix.View, beta float64) {
	s := e.prof.Begin(id)
	matrix.Axpby(dst, 1, x, beta)
	bytes := 24 * elems(dst)
	if beta == 0 {
		bytes = 16 * elems(dst) // pure copy: dst is written, not read
	}
	s.End(axpbyFlops(beta, elems(dst)), bytes)
}

// phScaleQuads brackets the β pre-scale of the C quadrants (the original
// schedule applies β once up front so products accumulate with ±1).
func (e *engine) phScaleQuads(quads []*matrix.Dense, beta float64) {
	if beta == 1 {
		return
	}
	s := e.prof.Begin(phQ)
	var n int64
	for _, q := range quads {
		scaleInPlace(q, beta)
		n += elems(q)
	}
	if beta == 0 {
		s.End(0, 8*n) // Zero: write-only
	} else {
		s.End(n, 16*n) // Scale: one multiply per element, read+write
	}
}
