package strassen

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

// These tests verify the paper's Section 3.2 / Table 1 memory claims by
// *measuring* workspace high-water marks with the accounting allocator,
// rather than trusting the analytic bounds.

func measurePeak(t *testing.T, sched Schedule, m, k, n int, beta float64) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*31 + k*7 + n)))
	tr := memtrack.New()
	cfg := &Config{
		Kernel:    blas.NaiveKernel{},
		Criterion: Always{}, // recurse as deep as possible: worst case for memory
		Schedule:  sched,
		Odd:       OddPeel,
		MaxDepth:  6,
		Tracker:   tr,
	}
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, beta, c)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
		t.Fatalf("result wrong while measuring memory: %g", d)
	}
	if tr.Live() != 0 {
		t.Fatalf("workspace leak: %d words still live", tr.Live())
	}
	return tr.Peak()
}

func TestStrassen2MemoryBound(t *testing.T) {
	skipIfAlgoPinned(t)
	// STRASSEN2: extra space ≤ (mk + kn + mn)/3 — m² in the square case.
	for _, m := range []int{32, 64, 128} {
		peak := measurePeak(t, ScheduleStrassen2, m, m, m, 0.5)
		bound := int64(m * m)
		if peak > bound {
			t.Errorf("m=%d: STRASSEN2 peak %d exceeds paper bound %d", m, peak, bound)
		}
		// The bound should also be reasonably tight (> half used), or we're
		// not measuring what we think we are.
		if peak < bound/2 {
			t.Errorf("m=%d: peak %d suspiciously far below bound %d", m, peak, bound)
		}
	}
}

func TestStrassen2MemoryBoundRectangular(t *testing.T) {
	for _, dims := range [][3]int{{64, 32, 96}, {32, 128, 32}, {48, 48, 96}} {
		m, k, n := dims[0], dims[1], dims[2]
		peak := measurePeak(t, ScheduleStrassen2, m, k, n, 2)
		bound := int64(m*k+k*n+m*n) / 3
		if peak > bound {
			t.Errorf("dims=%v: STRASSEN2 peak %d exceeds bound %d", dims, peak, bound)
		}
	}
}

func TestStrassen1MemoryBound(t *testing.T) {
	skipIfAlgoPinned(t)
	// STRASSEN1 (β=0): extra space ≤ (m·max(k,n) + kn)/3 — 2m²/3 square.
	for _, m := range []int{32, 64, 128} {
		peak := measurePeak(t, ScheduleStrassen1, m, m, m, 0)
		bound := int64(2*m*m) / 3
		if peak > bound {
			t.Errorf("m=%d: STRASSEN1 peak %d exceeds paper bound %d (2m²/3)", m, peak, bound)
		}
		if peak < bound/2 {
			t.Errorf("m=%d: peak %d suspiciously below bound %d", m, peak, bound)
		}
	}
}

func TestStrassen1MemoryBoundRectangular(t *testing.T) {
	skipIfAlgoPinned(t)
	for _, dims := range [][3]int{{64, 32, 96}, {32, 128, 32}, {96, 48, 48}} {
		m, k, n := dims[0], dims[1], dims[2]
		peak := measurePeak(t, ScheduleStrassen1, m, k, n, 0)
		mx := k
		if n > mx {
			mx = n
		}
		bound := int64(m*mx+k*n) / 3
		if peak > bound {
			t.Errorf("dims=%v: STRASSEN1 peak %d exceeds bound %d", dims, peak, bound)
		}
	}
}

func TestAutoScheduleMemoryMatchesTable1(t *testing.T) {
	// DGEFMM (auto): 2m²/3 when β = 0, m² when β ≠ 0 — the last row of
	// Table 1 and the paper's headline memory claim. The claim is about
	// the Winograd schedules; a table algorithm pinned via DGEFMM_ALGO
	// has its own (larger) workspace model, covered by TestPlanForTables.
	if sel := (&Config{}).AlgoSelection(); sel != "default" && sel != AlgoAuto {
		t.Skipf("DGEFMM_ALGO pins %q; Table 1 bounds apply to the Winograd schedules", sel)
	}
	m := 96
	peak0 := measurePeak(t, ScheduleAuto, m, m, m, 0)
	if bound := int64(2*m*m) / 3; peak0 > bound {
		t.Errorf("auto β=0 peak %d exceeds 2m²/3 = %d", peak0, bound)
	}
	peak1 := measurePeak(t, ScheduleAuto, m, m, m, 1)
	if bound := int64(m * m); peak1 > bound {
		t.Errorf("auto β≠0 peak %d exceeds m² = %d", peak1, bound)
	}
	if peak0 >= peak1 {
		t.Errorf("β=0 path (%d) should use less memory than β≠0 path (%d)", peak0, peak1)
	}
}

func TestStrassen1GeneralBetaWithinTable1Bound(t *testing.T) {
	// Forced STRASSEN1 with β≠0 stays within the paper's 2m² (Table 1).
	m := 64
	peak := measurePeak(t, ScheduleStrassen1, m, m, m, 1)
	if bound := int64(2 * m * m); peak > bound {
		t.Errorf("STRASSEN1 β≠0 peak %d exceeds 2m² = %d", peak, bound)
	}
}

func TestPeelingAddsNoWorkspace(t *testing.T) {
	// Dynamic peeling's fixups are DGER/DGEMV on existing storage: an
	// odd-sized multiply must not allocate more than the even core does.
	evenPeak := measurePeak(t, ScheduleStrassen2, 64, 64, 64, 1)
	oddPeak := measurePeak(t, ScheduleStrassen2, 65, 65, 65, 1)
	if oddPeak > evenPeak {
		t.Errorf("peeling allocated extra workspace: odd %d > even %d", oddPeak, evenPeak)
	}
}

func TestDynamicPaddingUsesMoreMemoryThanPeeling(t *testing.T) {
	skipIfAlgoPinned(t)
	// The paper's motivation for peeling: "no additional memory is needed
	// when odd dimensions are encountered", unlike padding.
	m := 65
	rng := rand.New(rand.NewSource(99))
	peak := func(odd OddStrategy) int64 {
		tr := memtrack.New()
		cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Odd: odd, Tracker: tr}
		a := matrix.NewRandom(m, m, rng)
		b := matrix.NewRandom(m, m, rng)
		c := matrix.NewDense(m, m)
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		return tr.Peak()
	}
	if pPeel, pPad := peak(OddPeel), peak(OddPadDynamic); pPad <= pPeel {
		t.Errorf("expected dynamic padding (%d) to use more workspace than peeling (%d)", pPad, pPeel)
	}
}

func TestWorkspaceBoundCoversMeasuredPeaks(t *testing.T) {
	skipIfAlgoPinned(t)
	// The public accessor used to size batched per-worker arenas must
	// dominate every measured peak: WorkspaceBound is what internal/batch
	// asserts its arenas against, per worker, so it has to agree with the
	// memtrack measurements here, per call.
	for _, sched := range []Schedule{ScheduleAuto, ScheduleStrassen1, ScheduleStrassen2} {
		for _, dims := range [][3]int{{64, 64, 64}, {96, 96, 96}, {64, 32, 96}, {65, 65, 65}} {
			m, k, n := dims[0], dims[1], dims[2]
			for _, beta := range []float64{0, 0.5} {
				peak := measurePeak(t, sched, m, k, n, beta)
				bound := WorkspaceBound(sched, m, k, n, beta == 0)
				if peak > bound {
					t.Errorf("sched=%v dims=%v beta=%g: measured peak %d exceeds WorkspaceBound %d",
						sched, dims, beta, peak, bound)
				}
			}
		}
	}
	// And the square closed forms of Table 1 are exactly what it returns.
	if got, want := WorkspaceBound(ScheduleAuto, 96, 96, 96, true), int64(2*96*96)/3; got != want {
		t.Errorf("β=0 square bound = %d, want 2m²/3 = %d", got, want)
	}
	if got, want := WorkspaceBound(ScheduleAuto, 96, 96, 96, false), int64(96*96); got != want {
		t.Errorf("β≠0 square bound = %d, want m² = %d", got, want)
	}
}

func TestTrackerReuseAcrossLevels(t *testing.T) {
	// The recursion must recycle temporaries instead of re-allocating.
	rng := rand.New(rand.NewSource(100))
	tr := memtrack.New()
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Tracker: tr}
	m := 64
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if tr.Reused() == 0 {
		t.Error("expected workspace reuse across sibling recursive calls")
	}
}
