package strassen_test

import (
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/opcount"
	"repro/internal/phase"
	"repro/internal/strassen"
)

// The acceptance check of the attribution subsystem: the FLOPs the phase
// counters measure during a real multiply must equal the analytic
// per-phase decomposition in internal/opcount, exactly — not within a
// tolerance. Power-of-two shapes with MaxDepth pin the recursion so the
// analytic side is well defined (no peeling, all leaves even).
func TestPhaseCountersMatchAnalyticCounts(t *testing.T) {
	if sel := (&strassen.Config{}).AlgoSelection(); sel != "default" {
		t.Skipf("DGEFMM_ALGO pins %q; this test asserts the Winograd schedules' counts", sel)
	}
	if !phase.Enabled {
		t.Skip("phase accounting compiled out (-tags phaseoff)")
	}
	for _, tc := range []struct{ n, depth int }{
		{128, 1}, {128, 2}, {256, 2}, {256, 3},
	} {
		prof := &phase.Profiler{}
		prev := phase.SetActive(prof)

		rng := rand.New(rand.NewSource(7))
		a := matrix.NewRandom(tc.n, tc.n, rng)
		b := matrix.NewRandom(tc.n, tc.n, rng)
		c := matrix.NewDense(tc.n, tc.n)
		cfg := &strassen.Config{
			Schedule:  strassen.ScheduleStrassen1,
			Criterion: strassen.Always{},
			MaxDepth:  tc.depth,
		}
		strassen.Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
		phase.SetActive(prev)

		snap := prof.Snapshot()
		want := opcount.Strassen1Counts(tc.depth, tc.n, tc.n, tc.n)
		mul := snap[phase.KernelMicro].Flops + snap[phase.KernelFringe].Flops
		if mul != want.Mul {
			t.Errorf("n=%d d=%d: kernel micro+fringe FLOPs = %d, analytic %d",
				tc.n, tc.depth, mul, want.Mul)
		}
		if got := snap[phase.StrassenAddSub].Flops; got != want.AddSub {
			t.Errorf("n=%d d=%d: addsub FLOPs = %d, analytic %d",
				tc.n, tc.depth, got, want.AddSub)
		}
		if got := snap[phase.StrassenQuadrant].Flops; got != want.Quadrant {
			t.Errorf("n=%d d=%d: quadrant FLOPs = %d, analytic %d",
				tc.n, tc.depth, got, want.Quadrant)
		}
		if got := snap[phase.StrassenPeel].Flops; got != 0 {
			t.Errorf("n=%d d=%d: peel FLOPs = %d on even shapes", tc.n, tc.depth, got)
		}
	}
}

// The table-driven recursion carries the same attribution contract as the
// hand-coded schedules: measured per-phase FLOPs equal opcount.TableCounts
// exactly, for every non-default built-in table, on grid-divisible shapes
// with the depth pinned and fusion off (the analytic model's validity
// window).
func TestTablePhaseCountersMatchAnalytic(t *testing.T) {
	if !phase.Enabled {
		t.Skip("phase accounting compiled out (-tags phaseoff)")
	}
	for _, tc := range []struct {
		algo    string
		m, k, n int
		depth   int
	}{
		{"classic", 16, 16, 16, 2},
		{"323", 18, 8, 18, 1},
		{"323", 18, 8, 18, 2},
		{"333", 18, 18, 18, 2},
		{"424", 32, 8, 32, 2},
	} {
		tbl, ok := algo.ByName(tc.algo)
		if !ok {
			t.Fatalf("table %s not registered", tc.algo)
		}
		prof := &phase.Profiler{}
		prev := phase.SetActive(prof)

		rng := rand.New(rand.NewSource(13))
		a := matrix.NewRandom(tc.m, tc.k, rng)
		b := matrix.NewRandom(tc.k, tc.n, rng)
		c := matrix.NewDense(tc.m, tc.n)
		cfg := &strassen.Config{
			Criterion: strassen.Always{},
			MaxDepth:  tc.depth,
			Fused:     strassen.FusedOff,
			Algo:      tc.algo,
		}
		strassen.Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
		phase.SetActive(prev)

		snap := prof.Snapshot()
		want := opcount.TableCounts(tbl, tc.depth, tc.m, tc.k, tc.n)
		mul := snap[phase.KernelMicro].Flops + snap[phase.KernelFringe].Flops
		if mul != want.Mul {
			t.Errorf("%s (%d,%d,%d) d=%d: kernel FLOPs = %d, analytic %d",
				tc.algo, tc.m, tc.k, tc.n, tc.depth, mul, want.Mul)
		}
		if got := snap[phase.StrassenAddSub].Flops; got != want.AddSub {
			t.Errorf("%s (%d,%d,%d) d=%d: addsub FLOPs = %d, analytic %d",
				tc.algo, tc.m, tc.k, tc.n, tc.depth, got, want.AddSub)
		}
		if got := snap[phase.StrassenQuadrant].Flops; got != want.Quadrant {
			t.Errorf("%s (%d,%d,%d) d=%d: quadrant FLOPs = %d, analytic %d",
				tc.algo, tc.m, tc.k, tc.n, tc.depth, got, want.Quadrant)
		}
		if got := snap[phase.StrassenPeel].Flops; got != 0 {
			t.Errorf("%s (%d,%d,%d) d=%d: peel FLOPs = %d on divisible shapes",
				tc.algo, tc.m, tc.k, tc.n, tc.depth, got)
		}
	}
}

// With no profiler installed, a multiply must leave no trace — the
// uninstrumented path is the default and must stay silent.
func TestNoProfilerRecordsNothing(t *testing.T) {
	prof := &phase.Profiler{}
	// Deliberately NOT installed via SetActive.
	rng := rand.New(rand.NewSource(3))
	a := matrix.NewRandom(64, 64, rng)
	b := matrix.NewRandom(64, 64, rng)
	c := matrix.NewDense(64, 64)
	strassen.Multiply(nil, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
	for _, st := range prof.Snapshot() {
		if st.Count != 0 {
			t.Fatalf("uninstalled profiler accumulated %+v", st)
		}
	}
}

// The result of a multiply must be bit-identical with and without the
// profiler installed: attribution observes, never perturbs.
func TestProfilerDoesNotPerturbResults(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := matrix.NewRandom(96, 80, rng)
	b := matrix.NewRandom(80, 112, rng)
	c1 := matrix.NewDense(96, 112)
	c2 := matrix.NewDense(96, 112)

	strassen.Multiply(nil, c1, blas.NoTrans, blas.NoTrans, 1, a, b, 0)

	prof := &phase.Profiler{}
	prev := phase.SetActive(prof)
	strassen.Multiply(nil, c2, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
	phase.SetActive(prev)

	for i := range c1.Data {
		if c1.Data[i] != c2.Data[i] {
			t.Fatalf("element %d differs: %g vs %g", i, c1.Data[i], c2.Data[i])
		}
	}
	if phase.Enabled && prof.Snapshot()[phase.KernelMicro].Count == 0 {
		t.Fatal("profiler installed but kernel.micro saw no samples")
	}
}
