package strassen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

// FuzzPeel fuzzes the odd-dimension machinery: arbitrary (biased-odd) shapes
// through both peeling strategies and all schedules must agree with the
// naive reference within the depth-scaled tolerance, and the peel fixups
// must never allocate beyond the even core's workspace. The seed corpus in
// testdata/fuzz/FuzzPeel pins fully-odd, mixed-parity and degenerate shapes.
func FuzzPeel(f *testing.F) {
	f.Add(int64(1), byte(65), byte(65), byte(65), byte(0), byte(0), 0.0)
	f.Add(int64(2), byte(33), byte(96), byte(57), byte(1), byte(1), 1.5)
	f.Add(int64(3), byte(17), byte(3), byte(81), byte(2), byte(0), -0.5)
	f.Add(int64(4), byte(63), byte(64), byte(63), byte(3), byte(1), 1.0)
	f.Add(int64(5), byte(2), byte(95), byte(1), byte(0), byte(1), 0.25)
	f.Fuzz(func(t *testing.T, seed int64, mb, kb, nb, schedb, oddb byte, beta float64) {
		skipIfAlgoPinned(t)
		m, k, n := int(mb)%96+1, int(kb)%96+1, int(nb)%96+1
		sched := []Schedule{ScheduleAuto, ScheduleStrassen1, ScheduleStrassen2, ScheduleOriginal}[int(schedb)%4]
		odd := []OddStrategy{OddPeel, OddPeelFirst}[int(oddb)%2]
		if math.IsNaN(beta) || math.IsInf(beta, 0) {
			beta = 1
		}
		beta = math.Remainder(beta, 4)

		rng := rand.New(rand.NewSource(seed))
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(k, n, rng)
		c := matrix.NewRandom(m, n, rng)
		want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, beta, c)

		tr := memtrack.New()
		cfg := &Config{
			Kernel:    blas.NaiveKernel{},
			Criterion: Simple{Tau: 8},
			Schedule:  sched,
			Odd:       odd,
			Tracker:   tr,
		}
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1,
			a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)

		// Error bound: base tolerance scaled by Higham's 6^d growth for the
		// depth Simple{Tau: 8} reaches, with headroom for β.
		depth := 0
		for mm, kk, nn := m, k, n; mm > 8 && kk > 8 && nn > 8; depth++ {
			mm, kk, nn = mm/2, kk/2, nn/2
		}
		bound := tol(k) * math.Pow(6, float64(depth)) * (math.Abs(beta) + 1)
		if d := matrix.MaxAbsDiff(c, want); !(d <= bound) {
			t.Fatalf("m=%d k=%d n=%d sched=%v odd=%v β=%g: |Δ|=%g exceeds %g",
				m, k, n, sched, odd, beta, d, bound)
		}

		// Peeling must not allocate beyond the even core (the paper's claim
		// that odd fixups need no workspace), and nothing may leak.
		if tr.Live() != 0 {
			t.Fatalf("workspace leak: %d words live", tr.Live())
		}
		if peak, lim := tr.Peak(), WorkspaceBound(sched, m, k, n, beta == 0); peak > lim {
			t.Fatalf("m=%d k=%d n=%d sched=%v odd=%v β=%g: peak %d exceeds analytic bound %d",
				m, k, n, sched, odd, beta, peak, lim)
		}
	})
}
