package strassen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

// --- Record-table algebra -------------------------------------------------

// applyFusedRecords executes a record table naively — materialize Ã and B̃,
// multiply exactly, accumulate coeff·M into each destination — over a g×g
// block partition of small integer matrices, where float64 arithmetic is
// exact. Any algebra error in the tables produces an integer difference.
func applyFusedRecords(recs []fusedRecord, g int, a, b *matrix.Dense) *matrix.Dense {
	mq, kq, nq := a.Rows/g, a.Cols/g, b.Cols/g
	c := matrix.NewDense(a.Rows, b.Cols)
	for _, rec := range recs {
		at := matrix.NewDense(mq, kq)
		for _, t := range rec.a {
			for j := 0; j < kq; j++ {
				for i := 0; i < mq; i++ {
					at.Set(i, j, at.At(i, j)+t.g*a.At(t.r*mq+i, t.c*kq+j))
				}
			}
		}
		bt := matrix.NewDense(kq, nq)
		for _, t := range rec.b {
			for j := 0; j < nq; j++ {
				for i := 0; i < kq; i++ {
					bt.Set(i, j, bt.At(i, j)+t.g*b.At(t.r*kq+i, t.c*nq+j))
				}
			}
		}
		for _, t := range rec.dst {
			for j := 0; j < nq; j++ {
				for i := 0; i < mq; i++ {
					var dot float64
					for l := 0; l < kq; l++ {
						dot += at.At(i, l) * bt.At(l, j)
					}
					c.Set(t.r*mq+i, t.c*nq+j, c.At(t.r*mq+i, t.c*nq+j)+t.g*dot)
				}
			}
		}
	}
	return c
}

// intRandom fills a matrix with small integers so every product and sum in
// the record-table check is exact in float64.
func intRandom(rows, cols int, rng *rand.Rand) *matrix.Dense {
	m := matrix.NewDense(rows, cols)
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			m.Set(i, j, float64(rng.Intn(19)-9))
		}
	}
	return m
}

// TestFusedTablesExact verifies the one-level (7-record) and composed
// two-level (49-record) Strassen tables reproduce the plain product exactly
// on integer matrices — the algebraic correctness of the coefficient data
// the fused driver streams to the kernel.
func TestFusedTablesExact(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	cases := []struct {
		recs []fusedRecord
		g    int
		dims [3]int
	}{
		{fusedLevel1, 2, [3]int{8, 6, 10}},
		{fusedLevel1, 2, [3]int{2, 2, 2}},
		{fusedLevel2, 4, [3]int{16, 12, 8}},
		{fusedLevel2, 4, [3]int{4, 4, 4}},
	}
	for _, tc := range cases {
		m, k, n := tc.dims[0], tc.dims[1], tc.dims[2]
		a := intRandom(m, k, rng)
		b := intRandom(k, n, rng)
		got := applyFusedRecords(tc.recs, tc.g, a, b)
		want := matrix.NewDense(m, n)
		blas.NaiveKernel{}.MulAdd(blas.NoTrans, blas.NoTrans, m, n, k, 1,
			a.Data, a.Stride, b.Data, b.Stride, want.Data, want.Stride)
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				if got.At(i, j) != want.At(i, j) {
					t.Fatalf("%d records g=%d dims=%v: exact mismatch at (%d,%d): %g vs %g",
						len(tc.recs), tc.g, tc.dims, i, j, got.At(i, j), want.At(i, j))
				}
			}
		}
	}
}

// TestFusedLevel2Shape pins the composed table's structural invariants: 49
// records, every operand and destination list within the kernel's 4-term
// capacity, all coefficients ±1.
func TestFusedLevel2Shape(t *testing.T) {
	if len(fusedLevel2) != 49 {
		t.Fatalf("len(fusedLevel2) = %d, want 49", len(fusedLevel2))
	}
	check := func(kind string, ts []fusedTerm) {
		if len(ts) == 0 || len(ts) > 4 {
			t.Fatalf("%s has %d terms, want 1..4", kind, len(ts))
		}
		for _, x := range ts {
			if x.g != 1 && x.g != -1 {
				t.Fatalf("%s coefficient %g, want ±1", kind, x.g)
			}
			if x.r < 0 || x.r > 3 || x.c < 0 || x.c > 3 {
				t.Fatalf("%s grid position (%d,%d) outside 4×4", kind, x.r, x.c)
			}
		}
	}
	for _, rec := range fusedLevel2 {
		check("a", rec.a)
		check("b", rec.b)
		check("dst", rec.dst)
	}
}

// --- Mode resolution ------------------------------------------------------

func TestParseFusedMode(t *testing.T) {
	for in, want := range map[string]FusedMode{
		"": FusedAuto, "auto": FusedAuto, "on": FusedOn, "off": FusedOff,
		" ON ": FusedOn, "Off": FusedOff,
	} {
		got, err := ParseFusedMode(in)
		if err != nil || got != want {
			t.Errorf("ParseFusedMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseFusedMode("bogus"); err == nil {
		t.Error("ParseFusedMode(bogus) succeeded, want error")
	}
}

// TestFusedModePrecedence: an explicit Config.Fused beats DGEFMM_FUSED,
// which beats auto-detection — the PR 5 dispatch-policy ordering.
func TestFusedModePrecedence(t *testing.T) {
	cases := []struct {
		cfg  FusedMode
		env  string
		want FusedMode
	}{
		{FusedAuto, "", FusedAuto},
		{FusedAuto, "auto", FusedAuto},
		{FusedAuto, "on", FusedOn},
		{FusedAuto, "off", FusedOff},
		{FusedOn, "off", FusedOn},
		{FusedOff, "on", FusedOff},
	}
	for _, tc := range cases {
		cfg := &Config{Fused: tc.cfg}
		if got := cfg.fusedModeFor(tc.env); got != tc.want {
			t.Errorf("Fused=%v env=%q: mode %v, want %v", tc.cfg, tc.env, got, tc.want)
		}
	}
	if normalizeEnvFused("bogus") != "" {
		t.Error("normalizeEnvFused(bogus) should be ignored")
	}
	if normalizeEnvFused(" On ") != "on" {
		t.Error("normalizeEnvFused should trim and lowercase")
	}
}

// TestFusedActive: active exactly when the mode is not off, the schedule is
// auto, and the kernel implements the hooks.
func TestFusedActive(t *testing.T) {
	if env := envFused(); env != "" {
		// envFused latches on first read, so t.Setenv cannot restore
		// auto-detection once the process env pins a mode; the CI fused
		// legs run this suite under DGEFMM_FUSED=on and =off.
		t.Skipf("DGEFMM_FUSED=%s overrides the auto-detection under test", env)
	}
	pk := &kernel.Packed{}
	if !(&Config{Kernel: pk}).FusedActive() {
		t.Error("packed kernel + auto schedule should be fused-active")
	}
	if (&Config{Kernel: pk, Fused: FusedOff}).FusedActive() {
		t.Error("FusedOff must deactivate")
	}
	if (&Config{Kernel: pk, Schedule: ScheduleStrassen1}).FusedActive() {
		t.Error("pinned schedule must deactivate")
	}
	if (&Config{Kernel: blas.NaiveKernel{}}).FusedActive() {
		t.Error("hook-less kernel must deactivate")
	}
}

// --- Engagement and differential ------------------------------------------

// fusedTestConfig returns a config whose criterion puts 64×64×64 exactly two
// levels above the cutoff, so the fused driver replaces the whole recursion
// with the two-level table (and one level for 32). The kernel pins the
// scalar tile: its write-out serves the two-level table's 4-way fan-out
// natively (FusedDestLimit 4), so two-level engagement is deterministic on
// every host — the SIMD tile's dual-scatter limit of 2 would gate it.
func fusedTestConfig(mode FusedMode) (*Config, *kernel.Packed) {
	pk := &kernel.Packed{MC: 16, KC: 12, NC: 16, Mode: kernel.ModeScalar}
	return &Config{Kernel: pk, Criterion: Simple{Tau: 16}, Fused: mode}, pk
}

// TestFusedEngagementTrace: the trace shows fused1/fused2 exactly where the
// criterion predicts, the kernel counts the fused calls, and pinned
// schedules or FusedOff never engage.
func TestFusedEngagementTrace(t *testing.T) {
	skipIfAlgoPinned(t)
	rng := rand.New(rand.NewSource(61))
	run := func(mode FusedMode, sched Schedule, n int) (*CountTracer, *kernel.Packed) {
		cfg, pk := fusedTestConfig(mode)
		cfg.Schedule = sched
		tr := NewCountTracer()
		cfg.Tracer = tr
		a := matrix.NewRandom(n, n, rng)
		b := matrix.NewRandom(n, n, rng)
		c := matrix.NewDense(n, n)
		Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
		return tr, pk
	}

	if tr, pk := run(FusedOn, ScheduleAuto, 64); tr.Count("fused2") != 1 || pk.FusedCounters() != 49 {
		t.Errorf("n=64: fused2 events=%d kernel calls=%d, want 1/49",
			tr.Count("fused2"), pk.FusedCounters())
	}
	if tr, pk := run(FusedOn, ScheduleAuto, 32); tr.Count("fused1") != 1 || pk.FusedCounters() != 7 {
		t.Errorf("n=32: fused1 events=%d kernel calls=%d, want 1/7",
			tr.Count("fused1"), pk.FusedCounters())
	}
	// Auto-detection engages the same way — only assertable when the
	// process env leaves auto in charge (see TestFusedActive).
	if envFused() == "" {
		if tr, pk := run(FusedAuto, ScheduleAuto, 64); tr.Count("fused2") != 1 || pk.FusedCounters() != 49 {
			t.Errorf("n=64 auto: fused2 events=%d kernel calls=%d, want 1/49",
				tr.Count("fused2"), pk.FusedCounters())
		}
	}
	if tr, pk := run(FusedOff, ScheduleAuto, 64); tr.Count("fused1")+tr.Count("fused2") != 0 || pk.FusedCounters() != 0 {
		t.Errorf("FusedOff engaged: events=%d calls=%d", tr.Count("fused2"), pk.FusedCounters())
	}
	if tr, pk := run(FusedOn, ScheduleStrassen1, 64); tr.Count("fused1")+tr.Count("fused2") != 0 || pk.FusedCounters() != 0 {
		t.Errorf("pinned strassen1 engaged fused: events=%d calls=%d", tr.Count("fused2"), pk.FusedCounters())
	}
	// Odd sizes peel first, then the even core fuses.
	if tr, pk := run(FusedOn, ScheduleAuto, 65); tr.Count("peel") == 0 || pk.FusedCounters() == 0 {
		t.Errorf("n=65: want peel + fused, got peel=%d calls=%d", tr.Count("peel"), pk.FusedCounters())
	}
}

// TestFusedDestLimitGatesLevel2: a kernel whose write-out fan-out limit is
// below the two-level table's 4 (the SIMD dual-scatter tile) must not fuse
// two levels — it runs a materialized level and each child fuses its last
// level instead.
func TestFusedDestLimitGatesLevel2(t *testing.T) {
	skipIfAlgoPinned(t)
	pk := &kernel.Packed{MC: 16, KC: 12, NC: 16, Mode: kernel.ModeSIMD}
	if pk.FusedDestLimit() >= 4 {
		t.Skip("host has no SIMD dual-scatter tile; limit gate not reachable")
	}
	cfg := &Config{Kernel: pk, Criterion: Simple{Tau: 16}, Fused: FusedOn}
	tr := NewCountTracer()
	cfg.Tracer = tr
	rng := rand.New(rand.NewSource(62))
	n := 64
	a := matrix.NewRandom(n, n, rng)
	b := matrix.NewRandom(n, n, rng)
	c := matrix.NewDense(n, n)
	Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
	if tr.Count("fused2") != 0 {
		t.Errorf("dest-limited kernel fused two levels: %d events", tr.Count("fused2"))
	}
	if tr.Count("fused1") != 7 || pk.FusedCounters() != 49 {
		t.Errorf("want materialized level + 7 fused1 children (49 kernel calls), got fused1=%d calls=%d",
			tr.Count("fused1"), pk.FusedCounters())
	}
}

// TestFusedDifferential compares the fused driver against the unfused
// materialized schedules and the naive oracle across shapes (odd dims force
// peel interplay), transposes, alpha and beta. Fused runs Strassen's 1969
// construction where unfused runs Winograd's, so equality is numerical, not
// bitwise: both must sit within a forward-error band of the oracle, and
// within each other by the same margin.
func TestFusedDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	shapes := [][3]int{
		{64, 64, 64},   // two fused levels, exact quads
		{32, 32, 32},   // one fused level
		{65, 33, 97},   // peeling above the fused core
		{48, 96, 24},   // rectangular
		{66, 34, 62},   // even but ragged halves
		{128, 64, 128}, // materialized level above a fused level
	}
	for _, ta := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			for _, s := range shapes {
				m, k, n := s[0], s[1], s[2]
				for _, beta := range []float64{0, 1.25} {
					alpha := -1.5
					ar, ac := m, k
					if ta.IsTrans() {
						ar, ac = k, m
					}
					br, bc := k, n
					if tb.IsTrans() {
						br, bc = n, k
					}
					a := matrix.NewRandom(ar, ac, rng)
					b := matrix.NewRandom(br, bc, rng)
					c0 := matrix.NewRandom(m, n, rng)

					fused := c0.Clone()
					cfgOn, _ := fusedTestConfig(FusedOn)
					DGEFMM(cfgOn, ta, tb, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, fused.Data, fused.Stride)

					unfused := c0.Clone()
					cfgOff, _ := fusedTestConfig(FusedOff)
					DGEFMM(cfgOff, ta, tb, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, unfused.Data, unfused.Stride)

					oracle := c0.Clone()
					blas.Dgemm(ta, tb, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, oracle.Data, oracle.Stride)

					// Strassen's error bound grows by a constant factor per
					// level; inputs are O(1), so an absolute band scaled by k
					// covers both drivers and their difference.
					tol := 1e-12 * float64(k+8)
					for j := 0; j < n; j++ {
						for i := 0; i < m; i++ {
							if d := math.Abs(fused.At(i, j) - oracle.At(i, j)); d > tol {
								t.Fatalf("ta=%v tb=%v %v beta=%g: |fused-oracle|=%g > %g at (%d,%d)",
									ta, tb, s, beta, d, tol, i, j)
							}
							if d := math.Abs(fused.At(i, j) - unfused.At(i, j)); d > tol {
								t.Fatalf("ta=%v tb=%v %v beta=%g: |fused-unfused|=%g > %g at (%d,%d)",
									ta, tb, s, beta, d, tol, i, j)
							}
						}
					}
				}
			}
		}
	}
}

// TestFusedPlanMatchesMeasured is the acceptance invariant: with the fused
// driver active, Plan.Words and Plan.KernelWords still equal the measured
// memtrack peaks exactly — a fused level allocates no Strassen temporaries
// and exactly the kernel's two packed panels.
func TestFusedPlanMatchesMeasured(t *testing.T) {
	shapes := [][3]int{{64, 64, 64}, {32, 32, 32}, {65, 33, 97}, {48, 96, 24}, {128, 64, 128}, {96, 17, 80}}
	for _, mode := range []FusedMode{FusedAuto, FusedOn, FusedOff} {
		for _, s := range shapes {
			m, k, n := s[0], s[1], s[2]
			for _, beta := range []float64{0, 0.5} {
				rng := rand.New(rand.NewSource(int64(m + k + n)))
				pk := &kernel.Packed{MC: 16, KC: 12, NC: 16}
				arena := memtrack.New()
				pk.SetArena(arena)
				tr := memtrack.New()
				run := &Config{Kernel: pk, Criterion: Simple{Tau: 16}, Fused: mode, Tracker: tr}
				a := matrix.NewRandom(m, k, rng)
				b := matrix.NewRandom(k, n, rng)
				c := matrix.NewRandom(m, n, rng)
				DGEFMM(run, blas.NoTrans, blas.NoTrans, m, n, k, 1,
					a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
				cfg := &Config{Kernel: pk, Criterion: Simple{Tau: 16}, Fused: mode}
				plan := PlanFor(cfg, m, n, k, beta == 0)
				if got, want := plan.Words, tr.Peak(); got != want {
					t.Errorf("mode=%v dims=%v beta=%g: plan words %d != measured peak %d",
						mode, s, beta, got, want)
				}
				if got, want := plan.KernelWords, arena.Peak(); got != want {
					t.Errorf("mode=%v dims=%v beta=%g: plan kernel words %d != arena peak %d",
						mode, s, beta, got, want)
				}
				if live := arena.Live(); live != 0 {
					t.Errorf("mode=%v dims=%v: %d kernel words leaked", mode, s, live)
				}
			}
		}
	}
}

// TestFusedNoTemporaries pins the headline property: a multiply served
// entirely by the fused driver allocates zero Strassen workspace words.
func TestFusedNoTemporaries(t *testing.T) {
	skipIfAlgoPinned(t)
	rng := rand.New(rand.NewSource(63))
	cfg, _ := fusedTestConfig(FusedOn)
	tr := memtrack.New()
	cfg.Tracker = tr
	n := 64
	a := matrix.NewRandom(n, n, rng)
	b := matrix.NewRandom(n, n, rng)
	c := matrix.NewDense(n, n)
	Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
	if tr.Peak() != 0 {
		t.Errorf("fully fused multiply drew %d Strassen workspace words, want 0", tr.Peak())
	}
}
