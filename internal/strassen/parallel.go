package strassen

import (
	"sync"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// This file implements the task-parallel Winograd schedule — the paper's
// Section 5 future-work item ("extend our implementation to use ...
// parallelism") realized at the algorithm level: once the stage (1)/(2)
// sums S1..S4 and T1..T4 are formed, the seven products P1..P7 are
// mutually independent and can run concurrently, each recursing with the
// sequential memory-lean schedules below.
//
// The price is workspace: the products need their own buffers instead of
// sharing three temporaries, costing mk/2 + kn/2 + 7mn/4 words at each
// parallel level (close to the "straightforward implementation" figure the
// paper's Section 3.2 starts from). The parallel schedule is therefore
// applied only at the top ParallelLevels levels.

// parallelWinograd computes C ← alpha·A·B + beta·C with one level of the
// task-parallel Winograd schedule. All dimensions must be even.
func (e *engine) parallelWinograd(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	m2, k2, n2 := m/2, k/2, n/2

	a11 := a.Slice(0, 0, m2, k2)
	a12 := a.Slice(0, k2, m2, k2)
	a21 := a.Slice(m2, 0, m2, k2)
	a22 := a.Slice(m2, k2, m2, k2)
	b11 := b.Slice(0, 0, k2, n2)
	b12 := b.Slice(0, n2, k2, n2)
	b21 := b.Slice(k2, 0, k2, n2)
	b22 := b.Slice(k2, n2, k2, n2)
	c11 := c.Slice(0, 0, m2, n2)
	c12 := c.Slice(0, n2, m2, n2)
	c21 := c.Slice(m2, 0, m2, n2)
	c22 := c.Slice(m2, n2, m2, n2)

	// Stage (1)/(2) sums into fresh buffers (S2 and S4 share a buffer with
	// S1's chain in the sequential schedules; here every operand of a
	// concurrent product must be independent).
	s1 := e.allocMat(m2, k2)
	s2 := e.allocMat(m2, k2)
	s3 := e.allocMat(m2, k2)
	s4 := e.allocMat(m2, k2)
	t1 := e.allocMat(k2, n2)
	t2 := e.allocMat(k2, n2)
	t3 := e.allocMat(k2, n2)
	t4 := e.allocMat(k2, n2)
	defer func() {
		for _, mt := range []*matrix.Dense{s1, s2, s3, s4, t1, t2, t3, t4} {
			e.freeMat(mt)
		}
	}()
	e.phAdd(phAS, s1, a21, a22)
	e.phSub(phAS, s2, matrix.ViewOf(s1), a11)
	e.phSub(phAS, s3, a11, a21)
	e.phSub(phAS, s4, a12, matrix.ViewOf(s2))
	e.phSub(phAS, t1, b12, b11)
	e.phSub(phAS, t2, b22, matrix.ViewOf(t1))
	e.phSub(phAS, t3, b22, b12)
	e.phSub(phAS, t4, matrix.ViewOf(t2), b21)

	p := make([]*matrix.Dense, 7)
	for i := range p {
		p[i] = e.allocMat(m2, n2)
	}
	defer func() {
		for _, mt := range p {
			e.freeMat(mt)
		}
	}()

	// The seven independent products (alpha folded in, β=0).
	tasks := []struct {
		dst  *matrix.Dense
		l, r matrix.View
	}{
		{p[0], a11, b11},                             // P1
		{p[1], a12, b21},                             // P2
		{p[2], matrix.ViewOf(s4), b22},               // P3
		{p[3], a22, matrix.ViewOf(t4)},               // P4
		{p[4], matrix.ViewOf(s1), matrix.ViewOf(t1)}, // P5
		{p[5], matrix.ViewOf(s2), matrix.ViewOf(t2)}, // P6
		{p[6], matrix.ViewOf(s3), matrix.ViewOf(t3)}, // P7
	}

	sem := make(chan struct{}, e.parallel)
	var wg sync.WaitGroup
	for _, task := range tasks {
		wg.Add(1)
		sem <- struct{}{}
		go func(dst *matrix.Dense, l, r matrix.View) {
			defer wg.Done()
			defer func() { <-sem }()
			sub := e.workerEngine()
			sub.mul(dst, l, r, alpha, 0, depth+1)
		}(task.dst, task.l, task.r)
	}
	wg.Wait()

	// Stage (4) combinations (sequential; O(n²)).
	v := func(i int) matrix.View { return matrix.ViewOf(p[i]) }
	e.phAddAssign(phQ, p[5], v(0))  // P6 ← U2 = P1+P6
	e.phAddAssign(phQ, p[6], v(5))  // P7 ← U3 = U2+P7
	e.phAxpby(phQ, c11, v(0), beta) // C11 = βC11 + αP1
	e.phAddAssign(phQ, c11, v(1))   // + αP2
	e.phAxpby(phQ, c12, v(5), beta) // C12 = βC12 + αU2
	e.phAddAssign(phQ, c12, v(4))   // + αP5
	e.phAddAssign(phQ, c12, v(2))   // + αP3
	e.phAxpby(phQ, c21, v(6), beta) // C21 = βC21 + αU3
	e.phSubAssign(phQ, c21, v(3))   // − αP4
	e.phAxpby(phQ, c22, v(6), beta) // C22 = βC22 + αU3
	e.phAddAssign(phQ, c22, v(4))   // + αP5
}

// workerEngine returns an engine for one product goroutine: same policy,
// its own kernel state. The tracker is shared (it is concurrency-safe).
func (e *engine) workerEngine() *engine {
	sub := *e
	sub.kern = blas.CloneKernel(e.kern)
	return &sub
}
