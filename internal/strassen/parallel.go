package strassen

import "repro/internal/blas"

// The task-parallel Winograd schedule — the paper's Section 5 future-work
// item ("extend our implementation to use ... parallelism") — lives in
// taskdag.go: the seven products P1..P7 (all R products, for table
// algorithms) run as a dependency DAG on the work-stealing runtime
// (internal/sched), with the S/T operand formations and the C write-backs
// as predecessor and successor tasks.
//
// This file keeps the compat surface of the original flat-goroutine
// implementation. Config.Parallel and Config.ParallelLevels predate the
// runtime; they now map onto the DAG's lane cap and level count and execute
// on the process-shared runtime (sched.Shared()) — see Config.schedParams.
// The price in workspace is unchanged from the legacy schedule: concurrent
// products need their own buffers instead of sharing three temporaries,
// costing mk + kn + 7mn/4 words per parallel level (the four S and four T
// buffers plus seven products), which is why the DAG applies only at the
// top levels.

// workerEngine returns an engine for one product task: same policy, its
// own kernel state. The tracker is shared (it is concurrency-safe).
func (e *engine) workerEngine() *engine {
	sub := *e
	sub.kern = blas.CloneKernel(e.kern)
	return &sub
}
