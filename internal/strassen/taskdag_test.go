package strassen

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/sched"
)

// Package-level runtimes for the DAG tests: built once, never closed (the
// test process owns them for its lifetime), with fixed seeds so steal
// victim order is reproducible.
var (
	rtOnce sync.Once
	rt1    *sched.Runtime // single worker: DAG runs fully sequentially
	rt4    *sched.Runtime
)

func testRuntimes() (*sched.Runtime, *sched.Runtime) {
	rtOnce.Do(func() {
		rt1 = sched.New(1, 1)
		rt4 = sched.New(4, 1)
	})
	return rt1, rt4
}

// TestSchedRuntimeMatchesSequential: an explicit task runtime must produce
// the same result (within recursion-reassociation tolerance) as the
// sequential engine, on the default path and across β classes.
func TestSchedRuntimeMatchesSequential(t *testing.T) {
	_, rt := testRuntimes()
	rng := rand.New(rand.NewSource(601))
	for _, dims := range [][3]int{{64, 64, 64}, {65, 33, 97}, {128, 96, 80}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, beta := range []float64{0, 0.5} {
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c1 := matrix.NewRandom(m, n, rng)
			c2 := c1.Clone()

			seq := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}}
			dag := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Sched: rt, SchedLevels: 2}
			DGEFMM(seq, blas.NoTrans, blas.NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, beta, c1.Data, c1.Stride)
			DGEFMM(dag, blas.NoTrans, blas.NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, beta, c2.Data, c2.Stride)
			if d := matrix.MaxAbsDiff(c1, c2); d > tol(k) {
				t.Fatalf("dims=%v β=%v: DAG differs from sequential by %g", dims, beta, d)
			}
		}
	}
}

// TestSchedTableAlgoMatchesReference: the DAG generalizes to table
// algorithms — all R products of a non-default table run as tasks.
func TestSchedTableAlgoMatchesReference(t *testing.T) {
	skipIfAlgoPinned(t)
	_, rt := testRuntimes()
	rng := rand.New(rand.NewSource(602))
	for _, algoName := range []string{"classic", "323", "333"} {
		m, k, n := 81, 72, 90
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(k, n, rng)
		c := matrix.NewRandom(m, n, rng)
		want := refMul(blas.NoTrans, blas.NoTrans, 2, a, b, 0.25, c)
		cfg := &Config{Kernel: &blas.BlockedKernel{}, Criterion: Simple{Tau: 16}, Algo: algoName, Sched: rt}
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 2, a.Data, a.Stride, b.Data, b.Stride, 0.25, c.Data, c.Stride)
		if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
			t.Fatalf("algo=%s: %g", algoName, d)
		}
	}
}

// TestSchedBitForBitAcrossWorkerCounts pins the determinism contract: with
// the bit-stable Compat kernel, the same configuration on a 1-worker and a
// 4-worker runtime produces identical bits — scheduling must not change
// the arithmetic.
func TestSchedBitForBitAcrossWorkerCounts(t *testing.T) {
	w1, w4 := testRuntimes()
	rng := rand.New(rand.NewSource(603))
	for _, dims := range [][3]int{{64, 64, 64}, {65, 33, 97}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(k, n, rng)
		c1 := matrix.NewRandom(m, n, rng)
		c2 := c1.Clone()
		crit := Params{Tau: 16, TauM: 8, TauK: 8, TauN: 8}.Hybrid()
		run := func(rt *sched.Runtime, c *matrix.Dense) {
			cfg := &Config{Kernel: &kernel.Packed{Compat: true}, Criterion: crit, Sched: rt, SchedLevels: 2}
			DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1.25, a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride)
		}
		run(w1, c1)
		run(w4, c2)
		if !c1.Equal(c2) {
			t.Fatalf("dims=%v: results differ between 1-worker and 4-worker runtimes", dims)
		}
	}
}

// cancelingCriterion cancels a context after the recursion has consulted
// it a fixed number of times — a deterministic way to expire a deadline
// mid-execution, independent of wall-clock speed.
type cancelingCriterion struct {
	inner  Criterion
	cancel context.CancelFunc
	after  int
	seen   int
}

func (c *cancelingCriterion) Name() string { return "canceling" }
func (c *cancelingCriterion) Recurse(m, k, n int) bool {
	c.seen++
	if c.seen == c.after {
		c.cancel()
	}
	return c.inner.Recurse(m, k, n)
}

// TestDGEFMMCtxCancelsMidExecution: a context canceled after the recursion
// has started must stop the remaining work and surface context.Canceled —
// on the sequential path and on the DAG path.
func TestDGEFMMCtxCancelsMidExecution(t *testing.T) {
	_, rt := testRuntimes()
	rng := rand.New(rand.NewSource(604))
	m := 96
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	for _, useSched := range []bool{false, true} {
		ctx, cancel := context.WithCancel(context.Background())
		crit := &cancelingCriterion{inner: Simple{Tau: 8}, cancel: cancel, after: 3}
		cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: crit}
		if useSched {
			cfg.Sched = rt
		}
		c := matrix.NewDense(m, m)
		err := DGEFMMCtx(ctx, cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
			a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		cancel()
		if err != context.Canceled {
			t.Fatalf("sched=%v: err = %v, want context.Canceled", useSched, err)
		}
	}

	// A live context reports success and a correct result.
	c := matrix.NewDense(m, m)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, matrix.NewDense(m, m))
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Sched: rt}
	if err := DGEFMMCtx(context.Background(), cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(c, want); d > tol(m) {
		t.Fatalf("live-context result off by %g", d)
	}
}

// TestSchedParamsResolution pins the knob resolution: the compat shim maps
// Parallel/ParallelLevels onto lanes/levels with legacy defaults, an
// explicit runtime defaults lanes to its worker count and levels to the
// fan-out auto rule, and a sequential config resolves to no DAG.
func TestSchedParamsResolution(t *testing.T) {
	w1, w4 := testRuntimes()
	cases := []struct {
		name                string
		cfg                 *Config
		wantLanes, wantLvls int
		wantDAG             bool
	}{
		{"sequential", &Config{}, 0, 0, false},
		{"compat shim", &Config{Parallel: 4}, 4, 1, true},
		{"compat shim levels", &Config{Parallel: 2, ParallelLevels: 3}, 2, 3, true},
		{"explicit runtime", &Config{Sched: w4}, 4, 1, true},
		{"explicit runtime levels", &Config{Sched: w4, SchedLevels: 2}, 4, 2, true},
		{"runtime with lane cap", &Config{Sched: w4, Parallel: 2}, 2, 1, true},
		{"single worker runtime", &Config{Sched: w1}, 1, 1, true},
	}
	for _, tc := range cases {
		lanes, lvls, dag := tc.cfg.schedParams(7)
		if lanes != tc.wantLanes || lvls != tc.wantLvls || dag != tc.wantDAG {
			t.Errorf("%s: schedParams = (%d, %d, %v), want (%d, %d, %v)",
				tc.name, lanes, lvls, dag, tc.wantLanes, tc.wantLvls, tc.wantDAG)
		}
	}
	// Auto levels grow with workers relative to the fan-out: 7 products
	// cover 4 workers in one level, but a 2-product table needs two.
	if lv := schedAutoLevels(2, 4); lv != 2 {
		t.Errorf("schedAutoLevels(2, 4) = %d, want 2", lv)
	}
	if lv := schedAutoLevels(7, 64); lv != 3 {
		t.Errorf("schedAutoLevels(7, 64) = %d, want 3 (capped)", lv)
	}
}

// TestCriterionCoresResolution pins the τ-vs-cores lookup order: explicit
// Criterion beats "<kernel>@<cores>/<algo>" beats "<kernel>@<cores>" beats
// the single-core chain.
func TestCriterionCoresResolution(t *testing.T) {
	const kern = "naive"
	defer func() {
		delete(defaultParams, kern+"@4")
		delete(defaultParams, kern+"@4/classic")
	}()
	SetDefaultParams(kern+"@4", Params{Tau: 333, TauM: 1, TauK: 1, TauN: 1})
	SetDefaultParams(kern+"@4/classic", Params{Tau: 444, TauM: 1, TauK: 1, TauN: 1})

	cfg := &Config{Kernel: blas.NaiveKernel{}}
	if h, ok := cfg.criterionCores("", 4).(Hybrid); !ok || h.Tau != 333 {
		t.Errorf("cores=4: got %+v, want the @4 row (τ=333)", h)
	}
	if h, ok := cfg.criterionCores("classic", 4).(Hybrid); !ok || h.Tau != 444 {
		t.Errorf("cores=4 algo=classic: got %+v, want the @4/classic row (τ=444)", h)
	}
	// No @2 row: falls back to the single-core chain.
	single := cfg.criterionFor("")
	if got := cfg.criterionCores("", 2); got != single {
		t.Errorf("cores=2 without a calibrated row resolved to %v, want single-core %v", got, single)
	}
	// An explicit criterion always wins.
	fixed := Simple{Tau: 99}
	cfg2 := &Config{Kernel: blas.NaiveKernel{}, Criterion: fixed}
	if got := cfg2.criterionCores("", 4); got != Criterion(fixed) {
		t.Errorf("explicit criterion overridden: %v", got)
	}
}

// TestSchedTrackerBalancedAndPlanned: the DAG's up-front buffer draws must
// balance to zero and stay within the plan's workspace figure on a
// single-worker runtime (where execution is fully sequential, the plan's
// conc×child term is an upper bound).
func TestSchedTrackerBalancedAndPlanned(t *testing.T) {
	skipIfAlgoPinned(t)
	w1, _ := testRuntimes()
	rng := rand.New(rand.NewSource(605))
	tr := memtrack.New()
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Sched: w1, SchedLevels: 1, Tracker: tr}
	m := 64
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if tr.Live() != 0 {
		t.Fatalf("DAG run leaked %d words", tr.Live())
	}
	plan := PlanFor(&Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Sched: w1, SchedLevels: 1}, m, m, m, true)
	if tr.Peak() > plan.Words {
		t.Fatalf("measured peak %d exceeds planned words %d", tr.Peak(), plan.Words)
	}
	// The level's own buffers (4S + 4T + 7P at m/2) are always live at once.
	own := int64(15 * (m / 2) * (m / 2))
	if tr.Peak() < own {
		t.Fatalf("peak %d below the level's own buffer draw %d", tr.Peak(), own)
	}
}

// FuzzSchedDAG drives the determinism contract through arbitrary shapes,
// transposes and β classes: the identical configuration on a 1-worker and
// a 4-worker runtime must produce bit-for-bit equal results (scalar Compat
// kernel, so leaf arithmetic is bit-stable), and both must agree with the
// reference DGEMM within tolerance.
func FuzzSchedDAG(f *testing.F) {
	f.Add(uint8(64), uint8(64), uint8(64), uint8(0), 0.0)
	f.Add(uint8(65), uint8(33), uint8(97), uint8(1), 0.5)
	f.Add(uint8(96), uint8(17), uint8(80), uint8(2), 1.0)
	f.Add(uint8(48), uint8(96), uint8(24), uint8(3), -0.75)
	f.Fuzz(func(t *testing.T, mb, kb, nb, bits uint8, beta float64) {
		m, k, n := int(mb%100)+1, int(kb%100)+1, int(nb%100)+1
		ta, tb := blas.NoTrans, blas.NoTrans
		if bits&1 != 0 {
			ta = blas.Trans
		}
		if bits&2 != 0 {
			tb = blas.Trans
		}
		if beta != beta || beta > 1e6 || beta < -1e6 {
			beta = 1
		}
		rng := rand.New(rand.NewSource(int64(m)<<16 | int64(k)<<8 | int64(n)))
		rowsA, colsA := m, k
		if ta.IsTrans() {
			rowsA, colsA = k, m
		}
		rowsB, colsB := k, n
		if tb.IsTrans() {
			rowsB, colsB = n, k
		}
		a := matrix.NewRandom(rowsA, colsA, rng)
		b := matrix.NewRandom(rowsB, colsB, rng)
		c0 := matrix.NewRandom(m, n, rng)

		w1, w4 := testRuntimes()
		crit := Params{Tau: 16, TauM: 8, TauK: 8, TauN: 8}.Hybrid()
		run := func(rt *sched.Runtime) *matrix.Dense {
			c := c0.Clone()
			cfg := &Config{Kernel: &kernel.Packed{Compat: true}, Criterion: crit, Sched: rt, SchedLevels: 2}
			DGEFMM(cfg, ta, tb, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
			return c
		}
		c1, c4 := run(w1), run(w4)
		if !c1.Equal(c4) {
			t.Fatalf("m=%d k=%d n=%d ta=%v tb=%v β=%v: worker count changed the bits", m, k, n, ta, tb, beta)
		}
		want := c0.Clone()
		blas.Dgemm(ta, tb, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, beta, want.Data, want.Stride)
		if d := matrix.MaxAbsDiff(c4, want); d > tol(k)*(1+absf(beta)) {
			t.Fatalf("m=%d k=%d n=%d: off reference by %g", m, k, n, d)
		}
	})
}
