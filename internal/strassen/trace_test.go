package strassen

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

func tracedRun(t *testing.T, m, k, n int, cfg *Config) *CountTracer {
	t.Helper()
	tr := NewCountTracer()
	cfg.Tracer = tr
	rng := rand.New(rand.NewSource(int64(m*7 + k*5 + n*3)))
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewDense(m, n)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return tr
}

func TestTraceBaseOnly(t *testing.T) {
	tr := tracedRun(t, 10, 10, 10, &Config{Kernel: blas.NaiveKernel{}, Criterion: Never{}})
	if tr.Count("base") != 1 || tr.Total() != 1 {
		t.Fatalf("want exactly one base event: %s", tr)
	}
	if tr.MaxDepth() != 0 {
		t.Fatal("depth should be 0")
	}
}

func TestTraceOneLevelEven(t *testing.T) {
	skipIfAlgoPinned(t)
	tr := tracedRun(t, 32, 32, 32, &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1})
	if tr.Count("strassen1") != 1 {
		t.Fatalf("want 1 schedule event: %s", tr)
	}
	if tr.Count("base") != 7 {
		t.Fatalf("want 7 base products: %s", tr)
	}
	if tr.Count("peel") != 0 {
		t.Fatalf("no peeling on even dims: %s", tr)
	}
	if tr.MaxDepth() != 1 {
		t.Fatalf("max depth: %s", tr)
	}
}

func TestTraceOddFixups(t *testing.T) {
	skipIfAlgoPinned(t)
	tr := tracedRun(t, 33, 33, 33, &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1})
	if tr.Count("peel") != 1 {
		t.Fatalf("want a peel event: %s", tr)
	}
	for _, fix := range []string{"fixup-ger", "fixup-col", "fixup-row"} {
		if tr.Count(fix) != 1 {
			t.Fatalf("want one %s: %s", fix, tr)
		}
	}
}

func TestTraceOnlyKOdd(t *testing.T) {
	skipIfAlgoPinned(t)
	tr := tracedRun(t, 32, 33, 32, &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1})
	if tr.Count("fixup-ger") != 1 || tr.Count("fixup-col") != 0 || tr.Count("fixup-row") != 0 {
		t.Fatalf("k-odd should fire only the rank-one fixup: %s", tr)
	}
}

func TestTraceDepthTwo(t *testing.T) {
	skipIfAlgoPinned(t)
	tr := tracedRun(t, 64, 64, 64, &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 2})
	if tr.Count("base") != 49 {
		t.Fatalf("want 49 base products at depth 2: %s", tr)
	}
	if tr.Count("strassen1") != 8 { // 1 + 7
		t.Fatalf("want 8 schedule events: %s", tr)
	}
	if tr.MaxDepth() != 2 {
		t.Fatalf("max depth: %s", tr)
	}
}

func TestTraceSchedulesNamed(t *testing.T) {
	skipIfAlgoPinned(t)
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1, Schedule: ScheduleOriginal}
	tr := tracedRun(t, 16, 16, 16, cfg)
	if tr.Count("original") != 1 {
		t.Fatalf("want original event: %s", tr)
	}
	// β≠0 path labels strassen2 under auto.
	tr2 := NewCountTracer()
	cfg2 := &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1, Tracer: tr2}
	rng := rand.New(rand.NewSource(5))
	a := matrix.NewRandom(16, 16, rng)
	b := matrix.NewRandom(16, 16, rng)
	c := matrix.NewRandom(16, 16, rng)
	DGEFMM(cfg2, blas.NoTrans, blas.NoTrans, 16, 16, 16, 1, a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride)
	if tr2.Count("strassen2") != 1 {
		t.Fatalf("β≠0 should trace strassen2: %s", tr2)
	}
}

func TestTraceParallelEvents(t *testing.T) {
	skipIfAlgoPinned(t)
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1, Parallel: 4}
	tr := tracedRun(t, 32, 32, 32, cfg)
	if tr.Count("parallel") != 1 {
		t.Fatalf("want a parallel schedule event: %s", tr)
	}
	if tr.Count("base") != 7 {
		t.Fatalf("want 7 concurrent base products: %s", tr)
	}
}

func TestLogTracerOrderSequential(t *testing.T) {
	skipIfAlgoPinned(t)
	lt := &LogTracer{}
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 1, Tracer: lt}
	rng := rand.New(rand.NewSource(6))
	a := matrix.NewRandom(16, 16, rng)
	b := matrix.NewRandom(16, 16, rng)
	c := matrix.NewDense(16, 16)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, 16, 16, 16, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if len(lt.Events) != 8 { // 1 schedule + 7 base
		t.Fatalf("want 8 events, got %d", len(lt.Events))
	}
	if lt.Events[0].Action != "strassen1" || lt.Events[0].Depth != 0 {
		t.Fatalf("first event: %+v", lt.Events[0])
	}
	for _, e := range lt.Events[1:] {
		if e.Action != "base" || e.Depth != 1 || e.M != 8 {
			t.Fatalf("unexpected event %+v", e)
		}
	}
}

func TestCountTracerString(t *testing.T) {
	tr := NewCountTracer()
	tr.Event(TraceEvent{Depth: 2, Action: "base"})
	tr.Event(TraceEvent{Depth: 1, Action: "peel"})
	s := tr.String()
	if !strings.Contains(s, "base=1") || !strings.Contains(s, "peel=1") || !strings.Contains(s, "depth≤2") {
		t.Fatalf("tracer string: %q", s)
	}
}

func TestNoTracerNoEvents(t *testing.T) {
	// Absence of a tracer must not panic anywhere on a busy path.
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 4}}
	rng := rand.New(rand.NewSource(7))
	a := matrix.NewRandom(33, 21, rng)
	b := matrix.NewRandom(21, 19, rng)
	c := matrix.NewDense(33, 19)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, 33, 19, 21, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
}
