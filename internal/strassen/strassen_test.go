package strassen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// refMul computes C = alpha*op(A)*op(B) + beta*C elementwise as the oracle.
func refMul(transA, transB blas.Transpose, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) *matrix.Dense {
	av := matrix.ViewOp(a, transA.IsTrans())
	bv := matrix.ViewOp(b, transB.IsTrans())
	out := c.Clone()
	for j := 0; j < out.Cols; j++ {
		for i := 0; i < out.Rows; i++ {
			var s float64
			for l := 0; l < av.Cols; l++ {
				s += av.At(i, l) * bv.At(l, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

// tol scales the forward-error tolerance with problem size; Strassen's error
// bound grows faster than the standard algorithm's (Higham), so allow slack
// proportional to k * max|A| * max|B|.
func tol(k int) float64 { return 1e-13 * float64(k+8) }

// smallCriterion forces deep recursion on small test matrices.
var smallCriterion = Simple{Tau: 4}

func testConfig(sched Schedule, odd OddStrategy) *Config {
	return &Config{
		Kernel:    blas.NaiveKernel{},
		Criterion: smallCriterion,
		Schedule:  sched,
		Odd:       odd,
	}
}

func runCase(t *testing.T, cfg *Config, transA, transB blas.Transpose, m, n, k int, alpha, beta float64, rng *rand.Rand) {
	t.Helper()
	rowsA, colsA := m, k
	if transA.IsTrans() {
		rowsA, colsA = k, m
	}
	rowsB, colsB := k, n
	if transB.IsTrans() {
		rowsB, colsB = n, k
	}
	a := matrix.NewRandom(rowsA, colsA, rng)
	b := matrix.NewRandom(rowsB, colsB, rng)
	c := matrix.NewRandom(m, n, rng)
	want := refMul(transA, transB, alpha, a, b, beta, c)
	got := c.Clone()
	DGEFMM(cfg, transA, transB, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, got.Data, got.Stride)
	if d := matrix.MaxAbsDiff(got, want); d > tol(k) {
		t.Fatalf("sched=%v odd=%v ta=%c tb=%c m=%d n=%d k=%d α=%v β=%v: maxdiff=%g",
			cfg.Schedule, cfg.Odd, transA, transB, m, n, k, alpha, beta, d)
	}
}

func TestDGEFMMAllSchedulesSquare(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, sched := range []Schedule{ScheduleAuto, ScheduleStrassen1, ScheduleStrassen2, ScheduleOriginal} {
		for _, m := range []int{8, 16, 32, 33, 47, 64} {
			for _, ab := range [][2]float64{{1, 0}, {1, 1}, {1.0 / 3, 1.0 / 4}, {-2, 0.5}} {
				runCase(t, testConfig(sched, OddPeel), blas.NoTrans, blas.NoTrans, m, m, m, ab[0], ab[1], rng)
			}
		}
	}
}

func TestDGEFMMAllTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for _, ta := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			for _, dims := range [][3]int{{16, 16, 16}, {17, 19, 23}, {32, 8, 48}} {
				for _, beta := range []float64{0, 1.5} {
					runCase(t, testConfig(ScheduleAuto, OddPeel), ta, tb, dims[0], dims[1], dims[2], 1.25, beta, rng)
				}
			}
		}
	}
}

func TestDGEFMMOddStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for _, odd := range []OddStrategy{OddPeel, OddPadDynamic, OddPadStatic} {
		for _, dims := range [][3]int{{15, 15, 15}, {17, 33, 9}, {21, 22, 23}, {64, 63, 65}} {
			for _, beta := range []float64{0, 0.5} {
				runCase(t, testConfig(ScheduleAuto, odd), blas.NoTrans, blas.NoTrans, dims[0], dims[1], dims[2], 1, beta, rng)
			}
		}
	}
}

func TestDGEFMMRectangularExtremes(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	cfg := testConfig(ScheduleAuto, OddPeel)
	cfg.Criterion = Hybrid{Tau: 6, TauM: 3, TauK: 3, TauN: 3}
	for _, dims := range [][3]int{
		{1, 1, 1}, {1, 64, 64}, {64, 1, 64}, {64, 64, 1},
		{2, 3, 100}, {100, 2, 3}, {6, 14, 86}, {3, 97, 5},
	} {
		for _, beta := range []float64{0, 2} {
			runCase(t, cfg, blas.NoTrans, blas.NoTrans, dims[0], dims[1], dims[2], 1.5, beta, rng)
		}
	}
}

func TestDGEFMMMatchesDGEMMBelowCutoff(t *testing.T) {
	// For sizes at or below the cutoff DGEFMM must be bit-identical to
	// DGEMM — the paper's requirement of "the same performance for small
	// matrices" starts with identical computation.
	rng := rand.New(rand.NewSource(46))
	cfg := DefaultConfig(blas.NaiveKernel{})
	tau := DefaultParams("naive").Tau
	for _, m := range []int{1, 5, tau / 2, tau} {
		a := matrix.NewRandom(m, m, rng)
		b := matrix.NewRandom(m, m, rng)
		c1 := matrix.NewRandom(m, m, rng)
		c2 := c1.Clone()
		blas.DgemmKernel(blas.NaiveKernel{}, blas.NoTrans, blas.NoTrans, m, m, m, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c1.Data, c1.Stride)
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c2.Data, c2.Stride)
		if !c1.Equal(c2) {
			t.Fatalf("m=%d: DGEFMM differs from DGEMM below cutoff", m)
		}
	}
}

func TestDGEFMMStridedOperands(t *testing.T) {
	// Operands that are views into larger matrices (ld > rows).
	rng := rand.New(rand.NewSource(47))
	cfg := testConfig(ScheduleAuto, OddPeel)
	m, k, n := 19, 21, 17
	bigA := matrix.NewRandom(m+5, k+3, rng)
	bigB := matrix.NewRandom(k+2, n+4, rng)
	bigC := matrix.NewRandom(m+3, n+2, rng)
	a := bigA.Slice(2, 1, m, k)
	b := bigB.Slice(1, 3, k, n)
	c := bigC.Slice(3, 1, m, n)
	want := refMul(blas.NoTrans, blas.NoTrans, 2, a.Clone(), b.Clone(), 0.25, c.Clone())
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 2, a.Data, a.Stride, b.Data, b.Stride, 0.25, c.Data, c.Stride)
	got := matrix.NewDense(m, n)
	got.CopyFrom(c)
	if d := matrix.MaxAbsDiff(got, want); d > tol(k) {
		t.Fatalf("strided operands: maxdiff=%g", d)
	}
}

func TestDGEFMMHaloPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	cfg := testConfig(ScheduleAuto, OddPeel)
	m, k, n := 15, 13, 11
	bigC := matrix.NewDense(m+4, n+4)
	bigC.Fill(7)
	c := bigC.Slice(2, 2, m, n)
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	for j := 0; j < bigC.Cols; j++ {
		for i := 0; i < bigC.Rows; i++ {
			inside := i >= 2 && i < 2+m && j >= 2 && j < 2+n
			if !inside && bigC.At(i, j) != 7 {
				t.Fatalf("halo damaged at (%d,%d)", i, j)
			}
		}
	}
}

func TestDGEFMMAlphaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(49))
	cfg := testConfig(ScheduleAuto, OddPeel)
	m := 20
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewRandom(m, m, rng)
	want := c.Clone()
	want.Scale(3)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 0, a.Data, a.Stride, b.Data, b.Stride, 3, c.Data, c.Stride)
	if !c.EqualApprox(want, 0) {
		t.Fatal("alpha=0 should just scale C")
	}
}

func TestDGEFMMZeroDims(t *testing.T) {
	cfg := testConfig(ScheduleAuto, OddPeel)
	// m=0 and n=0 are no-ops; k=0 scales C.
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, 0, 3, 3, 1, nil, 3, make([]float64, 9), 3, 0, nil, 1)
	c := []float64{1, 2, 3, 4}
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, 2, 2, 0, 1, nil, 2, nil, 1, 0.5, c, 2)
	for i, want := range []float64{0.5, 1, 1.5, 2} {
		if c[i] != want {
			t.Fatalf("k=0 scaling: %v", c)
		}
	}
}

func TestMultiplyWrapper(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	cfg := testConfig(ScheduleAuto, OddPeel)
	a := matrix.NewRandom(9, 14, rng)
	b := matrix.NewRandom(14, 11, rng)
	c := matrix.NewDense(9, 11)
	Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, matrix.NewDense(9, 11))
	if d := matrix.MaxAbsDiff(c, want); d > tol(14) {
		t.Fatalf("Multiply wrapper wrong: %g", d)
	}
	// Transposed via wrapper.
	ct := matrix.NewDense(11, 9)
	Multiply(cfg, ct, blas.Trans, blas.Trans, 1, b, a, 0)
	for i := 0; i < 9; i++ {
		for j := 0; j < 11; j++ {
			if math.Abs(ct.At(j, i)-c.At(i, j)) > tol(14) {
				t.Fatal("BᵀAᵀ != (AB)ᵀ")
			}
		}
	}
}

func TestMultiplyWrapperShapePanics(t *testing.T) {
	cfg := testConfig(ScheduleAuto, OddPeel)
	a := matrix.NewDense(3, 4)
	b := matrix.NewDense(5, 6) // inner mismatch
	c := matrix.NewDense(3, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("want panic on inner mismatch")
		}
	}()
	Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
}

func TestDGEFMMNilConfigUsesDefaults(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	m := 10
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	DGEFMM(nil, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, matrix.NewDense(m, m))
	if d := matrix.MaxAbsDiff(c, want); d > tol(m) {
		t.Fatalf("nil config: %g", d)
	}
}

func TestDGEFMMValidatesLikeDGEMM(t *testing.T) {
	cfg := testConfig(ScheduleAuto, OddPeel)
	defer func() {
		if recover() == nil {
			t.Fatal("expected DGEMM-style validation panic")
		}
	}()
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, 4, 4, 4, 1, make([]float64, 16), 3 /* lda < m */, make([]float64, 16), 4, 0, make([]float64, 16), 4)
}

func TestDeepRecursionPowerOfTwo(t *testing.T) {
	// Force several recursion levels and check accuracy holds.
	rng := rand.New(rand.NewSource(52))
	cfg := testConfig(ScheduleAuto, OddPeel)
	cfg.Criterion = Simple{Tau: 8}
	m := 128 // 4 levels to reach 8
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, matrix.NewDense(m, m))
	if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
		t.Fatalf("deep recursion error too large: %g", d)
	}
}

func TestMaxDepthLimitsRecursion(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	// With MaxDepth=1 the result must still be correct.
	cfg := testConfig(ScheduleAuto, OddPeel)
	cfg.MaxDepth = 1
	runCase(t, cfg, blas.NoTrans, blas.NoTrans, 40, 40, 40, 1, 0, rng)
}

func TestStrassen1ForcedWithBetaNonzero(t *testing.T) {
	// ScheduleStrassen1 with β≠0 must fall back to the general variant and
	// stay correct.
	rng := rand.New(rand.NewSource(54))
	runCase(t, testConfig(ScheduleStrassen1, OddPeel), blas.NoTrans, blas.NoTrans, 24, 24, 24, 1.5, 2.5, rng)
}

func TestOriginalVariantOddSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for _, dims := range [][3]int{{13, 17, 19}, {32, 32, 32}} {
		for _, beta := range []float64{0, 1} {
			runCase(t, testConfig(ScheduleOriginal, OddPeel), blas.NoTrans, blas.NoTrans, dims[0], dims[1], dims[2], 2, beta, rng)
		}
	}
}

func TestPaddingWithTransposes(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for _, odd := range []OddStrategy{OddPadDynamic, OddPadStatic} {
		for _, ta := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				runCase(t, testConfig(ScheduleAuto, odd), ta, tb, 13, 19, 15, 1.5, 0.5, rng)
			}
		}
	}
}
