// Package strassen implements DGEFMM, the paper's portable replacement for
// the Level 3 BLAS DGEMM based on the Winograd variant of Strassen's
// algorithm (7 recursive multiplies, 15 block adds per level).
//
// The implementation follows Section 3 of the paper:
//
//   - Interface: identical to DGEMM — C ← α·op(A)·op(B) + β·C, column-major
//     storage with leading dimensions (Section 3.1).
//   - Memory: two computation schedules. STRASSEN1 runs when β = 0 and uses
//     the output C as scratch, bounding extra workspace by
//     (m·max(k,n) + kn)/3. STRASSEN2 handles general β through recursive
//     multiply-accumulate with three temporaries bounded by (mk+kn+mn)/3
//     (Section 3.2, Figure 1, Table 1).
//   - Odd dimensions: dynamic peeling with DGER/DGEMV fixups (Section 3.3),
//     plus dynamic and static padding as ablation alternatives.
//   - Cutoff: pluggable criteria, defaulting to the paper's hybrid
//     condition (15) with empirically calibrated parameters (Section 3.4).
package strassen

import (
	"strconv"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/memtrack"
	"repro/internal/sched"
)

// Schedule selects the Winograd computation schedule.
type Schedule int

const (
	// ScheduleAuto picks STRASSEN1 when beta == 0 and STRASSEN2 otherwise —
	// the paper's DGEFMM configuration (Table 1, last row).
	ScheduleAuto Schedule = iota
	// ScheduleStrassen1 forces the β=0 schedule; it is an error to request
	// it with β ≠ 0.
	ScheduleStrassen1
	// ScheduleStrassen2 forces the general multiply-accumulate schedule.
	ScheduleStrassen2
	// ScheduleOriginal uses Strassen's original 1969 construction
	// (7 multiplies, 18 adds) instead of Winograd's variant; provided for
	// the paper's Winograd-vs-original comparison (equations (4) and (5)).
	ScheduleOriginal
)

// String returns the schedule's report name.
func (s Schedule) String() string {
	switch s {
	case ScheduleAuto:
		return "auto"
	case ScheduleStrassen1:
		return "strassen1"
	case ScheduleStrassen2:
		return "strassen2"
	case ScheduleOriginal:
		return "original"
	}
	return "unknown"
}

// OddStrategy selects how odd dimensions are made even at each recursion.
type OddStrategy int

const (
	// OddPeel is dynamic peeling (the paper's choice): strip the extra
	// row/column and repair with rank-one and matrix-vector fixups.
	OddPeel OddStrategy = iota
	// OddPadDynamic pads each odd dimension with one zero row/column at
	// every recursion level (the approach of Douglas et al.).
	OddPadDynamic
	// OddPadStatic pads once, before any recursion, to a multiple of 2^d
	// where d is the anticipated recursion depth (Strassen's original
	// suggestion).
	OddPadStatic
	// OddPeelFirst is the alternate peeling of the paper's future work:
	// strip the *first* row/column instead of the last.
	OddPeelFirst
)

// String returns the strategy's report name.
func (o OddStrategy) String() string {
	switch o {
	case OddPeel:
		return "peel"
	case OddPadDynamic:
		return "pad-dynamic"
	case OddPadStatic:
		return "pad-static"
	case OddPeelFirst:
		return "peel-first"
	}
	return "unknown"
}

// Config selects the kernel, cutoff criterion and algorithm variants for a
// DGEFMM computation. The zero value is NOT usable; call DefaultConfig.
type Config struct {
	// Kernel is the DGEMM engine used below the cutoff and in fixups.
	// Nil selects the packed cache-blocked kernel (internal/kernel).
	Kernel blas.Kernel
	// Criterion is the recursion cutoff test. Nil selects the hybrid
	// condition (15) with DefaultParams for the kernel.
	Criterion Criterion
	// Schedule selects the Winograd computation schedule (default auto).
	Schedule Schedule
	// Odd selects the odd-dimension strategy (default dynamic peeling).
	Odd OddStrategy
	// MaxDepth, if positive, bounds the recursion depth regardless of the
	// criterion. Zero means no explicit bound.
	MaxDepth int
	// Fused selects whether the last recursion levels may run through the
	// kernel's fused packing/write-out hooks (see FusedMode). The zero
	// value auto-detects; DGEFMM_FUSED overrides auto per process.
	Fused FusedMode
	// Algo names the fast-algorithm coefficient table driving the
	// recursion (internal/algo): "" or "default" for the paper's ⟨2,2,2⟩
	// Winograd variant executed by the legacy hand-tuned schedules, "auto"
	// for per-shape selection by operand aspect, or a registered table
	// name ("classic", "323", "333", "424", …). When empty the DGEFMM_ALGO
	// environment variable is consulted (PR 5 precedence: Config beats
	// environment beats default). Non-default tables run through the
	// generic table executor with generalized dynamic peeling; the
	// Schedule, Odd and Parallel knobs apply only to the default path.
	Algo string
	// Tracker, if non-nil, accounts all temporary workspace words.
	Tracker *memtrack.Tracker
	// Sched, if non-nil, executes the recursion on this work-stealing task
	// runtime (internal/sched): the top SchedLevels recursion levels expand
	// their products into a dependency DAG and the packed kernel's MC loop
	// threads at the leaves. Multiple Configs may share one runtime — tasks
	// from concurrent calls interleave under a single core budget.
	Sched *sched.Runtime
	// SchedLevels bounds how many top levels expand into task DAGs; 0 picks
	// enough levels that the product fan-out covers the runtime's workers
	// (capped at 3). Ignored when no task runtime is active.
	SchedLevels int
	// Parallel caps the products in flight per DAG level (the lane width).
	//
	// Deprecated compat shim: Parallel predates the task runtime, where it
	// sized a flat goroutine fan-out. Parallel > 1 with a nil Sched now
	// executes on the process-shared runtime (sched.Shared()) with Parallel
	// as the lane cap, preserving the documented concurrency bound and
	// workspace accounting of the legacy schedule. New code should set
	// Sched and leave Parallel zero (lanes default to the worker count).
	Parallel int
	// ParallelLevels bounds how many top levels use the parallel schedule;
	// 0 means one level when Parallel > 1.
	//
	// Deprecated: use SchedLevels with an explicit Sched runtime; this
	// field remains as the legacy default when SchedLevels is zero.
	ParallelLevels int
	// Tracer, if non-nil, receives one TraceEvent per recursion decision
	// (base-case, schedule level, peel/pad action, fixup). A Tracer that
	// also implements SpanTracer additionally receives timed, parented
	// BeginSpan/EndSpan brackets around every node (see internal/obs for
	// the standard collector). Implementations must be concurrency-safe
	// when Parallel is enabled.
	Tracer Tracer
}

// Params holds empirically calibrated cutoff parameters for one machine
// (here: one DGEMM kernel), mirroring the paper's Tables 2 and 3.
type Params struct {
	// Tau is the square crossover order τ (Table 2).
	Tau int
	// TauM, TauK, TauN are the rectangular parameters (Table 3).
	TauM, TauK, TauN int
}

// Hybrid builds the paper's criterion (15) from the parameters.
func (p Params) Hybrid() Criterion {
	return Hybrid{Tau: p.Tau, TauM: p.TauM, TauK: p.TauK, TauN: p.TauN}
}

// defaultParams holds per-kernel cutoff parameters measured with
// cmd/calibrate on the development host (single-CPU Linux container,
// Go 1.24). They play the role of the paper's Table 2/3 values: reasonable
// defaults that users re-calibrate per machine (the code "allows user
// testing and specification" of the parameters, as the paper's does).
// As the paper notes for its own procedure, "if alternative values of m, k,
// and n are used ... different values for the parameters may be obtained";
// the rectangular curves on this host are flat near the crossover, so these
// are rounded midpoints of repeated calibration runs.
// A practical caution baked into these values: the one-level crossover on
// the naive kernel is near 24–32, but installing so low a τ lets multi-level
// recursion descend into sizes where the O(n²) overheads dominate; the τ
// here is deliberately the "always better beyond this" end of the measured
// crossover band, as the paper chose 199 from its 176–214 range.
// The "simd" row illustrates that caution at its sharpest: the AVX2 tile
// multiplies kernel GFLOPS by ~7, so the O(n²) add/partition overhead of a
// Strassen step — unchanged by the tile — dominates until far larger n.
// Calibration on the development host shows one recursion level only
// breaking even around the top of the measured range (DGEMM/DGEFMM ≈ 0.94
// at n=512), so τ sits at 512 and the rectangular cutoffs at 256.
// The "+fused" rows are consulted when the fused Winograd driver is active
// (auto schedule, hook-capable kernel, fused mode not off) and come from
// cmd/calibrate's -fused sweep (see EXPERIMENTS.md for the curves). On the
// SIMD tile, fusing the add/sub combinations into packing and write-out
// removes most of a Strassen level's O(n²) overhead, which pulls the
// crossover from the materialized schedules' τ=512 down to 448 (sweeps on
// the development host cross between 416 and 480) — the point of the fused
// path. The scalar packed kernel moves the other way (136 vs 88): at ~5
// GFLOPS the products dominate so the materialized adds were nearly free,
// while the fused packers' two-source strided reads repeat per cache
// block; fusion only wins once the re-read panels stay resident.
// The "<kernel>/<algo>" rows are consulted when a non-default coefficient
// table drives the recursion (Config.Algo / DGEFMM_ALGO); they come from
// cmd/calibrate -algo sweeps on the development host (see EXPERIMENTS.md
// for the methodology). The pattern across the rows: a table's crossover
// scales inversely with its per-level speedup M·K·N/R — classic ⟨2,2,2⟩
// (8/7, like Winograd but three more C passes) sits near the kernel's own
// τ, ⟨3,2,3⟩ (18/17) and ⟨4,2,4⟩ (32/28) need larger blocks before their
// thinner savings clear the O(n²) grid overhead, and ⟨3,3,3⟩ (27/26) only
// pays on the biggest shapes in the measured range.
var defaultParams = map[string]Params{
	"simd":           {Tau: 512, TauM: 256, TauK: 256, TauN: 256},
	"simd+fused":     {Tau: 448, TauM: 288, TauK: 288, TauN: 288},
	"simd/classic":   {Tau: 512, TauM: 256, TauK: 256, TauN: 256},
	"simd/323":       {Tau: 576, TauM: 312, TauK: 240, TauN: 312},
	"simd/333":       {Tau: 768, TauM: 384, TauK: 384, TauN: 384},
	"simd/424":       {Tau: 576, TauM: 320, TauK: 224, TauN: 320},
	"packed":         {Tau: 88, TauM: 56, TauK: 68, TauN: 44},
	"packed+fused":   {Tau: 136, TauM: 40, TauK: 84, TauN: 32},
	"packed/classic": {Tau: 96, TauM: 56, TauK: 68, TauN: 44},
	"packed/323":     {Tau: 120, TauM: 66, TauK: 56, TauN: 66},
	"packed/333":     {Tau: 168, TauM: 84, TauK: 96, TauN: 84},
	"packed/424":     {Tau: 128, TauM: 72, TauK: 48, TauN: 72},
	"blocked":        {Tau: 96, TauM: 48, TauK: 64, TauN: 48},
	"vector":         {Tau: 96, TauM: 64, TauK: 96, TauN: 48},
	"naive":          {Tau: 44, TauM: 16, TauK: 24, TauN: 16},
}

// DefaultParams returns the calibrated cutoff parameters for a kernel name,
// falling back to the blocked kernel's parameters for unknown names.
func DefaultParams(kernelName string) Params {
	if p, ok := defaultParams[kernelName]; ok {
		return p
	}
	return defaultParams["blocked"]
}

// SetDefaultParams overrides the default parameters for a kernel name, the
// programmatic equivalent of re-running the paper's calibration experiments
// on a new machine.
func SetDefaultParams(kernelName string, p Params) {
	defaultParams[kernelName] = p
}

// DefaultConfig returns the paper's DGEFMM configuration for the given
// kernel (nil = the packed cache-blocked kernel, the fastest base-case
// multiplier; select "blocked"/"naive"/"vector" explicitly via
// blas.KernelByName for the ablation arms): auto schedule, dynamic peeling,
// hybrid cutoff with the kernel's calibrated parameters.
func DefaultConfig(kern blas.Kernel) *Config {
	if kern == nil {
		kern = kernel.Default()
	}
	cfg := &Config{Kernel: kern}
	cfg.Criterion = cfg.criterion()
	return cfg
}

func (cfg *Config) kernel() blas.Kernel {
	if cfg.Kernel == nil {
		return kernel.Default()
	}
	return cfg.Kernel
}

// criterion resolves the cutoff: an explicit Criterion wins; otherwise the
// kernel's calibrated parameters, preferring the "<name>+fused" row when
// the fused driver is active (its lower per-level overhead moves the
// crossover).
func (cfg *Config) criterion() Criterion { return cfg.criterionFor("") }

// criterionFor resolves the cutoff for a specific algorithm table: the
// "<kernel>/<algo>" calibrated row when one exists (each table's per-level
// savings-to-overhead ratio moves its crossover), falling back to the
// kernel's default-path resolution.
func (cfg *Config) criterionFor(algoName string) Criterion {
	if cfg.Criterion != nil {
		return cfg.Criterion
	}
	name := cfg.kernel().Name()
	if algoName != "" {
		if p, ok := defaultParams[name+"/"+algoName]; ok {
			return p.Hybrid()
		}
	}
	if cfg.FusedActive() {
		if p, ok := defaultParams[name+"+fused"]; ok {
			return p.Hybrid()
		}
	}
	return DefaultParams(name).Hybrid()
}

// criterionCores resolves the cutoff for a call executing on a cores-worker
// task runtime. τ is a function of the core count: threading the recursion
// shrinks a Strassen level's effective O(n²) overhead per core while the
// leaf GEMM rate scales with the cores too, so the crossover measured at one
// core does not transfer (cmd/calibrate's -cores sweep measures it and
// installs "<kernel>@<cores>" rows, optionally refined per algorithm as
// "<kernel>@<cores>/<algo>"). With no calibrated row for this core count the
// resolution falls back to the single-core chain — calibrate before trusting
// multi-core cutoffs.
func (cfg *Config) criterionCores(algoName string, cores int) Criterion {
	if cfg.Criterion != nil {
		return cfg.Criterion
	}
	if cores > 1 {
		name := cfg.kernel().Name() + "@" + strconv.Itoa(cores)
		if algoName != "" {
			if p, ok := defaultParams[name+"/"+algoName]; ok {
				return p.Hybrid()
			}
		}
		if p, ok := defaultParams[name]; ok {
			return p.Hybrid()
		}
	}
	return cfg.criterionFor(algoName)
}
