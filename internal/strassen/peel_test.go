package strassen

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Focused tests for dynamic peeling (Section 3.3, equation (9)) — the
// paper's previously-untried technique. Each test isolates one of the three
// fixup paths by making exactly one dimension odd.

func peelConfig() *Config {
	// Recurse aggressively so peeling happens at the top level of each case.
	return &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 4}, Odd: OddPeel}
}

func checkDims(t *testing.T, m, k, n int, alpha, beta float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(m*1000000 + k*1000 + n)))
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	want := refMul(blas.NoTrans, blas.NoTrans, alpha, a, b, beta, c)
	DGEFMM(peelConfig(), blas.NoTrans, blas.NoTrans, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
		t.Fatalf("(%d,%d,%d) α=%v β=%v: maxdiff %g", m, k, n, alpha, beta, d)
	}
}

func TestPeelOnlyKOdd(t *testing.T) {
	// Exercises the DGER rank-one fixup: C11 += α a12 b21.
	checkDims(t, 16, 17, 16, 1, 0)
	checkDims(t, 16, 17, 16, 2.5, 1.5)
	checkDims(t, 32, 9, 32, -1, 0.5)
}

func TestPeelOnlyNOdd(t *testing.T) {
	// Exercises the c12 DGEMV fixup: last column of C.
	checkDims(t, 16, 16, 17, 1, 0)
	checkDims(t, 16, 16, 17, 0.5, -2)
}

func TestPeelOnlyMOdd(t *testing.T) {
	// Exercises the bottom-row DGEMV fixup: [c21 c22].
	checkDims(t, 17, 16, 16, 1, 0)
	checkDims(t, 17, 16, 16, 3, 0.25)
}

func TestPeelAllOdd(t *testing.T) {
	// All three fixups at once (the full equation (9)).
	checkDims(t, 17, 19, 21, 1, 0)
	checkDims(t, 17, 19, 21, 1.0/3, 1.0/4)
	checkDims(t, 9, 9, 9, -0.5, 2)
}

func TestPeelDimensionOne(t *testing.T) {
	// Degenerate "everything peels away" shapes must still be right (they
	// stop at the base case since dims of 1 never recurse).
	for _, dims := range [][3]int{{1, 9, 9}, {9, 1, 9}, {9, 9, 1}, {1, 1, 9}, {1, 1, 1}} {
		checkDims(t, dims[0], dims[1], dims[2], 1.5, 0.5)
	}
}

func TestPeelRecursiveOddness(t *testing.T) {
	// Sizes chosen so that oddness appears only at inner recursion levels:
	// 2·odd = even top level, odd second level.
	checkDims(t, 34, 38, 42, 1, 0) // halves 17, 19, 21 are odd
	checkDims(t, 34, 38, 42, 2, 3)
	checkDims(t, 68, 76, 84, 1, 1) // oddness two levels down
}

func TestPeelWithTransposedViews(t *testing.T) {
	// The peeled row/column extraction must work through transposed views
	// (strided vectors instead of contiguous ones).
	rng := rand.New(rand.NewSource(123))
	m, k, n := 17, 19, 15
	a := matrix.NewRandom(k, m, rng) // stores Aᵀ
	b := matrix.NewRandom(n, k, rng) // stores Bᵀ
	c := matrix.NewRandom(m, n, rng)
	want := refMul(blas.Trans, blas.Trans, 1.5, a, b, 0.5, c)
	DGEFMM(peelConfig(), blas.Trans, blas.Trans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
		t.Fatalf("transposed peel: %g", d)
	}
}

func TestPeelFirstAllShapes(t *testing.T) {
	// The alternate (peel-first) strategy must agree with the reference on
	// every oddness pattern and with transposes.
	rng := rand.New(rand.NewSource(432))
	cfg := peelConfig()
	cfg.Odd = OddPeelFirst
	for _, dims := range [][3]int{
		{17, 16, 16}, {16, 17, 16}, {16, 16, 17}, {17, 19, 21},
		{9, 9, 9}, {34, 38, 42}, {1, 9, 9}, {33, 1, 7},
	} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ab := range [][2]float64{{1, 0}, {2.5, 1.5}} {
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c := matrix.NewRandom(m, n, rng)
			want := refMul(blas.NoTrans, blas.NoTrans, ab[0], a, b, ab[1], c)
			DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, ab[0], a.Data, a.Stride, b.Data, b.Stride, ab[1], c.Data, c.Stride)
			if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
				t.Fatalf("peel-first (%d,%d,%d) αβ=%v: %g", m, k, n, ab, d)
			}
		}
	}
	// Transposed operands through the first-row/column extraction.
	m, k, n := 15, 17, 13
	a := matrix.NewRandom(k, m, rng)
	b := matrix.NewRandom(n, k, rng)
	c := matrix.NewRandom(m, n, rng)
	want := refMul(blas.Trans, blas.Trans, 1.5, a, b, 0.5, c)
	DGEFMM(cfg, blas.Trans, blas.Trans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
		t.Fatalf("peel-first transposed: %g", d)
	}
}

func TestPeelFirstMatchesPeelLast(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	m := 45
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c1 := matrix.NewDense(m, m)
	c2 := matrix.NewDense(m, m)
	last := peelConfig()
	first := peelConfig()
	first.Odd = OddPeelFirst
	DGEFMM(last, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c1.Data, c1.Stride)
	DGEFMM(first, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c2.Data, c2.Stride)
	if d := matrix.MaxAbsDiff(c1, c2); d > tol(m) {
		t.Fatalf("peel variants disagree by %g", d)
	}
}

func TestPeelExactIntegerArithmetic(t *testing.T) {
	// With small integer entries every intermediate is exactly
	// representable, so the result must be bit-exact — this catches
	// misplaced fixup contributions that tolerance-based checks might mask.
	rng := rand.New(rand.NewSource(321))
	for _, dims := range [][3]int{{7, 7, 7}, {11, 13, 9}, {15, 10, 21}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := matrix.NewDense(m, k)
		b := matrix.NewDense(k, n)
		for idx := range a.Data {
			a.Data[idx] = float64(rng.Intn(7) - 3)
		}
		for idx := range b.Data {
			b.Data[idx] = float64(rng.Intn(7) - 3)
		}
		c := matrix.NewDense(m, n)
		want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, c.Clone())
		cfg := peelConfig()
		cfg.Criterion = Simple{Tau: 2}
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		if !c.Equal(want) {
			t.Fatalf("(%d,%d,%d): integer result not exact; maxdiff=%g", m, k, n, matrix.MaxAbsDiff(c, want))
		}
	}
}
