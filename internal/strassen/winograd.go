package strassen

import "repro/internal/matrix"

// This file implements the paper's two computation schedules for Winograd's
// variant (Section 3.2). Both consume one level of recursion on an all-even
// (m, k, n) problem; the seven half-size products re-enter engine.mul, so
// the cutoff criterion and peeling apply independently at every level.
//
// Winograd's variant (7 multiplies, 15 adds), in the standard naming used
// below (stages (1)–(4) of Section 2):
//
//	S1 = A21 + A22    T1 = B12 − B11    P1 = A11·B11   U2 = P1 + P6
//	S2 = S1 − A11     T2 = B22 − T1     P2 = A12·B21   U3 = U2 + P7
//	S3 = A11 − A21    T3 = B22 − B12    P3 = S4·B22    U4 = U2 + P5
//	S4 = A12 − S2     T4 = T2 − B21     P4 = A22·T4
//	                                    P5 = S1·T1
//	                                    P6 = S2·T2
//	                                    P7 = S3·T3
//
//	C11 = P1 + P2,  C12 = U4 + P3,  C21 = U3 − P4,  C22 = U3 + P5.

// strassen1 is the β = 0 schedule: C ← alpha·A·B. The four quadrants of C
// serve as product buffers, so only two temporaries are needed: R1 of size
// (m/2)·max(k/2, n/2) — it holds S-shaped (m/2×k/2) sums early and a
// product (m/2×n/2) late — and R2 of size (k/2)·(n/2). Top-level extra
// space is m·max(k,n)/4 + kn/4; summed over the recursion this is the
// paper's bound (m·max(k,n) + kn)/3 (2m²/3 for squares, Table 1).
//
// All seven products are plain (β = 0) multiplies, so the whole recursion
// stays on this schedule, preserving the bound.
func (e *engine) strassen1(c *matrix.Dense, a, b matrix.View, alpha float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	m2, k2, n2 := m/2, k/2, n/2

	a11 := a.Slice(0, 0, m2, k2)
	a12 := a.Slice(0, k2, m2, k2)
	a21 := a.Slice(m2, 0, m2, k2)
	a22 := a.Slice(m2, k2, m2, k2)
	b11 := b.Slice(0, 0, k2, n2)
	b12 := b.Slice(0, n2, k2, n2)
	b21 := b.Slice(k2, 0, k2, n2)
	b22 := b.Slice(k2, n2, k2, n2)
	c11 := c.Slice(0, 0, m2, n2)
	c12 := c.Slice(0, n2, m2, n2)
	c21 := c.Slice(m2, 0, m2, n2)
	c22 := c.Slice(m2, n2, m2, n2)

	maxkn2 := k2
	if n2 > maxkn2 {
		maxkn2 = n2
	}
	r1buf := e.tracker.Alloc(m2 * maxkn2)
	defer e.tracker.Free(r1buf)
	r1s := matrix.FromColMajor(m2, k2, m2, r1buf) // R1 viewed as an S (m/2×k/2)
	r1p := matrix.FromColMajor(m2, n2, m2, r1buf) // R1 viewed as a P (m/2×n/2)
	r2 := e.allocMat(k2, n2)
	defer e.freeMat(r2)

	d := depth + 1
	// The products carry alpha; the combinations below then operate on
	// already-scaled values, so every quadrant ends as alpha times its
	// Winograd combination.
	e.phSub(phAS, r1s, a11, a21)                                   // R1 = S3
	e.phSub(phAS, r2, b22, b12)                                    // R2 = T3
	e.mul(c11, matrix.ViewOf(r1s), matrix.ViewOf(r2), alpha, 0, d) // C11 = αP7
	e.phAdd(phAS, r1s, a21, a22)                                   // R1 = S1
	e.phSub(phAS, r2, b12, b11)                                    // R2 = T1
	e.mul(c21, matrix.ViewOf(r1s), matrix.ViewOf(r2), alpha, 0, d) // C21 = αP5
	e.phAdd(phQ, c22, matrix.ViewOf(c11), matrix.ViewOf(c21))      // C22 = α(P7+P5)
	e.phSubAssign(phAS, r1s, a11)                                  // R1 = S2 = S1−A11
	e.phRevSubAssign(phAS, r2, b22)                                // R2 = T2 = B22−T1
	e.mul(c12, matrix.ViewOf(r1s), matrix.ViewOf(r2), alpha, 0, d) // C12 = αP6
	e.phAddAssign(phQ, c22, matrix.ViewOf(c12))                    // C22 = α(P5+P6+P7)
	e.phRevSubAssign(phAS, r1s, a12)                               // R1 = S4 = A12−S2
	e.mul(c11, matrix.ViewOf(r1s), b22, alpha, 0, d)               // C11 = αP3 (P7 now dead)
	e.phAddAssign(phQ, c12, matrix.ViewOf(c11))                    // C12 = α(P6+P3)
	e.phAddAssign(phQ, c12, matrix.ViewOf(c21))                    // C12 = α(P6+P3+P5)
	e.phSubAssign(phAS, r2, b21)                                   // R2 = T4 = T2−B21
	e.mul(c11, a22, matrix.ViewOf(r2), alpha, 0, d)                // C11 = αP4 (P3 now dead)
	e.mul(r1p, a11, b11, alpha, 0, d)                              // R1 = αP1
	e.phAddAssign(phQ, c12, matrix.ViewOf(r1p))                    // C12 final = α(P1+P3+P5+P6)
	e.phAddAssign(phQ, c22, matrix.ViewOf(r1p))                    // C22 final = α(P1+P5+P6+P7)
	// C21 ← C22 − C11 − C21 = α(P1+P5+P6+P7) − αP4 − αP5 = α(P1+P6+P7−P4).
	e.phAddSubAssign(phQ, c21, matrix.ViewOf(c22), matrix.ViewOf(c11))
	e.phCopy(phQ, c11, r1p)                     // C11 = αP1
	e.mul(r1p, a12, b21, alpha, 0, d)           // R1 = αP2
	e.phAddAssign(phQ, c11, matrix.ViewOf(r1p)) // C11 final = α(P1+P2)
}

// strassen2 is the general-β schedule of the paper's Figure 1:
// C ← alpha·A·B + beta·C using the minimum possible three temporaries
// (R1 holds only A-subblocks, mk/4 words; R2 only B-subblocks, kn/4; R3
// only C-sized blocks, mn/4). The key enabler is that the recursive
// operation is the full multiply-accumulate C ← αAB + βC, so partial sums
// live in C itself even when β ≠ 0. Summed over the recursion the extra
// space is (mk + kn + mn)/3 (m² for squares, Table 1).
func (e *engine) strassen2(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	m2, k2, n2 := m/2, k/2, n/2

	a11 := a.Slice(0, 0, m2, k2)
	a12 := a.Slice(0, k2, m2, k2)
	a21 := a.Slice(m2, 0, m2, k2)
	a22 := a.Slice(m2, k2, m2, k2)
	b11 := b.Slice(0, 0, k2, n2)
	b12 := b.Slice(0, n2, k2, n2)
	b21 := b.Slice(k2, 0, k2, n2)
	b22 := b.Slice(k2, n2, k2, n2)
	c11 := c.Slice(0, 0, m2, n2)
	c12 := c.Slice(0, n2, m2, n2)
	c21 := c.Slice(m2, 0, m2, n2)
	c22 := c.Slice(m2, n2, m2, n2)

	r1 := e.allocMat(m2, k2)
	defer e.freeMat(r1)
	r2 := e.allocMat(k2, n2)
	defer e.freeMat(r2)
	r3 := e.allocMat(m2, n2)
	defer e.freeMat(r3)

	d := depth + 1
	v1, v2, v3 := matrix.ViewOf(r1), matrix.ViewOf(r2), matrix.ViewOf(r3)

	e.phAdd(phAS, r1, a21, a22)          // R1 = S1
	e.phSub(phAS, r2, b12, b11)          // R2 = T1
	e.mul(r3, v1, v2, alpha, 0, d)       // R3 = αP5
	e.phAxpby(phQ, c12, v3, beta)        // C12 = βC12 + αP5
	e.phAxpby(phQ, c22, v3, beta)        // C22 = βC22 + αP5
	e.phSubAssign(phAS, r1, a11)         // R1 = S2
	e.phRevSubAssign(phAS, r2, b22)      // R2 = T2
	e.mul(r3, a11, b11, alpha, 0, d)     // R3 = αP1
	e.phAxpby(phQ, c11, v3, beta)        // C11 = βC11 + αP1
	e.mul(r3, v1, v2, alpha, 1, d)       // R3 = α(P1+P6) = αU2  (accumulate)
	e.mul(c11, a12, b21, alpha, 1, d)    // C11 final = βC11 + α(P1+P2)
	e.phRevSubAssign(phAS, r1, a12)      // R1 = S4
	e.phSubAssign(phAS, r2, b21)         // R2 = T4
	e.mul(c12, v1, b22, alpha, 1, d)     // C12 += αP3
	e.phAddAssign(phQ, c12, v3)          // C12 final = βC12 + α(P5+P3+U2)
	e.mul(c21, a22, v2, -alpha, beta, d) // C21 = βC21 − αP4
	e.phSub(phAS, r1, a11, a21)          // R1 = S3
	e.phSub(phAS, r2, b22, b12)          // R2 = T3
	e.mul(r3, v1, v2, alpha, 1, d)       // R3 = αU3 = α(U2+P7)  (accumulate)
	e.phAddAssign(phQ, c21, v3)          // C21 final = βC21 + α(U3−P4)
	e.phAddAssign(phQ, c22, v3)          // C22 final = βC22 + α(P5+U3)
}

// strassen1General extends STRASSEN1 to β ≠ 0 in the spirit of the paper's
// six-temporary general case: the four product buffers the β = 0 schedule
// takes from C become explicit workspace (mn words in total, allocated here
// as one m×n scratch), the β = 0 schedule runs into that scratch, and the
// result is folded into C with a single axpby. Peak extra space is
// mn + (m·max(k,n) + kn)/3, i.e. 5m²/3 for squares — within the paper's
// STRASSEN1 β ≠ 0 bound of 2m² (Table 1). STRASSEN2 strictly improves on
// this, which is why DGEFMM uses it instead; this path exists for the
// paper's comparison.
func (e *engine) strassen1General(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, n := a.Rows, b.Cols
	w := e.allocMat(m, n)
	defer e.freeMat(w)
	e.strassen1(w, a, b, alpha, depth)
	e.phAxpby(phQ, c, matrix.ViewOf(w), beta)
}
