package strassen

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	for _, dims := range [][3]int{{64, 64, 64}, {65, 33, 97}, {128, 96, 80}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, beta := range []float64{0, 0.5} {
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c1 := matrix.NewRandom(m, n, rng)
			c2 := c1.Clone()

			seq := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}}
			par := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Parallel: 4, ParallelLevels: 2}
			DGEFMM(seq, blas.NoTrans, blas.NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, beta, c1.Data, c1.Stride)
			DGEFMM(par, blas.NoTrans, blas.NoTrans, m, n, k, 1.5, a.Data, a.Stride, b.Data, b.Stride, beta, c2.Data, c2.Stride)
			if d := matrix.MaxAbsDiff(c1, c2); d > tol(k) {
				t.Fatalf("dims=%v β=%v: parallel differs from sequential by %g", dims, beta, d)
			}
		}
	}
}

func TestParallelCorrectAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(402))
	cfg := &Config{Kernel: &blas.BlockedKernel{}, Criterion: Simple{Tau: 16}, Parallel: 7, ParallelLevels: 3}
	for _, dims := range [][3]int{{96, 96, 96}, {67, 81, 75}} {
		m, k, n := dims[0], dims[1], dims[2]
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(k, n, rng)
		c := matrix.NewRandom(m, n, rng)
		want := refMul(blas.NoTrans, blas.NoTrans, 2, a, b, 0.25, c)
		DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 2, a.Data, a.Stride, b.Data, b.Stride, 0.25, c.Data, c.Stride)
		if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
			t.Fatalf("dims=%v: %g", dims, d)
		}
	}
}

func TestParallelTrackerBalanced(t *testing.T) {
	skipIfAlgoPinned(t)
	// The shared tracker must see every parallel worker's allocation and
	// end balanced.
	rng := rand.New(rand.NewSource(403))
	tr := memtrack.New()
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Parallel: 4, Tracker: tr}
	m := 64
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if tr.Live() != 0 {
		t.Fatalf("parallel run leaked %d words", tr.Live())
	}
	// The parallel level needs more than the sequential bound of 2m²/3.
	if tr.Peak() <= int64(2*m*m/3) {
		t.Errorf("peak %d suspiciously small for the parallel schedule", tr.Peak())
	}
	// But bounded by the documented mk/2 + kn/2 + 7mn/4 plus the recursive
	// sequential products underneath.
	bound := int64(m*m/2+m*m/2+7*m*m/4) + 7*int64(2*(m/2)*(m/2)/3)
	if tr.Peak() > bound {
		t.Errorf("peak %d exceeds parallel-level bound %d", tr.Peak(), bound)
	}
}

func TestParallelKernelMatchesBase(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
		m, k, n := 48, 40, 130 // n large enough to split across workers
		rowsB, colsB := k, n
		if tb.IsTrans() {
			rowsB, colsB = n, k
		}
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(rowsB, colsB, rng)
		c1 := matrix.NewRandom(m, n, rng)
		c2 := c1.Clone()
		blas.DgemmKernel(&blas.BlockedKernel{}, blas.NoTrans, tb, m, n, k, 1.5,
			a.Data, a.Stride, b.Data, b.Stride, 0.5, c1.Data, c1.Stride)
		pk := &blas.ParallelKernel{Workers: 4, Base: &blas.BlockedKernel{}}
		blas.DgemmKernel(pk, blas.NoTrans, tb, m, n, k, 1.5,
			a.Data, a.Stride, b.Data, b.Stride, 0.5, c2.Data, c2.Stride)
		// Column-split parallelism performs identical scalar arithmetic per
		// element, so results are bit-identical.
		if !c1.Equal(c2) {
			t.Fatalf("tb=%c: parallel kernel differs from base", tb)
		}
	}
}

func TestParallelKernelDelegatesToTaskThreader(t *testing.T) {
	// A base that can thread its own MC loop (kernel.Packed) runs through
	// MulAddTasks on the shared runtime; results stay bit-for-bit the
	// base's (MulAddTasks preserves block edges and KC order).
	rng := rand.New(rand.NewSource(407))
	m, k, n := 96, 48, 64
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c1 := matrix.NewRandom(m, n, rng)
	c2 := c1.Clone()
	base := &kernel.Packed{MC: 16, KC: 12, NC: 20}
	blas.DgemmKernel(base, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
		a.Data, a.Stride, b.Data, b.Stride, 0.5, c1.Data, c1.Stride)
	pk := &blas.ParallelKernel{Workers: 4, Base: &kernel.Packed{MC: 16, KC: 12, NC: 20}}
	blas.DgemmKernel(pk, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
		a.Data, a.Stride, b.Data, b.Stride, 0.5, c2.Data, c2.Stride)
	if !c1.Equal(c2) {
		t.Fatal("delegated parallel kernel differs from its base")
	}
}

func TestParallelKernelSmallNInline(t *testing.T) {
	// Below minParallelCols the kernel must not spawn and still be right.
	rng := rand.New(rand.NewSource(405))
	m, k, n := 20, 20, 8
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c1 := matrix.NewDense(m, n)
	c2 := matrix.NewDense(m, n)
	blas.DgemmKernel(blas.NaiveKernel{}, blas.NoTrans, blas.NoTrans, m, n, k, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c1.Data, c1.Stride)
	pk := &blas.ParallelKernel{Workers: 8, Base: blas.NaiveKernel{}}
	blas.DgemmKernel(pk, blas.NoTrans, blas.NoTrans, m, n, k, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c2.Data, c2.Stride)
	if !c1.Equal(c2) {
		t.Fatal("inline fallback differs")
	}
}

func TestCloneKernel(t *testing.T) {
	bk := &blas.BlockedKernel{MC: 32, KC: 32, NC: 32}
	clone := blas.CloneKernel(bk)
	if clone == blas.Kernel(bk) {
		t.Fatal("BlockedKernel must clone to a distinct instance")
	}
	if clone.Name() != "blocked" {
		t.Fatal("clone lost identity")
	}
	nk := blas.NaiveKernel{}
	if blas.CloneKernel(nk) != blas.Kernel(nk) {
		t.Fatal("stateless kernels may be shared")
	}
	if blas.CloneKernel(nil) == nil {
		t.Fatal("nil should clone DefaultKernel")
	}
}

func TestParallelConcurrentDGEFMMCalls(t *testing.T) {
	// Distinct DGEFMM invocations from multiple goroutines must be safe
	// when each has its own config (the documented usage).
	rng := rand.New(rand.NewSource(406))
	m := 48
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, matrix.NewDense(m, m))
	var wg sync.WaitGroup
	errs := make([]float64, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := &Config{Kernel: &blas.BlockedKernel{}, Criterion: Simple{Tau: 8}}
			c := matrix.NewDense(m, m)
			DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
			errs[g] = matrix.MaxAbsDiff(c, want)
		}(g)
	}
	wg.Wait()
	for g, e := range errs {
		if e > tol(m) {
			t.Fatalf("goroutine %d: error %g", g, e)
		}
	}
}
