package strassen

import "fmt"

// Criterion decides whether to apply another level of Strassen recursion to
// an (m, k, n) multiplication or to switch to the standard algorithm. This
// is the paper's "cutoff criterion" (Sections 2 and 3.4): establishing it
// well is crucial to competitive performance, and the paper's contribution
// is the parameterized hybrid condition (15).
type Criterion interface {
	// Name identifies the criterion in reports.
	Name() string
	// Recurse reports whether one more level of Strassen's algorithm should
	// be applied to an m×k by k×n product.
	Recurse(m, k, n int) bool
}

// Theoretical is inequality (7) of the operation-count model: recurse iff
// mkn > 4(mk + kn + mn). Its square solution is the classical m > 12. Not
// useful for tuned libraries (actual DGEMM speed departs from op counts)
// but included as the model's baseline.
type Theoretical struct{}

// Name implements Criterion.
func (Theoretical) Name() string { return "theoretical(7)" }

// Recurse implements Criterion.
func (Theoretical) Recurse(m, k, n int) bool {
	return int64(m)*int64(k)*int64(n) > 4*(int64(m)*int64(k)+int64(k)*int64(n)+int64(m)*int64(n))
}

// Square is condition (10), meaningful for square inputs: stop when
// m ≤ τ. Applied to rectangular inputs it only looks at the row dimension,
// so it is not used directly there (see Simple and Hybrid).
type Square struct {
	// Tau is the empirically determined crossover order τ.
	Tau int
}

// Name implements Criterion.
func (c Square) Name() string { return fmt.Sprintf("square(10) τ=%d", c.Tau) }

// Recurse implements Criterion.
func (c Square) Recurse(m, k, n int) bool { return m > c.Tau }

// Simple is condition (11), the rectangular criterion used by Douglas et
// al.: stop as soon as any dimension is ≤ τ. The paper shows this forgoes
// profitable recursions when one dimension is modest but the others are
// large (e.g. m=160, n=957, k=1957 on the RS/6000: an extra level saves
// 8.6 %).
type Simple struct {
	// Tau is the square crossover order τ.
	Tau int
}

// Name implements Criterion.
func (c Simple) Name() string { return fmt.Sprintf("simple(11) τ=%d", c.Tau) }

// Recurse implements Criterion.
func (c Simple) Recurse(m, k, n int) bool {
	return m > c.Tau && k > c.Tau && n > c.Tau
}

// Scaled is Higham's condition (12): stop iff mkn ≤ τ·(nk + mn + mk)/3,
// the theoretical condition (7) rescaled so it reduces to m ≤ τ in the
// square case. The paper criticizes its symmetry assumption.
type Scaled struct {
	// Tau is the square crossover order τ.
	Tau int
}

// Name implements Criterion.
func (c Scaled) Name() string { return fmt.Sprintf("scaled(12) τ=%d", c.Tau) }

// Recurse implements Criterion.
func (c Scaled) Recurse(m, k, n int) bool {
	lhs := 3 * int64(m) * int64(k) * int64(n)
	rhs := int64(c.Tau) * (int64(n)*int64(k) + int64(m)*int64(n) + int64(m)*int64(k))
	return lhs > rhs
}

// Hybrid is the paper's new criterion (15). It stops recursion iff
//
//	( mkn ≤ τm·nk + τk·mn + τn·mk  AND  (m ≤ τ OR k ≤ τ OR n ≤ τ) )
//	OR ( m ≤ τ AND k ≤ τ AND n ≤ τ ),
//
// so recursion is inherently allowed when all three dimensions exceed τ,
// inherently stopped when all are at most τ, and governed by the asymmetric
// three-parameter condition (13) in between. τm, τk, τn are measured with
// the other two dimensions held large (Section 3.4).
type Hybrid struct {
	// Tau is the square crossover τ of condition (10).
	Tau int
	// TauM, TauK, TauN are the rectangular parameters of condition (13).
	TauM, TauK, TauN int
}

// Name implements Criterion.
func (c Hybrid) Name() string {
	return fmt.Sprintf("hybrid(15) τ=%d τm=%d τk=%d τn=%d", c.Tau, c.TauM, c.TauK, c.TauN)
}

// Recurse implements Criterion.
func (c Hybrid) Recurse(m, k, n int) bool {
	allSmall := m <= c.Tau && k <= c.Tau && n <= c.Tau
	if allSmall {
		return false
	}
	anySmall := m <= c.Tau || k <= c.Tau || n <= c.Tau
	if !anySmall {
		return true
	}
	// Mixed region: condition (13) rules.
	lhs := int64(m) * int64(k) * int64(n)
	rhs := int64(c.TauM)*int64(n)*int64(k) + int64(c.TauK)*int64(m)*int64(n) + int64(c.TauN)*int64(m)*int64(k)
	return lhs > rhs
}

// Never always stops: DGEFMM degenerates to plain DGEMM. Useful as an
// ablation control and to verify DGEFMM's small-matrix behavior matches
// DGEMM exactly.
type Never struct{}

// Name implements Criterion.
func (Never) Name() string { return "never" }

// Recurse implements Criterion.
func (Never) Recurse(m, k, n int) bool { return false }

// Always recurses whenever all dimensions still admit a split (> 1). It
// reproduces "no cutoff" runs such as the paper's 38.2 % example; do not
// use it for production multiplies.
type Always struct{}

// Name implements Criterion.
func (Always) Name() string { return "always" }

// Recurse implements Criterion.
func (Always) Recurse(m, k, n int) bool { return m > 1 && k > 1 && n > 1 }
