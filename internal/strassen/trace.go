package strassen

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TraceEvent records one decision in the DGEFMM recursion: which action was
// taken at which depth on which problem shape. Tracing exists so users (and
// this repository's own tests) can see *why* a multiply performed the way
// it did — how deep the recursion went, where peeling fired, where the
// cutoff stopped recursion.
type TraceEvent struct {
	// Depth is the recursion depth (0 = the top-level call).
	Depth int
	// M, K, N are the problem dimensions at this node.
	M, K, N int
	// Action identifies the node kind: "base" (cutoff reached, DGEMM ran),
	// "strassen1", "strassen2", "original", "parallel" (one schedule level),
	// "peel", "peel-first", "pad-dynamic", "pad-static" (odd handling), or
	// "fixup-ger", "fixup-col", "fixup-row" (peeling repairs).
	Action string
}

// Tracer receives recursion events. Implementations must be safe for
// concurrent use when the parallel schedule is enabled.
type Tracer interface {
	// Event is called once per recursion decision.
	Event(TraceEvent)
}

// SpanTracer is an optional extension of Tracer. When the installed tracer
// implements it, the engine brackets every traced node with a
// BeginSpan/EndSpan pair in addition to the Event call, so implementations
// can measure per-node wall time and reconstruct the recursion tree: the
// span for a node stays open for the node's entire subtree (the seven
// recursive products, the peeling fixups, the stage-(4) combinations), and
// every child span carries its parent's ID.
//
// IDs are assigned by the implementation; 0 is reserved for "no parent"
// (the top-level call) and negative IDs mean "dropped" — the engine passes
// them back as parents unchanged, so an implementation that sheds load can
// drop whole subtrees by returning a negative ID. Implementations must be
// safe for concurrent use when the parallel schedule is enabled; Begin/End
// pairs for one node always run on the same goroutine.
type SpanTracer interface {
	Tracer
	// BeginSpan opens a span for the event under the given parent span ID
	// and returns the new span's ID.
	BeginSpan(parent int64, e TraceEvent) int64
	// EndSpan closes the span opened as id.
	EndSpan(id int64)
}

// CountTracer tallies events by action and tracks the deepest recursion;
// it is the cheap always-on summary.
type CountTracer struct {
	mu       sync.Mutex
	counts   map[string]int
	maxDepth int
	events   int
}

// NewCountTracer returns an empty tracer.
func NewCountTracer() *CountTracer {
	return &CountTracer{counts: make(map[string]int)}
}

// Event implements Tracer.
func (t *CountTracer) Event(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[e.Action]++
	t.events++
	if e.Depth > t.maxDepth {
		t.maxDepth = e.Depth
	}
}

// Count returns how many events carried the action.
func (t *CountTracer) Count(action string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[action]
}

// MaxDepth returns the deepest recursion seen.
func (t *CountTracer) MaxDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxDepth
}

// Total returns the total event count.
func (t *CountTracer) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// String renders the tally in a stable order.
func (t *CountTracer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "depth≤%d:", t.maxDepth)
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%d", k, t.counts[k])
	}
	return sb.String()
}

// LogTracer records the full event sequence (top-level-call order is
// deterministic for sequential configurations).
type LogTracer struct {
	mu     sync.Mutex
	Events []TraceEvent
}

// Event implements Tracer.
func (t *LogTracer) Event(e TraceEvent) {
	t.mu.Lock()
	t.Events = append(t.Events, e)
	t.mu.Unlock()
}

// noopDone is the shared no-op span closer returned when nothing needs
// closing, so the traced fast paths allocate nothing.
var noopDone = func() {}

// trace emits an event if a tracer is installed and, when the tracer also
// records spans, opens a span covering the node's whole subtree. The caller
// must invoke the returned function when the node's work (including
// recursive children) is complete. With no tracer installed this is two
// predictable branches and zero allocations — the nil-collector fast path.
func (e *engine) trace(depth int, m, k, n int, action string) func() {
	if e.tracer == nil {
		return noopDone
	}
	ev := TraceEvent{Depth: depth, M: m, K: k, N: n, Action: action}
	e.tracer.Event(ev)
	if e.spans == nil {
		return noopDone
	}
	parent := e.curSpan
	id := e.spans.BeginSpan(parent, ev)
	e.curSpan = id
	return func() {
		e.spans.EndSpan(id)
		e.curSpan = parent
	}
}
