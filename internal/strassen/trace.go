package strassen

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// TraceEvent records one decision in the DGEFMM recursion: which action was
// taken at which depth on which problem shape. Tracing exists so users (and
// this repository's own tests) can see *why* a multiply performed the way
// it did — how deep the recursion went, where peeling fired, where the
// cutoff stopped recursion.
type TraceEvent struct {
	// Depth is the recursion depth (0 = the top-level call).
	Depth int
	// M, K, N are the problem dimensions at this node.
	M, K, N int
	// Action identifies the node kind: "base" (cutoff reached, DGEMM ran),
	// "strassen1", "strassen2", "original", "parallel" (one schedule level),
	// "peel", "peel-first", "pad-dynamic", "pad-static" (odd handling), or
	// "fixup-ger", "fixup-col", "fixup-row" (peeling repairs).
	Action string
}

// Tracer receives recursion events. Implementations must be safe for
// concurrent use when the parallel schedule is enabled.
type Tracer interface {
	// Event is called once per recursion decision.
	Event(TraceEvent)
}

// CountTracer tallies events by action and tracks the deepest recursion;
// it is the cheap always-on summary.
type CountTracer struct {
	mu       sync.Mutex
	counts   map[string]int
	maxDepth int
	events   int
}

// NewCountTracer returns an empty tracer.
func NewCountTracer() *CountTracer {
	return &CountTracer{counts: make(map[string]int)}
}

// Event implements Tracer.
func (t *CountTracer) Event(e TraceEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.counts[e.Action]++
	t.events++
	if e.Depth > t.maxDepth {
		t.maxDepth = e.Depth
	}
}

// Count returns how many events carried the action.
func (t *CountTracer) Count(action string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[action]
}

// MaxDepth returns the deepest recursion seen.
func (t *CountTracer) MaxDepth() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.maxDepth
}

// Total returns the total event count.
func (t *CountTracer) Total() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// String renders the tally in a stable order.
func (t *CountTracer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	keys := make([]string, 0, len(t.counts))
	for k := range t.counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sb strings.Builder
	fmt.Fprintf(&sb, "depth≤%d:", t.maxDepth)
	for _, k := range keys {
		fmt.Fprintf(&sb, " %s=%d", k, t.counts[k])
	}
	return sb.String()
}

// LogTracer records the full event sequence (top-level-call order is
// deterministic for sequential configurations).
type LogTracer struct {
	mu     sync.Mutex
	Events []TraceEvent
}

// Event implements Tracer.
func (t *LogTracer) Event(e TraceEvent) {
	t.mu.Lock()
	t.Events = append(t.Events, e)
	t.mu.Unlock()
}

// trace emits an event if a tracer is installed.
func (e *engine) trace(depth int, m, k, n int, action string) {
	if e.tracer != nil {
		e.tracer.Event(TraceEvent{Depth: depth, M: m, K: k, N: n, Action: action})
	}
}
