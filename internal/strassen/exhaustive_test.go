package strassen

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// TestExhaustiveSmallShapes verifies DGEFMM against the reference multiply
// on EVERY shape (m, k, n) in a small box, with a cutoff low enough that
// most shapes recurse and peel. This pins down the entire boundary-case
// surface (odd/even mixes, dimension-1 operands, degenerate splits) in one
// deterministic sweep.
func TestExhaustiveSmallShapes(t *testing.T) {
	const lim = 12
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 2}}
	rng := rand.New(rand.NewSource(1234))
	// Pre-generate one large random pool and slice operands out of it so
	// the sweep does not spend its time in the RNG.
	pool := matrix.NewRandom(lim, lim*3, rng)
	aBuf := pool.Slice(0, 0, lim, lim)
	bBuf := pool.Slice(0, lim, lim, lim)
	cBuf := pool.Slice(0, 2*lim, lim, lim)

	for m := 1; m <= lim; m++ {
		for k := 1; k <= lim; k++ {
			for n := 1; n <= lim; n++ {
				a := aBuf.Slice(0, 0, m, k)
				b := bBuf.Slice(0, 0, k, n)
				c := matrix.NewDense(m, n)
				c.CopyFrom(cBuf.Slice(0, 0, m, n))
				want := refMul(blas.NoTrans, blas.NoTrans, 1.5, a.Clone(), b.Clone(), 0.5, c.Clone())
				DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
					a.Data, a.Stride, b.Data, b.Stride, 0.5, c.Data, c.Stride)
				if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
					t.Fatalf("(%d,%d,%d): maxdiff %g", m, k, n, d)
				}
			}
		}
	}
}

// TestExhaustiveSchedulesTinyShapes runs every schedule and odd strategy
// across the shape box's odd-rich corner.
func TestExhaustiveSchedulesTinyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(4321))
	for _, sched := range []Schedule{ScheduleAuto, ScheduleStrassen1, ScheduleStrassen2, ScheduleOriginal} {
		for _, odd := range []OddStrategy{OddPeel, OddPeelFirst, OddPadDynamic, OddPadStatic} {
			cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 2}, Schedule: sched, Odd: odd}
			for m := 3; m <= 9; m += 2 {
				for k := 3; k <= 9; k += 3 {
					for n := 4; n <= 8; n += 2 {
						a := matrix.NewRandom(m, k, rng)
						b := matrix.NewRandom(k, n, rng)
						c := matrix.NewRandom(m, n, rng)
						want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 1, c)
						DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1,
							a.Data, a.Stride, b.Data, b.Stride, 1, c.Data, c.Stride)
						if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
							t.Fatalf("sched=%v odd=%v (%d,%d,%d): %g", sched, odd, m, k, n, d)
						}
					}
				}
			}
		}
	}
}
