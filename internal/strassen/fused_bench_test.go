package strassen

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/memtrack"
)

// benchFusedConfig builds a DGEFMM config for the fused/unfused comparison:
// default kernel, a Simple criterion pinning exactly the requested depth of
// recursion at the benchmarked order, and a tracker so repeated iterations
// reuse workspace instead of benchmarking the allocator.
func benchFusedConfig(tau int, fused FusedMode) *Config {
	return &Config{
		Kernel:    kernel.Default(),
		Criterion: Simple{Tau: tau},
		Fused:     fused,
		Tracker:   memtrack.New(),
	}
}

// BenchmarkFusedMultiply compares, at each order: the kernel's plain DGEMM,
// one and two materialized Winograd levels, and one and two fused levels.
// The per-level sub-benchmarks pin the recursion depth via the Simple
// criterion (τ just above n/2 → one level; just above n/4 → two).
func BenchmarkFusedMultiply(b *testing.B) {
	for _, n := range []int{512, 768, 1024, 1536} {
		rng := rand.New(rand.NewSource(int64(n)))
		a := make([]float64, n*n)
		bb := make([]float64, n*n)
		c := make([]float64, n*n)
		for i := range a {
			a[i] = rng.Float64() - 0.5
			bb[i] = rng.Float64() - 0.5
		}
		run := func(name string, fn func()) {
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				b.SetBytes(0)
				for i := 0; i < b.N; i++ {
					fn()
				}
				flops := 2 * float64(n) * float64(n) * float64(n)
				b.ReportMetric(flops*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOPS")
			})
		}
		kern := kernel.Default()
		run("dgemm", func() {
			kern.MulAdd(blas.NoTrans, blas.NoTrans, n, n, n, 1, a, n, bb, n, c, n)
		})
		for _, levels := range []int{1, 2} {
			tau := n/(1<<levels) + 1
			for _, fm := range []FusedMode{FusedOff, FusedOn} {
				cfg := benchFusedConfig(tau, fm)
				run(fmt.Sprintf("strassen%d-fused-%s", levels, fm), func() {
					DGEFMM(cfg, blas.NoTrans, blas.NoTrans, n, n, n, 1,
						a, n, bb, n, 0, c, n)
				})
			}
		}
	}
}
