package strassen

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// countingKernel wraps a Kernel and records every base-case multiply, so
// tests can verify the recursion structure (7 products per level, 7^d base
// multiplies at depth d) rather than just the numerical result.
type countingKernel struct {
	inner blas.Kernel
	calls int
	dims  [][3]int
}

func (k *countingKernel) Name() string { return "counting(" + k.inner.Name() + ")" }

func (k *countingKernel) MulAdd(transA, transB blas.Transpose, m, n, kk int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	k.calls++
	k.dims = append(k.dims, [3]int{m, kk, n})
	k.inner.MulAdd(transA, transB, m, n, kk, alpha, a, lda, b, ldb, c, ldc)
}

func runCounted(t *testing.T, m, k, n int, crit Criterion, maxDepth int, beta float64) *countingKernel {
	t.Helper()
	ck := &countingKernel{inner: blas.NaiveKernel{}}
	cfg := &Config{Kernel: ck, Criterion: crit, MaxDepth: maxDepth}
	rng := rand.New(rand.NewSource(int64(m + k + n)))
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, beta, c)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > tol(k) {
		t.Fatalf("counted run produced wrong result: %g", d)
	}
	return ck
}

func TestSevenMultipliesPerLevel(t *testing.T) {
	skipIfAlgoPinned(t)
	// Power-of-two sizes, no peeling: exactly 7^d base multiplies.
	for d := 1; d <= 3; d++ {
		m := 8 << uint(d)
		ck := runCounted(t, m, m, m, Always{}, d, 0)
		want := 1
		for i := 0; i < d; i++ {
			want *= 7
		}
		if ck.calls != want {
			t.Errorf("depth %d on order %d: %d base multiplies, want %d", d, m, ck.calls, want)
		}
		// Every base multiply is the half^d block.
		for _, dims := range ck.dims {
			if dims != [3]int{m >> uint(d), m >> uint(d), m >> uint(d)} {
				t.Errorf("unexpected base dims %v", dims)
			}
		}
	}
}

func TestSevenMultipliesGeneralBeta(t *testing.T) {
	skipIfAlgoPinned(t)
	// STRASSEN2 (β≠0) must also use exactly 7 multiplies per level.
	ck := runCounted(t, 32, 32, 32, Always{}, 1, 0.5)
	if ck.calls != 7 {
		t.Errorf("one level with β≠0: %d base multiplies, want 7", ck.calls)
	}
}

func TestNoCutoffMeansOneBaseCall(t *testing.T) {
	ck := runCounted(t, 40, 40, 40, Never{}, 0, 0)
	if ck.calls != 1 {
		t.Errorf("Never criterion: %d base calls, want 1", ck.calls)
	}
	if ck.dims[0] != [3]int{40, 40, 40} {
		t.Errorf("base dims %v", ck.dims[0])
	}
}

func TestPeelingKeepsSevenCoreMultiplies(t *testing.T) {
	skipIfAlgoPinned(t)
	// Odd size at depth 1: the even core splits into 7 products; the
	// peeled borders are handled by DGER/DGEMV, NOT by extra kernel calls.
	ck := runCounted(t, 33, 33, 33, Always{}, 1, 0)
	if ck.calls != 7 {
		t.Errorf("odd one-level run: %d kernel multiplies, want 7 (fixups use Level 2 BLAS)", ck.calls)
	}
	for _, dims := range ck.dims {
		if dims != [3]int{16, 16, 16} {
			t.Errorf("core product dims %v, want {16,16,16}", dims)
		}
	}
}

func TestOriginalVariantAlsoSevenMultiplies(t *testing.T) {
	skipIfAlgoPinned(t)
	ck := &countingKernel{inner: blas.NaiveKernel{}}
	cfg := &Config{Kernel: ck, Criterion: Always{}, MaxDepth: 1, Schedule: ScheduleOriginal}
	rng := rand.New(rand.NewSource(9))
	m := 32
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if ck.calls != 7 {
		t.Errorf("original variant: %d multiplies, want 7", ck.calls)
	}
}

func TestRectangularRecursionDims(t *testing.T) {
	skipIfAlgoPinned(t)
	// A rectangular one-level split must produce products of exactly
	// (m/2, k/2, n/2).
	ck := runCounted(t, 16, 24, 40, Always{}, 1, 0)
	if ck.calls != 7 {
		t.Fatalf("calls = %d", ck.calls)
	}
	for _, dims := range ck.dims {
		if dims != [3]int{8, 12, 20} {
			t.Errorf("product dims %v, want {8,12,20}", dims)
		}
	}
}

func TestHybridStopsWhereExpected(t *testing.T) {
	// With the hybrid criterion, the thin-by-large anecdote recurses while
	// the simple criterion does a single base multiply.
	crit := Hybrid{Tau: 20, TauM: 8, TauK: 8, TauN: 8}
	ck := runCounted(t, 16, 128, 128, crit, 0, 0)
	if ck.calls < 7 {
		t.Errorf("hybrid should have recursed: %d calls", ck.calls)
	}
	ck2 := runCounted(t, 16, 128, 128, Simple{Tau: 20}, 0, 0)
	if ck2.calls != 1 {
		t.Errorf("simple criterion should not recurse: %d calls", ck2.calls)
	}
}
