package strassen

// Table-driven recursion: the generalization of the hand-coded Winograd
// schedules to any verified ⟨M, K, N⟩ coefficient table (internal/algo).
// One level splits A into an M×K block grid, B into K×N and C into M×N,
// forms each product's operands from the table's U/V columns, recurses,
// and accumulates through the W column — structurally the "original"
// schedule (three temporaries, β applied once up front) with the seven
// hard-coded products replaced by the table's R. The default path (no
// algorithm selected) never enters this file: the legacy schedules remain
// the ⟨2,2,2⟩ Winograd executor, and the classic ⟨2,2,2⟩ table run
// through this executor reproduces the original schedule bit for bit
// (table_test.go pins it), which is the proof the machinery is faithful.
//
// Odd dimensions use generalized dynamic peeling: strip m mod M rows,
// k mod K inner terms and n mod N columns, then repair with the legacy
// DGER/DGEMV fixups when the remainder is a single row/column (bitwise
// the paper's Section 3.3 fixups) and with base-case GEMM calls for the
// wider remainders rectangular grids produce.

import (
	"sync"

	"repro/internal/algo"
	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/phase"
)

// tableRecurse is the recursion test of the table-driven path: the grid
// must fit and the criterion (and depth bound) must ask for recursion —
// engine.mul's test with the 2×2×2 grid floor generalized to the table's.
func (e *engine) tableRecurse(m, k, n, depth int) bool {
	return m >= e.tbl.M && k >= e.tbl.K && n >= e.tbl.N &&
		(e.maxDepth == 0 || depth < e.maxDepth) &&
		e.crit.Recurse(m, k, n)
}

// tableMul mirrors engine.mul for the table-driven recursion: cutoff
// test, then generalized peeling, then one table level. The pad
// strategies apply only to the default path; the task DAG (taskdag.go)
// applies here too, running all R products as scheduler tasks.
func (e *engine) tableMul(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	if m == 0 || n == 0 || e.canceled() {
		return
	}
	if k == 0 || alpha == 0 {
		scaleInPlace(c, beta)
		return
	}
	if !e.tableRecurse(m, k, n, depth) {
		done := e.trace(depth, m, k, n, "base")
		e.baseGemm(c, a, b, alpha, beta)
		done()
		return
	}
	done := noopDone
	if m%e.tbl.M|k%e.tbl.K|n%e.tbl.N != 0 {
		done = e.trace(depth, m, k, n, "peel")
	}
	e.tablePeelMul(c, a, b, alpha, beta, depth)
	done()
}

// tablePeelMul generalizes dynamic peeling to an M×K×N grid: one table
// level on the largest grid-divisible core, then border repairs in the
// legacy fixup order (inner dimension into the core, peeled columns,
// peeled rows). A remainder of exactly 1 reuses the paper's DGER/DGEMV
// fixups bit for bit; wider remainders run one base-case GEMM each.
func (e *engine) tablePeelMul(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	me := m - m%e.tbl.M
	ke := k - k%e.tbl.K
	ne := n - n%e.tbl.N

	coreA := a.Slice(0, 0, me, ke)
	coreB := b.Slice(0, 0, ke, ne)
	coreC := c.Slice(0, 0, me, ne)
	e.tableLevel(coreC, coreA, coreB, alpha, beta, depth)

	if k != ke {
		if k-ke == 1 {
			done := e.trace(depth, m, k, n, "fixup-ger")
			s := e.prof.Begin(phase.StrassenPeel)
			x, incX := colVec(a, ke)
			y, incY := rowVec(b, ke)
			blas.Dger(me, ne, alpha, x, incX, y, incY, coreC.Data, coreC.Stride)
			s.End(2*int64(me)*int64(ne), 8*(int64(me)+int64(ne)+2*int64(me)*int64(ne)))
			done()
		} else {
			done := e.trace(depth, m, k, n, "fixup-gemm-k")
			e.baseGemm(coreC, a.Slice(0, ke, me, k-ke), b.Slice(ke, 0, k-ke, ne), alpha, 1)
			done()
		}
	}
	if n != ne {
		if n-ne == 1 {
			done := e.trace(depth, m, k, n, "fixup-col")
			s := e.prof.Begin(phase.StrassenPeel)
			aTop := a.Slice(0, 0, me, k)
			x, incX := colVec(b, ne)
			e.gemvN(aTop, alpha, x, incX, beta, c.Data[ne*c.Stride:], 1)
			s.End(2*int64(me)*int64(k), 8*(int64(me)*int64(k)+int64(k)+2*int64(me)))
			done()
		} else {
			done := e.trace(depth, m, k, n, "fixup-gemm-n")
			e.baseGemm(c.Slice(0, ne, me, n-ne), a.Slice(0, 0, me, k), b.Slice(0, ne, k, n-ne), alpha, beta)
			done()
		}
	}
	if m != me {
		if m-me == 1 {
			done := e.trace(depth, m, k, n, "fixup-row")
			s := e.prof.Begin(phase.StrassenPeel)
			x, incX := rowVec(a, me)
			e.gemvT(b, alpha, x, incX, beta, c.Data[me:], c.Stride)
			s.End(2*int64(k)*int64(n), 8*(int64(k)*int64(n)+int64(k)+2*int64(n)))
			done()
		} else {
			done := e.trace(depth, m, k, n, "fixup-gemm-m")
			e.baseGemm(c.Slice(me, 0, m-me, n), a.Slice(me, 0, m-me, k), b.Slice(0, 0, k, n), alpha, beta)
			done()
		}
	}
}

// tableLevel applies one level of the table on a grid-divisible problem:
// pre-scale C by β once, then for each product form the operands (S and
// T temporaries, or a raw block view for single +1 terms), recurse with
// β = 0 into the product buffer, and accumulate it into the W column's
// destinations — the original schedule's structure for arbitrary tables.
// When the children are base cases and the kernel's fused hooks can carry
// the table's term counts and fan-out, the whole level streams through
// FusedMulAdd instead and allocates nothing.
func (e *engine) tableLevel(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	t := e.tbl
	m, k, n := a.Rows, a.Cols, b.Cols
	mq, kq, nq := m/t.M, k/t.K, n/t.N

	if e.schedActive(depth) {
		done := e.trace(depth, m, k, n, "parallel")
		e.dagLevel(c, a, b, alpha, beta, depth)
		done()
		return
	}
	if e.fk != nil && e.sched == ScheduleAuto && !e.tableRecurse(mq, kq, nq, depth+1) &&
		tableFusable(t, e.fusedDestLimit()) {
		done := e.trace(depth, m, k, n, "fused1")
		e.fusedTable(c, a, b, alpha, beta, mq, kq, nq)
		done()
		return
	}
	done := e.trace(depth, m, k, n, "table")
	defer done()

	aBlk := func(i int) matrix.View { return a.Slice(i/t.K*mq, i%t.K*kq, mq, kq) }
	bBlk := func(i int) matrix.View { return b.Slice(i/t.N*kq, i%t.N*nq, kq, nq) }
	quads := make([]*matrix.Dense, t.M*t.N)
	for i := range quads {
		quads[i] = c.Slice(i/t.N*mq, i%t.N*nq, mq, nq)
	}
	e.phScaleQuads(quads, beta)

	s := e.allocMat(mq, kq)
	defer e.freeMat(s)
	tt := e.allocMat(kq, nq)
	defer e.freeMat(tt)
	p := e.allocMat(mq, nq)
	defer e.freeMat(p)

	d := depth + 1
	sv, tv, pv := matrix.ViewOf(s), matrix.ViewOf(tt), matrix.ViewOf(p)
	for r := 0; r < t.R; r++ {
		av := e.formOperand(s, sv, t.ATerms(r), aBlk)
		bw := e.formOperand(tt, tv, t.BTerms(r), bBlk)
		e.tableMul(p, av, bw, alpha, 0, d)
		for _, tm := range t.CTerms(r) {
			switch tm.Coeff {
			case 1:
				e.phAddAssign(phQ, quads[tm.Block], pv)
			case -1:
				e.phSubAssign(phQ, quads[tm.Block], pv)
			default:
				e.phAccum(phQ, quads[tm.Block], tm.Coeff, pv)
			}
		}
	}
}

// formOperand materializes one table column's linear combination of
// blocks into dst, or returns the block view directly for a single +1
// term (zero-cost, as the hand-coded schedules pass bare quadrants). Two
// leading ±1 terms start with one Add/Sub pass — a +1/−1 pair computes
// plus − minus regardless of column order, matching the hand-coded
// phSub call sites exactly — and every further term is one accumulate
// pass (two ops per element for a general coefficient).
// internal/opcount's operandPasses mirrors these choices pass for pass;
// change them together.
func (e *engine) formOperand(dst *matrix.Dense, dstView matrix.View, terms []algo.Term, blk func(int) matrix.View) matrix.View {
	if len(terms) == 1 && terms[0].Coeff == 1 {
		return blk(terms[0].Block)
	}
	i := 1
	switch {
	case len(terms) >= 2 && terms[0].Coeff == 1 && terms[1].Coeff == 1:
		e.phAdd(phAS, dst, blk(terms[0].Block), blk(terms[1].Block))
		i = 2
	case len(terms) >= 2 && terms[0].Coeff == 1 && terms[1].Coeff == -1:
		e.phSub(phAS, dst, blk(terms[0].Block), blk(terms[1].Block))
		i = 2
	case len(terms) >= 2 && terms[0].Coeff == -1 && terms[1].Coeff == 1:
		e.phSub(phAS, dst, blk(terms[1].Block), blk(terms[0].Block))
		i = 2
	default:
		e.phScaleCopy(phAS, dst, terms[0].Coeff, blk(terms[0].Block))
	}
	for ; i < len(terms); i++ {
		switch terms[i].Coeff {
		case 1:
			e.phAddAssign(phAS, dst, blk(terms[i].Block))
		case -1:
			e.phSubAssign(phAS, dst, blk(terms[i].Block))
		default:
			e.phAccum(phAS, dst, terms[i].Coeff, blk(terms[i].Block))
		}
	}
	return dstView
}

// phScaleCopy brackets dst ← g·x (one multiply per element; a pure copy
// when g = 1).
func (e *engine) phScaleCopy(id phase.ID, dst *matrix.Dense, g float64, x matrix.View) {
	s := e.prof.Begin(id)
	matrix.Axpby(dst, g, x, 0)
	flops := elems(dst)
	if g == 1 {
		flops = 0
	}
	s.End(flops, 16*elems(dst))
}

// phAccum brackets dst ← g·x + dst (a multiply and an add per element).
func (e *engine) phAccum(id phase.ID, dst *matrix.Dense, g float64, x matrix.View) {
	s := e.prof.Begin(id)
	matrix.Axpby(dst, g, x, 1)
	s.End(2*elems(dst), 24*elems(dst))
}

// tableFusable reports whether a table's products fit the kernel's fused
// hooks: ±1 coefficients (the hooks' bitwise contract), at most 4 operand
// terms (the packers' capacity) and a destination fan-out within the
// kernel's native write-out limit.
func tableFusable(t *algo.Table, destLimit int) bool {
	ops, dests := t.MaxTerms()
	if destLimit > 4 {
		destLimit = 4
	}
	return ops <= 4 && dests <= destLimit && t.PlusMinusOne()
}

// tableRecords caches each table's fused record list (derived once; the
// records only depend on the table, which is immutable).
var tableRecords sync.Map // *algo.Table → []fusedRecord

// tableFusedRecords derives the fused record list from a table's term
// lists: block indices become grid coordinates on the table's own grids
// (fusedLevel1 is exactly this derivation applied to the classic table).
func tableFusedRecords(t *algo.Table) []fusedRecord {
	if recs, ok := tableRecords.Load(t); ok {
		return recs.([]fusedRecord)
	}
	grid := func(terms []algo.Term, cols int) []fusedTerm {
		out := make([]fusedTerm, len(terms))
		for i, tm := range terms {
			out[i] = fusedTerm{r: tm.Block / cols, c: tm.Block % cols, g: tm.Coeff}
		}
		return out
	}
	recs := make([]fusedRecord, t.R)
	for r := 0; r < t.R; r++ {
		recs[r] = fusedRecord{
			a:   grid(t.ATerms(r), t.K),
			b:   grid(t.BTerms(r), t.N),
			dst: grid(t.CTerms(r), t.N),
		}
	}
	tableRecords.Store(t, recs)
	return recs
}

// fusedTable streams one table level through the kernel's fused hooks —
// fusedWinograd generalized from the 2^levels square grid to the table's
// M×K / K×N / M×N grids. β is applied once up front; no Strassen
// temporaries are allocated.
func (e *engine) fusedTable(c *matrix.Dense, a, b matrix.View, alpha, beta float64, mq, kq, nq int) {
	e.phScaleQuads([]*matrix.Dense{c}, beta)
	var at, bt [4]kernel.Term
	var dt [4]kernel.Dest
	aOp := kernel.Operand{Ld: a.Stride, Trans: a.Trans}
	bOp := kernel.Operand{Ld: b.Stride, Trans: b.Trans}
	for _, rec := range tableFusedRecords(e.tbl) {
		for i, t := range rec.a {
			at[i] = kernel.Term{Data: a.Slice(t.r*mq, t.c*kq, mq, kq).Data, Coeff: t.g}
		}
		for i, t := range rec.b {
			bt[i] = kernel.Term{Data: b.Slice(t.r*kq, t.c*nq, kq, nq).Data, Coeff: t.g}
		}
		for i, t := range rec.dst {
			q := c.Slice(t.r*mq, t.c*nq, mq, nq)
			dt[i] = kernel.Dest{Data: q.Data, Ld: q.Stride, Coeff: t.g}
		}
		aOp.Terms = at[:len(rec.a)]
		bOp.Terms = bt[:len(rec.b)]
		e.fk.FusedMulAdd(mq, nq, kq, alpha, aOp, bOp, dt[:len(rec.dst)])
	}
}
