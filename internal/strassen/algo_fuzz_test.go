package strassen

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/algo"
	"repro/internal/blas"
	"repro/internal/matrix"
)

// deriveTable builds a random valid coefficient table by applying
// Brent-preserving transforms to a registered one: a product permutation
// (the bilinear form is a sum over products, so order is free), per-product
// sign flips on a pair of the three columns (the signs cancel in the
// U·V·W product), and per-product power-of-two rescalings of U against V
// (exact in floating point, so the Brent sums are unchanged bit for bit).
// The result must still pass the Brent check — algo.New re-verifies — and
// must still multiply correctly through the generic executor.
func deriveTable(base *algo.Table, xform int64) (*algo.Table, error) {
	rng := rand.New(rand.NewSource(xform))
	rows := func(src [][]float64) [][]float64 {
		out := make([][]float64, len(src))
		for i, r := range src {
			out[i] = append([]float64(nil), r...)
		}
		return out
	}
	u, v, w := rows(base.U), rows(base.V), rows(base.W)

	// Product permutation: shuffle the columns of U, V and W together.
	perm := rng.Perm(base.R)
	col := func(m [][]float64, j int) []float64 {
		c := make([]float64, len(m))
		for i := range m {
			c[i] = m[i][j]
		}
		return c
	}
	setCol := func(m [][]float64, j int, c []float64) {
		for i := range m {
			m[i][j] = c[i]
		}
	}
	for _, m := range [][][]float64{u, v, w} {
		cols := make([][]float64, base.R)
		for j := range cols {
			cols[j] = col(m, j)
		}
		for j, p := range perm {
			setCol(m, j, cols[p])
		}
	}

	scaleCol := func(m [][]float64, j int, s float64) {
		for i := range m {
			m[i][j] *= s
		}
	}
	for r := 0; r < base.R; r++ {
		// Sign flip on a pair of columns: (U,V), (U,W), (V,W) or none.
		switch rng.Intn(4) {
		case 0:
			scaleCol(u, r, -1)
			scaleCol(v, r, -1)
		case 1:
			scaleCol(u, r, -1)
			scaleCol(w, r, -1)
		case 2:
			scaleCol(v, r, -1)
			scaleCol(w, r, -1)
		}
		// Exact rescale: U·s against V/s, powers of two only.
		if s := []float64{1, 1, 2, 0.5, 4, 0.25}[rng.Intn(6)]; s != 1 {
			scaleCol(u, r, s)
			scaleCol(v, r, 1/s)
		}
	}
	return algo.New("derived", base.M, base.K, base.N, u, v, w)
}

// FuzzAlgoTable fuzzes the coefficient-table machinery end to end: a
// random valid table (Brent-preserving transforms of a registered one)
// multiplying random operands through the generic executor must match the
// naive oracle within the table's Growth-scaled Higham bound. A transform
// that fails algo.New's re-verification, or a verified table that
// multiplies wrongly, is a found bug in the checker or the executor.
func FuzzAlgoTable(f *testing.F) {
	f.Add(int64(1), byte(0), int64(7), byte(12), byte(12), byte(12), 1.0, 0.0)
	f.Add(int64(2), byte(1), int64(99), byte(9), byte(5), byte(13), 1.5, 0.5)
	f.Add(int64(3), byte(2), int64(3), byte(18), byte(8), byte(18), -2.0, 1.0)
	f.Add(int64(4), byte(3), int64(42), byte(27), byte(27), byte(27), 0.25, -1.0)
	f.Add(int64(5), byte(4), int64(1234), byte(17), byte(4), byte(33), 1.0, 2.0)
	tables := algo.Tables()
	f.Fuzz(func(t *testing.T, seed int64, tb byte, xform int64, mb, kb, nb byte, alpha, beta float64) {
		base := tables[int(tb)%len(tables)]
		tbl, err := deriveTable(base, xform)
		if err != nil {
			t.Fatalf("Brent-preserving transform %d of %s rejected: %v", xform, base.Name, err)
		}
		m, k, n := int(mb)%40+1, int(kb)%40+1, int(nb)%40+1
		if math.IsNaN(alpha) || math.IsInf(alpha, 0) {
			alpha = 1
		}
		if math.IsNaN(beta) || math.IsInf(beta, 0) {
			beta = 0
		}
		alpha, beta = math.Remainder(alpha, 4), math.Remainder(beta, 4)

		rng := rand.New(rand.NewSource(seed))
		a := matrix.NewRandom(m, k, rng)
		b := matrix.NewRandom(k, n, rng)
		c := matrix.NewRandom(m, n, rng)
		want := refMul(blas.NoTrans, blas.NoTrans, alpha, a, b, beta, c)

		e := &engine{kern: blas.NaiveKernel{}, crit: Simple{Tau: 4}, tbl: tbl}
		e.tableMul(c, matrix.ViewOf(a), matrix.ViewOf(b), alpha, beta, 0)

		// Higham-style bound: the table's growth factor compounds per
		// recursion level; scale the base tolerance by it, with headroom
		// for the scalars.
		depth := 0
		for mm, kk, nn := m, k, n; mm > 4 && kk > 4 && nn > 4; depth++ {
			mm, kk, nn = mm/tbl.M, kk/tbl.K, nn/tbl.N
		}
		bound := tol(k) * math.Pow(tbl.Growth()+2, float64(depth)) *
			(math.Abs(alpha) + math.Abs(beta) + 1)
		if d := matrix.MaxAbsDiff(c, want); !(d <= bound) {
			t.Fatalf("table %s⊳%d m=%d k=%d n=%d α=%g β=%g: |Δ|=%g exceeds %g",
				base.Name, xform, m, k, n, alpha, beta, d, bound)
		}
	})
}
