package strassen

import "repro/internal/matrix"

// original applies one level of Strassen's original 1969 construction
// (7 multiplies, 18 adds/subtracts):
//
//	M1 = (A11+A22)(B11+B22)   M5 = (A11+A12)B22
//	M2 = (A21+A22)B11         M6 = (A21−A11)(B11+B12)
//	M3 = A11(B12−B22)         M7 = (A12−A22)(B21+B22)
//	M4 = A22(B21−B11)
//
//	C11 = M1+M4−M5+M7   C12 = M3+M5
//	C21 = M2+M4         C22 = M1−M2+M3+M6
//
// It exists for the paper's Winograd-vs-original comparison (equations (4)
// and (5) predict Winograd saves m0²(7^d − 4^d) operations); three
// temporaries (S, T, M) are used, as in STRASSEN2.
func (e *engine) original(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	m2, k2, n2 := m/2, k/2, n/2

	a11 := a.Slice(0, 0, m2, k2)
	a12 := a.Slice(0, k2, m2, k2)
	a21 := a.Slice(m2, 0, m2, k2)
	a22 := a.Slice(m2, k2, m2, k2)
	b11 := b.Slice(0, 0, k2, n2)
	b12 := b.Slice(0, n2, k2, n2)
	b21 := b.Slice(k2, 0, k2, n2)
	b22 := b.Slice(k2, n2, k2, n2)
	c11 := c.Slice(0, 0, m2, n2)
	c12 := c.Slice(0, n2, m2, n2)
	c21 := c.Slice(m2, 0, m2, n2)
	c22 := c.Slice(m2, n2, m2, n2)

	s := e.allocMat(m2, k2)
	defer e.freeMat(s)
	t := e.allocMat(k2, n2)
	defer e.freeMat(t)
	p := e.allocMat(m2, n2)
	defer e.freeMat(p)

	d := depth + 1
	sv, tv, pv := matrix.ViewOf(s), matrix.ViewOf(t), matrix.ViewOf(p)

	// Pre-scale C by beta once; every product is then accumulated with
	// coefficient ±1.
	e.phScaleQuads([]*matrix.Dense{c11, c12, c21, c22}, beta)

	// M1 = (A11+A22)(B11+B22) → C11, C22
	e.phAdd(phAS, s, a11, a22)
	e.phAdd(phAS, t, b11, b22)
	e.mul(p, sv, tv, alpha, 0, d)
	e.phAddAssign(phQ, c11, pv)
	e.phAddAssign(phQ, c22, pv)

	// M2 = (A21+A22)B11 → C21, −C22
	e.phAdd(phAS, s, a21, a22)
	e.mul(p, sv, b11, alpha, 0, d)
	e.phAddAssign(phQ, c21, pv)
	e.phSubAssign(phQ, c22, pv)

	// M3 = A11(B12−B22) → C12, C22
	e.phSub(phAS, t, b12, b22)
	e.mul(p, a11, tv, alpha, 0, d)
	e.phAddAssign(phQ, c12, pv)
	e.phAddAssign(phQ, c22, pv)

	// M4 = A22(B21−B11) → C11, C21
	e.phSub(phAS, t, b21, b11)
	e.mul(p, a22, tv, alpha, 0, d)
	e.phAddAssign(phQ, c11, pv)
	e.phAddAssign(phQ, c21, pv)

	// M5 = (A11+A12)B22 → −C11, C12
	e.phAdd(phAS, s, a11, a12)
	e.mul(p, sv, b22, alpha, 0, d)
	e.phSubAssign(phQ, c11, pv)
	e.phAddAssign(phQ, c12, pv)

	// M6 = (A21−A11)(B11+B12) → C22
	e.phSub(phAS, s, a21, a11)
	e.phAdd(phAS, t, b11, b12)
	e.mul(p, sv, tv, alpha, 0, d)
	e.phAddAssign(phQ, c22, pv)

	// M7 = (A12−A22)(B21+B22) → C11
	e.phSub(phAS, s, a12, a22)
	e.phAdd(phAS, t, b21, b22)
	e.mul(p, sv, tv, alpha, 0, d)
	e.phAddAssign(phQ, c11, pv)
}
