package strassen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/matrix"
)

// Property-based testing over randomly drawn shapes, strides, transposes,
// scalars, schedules and odd-dimension strategies: DGEFMM must agree with
// the reference multiply everywhere in its input space.

type fmmCase struct {
	M, N, K    uint8
	TA, TB     bool
	Sched      uint8
	Odd        uint8
	AlphaRaw   int8
	BetaRaw    int8
	Seed       int64
	PadA, PadB uint8
}

func (c fmmCase) dims() (m, n, k int) {
	return int(c.M%48) + 1, int(c.N%48) + 1, int(c.K%48) + 1
}

func TestQuickDGEFMMMatchesReference(t *testing.T) {
	f := func(tc fmmCase) bool {
		m, n, k := tc.dims()
		alpha := float64(tc.AlphaRaw)/16 + 0.25 // avoid alpha exactly 0 most of the time
		beta := float64(tc.BetaRaw) / 16
		sched := Schedule(tc.Sched % 4)
		odd := OddStrategy(tc.Odd % 3)
		rng := rand.New(rand.NewSource(tc.Seed))

		rowsA, colsA := m, k
		ta := blas.NoTrans
		if tc.TA {
			ta = blas.Trans
			rowsA, colsA = k, m
		}
		rowsB, colsB := k, n
		tb := blas.NoTrans
		if tc.TB {
			tb = blas.Trans
			rowsB, colsB = n, k
		}
		padA := int(tc.PadA % 3)
		padB := int(tc.PadB % 3)
		bigA := matrix.NewRandom(rowsA+padA, colsA, rng)
		bigB := matrix.NewRandom(rowsB+padB, colsB, rng)
		a := bigA.Slice(0, 0, rowsA, colsA)
		b := bigB.Slice(0, 0, rowsB, colsB)
		c := matrix.NewRandom(m, n, rng)

		want := refMul(ta, tb, alpha, a.Clone(), b.Clone(), beta, c.Clone())
		cfg := &Config{
			Kernel:    blas.NaiveKernel{},
			Criterion: Simple{Tau: 5},
			Schedule:  sched,
			Odd:       odd,
		}
		got := c.Clone()
		DGEFMM(cfg, ta, tb, m, n, k, alpha, a.Data, a.Stride, b.Data, b.Stride, beta, got.Data, got.Stride)
		return matrix.MaxAbsDiff(got, want) <= tol(k)*(1+absf(alpha)+absf(beta))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// The distributive law must hold: A(B1+B2) ≈ AB1 + AB2 under DGEFMM.
func TestQuickDGEFMMDistributive(t *testing.T) {
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 6}}
	f := func(seed int64, mRaw, kRaw, nRaw uint8) bool {
		m, k, n := int(mRaw%24)+4, int(kRaw%24)+4, int(nRaw%24)+4
		rng := rand.New(rand.NewSource(seed))
		a := matrix.NewRandom(m, k, rng)
		b1 := matrix.NewRandom(k, n, rng)
		b2 := matrix.NewRandom(k, n, rng)
		bSum := matrix.NewDense(k, n)
		matrix.Add(bSum, matrix.ViewOf(b1), matrix.ViewOf(b2))

		prod := func(b *matrix.Dense) *matrix.Dense {
			c := matrix.NewDense(m, n)
			Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
			return c
		}
		lhs := prod(bSum)
		rhs := prod(b1)
		matrix.AddAssign(rhs, matrix.ViewOf(prod(b2)))
		return matrix.MaxAbsDiff(lhs, rhs) <= tol(k)*10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Identity: A·I = A and I·A = A through the full recursion.
func TestQuickDGEFMMIdentity(t *testing.T) {
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 4}}
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		a := matrix.NewRandom(n, n, rng)
		id := matrix.Identity(n)
		c := matrix.NewDense(n, n)
		Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, id, 0)
		if matrix.MaxAbsDiff(c, a) > tol(n) {
			return false
		}
		Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, id, a, 0)
		return matrix.MaxAbsDiff(c, a) <= tol(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Numerical stability sanity: the Strassen forward error on well-scaled
// inputs stays within the Brent/Higham-style growth envelope, far from
// catastrophic. (Higham 1990: Strassen's error bound has a larger constant
// than conventional multiply but is still O(n·u·‖A‖‖B‖) in practice for
// moderate recursion depth.)
func TestStrassenStabilityEnvelope(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 16}}
	for _, n := range []int{64, 128, 256} {
		a := matrix.NewRandom(n, n, rng)
		b := matrix.NewRandom(n, n, rng)
		c := matrix.NewDense(n, n)
		Multiply(cfg, c, blas.NoTrans, blas.NoTrans, 1, a, b, 0)
		want := matrix.NewDense(n, n)
		blas.DgemmKernel(blas.NaiveKernel{}, blas.NoTrans, blas.NoTrans, n, n, n, 1,
			a.Data, a.Stride, b.Data, b.Stride, 0, want.Data, want.Stride)
		diff := matrix.MaxAbsDiff(c, want)
		// Envelope: u · n^(log2 12) · max|A| · max|B| is Higham's square-case
		// growth; use a generous multiple of n²·u as the practical cap.
		u := 2.22e-16
		cap := 100 * float64(n) * float64(n) * u * matrix.MaxAbs(a) * matrix.MaxAbs(b)
		if diff > cap {
			t.Errorf("n=%d: Strassen error %g exceeds stability envelope %g", n, diff, cap)
		}
	}
}
