package strassen

// Task-DAG execution: the recursion's products run as a dependency graph on
// the work-stealing runtime (internal/sched) instead of a flat goroutine
// fan-out. One DAG level has three task ranks wired by dependency edges —
// operand formation (the S_r/T_r linear combinations), the R recursive
// products, and one single-writer write-back task per C block — so a
// product starts the moment its own operands exist, not when every operand
// of every product exists, and a C block combines as soon as its last
// product retires.
//
// Determinism: every buffer has exactly one writing task, write-back
// accumulates products in ascending r (the sequential table executor's
// order), and lane edges make the in-flight product cap a property of the
// graph rather than of scheduler timing — so the same configuration
// produces bit-for-bit identical output on a 1-worker and an N-worker
// runtime (FuzzSchedDAG pins this on the scalar Compat kernel).
//
// The schedule works for any verified ⟨M, K, N⟩ coefficient table; the
// default path runs it on the builtin Winograd ⟨2,2,2⟩ table, whose
// operand combinations are exactly the hand-coded schedule's S1..S4/T1..T4,
// so the workspace per level stays the documented 4·mk/4 + 4·kn/4 + 7·mn/4.

import (
	"context"

	"repro/internal/algo"
	"repro/internal/matrix"
	"repro/internal/sched"
)

// schedParams resolves the task-runtime knobs from a Config: the per-level
// in-flight product cap (lanes), the number of top recursion levels that
// expand into tasks (levels), and whether the DAG path is active at all.
// The compat shim lives here: Parallel/ParallelLevels predate the runtime
// and map onto lanes/levels with their legacy defaults, so old
// configurations keep their documented concurrency bound and workspace
// accounting while executing on the shared scheduler.
func (cfg *Config) schedParams(r int) (lanes, levels int, dag bool) {
	switch {
	case cfg.Sched != nil:
		lanes = cfg.Parallel
		if lanes < 1 {
			lanes = cfg.Sched.Workers()
		}
		levels = cfg.SchedLevels
		if levels <= 0 {
			levels = cfg.ParallelLevels
		}
		if levels <= 0 {
			levels = schedAutoLevels(r, cfg.Sched.Workers())
		}
		return lanes, levels, true
	case cfg.Parallel > 1:
		levels = cfg.ParallelLevels
		if levels <= 0 {
			levels = 1
		}
		return cfg.Parallel, levels, true
	}
	return 0, 0, false
}

// schedCores returns the worker count of the runtime a call would execute
// on (0 when no task runtime is configured); the cutoff resolution and
// PlanFor consult it so the "<kernel>@<cores>" calibration rows and the
// threaded-leaf workspace accounting see the same figure the engine does.
func (cfg *Config) schedCores() int {
	switch {
	case cfg.Sched != nil:
		return cfg.Sched.Workers()
	case cfg.Parallel > 1:
		return sched.Shared().Workers()
	}
	return 0
}

// schedAutoLevels picks how many top recursion levels to expand into tasks
// when the configuration does not say: enough that the product fan-out
// (R per level) covers the workers, capped at 3 — beyond that the task
// granularity shrinks below the scheduling overhead.
func schedAutoLevels(r, workers int) int {
	lv, span := 1, r
	for span < workers && lv < 3 {
		span *= r
		lv++
	}
	return lv
}

// schedActive reports whether this recursion level expands into tasks.
func (e *engine) schedActive(depth int) bool {
	return e.sub != nil && e.schedLevels > depth
}

// runCtx is the context the engine's DAGs run under.
func (e *engine) runCtx() context.Context {
	if e.ctx != nil {
		return e.ctx
	}
	return context.Background()
}

// canceled reports whether the call's context has expired; the recursion
// polls it at every mul entry so cancellation lands between products (the
// DAG additionally drains in-flight levels through sched's skip path).
func (e *engine) canceled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// dagTable resolves the coefficient table a DAG level executes: the
// configured table, or the builtin Winograd ⟨2,2,2⟩ on the default path.
func (e *engine) dagTable() *algo.Table {
	if e.tbl != nil {
		return e.tbl
	}
	return algo.Default()
}

// dagBuffers counts the operand buffers one DAG level of a table
// materializes: one per multi-term (or non-unit) operand column. A single
// +1 term passes the raw block view, exactly as formOperand does, so the
// builtin Winograd table costs 4 S and 4 T buffers — the figures planSim's
// parallel branch charges.
func dagBuffers(t *algo.Table) (sBufs, tBufs int) {
	for r := 0; r < t.R; r++ {
		if at := t.ATerms(r); len(at) != 1 || at[0].Coeff != 1 {
			sBufs++
		}
		if bt := t.BTerms(r); len(bt) != 1 || bt[0].Coeff != 1 {
			tBufs++
		}
	}
	return sBufs, tBufs
}

// taskEngine derives the engine a product task runs with: same policy, its
// own kernel state, and the executing worker as its submitter — nested DAG
// levels and threaded leaves then push onto the worker's own deque
// (helping) instead of blocking the pool from outside.
func (e *engine) taskEngine(w *sched.Worker) *engine {
	sub := e.workerEngine()
	if w != nil {
		sub.sub = w
	}
	return sub
}

// recurseInto runs one product's recursion (β = 0, α folded in) on
// whichever executor the engine is driving.
func (e *engine) recurseInto(p *matrix.Dense, av, bw matrix.View, alpha float64, depth int) {
	if e.tbl != nil {
		e.tableMul(p, av, bw, alpha, 0, depth)
		return
	}
	e.mul(p, av, bw, alpha, 0, depth)
}

// dagLevel applies one recursion level as a task DAG on an exactly
// grid-divisible problem. Workspace: every multi-term operand and every
// product gets its own buffer (concurrent tasks must not share
// temporaries), all drawn before the DAG starts and freed after it drains,
// so the arena peak is level-deterministic. Lane edges (product r depends
// on product r−lanes) cap the products in flight at lanes, reproducing the
// legacy semaphore bound deterministically — planSim's
// "own + min(lanes, R)·child" workspace accounting stays sound on any
// host because the cap is structural, not a scheduling accident.
func (e *engine) dagLevel(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	t := e.dagTable()
	m, k, n := a.Rows, a.Cols, b.Cols
	mq, kq, nq := m/t.M, k/t.K, n/t.N

	aBlk := func(i int) matrix.View { return a.Slice(i/t.K*mq, i%t.K*kq, mq, kq) }
	bBlk := func(i int) matrix.View { return b.Slice(i/t.N*kq, i%t.N*nq, kq, nq) }

	sBuf := make([]*matrix.Dense, t.R)
	tBuf := make([]*matrix.Dense, t.R)
	pBuf := make([]*matrix.Dense, t.R)
	for r := 0; r < t.R; r++ {
		if at := t.ATerms(r); len(at) != 1 || at[0].Coeff != 1 {
			sBuf[r] = e.allocMat(mq, kq)
		}
		if bt := t.BTerms(r); len(bt) != 1 || bt[0].Coeff != 1 {
			tBuf[r] = e.allocMat(kq, nq)
		}
		pBuf[r] = e.allocMat(mq, nq)
	}
	defer func() {
		for r := t.R - 1; r >= 0; r-- {
			e.freeMat(pBuf[r])
			if tBuf[r] != nil {
				e.freeMat(tBuf[r])
			}
			if sBuf[r] != nil {
				e.freeMat(sBuf[r])
			}
		}
	}()

	lanes := e.schedLanes
	if lanes < 1 || lanes > t.R {
		lanes = t.R
	}
	d := sched.NewDAG()
	prods := make([]*sched.Node, t.R)
	for r := 0; r < t.R; r++ {
		r := r
		// Operand formation: the engine itself is safe to share here (the
		// formation passes touch only the profiler and the matrix data, and
		// each buffer has one writer), so no per-task engine is derived.
		var deps []*sched.Node
		if sBuf[r] != nil {
			deps = append(deps, d.Add(func(*sched.Worker) {
				e.formOperand(sBuf[r], matrix.ViewOf(sBuf[r]), t.ATerms(r), aBlk)
			}))
		}
		if tBuf[r] != nil {
			deps = append(deps, d.Add(func(*sched.Worker) {
				e.formOperand(tBuf[r], matrix.ViewOf(tBuf[r]), t.BTerms(r), bBlk)
			}))
		}
		if r >= lanes {
			deps = append(deps, prods[r-lanes])
		}
		prods[r] = d.Add(func(w *sched.Worker) {
			av := aBlk(t.ATerms(r)[0].Block)
			if sBuf[r] != nil {
				av = matrix.ViewOf(sBuf[r])
			}
			bw := bBlk(t.BTerms(r)[0].Block)
			if tBuf[r] != nil {
				bw = matrix.ViewOf(tBuf[r])
			}
			e.taskEngine(w).recurseInto(pBuf[r], av, bw, alpha, depth+1)
		}, deps...)
	}
	for l := 0; l < t.M*t.N; l++ {
		var deps []*sched.Node
		var rs []int
		for r := 0; r < t.R; r++ {
			if t.W[l][r] != 0 {
				deps = append(deps, prods[r])
				rs = append(rs, r)
			}
		}
		quad := c.Slice(l/t.N*mq, l%t.N*nq, mq, nq)
		d.Add(func(*sched.Worker) {
			e.phScaleQuads([]*matrix.Dense{quad}, beta)
			for _, r := range rs {
				pv := matrix.ViewOf(pBuf[r])
				switch g := t.W[l][r]; g {
				case 1:
					e.phAddAssign(phQ, quad, pv)
				case -1:
					e.phSubAssign(phQ, quad, pv)
				default:
					e.phAccum(phQ, quad, g, pv)
				}
			}
		}, deps...)
	}
	// On cancellation the DAG drains without running remaining bodies; the
	// partially written C is discarded by the caller (dgefmm surfaces the
	// context error), and the deferred frees keep the arena balanced.
	_ = e.sub.Run(e.runCtx(), d)
}
