package strassen

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/opcount"
)

func TestTheoreticalMatchesOpcountModel(t *testing.T) {
	f := func(m, k, n uint8) bool {
		mm, kk, nn := int(m)+1, int(k)+1, int(n)+1
		return Theoretical{}.Recurse(mm, kk, nn) == opcount.RecursionBenefits(mm, kk, nn)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTheoreticalSquareBoundary(t *testing.T) {
	// Paper: standard algorithm wins for square order ≤ 12.
	if (Theoretical{}).Recurse(12, 12, 12) {
		t.Error("m=12 should not recurse")
	}
	if !(Theoretical{}.Recurse(13, 13, 13)) {
		t.Error("m=13 should recurse")
	}
	// Paper's rectangular example: (6,14,86) should recurse despite 6 < 12.
	if !(Theoretical{}.Recurse(6, 14, 86)) {
		t.Error("(6,14,86) should recurse")
	}
}

func TestSquareCriterion(t *testing.T) {
	c := Square{Tau: 100}
	if c.Recurse(100, 200, 200) {
		t.Error("m=τ should stop")
	}
	if !c.Recurse(101, 1, 1) {
		t.Error("square criterion only inspects m")
	}
}

func TestSimpleCriterion(t *testing.T) {
	c := Simple{Tau: 64}
	if !c.Recurse(65, 65, 65) {
		t.Error("all dims above τ should recurse")
	}
	for _, dims := range [][3]int{{64, 65, 65}, {65, 64, 65}, {65, 65, 64}} {
		if c.Recurse(dims[0], dims[1], dims[2]) {
			t.Errorf("dims=%v: any dim ≤ τ must stop under (11)", dims)
		}
	}
}

func TestScaledCriterionReducesToSquare(t *testing.T) {
	// (12) must agree with (10) when m = k = n: stop iff m ≤ τ.
	c := Scaled{Tau: 77}
	for m := 1; m <= 200; m++ {
		got := c.Recurse(m, m, m)
		want := m > 77
		if got != want {
			t.Fatalf("m=%d: scaled criterion %v, square %v", m, got, want)
		}
	}
}

func TestScaledAllowsThinRecursion(t *testing.T) {
	// Unlike (11), (12) can recurse with one small dimension if the others
	// are large: mkn > τ(nk+mn+mk)/3.
	c := Scaled{Tau: 64}
	if !c.Recurse(40, 2000, 2000) {
		t.Error("(12) should recurse on (40,2000,2000)")
	}
	if (Simple{Tau: 64}).Recurse(40, 2000, 2000) {
		t.Error("(11) should stop on (40,2000,2000)")
	}
}

func TestHybridCriterionRegions(t *testing.T) {
	c := Hybrid{Tau: 100, TauM: 75, TauK: 125, TauN: 95}
	// All dims > τ: always recurse, regardless of (13).
	if !c.Recurse(101, 101, 101) {
		t.Error("all dims > τ must recurse")
	}
	// All dims ≤ τ: never recurse even if (13) would allow it.
	if c.Recurse(100, 100, 100) {
		t.Error("all dims ≤ τ must stop")
	}
	// Mixed region: condition (13) rules. (80, 2000, 2000): m ≤ τ and
	// mkn = 3.2e8 > 75·4e6 + 125·1.6e5·... compute: τm·nk = 75·4e6 = 3e8;
	// τk·mn = 125·160000 = 2e7; τn·mk = 95·160000 = 1.52e7 → rhs ≈ 3.35e8.
	// lhs = 80·2000·2000 = 3.2e8 < rhs → stop.
	if c.Recurse(80, 2000, 2000) {
		t.Error("(80,2000,2000) should stop under (13) with these params")
	}
	// (90, 2000, 2000): lhs = 3.6e8 > rhs ≈ 3e8 + 2.25e7 + 1.71e7 ≈ 3.4e8 → recurse.
	if !c.Recurse(90, 2000, 2000) {
		t.Error("(90,2000,2000) should recurse under (13)")
	}
}

func TestHybridMatchesPaperRS6000Anecdote(t *testing.T) {
	// Paper Section 4.2: with the RS/6000 parameters (τ=199, τm=75, τk=125,
	// τn=95), criterion (11) stops (160, 957, 1957) [m ≤ τ] but the hybrid
	// allows the extra, profitable level.
	rs := Hybrid{Tau: 199, TauM: 75, TauK: 125, TauN: 95}
	m, n, k := 160, 957, 1957
	if (Simple{Tau: 199}).Recurse(m, k, n) {
		t.Error("(11) should prevent recursion here")
	}
	if !rs.Recurse(m, k, n) {
		t.Error("hybrid (15) should allow recursion here, as in the paper")
	}
}

func TestNeverAndAlways(t *testing.T) {
	if (Never{}).Recurse(1000, 1000, 1000) {
		t.Error("Never must never recurse")
	}
	if !(Always{}).Recurse(2, 2, 2) {
		t.Error("Always should recurse on splittable dims")
	}
	if (Always{}).Recurse(1, 10, 10) {
		t.Error("Always must not recurse on unsplittable dims")
	}
}

func TestCriterionNames(t *testing.T) {
	for _, c := range []Criterion{Theoretical{}, Square{Tau: 1}, Simple{Tau: 2}, Scaled{Tau: 3}, Hybrid{Tau: 4}, Never{}, Always{}} {
		if c.Name() == "" {
			t.Errorf("%T has empty name", c)
		}
	}
	if !strings.Contains((Hybrid{Tau: 9, TauM: 1, TauK: 2, TauN: 3}).Name(), "τ=9") {
		t.Error("hybrid name should include parameters")
	}
}

func TestDefaultParamsKnownKernels(t *testing.T) {
	for _, name := range []string{"blocked", "vector", "naive"} {
		p := DefaultParams(name)
		if p.Tau <= 0 || p.TauM <= 0 || p.TauK <= 0 || p.TauN <= 0 {
			t.Errorf("kernel %s has unset default params: %+v", name, p)
		}
	}
	// Unknown kernels fall back to blocked.
	if DefaultParams("???") != DefaultParams("blocked") {
		t.Error("unknown kernel should fall back to blocked params")
	}
}

func TestSetDefaultParams(t *testing.T) {
	old := DefaultParams("naive")
	defer SetDefaultParams("naive", old)
	SetDefaultParams("naive", Params{Tau: 1, TauM: 2, TauK: 3, TauN: 4})
	if got := DefaultParams("naive"); got.Tau != 1 || got.TauN != 4 {
		t.Errorf("SetDefaultParams not applied: %+v", got)
	}
}

func TestScheduleAndOddStrings(t *testing.T) {
	if ScheduleAuto.String() != "auto" || ScheduleOriginal.String() != "original" {
		t.Error("schedule names")
	}
	if OddPeel.String() != "peel" || OddPadStatic.String() != "pad-static" {
		t.Error("odd strategy names")
	}
	if Schedule(99).String() != "unknown" || OddStrategy(99).String() != "unknown" {
		t.Error("out-of-range names")
	}
}
