package strassen

// Algorithm selection: which coefficient table (internal/algo) drives the
// recursion. Resolution follows the PR 5 dispatch-policy precedence — an
// explicit Config.Algo beats the DGEFMM_ALGO environment variable, which
// beats the default — mirroring the kernel and fused-mode policies.

import (
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/algo"
)

// AlgoAuto is the per-shape selection spelling: each DGEFMM call picks
// the registered table whose split ratios best match its operand aspect
// (algo.Select).
const AlgoAuto = "auto"

// ParseAlgo validates a -algo flag value and returns its canonical
// spelling: "" (the default Winograd path), "auto", or a registered table
// name.
func ParseAlgo(s string) (string, error) {
	n := strings.ToLower(strings.TrimSpace(s))
	switch n {
	case "", "default":
		return "", nil
	case AlgoAuto:
		return AlgoAuto, nil
	}
	if _, ok := algo.ByName(n); ok {
		return n, nil
	}
	return "", fmt.Errorf("unknown algorithm %q (want auto|default|%s)", s, strings.Join(algo.Names(), "|"))
}

// envAlgo returns the cached DGEFMM_ALGO override ("" when unset).
// Unknown values are reported once on stderr and ignored, mirroring the
// DGEFMM_KERNEL and DGEFMM_FUSED handling.
var envAlgo = sync.OnceValue(func() string {
	return normalizeEnvAlgo(os.Getenv("DGEFMM_ALGO"))
})

// normalizeEnvAlgo validates a DGEFMM_ALGO value. Split from the cached
// reader so tests can drive it directly.
func normalizeEnvAlgo(v string) string {
	n, err := ParseAlgo(v)
	if err != nil {
		fmt.Fprintf(os.Stderr, "strassen: ignoring unknown DGEFMM_ALGO=%q (want auto|default|%s)\n",
			v, strings.Join(algo.Names(), "|"))
		return ""
	}
	return n
}

// algoName resolves the effective algorithm selection: Config.Algo wins,
// then DGEFMM_ALGO, then the default ("").
func (cfg *Config) algoName() string { return cfg.algoNameFor(envAlgo()) }

// algoNameFor is algoName with the environment override passed explicitly.
func (cfg *Config) algoNameFor(env string) string {
	if cfg.Algo != "" {
		n, err := ParseAlgo(cfg.Algo)
		if err != nil {
			panic("strassen: " + err.Error())
		}
		if n == "" {
			// "default" spelled explicitly still beats the environment.
			return algo.DefaultName
		}
		return n
	}
	return env
}

// AlgoSelection reports the effective algorithm selection as CLI tools
// log it: "default", "auto", or a table name.
func (cfg *Config) AlgoSelection() string {
	switch n := cfg.algoName(); n {
	case "", algo.DefaultName:
		return "default"
	default:
		return n
	}
}

// resolveAlgo returns the table driving an m×k·k×n call, or nil for the
// legacy hand-coded Winograd path (selected by default, by naming the
// default table, and by auto-selection landing on it — the legacy
// schedules are the default table's tuned executor).
func (cfg *Config) resolveAlgo(m, k, n int) *algo.Table {
	switch name := cfg.algoName(); name {
	case "", algo.DefaultName:
		return nil
	case AlgoAuto:
		t := algo.Select(m, k, n)
		if t.Name == algo.DefaultName {
			return nil
		}
		return t
	default:
		t, ok := algo.ByName(name)
		if !ok {
			panic(fmt.Sprintf("strassen: algorithm table %q disappeared from the registry", name))
		}
		return t
	}
}

// AlgoNames returns the selectable -algo values (the registered tables),
// sorted, for CLI usage strings.
func AlgoNames() []string {
	names := algo.Names()
	sort.Strings(names)
	return names
}
