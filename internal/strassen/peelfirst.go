package strassen

import (
	"repro/internal/blas"
	"repro/internal/matrix"
)

// peelFirstMul is the alternate peeling technique of the paper's Section 5
// future work ("investigate alternate peeling techniques"): instead of
// stripping the *last* row/column of an odd dimension, strip the *first*.
// The fixup structure mirrors equation (9) with the border blocks on the
// top/left:
//
//	C22 block: A22·B22 (Strassen) + a21·b12 (DGER, k odd)
//	first column of C (n odd): full rows of op(A) times B's first column
//	first row of C (m odd): op(A)'s first row times the whole of op(B)
//
// Whether first- or last-peeling wins depends on which border lands on
// cache-aligned storage; BenchmarkAblationPeeling measures the difference.
func (e *engine) peelFirstMul(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	ms, ks, ns := m&1, k&1, n&1

	coreA := a.Slice(ms, ks, m-ms, k-ks)
	coreB := b.Slice(ks, ns, k-ks, n-ns)
	coreC := c.Slice(ms, ns, m-ms, n-ns)
	e.schedule(coreC, coreA, coreB, alpha, beta, depth)

	if ks == 1 {
		// Core block += alpha * a[ms:,0] ⊗ b[0,ns:].
		x, incX := colVec(a, 0)
		y, incY := rowVec(b, 0)
		x, incX = offsetVec(x, incX, ms)
		y, incY = offsetVec(y, incY, ns)
		blas.Dger(m-ms, n-ns, alpha, x, incX, y, incY, coreC.Data, coreC.Stride)
	}
	if ns == 1 {
		// First column of C, rows ms..m: alpha * op(A)[ms:, :] · B[:, 0].
		aBot := a.Slice(ms, 0, m-ms, k)
		x, incX := colVec(b, 0)
		e.gemvN(aBot, alpha, x, incX, beta, c.Data[ms:], 1)
	}
	if ms == 1 {
		// First row of C, all n columns: alpha * op(A)[0, :] · op(B).
		x, incX := rowVec(a, 0)
		e.gemvT(b, alpha, x, incX, beta, c.Data[0:], c.Stride)
	}
}

// offsetVec advances a strided vector by cnt logical elements.
func offsetVec(x []float64, inc, cnt int) ([]float64, int) {
	return x[cnt*inc:], inc
}
