package strassen

import "repro/internal/matrix"

// This file implements the two padding alternatives to dynamic peeling
// (Section 2): dynamic padding (one zero row/column added per odd dimension
// at every recursion level, as in Douglas et al.) and static padding
// (Strassen's original suggestion — pad once, up front, so every dimension
// met during recursion is even). Both exist for the paper's
// peeling-vs-padding comparison; DGEFMM itself uses peeling.

// padDynamicMul pads each odd dimension of the current level with one zero
// row/column, applies one Strassen level to the padded operands, and copies
// the valid region back.
func (e *engine) padDynamicMul(c *matrix.Dense, a, b matrix.View, alpha, beta float64, depth int) {
	m, k, n := a.Rows, a.Cols, b.Cols
	mp, kp, np := m+(m&1), k+(k&1), n+(n&1)

	if mp == m && kp == k && np == n {
		e.schedule(c, a, b, alpha, beta, depth)
		return
	}

	ap := e.allocMat(mp, kp)
	defer e.freeMat(ap)
	bp := e.allocMat(kp, np)
	defer e.freeMat(bp)
	cp := e.allocMat(mp, np)
	defer e.freeMat(cp)

	// The tracker (and make) hand out zeroed memory, so only the valid
	// regions need copying.
	a.Materialize(ap.Slice(0, 0, m, k))
	b.Materialize(bp.Slice(0, 0, k, n))
	if beta != 0 {
		cp.Slice(0, 0, m, n).CopyFrom(c)
	}
	e.schedule(cp, matrix.ViewOf(ap), matrix.ViewOf(bp), alpha, beta, depth)
	c.CopyFrom(cp.Slice(0, 0, m, n))
}

// staticPadMul implements static padding at the top level of DGEFMM: it
// predicts the recursion depth d the cutoff criterion will produce, pads
// every dimension to a multiple of 2^d, and runs the recursion with that
// depth bound so no odd dimension is ever encountered.
func (e *engine) staticPadMul(c *matrix.Dense, a, b matrix.View, alpha, beta float64) {
	m, k, n := a.Rows, a.Cols, b.Cols
	d := e.predictDepth(m, k, n)
	if d == 0 {
		e.baseGemm(c, a, b, alpha, beta)
		return
	}
	unit := 1 << uint(d)
	mp, kp, np := roundUp(m, unit), roundUp(k, unit), roundUp(n, unit)

	inner := *e
	inner.maxDepth = d
	inner.odd = OddPeel // no odd dimensions can occur below; peel is a no-op path

	if mp == m && kp == k && np == n {
		inner.mul(c, a, b, alpha, beta, 0)
		return
	}

	ap := e.allocMat(mp, kp)
	defer e.freeMat(ap)
	bp := e.allocMat(kp, np)
	defer e.freeMat(bp)
	cp := e.allocMat(mp, np)
	defer e.freeMat(cp)

	a.Materialize(ap.Slice(0, 0, m, k))
	b.Materialize(bp.Slice(0, 0, k, n))
	if beta != 0 {
		cp.Slice(0, 0, m, n).CopyFrom(c)
	}
	inner.mul(cp, matrix.ViewOf(ap), matrix.ViewOf(bp), alpha, beta, 0)
	c.CopyFrom(cp.Slice(0, 0, m, n))
}

// predictDepth simulates the recursion the criterion would drive on
// ceil-halved dimensions, yielding the static padding depth.
func (e *engine) predictDepth(m, k, n int) int {
	d := 0
	for m > 1 && k > 1 && n > 1 &&
		(e.maxDepth == 0 || d < e.maxDepth) &&
		e.crit.Recurse(m, k, n) {
		m, k, n = (m+1)/2, (k+1)/2, (n+1)/2
		d++
	}
	return d
}

func roundUp(x, unit int) int {
	return (x + unit - 1) / unit * unit
}
