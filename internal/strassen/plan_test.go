package strassen

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

// planTestConfigs spans the schedule × odd-strategy × criterion space the
// plan simulation must mirror.
func planTestConfigs() []*Config {
	return []*Config{
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}},
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Schedule: ScheduleStrassen2},
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Schedule: ScheduleStrassen1},
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Schedule: ScheduleOriginal},
		{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 3},
		{Kernel: blas.NaiveKernel{}, Criterion: Hybrid{Tau: 12, TauM: 8, TauK: 8, TauN: 8}},
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Odd: OddPeelFirst},
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Odd: OddPadDynamic},
		{Kernel: blas.NaiveKernel{}, Criterion: Simple{Tau: 8}, Odd: OddPadStatic},
	}
}

// TestPlanWordsMatchMeasuredPeak asserts the plan's workspace simulation is
// exact: Plan.Words equals the memtrack high-water mark of a real call,
// across schedules, odd strategies and β classes.
func TestPlanWordsMatchMeasuredPeak(t *testing.T) {
	shapes := [][3]int{{64, 64, 64}, {65, 33, 97}, {48, 96, 24}, {63, 63, 63}, {96, 17, 80}}
	for ci, cfg := range planTestConfigs() {
		for _, dims := range shapes {
			m, k, n := dims[0], dims[1], dims[2]
			for _, beta := range []float64{0, 0.5} {
				rng := rand.New(rand.NewSource(int64(ci*1000 + m + k + n)))
				tr := memtrack.New()
				run := *cfg
				run.Tracker = tr
				a := matrix.NewRandom(m, k, rng)
				b := matrix.NewRandom(k, n, rng)
				c := matrix.NewRandom(m, n, rng)
				DGEFMM(&run, blas.NoTrans, blas.NoTrans, m, n, k, 1,
					a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
				plan := PlanFor(cfg, m, n, k, beta == 0)
				if got, want := plan.Words, tr.Peak(); got != want {
					t.Errorf("cfg#%d dims=%v beta=%g: plan words %d != measured peak %d",
						ci, dims, beta, got, want)
				}
			}
		}
	}
}

// TestPlanCriterionReplaysIdentically asserts a DGEFMM call through the
// plan's cached criterion is bit-for-bit identical to the live-criterion
// call it was planned from.
func TestPlanCriterionReplaysIdentically(t *testing.T) {
	for ci, cfg := range planTestConfigs() {
		for _, dims := range [][3]int{{64, 64, 64}, {65, 33, 97}, {30, 70, 50}} {
			m, k, n := dims[0], dims[1], dims[2]
			for _, beta := range []float64{0, 1.25} {
				rng := rand.New(rand.NewSource(int64(ci*100 + m)))
				a := matrix.NewRandom(m, k, rng)
				b := matrix.NewRandom(k, n, rng)
				c1 := matrix.NewRandom(m, n, rng)
				c2 := c1.Clone()
				DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
					a.Data, a.Stride, b.Data, b.Stride, beta, c1.Data, c1.Stride)
				planned := PlanFor(cfg, m, n, k, beta == 0).Apply(cfg)
				DGEFMM(planned, blas.NoTrans, blas.NoTrans, m, n, k, 1.5,
					a.Data, a.Stride, b.Data, b.Stride, beta, c2.Data, c2.Stride)
				for j := 0; j < n; j++ {
					for i := 0; i < m; i++ {
						if c1.At(i, j) != c2.At(i, j) {
							t.Fatalf("cfg#%d dims=%v beta=%g: planned result differs at (%d,%d): %v vs %v",
								ci, dims, beta, i, j, c1.At(i, j), c2.At(i, j))
						}
					}
				}
			}
		}
	}
}

// TestPlanWordsWithinWorkspaceBound checks the exact simulation sits under
// the paper's closed-form Table 1 bound for the peeling strategies.
func TestPlanWordsWithinWorkspaceBound(t *testing.T) {
	skipIfAlgoPinned(t)
	crit := Always{}
	for _, sched := range []Schedule{ScheduleAuto, ScheduleStrassen1, ScheduleStrassen2, ScheduleOriginal} {
		for _, odd := range []OddStrategy{OddPeel, OddPeelFirst} {
			for _, dims := range [][3]int{{64, 64, 64}, {128, 128, 128}, {65, 33, 97}, {96, 48, 24}} {
				m, k, n := dims[0], dims[1], dims[2]
				for _, betaZero := range []bool{true, false} {
					cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: crit, Schedule: sched, Odd: odd, MaxDepth: 6}
					plan := PlanFor(cfg, m, n, k, betaZero)
					bound := WorkspaceBound(sched, m, k, n, betaZero)
					if plan.Words > bound {
						t.Errorf("sched=%v odd=%v dims=%v betaZero=%v: plan words %d exceed analytic bound %d",
							sched, odd, dims, betaZero, plan.Words, bound)
					}
				}
			}
		}
	}
}

// TestPlanDepthAndSchedule sanity-checks the reported metadata.
func TestPlanDepthAndSchedule(t *testing.T) {
	cfg := &Config{Kernel: blas.NaiveKernel{}, Criterion: Always{}, MaxDepth: 3}
	p := PlanFor(cfg, 64, 64, 64, true)
	if p.Depth != 3 {
		t.Errorf("depth = %d, want 3 (MaxDepth-bounded)", p.Depth)
	}
	if p.TopSchedule != ScheduleStrassen1 {
		t.Errorf("β=0 auto resolved to %v, want strassen1", p.TopSchedule)
	}
	if q := PlanFor(cfg, 64, 64, 64, false); q.TopSchedule != ScheduleStrassen2 {
		t.Errorf("β≠0 auto resolved to %v, want strassen2", q.TopSchedule)
	}
	if never := PlanFor(&Config{Kernel: blas.NaiveKernel{}, Criterion: Never{}}, 64, 64, 64, true); never.Depth != 0 || never.Words != 0 {
		t.Errorf("Never plan: depth=%d words=%d, want 0/0", never.Depth, never.Words)
	}
}

// TestPlanKernelWordsMatchMeasuredArenaPeak asserts the kernel-workspace
// side of the plan is exact too: with the packed base-case kernel,
// Plan.KernelWords equals the high-water mark of the kernel's own packing
// arena over a real call (the two accounting axes — Strassen temporaries
// and packing buffers — stay separate, so Plan.Words is unaffected).
func TestPlanKernelWordsMatchMeasuredArenaPeak(t *testing.T) {
	shapes := [][3]int{{64, 64, 64}, {65, 33, 97}, {48, 96, 24}, {96, 17, 80}}
	for ci, base := range planTestConfigs() {
		for _, dims := range shapes {
			m, k, n := dims[0], dims[1], dims[2]
			for _, beta := range []float64{0, 0.5} {
				rng := rand.New(rand.NewSource(int64(ci*1000 + m + k + n)))
				pk := &kernel.Packed{MC: 16, KC: 12, NC: 16}
				arena := memtrack.New()
				pk.SetArena(arena)
				run := *base
				run.Kernel = pk
				run.Tracker = memtrack.New()
				a := matrix.NewRandom(m, k, rng)
				b := matrix.NewRandom(k, n, rng)
				c := matrix.NewRandom(m, n, rng)
				DGEFMM(&run, blas.NoTrans, blas.NoTrans, m, n, k, 1,
					a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
				cfg := *base
				cfg.Kernel = pk
				plan := PlanFor(&cfg, m, n, k, beta == 0)
				if got, want := plan.KernelWords, arena.Peak(); got != want {
					t.Errorf("cfg#%d dims=%v beta=%g: plan kernel words %d != measured arena peak %d",
						ci, dims, beta, got, want)
				}
				if live := arena.Live(); live != 0 {
					t.Errorf("cfg#%d dims=%v beta=%g: %d kernel arena words leaked", ci, dims, beta, live)
				}
			}
		}
	}
}

// TestPlanKernelWordsParallelBound: under the parallel schedule the plan
// multiplies the worst leaf by the concurrency, so the measured arena peak
// (which depends on scheduling luck) must stay within it.
func TestPlanKernelWordsParallelBound(t *testing.T) {
	m := 96
	rng := rand.New(rand.NewSource(42))
	pk := &kernel.Packed{MC: 16, KC: 12, NC: 16}
	arena := memtrack.New()
	pk.SetArena(arena)
	cfg := &Config{Kernel: pk, Criterion: Simple{Tau: 16}, Parallel: 4}
	run := *cfg
	run.Tracker = memtrack.New()
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewRandom(m, m, rng)
	DGEFMM(&run, blas.NoTrans, blas.NoTrans, m, m, m, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	plan := PlanFor(cfg, m, m, m, true)
	if plan.KernelWords <= 0 {
		t.Fatal("parallel plan reports no kernel workspace")
	}
	if peak := arena.Peak(); peak > plan.KernelWords {
		t.Errorf("measured kernel arena peak %d exceeds planned bound %d", peak, plan.KernelWords)
	}
}
