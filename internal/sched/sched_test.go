package sched

import (
	"context"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestDAGTopologicalCorrectness builds a layered DAG where every node
// writes its slot from its dependencies' slots; any ordering violation
// produces a wrong value.
func TestDAGTopologicalCorrectness(t *testing.T) {
	rt := New(4, 1)
	defer rt.Close()
	const layers, width = 8, 16
	vals := make([]int64, layers*width)
	d := NewDAG()
	var prev []*Node
	for l := 0; l < layers; l++ {
		cur := make([]*Node, width)
		for i := 0; i < width; i++ {
			slot := l*width + i
			deps := prev
			cur[i] = d.Add(func(w *Worker) {
				var sum int64 = 1
				if l > 0 {
					for j := 0; j < width; j++ {
						sum += atomic.LoadInt64(&vals[(l-1)*width+j])
					}
				}
				atomic.StoreInt64(&vals[slot], sum)
			}, deps...)
		}
		prev = cur
	}
	if err := rt.Run(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	// Layer sums follow s(0)=width, s(l)=width*(1+s(l-1)).
	want := int64(1)
	for l := 0; l < layers; l++ {
		if l > 0 {
			want = 1 + want*width
		}
		for i := 0; i < width; i++ {
			if got := vals[l*width+i]; got != want {
				t.Fatalf("layer %d slot %d = %d, want %d", l, i, got, want)
			}
		}
	}
}

// TestStealOrderDeterministic pins that the victim scan order is a pure
// function of the runtime seed: two runtimes built with the same seed
// produce identical per-worker victim sequences, and a different seed
// diverges. (Live steal interleaving is timing-dependent by nature; the
// deterministic contract is the seeded victim choice.)
func TestStealOrderDeterministic(t *testing.T) {
	seqFor := func(seed int64) [][]int {
		rt := build(8, seed)
		var out [][]int
		for _, w := range rt.workers {
			for round := 0; round < 4; round++ {
				order := w.victimOrder(make([]int, 0, 7))
				out = append(out, append([]int(nil), order...))
			}
		}
		return out
	}
	a, b := seqFor(42), seqFor(42)
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("same seed diverged at sequence %d: %v vs %v", i, a[i], b[i])
			}
		}
	}
	c := seqFor(43)
	same := true
	for i := range a {
		for j := range a[i] {
			if a[i][j] != c[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical victim sequences")
	}
}

// TestStealsHappen forces stealing: one external Run whose tasks fork
// nested sub-DAGs onto their worker's own deque, leaving the other
// workers nothing to do but steal.
func TestStealsHappen(t *testing.T) {
	rt := New(4, 7)
	defer rt.Close()
	var stolen atomic.Int64
	rt.stealHook = func(thief, victim int) { stolen.Add(1) }
	d := NewDAG()
	var ran atomic.Int64
	d.Add(func(w *Worker) {
		sub := NewDAG()
		for i := 0; i < 64; i++ {
			sub.Add(func(w *Worker) {
				busy := time.Now()
				for time.Since(busy) < 200*time.Microsecond {
				}
				ran.Add(1)
			})
		}
		if err := w.Run(context.Background(), sub); err != nil {
			t.Error(err)
		}
	})
	if err := rt.Run(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d of 64 subtasks", ran.Load())
	}
	if runtime.GOMAXPROCS(0) > 1 && stolen.Load() == 0 {
		// On a single-CPU host the submitting worker can drain its own
		// deque before a thief is ever scheduled, so only require steals
		// when real parallelism exists.
		t.Error("no steals observed with nested fan-out on a multi-core host")
	}
}

// TestNoGoroutineLeak pins Close joining every worker (run under -race in
// CI).
func TestNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		rt := New(8, int64(i))
		d := NewDAG()
		for j := 0; j < 32; j++ {
			d.Add(func(w *Worker) {})
		}
		if err := rt.Run(context.Background(), d); err != nil {
			t.Fatal(err)
		}
		rt.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestWorkConservation asserts idle stays near zero while tasks
// outnumber workers: with a full injector, a worker only parks in the
// final drain-out.
func TestWorkConservation(t *testing.T) {
	rt := New(4, 3)
	defer rt.Close()
	d := NewDAG()
	const tasks = 400
	per := 100 * time.Microsecond
	for i := 0; i < tasks; i++ {
		d.Add(func(w *Worker) {
			busy := time.Now()
			for time.Since(busy) < per {
			}
		})
	}
	start := time.Now()
	if err := rt.Run(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	wall := time.Since(start)
	st := rt.Stats()
	if st.TasksRun != tasks {
		t.Fatalf("ran %d of %d tasks", st.TasksRun, tasks)
	}
	// Generous bound: total parked time across 4 workers under a quarter
	// of the run's worker-seconds. Startup parking (New→Run) and the tail
	// drain are microseconds; a violation means workers slept while the
	// injector held work.
	budget := wall.Nanoseconds() * int64(rt.Workers()) / 4
	if budget < int64(5*time.Millisecond) {
		budget = int64(5 * time.Millisecond)
	}
	if st.IdleNS > budget {
		t.Errorf("idle %v exceeds budget %v (wall %v)", time.Duration(st.IdleNS), time.Duration(budget), wall)
	}
}

// TestMaxRunningNeverExceedsWorkers pins the no-oversubscription
// invariant: concurrent external Runs on one runtime never have more
// tasks in flight than workers.
func TestMaxRunningNeverExceedsWorkers(t *testing.T) {
	rt := New(3, 11)
	defer rt.Close()
	done := make(chan error, 6)
	for g := 0; g < 6; g++ {
		go func() {
			d := NewDAG()
			for i := 0; i < 50; i++ {
				d.Add(func(w *Worker) {
					busy := time.Now()
					for time.Since(busy) < 50*time.Microsecond {
					}
				})
			}
			done <- rt.Run(context.Background(), d)
		}()
	}
	for g := 0; g < 6; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if st := rt.Stats(); st.MaxRunning > int64(st.Workers) {
		t.Fatalf("max running %d exceeds %d workers", st.MaxRunning, st.Workers)
	}
}

// TestCancellationSkipsBodies cancels mid-run: a long dependency chain
// whose third link cancels the context must drain without running the
// remaining bodies, and Run must surface ctx.Err().
func TestCancellationSkipsBodies(t *testing.T) {
	rt := New(2, 5)
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := NewDAG()
	var ran atomic.Int64
	var prev *Node
	for i := 0; i < 100; i++ {
		i := i
		var deps []*Node
		if prev != nil {
			deps = append(deps, prev)
		}
		prev = d.Add(func(w *Worker) {
			ran.Add(1)
			if i == 2 {
				cancel()
			}
		}, deps...)
	}
	err := rt.Run(ctx, d)
	if err != context.Canceled {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if n := ran.Load(); n < 3 || n > 10 {
		t.Fatalf("ran %d bodies; cancellation at link 3 should stop the chain promptly", n)
	}
}

// TestRunInlineMatchesScheduled runs the identical DAG-building function
// inline and on the pool; with single-writer slots the results must be
// bit-for-bit equal.
func TestRunInlineMatchesScheduled(t *testing.T) {
	buildInto := func(out []float64) *DAG {
		rng := rand.New(rand.NewSource(99))
		d := NewDAG()
		nodes := make([]*Node, 0, 64)
		for i := 0; i < 64; i++ {
			i := i
			var deps []*Node
			for _, j := range rng.Perm(len(nodes)) {
				if len(deps) == 3 {
					break
				}
				deps = append(deps, nodes[j])
			}
			// Record which slots this node reads by position in the nodes
			// slice at build time.
			reads := make([]int, len(deps))
			for k := range deps {
				for idx, nd := range nodes {
					if nd == deps[k] {
						reads[k] = idx
					}
				}
			}
			nodes = append(nodes, d.Add(func(w *Worker) {
				v := float64(i) * 1.5
				for _, r := range reads {
					v += out[r] * 0.25
				}
				out[i] = v
			}, deps...))
		}
		return d
	}
	seq := make([]float64, 64)
	if err := buildInto(seq).RunInline(context.Background()); err != nil {
		t.Fatal(err)
	}
	rt := New(4, 13)
	defer rt.Close()
	par := make([]float64, 64)
	if err := rt.Run(context.Background(), buildInto(par)); err != nil {
		t.Fatal(err)
	}
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("slot %d: inline %v vs scheduled %v", i, seq[i], par[i])
		}
	}
}

// TestEmptyDAG and double-start behavior.
func TestEmptyAndRestartedDAG(t *testing.T) {
	rt := New(2, 17)
	defer rt.Close()
	d := NewDAG()
	if err := rt.Run(context.Background(), d); err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(context.Background(), d); err != ErrStarted {
		t.Fatalf("second Run returned %v, want ErrStarted", err)
	}
}

// TestSharedRuntimeSingleton pins that Shared returns one runtime sized
// to GOMAXPROCS.
func TestSharedRuntimeSingleton(t *testing.T) {
	a, b := Shared(), Shared()
	if a != b {
		t.Fatal("Shared() returned distinct runtimes")
	}
	if a.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("shared runtime has %d workers, want GOMAXPROCS=%d", a.Workers(), runtime.GOMAXPROCS(0))
	}
}

// TestNestedRunDoesNotDeadlock saturates every worker with a task that
// itself submits a sub-DAG; helping must progress all of them.
func TestNestedRunDoesNotDeadlock(t *testing.T) {
	rt := New(2, 23)
	defer rt.Close()
	d := NewDAG()
	var ran atomic.Int64
	for i := 0; i < 8; i++ {
		d.Add(func(w *Worker) {
			sub := NewDAG()
			for j := 0; j < 8; j++ {
				sub.Add(func(w *Worker) {
					inner := NewDAG()
					inner.Add(func(w *Worker) { ran.Add(1) })
					if err := w.Run(context.Background(), inner); err != nil {
						t.Error(err)
					}
				})
			}
			if err := w.Run(context.Background(), sub); err != nil {
				t.Error(err)
			}
		})
	}
	doneCh := make(chan error, 1)
	go func() { doneCh <- rt.Run(context.Background(), d) }()
	select {
	case err := <-doneCh:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("nested Run deadlocked")
	}
	if ran.Load() != 64 {
		t.Fatalf("ran %d of 64 innermost tasks", ran.Load())
	}
}
