// Package sched is the multi-core task runtime underneath DGEFMM's parallel
// paths: a work-stealing fork-join scheduler in the Cilk/TBB mold, sized to
// GOMAXPROCS, on which the Strassen engine runs its seven Winograd products
// (and the R products of any ⟨m,k,n⟩ table algorithm) as a dependency DAG,
// the packed kernel threads its MC loop, and the batch pool draws its core
// budget.
//
// The design replaces three overlapping parallel mechanisms (the flat
// product fan-out of strassen.Config.Parallel, blas.ParallelKernel's
// column-split goroutines, and batch.Pool's fixed worker goroutines) with
// one shared pool: every unit of parallel work in the process becomes a
// task on one Runtime, so concurrently-running tasks never exceed the
// worker count by construction — the paper's processors-share-one-machine
// model, and the fix for the pool's historic core oversubscription.
//
// Topology: each worker owns a LIFO deque (newest-first execution keeps a
// worker on the subtree it just forked, the cache-friendly order), thieves
// take the oldest task from a random victim (the biggest-subtree end), and
// an injector queue receives work submitted from outside the pool. Nested
// parallelism never blocks a worker: a task that submits a sub-DAG helps —
// it executes scheduler tasks (its own sub-DAG's first, then anyone's)
// until the sub-DAG completes, so recursion depth adds no idle workers and
// cannot deadlock the fixed-size pool.
//
// The scheduler's own overheads are attributed through internal/phase
// (sched.task_run, sched.steal, sched.idle), so a roofline report shows
// where the cores went; absence of a profiler costs an atomic load per
// bracket, as everywhere else in the tree.
package sched

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/phase"
)

// Task is one schedulable unit. The worker handle lets the body submit
// nested sub-DAGs via w.Run (helping, never blocking the pool) and reach
// per-worker scratch via w.Index.
type Task func(w *Worker)

// Submitter runs a DAG to completion. Both *Runtime (external callers;
// blocks the calling goroutine) and *Worker (from inside a task; helps run
// tasks while waiting) implement it, so code that forks subtrees does not
// care whether it is already on the pool.
type Submitter interface {
	// Run executes every task in d respecting dependencies and returns
	// when all have completed. If ctx is canceled mid-run, remaining task
	// bodies are skipped (the DAG still drains so resources owned by the
	// caller are safe to release on return) and ctx.Err() is returned.
	Run(ctx context.Context, d *DAG) error
	// Workers reports the pool size, for sizing fan-out.
	Workers() int
}

// Runtime is a fixed pool of worker goroutines executing task DAGs.
// Create with New, share freely (all methods are safe for concurrent
// use), and Close when done — except the process-wide Shared runtime,
// which lives for the life of the process like the runtime's own
// scheduler.
type Runtime struct {
	workers []*Worker
	wg      sync.WaitGroup

	injMu    sync.Mutex
	injector []*Node

	wake   chan struct{}
	closed chan struct{}
	once   sync.Once

	idle atomic.Int32 // workers currently parked or about to park

	seed int64

	// stats
	tasksRun   atomic.Int64
	steals     atomic.Int64
	idleNS     atomic.Int64
	running    atomic.Int64
	maxRunning atomic.Int64

	// stealHook, when non-nil, observes every successful steal
	// (thief, victim worker indices). Test instrumentation; set before
	// submitting work.
	stealHook func(thief, victim int)
}

// Worker is one scheduler thread's handle, passed to every task it runs.
type Worker struct {
	rt  *Runtime
	idx int
	rng *rand.Rand

	// depth is the worker goroutine's task-nesting level (a task body
	// that calls Worker.Run executes further tasks inside the outer
	// frame). Touched only by the owning goroutine; it keeps the running
	// gauge counting busy *workers*, not nested frames, so MaxRunning
	// honors its ≤ Workers contract.
	depth int

	mu    sync.Mutex
	deque []*Node // owner pushes/pops at tail (LIFO); thieves pop at head
}

// Index is the worker's stable identity in [0, Workers()), for indexing
// per-worker scratch arenas.
func (w *Worker) Index() int { return w.idx }

// Workers implements Submitter.
func (w *Worker) Workers() int { return len(w.rt.workers) }

// New returns a started Runtime with n workers (n < 1 is clamped to 1).
// The steal victim order is derived from the given seed, so two runtimes
// built with the same seed and worker count make identical victim
// choices; pass 0 for an arbitrary fixed default.
func New(n int, seed int64) *Runtime {
	rt := build(n, seed)
	rt.wg.Add(len(rt.workers))
	for _, w := range rt.workers {
		go rt.loop(w)
	}
	return rt
}

// build assembles a Runtime without starting its worker goroutines.
// Factored from New so tests can exercise seed-determined machinery
// (victim order) without live workers racing on the RNGs.
func build(n int, seed int64) *Runtime {
	if n < 1 {
		n = 1
	}
	rt := &Runtime{
		wake:   make(chan struct{}, n),
		closed: make(chan struct{}),
		seed:   seed,
	}
	rt.workers = make([]*Worker, n)
	for i := range rt.workers {
		rt.workers[i] = &Worker{rt: rt, idx: i, rng: rand.New(rand.NewSource(seed + int64(i)*0x9e3779b9))}
	}
	return rt
}

var (
	sharedOnce sync.Once
	sharedRT   *Runtime
)

// Shared returns the process-wide runtime, created on first use with
// GOMAXPROCS workers. It is never closed; every subsystem that defaults
// its parallelism (strassen DAG execution, the threaded kernel loop, the
// batch pool) draws from this one pool so the process never oversubscribes
// cores.
func Shared() *Runtime {
	sharedOnce.Do(func() {
		sharedRT = New(runtime.GOMAXPROCS(0), 0)
	})
	return sharedRT
}

// Workers implements Submitter.
func (rt *Runtime) Workers() int { return len(rt.workers) }

// Close stops the workers and waits for them to exit. Callers must not
// submit after Close; in-flight Runs must have returned.
func (rt *Runtime) Close() {
	rt.once.Do(func() { close(rt.closed) })
	rt.wg.Wait()
}

// Stats is a point-in-time snapshot of scheduler activity.
type Stats struct {
	Workers    int   `json:"workers"`
	TasksRun   int64 `json:"tasks_run"`
	Steals     int64 `json:"steals"`
	IdleNS     int64 `json:"idle_ns"`
	MaxRunning int64 `json:"max_running"`
}

// Stats reports cumulative counters: tasks executed, successful steals,
// nanoseconds workers spent parked, and the high-water mark of
// simultaneously busy workers — a worker nested in sub-DAG frames counts
// once, so MaxRunning never exceeds Workers (the no-oversubscription
// invariant batch's regression test pins).
func (rt *Runtime) Stats() Stats {
	return Stats{
		Workers:    len(rt.workers),
		TasksRun:   rt.tasksRun.Load(),
		Steals:     rt.steals.Load(),
		IdleNS:     rt.idleNS.Load(),
		MaxRunning: rt.maxRunning.Load(),
	}
}

// Run implements Submitter for external callers: ready tasks go to the
// injector queue and the calling goroutine blocks until the DAG drains.
func (rt *Runtime) Run(ctx context.Context, d *DAG) error {
	if err := d.start(ctx, rt, rt.inject); err != nil {
		return err
	}
	<-d.doneCh
	return ctx.Err()
}

// Run implements Submitter for nested submission from inside a task: the
// sub-DAG's ready tasks go onto this worker's own deque (LIFO, so the
// worker descends into its own subtree first) and the worker helps —
// executing scheduler tasks, stealing when its deque runs dry — until the
// sub-DAG completes. The worker never parks while its sub-DAG is live, so
// a pool of W workers progresses W nested Runs without deadlock.
func (w *Worker) Run(ctx context.Context, d *DAG) error {
	if err := d.start(ctx, w.rt, w.push); err != nil {
		return err
	}
	for {
		select {
		case <-d.doneCh:
			return ctx.Err()
		default:
		}
		if n := w.find(); n != nil {
			w.rt.runNode(w, n)
			continue
		}
		// Nothing runnable anywhere: the sub-DAG's stragglers are running
		// on other workers. Wait for either completion or fresh work.
		w.rt.idle.Add(1)
		if n := w.find(); n != nil { // re-check after advertising idleness
			w.rt.idle.Add(-1)
			w.rt.runNode(w, n)
			continue
		}
		sm := phase.Active().Begin(phase.SchedIdle)
		t0 := time.Now()
		select {
		case <-d.doneCh:
		case <-w.rt.wake:
		}
		w.rt.idleNS.Add(time.Since(t0).Nanoseconds())
		sm.End(0, 0)
		w.rt.idle.Add(-1)
	}
}

// inject adds a ready node to the global injector queue.
func (rt *Runtime) inject(n *Node) {
	rt.injMu.Lock()
	rt.injector = append(rt.injector, n)
	rt.injMu.Unlock()
	rt.notify()
}

// popInject removes the oldest injected node.
func (rt *Runtime) popInject() *Node {
	rt.injMu.Lock()
	defer rt.injMu.Unlock()
	if len(rt.injector) == 0 {
		return nil
	}
	n := rt.injector[0]
	copy(rt.injector, rt.injector[1:])
	rt.injector = rt.injector[:len(rt.injector)-1]
	return n
}

// push adds a ready node to the worker's own deque (tail = LIFO end).
func (w *Worker) push(n *Node) {
	w.mu.Lock()
	w.deque = append(w.deque, n)
	w.mu.Unlock()
	w.rt.notify()
}

// popLocal takes the newest task from the worker's own deque.
func (w *Worker) popLocal() *Node {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.deque) == 0 {
		return nil
	}
	n := w.deque[len(w.deque)-1]
	w.deque = w.deque[:len(w.deque)-1]
	return n
}

// stealFrom takes the oldest task from a victim's deque (FIFO end — the
// root of the victim's largest unexplored subtree).
func (v *Worker) stealFrom() *Node {
	v.mu.Lock()
	defer v.mu.Unlock()
	if len(v.deque) == 0 {
		return nil
	}
	n := v.deque[0]
	copy(v.deque, v.deque[1:])
	v.deque = v.deque[:len(v.deque)-1]
	return n
}

// victimOrder fills order with a seeded random permutation of the other
// workers' indices — the scan order for one steal round. Factored out so
// the deterministic-seed test can pin it.
func (w *Worker) victimOrder(order []int) []int {
	order = order[:0]
	n := len(w.rt.workers)
	for i := 0; i < n; i++ {
		if i != w.idx {
			order = append(order, i)
		}
	}
	w.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
	return order
}

// find locates the next runnable node: own deque first (LIFO), then the
// injector, then one steal round over the other workers in seeded random
// order. Returns nil when every queue is empty.
func (w *Worker) find() *Node {
	if n := w.popLocal(); n != nil {
		return n
	}
	if n := w.rt.popInject(); n != nil {
		return n
	}
	if len(w.rt.workers) == 1 {
		return nil
	}
	sm := phase.Active().Begin(phase.SchedSteal)
	var buf [16]int
	order := buf[:0]
	if len(w.rt.workers)-1 > len(buf) {
		order = make([]int, 0, len(w.rt.workers)-1)
	}
	for _, vi := range w.victimOrder(order) {
		if n := w.rt.workers[vi].stealFrom(); n != nil {
			w.rt.steals.Add(1)
			if h := w.rt.stealHook; h != nil {
				h(w.idx, vi)
			}
			sm.End(0, 0)
			return n
		}
	}
	sm.End(0, 0)
	return nil
}

// notify wakes one parked worker if any are parked. Tokens are
// conservative (spurious wakeups cause one extra empty scan); the
// advertise-then-rescan protocol in the park paths closes the lost-wakeup
// race.
func (rt *Runtime) notify() {
	if rt.idle.Load() == 0 {
		return
	}
	select {
	case rt.wake <- struct{}{}:
	default:
	}
}

// runNode executes one node: the body unless the DAG's context is already
// canceled (cancellation drains the DAG by skipping bodies, so a multiply
// past its deadline stops between products, not after the whole call),
// then dependency bookkeeping either way.
func (rt *Runtime) runNode(w *Worker, n *Node) {
	w.depth++
	if w.depth == 1 { // nested frames are the same busy worker, count once
		r := rt.running.Add(1)
		for {
			max := rt.maxRunning.Load()
			if r <= max || rt.maxRunning.CompareAndSwap(max, r) {
				break
			}
		}
	}
	if n.run != nil && n.d.ctx.Err() == nil {
		sm := phase.Active().Begin(phase.SchedTaskRun)
		n.run(w)
		sm.End(0, 0)
	}
	rt.tasksRun.Add(1)
	if w.depth == 1 {
		rt.running.Add(-1)
	}
	w.depth--
	n.complete(w)
}

// loop is one worker goroutine's life: find work, run it, park when the
// whole pool is dry, exit on Close.
func (rt *Runtime) loop(w *Worker) {
	defer rt.wg.Done()
	for {
		if n := w.find(); n != nil {
			rt.runNode(w, n)
			continue
		}
		rt.idle.Add(1)
		if n := w.find(); n != nil { // re-check after advertising idleness
			rt.idle.Add(-1)
			rt.runNode(w, n)
			continue
		}
		sm := phase.Active().Begin(phase.SchedIdle)
		t0 := time.Now()
		select {
		case <-rt.wake:
		case <-rt.closed:
			rt.idleNS.Add(time.Since(t0).Nanoseconds())
			sm.End(0, 0)
			rt.idle.Add(-1)
			return
		}
		rt.idleNS.Add(time.Since(t0).Nanoseconds())
		sm.End(0, 0)
		rt.idle.Add(-1)
	}
}
