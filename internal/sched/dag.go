package sched

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// DAG is a set of tasks with dependency edges, built with Add and executed
// once via a Submitter's Run. Dependencies are declared at Add time by
// naming already-added nodes; a node becomes runnable when every
// dependency has finished. Each output buffer in a well-formed DAG is
// written by exactly one task, so results are independent of execution
// order — the property that makes parallel runs bit-for-bit equal to
// sequential ones on a deterministic kernel, and that FuzzSchedDAG pins.
//
// Add may also be called from inside a running task (the node is enqueued
// immediately), but every dependency passed must already be part of the
// DAG and the DAG must not have drained.
type DAG struct {
	mu      sync.Mutex
	pending int64 // nodes added but not yet completed
	started bool
	enq     func(*Node)
	ready   []*Node

	doneCh chan struct{}
	ctx    context.Context
}

// Node is one task in a DAG, used only as a dependency handle for Add.
type Node struct {
	d       *DAG
	run     Task
	pending atomic.Int32 // unfinished dependencies (+1 construction guard)

	mu    sync.Mutex
	done  bool
	succs []*Node
}

// NewDAG returns an empty DAG ready for Add.
func NewDAG() *DAG {
	return &DAG{doneCh: make(chan struct{}), ctx: context.Background()}
}

// ErrStarted is returned by Run when the DAG was already run once.
var ErrStarted = errors.New("sched: DAG already started")

// Add inserts a task that runs after every listed dependency completes
// and returns its node for use as a dependency of later tasks.
func (d *DAG) Add(t Task, deps ...*Node) *Node {
	n := &Node{d: d, run: t}
	// The +1 guard keeps the node unrunnable while edges are wired, even
	// if an already-running dependency completes mid-loop.
	n.pending.Store(1)
	d.mu.Lock()
	d.pending++
	d.mu.Unlock()
	for _, dep := range deps {
		if dep == nil || dep.d != d {
			panic("sched: dependency from a different DAG")
		}
		dep.mu.Lock()
		if !dep.done {
			n.pending.Add(1)
			dep.succs = append(dep.succs, n)
		}
		dep.mu.Unlock()
	}
	if n.pending.Add(-1) == 0 {
		d.markReady(n)
	}
	return n
}

// markReady hands a node with no unfinished dependencies to the enqueue
// function, or parks it until Run provides one.
func (d *DAG) markReady(n *Node) {
	d.mu.Lock()
	if !d.started {
		d.ready = append(d.ready, n)
		d.mu.Unlock()
		return
	}
	enq := d.enq
	d.mu.Unlock()
	enq(n)
}

// start transitions the DAG to executing: records the context consulted
// before each task body, flushes buffered ready nodes through enq, and
// closes doneCh immediately for an empty DAG.
func (d *DAG) start(ctx context.Context, rt *Runtime, enq func(*Node)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return ErrStarted
	}
	d.started = true
	d.ctx = ctx
	d.enq = enq
	ready := d.ready
	d.ready = nil
	empty := d.pending == 0
	d.mu.Unlock()
	if empty {
		close(d.doneCh)
		return nil
	}
	for _, n := range ready {
		enq(n)
	}
	return nil
}

// complete runs after a node's body (or its cancellation skip): releases
// successors whose last dependency this was, then retires the node from
// the DAG's pending count, closing doneCh on zero.
func (n *Node) complete(w *Worker) {
	n.mu.Lock()
	n.done = true
	succs := n.succs
	n.succs = nil
	n.mu.Unlock()
	for _, s := range succs {
		if s.pending.Add(-1) == 0 {
			if w != nil {
				w.push(s)
			} else {
				n.d.inject(s)
			}
		}
	}
	d := n.d
	d.mu.Lock()
	d.pending--
	fin := d.pending == 0 && d.started
	d.mu.Unlock()
	if fin {
		close(d.doneCh)
	}
}

// inject routes a ready node through the DAG's enqueue function (used when
// no worker context is available).
func (d *DAG) inject(n *Node) {
	d.mu.Lock()
	enq := d.enq
	d.mu.Unlock()
	enq(n)
}

// RunInline executes the DAG on the calling goroutine with no scheduler —
// a topological-order sequential walk. It exists for differential testing
// (parallel vs sequential execution of the identical DAG) and as the
// degenerate path when no runtime is available. Task bodies receive a nil
// Worker-free handle from a private single-worker shim, so bodies that
// only use w.Index()/w.Run must tolerate it; bodies built by this
// repository's DAG builders do.
func (d *DAG) RunInline(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return ErrStarted
	}
	d.started = true
	d.ctx = ctx
	var queue []*Node
	d.enq = func(n *Node) { queue = append(queue, n) }
	queue = append(queue, d.ready...)
	d.ready = nil
	empty := d.pending == 0
	d.mu.Unlock()
	if empty {
		close(d.doneCh)
		return nil
	}
	for len(queue) > 0 {
		n := queue[0]
		copy(queue, queue[1:])
		queue = queue[:len(queue)-1]
		if n.run != nil && ctx.Err() == nil {
			n.run(nil)
		}
		n.complete(nil)
	}
	return ctx.Err()
}
