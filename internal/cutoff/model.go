package cutoff

import "repro/internal/opcount"

// This file provides the deterministic, machine-independent analogue of the
// wall-clock calibration sweeps: ratio curves computed from the paper's
// Section 2 operation-count model instead of timed runs. They answer the
// same shape questions ("where does one Strassen level win?") with zero
// noise, which makes them the right fixture for tests on shared machines —
// the timed sweeps stay available behind cmd/calibrate and an opt-in env
// flag in the tests.

// ModelSquareRatioCurve returns the operation-count analogue of
// SquareRatioCurve for even orders: M(m,m,m) / OneLevelWinograd(m,m,m),
// the paper's equation-(1)-style ratio for the Winograd variant. A ratio
// above 1 means one level of recursion performs fewer operations. The
// model's crossover for square matrices is m = 12 (exactly 1.0 there);
// real machines sit far above it because the model charges adds and
// multiplies equally and ignores memory traffic.
func ModelSquareRatioCurve(dims []int) []RatioPoint {
	pts := make([]RatioPoint, 0, len(dims))
	for _, m := range dims {
		me := m &^ 1 // the model's one-level split needs even orders
		if me == 0 {
			continue
		}
		pts = append(pts, RatioPoint{
			Dim:   m,
			Ratio: float64(opcount.M(me, me, me)) / float64(opcount.OneLevelWinograd(me, me, me)),
		})
	}
	return pts
}

// ModelSquareCutoff is SquareCutoff over the operation-count model:
// deterministic, instantaneous, machine-independent.
func ModelSquareCutoff(lo, hi, step int) (int, []RatioPoint) {
	var dims []int
	for m := lo; m <= hi; m += step {
		dims = append(dims, m)
	}
	pts := ModelSquareRatioCurve(dims)
	return ChooseCrossover(pts), pts
}
