package cutoff

import (
	"math/rand"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/strassen"
)

// Comparison is one Table 4 experiment: DGEFMM timed under two cutoff
// criteria on random problems where the criteria make opposite top-level
// recursion decisions. Ratios below 1 mean criterion A (the paper's new
// hybrid condition) is faster.
type Comparison struct {
	// Ratios holds time(A)/time(B) per problem.
	Ratios []float64
	// Problems holds the sampled disagreement problems.
	Problems []bench.Problem
	// Summary is the range/quartiles/average statistics of Ratios.
	Summary bench.Summary
}

// Disagree reports whether two criteria make opposite decisions about
// applying recursion at the top level of problem p — the paper's selection
// rule: "we ... tested for those on which the two criteria would make
// opposite determinations on whether to apply recursion at the top level".
func Disagree(a, b strassen.Criterion, p bench.Problem) bool {
	return a.Recurse(p.M, p.K, p.N) != b.Recurse(p.M, p.K, p.N)
}

// CompareCriteria times DGEFMM under criteria a and b on sampleSize random
// disagreement problems drawn from [lo, hi] and returns the ratio
// statistics. α=1 and β=0, as in Table 4. An extra keep filter can restrict
// the sample (e.g. the "two dims large" rows); pass nil for no filter.
func CompareCriteria(kern blas.Kernel, a, b strassen.Criterion, sampleSize int,
	lo, hi bench.Problem, keep func(bench.Problem) bool, seed int64) Comparison {
	rng := rand.New(rand.NewSource(seed))
	probs := bench.FilterProblems(rng, sampleSize, lo, hi, func(p bench.Problem) bool {
		if keep != nil && !keep(p) {
			return false
		}
		return Disagree(a, b, p)
	})
	// Trackers make the timed loops reuse workspace (see oneLevelConfig).
	cfgA := &strassen.Config{Kernel: kern, Criterion: a, Odd: strassen.OddPeel, Tracker: memtrack.New()}
	cfgB := &strassen.Config{Kernel: kern, Criterion: b, Odd: strassen.OddPeel, Tracker: memtrack.New()}
	ratios := make([]float64, 0, len(probs))
	for _, p := range probs {
		am := matrix.NewRandom(p.M, p.K, rng)
		bm := matrix.NewRandom(p.K, p.N, rng)
		cm := matrix.NewDense(p.M, p.N)
		tA := bench.BestOf(2, func() {
			strassen.DGEFMM(cfgA, blas.NoTrans, blas.NoTrans, p.M, p.N, p.K, 1,
				am.Data, am.Stride, bm.Data, bm.Stride, 0, cm.Data, cm.Stride)
		})
		tB := bench.BestOf(2, func() {
			strassen.DGEFMM(cfgB, blas.NoTrans, blas.NoTrans, p.M, p.N, p.K, 1,
				am.Data, am.Stride, bm.Data, bm.Stride, 0, cm.Data, cm.Stride)
		})
		ratios = append(ratios, tA/tB)
	}
	c := Comparison{Ratios: ratios, Problems: probs}
	if len(ratios) > 0 {
		c.Summary = bench.Summarize(ratios)
	}
	return c
}
