// Package cutoff implements the paper's Section 3.4/4.2 empirical cutoff
// methodology: measuring where one level of Strassen's algorithm becomes
// faster than DGEMM — on square matrices (the crossover τ of Table 2 and
// Figure 2) and on long-thin rectangular sweeps (the parameters τm, τk, τn
// of Table 3) — and comparing complete cutoff criteria on random problem
// sets (Table 4).
package cutoff

import (
	"math/rand"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/sched"
	"repro/internal/strassen"
)

// RatioPoint is one measurement of Figure 2: the time ratio
// DGEMM/DGEFMM(one level) at a given swept dimension. Ratio > 1 means one
// Strassen level is faster.
type RatioPoint struct {
	Dim   int
	Ratio float64
}

// oneLevelConfig builds a DGEFMM configuration forced to apply exactly one
// level of Strassen's recursion — the comparison object of the paper's
// calibration experiments. The workspace tracker makes repeated calls reuse
// their temporaries (as the paper's code does): without it every timed call
// re-allocates its workspace, and the garbage-collection churn — which
// depends on the heap state left behind by whatever ran earlier — would
// contaminate the measured crossover.
//
// fused selects which one-level form is timed. The legacy sweeps pin
// FusedOff so they keep measuring the materialized Winograd schedules the
// paper's Tables 2/3 describe (an Always criterion with MaxDepth 1 would
// otherwise silently engage the fused driver on hook-capable kernels and
// move every historical crossover). The *Fused sweeps pin FusedOn to
// calibrate the fused driver's own, lower crossover.
func oneLevelConfig(kern blas.Kernel, fused strassen.FusedMode) *strassen.Config {
	cfg := &strassen.Config{
		Kernel:    kern,
		Criterion: strassen.Always{},
		MaxDepth:  1,
		Odd:       strassen.OddPeel,
		Fused:     fused,
		Tracker:   memtrack.New(),
	}
	if configHook != nil {
		configHook(cfg)
	}
	return cfg
}

// configHook, when installed, sees every one-level configuration the
// calibration sweeps build before it is used.
var configHook func(*strassen.Config)

// SetConfigHook installs (or, with nil, removes) a function applied to each
// internally built sweep configuration. cmd/calibrate uses it to attach the
// observability collector so long calibration runs expose metrics and span
// traces; it is not safe to change while a sweep is running.
func SetConfigHook(fn func(*strassen.Config)) { configHook = fn }

// timePair measures DGEMM and one-level DGEFMM on an m×k × k×n problem and
// returns the two per-call times in seconds.
func timePair(kern blas.Kernel, fused strassen.FusedMode, m, k, n int, alpha, beta float64, rng *rand.Rand) (tGemm, tOneLevel float64) {
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	cw := c.Clone()
	cfg := oneLevelConfig(kern, fused)
	// BestOf(2) filters single-run noise; the crossover sits where the two
	// curves differ by a few percent, so one stray measurement moves it.
	tGemm = bench.BestOf(2, func() {
		blas.DgemmKernel(kern, blas.NoTrans, blas.NoTrans, m, n, k, alpha,
			a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	})
	tOneLevel = bench.BestOf(2, func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, alpha,
			a.Data, a.Stride, b.Data, b.Stride, beta, cw.Data, cw.Stride)
	})
	return tGemm, tOneLevel
}

// SquareRatioCurve reproduces Figure 2: for each order m in dims it returns
// the ratio time(DGEMM)/time(DGEFMM one level) with the given alpha/beta
// (the paper calibrates with α=1, β=0). Odd orders exercise the peeling
// fixups, producing the figure's saw-tooth.
func SquareRatioCurve(kern blas.Kernel, dims []int, alpha, beta float64, seed int64) []RatioPoint {
	return squareRatioCurve(kern, strassen.FusedOff, dims, alpha, beta, seed)
}

// SquareRatioCurveFused is SquareRatioCurve with the one-level arm forced
// through the kernel's fused packing/write-out driver (FusedOn).
func SquareRatioCurveFused(kern blas.Kernel, dims []int, alpha, beta float64, seed int64) []RatioPoint {
	return squareRatioCurve(kern, strassen.FusedOn, dims, alpha, beta, seed)
}

func squareRatioCurve(kern blas.Kernel, fused strassen.FusedMode, dims []int, alpha, beta float64, seed int64) []RatioPoint {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]RatioPoint, 0, len(dims))
	for _, m := range dims {
		tg, ts := timePair(kern, fused, m, m, m, alpha, beta, rng)
		pts = append(pts, RatioPoint{Dim: m, Ratio: tg / ts})
	}
	return pts
}

// ChooseCrossover picks τ from a ratio curve the way the paper does for the
// RS/6000: the crossover is not a single clean point ("Strassen becomes
// better at m = 176 and is always more efficient if m ≥ 214"), so the paper
// picks a τ inside the range where Strassen is "almost always better ...
// and when it is slower it is so by a very small amount" (they chose 199).
//
// Concretely: find the smallest sweep point from which at least 75 % of the
// remaining points favor Strassen (ratio > 1); τ is the midpoint of that
// point and the largest losing dimension at or before it. If no such stable
// region exists, Strassen never reliably wins and τ is the largest sweep
// point; if Strassen wins everywhere, τ is one below the smallest.
func ChooseCrossover(pts []RatioPoint) int {
	if len(pts) == 0 {
		return 0
	}
	pts = medianFilter(pts)
	stable := -1
	for i := range pts {
		wins := 0
		for _, p := range pts[i:] {
			if p.Ratio > 1 {
				wins++
			}
		}
		if 4*wins >= 3*len(pts[i:]) {
			stable = i
			break
		}
	}
	if stable < 0 {
		return pts[len(pts)-1].Dim
	}
	lastLose := pts[0].Dim - 2 // pretend the loss region ends just below the sweep
	for _, p := range pts[:stable+1] {
		if p.Ratio < 1 && p.Dim > lastLose {
			lastLose = p.Dim
		}
	}
	tau := (lastLose + pts[stable].Dim) / 2
	if tau < 0 {
		tau = 0
	}
	return tau
}

// medianFilter smooths a ratio curve with a 3-point running median,
// suppressing isolated stride-aliasing spikes so they do not masquerade as
// crossover structure. Endpoints are kept as-is.
func medianFilter(pts []RatioPoint) []RatioPoint {
	if len(pts) < 3 {
		return pts
	}
	out := append([]RatioPoint(nil), pts...)
	for i := 1; i < len(pts)-1; i++ {
		a, b, c := pts[i-1].Ratio, pts[i].Ratio, pts[i+1].Ratio
		out[i].Ratio = median3(a, b, c)
	}
	return out
}

func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// SquareCutoff measures the square crossover τ (one Table 2 entry) for a
// kernel by sweeping orders in [lo, hi] with the given step.
func SquareCutoff(kern blas.Kernel, lo, hi, step int, seed int64) (int, []RatioPoint) {
	return squareCutoff(kern, strassen.FusedOff, lo, hi, step, seed)
}

// SquareCutoffFused measures the square crossover of one *fused* Strassen
// level — the τ installed under the "<kernel>+fused" parameter key.
func SquareCutoffFused(kern blas.Kernel, lo, hi, step int, seed int64) (int, []RatioPoint) {
	return squareCutoff(kern, strassen.FusedOn, lo, hi, step, seed)
}

func squareCutoff(kern blas.Kernel, fused strassen.FusedMode, lo, hi, step int, seed int64) (int, []RatioPoint) {
	var dims []int
	for m := lo; m <= hi; m += step {
		dims = append(dims, m)
	}
	pts := squareRatioCurve(kern, fused, dims, 1, 0, seed)
	return ChooseCrossover(pts), pts
}

// timePairCores measures the parallel pair of Figure 2 on an m×m×m problem:
// the threaded kernel (blas.ParallelKernel over the base) against one
// parallel Strassen level whose seven-product DAG runs on a cores-worker
// runtime. Both arms are budgeted to the same core count, so the ratio
// isolates where the parallel Strassen level starts beating a parallel
// DGEMM — the crossover that moves with the worker count.
func timePairCores(kern blas.Kernel, rt *sched.Runtime, cores, m int, rng *rand.Rand) (tGemm, tOneLevel float64) {
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewRandom(m, m, rng)
	cw := c.Clone()
	pk := &blas.ParallelKernel{Workers: cores, Base: kern}
	cfg := oneLevelConfig(kern, strassen.FusedOff)
	cfg.Sched = rt
	cfg.SchedLevels = 1
	tGemm = bench.BestOf(2, func() {
		blas.DgemmKernel(pk, blas.NoTrans, blas.NoTrans, m, m, m, 1,
			a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	})
	tOneLevel = bench.BestOf(2, func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
			a.Data, a.Stride, b.Data, b.Stride, 0, cw.Data, cw.Stride)
	})
	return tGemm, tOneLevel
}

// SquareCutoffCores measures the square crossover τ of one parallel
// Strassen level executed on a cores-worker work-stealing runtime against
// the equally-budgeted threaded kernel — the per-core-count analogue of
// SquareCutoff whose result installs under the "<kernel>@<cores>"
// parameter key that Config resolution consults when a runtime is
// attached. Meaningful only when the host actually has that many cores;
// on a smaller machine the ratio degenerates toward the sequential curve.
func SquareCutoffCores(kern blas.Kernel, cores, lo, hi, step int, seed int64) (int, []RatioPoint) {
	rt := sched.New(cores, seed)
	defer rt.Close()
	rng := rand.New(rand.NewSource(seed))
	var pts []RatioPoint
	for m := lo; m <= hi; m += step {
		tg, ts := timePairCores(kern, rt, cores, m, rng)
		pts = append(pts, RatioPoint{Dim: m, Ratio: tg / ts})
	}
	return ChooseCrossover(pts), pts
}

// Dim selects which of (m, k, n) a rectangular sweep varies.
type Dim int

// The three dimensions of a multiplication.
const (
	DimM Dim = iota
	DimK
	DimN
)

// String names the dimension.
func (d Dim) String() string { return [...]string{"m", "k", "n"}[d] }

// RectRatioCurve sweeps one dimension over dims while holding the other two
// at fixed (the paper holds them "at a large value", 2000 on the RS/6000
// and C90, 1500 on the T3D), returning the Figure-2-style ratio curve for
// that direction.
func RectRatioCurve(kern blas.Kernel, sweep Dim, dims []int, fixed int, seed int64) []RatioPoint {
	return rectRatioCurve(kern, strassen.FusedOff, sweep, dims, fixed, seed)
}

func rectRatioCurve(kern blas.Kernel, fused strassen.FusedMode, sweep Dim, dims []int, fixed int, seed int64) []RatioPoint {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]RatioPoint, 0, len(dims))
	for _, d := range dims {
		m, k, n := fixed, fixed, fixed
		switch sweep {
		case DimM:
			m = d
		case DimK:
			k = d
		case DimN:
			n = d
		}
		tg, ts := timePair(kern, fused, m, k, n, 1, 0, rng)
		pts = append(pts, RatioPoint{Dim: d, Ratio: tg / ts})
	}
	return pts
}

// RectParams measures τm, τk, τn (one Table 3 row) for a kernel: each
// parameter is the crossover of the sweep that varies its dimension with
// the other two held at fixed. "When k and n are large, their contribution
// in (14) is negligible, so that the parameter τm can be set to the
// crossover point determined from the experiment where k and n are fixed."
func RectParams(kern blas.Kernel, lo, hi, step, fixed int, seed int64) strassen.Params {
	return rectParams(kern, strassen.FusedOff, lo, hi, step, fixed, seed)
}

// RectParamsFused is RectParams with the one-level arm forced through the
// fused driver — the τm, τk, τn for the "<kernel>+fused" parameter key.
func RectParamsFused(kern blas.Kernel, lo, hi, step, fixed int, seed int64) strassen.Params {
	return rectParams(kern, strassen.FusedOn, lo, hi, step, fixed, seed)
}

func rectParams(kern blas.Kernel, fused strassen.FusedMode, lo, hi, step, fixed int, seed int64) strassen.Params {
	sweep := func(d Dim) int {
		var dims []int
		for v := lo; v <= hi; v += step {
			dims = append(dims, v)
		}
		return ChooseCrossover(rectRatioCurve(kern, fused, d, dims, fixed, seed))
	}
	return strassen.Params{
		TauM: sweep(DimM),
		TauK: sweep(DimK),
		TauN: sweep(DimN),
	}
}

// Calibrate runs the full Section 4.2 procedure for one kernel: the square
// crossover sweep and the three rectangular sweeps, returning a complete
// parameter set for the hybrid criterion (15).
func Calibrate(kern blas.Kernel, sqLo, sqHi, sqStep, rectLo, rectHi, rectStep, fixed int, seed int64) strassen.Params {
	tau, _ := SquareCutoff(kern, sqLo, sqHi, sqStep, seed)
	p := RectParams(kern, rectLo, rectHi, rectStep, fixed, seed+1)
	p.Tau = tau
	return p
}

// CalibrateFused is Calibrate for the fused driver: the same square and
// rectangular sweeps with the one-level arm running fused, yielding the
// parameter set for SetDefaultParams("<kernel>+fused", ...). Only
// meaningful for kernels implementing the fused hooks; on others the
// driver falls back to the materialized schedule and the result matches
// Calibrate up to noise.
func CalibrateFused(kern blas.Kernel, sqLo, sqHi, sqStep, rectLo, rectHi, rectStep, fixed int, seed int64) strassen.Params {
	tau, _ := SquareCutoffFused(kern, sqLo, sqHi, sqStep, seed)
	p := RectParamsFused(kern, rectLo, rectHi, rectStep, fixed, seed+1)
	p.Tau = tau
	return p
}
