package cutoff

import (
	"os"
	"testing"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/strassen"
)

// Calibration unit tests run with the naive kernel on small sizes so they
// stay fast; the full-size sweeps live in cmd/calibrate and the benchmarks.

func TestChooseCrossover(t *testing.T) {
	pts := []RatioPoint{
		{120, 0.95}, {140, 0.98}, {160, 1.01}, {180, 0.99}, {200, 1.02}, {220, 1.05},
	}
	// After median smoothing the curve is {0.95,0.98,0.99,1.01,1.02,1.05}:
	// the stable-win region starts at dim 160 (75 % of the rest win) and the
	// last smoothed loss is also at 160 → τ = 160.
	if got := ChooseCrossover(pts); got != 160 {
		t.Fatalf("ChooseCrossover = %d, want 160", got)
	}
	// τ sits inside the paper-style crossover range (first win .. stable).
	if got := ChooseCrossover(pts); got < 140 || got > 200 {
		t.Fatalf("τ=%d outside the crossover range", got)
	}
}

func TestChooseCrossoverIgnoresLateOutliers(t *testing.T) {
	// A single deep loss far above the crossover (stride-aliasing noise)
	// must not drag τ upward.
	pts := []RatioPoint{
		{32, 0.9}, {64, 1.2}, {96, 1.18}, {128, 1.1}, {160, 1.3},
		{192, 1.02}, {224, 1.25}, {256, 1.01}, {288, 1.46}, {320, 0.88},
	}
	got := ChooseCrossover(pts)
	if got > 64 {
		t.Fatalf("τ=%d inflated by the late outlier; want ≤ 64", got)
	}
}

func TestChooseCrossoverAlwaysWins(t *testing.T) {
	pts := []RatioPoint{{64, 1.1}, {96, 1.2}}
	if got := ChooseCrossover(pts); got != 63 {
		t.Fatalf("always-wins crossover = %d, want 63", got)
	}
}

func TestChooseCrossoverNeverWins(t *testing.T) {
	pts := []RatioPoint{{64, 0.8}, {96, 0.9}}
	if got := ChooseCrossover(pts); got != 96 {
		t.Fatalf("never-wins crossover = %d, want 96", got)
	}
}

func TestChooseCrossoverEmpty(t *testing.T) {
	if ChooseCrossover(nil) != 0 {
		t.Fatal("empty curve should give 0")
	}
}

func TestSquareRatioCurveShape(t *testing.T) {
	pts := SquareRatioCurve(blas.NaiveKernel{}, []int{24, 48}, 1, 0, 7)
	if len(pts) != 2 || pts[0].Dim != 24 || pts[1].Dim != 48 {
		t.Fatalf("curve malformed: %+v", pts)
	}
	for _, p := range pts {
		if p.Ratio <= 0 {
			t.Fatalf("nonpositive ratio: %+v", p)
		}
	}
}

func TestSquareCutoffEndToEnd(t *testing.T) {
	// The end-to-end crossover search is asserted on the deterministic
	// operation-count model, which has zero timing noise: the model's
	// square crossover is m = 12 (ratio exactly 1.0 there, above 1 for all
	// larger even orders), so the sweep must put every losing point below
	// it and land τ inside the losing band.
	tau, pts := ModelSquareCutoff(4, 112, 4)
	if len(pts) != 28 {
		t.Fatalf("want 28 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Dim <= 8 && p.Ratio >= 1 {
			t.Errorf("model says one level wins at m=%d (ratio %.4f); it must lose below 12", p.Dim, p.Ratio)
		}
		if p.Dim >= 16 && p.Ratio <= 1 {
			t.Errorf("model says one level loses at m=%d (ratio %.4f); it must win above 12", p.Dim, p.Ratio)
		}
	}
	if tau < 4 || tau >= 16 {
		t.Errorf("model τ=%d outside the crossover band [4, 16)", tau)
	}
	up := pts[len(pts)/2:]
	for _, p := range up {
		if p.Ratio <= 1 {
			t.Errorf("upper-half point m=%d does not favor Strassen (ratio %.4f)", p.Dim, p.Ratio)
		}
	}

	// The wall-clock search against the real naive kernel is inherently
	// noisy on shared machines, so it is opt-in: set CUTOFF_WALLCLOCK=1
	// (and run without -short) to exercise it.
	if testing.Short() || os.Getenv("CUTOFF_WALLCLOCK") == "" {
		return
	}
	attempt := func(seed int64) (ok bool, tau int, wins, upper int) {
		tau, pts := SquareCutoff(blas.NaiveKernel{}, 16, 112, 16, seed)
		if len(pts) != 7 {
			t.Fatalf("want 7 points, got %d", len(pts))
		}
		up := pts[len(pts)/2:]
		for _, p := range up {
			if p.Ratio > 1 {
				wins++
			}
		}
		return tau < 112 && wins*2 >= len(up), tau, wins, len(up)
	}
	ok, wtau, wins, upper := attempt(11)
	if !ok {
		t.Logf("first attempt noisy (τ=%d, %d/%d upper wins); retrying", wtau, wins, upper)
		ok, wtau, wins, upper = attempt(12)
	}
	if !ok {
		t.Errorf("no stable wall-clock crossover in 2 attempts: τ=%d, %d/%d upper-half wins", wtau, wins, upper)
	}
}

func TestRectRatioCurveSweepsCorrectDim(t *testing.T) {
	pts := RectRatioCurve(blas.NaiveKernel{}, DimK, []int{16, 32}, 64, 3)
	if len(pts) != 2 || pts[0].Dim != 16 {
		t.Fatalf("rect curve malformed: %+v", pts)
	}
}

func TestDimString(t *testing.T) {
	if DimM.String() != "m" || DimK.String() != "k" || DimN.String() != "n" {
		t.Fatal("Dim names")
	}
}

func TestRectParamsProducesPositiveParams(t *testing.T) {
	p := RectParams(blas.NaiveKernel{}, 8, 40, 8, 96, 5)
	if p.TauM <= 0 || p.TauK <= 0 || p.TauN <= 0 {
		t.Fatalf("params not measured: %+v", p)
	}
	// All crossovers must lie within the swept range (7..40: lo-1 possible).
	for _, v := range []int{p.TauM, p.TauK, p.TauN} {
		if v < 7 || v > 40 {
			t.Fatalf("crossover %d outside sweep: %+v", v, p)
		}
	}
}

func TestDisagree(t *testing.T) {
	simple := strassen.Simple{Tau: 64}
	hybrid := strassen.Hybrid{Tau: 64, TauM: 20, TauK: 20, TauN: 20}
	// (40, 500, 500): simple stops (m ≤ 64); hybrid recurses via (13):
	// lhs = 40·500·500 = 1e7; rhs = 20·25e4·3 = 1.5e7? Compute:
	// τm·nk = 20·250000 = 5e6, τk·mn = 20·20000 = 4e5, τn·mk = 4e5 → 5.8e6 < 1e7 → recurse.
	p := bench.Problem{M: 40, K: 500, N: 500}
	if !Disagree(simple, hybrid, p) {
		t.Fatal("criteria should disagree on thin-by-large problem")
	}
	if Disagree(simple, simple, p) {
		t.Fatal("criterion cannot disagree with itself")
	}
}

func TestCompareCriteriaSmall(t *testing.T) {
	// A tiny end-to-end Table 4 run: naive kernel, small dims, few samples.
	kern := blas.NaiveKernel{}
	hybrid := strassen.Hybrid{Tau: 32, TauM: 12, TauK: 12, TauN: 12}
	simple := strassen.Simple{Tau: 32}
	cmp := CompareCriteria(kern, hybrid, simple, 4,
		bench.Problem{M: 8, K: 8, N: 8}, bench.Problem{M: 96, K: 96, N: 96}, nil, 13)
	if len(cmp.Ratios) != 4 {
		t.Fatalf("want 4 ratios, got %d", len(cmp.Ratios))
	}
	for _, r := range cmp.Ratios {
		if r <= 0 {
			t.Fatal("nonpositive ratio")
		}
	}
	if cmp.Summary.N != 4 {
		t.Fatal("summary not computed")
	}
}

func TestCompareCriteriaNoDisagreement(t *testing.T) {
	kern := blas.NaiveKernel{}
	same := strassen.Simple{Tau: 32}
	cmp := CompareCriteria(kern, same, same, 3,
		bench.Problem{M: 8, K: 8, N: 8}, bench.Problem{M: 16, K: 16, N: 16}, nil, 17)
	if len(cmp.Ratios) != 0 {
		t.Fatal("identical criteria can never disagree")
	}
}

func TestCalibrateSmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	p := Calibrate(blas.NaiveKernel{}, 16, 64, 16, 8, 32, 8, 80, 23)
	if p.Tau <= 0 || p.TauM <= 0 {
		t.Fatalf("calibration incomplete: %+v", p)
	}
}

func TestSquareCutoffCoresSmokeTest(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration sweep in -short mode")
	}
	// The timings carry no meaning on a loaded or single-core test host;
	// the test pins only that the parallel sweep runs both arms and yields
	// a curve point per order plus a crossover in the sweep's range.
	tau, pts := SquareCutoffCores(blas.NaiveKernel{}, 2, 16, 48, 16, 29)
	if len(pts) != 3 {
		t.Fatalf("want 3 curve points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Ratio <= 0 {
			t.Fatalf("nonpositive ratio at m=%d", p.Dim)
		}
	}
	if tau < 0 || tau > 48 {
		t.Fatalf("crossover %d outside the swept range", tau)
	}
}
