package algo

// Compose returns the Kronecker product of two algorithms: a valid
// ⟨M1·M2, K1·K2, N1·N2⟩ table with R1·R2 products whose product r1·R2+r2
// multiplies outer operand combination r1 refined by inner combination r2.
// Composition is how small verified seeds generate larger algorithms —
// the built-in ⟨4,2,4⟩ is Strassen's ⟨2,2,2⟩ composed with the naive
// ⟨2,1,2⟩ — and the result is re-verified by New, so a composition bug
// cannot produce a silently wrong table.
func Compose(name string, outer, inner *Table) (*Table, error) {
	u := kron(outer.U, inner.U, outer.K, inner.K)
	v := kron(outer.V, inner.V, outer.N, inner.N)
	w := kron(outer.W, inner.W, outer.N, inner.N)
	return New(name, outer.M*inner.M, outer.K*inner.K, outer.N*inner.N, u, v, w)
}

// MustCompose is Compose, panicking on error; for the built-in tables.
func MustCompose(name string, outer, inner *Table) *Table {
	t, err := Compose(name, outer, inner)
	if err != nil {
		panic(err)
	}
	return t
}

// kron forms the Kronecker product of two coefficient matrices whose rows
// enumerate an (rows1×cols1) and (rows2×cols2) block grid row-major: the
// composed block (row1·rows2+row2, col1·cols2+col2) gets coefficient
// a[row][r1]·b[row'][r2] in column r1·R2+r2.
func kron(a, b [][]float64, cols1, cols2 int) [][]float64 {
	rows1, rows2 := len(a)/cols1, len(b)/cols2
	r1, r2 := len(a[0]), len(b[0])
	out := make([][]float64, rows1*rows2*cols1*cols2)
	for i1 := 0; i1 < rows1; i1++ {
		for j1 := 0; j1 < cols1; j1++ {
			for i2 := 0; i2 < rows2; i2++ {
				for j2 := 0; j2 < cols2; j2++ {
					row := make([]float64, r1*r2)
					ra, rb := a[i1*cols1+j1], b[i2*cols2+j2]
					for p := 0; p < r1; p++ {
						if ra[p] == 0 {
							continue
						}
						for q := 0; q < r2; q++ {
							row[p*r2+q] = ra[p] * rb[q]
						}
					}
					out[(i1*rows2+i2)*cols1*cols2+(j1*cols2+j2)] = row
				}
			}
		}
	}
	return out
}
