// Package algo represents fast matrix-multiplication algorithms as
// coefficient tables, after Huang, Rice, Matthews and van de Geijn,
// "Generating Families of Practical Fast Matrix Multiplication Algorithms".
//
// A ⟨m, k, n⟩ algorithm partitions A into an m×k grid of blocks, B into
// k×n and C into m×n, and computes the product with R block
// multiplications instead of the classical m·k·n:
//
//	P_r = (Σ_i U[i][r]·A_i) · (Σ_j V[j][r]·B_j)    r = 0..R-1
//	C_l = Σ_r W[l][r]·P_r                           l = 0..m·n-1
//
// where A_i, B_j, C_l enumerate the blocks row-major (A block (i,k) has
// index i·K+k, B block (k,j) index k·N+j, C block (i,j) index i·N+j).
// The triple (U, V, W) is the algorithm: Strassen's construction is one
// ⟨2,2,2⟩ table with R = 7, Winograd's variant another, and rectangular
// tables such as ⟨3,2,3⟩ split lopsided operands without squaring them
// first. Validity is decidable — the Brent equations (see Validate) hold
// exactly when the table computes the matrix product — so a table is data
// that can be checked in CI rather than code that must be trusted.
//
// The package carries the representation, the Brent-equation verifier,
// Kronecker composition, nnz/stability metadata, a registry of built-in
// tables and a per-shape selection heuristic. The recursion that executes
// a table lives in internal/strassen.
package algo

import (
	"fmt"
	"math"
)

// Term is one nonzero coefficient of a table column: the block it reads
// (or writes, for W) and the scalar it contributes with.
type Term struct {
	// Block is the row-major block index: i·K+k into A, k·N+j into B,
	// i·N+j into C.
	Block int
	// Coeff is the scalar coefficient (±1 for every built-in table).
	Coeff float64
}

// Table is one ⟨M, K, N⟩ fast algorithm as its (U, V, W) coefficient
// tables. Construct with New (which verifies the Brent equations) and
// treat as immutable afterwards; a Table is safe for concurrent use.
type Table struct {
	// Name identifies the table in registries, flags and reports.
	Name string
	// M, K, N are the block-grid dimensions: A splits M×K, B splits K×N,
	// C splits M×N.
	M, K, N int
	// R is the number of block products.
	R int
	// U is (M·K)×R: U[i][r] is block i's coefficient in product r's left
	// operand. V is (K·N)×R and W is (M·N)×R analogously (W maps products
	// back to C blocks).
	U, V, W [][]float64

	aTerms, bTerms, cTerms [][]Term
}

// New builds a table from its coefficient matrices, derives the per-product
// term lists and proves validity with the Brent-equation verifier. The
// coefficient slices are retained, not copied.
func New(name string, m, k, n int, u, v, w [][]float64) (*Table, error) {
	t := &Table{Name: name, M: m, K: k, N: n, U: u, V: v, W: w}
	if m < 1 || k < 1 || n < 1 {
		return nil, fmt.Errorf("algo %q: non-positive grid %d×%d×%d", name, m, k, n)
	}
	if len(u) != m*k || len(v) != k*n || len(w) != m*n {
		return nil, fmt.Errorf("algo %q: got %d/%d/%d coefficient rows, want %d/%d/%d",
			name, len(u), len(v), len(w), m*k, k*n, m*n)
	}
	t.R = -1
	for _, rows := range [][][]float64{u, v, w} {
		for _, row := range rows {
			if t.R < 0 {
				t.R = len(row)
			}
			if len(row) != t.R {
				return nil, fmt.Errorf("algo %q: ragged coefficient rows (%d vs %d products)",
					name, len(row), t.R)
			}
		}
	}
	if t.R < 1 {
		return nil, fmt.Errorf("algo %q: no products", name)
	}
	t.aTerms = termLists(u, t.R)
	t.bTerms = termLists(v, t.R)
	t.cTerms = termLists(w, t.R)
	for r := 0; r < t.R; r++ {
		if len(t.aTerms[r]) == 0 || len(t.bTerms[r]) == 0 {
			return nil, fmt.Errorf("algo %q: product %d has an empty operand", name, r)
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// MustNew is New, panicking on error; for the built-in tables.
func MustNew(name string, m, k, n int, u, v, w [][]float64) *Table {
	t, err := New(name, m, k, n, u, v, w)
	if err != nil {
		panic(err)
	}
	return t
}

// termLists transposes an (blocks)×R coefficient matrix into per-product
// nonzero term lists, blocks in ascending index order.
func termLists(rows [][]float64, r int) [][]Term {
	out := make([][]Term, r)
	for p := 0; p < r; p++ {
		for b, row := range rows {
			if g := row[p]; g != 0 {
				out[p] = append(out[p], Term{Block: b, Coeff: g})
			}
		}
	}
	return out
}

// ATerms returns product r's left-operand terms (blocks of A, ascending
// block index). The slice is shared; callers must not modify it.
func (t *Table) ATerms(r int) []Term { return t.aTerms[r] }

// BTerms returns product r's right-operand terms (blocks of B).
func (t *Table) BTerms(r int) []Term { return t.bTerms[r] }

// CTerms returns product r's destinations (blocks of C, ascending block
// index — the order the executor accumulates them in).
func (t *Table) CTerms(r int) []Term { return t.cTerms[r] }

// NNZ returns the nonzero counts of U, V and W — the table's footprint in
// operand-side and destination-side work.
func (t *Table) NNZ() (u, v, w int) {
	for r := 0; r < t.R; r++ {
		u += len(t.aTerms[r])
		v += len(t.bTerms[r])
		w += len(t.cTerms[r])
	}
	return u, v, w
}

// MaxTerms returns the largest operand term count and destination fan-out
// over all products — the quantities the fused driver's packing and
// write-out capacity are gated on.
func (t *Table) MaxTerms() (operands, dests int) {
	for r := 0; r < t.R; r++ {
		if l := len(t.aTerms[r]); l > operands {
			operands = l
		}
		if l := len(t.bTerms[r]); l > operands {
			operands = l
		}
		if l := len(t.cTerms[r]); l > dests {
			dests = l
		}
	}
	return operands, dests
}

// PlusMinusOne reports whether every nonzero coefficient is ±1 (true for
// all built-ins). Such tables add and subtract blocks exactly; general
// coefficients introduce rounding in operand formation.
func (t *Table) PlusMinusOne() bool {
	for _, lists := range [][][]Term{t.aTerms, t.bTerms, t.cTerms} {
		for _, terms := range lists {
			for _, tm := range terms {
				if tm.Coeff != 1 && tm.Coeff != -1 {
					return false
				}
			}
		}
	}
	return true
}

// Growth returns the table's one-level error-growth prefactor
// max_l Σ_r |W[l][r]|·(Σ_i |U[i][r]|)·(Σ_j |V[j][r]|) — the stability
// quantity of Higham's fast-multiplication analysis (classic Strassen
// scores 12, the Winograd variant 18, the classical algorithm K). A
// d-level recursion's error bound scales like Growth^d.
func (t *Table) Growth() float64 {
	absSum := func(terms []Term) float64 {
		var s float64
		for _, tm := range terms {
			s += math.Abs(tm.Coeff)
		}
		return s
	}
	worst := 0.0
	for l := 0; l < t.M*t.N; l++ {
		var row float64
		for r := 0; r < t.R; r++ {
			if g := t.W[l][r]; g != 0 {
				row += math.Abs(g) * absSum(t.aTerms[r]) * absSum(t.bTerms[r])
			}
		}
		worst = math.Max(worst, row)
	}
	return worst
}

// Speedup returns M·K·N / R, the per-level ratio of classical block
// products to the table's — the asymptotic rate advantage (8/7 ≈ 1.14 for
// ⟨2,2,2⟩ with R = 7, 18/17 for the built-in ⟨3,2,3⟩).
func (t *Table) Speedup() float64 {
	return float64(t.M*t.K*t.N) / float64(t.R)
}

// String renders the table's signature, e.g. "winograd ⟨2,2,2⟩ R=7".
func (t *Table) String() string {
	return fmt.Sprintf("%s ⟨%d,%d,%d⟩ R=%d", t.Name, t.M, t.K, t.N, t.R)
}
