package algo

import (
	"math"
	"math/rand"
	"testing"
)

// TestBrentVerify re-proves every registered table against the Brent
// equations, one named subtest per table — the CI algorithm-verification
// matrix invokes these as TestBrentVerify/<name> so a bad table fails a
// step carrying its name.
func TestBrentVerify(t *testing.T) {
	if len(Tables()) < 5 {
		t.Fatalf("only %d registered tables, want the 5 built-ins", len(Tables()))
	}
	for _, tab := range Tables() {
		t.Run(tab.Name, func(t *testing.T) {
			if err := tab.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBrentVerifyByMultiplication cross-checks the verifier itself: every
// registered table, executed symbolically on scalar blocks (block size 1),
// must reproduce the classical product of random M×K · K×N matrices.
func TestBrentVerifyByMultiplication(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tab := range Tables() {
		a := make([]float64, tab.M*tab.K)
		b := make([]float64, tab.K*tab.N)
		for i := range a {
			a[i] = rng.NormFloat64()
		}
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		c := make([]float64, tab.M*tab.N)
		for r := 0; r < tab.R; r++ {
			var sa, sb float64
			for _, tm := range tab.ATerms(r) {
				sa += tm.Coeff * a[tm.Block]
			}
			for _, tm := range tab.BTerms(r) {
				sb += tm.Coeff * b[tm.Block]
			}
			for _, tm := range tab.CTerms(r) {
				c[tm.Block] += tm.Coeff * sa * sb
			}
		}
		for i := 0; i < tab.M; i++ {
			for j := 0; j < tab.N; j++ {
				var want float64
				for k := 0; k < tab.K; k++ {
					want += a[i*tab.K+k] * b[k*tab.N+j]
				}
				if got := c[i*tab.N+j]; math.Abs(got-want) > 1e-12*(math.Abs(want)+1) {
					t.Errorf("%s: C(%d,%d) = %g, want %g", tab.Name, i, j, got, want)
				}
			}
		}
	}
}

// TestCorruptedTableFailsBrent proves the verifier has teeth: corrupting
// a single coefficient of a valid table must break a Brent equation. Every
// kind of corruption tried — sign flip, zeroing, off-by-one block — fails.
func TestCorruptedTableFailsBrent(t *testing.T) {
	corrupt := func(name string, mutate func(c *Table)) {
		src := Default()
		c := &Table{Name: "corrupted", M: src.M, K: src.K, N: src.N, R: src.R}
		for _, pair := range []struct {
			dst *[][]float64
			src [][]float64
		}{{&c.U, src.U}, {&c.V, src.V}, {&c.W, src.W}} {
			rows := make([][]float64, len(pair.src))
			for i, row := range pair.src {
				rows[i] = append([]float64(nil), row...)
			}
			*pair.dst = rows
		}
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("%s: corrupted table passed the Brent check", name)
		}
		if _, err := New("corrupted", c.M, c.K, c.N, c.U, c.V, c.W); err == nil {
			t.Errorf("%s: New accepted a corrupted table", name)
		}
	}
	corrupt("sign-flip", func(c *Table) { c.U[0][0] = -c.U[0][0] })
	corrupt("zeroed", func(c *Table) { c.W[0][1] = 0 })
	corrupt("wrong-block", func(c *Table) { c.V[2][1], c.V[1][1] = 0, 1 })
	corrupt("scaled", func(c *Table) { c.W[3][4] *= 1.5 })
}

// TestNewRejectsMalformed covers the structural validations ahead of the
// Brent check.
func TestNewRejectsMalformed(t *testing.T) {
	w := Default()
	if _, err := New("short", 2, 2, 2, w.U[:3], w.V, w.W); err == nil {
		t.Error("New accepted a U with missing rows")
	}
	ragged := [][]float64{{1, 0}, {0, 1, 0}, {0, 0}, {0, 0}}
	if _, err := New("ragged", 2, 2, 2, ragged, w.V, w.W); err == nil {
		t.Error("New accepted ragged coefficient rows")
	}
	if _, err := New("empty", 1, 1, 1, [][]float64{{0}}, [][]float64{{1}}, [][]float64{{1}}); err == nil {
		t.Error("New accepted a product with an empty operand")
	}
}

// TestBuiltinShapes pins the signatures of the shipped tables.
func TestBuiltinShapes(t *testing.T) {
	want := map[string][4]int{
		"winograd": {2, 2, 2, 7},
		"classic":  {2, 2, 2, 7},
		"323":      {3, 2, 3, 17},
		"333":      {3, 3, 3, 26},
		"424":      {4, 2, 4, 28},
	}
	for name, dims := range want {
		tab, ok := ByName(name)
		if !ok {
			t.Errorf("table %q not registered", name)
			continue
		}
		if tab.M != dims[0] || tab.K != dims[1] || tab.N != dims[2] || tab.R != dims[3] {
			t.Errorf("%s: got ⟨%d,%d,%d⟩ R=%d, want ⟨%d,%d,%d⟩ R=%d",
				name, tab.M, tab.K, tab.N, tab.R, dims[0], dims[1], dims[2], dims[3])
		}
		if !tab.PlusMinusOne() {
			t.Errorf("%s: built-in table has non-±1 coefficients", name)
		}
		if sp := tab.Speedup(); sp <= 1 {
			t.Errorf("%s: speedup %g, want > 1", name, sp)
		}
	}
}

// TestMetadata pins the nnz/stability numbers the docs quote.
func TestMetadata(t *testing.T) {
	classic, _ := ByName("classic")
	if ops, dests := classic.MaxTerms(); ops != 2 || dests != 2 {
		t.Errorf("classic MaxTerms = (%d, %d), want (2, 2)", ops, dests)
	}
	if g := classic.Growth(); g != 12 {
		t.Errorf("classic Growth = %g, want 12", g)
	}
	wino := Default()
	if ops, dests := wino.MaxTerms(); ops != 4 || dests != 4 {
		t.Errorf("winograd MaxTerms = (%d, %d), want (4, 4)", ops, dests)
	}
	if g := wino.Growth(); g != 18 {
		t.Errorf("winograd Growth = %g, want 18", g)
	}
	u, v, w := classic.NNZ()
	if u != 12 || v != 12 || w != 12 {
		t.Errorf("classic NNZ = (%d, %d, %d), want (12, 12, 12)", u, v, w)
	}
}

// TestCompose proves composition preserves validity and multiplies
// signatures (New re-runs the Brent check, so reaching the assertions at
// all means the composed tables verified).
func TestCompose(t *testing.T) {
	classic, _ := ByName("classic")
	s44, err := Compose("s44-test", classic, classic)
	if err != nil {
		t.Fatal(err)
	}
	if s44.M != 4 || s44.K != 4 || s44.N != 4 || s44.R != 49 {
		t.Errorf("classic⊗classic = ⟨%d,%d,%d⟩ R=%d, want ⟨4,4,4⟩ R=49", s44.M, s44.K, s44.N, s44.R)
	}
	t424, _ := ByName("424")
	if t424.M != 4 || t424.K != 2 || t424.N != 4 || t424.R != 28 {
		t.Errorf("424 = ⟨%d,%d,%d⟩ R=%d, want ⟨4,2,4⟩ R=28", t424.M, t424.K, t424.N, t424.R)
	}
}

// TestRegisterRejectsDuplicates: built-ins cannot be shadowed.
func TestRegisterRejectsDuplicates(t *testing.T) {
	if err := Register(Default()); err == nil {
		t.Error("Register accepted a duplicate name")
	}
}

// TestSelect exercises the aspect-matching rule.
func TestSelect(t *testing.T) {
	cases := []struct {
		m, k, n int
		want    string
	}{
		{512, 512, 512, "winograd"}, // square: best speedup among score-0 tables
		{300, 200, 300, "323"},      // 3:2:3 aspect splits evenly only under ⟨3,2,3⟩
		{400, 200, 400, "424"},      // 4:2:4 aspect
		{900, 900, 900, "winograd"},
		{1, 1, 1, "winograd"}, // nothing fits: the default
	}
	for _, tc := range cases {
		if got := Select(tc.m, tc.k, tc.n); got.Name != tc.want {
			t.Errorf("Select(%d, %d, %d) = %s, want %s", tc.m, tc.k, tc.n, got.Name, tc.want)
		}
	}
}
