package algo

import "math"

// Select picks the registered table whose split ratios best match an
// m×k · k×n problem's aspect: a table ⟨M, K, N⟩ divides the problem into
// m/M × k/K × n/N children, and the best table makes those child
// quotients as mutually balanced as the parent allows (paper equation
// (15) favors balanced sub-problems; a 3000×2000·2000×3000 product splits
// evenly under ⟨3,2,3⟩ where ⟨2,2,2⟩ leaves the lopsidedness in place).
//
// The score is the total pairwise log-ratio imbalance of the child
// quotients; among tables within ε of the best score the higher
// per-level speedup (M·K·N/R) wins, then earlier registration order (so
// the default Winograd table beats the classic table on square shapes).
// Tables whose grid does not fit the problem (m < M etc.) are skipped;
// if none fit, Select returns the default table.
func Select(m, k, n int) *Table {
	best := Default()
	bestScore := math.Inf(1)
	bestSpeedup := 0.0
	const eps = 1e-9
	for _, t := range Tables() {
		if m < t.M || k < t.K || n < t.N {
			continue
		}
		qm := float64(m) / float64(t.M)
		qk := float64(k) / float64(t.K)
		qn := float64(n) / float64(t.N)
		score := math.Abs(math.Log(qm/qk)) + math.Abs(math.Log(qk/qn)) + math.Abs(math.Log(qm/qn))
		if score < bestScore-eps ||
			(score < bestScore+eps && t.Speedup() > bestSpeedup+eps) {
			best, bestScore, bestSpeedup = t, math.Min(score, bestScore), t.Speedup()
		}
	}
	return best
}
