package algo

import (
	"fmt"
	"math"
)

// brentTol is the tolerance on each Brent-equation residual. Every
// built-in table has ±1 coefficients and small term counts, so its
// residuals are exactly zero in floating point; the tolerance only
// matters for user tables with non-integer coefficients, where a residual
// is a sum of ≤R products of three coefficients.
const brentTol = 1e-9

// Validate proves the table computes the block matrix product by checking
// the Brent equations:
//
//	Σ_r U[(i,k)][r] · V[(k',j)][r] · W[(i',j')][r] = δ(k=k')·δ(i=i')·δ(j=j')
//
// for every index combination — the triple (U, V, W) is a rank-R
// decomposition of the ⟨M, K, N⟩ matrix-multiplication tensor if and only
// if all M·K·K·N·M·N equations hold. A nil error is a proof of
// correctness for exact (±1) tables and a proof within rounding for
// general coefficients.
func (t *Table) Validate() error {
	for i := 0; i < t.M; i++ {
		for k := 0; k < t.K; k++ {
			for k2 := 0; k2 < t.K; k2++ {
				for j := 0; j < t.N; j++ {
					for i2 := 0; i2 < t.M; i2++ {
						for j2 := 0; j2 < t.N; j2++ {
							var s float64
							u, v, w := t.U[i*t.K+k], t.V[k2*t.N+j], t.W[i2*t.N+j2]
							for r := 0; r < t.R; r++ {
								s += u[r] * v[r] * w[r]
							}
							want := 0.0
							if k == k2 && i == i2 && j == j2 {
								want = 1
							}
							if math.Abs(s-want) > brentTol {
								return fmt.Errorf(
									"algo %q: Brent equation A(%d,%d)·B(%d,%d)→C(%d,%d) sums to %g, want %g",
									t.Name, i, k, k2, j, i2, j2, s, want)
							}
						}
					}
				}
			}
		}
	}
	return nil
}
