package algo

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultName names the table DGEFMM executes when no algorithm is
// selected: the ⟨2,2,2⟩ Winograd variant the paper's schedules hand-code.
const DefaultName = "winograd"

// prod is one product's nonzero coefficients as (block, coeff) pairs —
// the construction-side mirror of the Term lists New derives.
type prod struct {
	u, v, w []Term
}

// fromProds expands a product list into dense (U, V, W) tables and builds
// (and Brent-verifies) the Table.
func fromProds(name string, m, k, n int, ps []prod) *Table {
	u := make([][]float64, m*k)
	v := make([][]float64, k*n)
	w := make([][]float64, m*n)
	fill := func(rows [][]float64, pick func(p prod) []Term) {
		for i := range rows {
			rows[i] = make([]float64, len(ps))
		}
		for r, p := range ps {
			for _, tm := range pick(p) {
				rows[tm.Block][r] = tm.Coeff
			}
		}
	}
	fill(u, func(p prod) []Term { return p.u })
	fill(v, func(p prod) []Term { return p.v })
	fill(w, func(p prod) []Term { return p.w })
	return MustNew(name, m, k, n, u, v, w)
}

// tm abbreviates a ±1 term in the built-in constructions.
func tm(block int, coeff float64) Term { return Term{Block: block, Coeff: coeff} }

// strassenProds is Strassen's original 1969 construction over a 2×2 grid
// (blocks indexed row-major: X11=0, X12=1, X21=2, X22=3), in the product
// order of the materialized "original" schedule and the fused driver's
// record table:
//
//	M1 = (A11+A22)(B11+B22) → C11, C22      M5 = (A11+A12)B22 → −C11, C12
//	M2 = (A21+A22)B11       → C21, −C22     M6 = (A21−A11)(B11+B12) → C22
//	M3 = A11(B12−B22)       → C12, C22      M7 = (A12−A22)(B21+B22) → C11
//	M4 = A22(B21−B11)       → C11, C21
//
// embedded (with an index mapping) in the rectangular constructions below.
var strassenProds = []prod{
	{u: []Term{tm(0, 1), tm(3, 1)}, v: []Term{tm(0, 1), tm(3, 1)}, w: []Term{tm(0, 1), tm(3, 1)}},
	{u: []Term{tm(2, 1), tm(3, 1)}, v: []Term{tm(0, 1)}, w: []Term{tm(2, 1), tm(3, -1)}},
	{u: []Term{tm(0, 1)}, v: []Term{tm(1, 1), tm(3, -1)}, w: []Term{tm(1, 1), tm(3, 1)}},
	{u: []Term{tm(3, 1)}, v: []Term{tm(0, -1), tm(2, 1)}, w: []Term{tm(0, 1), tm(2, 1)}},
	{u: []Term{tm(0, 1), tm(1, 1)}, v: []Term{tm(3, 1)}, w: []Term{tm(0, -1), tm(1, 1)}},
	{u: []Term{tm(0, -1), tm(2, 1)}, v: []Term{tm(0, 1), tm(1, 1)}, w: []Term{tm(3, 1)}},
	{u: []Term{tm(1, 1), tm(3, -1)}, v: []Term{tm(2, 1), tm(3, 1)}, w: []Term{tm(0, 1)}},
}

// winograd222 is the Winograd variant of Strassen's algorithm — the
// paper's seven products (Section 2), here as a table. The materialized
// schedules (strassen1/strassen2) remain its hand-tuned executor; the
// table records the same bilinear form for verification, planning and
// opcounts:
//
//	P1 = A11·B11                      P5 = (A21+A22)(B12−B11)
//	P2 = A12·B21                      P6 = (−A11+A21+A22)(B11−B12+B22)
//	P3 = (A11+A12−A21−A22)·B22        P7 = (A11−A21)(B22−B12)
//	P4 = A22·(B11−B12−B21+B22)
//
//	C11 = P1+P2           C12 = P1+P3+P5+P6
//	C21 = P1−P4+P6+P7     C22 = P1+P5+P6+P7
var winograd222 = fromProds(DefaultName, 2, 2, 2, []prod{
	{u: []Term{tm(0, 1)}, v: []Term{tm(0, 1)}, w: []Term{tm(0, 1), tm(1, 1), tm(2, 1), tm(3, 1)}},
	{u: []Term{tm(1, 1)}, v: []Term{tm(2, 1)}, w: []Term{tm(0, 1)}},
	{u: []Term{tm(0, 1), tm(1, 1), tm(2, -1), tm(3, -1)}, v: []Term{tm(3, 1)}, w: []Term{tm(1, 1)}},
	{u: []Term{tm(3, 1)}, v: []Term{tm(0, 1), tm(1, -1), tm(2, -1), tm(3, 1)}, w: []Term{tm(2, -1)}},
	{u: []Term{tm(2, 1), tm(3, 1)}, v: []Term{tm(0, -1), tm(1, 1)}, w: []Term{tm(1, 1), tm(3, 1)}},
	{u: []Term{tm(0, -1), tm(2, 1), tm(3, 1)}, v: []Term{tm(0, 1), tm(1, -1), tm(3, 1)}, w: []Term{tm(1, 1), tm(2, 1), tm(3, 1)}},
	{u: []Term{tm(0, 1), tm(2, -1)}, v: []Term{tm(1, -1), tm(3, 1)}, w: []Term{tm(2, 1), tm(3, 1)}},
})

// classic222 is Strassen's original construction as a table. It is the
// bit-parity anchor: the generic table executor run on classic222
// reproduces the materialized "original" schedule's output exactly
// (operand pair orders and destination orders match product for product).
var classic222 = fromProds("classic", 2, 2, 2, strassenProds)

// table323 is a verified ⟨3,2,3⟩ algorithm with R = 17 (classical: 18):
// Strassen's seven products on the A[0..1][0..1]×B[0..1][0..1] sub-grid
// compute C[0..1][0..1] outright (the 2-block inner dimension is fully
// covered), and the borders are classical — C[0..1][2] takes 4 products,
// C[2][0..2] takes 6. The partition-embedded construction trades
// optimality (R = 15 tables exist) for coefficients that are provably
// correct by construction and ±1 throughout; the Brent verifier re-proves
// it on registration.
var table323 = fromProds("323", 3, 2, 3, func() []prod {
	// Index mappings from the 2×2 sub-grid into the 3×2 / 2×3 / 3×3 grids:
	// A(i,k) → i·2+k (unchanged), B(k,j) → k·3+j, C(i,j) → i·3+j.
	ps := remapProds(strassenProds, func(b int) int { return b },
		func(b int) int { return (b/2)*3 + b%2 },
		func(b int) int { return (b/2)*3 + b%2 })
	// C(i,2) = Σ_k A(i,k)·B(k,2) for i ∈ {0,1}: 4 classical products.
	for i := 0; i < 2; i++ {
		for k := 0; k < 2; k++ {
			ps = append(ps, prod{
				u: []Term{tm(i*2+k, 1)},
				v: []Term{tm(k*3+2, 1)},
				w: []Term{tm(i*3+2, 1)},
			})
		}
	}
	// C(2,j) = Σ_k A(2,k)·B(k,j): 6 classical products.
	for k := 0; k < 2; k++ {
		for j := 0; j < 3; j++ {
			ps = append(ps, prod{
				u: []Term{tm(4+k, 1)},
				v: []Term{tm(k*3+j, 1)},
				w: []Term{tm(6+j, 1)},
			})
		}
	}
	return ps
}())

// table333 is a verified ⟨3,3,3⟩ algorithm with R = 26 (classical: 27,
// Laderman's optimum: 23): Strassen's seven products cover the
// A[0..1][0..1]·B[0..1][0..1] contribution to C[0..1][0..1], four
// rank-one products add the A[0..1][2]·B[2][0..1] contribution, and the
// C[0..1][2] / C[2][0..2] borders are classical (6 + 9 products). As with
// ⟨3,2,3⟩ the construction is correct by construction and ±1 throughout.
var table333 = fromProds("333", 3, 3, 3, func() []prod {
	sub := func(b int) int { return (b/2)*3 + b%2 }
	ps := remapProds(strassenProds, sub, sub, sub)
	// C(i,j) += A(i,2)·B(2,j) for i, j ∈ {0,1}.
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			ps = append(ps, prod{
				u: []Term{tm(i*3+2, 1)},
				v: []Term{tm(6+j, 1)},
				w: []Term{tm(i*3+j, 1)},
			})
		}
	}
	// C(i,2) = Σ_k A(i,k)·B(k,2) for i ∈ {0,1}.
	for i := 0; i < 2; i++ {
		for k := 0; k < 3; k++ {
			ps = append(ps, prod{
				u: []Term{tm(i*3+k, 1)},
				v: []Term{tm(k*3+2, 1)},
				w: []Term{tm(i*3+2, 1)},
			})
		}
	}
	// C(2,j) = Σ_k A(2,k)·B(k,j) for all j.
	for j := 0; j < 3; j++ {
		for k := 0; k < 3; k++ {
			ps = append(ps, prod{
				u: []Term{tm(6+k, 1)},
				v: []Term{tm(k*3+j, 1)},
				w: []Term{tm(6+j, 1)},
			})
		}
	}
	return ps
}())

// naive212 is the classical ⟨2,1,2⟩ algorithm (4 products), the
// composition seed for rectangular doublings.
var naive212 = fromProds("212", 2, 1, 2, []prod{
	{u: []Term{tm(0, 1)}, v: []Term{tm(0, 1)}, w: []Term{tm(0, 1)}},
	{u: []Term{tm(0, 1)}, v: []Term{tm(1, 1)}, w: []Term{tm(1, 1)}},
	{u: []Term{tm(1, 1)}, v: []Term{tm(0, 1)}, w: []Term{tm(2, 1)}},
	{u: []Term{tm(1, 1)}, v: []Term{tm(1, 1)}, w: []Term{tm(3, 1)}},
})

// table424 is ⟨4,2,4⟩ with R = 28 (classical: 32), the Kronecker
// composition of Strassen's ⟨2,2,2⟩ with the classical ⟨2,1,2⟩ — the
// package's exemplar of generating new verified tables from seeds.
var table424 = MustCompose("424", classic222, naive212)

// remapProds re-indexes a product list's blocks into larger grids.
func remapProds(ps []prod, mapU, mapV, mapW func(int) int) []prod {
	out := make([]prod, 0, len(ps))
	remap := func(terms []Term, f func(int) int) []Term {
		o := make([]Term, len(terms))
		for i, t := range terms {
			o[i] = Term{Block: f(t.Block), Coeff: t.Coeff}
		}
		return o
	}
	for _, p := range ps {
		out = append(out, prod{
			u: remap(p.u, mapU),
			v: remap(p.v, mapV),
			w: remap(p.w, mapW),
		})
	}
	return out
}

// The registry: built-ins registered at init in a deliberate order
// (Default first; Select's tie-break prefers earlier registrations).
var registry = struct {
	sync.RWMutex
	byName map[string]*Table
	order  []*Table
}{byName: make(map[string]*Table)}

func init() {
	for _, t := range []*Table{winograd222, classic222, table323, table333, table424} {
		if err := Register(t); err != nil {
			panic(err)
		}
	}
}

// Register adds a table to the registry after re-proving its validity.
// Registering a name twice is an error (built-ins cannot be shadowed).
func Register(t *Table) error {
	if err := t.Validate(); err != nil {
		return err
	}
	registry.Lock()
	defer registry.Unlock()
	if _, dup := registry.byName[t.Name]; dup {
		return fmt.Errorf("algo: table %q already registered", t.Name)
	}
	registry.byName[t.Name] = t
	registry.order = append(registry.order, t)
	return nil
}

// ByName returns the registered table with the given name.
func ByName(name string) (*Table, bool) {
	registry.RLock()
	defer registry.RUnlock()
	t, ok := registry.byName[name]
	return t, ok
}

// Default returns the table DGEFMM's legacy schedules implement.
func Default() *Table {
	t, _ := ByName(DefaultName)
	return t
}

// Tables returns every registered table in registration order.
func Tables() []*Table {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Table, len(registry.order))
	copy(out, registry.order)
	return out
}

// Names returns the registered table names, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]string, 0, len(registry.order))
	for _, t := range registry.order {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}
