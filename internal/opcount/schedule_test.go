package opcount

import "testing"

// The implemented-schedule counts must reconcile exactly with the paper's
// equation (3): total = W + store-folding + extra in-place quadrant passes.
func TestStrassen1CountsReconcileWithW(t *testing.T) {
	cases := []struct{ d, m, k, n int }{
		{0, 64, 64, 64},
		{1, 128, 128, 128},
		{2, 256, 256, 256},
		{3, 512, 512, 512},
		{2, 256, 128, 64},
		{1, 96, 64, 160},
	}
	for _, c := range cases {
		got := Strassen1Counts(c.d, c.m, c.k, c.n).Total()
		want := W(c.d, c.m>>c.d, c.k>>c.d, c.n>>c.d) + Strassen1Delta(c.d, c.m, c.n)
		if got != want {
			t.Errorf("d=%d %dx%dx%d: Strassen1Counts total %d, W+delta %d",
				c.d, c.m, c.k, c.n, got, want)
		}
	}
}

func TestStrassen1CountsDepthZeroIsPlainGemm(t *testing.T) {
	c := Strassen1Counts(0, 100, 50, 70)
	if c.AddSub != 0 || c.Quadrant != 0 {
		t.Fatalf("depth 0 must have no add phases: %+v", c)
	}
	if want := int64(2 * 100 * 50 * 70); c.Mul != want {
		t.Fatalf("depth 0 Mul = %d, want %d", c.Mul, want)
	}
}

// One level on 128³: 4 A + 4 B passes of 64² each, 9 C passes of 64²
// (8 single-op + 1 double-op), leaves at full 2mkn.
func TestStrassen1CountsOneLevelByHand(t *testing.T) {
	c := Strassen1Counts(1, 128, 128, 128)
	q := int64(64 * 64)
	if want := 8 * q; c.AddSub != want {
		t.Errorf("AddSub = %d, want %d", c.AddSub, want)
	}
	if want := 9 * q; c.Quadrant != want {
		t.Errorf("Quadrant = %d, want %d", c.Quadrant, want)
	}
	if want := 7 * 2 * int64(64*64*64); c.Mul != want {
		t.Errorf("Mul = %d, want %d", c.Mul, want)
	}
}
