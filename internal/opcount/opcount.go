// Package opcount implements the paper's Section 2 operation-count model:
// costs of the standard algorithm, of Winograd's variant of Strassen's
// algorithm, and of Strassen's original variant, together with the
// theoretical cutoff analysis (equations (1)–(8) of the paper).
//
// The model counts scalar arithmetic operations: a multiply-add pair counts
// as two operations, matching M(m,k,n) = 2mkn − mn for the standard
// algorithm and G(m,n) = mn for a matrix add/subtract.
package opcount

import "math"

// M is the operation count of the standard algorithm multiplying an m×k
// matrix by a k×n matrix: mkn multiplications and (k−1)mn additions plus mn
// stores folded as in the paper, M(m,k,n) = 2mkn − mn.
func M(m, k, n int) int64 {
	return 2*int64(m)*int64(k)*int64(n) - int64(m)*int64(n)
}

// G is the operation count of adding or subtracting two m×n matrices.
func G(m, n int) int64 { return int64(m) * int64(n) }

// OneLevelWinograd is the cost of one level of Winograd's variant on even
// (m,k,n) with the seven products done by the standard algorithm:
// 7·M(m/2,k/2,n/2) + 4·G(m/2,k/2) + 4·G(k/2,n/2) + 7·G(m/2,n/2).
func OneLevelWinograd(m, k, n int) int64 {
	return 7*M(m/2, k/2, n/2) + 4*G(m/2, k/2) + 4*G(k/2, n/2) + 7*G(m/2, n/2)
}

// OneLevelStrassen is the analogous cost for Strassen's original algorithm,
// which uses 18 adds: by symmetry of his construction the adds split as
// 5 on A-blocks, 5 on B-blocks and 8 on C-sized blocks.
func OneLevelStrassen(m, k, n int) int64 {
	return 7*M(m/2, k/2, n/2) + 5*G(m/2, k/2) + 5*G(k/2, n/2) + 8*G(m/2, n/2)
}

// RatioOneLevel returns equation (1): the ratio of one level of Strassen's
// construction (18 adds, as in his original derivation) over the standard
// algorithm for square order-m matrices, (7m³ + 11m²)/(8m³ − 4m²), which
// tends to 7/8 for large m.
func RatioOneLevel(m int) float64 {
	mm := float64(m)
	return (7*mm*mm*mm + 11*mm*mm) / (8*mm*mm*mm - 4*mm*mm)
}

// W is equation (3): the cost of d recursion levels of Winograd's variant on
// matrices of size (2^d·m0) × (2^d·k0) and (2^d·k0) × (2^d·n0), with the
// standard algorithm below:
//
//	W(2^d m0, 2^d k0, 2^d n0) = 7^d (2 m0 k0 n0 − m0 n0)
//	                          + (7^d − 4^d)(4 m0 k0 + 4 k0 n0 + 7 m0 n0)/3.
func W(d, m0, k0, n0 int) int64 {
	p7 := pow(7, d)
	p4 := pow(4, d)
	base := int64(2)*int64(m0)*int64(k0)*int64(n0) - int64(m0)*int64(n0)
	adds := (p7 - p4) * (4*int64(m0)*int64(k0) + 4*int64(k0)*int64(n0) + 7*int64(m0)*int64(n0)) / 3
	return p7*base + adds
}

// WSquare is equation (4): W for the square case m0 = k0 = n0,
// 7^d (2 m0³ − m0²) + 5 m0² (7^d − 4^d).
func WSquare(d, m0 int) int64 {
	p7 := pow(7, d)
	p4 := pow(4, d)
	mm := int64(m0)
	return p7*(2*mm*mm*mm-mm*mm) + 5*mm*mm*(p7-p4)
}

// SSquare is equation (5): the square-case cost of Strassen's original
// variant, 7^d (2 m0³ − m0²) + 6 m0² (7^d − 4^d).
func SSquare(d, m0 int) int64 {
	p7 := pow(7, d)
	p4 := pow(4, d)
	mm := int64(m0)
	return p7*(2*mm*mm*mm-mm*mm) + 6*mm*mm*(p7-p4)
}

// LimitRatioStrassenToWinograd returns lim_{d→∞} S(2^d m0)/W(2^d m0)
// = (5 + 2m0)/(4 + 2m0): the asymptotic cost ratio of Strassen's original
// variant over Winograd's for a given bottom-level size m0.
func LimitRatioStrassenToWinograd(m0 int) float64 {
	return (5 + 2*float64(m0)) / (4 + 2*float64(m0))
}

// WinogradImprovementOverStrassen returns the paper's "improvement of (4)
// over (5)": the fraction of Strassen-original cost saved by Winograd's
// variant in the d→∞ limit, 1 − W/S = 1/(5 + 2m0). Paper Section 2: 14.3 %
// at m0 = 1, 5.26 % at m0 = 7, 3.45 % at m0 = 12.
func WinogradImprovementOverStrassen(m0 int) float64 {
	return 1 / (5 + 2*float64(m0))
}

// RecursionBenefits reports whether one level of Winograd recursion (with
// the standard algorithm beneath) beats the standard algorithm outright
// under the operation-count model. This is the negation of inequality (7):
// recursion wins iff mkn > 4(mk + kn + mn).
func RecursionBenefits(m, k, n int) bool {
	// Only even dimensions admit an exact single split in the model; the
	// caller is responsible for the peeling adjustment. Use the continuous
	// condition, as the paper does.
	return int64(m)*int64(k)*int64(n) > 4*(int64(m)*int64(k)+int64(k)*int64(n)+int64(m)*int64(n))
}

// CutoffSatisfied is inequality (7) itself: the standard algorithm is at
// least as cheap as one Strassen level iff mkn ≤ 4(mk + kn + mn).
func CutoffSatisfied(m, k, n int) bool { return !RecursionBenefits(m, k, n) }

// SquareCutoff returns the largest m for which the standard algorithm is at
// least as cheap as one Strassen level on square matrices, per inequality
// (7) with m = k = n (the paper derives m ≤ 12).
func SquareCutoff() int {
	m := 1
	for CutoffSatisfied(m+1, m+1, m+1) {
		m++
	}
	return m
}

// CutoffImprovement computes the fraction of operations saved by using the
// given square cutoff instead of full recursion (to 1×1) for Winograd's
// variant on matrices of order 2^dTotal: 1 − W(cutoff)/W(full). The paper's
// example: order 256 (dTotal = 8) with cutoff 12 uses d = 5, m0 = 8 and
// improves on full recursion (d = 8, m0 = 1) by 38.2 %.
func CutoffImprovement(dTotal, cutoff int) float64 {
	m := 1 << dTotal
	// Find the recursion depth implied by the cutoff: recurse while the
	// block order exceeds the cutoff.
	d := 0
	m0 := m
	for m0 > cutoff && m0%2 == 0 {
		m0 /= 2
		d++
	}
	full := WSquare(dTotal, 1)
	cut := WSquare(d, m0)
	return 1 - float64(cut)/float64(full)
}

// StrassenExponent returns lg 7 ≈ 2.807, the asymptotic exponent.
func StrassenExponent() float64 { return math.Log2(7) }

func pow(base int64, exp int) int64 {
	r := int64(1)
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}
