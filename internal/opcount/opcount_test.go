package opcount

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMStandardCount(t *testing.T) {
	// 2mkn − mn for a few shapes, including the m³ multiplications plus
	// m³ − m² additions identity for squares: 2m³ − m².
	cases := []struct {
		m, k, n int
		want    int64
	}{
		{1, 1, 1, 1},
		{2, 2, 2, 12},
		{4, 4, 4, 112},
		{2, 3, 4, 40},
		{12, 12, 12, 2*12*12*12 - 144},
	}
	for _, c := range cases {
		if got := M(c.m, c.k, c.n); got != c.want {
			t.Errorf("M(%d,%d,%d) = %d, want %d", c.m, c.k, c.n, got, c.want)
		}
	}
}

func TestOneLevelClosedForms(t *testing.T) {
	// Section 2 derives one level of Strassen's construction (18 adds) as
	// (7/4)m³ + (11/4)m²; Winograd's 15-add variant is (7/4)m³ + 2m².
	for _, m := range []int{2, 4, 8, 16, 64, 128, 256} {
		mm := int64(m)
		wantS := 7*mm*mm*mm/4 + 11*mm*mm/4
		if got := OneLevelStrassen(m, m, m); got != wantS {
			t.Errorf("OneLevelStrassen(%d): got %d, want %d", m, got, wantS)
		}
		wantW := 7*mm*mm*mm/4 + 2*mm*mm
		if got := OneLevelWinograd(m, m, m); got != wantW {
			t.Errorf("OneLevelWinograd(%d): got %d, want %d", m, got, wantW)
		}
		// One-level forms must agree with the closed forms at d=1.
		if got := WSquare(1, m/2); got != wantW {
			t.Errorf("WSquare(1,%d): got %d, want %d", m/2, got, wantW)
		}
		if got := SSquare(1, m/2); got != wantS {
			t.Errorf("SSquare(1,%d): got %d, want %d", m/2, got, wantS)
		}
	}
}

func TestRatioApproaches7Over8(t *testing.T) {
	// Equation (1) tends to 7/8 = 0.875 from above.
	prev := RatioOneLevel(16)
	for _, m := range []int{32, 64, 128, 1024, 1 << 20} {
		r := RatioOneLevel(m)
		if r >= prev {
			t.Errorf("ratio not decreasing at m=%d: %v >= %v", m, r, prev)
		}
		prev = r
	}
	if got := RatioOneLevel(1 << 20); math.Abs(got-7.0/8.0) > 1e-4 {
		t.Errorf("asymptotic ratio = %v, want ≈ 0.875", got)
	}
	// "for sufficiently large matrices one level ... produces a 12.5% improvement".
	if imp := 1 - RatioOneLevel(1<<20); math.Abs(imp-0.125) > 1e-4 {
		t.Errorf("asymptotic improvement = %v, want ≈ 12.5%%", imp)
	}
}

func TestWRecurrenceConsistency(t *testing.T) {
	// W must satisfy recurrence (2):
	// W(2m,2k,2n) = 7W(m,k,n) + 4G(m,k) + 4G(k,n) + 7G(m,n) when one more
	// level is applied above a d-level computation.
	for d := 0; d < 5; d++ {
		for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {12, 12, 12}, {6, 14, 86}} {
			m0, k0, n0 := dims[0], dims[1], dims[2]
			lhs := W(d+1, m0, k0, n0)
			m, k, n := m0<<d, k0<<d, n0<<d
			rhs := 7*W(d, m0, k0, n0) + 4*G(m, k) + 4*G(k, n) + 7*G(m, n)
			if lhs != rhs {
				t.Errorf("recurrence broken at d=%d dims=%v: %d != %d", d, dims, lhs, rhs)
			}
		}
	}
}

func TestWZeroLevelsIsStandard(t *testing.T) {
	for _, dims := range [][3]int{{1, 1, 1}, {3, 5, 7}, {100, 50, 25}} {
		if got, want := W(0, dims[0], dims[1], dims[2]), M(dims[0], dims[1], dims[2]); got != want {
			t.Errorf("W(0,%v) = %d, want M = %d", dims, got, want)
		}
	}
}

func TestSquareFormsAgree(t *testing.T) {
	for d := 0; d <= 6; d++ {
		for _, m0 := range []int{1, 7, 8, 12} {
			if got, want := WSquare(d, m0), W(d, m0, m0, m0); got != want {
				t.Errorf("WSquare(%d,%d)=%d != W=%d", d, m0, got, want)
			}
		}
	}
}

func TestWinogradBeatsStrassenOriginal(t *testing.T) {
	// (4) improves on (5) for all d ≥ 1 and all m0; difference is m0²(7^d − 4^d).
	for d := 1; d <= 8; d++ {
		for _, m0 := range []int{1, 2, 7, 12} {
			diff := SSquare(d, m0) - WSquare(d, m0)
			want := int64(m0) * int64(m0) * (pow(7, d) - pow(4, d))
			if diff != want {
				t.Errorf("d=%d m0=%d: S-W = %d, want %d", d, m0, diff, want)
			}
			if diff <= 0 {
				t.Errorf("d=%d m0=%d: Winograd not better", d, m0)
			}
		}
	}
}

func TestLimitRatioPaperValues(t *testing.T) {
	if got := LimitRatioStrassenToWinograd(1); math.Abs(got-7.0/6.0) > 1e-12 {
		t.Errorf("m0=1 limit ratio = %v, want 7/6", got)
	}
	// Paper Section 2: improvement of (4) over (5) is 14.3 % at m0=1,
	// 5.26 % at m0=7 and 3.45 % at m0=12.
	if imp := WinogradImprovementOverStrassen(1); math.Abs(imp-0.1428571) > 1e-4 {
		t.Errorf("m0=1 improvement = %v, want ≈ 14.3%%", imp)
	}
	if imp := WinogradImprovementOverStrassen(7); math.Abs(imp-0.0526) > 5e-4 {
		t.Errorf("m0=7 improvement = %v, want ≈ 5.26%%", imp)
	}
	if imp := WinogradImprovementOverStrassen(12); math.Abs(imp-0.0345) > 5e-4 {
		t.Errorf("m0=12 improvement = %v, want ≈ 3.45%%", imp)
	}
	// The two forms are consistent: improvement = 1 − 1/ratio.
	for _, m0 := range []int{1, 7, 12} {
		want := 1 - 1/LimitRatioStrassenToWinograd(m0)
		if got := WinogradImprovementOverStrassen(m0); math.Abs(got-want) > 1e-12 {
			t.Errorf("m0=%d: improvement %v inconsistent with ratio form %v", m0, got, want)
		}
	}
	// Ratio of the *finite-d* forms converges to the limit.
	for _, m0 := range []int{1, 7, 12} {
		finite := float64(SSquare(12, m0)) / float64(WSquare(12, m0))
		if math.Abs(finite-LimitRatioStrassenToWinograd(m0)) > 1e-3 {
			t.Errorf("finite-d ratio %v far from limit %v (m0=%d)", finite, LimitRatioStrassenToWinograd(m0), m0)
		}
	}
}

func TestSquareCutoffIs12(t *testing.T) {
	if got := SquareCutoff(); got != 12 {
		t.Fatalf("SquareCutoff() = %d, want 12 (paper Section 2)", got)
	}
	// Boundary checks of inequality (7) in the square case.
	if !CutoffSatisfied(12, 12, 12) {
		t.Error("m=12 should satisfy the cutoff (standard no worse)")
	}
	if CutoffSatisfied(13, 13, 13) {
		t.Error("m=13 should favor recursion")
	}
}

func TestRectangularExample61486(t *testing.T) {
	// Paper: for m=6, k=14, n=86, (7) is NOT satisfied — recursion should be
	// used even though one dimension (6) is below the square cutoff 12.
	if CutoffSatisfied(6, 14, 86) {
		t.Fatal("(6,14,86) must violate inequality (7): recursion is beneficial")
	}
	if !RecursionBenefits(6, 14, 86) {
		t.Fatal("RecursionBenefits(6,14,86) must hold")
	}
	// Verify against the raw cost comparison (6) evaluated with op counts:
	lhs := M(6, 14, 86)
	rhs := 7*M(3, 7, 43) + 4*G(3, 7) + 4*G(7, 43) + 7*G(3, 43)
	if lhs <= rhs {
		t.Fatalf("direct cost check disagrees: M=%d <= one-level=%d", lhs, rhs)
	}
}

func TestCutoffImprovement382Percent(t *testing.T) {
	// Paper: order 256 with cutoff 12 (d=5, m0=8) vs full recursion (d=8):
	// 38.2 % improvement.
	r := CutoffImprovement(8, 12)
	if math.Abs(r-0.382) > 5e-3 {
		t.Fatalf("CutoffImprovement(256, cutoff 12) = %v, want ≈ 0.382", r)
	}
	// Consistency of the depth selection: cutoff 12 on 256 must bottom out at m0=8.
	if got, want := WSquare(5, 8), W(5, 8, 8, 8); got != want {
		t.Fatalf("internal: %d != %d", got, want)
	}
}

func TestStrassenExponent(t *testing.T) {
	if e := StrassenExponent(); math.Abs(e-2.807) > 1e-3 {
		t.Errorf("lg 7 = %v, want ≈ 2.807", e)
	}
}

func TestCutoffInequalityEquivalence(t *testing.T) {
	// (7) mkn ≤ 4(mk+kn+mn) is equivalent to (8) 1 ≤ 4(1/n + 1/m + 1/k).
	f := func(m, k, n uint8) bool {
		mm, kk, nn := int(m)+1, int(k)+1, int(n)+1
		lhs := CutoffSatisfied(mm, kk, nn)
		rhs := 1 <= 4*(1/float64(nn)+1/float64(mm)+1/float64(kk))+1e-15
		return lhs == rhs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWMonotoneInDepthForLargeBlocks(t *testing.T) {
	// Above the cutoff, adding a recursion level reduces the op count;
	// below it, it increases it.
	if !(WSquare(1, 16) < WSquare(0, 32)) {
		t.Error("one level on order 32 should beat standard")
	}
	if !(WSquare(1, 4) > WSquare(0, 8)) {
		t.Error("one level on order 8 should lose to standard")
	}
}
