package opcount

// This file extends the paper's abstract operation-count model to the
// *implemented* schedules, so the phase-attribution counters (package
// internal/phase) can be cross-checked exactly against analytic counts.
//
// Two conventions separate the implemented counts from equations (3)–(5):
//
//  1. Store folding. The model's M(m,k,n) = 2mkn − mn folds the first
//     k-iteration's add into a store. A real DGEMM leaf computing
//     C ← C + A·B performs the full 2mkn multiply-adds (the kernel phases
//     kernel.micro/kernel.fringe count 2mkn), so each base-case leaf
//     measures mn more FLOPs than M.
//
//  2. In-place scheduling. STRASSEN1 realizes Winograd's 7 C-sized
//     combinations with 9 elementwise passes over C-shaped blocks (one of
//     them a fused add-sub pass costing 2 ops/element) because the C
//     quadrants double as product buffers — a total of 9·mn/4 operations
//     where the abstract schedule counts 7·mn/4. The A- and B-side counts
//     (4 passes each) match the abstract schedule exactly.
//
// PhaseCounts returns the implemented totals; callers wanting the paper's
// figure use W/WSquare and the documented deltas above.

// PhaseCounts is the analytic per-phase FLOP decomposition of one DGEFMM
// call under the STRASSEN1 (β = 0) schedule.
type PhaseCounts struct {
	// Mul is the leaf multiply work: Σ 2·m·k·n over base-case leaves
	// (measured by kernel.micro + kernel.fringe).
	Mul int64
	// AddSub is the stage (1)/(2) S/T sum formation on A- and B-shaped
	// blocks (phase strassen.addsub).
	AddSub int64
	// Quadrant is the stage (4) combination work on C-shaped blocks
	// (phase strassen.quadrant).
	Quadrant int64
}

// Total is the implemented schedule's full FLOP count.
func (c PhaseCounts) Total() int64 { return c.Mul + c.AddSub + c.Quadrant }

// Strassen1Counts returns the exact per-phase FLOPs of d recursion levels
// of the implemented STRASSEN1 schedule on an (m, k, n) problem whose
// dimensions stay even for d halvings, with full 2mkn-cost leaves below.
// Per level: 4 A-shaped passes (mk/4 each), 4 B-shaped passes (kn/4 each),
// and 9 C-shaped passes (8 single-op + the fused AddSubAssign at 2 ops,
// i.e. 9·mn/4 — the CopyFrom pass moves words but performs no arithmetic).
func Strassen1Counts(d, m, k, n int) PhaseCounts {
	if d <= 0 {
		return PhaseCounts{Mul: 2 * int64(m) * int64(k) * int64(n)}
	}
	mk := int64(m) * int64(k) / 4
	kn := int64(k) * int64(n) / 4
	mn := int64(m) * int64(n) / 4
	sub := Strassen1Counts(d-1, m/2, k/2, n/2)
	return PhaseCounts{
		Mul:      7 * sub.Mul,
		AddSub:   4*mk + 4*kn + 7*sub.AddSub,
		Quadrant: 9*mn + 7*sub.Quadrant,
	}
}

// Strassen1Delta returns the difference between the implemented schedule's
// total and the paper's W (equation (3)) for the same problem: the
// 7^d·(m0·n0) store-folding term plus the extra 2·(7^d − 4^d)·(m·n/4)/3
// quadrant passes accumulated over the levels. Strassen1Counts.Total() ==
// W(d, m0, k0, n0) + Strassen1Delta(d, m, n) always holds; tests pin it.
func Strassen1Delta(d, m, n int) int64 {
	m0 := int64(m >> d)
	n0 := int64(n >> d)
	// Per level ℓ (0-based), the implemented schedule runs 2 extra C passes
	// of size (m·n/4)/4^ℓ, fanned out over 7^ℓ nodes.
	var extra int64
	mn4 := int64(m) * int64(n) / 4
	for l := 0; l < d; l++ {
		extra += pow(7, l) * 2 * (mn4 / pow(4, l))
	}
	return pow(7, d)*m0*n0 + extra
}
