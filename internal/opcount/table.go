package opcount

// Analytic per-phase FLOP counts for the table-driven recursion
// (internal/strassen's generalization of the schedules to arbitrary
// ⟨M, K, N⟩ coefficient tables). The counts mirror the generic executor
// pass for pass — strassen.formOperand and the destination accumulation
// loop — under the same validity window as Strassen1Counts: β = 0,
// dimensions grid-divisible for all d levels, fusion off.

import "repro/internal/algo"

// operandUnitOps is the per-element FLOP cost of materializing one table
// column's operand combination, mirroring strassen.formOperand's pass
// selection exactly: a single +1 term is a free block view; two leading
// terms forming a +1/+1, +1/−1 or −1/+1 pair start with one add/sub pass;
// otherwise the first term is a scale-copy (free when its coefficient is
// 1); every further ±1 term is one accumulate pass and every general
// coefficient a two-op axpy pass.
func operandUnitOps(terms []algo.Term) int64 {
	if len(terms) == 1 && terms[0].Coeff == 1 {
		return 0
	}
	pm := func(c float64) bool { return c == 1 || c == -1 }
	var ops int64
	i := 1
	switch {
	case len(terms) >= 2 && pm(terms[0].Coeff) && pm(terms[1].Coeff) &&
		!(terms[0].Coeff == -1 && terms[1].Coeff == -1):
		ops, i = 1, 2
	default:
		if terms[0].Coeff != 1 {
			ops = 1
		}
	}
	for ; i < len(terms); i++ {
		if pm(terms[i].Coeff) {
			ops++
		} else {
			ops += 2
		}
	}
	return ops
}

// destUnitOps is the per-element cost of accumulating a product into one
// destination: one op for a ±1 coefficient (AddAssign/SubAssign), two for
// a general coefficient (axpy).
func destUnitOps(terms []algo.Term) int64 {
	var ops int64
	for _, tm := range terms {
		if tm.Coeff == 1 || tm.Coeff == -1 {
			ops++
		} else {
			ops += 2
		}
	}
	return ops
}

// TableCounts returns the exact per-phase FLOPs of d levels of the
// table-driven recursion with table t on an (m, k, n) problem whose
// dimensions stay grid-divisible for d splits, with full 2mkn-cost leaves
// below, β = 0 and fusion off. AddSub covers the operand-formation passes
// on A- and B-shaped blocks; Quadrant covers the per-product destination
// accumulations (the β = 0 pre-scale is a pure store and counts no
// FLOPs). The phase counters of a real call must match these totals
// exactly; TestTablePhaseCountersMatchAnalytic pins it per table.
func TableCounts(t *algo.Table, d, m, k, n int) PhaseCounts {
	if d <= 0 {
		return PhaseCounts{Mul: 2 * int64(m) * int64(k) * int64(n)}
	}
	mq, kq, nq := m/t.M, k/t.K, n/t.N
	var addsub, quad int64
	for r := 0; r < t.R; r++ {
		addsub += operandUnitOps(t.ATerms(r))*int64(mq)*int64(kq) +
			operandUnitOps(t.BTerms(r))*int64(kq)*int64(nq)
		quad += destUnitOps(t.CTerms(r)) * int64(mq) * int64(nq)
	}
	sub := TableCounts(t, d-1, mq, kq, nq)
	r := int64(t.R)
	return PhaseCounts{
		Mul:      r * sub.Mul,
		AddSub:   addsub + r*sub.AddSub,
		Quadrant: quad + r*sub.Quadrant,
	}
}
