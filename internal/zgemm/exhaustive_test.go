package zgemm

import (
	"math/rand"
	"testing"
)

// TestExhaustiveTinyShapes sweeps every (m, k, n) in a small box through
// the 3M path against the reference complex multiply.
func TestExhaustiveTinyShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(611))
	const lim = 7
	for m := 1; m <= lim; m++ {
		for k := 1; k <= lim; k++ {
			for n := 1; n <= lim; n++ {
				a := randZ(rng, m, k)
				b := randZ(rng, k, n)
				c1 := randZ(rng, m, n)
				c2 := c1.Clone()
				alpha := complex(1.25, -0.75)
				beta := complex(-0.5, 0.25)
				ZGEMM(NoTrans, NoTrans, m, n, k, alpha, a, b, beta, c1)
				ZGEFMM(testCfg, NoTrans, NoTrans, m, n, k, alpha, a, b, beta, c2)
				if d := maxAbsDiffZ(c1, c2); d > 1e-12*float64(k+4) {
					t.Fatalf("(%d,%d,%d): %g", m, k, n, d)
				}
			}
		}
	}
}

// TestRealEmbedding cross-checks ZGEFMM against the real DGEFMM on
// real-valued complex inputs: the imaginary parts must stay exactly
// representable as the 3M combination of zero matrices.
func TestRealEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(612))
	n := 24
	a := NewZDense(n, n)
	b := NewZDense(n, n)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			a.Set(i, j, complex(2*rng.Float64()-1, 0))
			b.Set(i, j, complex(2*rng.Float64()-1, 0))
		}
	}
	c := NewZDense(n, n)
	ZGEFMM(testCfg, NoTrans, NoTrans, n, n, n, 1, a, b, 0, c)
	ref := NewZDense(n, n)
	ZGEMM(NoTrans, NoTrans, n, n, n, 1, a, b, 0, ref)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			if im := imag(c.At(i, j)); im != 0 {
				// The 3M imaginary part is T3 − T1 − T2 with Ai = Bi = 0, so
				// T3 = T1 and T2 = 0 exactly only when the two Strassen runs
				// round identically; allow tiny cancellation residue.
				if im > 1e-12 || im < -1e-12 {
					t.Fatalf("imaginary leakage %g at (%d,%d)", im, i, j)
				}
			}
			re := real(c.At(i, j)) - real(ref.At(i, j))
			if re > 1e-11 || re < -1e-11 {
				t.Fatalf("real mismatch at (%d,%d)", i, j)
			}
		}
	}
}
