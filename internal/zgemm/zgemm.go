// Package zgemm adds complex matrix multiplication — the feature the paper
// notes its package lacked relative to DGEMMW ("It should be noted that
// DGEMMW also provides routines for multiplying complex matrices, a feature
// not contained in our package"). This closes that gap the way vendor
// libraries of the era did (ESSL's ZGEMMS): the "3M" algorithm forms the
// complex product from three real multiplications,
//
//	T1 = Ar·Br,  T2 = Ai·Bi,  T3 = (Ar+Ai)·(Br+Bi),
//	Re(A·B) = T1 − T2,  Im(A·B) = T3 − T1 − T2,
//
// and each real product runs through DGEFMM, so Strassen's savings compose
// with the 3M saving (3/4 of the real multiplies of the naive 4M form).
package zgemm

import (
	"fmt"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// ZDense is a column-major complex matrix: element (i,j) is
// Data[i + j*Stride].
type ZDense struct {
	Rows, Cols int
	Stride     int
	Data       []complex128
}

// NewZDense allocates a zeroed r×c complex matrix.
func NewZDense(r, c int) *ZDense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("zgemm: NewZDense(%d, %d)", r, c))
	}
	ld := r
	if ld < 1 {
		ld = 1
	}
	return &ZDense{Rows: r, Cols: c, Stride: ld, Data: make([]complex128, r*c)}
}

// At returns element (i, j).
func (z *ZDense) At(i, j int) complex128 {
	if i < 0 || i >= z.Rows || j < 0 || j >= z.Cols {
		panic(fmt.Sprintf("zgemm: At(%d,%d) out of range %dx%d", i, j, z.Rows, z.Cols))
	}
	return z.Data[i+j*z.Stride]
}

// Set writes element (i, j).
func (z *ZDense) Set(i, j int, v complex128) {
	if i < 0 || i >= z.Rows || j < 0 || j >= z.Cols {
		panic(fmt.Sprintf("zgemm: Set(%d,%d) out of range %dx%d", i, j, z.Rows, z.Cols))
	}
	z.Data[i+j*z.Stride] = v
}

// Clone returns a tightly packed deep copy.
func (z *ZDense) Clone() *ZDense {
	out := NewZDense(z.Rows, z.Cols)
	for j := 0; j < z.Cols; j++ {
		copy(out.Data[j*out.Stride:j*out.Stride+z.Rows], z.Data[j*z.Stride:j*z.Stride+z.Rows])
	}
	return out
}

// Transpose selects op(X) for the complex routines: identity, transpose, or
// conjugate transpose.
type Transpose byte

// Transposition selectors.
const (
	// NoTrans selects op(X) = X.
	NoTrans Transpose = 'N'
	// Trans selects op(X) = Xᵀ.
	Trans Transpose = 'T'
	// ConjTrans selects op(X) = Xᴴ.
	ConjTrans Transpose = 'C'
)

func (t Transpose) valid() bool {
	switch t {
	case NoTrans, Trans, ConjTrans, 'n', 't', 'c':
		return true
	}
	return false
}

func (t Transpose) transposed() bool { return t == Trans || t == 't' || t == ConjTrans || t == 'c' }

func (t Transpose) conjugated() bool { return t == ConjTrans || t == 'c' }

// split materializes op(X) into separate real and imaginary Dense matrices
// (conjugation folds into a sign flip of the imaginary part).
func split(x *ZDense, trans Transpose, rows, cols int) (re, im *matrix.Dense) {
	re = matrix.NewDense(rows, cols)
	im = matrix.NewDense(rows, cols)
	sign := 1.0
	if trans.conjugated() {
		sign = -1
	}
	if !trans.transposed() {
		for j := 0; j < cols; j++ {
			for i := 0; i < rows; i++ {
				v := x.Data[i+j*x.Stride]
				re.Set(i, j, real(v))
				im.Set(i, j, sign*imag(v))
			}
		}
		return re, im
	}
	for j := 0; j < cols; j++ {
		for i := 0; i < rows; i++ {
			v := x.Data[j+i*x.Stride]
			re.Set(i, j, real(v))
			im.Set(i, j, sign*imag(v))
		}
	}
	return re, im
}

// ZGEMM computes C ← alpha·op(A)·op(B) + beta·C with the straightforward
// complex algorithm (the correctness reference and small-size path).
func ZGEMM(transA, transB Transpose, m, n, k int, alpha complex128,
	a *ZDense, b *ZDense, beta complex128, c *ZDense) {
	checkArgs("ZGEMM", transA, transB, m, n, k, a, b, c)
	opA := func(i, l int) complex128 {
		var v complex128
		if !transA.transposed() {
			v = a.Data[i+l*a.Stride]
		} else {
			v = a.Data[l+i*a.Stride]
		}
		if transA.conjugated() {
			return complex(real(v), -imag(v))
		}
		return v
	}
	opB := func(l, j int) complex128 {
		var v complex128
		if !transB.transposed() {
			v = b.Data[l+j*b.Stride]
		} else {
			v = b.Data[j+l*b.Stride]
		}
		if transB.conjugated() {
			return complex(real(v), -imag(v))
		}
		return v
	}
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			var s complex128
			for l := 0; l < k; l++ {
				s += opA(i, l) * opB(l, j)
			}
			c.Data[i+j*c.Stride] = alpha*s + beta*c.Data[i+j*c.Stride]
		}
	}
}

// ZGEFMM computes C ← alpha·op(A)·op(B) + beta·C via the 3M decomposition
// with each real product computed by DGEFMM under cfg (nil = defaults).
// op(A) is m×k, op(B) is k×n, C is m×n.
func ZGEFMM(cfg *strassen.Config, transA, transB Transpose, m, n, k int,
	alpha complex128, a *ZDense, b *ZDense, beta complex128, c *ZDense) {
	checkArgs("ZGEFMM", transA, transB, m, n, k, a, b, c)
	if m == 0 || n == 0 {
		return
	}
	if k == 0 || alpha == 0 {
		for j := 0; j < n; j++ {
			for i := 0; i < m; i++ {
				c.Data[i+j*c.Stride] *= beta
			}
		}
		return
	}

	ar, ai := split(a, transA, m, k)
	br, bi := split(b, transB, k, n)

	// Sums for the third product.
	as := matrix.NewDense(m, k)
	matrix.Add(as, matrix.ViewOf(ar), matrix.ViewOf(ai))
	bs := matrix.NewDense(k, n)
	matrix.Add(bs, matrix.ViewOf(br), matrix.ViewOf(bi))

	mul := func(dst, x, y *matrix.Dense) {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1,
			x.Data, x.Stride, y.Data, y.Stride, 0, dst.Data, dst.Stride)
	}
	t1 := matrix.NewDense(m, n)
	mul(t1, ar, br)
	t2 := matrix.NewDense(m, n)
	mul(t2, ai, bi)
	t3 := matrix.NewDense(m, n)
	mul(t3, as, bs)

	// Combine: P = (T1−T2) + i(T3−T1−T2); C ← alpha·P + beta·C.
	for j := 0; j < n; j++ {
		for i := 0; i < m; i++ {
			re := t1.At(i, j) - t2.At(i, j)
			im := t3.At(i, j) - t1.At(i, j) - t2.At(i, j)
			p := complex(re, im)
			c.Data[i+j*c.Stride] = alpha*p + beta*c.Data[i+j*c.Stride]
		}
	}
}

func checkArgs(routine string, transA, transB Transpose, m, n, k int, a, b, c *ZDense) {
	if !transA.valid() {
		panic(routine + ": bad transA")
	}
	if !transB.valid() {
		panic(routine + ": bad transB")
	}
	if m < 0 || n < 0 || k < 0 {
		panic(routine + ": negative dimension")
	}
	rowsA, colsA := m, k
	if transA.transposed() {
		rowsA, colsA = k, m
	}
	rowsB, colsB := k, n
	if transB.transposed() {
		rowsB, colsB = n, k
	}
	checkZ(routine, "a", a, rowsA, colsA)
	checkZ(routine, "b", b, rowsB, colsB)
	checkZ(routine, "c", c, m, n)
}

func checkZ(routine, name string, z *ZDense, rows, cols int) {
	if z == nil {
		if rows == 0 || cols == 0 {
			return
		}
		panic(routine + ": nil " + name)
	}
	if z.Rows != rows || z.Cols != cols {
		panic(fmt.Sprintf("%s: %s is %dx%d, want %dx%d", routine, name, z.Rows, z.Cols, rows, cols))
	}
	if z.Stride < 1 || (rows > 0 && z.Stride < z.Rows) {
		panic(routine + ": bad stride in " + name)
	}
}

// RandomZ fills a complex matrix from two uniform streams; the helper for
// tests and benches.
func RandomZ(z *ZDense, next func() float64) {
	for j := 0; j < z.Cols; j++ {
		for i := 0; i < z.Rows; i++ {
			z.Data[i+j*z.Stride] = complex(2*next()-1, 2*next()-1)
		}
	}
}
