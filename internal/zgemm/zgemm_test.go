package zgemm

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/strassen"
)

func randZ(rng *rand.Rand, r, c int) *ZDense {
	z := NewZDense(r, c)
	RandomZ(z, rng.Float64)
	return z
}

func maxAbsDiffZ(a, b *ZDense) float64 {
	var worst float64
	for j := 0; j < a.Cols; j++ {
		for i := 0; i < a.Rows; i++ {
			re := real(a.At(i, j)) - real(b.At(i, j))
			im := imag(a.At(i, j)) - imag(b.At(i, j))
			if d := math.Hypot(re, im); d > worst {
				worst = d
			}
		}
	}
	return worst
}

var testCfg = &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}}

func TestZGEMMKnown(t *testing.T) {
	// (1+i)(2−i) = 3+i for a 1×1 "matrix".
	a := NewZDense(1, 1)
	a.Set(0, 0, 1+1i)
	b := NewZDense(1, 1)
	b.Set(0, 0, 2-1i)
	c := NewZDense(1, 1)
	ZGEMM(NoTrans, NoTrans, 1, 1, 1, 1, a, b, 0, c)
	if c.At(0, 0) != 3+1i {
		t.Fatalf("got %v", c.At(0, 0))
	}
}

func TestZGEFMMMatchesZGEMM(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	for _, dims := range [][3]int{{1, 1, 1}, {8, 8, 8}, {17, 23, 19}, {40, 33, 47}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ta := range []Transpose{NoTrans, Trans, ConjTrans} {
			for _, tb := range []Transpose{NoTrans, Trans, ConjTrans} {
				rowsA, colsA := m, k
				if ta.transposed() {
					rowsA, colsA = k, m
				}
				rowsB, colsB := k, n
				if tb.transposed() {
					rowsB, colsB = n, k
				}
				a := randZ(rng, rowsA, colsA)
				b := randZ(rng, rowsB, colsB)
				c1 := randZ(rng, m, n)
				c2 := c1.Clone()
				alpha := complex(1.5, -0.5)
				beta := complex(0.25, 0.75)
				ZGEMM(ta, tb, m, n, k, alpha, a, b, beta, c1)
				ZGEFMM(testCfg, ta, tb, m, n, k, alpha, a, b, beta, c2)
				if d := maxAbsDiffZ(c1, c2); d > 1e-11*float64(k+4) {
					t.Fatalf("dims=%v ta=%c tb=%c: %g", dims, ta, tb, d)
				}
			}
		}
	}
}

func TestZGEFMMBetaZero(t *testing.T) {
	rng := rand.New(rand.NewSource(602))
	m := 24
	a := randZ(rng, m, m)
	b := randZ(rng, m, m)
	c1 := randZ(rng, m, m) // garbage that beta=0 must overwrite
	c2 := NewZDense(m, m)
	ZGEFMM(testCfg, NoTrans, NoTrans, m, m, m, 1, a, b, 0, c1)
	ZGEMM(NoTrans, NoTrans, m, m, m, 1, a, b, 0, c2)
	if d := maxAbsDiffZ(c1, c2); d > 1e-11*float64(m) {
		t.Fatalf("beta=0: %g", d)
	}
}

func TestZGEFMMAlphaZeroScalesC(t *testing.T) {
	rng := rand.New(rand.NewSource(603))
	m := 6
	a := randZ(rng, m, m)
	b := randZ(rng, m, m)
	c := randZ(rng, m, m)
	want := c.Clone()
	for j := 0; j < m; j++ {
		for i := 0; i < m; i++ {
			want.Set(i, j, want.At(i, j)*complex(0, 2))
		}
	}
	ZGEFMM(testCfg, NoTrans, NoTrans, m, m, m, 0, a, b, complex(0, 2), c)
	if d := maxAbsDiffZ(c, want); d > 1e-14 {
		t.Fatalf("alpha=0: %g", d)
	}
}

func TestConjTransSemantics(t *testing.T) {
	// For Hermitian A, op='C' on A equals A itself: AᴴA is Hermitian PSD.
	rng := rand.New(rand.NewSource(604))
	n := 12
	a := randZ(rng, n, n)
	g := NewZDense(n, n)
	ZGEFMM(testCfg, ConjTrans, NoTrans, n, n, n, 1, a, a, 0, g)
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			gij := g.At(i, j)
			gji := g.At(j, i)
			if math.Abs(real(gij)-real(gji)) > 1e-11 || math.Abs(imag(gij)+imag(gji)) > 1e-11 {
				t.Fatalf("AᴴA not Hermitian at (%d,%d): %v vs %v", i, j, gij, gji)
			}
		}
		if real(g.At(j, j)) < 0 {
			t.Fatal("AᴴA has negative diagonal")
		}
		if math.Abs(imag(g.At(j, j))) > 1e-11 {
			t.Fatal("AᴴA diagonal not real")
		}
	}
}

func TestZGEFMMQuick(t *testing.T) {
	f := func(mRaw, nRaw, kRaw uint8, seed int64, taRaw, tbRaw uint8) bool {
		m, n, k := int(mRaw%20)+1, int(nRaw%20)+1, int(kRaw%20)+1
		tr := []Transpose{NoTrans, Trans, ConjTrans}
		ta, tb := tr[taRaw%3], tr[tbRaw%3]
		rng := rand.New(rand.NewSource(seed))
		rowsA, colsA := m, k
		if ta.transposed() {
			rowsA, colsA = k, m
		}
		rowsB, colsB := k, n
		if tb.transposed() {
			rowsB, colsB = n, k
		}
		a := randZ(rng, rowsA, colsA)
		b := randZ(rng, rowsB, colsB)
		c1 := randZ(rng, m, n)
		c2 := c1.Clone()
		ZGEMM(ta, tb, m, n, k, complex(0.5, 0.5), a, b, complex(-1, 0.25), c1)
		ZGEFMM(testCfg, ta, tb, m, n, k, complex(0.5, 0.5), a, b, complex(-1, 0.25), c2)
		return maxAbsDiffZ(c1, c2) <= 1e-10*float64(k+4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestZDenseAccessors(t *testing.T) {
	z := NewZDense(2, 3)
	z.Set(1, 2, 4+5i)
	if z.At(1, 2) != 4+5i {
		t.Fatal("Set/At broken")
	}
	clone := z.Clone()
	clone.Set(0, 0, 1i)
	if z.At(0, 0) != 0 {
		t.Fatal("Clone must be independent")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("want out-of-range panic")
		}
	}()
	z.At(2, 0)
}

func TestShapePanics(t *testing.T) {
	a := NewZDense(2, 3)
	b := NewZDense(3, 2)
	c := NewZDense(2, 2)
	// Wrong C shape for these operands: m=2, n=2, k=3 is fine; break it.
	defer func() {
		if recover() == nil {
			t.Fatal("want panic for mismatched C")
		}
	}()
	ZGEFMM(testCfg, NoTrans, NoTrans, 2, 3, 3, 1, a, b, 0, c)
}
