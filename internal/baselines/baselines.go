// Package baselines reimplements the three Strassen codes the paper
// compares DGEFMM against in Section 4.3, reproducing each one's defining
// algorithmic decisions so the comparison probes the same design choices the
// paper's figures probe:
//
//   - DGEMMS (IBM ESSL style, Figure 3): multiply-only interface
//     C = op(A)·op(B); the α/β scaling and update must be done by the
//     caller, which is exactly what makes it lose ground to DGEFMM in the
//     general (α, β) case.
//   - SGEMMS (CRAY style, Figure 4): Bailey's approach built on Strassen's
//     *original* construction (18 adds per level) rather than Winograd's.
//   - DGEMMW (Douglas et al., Figures 5–6): Winograd variant with the
//     simple cutoff criterion (11) and *dynamic padding* for odd sizes.
//
// Each baseline runs on the same BLAS kernels as DGEFMM so that differences
// measure algorithm structure, not kernel tuning.
//
// Substitution note (see DESIGN.md): the originals are closed vendor code;
// these reimplementations reproduce the documented interface and algorithm
// structure, not the vendors' machine-specific tuning. Workspace for the
// padding-based DGEMMW stand-in uses explicit padded copies, so its measured
// workspace exceeds the published 2m²/3 bound; Table 1 therefore reports
// both the published formulas and our measurements.
package baselines

import (
	"repro/internal/blas"
	"repro/internal/memtrack"
	"repro/internal/strassen"
)

// DgemmsConfig configures the ESSL-style baseline.
type DgemmsConfig struct {
	// Kernel used below the cutoff; nil selects blas.DefaultKernel.
	Kernel blas.Kernel
	// Tau is the square cutoff; 0 selects the kernel's calibrated default.
	Tau int
	// Tracker accounts temporary workspace when non-nil.
	Tracker *memtrack.Tracker
}

func (c *DgemmsConfig) strassenConfig() *strassen.Config {
	kern := c.Kernel
	if kern == nil {
		kern = blas.DefaultKernel
	}
	tau := c.Tau
	if tau == 0 {
		tau = strassen.DefaultParams(kern.Name()).Tau
	}
	return &strassen.Config{
		Kernel:    kern,
		Criterion: strassen.Simple{Tau: tau},
		Schedule:  strassen.ScheduleStrassen1, // pure multiply: β is always 0
		Odd:       strassen.OddPeel,
		Tracker:   c.Tracker,
	}
}

// DGEMMS computes C = op(A)·op(B) — multiplication only, like IBM ESSL's
// DGEMMS. "Unlike all other Strassen implementations we have seen, IBM's
// DGEMMS only performs the multiplication portion of DGEMM"; callers needing
// α and β must arrange the update themselves (see DgemmsGeneral).
func DGEMMS(cfg *DgemmsConfig, transA, transB blas.Transpose, m, n, k int,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	if cfg == nil {
		cfg = &DgemmsConfig{}
	}
	strassen.DGEFMM(cfg.strassenConfig(), transA, transB, m, n, k, 1, a, lda, b, ldb, 0, c, ldc)
}

// DgemmsGeneral emulates how the paper's timing harness used DGEMMS for the
// general case: "an extra loop for the scaling and update of C" around the
// multiply-only call. The product goes to a caller-visible workspace w
// (m×n, tight), then C ← alpha*w + beta*C elementwise. This extra pass —
// and its extra m×n workspace — is exactly the cost DGEFMM's native α/β
// support avoids.
func DgemmsGeneral(cfg *DgemmsConfig, transA, transB blas.Transpose, m, n, k int,
	alpha float64, a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	if cfg == nil {
		cfg = &DgemmsConfig{}
	}
	var w []float64
	if cfg.Tracker != nil {
		w = cfg.Tracker.Alloc(m * n)
		defer cfg.Tracker.Free(w)
	} else {
		w = make([]float64, m*n)
	}
	ldw := m
	if ldw < 1 {
		ldw = 1
	}
	DGEMMS(cfg, transA, transB, m, n, k, a, lda, b, ldb, w, ldw)
	for j := 0; j < n; j++ {
		wc := w[j*ldw : j*ldw+m]
		cc := c[j*ldc : j*ldc+m]
		if beta == 0 {
			for i := range cc {
				cc[i] = alpha * wc[i]
			}
		} else {
			for i := range cc {
				cc[i] = alpha*wc[i] + beta*cc[i]
			}
		}
	}
}

// SgemmsConfig configures the CRAY-style baseline.
type SgemmsConfig struct {
	Kernel  blas.Kernel
	Tau     int
	Tracker *memtrack.Tracker
}

// SGEMMS computes C ← alpha*op(A)*op(B) + beta*C with a Strassen code in the
// style of the CRAY scientific library's SGEMMS (Bailey): Strassen's
// original construction (7 multiplies, 18 adds per level) with a simple
// square-derived cutoff, handling odd dimensions by padding.
func SGEMMS(cfg *SgemmsConfig, transA, transB blas.Transpose, m, n, k int,
	alpha float64, a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	if cfg == nil {
		cfg = &SgemmsConfig{}
	}
	kern := cfg.Kernel
	if kern == nil {
		kern = blas.DefaultKernel
	}
	tau := cfg.Tau
	if tau == 0 {
		tau = strassen.DefaultParams(kern.Name()).Tau
	}
	sc := &strassen.Config{
		Kernel:    kern,
		Criterion: strassen.Simple{Tau: tau},
		Schedule:  strassen.ScheduleOriginal,
		Odd:       strassen.OddPadDynamic,
		Tracker:   cfg.Tracker,
	}
	strassen.DGEFMM(sc, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// DgemmwConfig configures the Douglas et al. style baseline.
type DgemmwConfig struct {
	Kernel  blas.Kernel
	Tau     int
	Tracker *memtrack.Tracker
}

// DGEMMW computes C ← alpha*op(A)*op(B) + beta*C in the style of Douglas,
// Heroux, Slishman and Smith's GEMMW: Winograd's variant, the simple cutoff
// criterion (11) ("m ≤ τ or k ≤ τ or n ≤ τ" stops recursion — the criterion
// the paper shows forgoes profitable recursion on thin-by-large problems),
// and dynamic padding for odd dimensions (the approach the paper's dynamic
// peeling is measured against in Figures 5 and 6).
func DGEMMW(cfg *DgemmwConfig, transA, transB blas.Transpose, m, n, k int,
	alpha float64, a []float64, lda int, b []float64, ldb int, beta float64,
	c []float64, ldc int) {
	if cfg == nil {
		cfg = &DgemmwConfig{}
	}
	kern := cfg.Kernel
	if kern == nil {
		kern = blas.DefaultKernel
	}
	tau := cfg.Tau
	if tau == 0 {
		tau = strassen.DefaultParams(kern.Name()).Tau
	}
	sc := &strassen.Config{
		Kernel:    kern,
		Criterion: strassen.Simple{Tau: tau},
		Schedule:  strassen.ScheduleStrassen1, // GEMMW's scheme: C as scratch for β=0,
		Odd:       strassen.OddPadDynamic,     // an extra m×n buffer otherwise.
		Tracker:   cfg.Tracker,
	}
	strassen.DGEFMM(sc, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}
