package baselines

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
)

func refMul(transA, transB blas.Transpose, alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) *matrix.Dense {
	av := matrix.ViewOp(a, transA.IsTrans())
	bv := matrix.ViewOp(b, transB.IsTrans())
	out := c.Clone()
	for j := 0; j < out.Cols; j++ {
		for i := 0; i < out.Rows; i++ {
			var s float64
			for l := 0; l < av.Cols; l++ {
				s += av.At(i, l) * bv.At(l, j)
			}
			out.Set(i, j, alpha*s+beta*c.At(i, j))
		}
	}
	return out
}

const testTau = 8

func TestDGEMMSCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	cfg := &DgemmsConfig{Kernel: blas.NaiveKernel{}, Tau: testTau}
	for _, dims := range [][3]int{{16, 16, 16}, {17, 23, 19}, {33, 9, 40}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ta := range []blas.Transpose{blas.NoTrans, blas.Trans} {
			rowsA, colsA := m, k
			if ta.IsTrans() {
				rowsA, colsA = k, m
			}
			a := matrix.NewRandom(rowsA, colsA, rng)
			b := matrix.NewRandom(k, n, rng)
			c := matrix.NewDense(m, n)
			DGEMMS(cfg, ta, blas.NoTrans, m, n, k, a.Data, a.Stride, b.Data, b.Stride, c.Data, c.Stride)
			want := refMul(ta, blas.NoTrans, 1, a, b, 0, matrix.NewDense(m, n))
			if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
				t.Fatalf("DGEMMS dims=%v ta=%c: %g", dims, ta, d)
			}
		}
	}
}

func TestDgemmsGeneralMatchesDirectUpdate(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	cfg := &DgemmsConfig{Kernel: blas.NaiveKernel{}, Tau: testTau}
	m, k, n := 21, 17, 25
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	want := refMul(blas.NoTrans, blas.NoTrans, 1.0/3, a, b, 1.0/4, c)
	DgemmsGeneral(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1.0/3, a.Data, a.Stride, b.Data, b.Stride, 1.0/4, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
		t.Fatalf("DgemmsGeneral: %g", d)
	}
}

func TestDgemmsGeneralAllocatesExtraWorkspace(t *testing.T) {
	// The emulated update loop needs an extra m×n buffer — the interface
	// cost the paper highlights for the general case.
	tr := memtrack.New()
	cfg := &DgemmsConfig{Kernel: blas.NaiveKernel{}, Tau: testTau, Tracker: tr}
	rng := rand.New(rand.NewSource(63))
	m := 32
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewRandom(m, m, rng)
	DgemmsGeneral(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 2, a.Data, a.Stride, b.Data, b.Stride, 3, c.Data, c.Stride)
	if tr.Peak() < int64(m*m) {
		t.Fatalf("expected ≥ m² extra workspace for the update loop, got %d", tr.Peak())
	}
	if tr.Live() != 0 {
		t.Fatal("workspace leak")
	}
}

func TestSGEMMSCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	cfg := &SgemmsConfig{Kernel: blas.NaiveKernel{}, Tau: testTau}
	for _, dims := range [][3]int{{16, 16, 16}, {19, 21, 23}, {40, 12, 36}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ab := range [][2]float64{{1, 0}, {2, 0.5}} {
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c := matrix.NewRandom(m, n, rng)
			want := refMul(blas.NoTrans, blas.NoTrans, ab[0], a, b, ab[1], c)
			SGEMMS(cfg, blas.NoTrans, blas.NoTrans, m, n, k, ab[0], a.Data, a.Stride, b.Data, b.Stride, ab[1], c.Data, c.Stride)
			if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
				t.Fatalf("SGEMMS dims=%v: %g", dims, d)
			}
		}
	}
}

func TestDGEMMWCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	cfg := &DgemmwConfig{Kernel: blas.NaiveKernel{}, Tau: testTau}
	for _, dims := range [][3]int{{16, 16, 16}, {17, 19, 15}, {64, 63, 65}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ab := range [][2]float64{{1, 0}, {1.5, -0.5}} {
			for _, tb := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				rowsB, colsB := k, n
				if tb.IsTrans() {
					rowsB, colsB = n, k
				}
				a := matrix.NewRandom(m, k, rng)
				b := matrix.NewRandom(rowsB, colsB, rng)
				c := matrix.NewRandom(m, n, rng)
				want := refMul(blas.NoTrans, tb, ab[0], a, b, ab[1], c)
				DGEMMW(cfg, blas.NoTrans, tb, m, n, k, ab[0], a.Data, a.Stride, b.Data, b.Stride, ab[1], c.Data, c.Stride)
				if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
					t.Fatalf("DGEMMW dims=%v αβ=%v tb=%c: %g", dims, ab, tb, d)
				}
			}
		}
	}
}

func TestBaselinesAgreeWithEachOther(t *testing.T) {
	// All four codes compute the same product; cross-check on one size.
	rng := rand.New(rand.NewSource(66))
	m := 30
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	kern := blas.NaiveKernel{}

	c1 := matrix.NewDense(m, m)
	DGEMMS(&DgemmsConfig{Kernel: kern, Tau: testTau}, blas.NoTrans, blas.NoTrans, m, m, m, a.Data, a.Stride, b.Data, b.Stride, c1.Data, c1.Stride)
	c2 := matrix.NewDense(m, m)
	SGEMMS(&SgemmsConfig{Kernel: kern, Tau: testTau}, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c2.Data, c2.Stride)
	c3 := matrix.NewDense(m, m)
	DGEMMW(&DgemmwConfig{Kernel: kern, Tau: testTau}, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c3.Data, c3.Stride)

	if d := matrix.MaxAbsDiff(c1, c2); d > 1e-11 {
		t.Errorf("DGEMMS vs SGEMMS: %g", d)
	}
	if d := matrix.MaxAbsDiff(c1, c3); d > 1e-11 {
		t.Errorf("DGEMMS vs DGEMMW: %g", d)
	}
}

func TestNilConfigsWork(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	m := 12
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewDense(m, m)
	want := refMul(blas.NoTrans, blas.NoTrans, 1, a, b, 0, matrix.NewDense(m, m))
	DGEMMS(nil, blas.NoTrans, blas.NoTrans, m, m, m, a.Data, a.Stride, b.Data, b.Stride, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
		t.Fatalf("nil DgemmsConfig: %g", d)
	}
	c.Zero()
	SGEMMS(nil, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
		t.Fatalf("nil SgemmsConfig: %g", d)
	}
	c.Zero()
	DGEMMW(nil, blas.NoTrans, blas.NoTrans, m, m, m, 1, a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	if d := matrix.MaxAbsDiff(c, want); d > 1e-11 {
		t.Fatalf("nil DgemmwConfig: %g", d)
	}
}
