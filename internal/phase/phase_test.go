package phase

import (
	"sync"
	"testing"
	"time"
)

func TestNilProfilerIsInert(t *testing.T) {
	var p *Profiler
	p.Add(KernelMicro, 1, 2, 3) // must not panic
	s := p.Begin(KernelPackA)
	s.End(10, 20)
	p.Reset()
	snap := p.Snapshot()
	if len(snap) != NumPhases {
		t.Fatalf("nil snapshot length %d, want %d", len(snap), NumPhases)
	}
	for _, st := range snap {
		if st.Count != 0 || st.NS != 0 || st.Flops != 0 || st.Bytes != 0 {
			t.Fatalf("nil profiler reported nonzero stat: %+v", st)
		}
	}
}

func TestAddAndSnapshot(t *testing.T) {
	var p Profiler
	p.Add(StrassenAddSub, 100, 64, 512)
	p.Add(StrassenAddSub, 50, 36, 256)
	p.Add(KernelMicro, 10, 2000, 80)
	snap := p.Snapshot()
	as := snap[StrassenAddSub]
	if as.Name != "strassen.addsub" {
		t.Errorf("name = %q", as.Name)
	}
	if as.Count != 2 || as.NS != 150 || as.Flops != 100 || as.Bytes != 768 {
		t.Errorf("addsub stat = %+v", as)
	}
	if mi := snap[KernelMicro]; mi.Count != 1 || mi.Flops != 2000 {
		t.Errorf("micro stat = %+v", mi)
	}
	p.Reset()
	for _, st := range p.Snapshot() {
		if st.Count != 0 || st.Flops != 0 {
			t.Fatalf("Reset left %+v", st)
		}
	}
}

func TestBeginEndMeasuresTime(t *testing.T) {
	var p Profiler
	s := p.Begin(BatchQueueWait)
	time.Sleep(2 * time.Millisecond)
	s.End(0, 0)
	st := p.Snapshot()[BatchQueueWait]
	if st.Count != 1 {
		t.Fatalf("count = %d", st.Count)
	}
	if st.NS < int64(time.Millisecond) {
		t.Fatalf("elapsed %dns, expected ≥ 1ms", st.NS)
	}
}

func TestStatDerivedRates(t *testing.T) {
	st := Stat{NS: 1000, Flops: 2000, Bytes: 500}
	if g := st.GFLOPS(); g != 2 {
		t.Errorf("GFLOPS = %v, want 2", g)
	}
	if b := st.GBps(); b != 0.5 {
		t.Errorf("GBps = %v, want 0.5", b)
	}
	if ai := st.Intensity(); ai != 4 {
		t.Errorf("Intensity = %v, want 4", ai)
	}
	zero := Stat{}
	if zero.GFLOPS() != 0 || zero.GBps() != 0 || zero.Intensity() != 0 {
		t.Error("zero Stat must report zero rates")
	}
}

func TestNamesStableAndComplete(t *testing.T) {
	want := []string{
		"kernel.pack_a", "kernel.pack_b", "kernel.micro", "kernel.fringe",
		"strassen.addsub", "strassen.quadrant", "strassen.peel",
		"batch.queue_wait", "arena.draw",
		"kernel.fused_pack", "kernel.fused_writeout",
		"sched.task_run", "sched.steal", "sched.idle",
	}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() has %d entries, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Names()[%d] = %q, want %q", i, got[i], want[i])
		}
		if ID(i).String() != want[i] {
			t.Errorf("ID(%d).String() = %q, want %q", i, ID(i).String(), want[i])
		}
	}
	if ID(200).String() != "unknown" {
		t.Errorf("out-of-range ID must stringify as unknown")
	}
}

func TestSetActiveRestores(t *testing.T) {
	if !Enabled {
		// Under -tags phaseoff SetActive is a no-op and Active is
		// constant nil; pin that contract instead.
		if SetActive(&Profiler{}) != nil || Active() != nil {
			t.Fatal("phaseoff build must keep Active() nil and SetActive a no-op")
		}
		return
	}
	var p Profiler
	prev := SetActive(&p)
	defer SetActive(prev)
	if Active() != &p {
		t.Fatal("Active() did not return the installed profiler")
	}
	if got := SetActive(prev); got != &p {
		t.Fatalf("SetActive did not return the previous profiler")
	}
}

func TestConcurrentAdds(t *testing.T) {
	var p Profiler
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				p.Add(ArenaDraw, 1, 2, 3)
			}
		}()
	}
	wg.Wait()
	st := p.Snapshot()[ArenaDraw]
	if st.Count != workers*per || st.Flops != 2*workers*per {
		t.Fatalf("concurrent totals lost updates: %+v", st)
	}
}
