// Package phase is the performance-attribution substrate: a fixed set of
// named execution phases (panel packing, the register-tile loop, the
// Winograd add/sub combinations, peeling fixups, batch queue wait, arena
// draws) and a Profiler that accumulates per-phase wall time, FLOPs and
// bytes moved with one atomic add per field.
//
// The paper argues its case with breakdowns — MFLOPS per configuration,
// workspace per schedule — and Huang et al.'s BLIS Strassen (arXiv:
// 1605.01078) attributes cost to packing vs. micro-kernel vs. add/sub
// memory traffic. This package is the measurement layer that turns "where
// do Strassen's savings go at runtime" into numbers: internal/kernel,
// internal/strassen, internal/batch and internal/memtrack bracket their
// phases through it, internal/obs folds the totals into snapshots as the
// phase.* metric family, and cmd/obsreport derives per-phase GFLOPS,
// arithmetic intensity and roofline positions from them.
//
// The design constraint is the same as internal/obs's: absence costs
// nothing. With no profiler installed, a bracket is one atomic pointer
// load and a nil check (the Sample returned by Begin carries a nil
// profiler, so End is a predictable branch); hot loops hoist the Active()
// load out of their inner loops. Building with -tags phaseoff removes even
// that: Active is then a constant nil and the compiler eliminates every
// bracket (see off.go), which is how the "measurably unchanged" claim for
// the uninstrumented path is testable rather than asserted.
//
// This package sits below every instrumented package and imports only the
// standard library; it must never import the packages it measures.
package phase

import (
	"sync/atomic"
	"time"
)

// ID identifies one execution phase. The set is closed and small so
// counters live in a fixed array indexed without hashing.
type ID uint8

const (
	// KernelPackA is the packed kernel's Ã-panel packing (pure data
	// movement: op(A) blocks rearranged into mr-row micro-panels).
	KernelPackA ID = iota
	// KernelPackB is the B̃-panel packing (nr-column micro-panels).
	KernelPackB
	// KernelMicro is the register-tile loop over full MR×NR tiles — the
	// only phase whose FLOPs run at the machine's vector peak.
	KernelMicro
	// KernelFringe is the ragged-boundary tile work (scalar edge handler).
	KernelFringe
	// StrassenAddSub is the Winograd stage (1)/(2) S/T sum formation on
	// A- and B-shaped operands.
	StrassenAddSub
	// StrassenQuadrant is the stage (4) combination traffic into C
	// quadrants (the write-out adds, U-chains and quadrant copies).
	StrassenQuadrant
	// StrassenPeel is the dynamic-peeling fixup work: the DGER rank-one
	// border repair and the two DGEMV border products.
	StrassenPeel
	// BatchQueueWait is the time a batched call spends queued before a
	// worker picks it up (count = dequeues, bytes/flops zero).
	BatchQueueWait
	// ArenaDraw is workspace-arena accounting time: memtrack Alloc calls,
	// with bytes = words drawn (fresh or recycled) times 8.
	ArenaDraw
	// KernelFusedPack is the operand-fused packing of the fused Winograd
	// path: Ã/B̃ panels formed as γ₀·X + γ₁·Y (+ …) on the fly from the
	// Strassen quadrants, replacing a separate add/sub pass plus a plain
	// pack. FLOPs are the fused adds; bytes count every term read plus the
	// packed write.
	KernelFusedPack
	// KernelFusedWriteout is the multi-destination micro-kernel write-out:
	// the extra ±1-weighted accumulations of one product panel into its
	// second and later C quadrants (the first destination's traffic stays
	// in KernelMicro/KernelFringe, keeping those comparable to the unfused
	// kernel).
	KernelFusedWriteout
	// SchedTaskRun is time a scheduler worker spends executing task bodies
	// (count = tasks run; flops/bytes belong to the phases the bodies
	// bracket themselves, so they stay zero here to avoid double counting).
	SchedTaskRun
	// SchedSteal is time spent in steal attempts — scanning victim deques
	// and the injector — whether or not a task was found (count = successful
	// steals).
	SchedSteal
	// SchedIdle is time a worker spends parked with no runnable task; the
	// work-conservation property says this stays near zero while tasks
	// outnumber workers.
	SchedIdle

	// NumPhases is the number of defined phases.
	NumPhases int = iota
)

// names are the stable metric-family segments: "phase.<name>.ns" etc.
var names = [NumPhases]string{
	"kernel.pack_a",
	"kernel.pack_b",
	"kernel.micro",
	"kernel.fringe",
	"strassen.addsub",
	"strassen.quadrant",
	"strassen.peel",
	"batch.queue_wait",
	"arena.draw",
	"kernel.fused_pack",
	"kernel.fused_writeout",
	"sched.task_run",
	"sched.steal",
	"sched.idle",
}

// String returns the phase's stable report name.
func (id ID) String() string {
	if int(id) < NumPhases {
		return names[id]
	}
	return "unknown"
}

// Names returns every phase name in ID order.
func Names() []string {
	out := make([]string, NumPhases)
	copy(out, names[:])
	return out
}

// counters is one phase's accumulator quad. Padding between phases is not
// needed: phases are updated from coarse brackets, not per-element loops,
// so false sharing is noise here.
type counters struct {
	count atomic.Int64
	ns    atomic.Int64
	flops atomic.Int64
	bytes atomic.Int64
}

// Profiler accumulates per-phase totals. The zero value is ready to use;
// all methods are safe for concurrent use, and all methods are safe on a
// nil *Profiler (they become no-ops), which is the disabled fast path.
type Profiler struct {
	c [NumPhases]counters
}

// Add folds one completed region into a phase: its wall time, the scalar
// FLOPs it performed (opcount convention: one add or one multiply each
// count 1) and the bytes it moved.
func (p *Profiler) Add(id ID, ns, flops, bytes int64) {
	if p == nil {
		return
	}
	c := &p.c[id]
	c.count.Add(1)
	c.ns.Add(ns)
	c.flops.Add(flops)
	c.bytes.Add(bytes)
}

// Sample is an open bracket returned by Begin. It is a value (no
// allocation); call End exactly once when the region completes.
type Sample struct {
	p     *Profiler
	id    ID
	start time.Time
}

// Begin opens a timed bracket for the phase. On a nil Profiler it returns
// an inert Sample whose End is a nil check.
func (p *Profiler) Begin(id ID) Sample {
	if p == nil {
		return Sample{}
	}
	return Sample{p: p, id: id, start: time.Now()}
}

// End closes the bracket, attributing the elapsed wall time plus the
// caller-accounted FLOPs and bytes to the sample's phase.
func (s Sample) End(flops, bytes int64) {
	if s.p == nil {
		return
	}
	s.p.Add(s.id, time.Since(s.start).Nanoseconds(), flops, bytes)
}

// Stat is one phase's accumulated totals.
type Stat struct {
	Name  string `json:"name"`
	Count int64  `json:"count"`
	NS    int64  `json:"ns"`
	Flops int64  `json:"flops"`
	Bytes int64  `json:"bytes"`
}

// GFLOPS is the phase's compute rate (0 for untimed or flop-free phases).
func (s Stat) GFLOPS() float64 {
	if s.NS <= 0 {
		return 0
	}
	return float64(s.Flops) / float64(s.NS)
}

// GBps is the phase's memory traffic rate in GB/s.
func (s Stat) GBps() float64 {
	if s.NS <= 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.NS)
}

// Intensity is the phase's arithmetic intensity in FLOPs per byte moved
// (0 when the phase moved no bytes).
func (s Stat) Intensity() float64 {
	if s.Bytes <= 0 {
		return 0
	}
	return float64(s.Flops) / float64(s.Bytes)
}

// Snapshot copies every phase's totals in ID order (including zero-count
// phases, so consumers index by position). A nil Profiler reports zeros.
func (p *Profiler) Snapshot() []Stat {
	out := make([]Stat, NumPhases)
	for i := range out {
		out[i].Name = names[i]
		if p == nil {
			continue
		}
		c := &p.c[i]
		out[i].Count = c.count.Load()
		out[i].NS = c.ns.Load()
		out[i].Flops = c.flops.Load()
		out[i].Bytes = c.bytes.Load()
	}
	return out
}

// Reset zeroes every counter.
func (p *Profiler) Reset() {
	if p == nil {
		return
	}
	for i := range p.c {
		c := &p.c[i]
		c.count.Store(0)
		c.ns.Store(0)
		c.flops.Store(0)
		c.bytes.Store(0)
	}
}

// Enabled reports whether phase accounting is present in this binary.
// It is false under -tags phaseoff; tests that assert on collected
// samples consult it to skip instead of failing against a no-op build.
const Enabled = !compiledOut

// active is the process-wide installed profiler (nil = disabled). A single
// global — rather than threading a handle through every Config — is what
// lets the leaf kernel and the arena, which have no per-call configuration
// path, participate; it mirrors kernel.SetDefaultBlocks's process-global
// calibration model. obs.Collector installs its profiler via EnablePhases.
var active atomic.Pointer[Profiler]

// SetActive installs the process-wide profiler (nil disables). It returns
// the previous profiler so scoped measurements can restore it.
func SetActive(p *Profiler) (prev *Profiler) {
	if compiledOut {
		return nil
	}
	return active.Swap(p)
}
