//go:build !phaseoff

package phase

// compiledOut reports whether phase accounting was removed at build time.
const compiledOut = false

// Active returns the installed profiler, or nil when accounting is off.
// Hot paths call this once per coarse operation (a kernel MulAdd, a
// DGEFMM call) and hold the result, not once per inner-loop iteration.
func Active() *Profiler { return active.Load() }
