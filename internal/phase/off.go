//go:build phaseoff

package phase

// compiledOut reports whether phase accounting was removed at build time.
const compiledOut = true

// Active is constant nil under -tags phaseoff: every bracket reduces to a
// comparison against a compile-time nil and the branch folds away, giving
// a binary whose hot loops are bit-identical to pre-instrumentation code.
// Benchmarking a phaseoff build against the default build bounds the cost
// of the disabled-path nil checks (see EXPERIMENTS.md).
func Active() *Profiler { return nil }
