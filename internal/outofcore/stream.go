package outofcore

import (
	"fmt"
	"io"

	"repro/internal/matrix"
)

// RowWriter streams a matrix into a Store as consecutive row-major rows,
// buffering a band of rows in core and flushing it as one tile write. It
// is the adapter between network byte streams — which arrive row by row —
// and the tiled column-major stores: the serving layer's chunked-transfer
// path decodes each operand row and hands it here, so an operand larger
// than RAM never materializes in core.
type RowWriter struct {
	dst        Store
	rows, cols int
	band       *matrix.Dense
	next       int // absolute row index of the band's first row
	filled     int // rows buffered in the band
}

// NewRowWriter prepares to stream dst.Dims() rows into dst. bandRows
// bounds the in-core buffer; <= 0 selects 64.
func NewRowWriter(dst Store, bandRows int) *RowWriter {
	rows, cols := dst.Dims()
	if bandRows <= 0 {
		bandRows = 64
	}
	if bandRows > rows && rows > 0 {
		bandRows = rows
	}
	return &RowWriter{dst: dst, rows: rows, cols: cols, band: matrix.NewDense(bandRows, cols)}
}

// WriteRow appends the next row. len(row) must equal the store's column
// count, and at most Dims() rows may be written.
func (w *RowWriter) WriteRow(row []float64) error {
	if len(row) != w.cols {
		return fmt.Errorf("outofcore: RowWriter: row length %d, want %d", len(row), w.cols)
	}
	if w.next+w.filled >= w.rows {
		return fmt.Errorf("outofcore: RowWriter: more than %d rows written", w.rows)
	}
	for j, v := range row {
		w.band.Set(w.filled, j, v)
	}
	w.filled++
	if w.filled == w.band.Rows {
		return w.flush()
	}
	return nil
}

func (w *RowWriter) flush() error {
	if w.filled == 0 {
		return nil
	}
	if err := w.dst.WriteTile(w.next, 0, w.band.Slice(0, 0, w.filled, w.cols)); err != nil {
		return err
	}
	w.next += w.filled
	w.filled = 0
	return nil
}

// Close flushes the partial band and verifies every row arrived.
func (w *RowWriter) Close() error {
	if err := w.flush(); err != nil {
		return err
	}
	if w.next != w.rows {
		return fmt.Errorf("outofcore: RowWriter closed after %d of %d rows", w.next, w.rows)
	}
	return nil
}

// RowReader streams a store out as consecutive row-major rows, reading one
// band of rows per tile access — the mirror of RowWriter, used to send an
// out-of-core result back over the wire band by band.
type RowReader struct {
	src        Store
	rows, cols int
	band       *matrix.Dense
	loaded     int // absolute row index of the band's first row
	avail      int // rows valid in the band
	off        int // next band row to hand out
	buf        []float64
}

// NewRowReader prepares to stream src.Dims() rows out of src. bandRows
// bounds the in-core buffer; <= 0 selects 64.
func NewRowReader(src Store, bandRows int) *RowReader {
	rows, cols := src.Dims()
	if bandRows <= 0 {
		bandRows = 64
	}
	if bandRows > rows && rows > 0 {
		bandRows = rows
	}
	return &RowReader{
		src: src, rows: rows, cols: cols,
		band: matrix.NewDense(bandRows, cols),
		buf:  make([]float64, cols),
	}
}

// ReadRow returns the next row, valid until the following ReadRow call.
// After the last row it returns io.EOF.
func (r *RowReader) ReadRow() ([]float64, error) {
	if r.off == r.avail {
		next := r.loaded + r.avail
		if next >= r.rows {
			return nil, io.EOF
		}
		n := r.band.Rows
		if next+n > r.rows {
			n = r.rows - next
		}
		if err := r.src.ReadTile(next, 0, r.band.Slice(0, 0, n, r.cols)); err != nil {
			return nil, err
		}
		r.loaded, r.avail, r.off = next, n, 0
	}
	for j := 0; j < r.cols; j++ {
		r.buf[j] = r.band.At(r.off, j)
	}
	r.off++
	return r.buf, nil
}
