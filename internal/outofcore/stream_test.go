package outofcore

import (
	"io"
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/matrix"
)

// streamIn writes src's rows through a RowWriter into dst.
func streamIn(t *testing.T, dst Store, src *matrix.Dense, band int) {
	t.Helper()
	w := NewRowWriter(dst, band)
	row := make([]float64, src.Cols)
	for i := 0; i < src.Rows; i++ {
		for j := 0; j < src.Cols; j++ {
			row[j] = src.At(i, j)
		}
		if err := w.WriteRow(row); err != nil {
			t.Fatalf("WriteRow(%d): %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// streamOut reads every row of src through a RowReader into a new Dense.
func streamOut(t *testing.T, src Store, band int) *matrix.Dense {
	t.Helper()
	rows, cols := src.Dims()
	out := matrix.NewDense(rows, cols)
	r := NewRowReader(src, band)
	for i := 0; ; i++ {
		row, err := r.ReadRow()
		if err == io.EOF {
			if i != rows {
				t.Fatalf("EOF after %d rows, want %d", i, rows)
			}
			return out
		}
		if err != nil {
			t.Fatalf("ReadRow(%d): %v", i, err)
		}
		if i >= rows {
			t.Fatalf("row %d past the %d-row store", i, rows)
		}
		for j, v := range row {
			out.Set(i, j, v)
		}
	}
}

func TestRowStreamRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	for _, dims := range [][2]int{{1, 1}, {7, 3}, {64, 64}, {65, 31}, {100, 17}} {
		rows, cols := dims[0], dims[1]
		// Bands smaller than, equal to, larger than the row count, and the
		// default — partial final bands and single-row bands included.
		for _, band := range []int{1, 3, rows, rows + 10, 0} {
			src := matrix.NewRandom(rows, cols, rng)
			store := NewMemStore(matrix.NewDense(rows, cols))
			streamIn(t, store, src, band)
			if d := matrix.MaxAbsDiff(store.M, src); d != 0 {
				t.Fatalf("dims=%v band=%d: write round-trip off by %g", dims, band, d)
			}
			got := streamOut(t, store, band)
			if d := matrix.MaxAbsDiff(got, src); d != 0 {
				t.Fatalf("dims=%v band=%d: read round-trip off by %g", dims, band, d)
			}
		}
	}
}

func TestRowStreamFileStore(t *testing.T) {
	rng := rand.New(rand.NewSource(912))
	src := matrix.NewRandom(37, 23, rng)
	fs, err := CreateFileStore(filepath.Join(t.TempDir(), "s.f64"), 37, 23)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	streamIn(t, fs, src, 8)
	got := streamOut(t, fs, 5) // different band size on the way out
	if d := matrix.MaxAbsDiff(got, src); d != 0 {
		t.Fatalf("file round-trip off by %g", d)
	}
}

func TestRowWriterErrors(t *testing.T) {
	store := NewMemStore(matrix.NewDense(3, 4))

	w := NewRowWriter(store, 2)
	if err := w.WriteRow(make([]float64, 5)); err == nil {
		t.Fatal("wrong row length accepted")
	}
	row := make([]float64, 4)
	for i := 0; i < 3; i++ {
		if err := w.WriteRow(row); err != nil {
			t.Fatalf("WriteRow(%d): %v", i, err)
		}
	}
	if err := w.WriteRow(row); err == nil {
		t.Fatal("fourth row accepted by a 3-row store")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close after full write: %v", err)
	}

	// Closing early must report the missing rows.
	w = NewRowWriter(NewMemStore(matrix.NewDense(3, 4)), 2)
	if err := w.WriteRow(row); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err == nil {
		t.Fatal("Close after 1 of 3 rows should fail")
	}
}

// The streaming path and the tiled multiply compose: operands stream in,
// Multiply runs tiled, and the result streams out matching the in-core
// reference. This is exactly the serving layer's out-of-core data flow.
func TestStreamedMultiply(t *testing.T) {
	rng := rand.New(rand.NewSource(913))
	m, k, n := 48, 36, 52
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewRandom(m, n, rng)
	want := inCoreRef(2, a, b, 0.25, c)

	dir := t.TempDir()
	open := func(name string, rows, cols int) *FileStore {
		fs, err := CreateFileStore(filepath.Join(dir, name), rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fs.Close() })
		return fs
	}
	sa, sb, sc := open("a.f64", m, k), open("b.f64", k, n), open("c.f64", m, n)
	streamIn(t, sa, a, 16)
	streamIn(t, sb, b, 16)
	streamIn(t, sc, c, 16)

	if err := Multiply(sc, sa, sb, 2, 0.25, &Options{WorkspaceWords: 3 * 16 * 16, Config: oocCfg}); err != nil {
		t.Fatal(err)
	}
	got := streamOut(t, sc, 16)
	if d := matrix.MaxAbsDiff(got, want); d > 1e-10*float64(k) {
		t.Fatalf("streamed multiply off by %g", d)
	}
}

// Streaming a whole matrix moves each word exactly once in each direction,
// regardless of band size — the traffic accounting should agree.
func TestRowStreamTraffic(t *testing.T) {
	rows, cols := 50, 20
	rng := rand.New(rand.NewSource(914))
	src := matrix.NewRandom(rows, cols, rng)
	store := NewMemStore(matrix.NewDense(rows, cols))
	streamIn(t, store, src, 7)
	if want := int64(rows * cols); store.WordsWritten != want {
		t.Fatalf("words written %d, want %d", store.WordsWritten, want)
	}
	streamOut(t, store, 9)
	if want := int64(rows * cols); store.WordsRead != want {
		t.Fatalf("words read %d, want %d", store.WordsRead, want)
	}
}
