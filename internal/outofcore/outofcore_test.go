package outofcore

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

func inCoreRef(alpha float64, a, b *matrix.Dense, beta float64, c *matrix.Dense) *matrix.Dense {
	out := c.Clone()
	blas.Dgemm(blas.NoTrans, blas.NoTrans, c.Rows, c.Cols, a.Cols, alpha,
		a.Data, a.Stride, b.Data, b.Stride, beta, out.Data, out.Stride)
	return out
}

var oocCfg = &strassen.Config{Kernel: blas.NaiveKernel{}, Criterion: strassen.Simple{Tau: 8}}

func TestMultiplyMatchesInCore(t *testing.T) {
	rng := rand.New(rand.NewSource(901))
	for _, dims := range [][3]int{{64, 64, 64}, {100, 70, 90}, {33, 17, 51}, {8, 8, 8}} {
		m, k, n := dims[0], dims[1], dims[2]
		for _, ws := range []int{3 * 16 * 16, 3 * 40 * 40} {
			a := matrix.NewRandom(m, k, rng)
			b := matrix.NewRandom(k, n, rng)
			c := matrix.NewRandom(m, n, rng)
			want := inCoreRef(1.5, a, b, 0.5, c)
			sa, sb, sc := NewMemStore(a.Clone()), NewMemStore(b.Clone()), NewMemStore(c.Clone())
			if err := Multiply(sc, sa, sb, 1.5, 0.5, &Options{WorkspaceWords: ws, Config: oocCfg}); err != nil {
				t.Fatalf("dims=%v ws=%d: %v", dims, ws, err)
			}
			if d := matrix.MaxAbsDiff(sc.M, want); d > 1e-10*float64(k) {
				t.Fatalf("dims=%v ws=%d: off by %g", dims, ws, d)
			}
		}
	}
}

func TestTileOrderFromBudget(t *testing.T) {
	if got := TileOrder(3 * 100 * 100); got != 100 {
		t.Fatalf("TileOrder = %d, want 100", got)
	}
	if got := TileOrder(1); got != 1 {
		t.Fatal("minimum tile order is 1")
	}
}

func TestTrafficMatchesPrediction(t *testing.T) {
	rng := rand.New(rand.NewSource(902))
	m, k, n := 96, 96, 96
	ws := 3 * 32 * 32 // tile order exactly 32 → 3×3 tile grid
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewDense(m, n)
	sa, sb, sc := NewMemStore(a), NewMemStore(b), NewMemStore(c)
	if err := Multiply(sc, sa, sb, 1, 0, &Options{WorkspaceWords: ws, Config: oocCfg}); err != nil {
		t.Fatal(err)
	}
	wantRead, wantWritten := PredictTraffic(m, k, n, 32)
	gotRead := sa.WordsRead + sb.WordsRead + sc.WordsRead
	if gotRead != wantRead {
		t.Fatalf("read traffic %d, predicted %d", gotRead, wantRead)
	}
	if sc.WordsWritten != wantWritten {
		t.Fatalf("write traffic %d, predicted %d", sc.WordsWritten, wantWritten)
	}
}

func TestLargerTilesMoveLessTraffic(t *testing.T) {
	// The whole point of the workspace/traffic trade-off: quadrupling the
	// workspace (doubling t) roughly halves the A/B re-read volume.
	r1, _ := PredictTraffic(512, 512, 512, 32)
	r2, _ := PredictTraffic(512, 512, 512, 64)
	if r2 >= r1 {
		t.Fatalf("traffic should drop with larger tiles: %d vs %d", r2, r1)
	}
	if ratio := float64(r1) / float64(r2); ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("doubling t should ≈halve traffic, got ratio %.2f", ratio)
	}
}

func TestShapeMismatch(t *testing.T) {
	a := NewMemStore(matrix.NewDense(4, 5))
	b := NewMemStore(matrix.NewDense(6, 4)) // inner mismatch
	c := NewMemStore(matrix.NewDense(4, 4))
	if err := Multiply(c, a, b, 1, 0, nil); err == nil {
		t.Fatal("want shape error")
	}
}

func TestMemStoreBounds(t *testing.T) {
	s := NewMemStore(matrix.NewDense(4, 4))
	tile := matrix.NewDense(3, 3)
	if err := s.ReadTile(2, 2, tile); err == nil {
		t.Fatal("want out-of-range read error")
	}
	if err := s.WriteTile(-1, 0, tile); err == nil {
		t.Fatal("want out-of-range write error")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(903))
	dir := t.TempDir()
	fs, err := CreateFileStore(filepath.Join(dir, "a.mat"), 20, 12)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	src := matrix.NewRandom(7, 5, rng)
	if err := fs.WriteTile(3, 4, src); err != nil {
		t.Fatal(err)
	}
	dst := matrix.NewDense(7, 5)
	if err := fs.ReadTile(3, 4, dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(src) {
		t.Fatal("file round trip lost data")
	}
	// Untouched region must read back zeros (Truncate fill).
	z := matrix.NewDense(2, 2)
	if err := fs.ReadTile(0, 0, z); err != nil {
		t.Fatal(err)
	}
	if matrix.MaxAbs(z) != 0 {
		t.Fatal("fresh file store not zeroed")
	}
}

func TestFileStoreEndToEndMultiply(t *testing.T) {
	// A genuine out-of-core multiply: all three operands on disk.
	rng := rand.New(rand.NewSource(904))
	dir := t.TempDir()
	m, k, n := 48, 40, 56
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	want := inCoreRef(1, a, b, 0, matrix.NewDense(m, n))

	mk := func(name string, src *matrix.Dense, rows, cols int) *FileStore {
		fs, err := CreateFileStore(filepath.Join(dir, name), rows, cols)
		if err != nil {
			t.Fatal(err)
		}
		if src != nil {
			if err := fs.WriteTile(0, 0, src); err != nil {
				t.Fatal(err)
			}
		}
		return fs
	}
	fa := mk("a.mat", a, m, k)
	defer fa.Close()
	fb := mk("b.mat", b, k, n)
	defer fb.Close()
	fc := mk("c.mat", nil, m, n)
	defer fc.Close()

	if err := Multiply(fc, fa, fb, 1, 0, &Options{WorkspaceWords: 3 * 16 * 16, Config: oocCfg}); err != nil {
		t.Fatal(err)
	}
	got := matrix.NewDense(m, n)
	if err := fc.ReadTile(0, 0, got); err != nil {
		t.Fatal(err)
	}
	if d := matrix.MaxAbsDiff(got, want); d > 1e-10*float64(k) {
		t.Fatalf("file-backed multiply off by %g", d)
	}
}
