// Package outofcore addresses the paper's Section 5 future-work item
// "extend our implementation to use virtual memory": multiplying matrices
// that do not fit in main memory by staging tiles through a bounded
// in-core workspace, with the in-core tile products computed by DGEFMM.
//
// Operands live behind the Store interface. Two implementations are
// provided: MemStore (an in-memory backing array with I/O accounting — the
// simulated slow store used by tests and benches) and FileStore (tiles
// serialized to a real file, demonstrating genuine out-of-core operation).
//
// The classic tiled algorithm reads each A and B tile ⌈n/t⌉ times, so the
// slow-storage traffic is ≈ 2·mkn/t + 2·mn words for tile order t; the
// accounting in MemStore lets tests check that formula, quantifying the
// memory/traffic trade-off the paper's models reason about.
package outofcore

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// Store is a matrix in slow storage, accessed by rectangular tiles.
type Store interface {
	// Dims returns the matrix dimensions.
	Dims() (rows, cols int)
	// ReadTile fills dst with the tile whose top-left corner is (i0, j0);
	// dst's shape selects the tile extent.
	ReadTile(i0, j0 int, dst *matrix.Dense) error
	// WriteTile stores src at (i0, j0).
	WriteTile(i0, j0 int, src *matrix.Dense) error
}

// MemStore is a Store over an in-memory matrix, with I/O accounting. It is
// the simulated virtual-memory backing used by the tests and benches.
type MemStore struct {
	M *matrix.Dense
	// WordsRead and WordsWritten count slow-storage traffic.
	WordsRead, WordsWritten int64
}

// NewMemStore wraps a matrix.
func NewMemStore(m *matrix.Dense) *MemStore { return &MemStore{M: m} }

// Dims implements Store.
func (s *MemStore) Dims() (int, int) { return s.M.Rows, s.M.Cols }

// ReadTile implements Store.
func (s *MemStore) ReadTile(i0, j0 int, dst *matrix.Dense) error {
	if i0 < 0 || j0 < 0 || i0+dst.Rows > s.M.Rows || j0+dst.Cols > s.M.Cols {
		return fmt.Errorf("outofcore: ReadTile(%d,%d,%dx%d) out of range", i0, j0, dst.Rows, dst.Cols)
	}
	dst.CopyFrom(s.M.Slice(i0, j0, dst.Rows, dst.Cols))
	s.WordsRead += int64(dst.Rows) * int64(dst.Cols)
	return nil
}

// WriteTile implements Store.
func (s *MemStore) WriteTile(i0, j0 int, src *matrix.Dense) error {
	if i0 < 0 || j0 < 0 || i0+src.Rows > s.M.Rows || j0+src.Cols > s.M.Cols {
		return fmt.Errorf("outofcore: WriteTile(%d,%d,%dx%d) out of range", i0, j0, src.Rows, src.Cols)
	}
	s.M.Slice(i0, j0, src.Rows, src.Cols).CopyFrom(src)
	s.WordsWritten += int64(src.Rows) * int64(src.Cols)
	return nil
}

// FileStore keeps a column-major matrix in a file of float64 values —
// genuine out-of-core storage through the OS page cache.
type FileStore struct {
	f          *os.File
	rows, cols int
}

// CreateFileStore makes a zero-filled rows×cols file-backed matrix at path.
func CreateFileStore(path string, rows, cols int) (*FileStore, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(int64(rows) * int64(cols) * 8); err != nil {
		f.Close()
		return nil, err
	}
	return &FileStore{f: f, rows: rows, cols: cols}, nil
}

// Close releases the file handle.
func (s *FileStore) Close() error { return s.f.Close() }

// Dims implements Store.
func (s *FileStore) Dims() (int, int) { return s.rows, s.cols }

func (s *FileStore) offset(i, j int) int64 {
	return (int64(j)*int64(s.rows) + int64(i)) * 8
}

// ReadTile implements Store.
func (s *FileStore) ReadTile(i0, j0 int, dst *matrix.Dense) error {
	if i0 < 0 || j0 < 0 || i0+dst.Rows > s.rows || j0+dst.Cols > s.cols {
		return fmt.Errorf("outofcore: ReadTile out of range")
	}
	buf := make([]byte, dst.Rows*8)
	for j := 0; j < dst.Cols; j++ {
		if _, err := s.f.ReadAt(buf, s.offset(i0, j0+j)); err != nil {
			return err
		}
		for i := 0; i < dst.Rows; i++ {
			bits := binary.LittleEndian.Uint64(buf[i*8:])
			dst.Set(i, j, math.Float64frombits(bits))
		}
	}
	return nil
}

// WriteTile implements Store.
func (s *FileStore) WriteTile(i0, j0 int, src *matrix.Dense) error {
	if i0 < 0 || j0 < 0 || i0+src.Rows > s.rows || j0+src.Cols > s.cols {
		return fmt.Errorf("outofcore: WriteTile out of range")
	}
	buf := make([]byte, src.Rows*8)
	for j := 0; j < src.Cols; j++ {
		for i := 0; i < src.Rows; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(src.At(i, j)))
		}
		if _, err := s.f.WriteAt(buf, s.offset(i0, j0+j)); err != nil {
			return err
		}
	}
	return nil
}

// Options configures an out-of-core multiplication.
type Options struct {
	// WorkspaceWords bounds the in-core words for the three live tiles.
	// The tile order is derived from it. 0 selects 3·256² (three 256-order
	// tiles).
	WorkspaceWords int
	// Config is the DGEFMM configuration for the in-core tile products;
	// nil selects defaults.
	Config *strassen.Config
}

func (o *Options) workspace() int {
	if o == nil || o.WorkspaceWords <= 0 {
		return 3 * 256 * 256
	}
	return o.WorkspaceWords
}

func (o *Options) config() *strassen.Config {
	if o == nil {
		return nil
	}
	return o.Config
}

// TileOrder returns the square tile order implied by a workspace budget:
// three tiles (one each of A, B, C) must fit.
func TileOrder(workspaceWords int) int {
	t := int(math.Sqrt(float64(workspaceWords) / 3))
	if t < 1 {
		t = 1
	}
	return t
}

// Multiply computes C ← alpha·A·B + beta·C entirely through tile reads and
// writes: only three t×t tiles are in core at any time (plus DGEFMM's own
// workspace for a t-order product). A is m×k, B is k×n, C is m×n.
func Multiply(c, a, b Store, alpha, beta float64, opt *Options) error {
	m, k := a.Dims()
	k2, n := b.Dims()
	cm, cn := c.Dims()
	if k != k2 || cm != m || cn != n {
		return fmt.Errorf("outofcore: shape mismatch: A %dx%d, B %dx%d, C %dx%d", m, k, k2, n, cm, cn)
	}
	t := TileOrder(opt.workspace())
	cfg := opt.config()

	ta := matrix.NewDense(t, t)
	tb := matrix.NewDense(t, t)
	tc := matrix.NewDense(t, t)

	for i0 := 0; i0 < m; i0 += t {
		ti := minInt(t, m-i0)
		for j0 := 0; j0 < n; j0 += t {
			tj := minInt(t, n-j0)
			ctile := tc.Slice(0, 0, ti, tj)
			if err := c.ReadTile(i0, j0, ctile); err != nil {
				return err
			}
			if beta != 1 {
				ctile.Scale(beta)
			}
			for l0 := 0; l0 < k; l0 += t {
				tl := minInt(t, k-l0)
				atile := ta.Slice(0, 0, ti, tl)
				btile := tb.Slice(0, 0, tl, tj)
				if err := a.ReadTile(i0, l0, atile); err != nil {
					return err
				}
				if err := b.ReadTile(l0, j0, btile); err != nil {
					return err
				}
				// In-core product on DGEFMM: ctile += alpha·atile·btile.
				strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, ti, tj, tl, alpha,
					atile.Data, atile.Stride, btile.Data, btile.Stride, 1, ctile.Data, ctile.Stride)
			}
			if err := c.WriteTile(i0, j0, ctile); err != nil {
				return err
			}
		}
	}
	return nil
}

// PredictTraffic returns the slow-storage words the tiled algorithm moves
// for an m×k by k×n multiply with tile order t: each C tile is read and
// written once, and the A row-panel and B column-panel are re-read for
// every C tile row/column.
func PredictTraffic(m, k, n, t int) (read, written int64) {
	tilesI := int64((m + t - 1) / t)
	tilesJ := int64((n + t - 1) / t)
	read = int64(m)*int64(n) + // C in
		tilesJ*int64(m)*int64(k) + // A once per C tile column
		tilesI*int64(k)*int64(n) // B once per C tile row
	written = int64(m) * int64(n)
	return read, written
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
