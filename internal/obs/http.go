package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
)

// expvarOnce guards process-global expvar names (expvar.Publish panics on
// duplicates; tests and tools may build several collectors).
var (
	expvarMu        sync.Mutex
	expvarPublished = map[string]bool{}
)

// PublishExpvar exposes the collector under the given expvar name (e.g.
// "dgefmm"): the published variable renders a full Snapshot on every
// /debug/vars read. Re-publishing an existing name atomically redirects it
// to this collector.
func (c *Collector) PublishExpvar(name string) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	target := c
	if expvarPublished[name] {
		// The name exists; repoint it. expvar offers no replace, so the
		// published closure reads through an indirection we own.
		expvarTargets.Store(name, target)
		return
	}
	expvarPublished[name] = true
	expvarTargets.Store(name, target)
	expvar.Publish(name, expvar.Func(func() any {
		if v, ok := expvarTargets.Load(name); ok {
			return v.(*Collector).Snapshot()
		}
		return nil
	}))
}

var expvarTargets sync.Map

// DebugMux returns an http.ServeMux with the full live-observability
// surface:
//
//	/debug/vars          expvar (includes the collector if published)
//	/debug/pprof/...     net/http/pprof profiles (cpu, heap, goroutine, ...)
//	/metrics             the collector's Snapshot as JSON
//	/openmetrics         the registry in OpenMetrics/Prometheus text format
//	/trace               the recorded spans in Chrome trace-event format
//	/spans               the recursion forest as nested JSON
//
// A nil collector serves only the expvar and pprof endpoints.
func DebugMux(c *Collector) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if c != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = c.Snapshot().WriteJSON(w)
		})
		mux.HandleFunc("/openmetrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type",
				"application/openmetrics-text; version=1.0.0; charset=utf-8")
			_ = c.Snapshot().Metrics.WriteOpenMetrics(w)
		})
		mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = c.Spans.WriteChromeTrace(w)
		})
		mux.HandleFunc("/spans", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = c.Spans.WriteJSON(w)
		})
	}
	return mux
}

// StartDebugServer binds addr (e.g. ":6060" or "127.0.0.1:0") and serves
// DebugMux(c) in the background, publishing the collector on expvar as
// "dgefmm" first. It returns the server and the bound address (useful when
// addr requested port 0). Shut down with srv.Close().
func StartDebugServer(addr string, c *Collector) (srv *http.Server, bound string, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	if c != nil {
		c.PublishExpvar("dgefmm")
	}
	srv = &http.Server{Handler: DebugMux(c)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr().String(), nil
}
