//go:build !linux

package obs

import "errors"

// perf_event_open is Linux-only; elsewhere the reader degrades exactly
// like an unprivileged Linux host: OpenPerf fails with
// ErrPerfUnavailable, PerfAvailable is false, and MeasurePerf runs the
// region uncounted.

// ErrPerfUnavailable is returned by OpenPerf on every non-Linux host.
var ErrPerfUnavailable = errors.New("perf_event_open unavailable")

// PerfReader is unconstructible here; the type exists so cross-platform
// code can hold a *PerfReader.
type PerfReader struct{}

// OpenPerf always fails off Linux.
func OpenPerf() (*PerfReader, error) { return nil, ErrPerfUnavailable }

// Start fails; a *PerfReader cannot be obtained here.
func (r *PerfReader) Start() error { return ErrPerfUnavailable }

// Stop fails; a *PerfReader cannot be obtained here.
func (r *PerfReader) Stop() error { return ErrPerfUnavailable }

// Read fails; a *PerfReader cannot be obtained here.
func (r *PerfReader) Read() (PerfCounts, error) { return PerfCounts{}, ErrPerfUnavailable }

// Close is a no-op.
func (r *PerfReader) Close() {}

// PerfAvailable is always false off Linux.
func PerfAvailable() bool { return false }

// MeasurePerf runs f uncounted.
func MeasurePerf(f func()) (PerfCounts, bool) {
	f()
	return PerfCounts{}, false
}
