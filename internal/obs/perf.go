package obs

// PerfCounts is one measured interval of hardware counters. The zero
// value means "nothing counted". TimeEnabled/TimeRunning expose the
// kernel's multiplexing accounting; when the PMU was shared and the group
// only ran part-time, values are linearly rescaled and Scaled is set.
type PerfCounts struct {
	// Cycles is unhalted CPU cycles (user space only).
	Cycles int64 `json:"cycles"`
	// Instructions is retired instructions (user space only).
	Instructions int64 `json:"instructions"`
	// LLCMisses is last-level-cache misses — the roofline's "did this
	// region stream from DRAM" signal.
	LLCMisses int64 `json:"llc_misses"`
	// TimeEnabled and TimeRunning are the kernel's scheduling times (ns).
	TimeEnabled int64 `json:"time_enabled_ns"`
	TimeRunning int64 `json:"time_running_ns"`
	// Scaled reports that values were extrapolated due to multiplexing.
	Scaled bool `json:"scaled,omitempty"`
}

// IPC returns instructions per cycle (0 when nothing was counted).
func (c PerfCounts) IPC() float64 {
	if c.Cycles <= 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// MissesPerKiloInstruction returns LLC misses per 1000 retired
// instructions, the usual normalized locality figure.
func (c PerfCounts) MissesPerKiloInstruction() float64 {
	if c.Instructions <= 0 {
		return 0
	}
	return 1000 * float64(c.LLCMisses) / float64(c.Instructions)
}
