package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	"repro/internal/strassen"
)

// liveCollector builds a collector with enough recorded state that every
// endpoint has something non-trivial to serve.
func liveCollector() *Collector {
	c := NewCollector()
	c.Registry.Counter("dgefmm.calls").Add(2)
	c.Registry.Histogram("dgefmm.latency.ns").Observe(42 * time.Microsecond)
	id := c.Spans.BeginSpan(0, strassen.TraceEvent{M: 256, K: 256, N: 256, Action: "base"})
	c.Spans.EndSpan(id)
	prof := c.Phases()
	s := prof.Begin(0)
	s.End(1<<20, 1<<16)
	return c
}

func get(t *testing.T, base, path string) (status int, contentType, body string) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(b)
}

// TestDebugServerPhaseAndOpenMetrics covers the endpoints the original
// TestDebugServerEndpoints (obs_test.go) does not: the OpenMetrics
// exposition, the /spans forest, and the phase bridge surfacing in both
// JSON and scrape forms.
func TestDebugServerPhaseAndOpenMetrics(t *testing.T) {
	c := liveCollector()
	srv, bound, err := StartDebugServer("127.0.0.1:0", c)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + bound

	t.Run("metrics_json", func(t *testing.T) {
		status, ct, body := get(t, base, "/metrics")
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if !strings.HasPrefix(ct, "application/json") {
			t.Errorf("Content-Type %q", ct)
		}
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("body not a Snapshot: %v", err)
		}
		if snap.Metrics.Counters["dgefmm.calls"] != 2 {
			t.Errorf("snapshot counters = %v", snap.Metrics.Counters)
		}
		if len(snap.Phases) == 0 {
			t.Error("snapshot has no phase stats")
		}
	})

	t.Run("openmetrics", func(t *testing.T) {
		status, ct, body := get(t, base, "/openmetrics")
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if !strings.HasPrefix(ct, "application/openmetrics-text") {
			t.Errorf("Content-Type %q", ct)
		}
		samples, types := parseExposition(t, body)
		if samples["dgefmm_calls_total"] != 2 {
			t.Errorf("dgefmm_calls_total = %v, want 2", samples["dgefmm_calls_total"])
		}
		if types["dgefmm_latency_seconds"] != "histogram" {
			t.Errorf("histogram family missing: %v", types)
		}
		// The collector's phase bridge must surface in the scrape.
		if _, ok := samples["phase_kernel_pack_a_flops"]; !ok {
			t.Errorf("phase gauge family missing from exposition; samples: %d", len(samples))
		}
	})

	t.Run("spans_json", func(t *testing.T) {
		status, _, body := get(t, base, "/spans")
		if status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		var v any
		if err := json.Unmarshal([]byte(body), &v); err != nil {
			t.Fatalf("body not JSON: %v", err)
		}
	})

}

func TestDebugMuxNilCollector(t *testing.T) {
	mux := DebugMux(nil)
	// A nil collector must not register the collector endpoints; hitting
	// them through the mux yields 404, and building the mux must not panic.
	for _, path := range []string{"/metrics", "/openmetrics", "/trace", "/spans"} {
		req, _ := http.NewRequest("GET", path, nil)
		_, pattern := mux.Handler(req)
		if pattern != "" {
			t.Errorf("nil collector registered %s (pattern %q)", path, pattern)
		}
	}
}

// TestDebugServerShutdownLeaksNoGoroutines starts and stops a server and
// verifies the goroutine count returns to baseline, so long calibration
// runs can cycle debug servers without accumulating leaked acceptors.
// Run under -race in CI.
func TestDebugServerShutdownLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		srv, bound, err := StartDebugServer("127.0.0.1:0", liveCollector())
		if err != nil {
			t.Fatal(err)
		}
		// Exercise a request so keep-alive/conn goroutines exist, then close.
		if status, _, _ := get(t, "http://"+bound, "/metrics"); status != http.StatusOK {
			t.Fatalf("status %d", status)
		}
		if err := srv.Close(); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		after := runtime.NumGoroutine()
		if after <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines: %d before, %d after server shutdowns", before, after)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
