package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"repro/internal/strassen"
)

// Span is one timed node of the DGEFMM recursion tree: the trace event's
// identity (action, depth, problem shape) plus wall-clock timing relative
// to the recorder's epoch and a display track for Chrome trace export.
type Span struct {
	// ID is the span's identifier (≥ 1); Parent is the enclosing span's ID,
	// 0 for a root.
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Action, Depth, M, K, N mirror the strassen.TraceEvent fields.
	Action string `json:"action"`
	Depth  int    `json:"depth"`
	M      int    `json:"m"`
	K      int    `json:"k"`
	N      int    `json:"n"`
	// Track is the display lane: children of a "parallel" node each get a
	// fresh track (they genuinely overlap in time), everything else inherits
	// its parent's track.
	Track int `json:"track"`
	// StartNS is nanoseconds since the recorder's epoch; DurNS is the span's
	// wall time, or -1 while the span is still open.
	StartNS int64 `json:"start_ns"`
	DurNS   int64 `json:"dur_ns"`
}

// Flops is the standard-algorithm operation count 2mkn of the span's
// problem. For schedule spans this is the *effective* count — the work a
// standard multiply would have needed — which is exactly the convention the
// paper's MFLOPS plots use.
func (s Span) Flops() float64 {
	return 2 * float64(s.M) * float64(s.K) * float64(s.N)
}

// GFLOPS is the span's effective compute rate (2mkn per wall second,
// in units of 10⁹); 0 while open or for zero-duration spans.
func (s Span) GFLOPS() float64 {
	if s.DurNS <= 0 {
		return 0
	}
	// flops per nanosecond ≡ Gflop/s.
	return s.Flops() / float64(s.DurNS)
}

// SpanRecorder implements strassen.SpanTracer: it records every traced
// recursion node as a timed, parented Span. It is safe for concurrent use
// by the parallel schedule.
type SpanRecorder struct {
	// Limit bounds the number of recorded spans (0 = unlimited). Once
	// reached, whole subtrees are dropped — BeginSpan returns a negative ID
	// and descendants of dropped spans are not recorded — while event
	// counting elsewhere stays exact. Dropped() reports how many were shed.
	Limit int

	epoch     time.Time
	mu        sync.Mutex
	spans     []Span
	open      int
	dropped   int64
	nextTrack int
}

// NewSpanRecorder returns an empty recorder with its epoch set to now and
// the DefaultSpanLimit installed.
func NewSpanRecorder() *SpanRecorder {
	return &SpanRecorder{Limit: DefaultSpanLimit, epoch: time.Now()}
}

// DefaultSpanLimit bounds recorded spans in NewSpanRecorder (≈ 88 MB of
// spans at worst); long sweeps that want everything can raise or zero the
// limit explicitly.
const DefaultSpanLimit = 1 << 20

// Event implements strassen.Tracer. The recorder takes everything it needs
// from the BeginSpan/EndSpan bracket, so the plain event stream is ignored;
// counting lives in the Collector's metrics.
func (r *SpanRecorder) Event(strassen.TraceEvent) {}

// BeginSpan implements strassen.SpanTracer.
func (r *SpanRecorder) BeginSpan(parent int64, e strassen.TraceEvent) int64 {
	now := time.Since(r.epoch).Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	if parent < 0 || (r.Limit > 0 && len(r.spans) >= r.Limit) {
		r.dropped++
		return -1
	}
	id := int64(len(r.spans)) + 1
	track := 0
	if parent >= 1 && parent <= int64(len(r.spans)) {
		ps := &r.spans[parent-1]
		if ps.Action == "parallel" {
			r.nextTrack++
			track = r.nextTrack
		} else {
			track = ps.Track
		}
	}
	r.spans = append(r.spans, Span{
		ID: id, Parent: parent,
		Action: e.Action, Depth: e.Depth, M: e.M, K: e.K, N: e.N,
		Track: track, StartNS: now, DurNS: -1,
	})
	r.open++
	return id
}

// EndSpan implements strassen.SpanTracer.
func (r *SpanRecorder) EndSpan(id int64) { r.end(id) }

// end closes the span and returns it (zero Span, false for dropped or
// unknown IDs).
func (r *SpanRecorder) end(id int64) (Span, bool) {
	now := time.Since(r.epoch).Nanoseconds()
	r.mu.Lock()
	defer r.mu.Unlock()
	if id < 1 || id > int64(len(r.spans)) {
		return Span{}, false
	}
	s := &r.spans[id-1]
	if s.DurNS < 0 {
		s.DurNS = now - s.StartNS
		r.open--
	}
	return *s, true
}

// Spans returns a copy of all recorded spans in ID order.
func (r *SpanRecorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Len returns the number of recorded spans.
func (r *SpanRecorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Open returns how many spans are currently open (0 after every DGEFMM
// call has returned).
func (r *SpanRecorder) Open() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.open
}

// Dropped returns how many spans were shed by the Limit.
func (r *SpanRecorder) Dropped() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// Reset discards all recorded spans and restarts the epoch.
func (r *SpanRecorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.spans = nil
	r.open = 0
	r.dropped = 0
	r.nextTrack = 0
	r.epoch = time.Now()
}

// SpanNode is a Span with resolved children, for tree-shaped JSON export.
type SpanNode struct {
	Span
	GFLOPS   float64     `json:"gflops"`
	Children []*SpanNode `json:"children,omitempty"`
}

// Tree resolves the recorded spans into their recursion forest (one root
// per traced top-level call), children ordered by start time.
func (r *SpanRecorder) Tree() []*SpanNode {
	spans := r.Spans()
	nodes := make(map[int64]*SpanNode, len(spans))
	for _, s := range spans {
		nodes[s.ID] = &SpanNode{Span: s, GFLOPS: s.GFLOPS()}
	}
	var roots []*SpanNode
	for _, s := range spans {
		n := nodes[s.ID]
		if p, ok := nodes[s.Parent]; ok {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	order := func(ns []*SpanNode) {
		sort.Slice(ns, func(i, j int) bool { return ns[i].StartNS < ns[j].StartNS })
	}
	for _, n := range nodes {
		order(n.Children)
	}
	order(roots)
	return roots
}

// WriteJSON writes the recursion forest as indented JSON.
func (r *SpanRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Spans []*SpanNode `json:"spans"`
	}{r.Tree()})
}

// chromeEvent is one Chrome trace-event ("X" = complete event with
// timestamp and duration, microsecond units).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the spans in Chrome trace-event format (a JSON
// array of complete events), loadable in Perfetto (ui.perfetto.dev) or
// chrome://tracing. Tracks (tid) separate concurrently running subtrees so
// the parallel schedule renders as overlapping lanes.
func (r *SpanRecorder) WriteChromeTrace(w io.Writer) error {
	spans := r.Spans()
	events := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		if s.DurNS < 0 {
			continue // still open; a finished call never leaves these behind
		}
		events = append(events, chromeEvent{
			Name: fmt.Sprintf("%s %dx%dx%d", s.Action, s.M, s.K, s.N),
			Cat:  "dgefmm",
			Ph:   "X",
			TS:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			PID:  1,
			TID:  s.Track + 1,
			Args: map[string]any{
				"depth":  s.Depth,
				"gflops": s.GFLOPS(),
				"span":   s.ID,
				"parent": s.Parent,
			},
		})
	}
	return json.NewEncoder(w).Encode(events)
}
