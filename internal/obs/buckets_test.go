package obs

import (
	"math"
	"testing"
	"time"
)

// bucketIndex returns the index of the single populated bucket after one
// observation, and -1 if the histogram is empty or multiply populated.
func bucketIndex(t *testing.T, d time.Duration) int {
	t.Helper()
	var h Histogram
	h.Observe(d)
	idx := -1
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if n != 1 || idx != -1 {
				t.Fatalf("Observe(%d): bucket %d has count %d (prev hit %d)", d, i, n, idx)
			}
			idx = i
		}
	}
	if idx == -1 {
		t.Fatalf("Observe(%d): no bucket populated", d)
	}
	return idx
}

// TestBucketBoundariesAtPowersOfTwo pins the log2 bucket assignment,
// especially at the exact powers of two where an off-by-one would
// silently misattribute latencies: bucket i covers [2^(i-1), 2^i), so an
// exact 2^k lands in bucket k+1, and 2^k−1 in bucket k.
func TestBucketBoundariesAtPowersOfTwo(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{
		{0, 0},
		{1, 1},
		{2, 2},
		{3, 2},
		{4, 3},
		{7, 3},
		{8, 4},
		{1023, 10},
		{1024, 11},
		{1025, 11},
		{1 << 20, 21},
		{(1 << 20) - 1, 20},
		{1 << 40, 41},
		{1 << 62, 63},
		{(1 << 62) - 1, 62},
		{math.MaxInt64, 63},
	}
	for _, tc := range cases {
		if got := bucketIndex(t, time.Duration(tc.ns)); got != tc.want {
			t.Errorf("Observe(%d ns): bucket %d, want %d", tc.ns, got, tc.want)
		}
	}
}

// TestBucketNegativeDurationClampsToZero: callers subtracting timestamps
// can hand a histogram a negative duration under clock steps; it must
// clamp into bucket 0, not index out of range or wrap.
func TestBucketNegativeDurationClampsToZero(t *testing.T) {
	if got := bucketIndex(t, -time.Second); got != 0 {
		t.Errorf("Observe(-1s): bucket %d, want 0", got)
	}
	var h Histogram
	h.Observe(-5)
	if h.sumNS.Load() != 0 {
		t.Errorf("negative observation contributed %d ns to sum, want 0", h.sumNS.Load())
	}
}

// TestBucketSnapshotBoundsArePowersOfTwo pins the snapshot's [Lo, Hi)
// bounds: Lo = 2^(i-1) (0 for bucket 0) and Hi = 2^i, except the
// overflow bucket 63, whose upper bound is capped at MaxInt64 — 1<<63
// would wrap negative and poison Quantile.
func TestBucketSnapshotBoundsArePowersOfTwo(t *testing.T) {
	var h Histogram
	h.Observe(0)               // bucket 0
	h.Observe(1)               // bucket 1
	h.Observe(1024)            // bucket 11
	h.Observe(math.MaxInt64)   // bucket 63 (overflow)
	h.Observe((1 << 62) - 100) // bucket 62

	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("Count = %d, want 5", s.Count)
	}
	want := []HistogramBucket{
		{LoNanos: 0, HiNanos: 1, Count: 1},
		{LoNanos: 1, HiNanos: 2, Count: 1},
		{LoNanos: 1 << 10, HiNanos: 1 << 11, Count: 1},
		{LoNanos: 1 << 61, HiNanos: 1 << 62, Count: 1},
		{LoNanos: 1 << 62, HiNanos: math.MaxInt64, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("got %d buckets, want %d: %+v", len(s.Buckets), len(want), s.Buckets)
	}
	for i, b := range s.Buckets {
		if b != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, b, want[i])
		}
		if b.HiNanos <= b.LoNanos {
			t.Errorf("bucket %d has non-positive width: [%d, %d)", i, b.LoNanos, b.HiNanos)
		}
	}
}

// TestQuantileOverflowBucketIsFinite is the regression test for the
// 1<<63 wrap: an observation in the top bucket must yield a positive
// quantile bound.
func TestQuantileOverflowBucketIsFinite(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	s := h.snapshot()
	if q := s.Quantile(1.0); q != math.MaxInt64 {
		t.Errorf("Quantile(1.0) = %d, want MaxInt64", q)
	}
	if q := s.Quantile(0.5); q <= 0 {
		t.Errorf("Quantile(0.5) = %d, want positive", q)
	}
}

// TestBucketAdjacentDurationsSplit verifies that durations one nanosecond
// apart across a power-of-two boundary land in adjacent buckets.
func TestBucketAdjacentDurationsSplit(t *testing.T) {
	for _, k := range []int{1, 4, 10, 20, 30, 40, 50, 61} {
		lo := bucketIndex(t, time.Duration(int64(1)<<k-1))
		hi := bucketIndex(t, time.Duration(int64(1)<<k))
		if hi != lo+1 {
			t.Errorf("2^%d boundary: %d ns → bucket %d, %d ns → bucket %d; want adjacent",
				k, int64(1)<<k-1, lo, int64(1)<<k, hi)
		}
	}
}
