// Package obs is the observability layer for DGEFMM: a low-overhead
// metrics registry (atomic counters, gauges and log-scale latency
// histograms), a timed span recorder that turns the strassen package's
// trace-event stream into a recursion tree with per-node wall time and
// derived GFLOPS, and a Collector that bundles both with bridges into the
// workspace accountant (internal/memtrack) and the parallel BLAS kernel
// (internal/blas.ParallelKernel).
//
// The paper's evaluation is entirely measurement — MFLOPS against DGEMM,
// temporary-memory high-water marks, where the cutoff criterion stops the
// recursion — and this package is what makes those measurements first-class
// and machine-readable: span trees export as JSON and as Chrome trace-event
// files loadable in Perfetto, metric snapshots export as JSON and over
// expvar, and the debug HTTP server makes long calibration runs profilable
// live through net/http/pprof.
//
// The design constraint throughout is that absence costs nothing: with no
// collector attached, DGEFMM's tracing fast path is a nil check, and all
// hot-path instruments here are single atomic operations.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d.
func (c *Counter) Add(d int64) { c.v.Add(d) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically settable integer instrument.
type Gauge struct{ v atomic.Int64 }

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// SetMax raises the gauge to v if v exceeds the current value.
func (g *Gauge) SetMax(v int64) {
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// FloatGauge is an atomically settable float64 instrument (GFLOPS, ratios,
// seconds).
type FloatGauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of log2 histogram buckets: bucket i counts
// observations with nanosecond durations in [2^(i-1), 2^i), which spans
// sub-nanosecond to ~2¹⁄₂ hours in 63 buckets.
const histBuckets = 64

// Histogram is a log2-scale latency histogram. Observations cost one atomic
// add each; there is no locking anywhere on the observation path.
type Histogram struct {
	count   atomic.Int64
	sumNS   atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sumNS.Add(ns)
	h.buckets[bits.Len64(uint64(ns))&(histBuckets-1)].Add(1)
}

// HistogramBucket is one populated histogram bucket: observations with
// durations in [Lo, Hi) nanoseconds.
type HistogramBucket struct {
	LoNanos int64 `json:"lo_ns"`
	HiNanos int64 `json:"hi_ns"`
	Count   int64 `json:"count"`
}

// HistogramSnapshot is an immutable view of a Histogram.
type HistogramSnapshot struct {
	Count     int64             `json:"count"`
	SumNanos  int64             `json:"sum_ns"`
	MeanNanos float64           `json:"mean_ns"`
	Buckets   []HistogramBucket `json:"buckets,omitempty"`
}

// Quantile returns an upper bound on the q-quantile (0 ≤ q ≤ 1) in
// nanoseconds, at log2 bucket resolution.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target >= s.Count {
		target = s.Count - 1
	}
	var seen int64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen > target {
			return b.HiNanos
		}
	}
	return s.Buckets[len(s.Buckets)-1].HiNanos
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), SumNanos: h.sumNS.Load()}
	if s.Count > 0 {
		s.MeanNanos = float64(s.SumNanos) / float64(s.Count)
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		lo := int64(0)
		if i > 0 {
			lo = int64(1) << (i - 1)
		}
		// Bucket 63 is the overflow bucket [2^62, MaxInt64]: 1<<63 would
		// wrap to MinInt64 and report a negative upper bound (and poison
		// Quantile), so cap it at the largest representable duration.
		hi := int64(math.MaxInt64)
		if i < histBuckets-1 {
			hi = int64(1) << i
		}
		s.Buckets = append(s.Buckets, HistogramBucket{LoNanos: lo, HiNanos: hi, Count: n})
	}
	return s
}

// Registry is a named-metric registry. Lookup is read-locked and metric
// handles are stable, so hot paths should look a metric up once and hold
// the pointer; updates through the handle are lock-free.
type Registry struct {
	mu          sync.RWMutex
	counters    map[string]*Counter
	gauges      map[string]*Gauge
	floatGauges map[string]*FloatGauge
	histograms  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		gauges:      make(map[string]*Gauge),
		floatGauges: make(map[string]*FloatGauge),
		histograms:  make(map[string]*Histogram),
	}
}

func registryGet[T any](r *Registry, m map[string]*T, name string) *T {
	r.mu.RLock()
	v, ok := m[name]
	r.mu.RUnlock()
	if ok {
		return v
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := m[name]; ok {
		return v
	}
	v = new(T)
	m[name] = v
	return v
}

// Counter returns (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter { return registryGet(r, r.counters, name) }

// Gauge returns (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge { return registryGet(r, r.gauges, name) }

// FloatGauge returns (creating if needed) the named float gauge.
func (r *Registry) FloatGauge(name string) *FloatGauge { return registryGet(r, r.floatGauges, name) }

// Histogram returns (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram { return registryGet(r, r.histograms, name) }

// MetricsSnapshot is an immutable copy of every metric in a Registry.
type MetricsSnapshot struct {
	Counters    map[string]int64             `json:"counters,omitempty"`
	Gauges      map[string]int64             `json:"gauges,omitempty"`
	FloatGauges map[string]float64           `json:"float_gauges,omitempty"`
	Histograms  map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the current value of every metric.
func (r *Registry) Snapshot() MetricsSnapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := MetricsSnapshot{
		Counters:    make(map[string]int64, len(r.counters)),
		Gauges:      make(map[string]int64, len(r.gauges)),
		FloatGauges: make(map[string]float64, len(r.floatGauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, g := range r.floatGauges {
		s.FloatGauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.snapshot()
	}
	return s
}

// Names returns every registered metric name, sorted, for reporting.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.floatGauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.floatGauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON.
func (s MetricsSnapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
