package obs

import (
	"errors"
	"testing"
)

// These tests must pass both where hardware counters work and where they
// do not (CI runners, containers with perf_event_paranoid, non-Linux):
// every branch asserts the degradation contract, none require the PMU.

func TestOpenPerfDegradesOrWorks(t *testing.T) {
	r, err := OpenPerf()
	if err != nil {
		if !errors.Is(err, ErrPerfUnavailable) {
			t.Fatalf("OpenPerf failed with a non-degradation error: %v", err)
		}
		t.Logf("perf unavailable on this host: %v", err)
		return
	}
	defer r.Close()
	if err := r.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	// Burn enough user-space work to observe nonzero counts.
	s := 0.0
	for i := 0; i < 1_000_000; i++ {
		s += float64(i) * 1.0000001
	}
	if s == 0 {
		t.Fatal("unreachable")
	}
	if err := r.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	c, err := r.Read()
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if c.Cycles <= 0 || c.Instructions <= 0 {
		t.Fatalf("counted nothing: %+v", c)
	}
	if ipc := c.IPC(); ipc <= 0 || ipc > 16 {
		t.Fatalf("implausible IPC %v from %+v", ipc, c)
	}
}

func TestPerfAvailableConsistentWithOpen(t *testing.T) {
	_, err := OpenPerf()
	avail := PerfAvailable()
	if (err == nil) != avail {
		t.Fatalf("PerfAvailable()=%v but OpenPerf err=%v", avail, err)
	}
}

func TestMeasurePerfAlwaysRunsRegion(t *testing.T) {
	ran := false
	c, ok := MeasurePerf(func() { ran = true })
	if !ran {
		t.Fatal("MeasurePerf did not run the region")
	}
	if ok && c.TimeEnabled <= 0 {
		t.Fatalf("ok but no enabled time: %+v", c)
	}
	if !ok && (c.Cycles != 0 || c.Instructions != 0) {
		t.Fatalf("not ok but nonzero counts: %+v", c)
	}
}

func TestPerfCountsDerived(t *testing.T) {
	c := PerfCounts{Cycles: 1000, Instructions: 2500, LLCMisses: 5}
	if got := c.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
	if got := c.MissesPerKiloInstruction(); got != 2 {
		t.Errorf("MPKI = %v, want 2", got)
	}
	var zero PerfCounts
	if zero.IPC() != 0 || zero.MissesPerKiloInstruction() != 0 {
		t.Error("zero counts must yield zero rates")
	}
}
