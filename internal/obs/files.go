package obs

import "os"

// WriteMetricsFile captures a Snapshot and writes it to path as indented
// JSON — the file format behind the CLIs' -metrics-out flag.
func (c *Collector) WriteMetricsFile(path string) error {
	return writeFile(path, func(f *os.File) error {
		return c.Snapshot().WriteJSON(f)
	})
}

// WriteTraceFile writes the recorded spans to path in Chrome trace-event
// format (loadable in Perfetto / chrome://tracing) — the file format behind
// the CLIs' -trace-out flag.
func (c *Collector) WriteTraceFile(path string) error {
	return writeFile(path, func(f *os.File) error {
		return c.Spans.WriteChromeTrace(f)
	})
}

func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
