package obs

import (
	"math/rand"
	"testing"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/strassen"
)

// The acceptance bar for the observability layer: with no collector
// attached, DGEFMM must pay nothing (the tracer check is a nil comparison);
// with a collector, overhead stays in the noise for real problem sizes.
// Compare:
//
//	go test ./internal/obs -bench 'DGEFMM' -benchtime 5x
func benchmarkDGEFMM(b *testing.B, collect bool) {
	const order = 256
	rng := rand.New(rand.NewSource(1))
	av := matrix.NewRandom(order, order, rng)
	bv := matrix.NewRandom(order, order, rng)
	cv := matrix.NewDense(order, order)
	cfg := strassen.DefaultConfig(nil)
	cfg.Tracker = memtrack.New()
	var col *Collector
	if collect {
		col = NewCollector()
		col.Attach(cfg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, order, order, order, 1,
			av.Data, av.Stride, bv.Data, bv.Stride, 0, cv.Data, cv.Stride)
	}
	b.StopTimer()
	if col != nil && col.Spans.Len() == 0 {
		b.Fatal("collector recorded nothing")
	}
}

func BenchmarkDGEFMMNoCollector(b *testing.B)   { benchmarkDGEFMM(b, false) }
func BenchmarkDGEFMMWithCollector(b *testing.B) { benchmarkDGEFMM(b, true) }
