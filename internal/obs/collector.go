package obs

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"repro/internal/blas"
	"repro/internal/memtrack"
	"repro/internal/phase"
	"repro/internal/sched"
	"repro/internal/strassen"
)

// Metric names the Collector maintains. Event counters are
// "dgefmm.events.<action>" (one per trace action: base, strassen1,
// strassen2, original, parallel, peel, peel-first, pad-dynamic, pad-static,
// fixup-ger, fixup-col, fixup-row) and span latency histograms are
// "dgefmm.span.<action>.ns".
const (
	metricEventPrefix = "dgefmm.events."
	metricSpanPrefix  = "dgefmm.span."
	metricMaxDepth    = "dgefmm.max_depth"
)

// Collector bundles the observability layer's instruments behind one handle
// that plugs into a strassen.Config as its Tracer. It implements
// strassen.SpanTracer: every recursion event increments a named counter,
// and every node's span is recorded (timed, parented) and its latency fed
// to a per-action histogram. Bridges pull workspace accounting from
// memtrack.Tracker, goroutine dispatch counts from blas.ParallelKernel,
// packing-work counters plus arena accounting from packed-style kernels
// (internal/kernel), and scheduler counters from work-stealing runtimes
// (internal/sched) into every Snapshot.
//
// A Collector is safe for concurrent use; attach one to many configs to
// aggregate, or one per call to isolate.
type Collector struct {
	// Registry holds the named metrics.
	Registry *Registry
	// Spans records the timed recursion tree.
	Spans *SpanRecorder

	mu       sync.Mutex
	trackers []*memtrack.Tracker
	kernels  []*blas.ParallelKernel
	packed   []packedKernel
	scheds   []*sched.Runtime
	phases   *phase.Profiler
}

// packedKernel is the structural interface internal/kernel's Packed
// satisfies: cumulative work counters plus a private packing arena. Kept
// structural so the collector observes any future kernel with the same
// shape without an import.
type packedKernel interface {
	blas.Kernel
	Counters() (mulAdds, packAWords, packBWords int64)
	Arena() *memtrack.Tracker
}

// NewCollector returns a Collector with a fresh registry and span recorder.
func NewCollector() *Collector {
	return &Collector{Registry: NewRegistry(), Spans: NewSpanRecorder()}
}

// Event implements strassen.Tracer.
func (c *Collector) Event(e strassen.TraceEvent) {
	c.Registry.Counter(metricEventPrefix + e.Action).Add(1)
	c.Registry.Gauge(metricMaxDepth).SetMax(int64(e.Depth))
}

// BeginSpan implements strassen.SpanTracer.
func (c *Collector) BeginSpan(parent int64, e strassen.TraceEvent) int64 {
	return c.Spans.BeginSpan(parent, e)
}

// EndSpan implements strassen.SpanTracer.
func (c *Collector) EndSpan(id int64) {
	if s, ok := c.Spans.end(id); ok {
		c.Registry.Histogram(metricSpanPrefix + s.Action + ".ns").Observe(time.Duration(s.DurNS))
	}
}

// ObserveTracker registers a workspace tracker whose stats fold into every
// Snapshot.
func (c *Collector) ObserveTracker(t *memtrack.Tracker) {
	if t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.trackers {
		if have == t {
			return
		}
	}
	c.trackers = append(c.trackers, t)
}

// ObserveSched registers a work-stealing runtime whose scheduler counters
// (tasks run, steals, idle time, concurrency high-water mark) fold into
// every Snapshot. Observing the same runtime twice is a no-op.
func (c *Collector) ObserveSched(rt *sched.Runtime) {
	if rt == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.scheds {
		if have == rt {
			return
		}
	}
	c.scheds = append(c.scheds, rt)
}

// ObserveKernel registers a kernel for Snapshot reporting. Two kernel
// shapes carry observable state: *blas.ParallelKernel (dispatch counts) and
// packed-style kernels with work counters and a packing arena (reported
// under Snapshot.Packed, separate from Snapshot.Memory so the workspace
// figure stays comparable to the paper's Table 1 bounds). Anything else is
// ignored.
func (c *Collector) ObserveKernel(k blas.Kernel) {
	if pkd, ok := k.(packedKernel); ok {
		c.mu.Lock()
		defer c.mu.Unlock()
		for _, have := range c.packed {
			if have == pkd {
				return
			}
		}
		c.packed = append(c.packed, pkd)
		return
	}
	pk, ok := k.(*blas.ParallelKernel)
	if !ok {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, have := range c.kernels {
		if have == pk {
			return
		}
	}
	c.kernels = append(c.kernels, pk)
}

// Attach wires the collector into a DGEFMM configuration: installs itself
// as the Tracer (composing with any tracer already present), ensures a
// workspace tracker exists, and registers the tracker and kernel for
// snapshots. A nil cfg starts from strassen.DefaultConfig. Returns cfg for
// chaining.
func (c *Collector) Attach(cfg *strassen.Config) *strassen.Config {
	if cfg == nil {
		cfg = strassen.DefaultConfig(nil)
	}
	switch prev := cfg.Tracer.(type) {
	case nil:
		cfg.Tracer = c
	case *Collector:
		if prev != c {
			cfg.Tracer = teeTracer{spans: c, also: prev}
		}
	default:
		cfg.Tracer = teeTracer{spans: c, also: prev}
	}
	if cfg.Tracker == nil {
		cfg.Tracker = memtrack.New()
	}
	c.ObserveTracker(cfg.Tracker)
	c.ObserveKernel(cfg.Kernel)
	c.ObserveSched(cfg.Sched)
	return cfg
}

// Phases returns the collector's phase profiler, creating it on first
// use. The profiler only accumulates while installed as the process-wide
// active profiler — use EnablePhases for the common scoped pattern.
func (c *Collector) Phases() *phase.Profiler {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.phases == nil {
		c.phases = &phase.Profiler{}
	}
	return c.phases
}

// EnablePhases installs the collector's profiler as the process-wide phase
// profiler (package internal/phase) so kernel packing, Strassen add/sub
// and quadrant traffic, peeling fixups, batch queue wait and arena draws
// are attributed into this collector's snapshots. The returned function
// restores the previously active profiler; defer it around the measured
// region. Under -tags phaseoff this is a no-op.
func (c *Collector) EnablePhases() (restore func()) {
	prev := phase.SetActive(c.Phases())
	return func() { phase.SetActive(prev) }
}

// teeTracer fans the event stream out to a pre-existing tracer while the
// collector keeps span duty (spans need a single ID authority).
type teeTracer struct {
	spans *Collector
	also  strassen.Tracer
}

func (t teeTracer) Event(e strassen.TraceEvent) {
	t.spans.Event(e)
	t.also.Event(e)
}

func (t teeTracer) BeginSpan(parent int64, e strassen.TraceEvent) int64 {
	return t.spans.BeginSpan(parent, e)
}

func (t teeTracer) EndSpan(id int64) { t.spans.EndSpan(id) }

// KernelStats is one observed ParallelKernel's dispatch accounting.
type KernelStats struct {
	Name       string `json:"name"`
	Dispatches int64  `json:"dispatches"`
	Goroutines int64  `json:"goroutines"`
}

// isaKernel is the optional structural interface through which a kernel
// reports the instruction set its inner loop dispatches to ("avx2+fma",
// "neon", "scalar"); internal/kernel's Packed implements it.
type isaKernel interface{ ISA() string }

// tileCountersKernel is the optional structural interface for kernels that
// count register-tile invocations by dispatch path (SIMD fast path vs
// scalar tail); a scalar-heavy ratio on a SIMD host flags a mis-dispatch.
type tileCountersKernel interface {
	TileCounters() (simd, scalar int64)
}

// fusedCountersKernel is the optional structural interface for kernels
// serving the fused Winograd hooks. A multiply routed through the fused
// driver shows mul_adds == 0 with fused_mul_adds > 0 — without this
// counter such a snapshot would look like the kernel never ran.
type fusedCountersKernel interface {
	FusedCounters() (fusedMulAdds int64)
}

// PackedStats is one observed packed kernel's work and arena accounting.
// Arena is the kernel's private packing-buffer arena, reported apart from
// Snapshot.Memory: the Strassen temporaries' accounting stays directly
// comparable to the paper's Table 1 while the packing workspace is bounded
// by strassen.Plan.KernelWords instead. ISA and the tile counters record
// which micro-kernel actually ran, so a report from a fallback host is
// distinguishable from a SIMD host's.
type PackedStats struct {
	Name         string         `json:"name"`
	ISA          string         `json:"isa,omitempty"`
	MulAdds      int64          `json:"mul_adds"`
	FusedMulAdds int64          `json:"fused_mul_adds,omitempty"`
	PackAWords   int64          `json:"pack_a_words"`
	PackBWords   int64          `json:"pack_b_words"`
	SIMDTiles    int64          `json:"simd_tiles,omitempty"`
	ScalarTiles  int64          `json:"scalar_tiles,omitempty"`
	Arena        memtrack.Stats `json:"arena"`
}

// SpanStats summarizes the recorded span forest.
type SpanStats struct {
	Total    int            `json:"total"`
	Open     int            `json:"open"`
	Dropped  int64          `json:"dropped"`
	MaxDepth int64          `json:"max_depth"`
	ByAction map[string]int `json:"by_action,omitempty"`
	// RootWallNS and RootGFLOPS describe the first root span (the usual
	// single-call case); zero when no closed root exists.
	RootWallNS int64   `json:"root_wall_ns"`
	RootGFLOPS float64 `json:"root_gflops"`
}

// Snapshot is the immutable stats struct the public API exposes: metrics,
// aggregated workspace accounting, kernel dispatch counts and the span
// summary, all taken at one instant.
type Snapshot struct {
	TakenAt time.Time       `json:"taken_at"`
	Metrics MetricsSnapshot `json:"metrics"`
	Memory  memtrack.Stats  `json:"memory"`
	Kernels []KernelStats   `json:"kernels,omitempty"`
	Packed  []PackedStats   `json:"packed,omitempty"`
	Sched   []sched.Stats   `json:"sched,omitempty"`
	Phases  []phase.Stat    `json:"phases,omitempty"`
	Spans   SpanStats       `json:"spans"`
}

// Snapshot captures the collector's complete current state. Memory stats
// are summed across observed trackers (peaks sum, matching the fact that
// the trackers' arenas coexist).
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	trackers := append([]*memtrack.Tracker(nil), c.trackers...)
	kernels := append([]*blas.ParallelKernel(nil), c.kernels...)
	packed := append([]packedKernel(nil), c.packed...)
	scheds := append([]*sched.Runtime(nil), c.scheds...)
	prof := c.phases
	c.mu.Unlock()

	s := Snapshot{TakenAt: time.Now()}
	for _, t := range trackers {
		ts := t.Stats()
		s.Memory.Live += ts.Live
		s.Memory.Peak += ts.Peak
		s.Memory.Allocs += ts.Allocs
		s.Memory.Reused += ts.Reused
	}
	for _, k := range kernels {
		d, g := k.Stats()
		s.Kernels = append(s.Kernels, KernelStats{Name: k.Name(), Dispatches: d, Goroutines: g})
	}
	for _, k := range packed {
		ma, pa, pb := k.Counters()
		ps := PackedStats{
			Name: k.Name(), MulAdds: ma, PackAWords: pa, PackBWords: pb,
			Arena: k.Arena().Stats(),
		}
		if ik, ok := k.(isaKernel); ok {
			ps.ISA = ik.ISA()
		}
		if tk, ok := k.(tileCountersKernel); ok {
			ps.SIMDTiles, ps.ScalarTiles = tk.TileCounters()
		}
		if fk, ok := k.(fusedCountersKernel); ok {
			ps.FusedMulAdds = fk.FusedCounters()
		}
		s.Packed = append(s.Packed, ps)
	}
	for _, rt := range scheds {
		s.Sched = append(s.Sched, rt.Stats())
	}

	spans := c.Spans.Spans()
	s.Spans.Total = len(spans)
	s.Spans.Open = c.Spans.Open()
	s.Spans.Dropped = c.Spans.Dropped()
	s.Spans.ByAction = make(map[string]int)
	for _, sp := range spans {
		s.Spans.ByAction[sp.Action]++
		if sp.Parent == 0 && s.Spans.RootWallNS == 0 && sp.DurNS > 0 {
			s.Spans.RootWallNS = sp.DurNS
			s.Spans.RootGFLOPS = sp.GFLOPS()
		}
	}

	// Fold the bridged figures into gauges so the expvar view carries them
	// too, then snapshot the registry last so it includes the update.
	c.Registry.Gauge("mem.live_words").Set(s.Memory.Live)
	c.Registry.Gauge("mem.peak_words").Set(s.Memory.Peak)
	c.Registry.Gauge("mem.allocs").Set(s.Memory.Allocs)
	c.Registry.Gauge("mem.reused").Set(s.Memory.Reused)
	var disp, gor int64
	for _, ks := range s.Kernels {
		disp += ks.Dispatches
		gor += ks.Goroutines
	}
	if len(s.Kernels) > 0 {
		c.Registry.Gauge("kernel.parallel.dispatches").Set(disp)
		c.Registry.Gauge("kernel.parallel.goroutines").Set(gor)
	}
	if len(s.Packed) > 0 {
		var ma, fma, pw, arenaPeak, simdTiles, scalarTiles int64
		for _, ps := range s.Packed {
			ma += ps.MulAdds
			fma += ps.FusedMulAdds
			pw += ps.PackAWords + ps.PackBWords
			arenaPeak += ps.Arena.Peak
			simdTiles += ps.SIMDTiles
			scalarTiles += ps.ScalarTiles
		}
		c.Registry.Gauge("kernel.packed.fused_mul_adds").Set(fma)
		c.Registry.Gauge("kernel.packed.mul_adds").Set(ma)
		c.Registry.Gauge("kernel.packed.pack_words").Set(pw)
		c.Registry.Gauge("kernel.packed.arena_peak_words").Set(arenaPeak)
		c.Registry.Gauge("kernel.packed.simd_tiles").Set(simdTiles)
		c.Registry.Gauge("kernel.packed.scalar_tiles").Set(scalarTiles)
	}
	if len(s.Sched) > 0 {
		// sched.* gauge family: counters sum across observed runtimes;
		// max_running takes the max (it is a per-runtime invariant bound by
		// that runtime's worker count, not an additive figure).
		var workers, tasks, steals, idle, maxRun int64
		for _, ss := range s.Sched {
			workers += int64(ss.Workers)
			tasks += ss.TasksRun
			steals += ss.Steals
			idle += ss.IdleNS
			if ss.MaxRunning > maxRun {
				maxRun = ss.MaxRunning
			}
		}
		c.Registry.Gauge("sched.workers").Set(workers)
		c.Registry.Gauge("sched.tasks_run").Set(tasks)
		c.Registry.Gauge("sched.steals").Set(steals)
		c.Registry.Gauge("sched.idle_ns").Set(idle)
		c.Registry.Gauge("sched.max_running").Set(maxRun)
	}
	if prof != nil {
		s.Phases = prof.Snapshot()
		for _, ps := range s.Phases {
			if ps.Count == 0 {
				continue
			}
			// phase.* gauge family: raw totals plus the derived rates
			// cmd/benchdiff and the OpenMetrics exposition consume.
			c.Registry.Gauge("phase." + ps.Name + ".count").Set(ps.Count)
			c.Registry.Gauge("phase." + ps.Name + ".ns").Set(ps.NS)
			c.Registry.Gauge("phase." + ps.Name + ".flops").Set(ps.Flops)
			c.Registry.Gauge("phase." + ps.Name + ".bytes").Set(ps.Bytes)
			c.Registry.FloatGauge("phase." + ps.Name + ".gflops").Set(ps.GFLOPS())
			c.Registry.FloatGauge("phase." + ps.Name + ".intensity").Set(ps.Intensity())
		}
	}
	s.Metrics = c.Registry.Snapshot()
	s.Spans.MaxDepth = s.Metrics.Gauges[metricMaxDepth]
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
