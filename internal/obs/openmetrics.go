package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// OpenMetrics/Prometheus text exposition for a MetricsSnapshot, so the
// debug server's registry can be scraped by any Prometheus-compatible
// agent without adding a client-library dependency.
//
// Mapping: registry counters become OpenMetrics counters (a "_total"
// sample), gauges and float gauges become gauges, and the log2 latency
// histograms become OpenMetrics histograms with cumulative "le" buckets
// at their power-of-two upper bounds (converted to seconds, the
// Prometheus base unit for time) plus "_sum" and "_count". Metric names
// are mangled to the [a-zA-Z_:][a-zA-Z0-9_:]* charset: dots and every
// other illegal rune become underscores ("phase.kernel.pack_a.ns" →
// "phase_kernel_pack_a_ns").

// writeOpenMetricsName mangles a registry name into the exposition charset.
func openMetricsName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if ok {
			b.WriteRune(r)
		} else {
			b.WriteByte('_')
		}
	}
	return b.String()
}

// fmtFloat renders a sample value; OpenMetrics uses decimal or scientific
// notation and forbids NaN-as-blank (NaN is spelled "NaN").
func fmtFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return fmt.Sprintf("%g", v)
}

// WriteOpenMetrics writes the snapshot in the OpenMetrics text format,
// terminated by the required "# EOF" line.
func (s MetricsSnapshot) WriteOpenMetrics(w io.Writer) error {
	// Deterministic order: sort each family's names.
	sorted := func(m map[string]int64) []string {
		names := make([]string, 0, len(m))
		for n := range m {
			names = append(names, n)
		}
		sort.Strings(names)
		return names
	}

	for _, name := range sorted(s.Counters) {
		n := openMetricsName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s_total %d\n", n, n, s.Counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sorted(s.Gauges) {
		n := openMetricsName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, s.Gauges[name]); err != nil {
			return err
		}
	}
	fgNames := make([]string, 0, len(s.FloatGauges))
	for n := range s.FloatGauges {
		fgNames = append(fgNames, n)
	}
	sort.Strings(fgNames)
	for _, name := range fgNames {
		n := openMetricsName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, fmtFloat(s.FloatGauges[name])); err != nil {
			return err
		}
	}

	histNames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		histNames = append(histNames, n)
	}
	sort.Strings(histNames)
	for _, name := range histNames {
		h := s.Histograms[name]
		// Registry histogram names end in ".ns"; the exposition is in
		// seconds, so swap the unit suffix rather than exposing _ns_seconds.
		base := strings.TrimSuffix(name, ".ns") + ".seconds"
		n := openMetricsName(base)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", n); err != nil {
			return err
		}
		var cum int64
		for _, b := range h.Buckets {
			cum += b.Count
			le := fmtFloat(float64(b.HiNanos) / 1e9)
			if b.HiNanos == math.MaxInt64 {
				le = "+Inf"
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, le, cum); err != nil {
				return err
			}
		}
		// The exposition's +Inf bucket must equal _count.
		if cum < h.Count || len(h.Buckets) == 0 || h.Buckets[len(h.Buckets)-1].HiNanos != math.MaxInt64 {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n",
			n, fmtFloat(float64(h.SumNanos)/1e9), n, h.Count); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}
