//go:build linux

package obs

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"syscall"
	"unsafe"
)

// Hardware-counter sampling via perf_event_open(2), implemented as a raw
// syscall so no dependency outside the standard library is needed. One
// PerfReader owns a counter group — CPU cycles (leader), retired
// instructions, and LLC misses — measured for the calling thread across
// all CPUs it migrates over, user space only. Reading the group is a
// single read(2), so bracketing a region costs two syscalls plus two
// ioctls; that is cheap around a whole multiply but far too hot for a
// per-span bracket, which is why the span tree carries phase counters
// (package internal/phase) and hardware counts are sampled around regions:
// cmd/obsreport and cmd/benchdiff wrap each repetition in MeasurePerf.
//
// Degradation is part of the contract: unprivileged containers (ENOENT on
// an unmounted perf subsystem, EPERM/EACCES under perf_event_paranoid,
// ENOSYS under seccomp) must observe a clean error from OpenPerf and
// false from PerfAvailable, never a crash — CI's perf leg SKIPs on it.

// perf_event_open ABI constants (include/uapi/linux/perf_event.h).
const (
	perfTypeHardware = 0

	perfCountHWCPUCycles    = 0
	perfCountHWInstructions = 1
	perfCountHWCacheMisses  = 3 // LLC misses on most platforms

	perfFormatTotalTimeEnabled = 1 << 0
	perfFormatTotalTimeRunning = 1 << 1
	perfFormatGroup            = 1 << 3

	// attrBits flag bits (perf_event_attr bitfield, LSB first).
	attrDisabled      = 1 << 0
	attrExcludeKernel = 1 << 5
	attrExcludeHV     = 1 << 6

	perfIOCEnable    = 0x2400
	perfIOCDisable   = 0x2401
	perfIOCReset     = 0x2403
	perfIOCFlagGroup = 1

	perfFlagFDCloexec = 1 << 3
)

// perfEventAttr mirrors struct perf_event_attr through
// PERF_ATTR_SIZE_VER7 (128 bytes); unused trailing fields stay zero.
type perfEventAttr struct {
	typ              uint32
	size             uint32
	config           uint64
	samplePeriod     uint64
	sampleType       uint64
	readFormat       uint64
	bits             uint64
	wakeupEvents     uint32
	bpType           uint32
	config1          uint64
	config2          uint64
	branchSampleType uint64
	sampleRegsUser   uint64
	sampleStackUser  uint32
	clockID          int32
	sampleRegsIntr   uint64
	auxWatermark     uint32
	sampleMaxStack   uint16
	reserved2        uint16
	auxSampleSize    uint32
	reserved3        uint32
	sigData          uint64
}

// ErrPerfUnavailable wraps every "this host cannot count" failure mode so
// callers can branch on one sentinel.
var ErrPerfUnavailable = errors.New("perf_event_open unavailable")

// perfEventOpen wraps the raw syscall for the calling process, any CPU.
func perfEventOpen(attr *perfEventAttr, groupFD int) (int, error) {
	fd, _, errno := syscall.Syscall6(syscall.SYS_PERF_EVENT_OPEN,
		uintptr(unsafe.Pointer(attr)),
		0,                // pid 0: this process/thread
		^uintptr(0),      // cpu −1: any CPU
		uintptr(groupFD), // −1 for a new group leader
		perfFlagFDCloexec, 0)
	if errno != 0 {
		return -1, errno
	}
	return int(fd), nil
}

// degraded classifies errnos meaning "not available here" (as opposed to
// a programming error).
func degraded(err error) bool {
	var errno syscall.Errno
	if !errors.As(err, &errno) {
		return false
	}
	switch errno {
	case syscall.ENOENT, syscall.EPERM, syscall.EACCES, syscall.ENOSYS,
		syscall.ENODEV, syscall.EOPNOTSUPP, syscall.EBUSY, syscall.EMFILE:
		return true
	}
	return false
}

// PerfReader owns one hardware-counter group. Not safe for concurrent
// use; counts cover the whole process's threads' user-space execution
// (inherit is off, so child threads spawned before Open are included only
// via the calling thread — in practice wrap single multiplies, whose
// worker goroutines reuse existing threads).
type PerfReader struct {
	leader int // cycles fd; group leader
	fds    []int
}

// OpenPerf opens the counter group disabled. On hosts where hardware
// counting is not permitted or not present the returned error wraps
// ErrPerfUnavailable; any other error is a genuine failure.
func OpenPerf() (*PerfReader, error) {
	mk := func(config uint64, group int) (int, error) {
		attr := perfEventAttr{
			typ:        perfTypeHardware,
			size:       uint32(unsafe.Sizeof(perfEventAttr{})),
			config:     config,
			readFormat: perfFormatGroup | perfFormatTotalTimeEnabled | perfFormatTotalTimeRunning,
			bits:       attrExcludeKernel | attrExcludeHV,
		}
		if group == -1 {
			attr.bits |= attrDisabled // group starts stopped; siblings follow the leader
		}
		return perfEventOpen(&attr, group)
	}
	leader, err := mk(perfCountHWCPUCycles, -1)
	if err != nil {
		if degraded(err) {
			return nil, fmt.Errorf("%w: %v", ErrPerfUnavailable, err)
		}
		return nil, err
	}
	r := &PerfReader{leader: leader, fds: []int{leader}}
	for _, cfg := range []uint64{perfCountHWInstructions, perfCountHWCacheMisses} {
		fd, err := mk(cfg, leader)
		if err != nil {
			r.Close()
			if degraded(err) {
				return nil, fmt.Errorf("%w: %v", ErrPerfUnavailable, err)
			}
			return nil, err
		}
		r.fds = append(r.fds, fd)
	}
	return r, nil
}

func (r *PerfReader) ioctl(req uintptr) error {
	_, _, errno := syscall.Syscall(syscall.SYS_IOCTL, uintptr(r.leader), req, perfIOCFlagGroup)
	if errno != 0 {
		return errno
	}
	return nil
}

// Start zeroes and enables the group.
func (r *PerfReader) Start() error {
	if err := r.ioctl(perfIOCReset); err != nil {
		return err
	}
	return r.ioctl(perfIOCEnable)
}

// Stop disables the group; the counts stay readable.
func (r *PerfReader) Stop() error { return r.ioctl(perfIOCDisable) }

// Read returns the group's current counts. Under counter multiplexing
// (time_running < time_enabled) values are scaled up linearly and Scaled
// is set.
func (r *PerfReader) Read() (PerfCounts, error) {
	// Group read layout (no PERF_FORMAT_ID):
	// nr, time_enabled, time_running, value×nr.
	var buf [6 * 8]byte
	n, err := syscall.Read(r.leader, buf[:])
	if err != nil {
		return PerfCounts{}, err
	}
	if n < len(buf) {
		return PerfCounts{}, fmt.Errorf("perf: short group read: %d bytes", n)
	}
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(buf[i*8:]) }
	if u(0) != 3 {
		return PerfCounts{}, fmt.Errorf("perf: group has %d members, want 3", u(0))
	}
	c := PerfCounts{
		TimeEnabled:  int64(u(1)),
		TimeRunning:  int64(u(2)),
		Cycles:       int64(u(3)),
		Instructions: int64(u(4)),
		LLCMisses:    int64(u(5)),
	}
	if c.TimeRunning > 0 && c.TimeRunning < c.TimeEnabled {
		scale := float64(c.TimeEnabled) / float64(c.TimeRunning)
		c.Cycles = int64(float64(c.Cycles) * scale)
		c.Instructions = int64(float64(c.Instructions) * scale)
		c.LLCMisses = int64(float64(c.LLCMisses) * scale)
		c.Scaled = true
	}
	return c, nil
}

// Close releases the group's descriptors.
func (r *PerfReader) Close() {
	for _, fd := range r.fds {
		syscall.Close(fd)
	}
	r.fds = nil
}

var perfProbe struct {
	once sync.Once
	ok   bool
}

// PerfAvailable reports whether hardware counters can actually be opened
// on this host (probed once per process). cmd/benchdiff exposes it as the
// "perf_event" capability so perf-derived metrics SKIP rather than fail.
func PerfAvailable() bool {
	perfProbe.once.Do(func() {
		r, err := OpenPerf()
		if err == nil {
			r.Close()
			perfProbe.ok = true
		}
	})
	return perfProbe.ok
}

// MeasurePerf runs f with the hardware-counter group enabled and returns
// what it counted. ok is false when counters are unavailable (f still
// runs, uncounted) — callers degrade to FLOP/wall-clock attribution.
func MeasurePerf(f func()) (c PerfCounts, ok bool) {
	r, err := OpenPerf()
	if err != nil {
		f()
		return PerfCounts{}, false
	}
	defer r.Close()
	if err := r.Start(); err != nil {
		f()
		return PerfCounts{}, false
	}
	f()
	if err := r.Stop(); err != nil {
		return PerfCounts{}, false
	}
	c, err = r.Read()
	if err != nil {
		return PerfCounts{}, false
	}
	return c, true
}
