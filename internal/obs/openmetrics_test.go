package obs

import (
	"bufio"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"time"
)

// parseExposition is a minimal OpenMetrics text parser: it returns the
// sample name→value map and the TYPE declarations, and fails the test on
// any line that is neither a comment nor "name value" / "name{labels} value".
func parseExposition(t *testing.T, text string) (samples map[string]float64, types map[string]string) {
	t.Helper()
	samples = map[string]float64{}
	types = map[string]string{}
	sawEOF := false
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if sawEOF {
			t.Fatalf("content after # EOF: %q", line)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value  |  name value
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		for _, r := range strings.SplitN(name, "{", 2)[0] {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("illegal rune %q in metric name %q", r, name)
			}
		}
		samples[name] = v
	}
	if !sawEOF {
		t.Fatal("exposition not terminated by # EOF")
	}
	return samples, types
}

func TestOpenMetricsExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("dgefmm.calls").Add(3)
	r.Gauge("phase.kernel.micro.flops").Set(1 << 30)
	r.FloatGauge("phase.kernel.micro.gflops").Set(12.5)
	h := r.Histogram("dgefmm.latency.ns")
	h.Observe(900 * time.Nanosecond)  // bucket [512, 1024)
	h.Observe(1024 * time.Nanosecond) // bucket [1024, 2048)
	h.Observe(time.Duration(1 << 62)) // overflow bucket [2^62, MaxInt64]

	var sb strings.Builder
	if err := r.Snapshot().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	samples, types := parseExposition(t, sb.String())

	if got := samples["dgefmm_calls_total"]; got != 3 {
		t.Errorf("dgefmm_calls_total = %v, want 3", got)
	}
	if types["dgefmm_calls"] != "counter" {
		t.Errorf("dgefmm_calls TYPE = %q, want counter", types["dgefmm_calls"])
	}
	if got := samples["phase_kernel_micro_flops"]; got != float64(int64(1)<<30) {
		t.Errorf("phase_kernel_micro_flops = %v", got)
	}
	if got := samples["phase_kernel_micro_gflops"]; got != 12.5 {
		t.Errorf("phase_kernel_micro_gflops = %v, want 12.5", got)
	}

	// Histogram: ".ns" renamed to "_seconds", cumulative le buckets, the
	// +Inf bucket equals _count, and _sum is in seconds.
	if types["dgefmm_latency_seconds"] != "histogram" {
		t.Errorf("dgefmm_latency_seconds TYPE = %q, want histogram", types["dgefmm_latency_seconds"])
	}
	if got := samples["dgefmm_latency_seconds_count"]; got != 3 {
		t.Errorf("_count = %v, want 3", got)
	}
	wantSum := (900 + 1024 + float64(int64(1)<<62)) / 1e9
	if got := samples["dgefmm_latency_seconds_sum"]; math.Abs(got-wantSum)/wantSum > 1e-12 {
		t.Errorf("_sum = %v, want ≈%v", got, wantSum)
	}
	if got := samples[`dgefmm_latency_seconds_bucket{le="+Inf"}`]; got != 3 {
		t.Errorf(`+Inf bucket = %v, want 3 (must equal _count)`, got)
	}
	// 900 ns falls in the [512, 1024) bucket → cumulative count at
	// le=1024ns (1.024e-06 s) includes it; the exact rendered le string
	// comes from %g on 1024/1e9.
	le := fmt.Sprintf(`dgefmm_latency_seconds_bucket{le="%g"}`, 1024.0/1e9)
	if got, ok := samples[le]; !ok || got != 1 {
		t.Errorf("bucket %s = %v (present=%v), want 1", le, got, ok)
	}
	// Cumulative monotonicity across every rendered bucket.
	prev := -1.0
	for _, suffix := range []string{fmt.Sprintf("%g", 1024.0/1e9), fmt.Sprintf("%g", 2048.0/1e9), "+Inf"} {
		name := fmt.Sprintf(`dgefmm_latency_seconds_bucket{le="%s"}`, suffix)
		v, ok := samples[name]
		if !ok {
			continue
		}
		if v < prev {
			t.Errorf("bucket %s = %v < previous %v: not cumulative", name, v, prev)
		}
		prev = v
	}
}

func TestOpenMetricsEmptyRegistry(t *testing.T) {
	var sb strings.Builder
	if err := NewRegistry().Snapshot().WriteOpenMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "# EOF\n" {
		t.Errorf("empty registry exposition = %q, want just # EOF", got)
	}
}

func TestOpenMetricsNameMangling(t *testing.T) {
	cases := map[string]string{
		"phase.kernel.pack_a.ns": "phase_kernel_pack_a_ns",
		"a-b c/d":                "a_b_c_d",
		"9lives":                 "_lives", // leading digit is illegal
		"ok_name:42":             "ok_name:42",
	}
	for in, want := range cases {
		if got := openMetricsName(in); got != want {
			t.Errorf("openMetricsName(%q) = %q, want %q", in, got, want)
		}
	}
}
