package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/sched"
	"repro/internal/strassen"
)

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Counter("a").Add(2)
	r.Gauge("g").Set(7)
	r.Gauge("g").SetMax(5) // must not lower
	r.Gauge("g").SetMax(9)
	r.FloatGauge("f").Set(2.5)
	r.Histogram("h").Observe(100 * time.Nanosecond)
	r.Histogram("h").Observe(3 * time.Microsecond)

	s := r.Snapshot()
	if s.Counters["a"] != 5 {
		t.Errorf("counter = %d, want 5", s.Counters["a"])
	}
	if s.Gauges["g"] != 9 {
		t.Errorf("gauge = %d, want 9", s.Gauges["g"])
	}
	if s.FloatGauges["f"] != 2.5 {
		t.Errorf("float gauge = %v, want 2.5", s.FloatGauges["f"])
	}
	h := s.Histograms["h"]
	if h.Count != 2 || h.SumNanos != 3100 {
		t.Errorf("histogram count=%d sum=%d, want 2/3100", h.Count, h.SumNanos)
	}
	if q := h.Quantile(0.99); q < 3000 {
		t.Errorf("p99 = %dns, want ≥ 3000", q)
	}
	if q := h.Quantile(0); q > 256 {
		t.Errorf("p0 upper bound = %dns, want ≤ 256 (the 100ns bucket)", q)
	}

	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if back.Counters["a"] != 5 {
		t.Error("round-tripped counter lost")
	}
	if got := r.Names(); len(got) != 4 {
		t.Errorf("Names() = %v, want 4 entries", got)
	}
}

// run multiplies m×k by k×n through DGEFMM with the given config and
// returns the call's wall time.
func run(cfg *strassen.Config, m, k, n int, seed int64) time.Duration {
	rng := rand.New(rand.NewSource(seed))
	a := matrix.NewRandom(m, k, rng)
	b := matrix.NewRandom(k, n, rng)
	c := matrix.NewDense(m, n)
	start := time.Now()
	strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, n, k, 1,
		a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
	return time.Since(start)
}

// TestCollectorMatchesCountTracer is the acceptance check: a 512×512 DGEFMM
// call with a collector attached produces a span tree whose per-action
// counts match an identical run under the existing CountTracer, whose root
// wall time agrees with the call duration, and which exports valid Chrome
// trace-event JSON.
func TestCollectorMatchesCountTracer(t *testing.T) {
	const order = 512
	kern := blas.KernelByName("blocked")

	// Reference run: the pre-existing counting tracer.
	ref := strassen.NewCountTracer()
	refCfg := strassen.DefaultConfig(kern)
	refCfg.Tracer = ref
	run(refCfg, order, order, order, 42)

	// Observed run: identical configuration, collector attached.
	col := NewCollector()
	cfg := col.Attach(strassen.DefaultConfig(kern))
	wall := run(cfg, order, order, order, 42)

	snap := col.Snapshot()
	if snap.Spans.Open != 0 {
		t.Fatalf("%d spans left open after the call returned", snap.Spans.Open)
	}
	if snap.Spans.Dropped != 0 {
		t.Fatalf("%d spans dropped on a small run", snap.Spans.Dropped)
	}
	if snap.Spans.Total != ref.Total() {
		t.Fatalf("span count %d != CountTracer total %d", snap.Spans.Total, ref.Total())
	}
	for action, n := range snap.Spans.ByAction {
		if ref.Count(action) != n {
			t.Errorf("action %q: %d spans vs %d counted events", action, n, ref.Count(action))
		}
		if snap.Metrics.Counters[metricEventPrefix+action] != int64(n) {
			t.Errorf("action %q: event counter disagrees with span count", action)
		}
	}
	if snap.Spans.MaxDepth != int64(ref.MaxDepth()) {
		t.Errorf("max depth %d != CountTracer %d", snap.Spans.MaxDepth, ref.MaxDepth())
	}

	// The root span covers the whole recursion; everything outside it
	// (argument validation, view setup) is O(1) or O(n²) at worst, so the
	// root must account for the bulk of the call. The loose lower bound
	// keeps the assertion meaningful without being timing-flaky.
	rootNS := snap.Spans.RootWallNS
	if rootNS <= 0 {
		t.Fatal("no closed root span")
	}
	if rootNS > wall.Nanoseconds() {
		t.Errorf("root span %v exceeds the call wall time %v", time.Duration(rootNS), wall)
	}
	if rootNS < wall.Nanoseconds()/2 {
		t.Errorf("root span %v is under half the call wall time %v", time.Duration(rootNS), wall)
	}
	if snap.Spans.RootGFLOPS <= 0 {
		t.Error("root GFLOPS not derived")
	}

	// Workspace accounting flows through the bridged tracker.
	if snap.Memory.Peak <= 0 || snap.Memory.Allocs <= 0 {
		t.Errorf("memory bridge empty: %+v", snap.Memory)
	}

	// Chrome trace export: valid JSON, one complete event per span, with
	// microsecond timestamps inside the call window.
	var buf bytes.Buffer
	if err := col.Spans.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	if len(events) != snap.Spans.Total {
		t.Fatalf("chrome trace has %d events, want %d", len(events), snap.Spans.Total)
	}
	for _, ev := range events {
		if ev["ph"] != "X" {
			t.Fatalf("unexpected event phase %v", ev["ph"])
		}
		dur, ok := ev["dur"].(float64)
		if !ok || dur < 0 {
			t.Fatalf("event without a duration: %v", ev)
		}
	}

	// Span-tree JSON exports and parses.
	buf.Reset()
	if err := col.Spans.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tree struct {
		Spans []json.RawMessage `json:"spans"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tree); err != nil {
		t.Fatalf("span tree JSON invalid: %v", err)
	}
	if len(tree.Spans) != 1 {
		t.Fatalf("want a single root, got %d", len(tree.Spans))
	}
}

// TestParallelSpanTreeComplete runs the task-parallel schedule with both a
// recording tracer and the collector attached and checks — under -race in
// CI — that the resulting tree is complete and well-parented: no dropped
// spans, no orphans, every child nested inside its parent's interval.
func TestParallelSpanTreeComplete(t *testing.T) {
	ref := &strassen.LogTracer{}
	col := NewCollector()
	cfg := strassen.DefaultConfig(blas.KernelByName("blocked"))
	cfg.Criterion = strassen.Simple{Tau: 32}
	cfg.Parallel = 4
	cfg.ParallelLevels = 2
	cfg.Tracer = ref
	col.Attach(cfg)            // tees: events to ref, spans to col
	run(cfg, 257, 255, 259, 7) // odd dims: peeling + fixups inside parallel products

	spans := col.Spans.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	if got, want := len(spans), len(ref.Events); got != want {
		t.Fatalf("spans %d != tee'd events %d", got, want)
	}
	if n := col.Spans.Open(); n != 0 {
		t.Fatalf("%d spans still open", n)
	}
	byID := make(map[int64]Span, len(spans))
	for _, s := range spans {
		byID[s.ID] = s
	}
	roots, parallels := 0, 0
	for _, s := range spans {
		if s.DurNS < 0 {
			t.Fatalf("span %d never ended", s.ID)
		}
		if s.Action == "parallel" {
			parallels++
		}
		if s.Parent == 0 {
			roots++
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Fatalf("span %d is orphaned (parent %d missing)", s.ID, s.Parent)
		}
		if p.StartNS > s.StartNS {
			t.Errorf("span %d starts before its parent %d", s.ID, p.ID)
		}
		if p.StartNS+p.DurNS < s.StartNS+s.DurNS {
			t.Errorf("span %d ends after its parent %d", s.ID, p.ID)
		}
		// Peel/pad wrappers share their depth with the schedule node and
		// fixups they wrap; recursion otherwise only descends.
		if p.Depth > s.Depth {
			t.Errorf("span %d at depth %d under parent at depth %d", s.ID, s.Depth, p.Depth)
		}
	}
	if roots != 1 {
		t.Errorf("want exactly one root, got %d", roots)
	}
	if parallels == 0 {
		t.Error("parallel schedule produced no parallel spans")
	}
	// Concurrent siblings must land on distinct display tracks.
	for _, s := range spans {
		if s.Action != "parallel" {
			continue
		}
		tracks := make(map[int]int64)
		for _, ch := range spans {
			if ch.Parent != s.ID {
				continue
			}
			if other, clash := tracks[ch.Track]; clash {
				t.Fatalf("children %d and %d of parallel span %d share track %d",
					other, ch.ID, s.ID, ch.Track)
			}
			tracks[ch.Track] = ch.ID
		}
	}
}

func TestSpanRecorderLimitDropsSubtrees(t *testing.T) {
	col := NewCollector()
	col.Spans.Limit = 2
	cfg := col.Attach(&strassen.Config{
		Kernel:    blas.NaiveKernel{},
		Criterion: strassen.Always{},
		MaxDepth:  2,
	})
	run(cfg, 64, 64, 64, 3)
	if got := col.Spans.Len(); got != 2 {
		t.Fatalf("recorded %d spans, want limit 2", got)
	}
	if col.Spans.Dropped() == 0 {
		t.Fatal("expected dropped spans to be counted")
	}
	if col.Spans.Open() != 0 {
		t.Fatal("limited recorder left spans open")
	}
	// Event counters stay exact even when spans are shed.
	snap := col.Snapshot()
	if snap.Metrics.Counters[metricEventPrefix+"base"] != 49 {
		t.Errorf("base events = %d, want 49", snap.Metrics.Counters[metricEventPrefix+"base"])
	}
}

func TestCollectorKernelBridge(t *testing.T) {
	pk := &blas.ParallelKernel{Workers: 4}
	col := NewCollector()
	cfg := col.Attach(strassen.DefaultConfig(pk))
	// One recursion level: the base problems keep 128 columns, enough for
	// the parallel kernel to split into worker goroutines.
	cfg.MaxDepth = 1
	run(cfg, 256, 256, 256, 9)
	snap := col.Snapshot()
	if len(snap.Kernels) != 1 {
		t.Fatalf("want 1 observed kernel, got %d", len(snap.Kernels))
	}
	ks := snap.Kernels[0]
	if ks.Dispatches == 0 {
		t.Error("no kernel dispatches recorded")
	}
	if ks.Goroutines == 0 {
		t.Error("no worker goroutines recorded (200 cols should split)")
	}
	if snap.Metrics.Gauges["kernel.parallel.goroutines"] != ks.Goroutines {
		t.Error("goroutine gauge not folded into metrics")
	}
}

func TestCollectorSchedBridge(t *testing.T) {
	rt := sched.New(2, 5)
	defer rt.Close()
	col := NewCollector()
	cfg := col.Attach(strassen.DefaultConfig(nil))
	cfg.Sched = rt
	cfg.Criterion = strassen.Simple{Tau: 16}
	col.ObserveSched(cfg.Sched)
	col.ObserveSched(cfg.Sched) // dedupe: still one entry
	run(cfg, 64, 64, 64, 13)
	snap := col.Snapshot()
	if len(snap.Sched) != 1 {
		t.Fatalf("want 1 observed runtime, got %d", len(snap.Sched))
	}
	ss := snap.Sched[0]
	if ss.Workers != 2 {
		t.Errorf("workers = %d, want 2", ss.Workers)
	}
	if ss.TasksRun == 0 {
		t.Error("no scheduler tasks recorded for a DAG-routed multiply")
	}
	if ss.MaxRunning < 1 || ss.MaxRunning > int64(ss.Workers) {
		t.Errorf("max_running = %d outside [1, %d]", ss.MaxRunning, ss.Workers)
	}
	if snap.Metrics.Gauges["sched.tasks_run"] != ss.TasksRun {
		t.Error("tasks_run gauge not folded into metrics")
	}
	if snap.Metrics.Gauges["sched.max_running"] != ss.MaxRunning {
		t.Error("max_running gauge not folded into metrics")
	}
}

func TestTrackerStatsConsistency(t *testing.T) {
	tr := memtrack.New()
	col := NewCollector()
	cfg := strassen.DefaultConfig(nil)
	cfg.Tracker = tr
	col.Attach(cfg)
	run(cfg, 128, 128, 128, 5)
	if got, want := col.Snapshot().Memory, tr.Stats(); got != want {
		t.Fatalf("bridged stats %+v != tracker stats %+v", got, want)
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	col := NewCollector()
	cfg := col.Attach(strassen.DefaultConfig(nil))
	run(cfg, 128, 128, 128, 11)

	srv, addr, err := StartDebugServer("127.0.0.1:0", col)
	if err != nil {
		t.Fatalf("StartDebugServer: %v", err)
	}
	defer srv.Close()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return body
	}

	var snap Snapshot
	if err := json.Unmarshal(get("/metrics"), &snap); err != nil {
		t.Fatalf("/metrics is not a Snapshot: %v", err)
	}
	if snap.Spans.Total == 0 {
		t.Error("/metrics shows no spans")
	}
	var events []map[string]any
	if err := json.Unmarshal(get("/trace"), &events); err != nil {
		t.Fatalf("/trace is not chrome trace JSON: %v", err)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars invalid: %v", err)
	}
	if _, ok := vars["dgefmm"]; !ok {
		t.Error("collector not published on expvar")
	}
	if body := get("/debug/pprof/"); !bytes.Contains(body, []byte("goroutine")) {
		t.Error("pprof index missing profiles")
	}
}

func TestAttachComposesWithExistingTracer(t *testing.T) {
	ref := strassen.NewCountTracer()
	col := NewCollector()
	cfg := strassen.DefaultConfig(nil)
	cfg.Tracer = ref
	col.Attach(cfg)
	run(cfg, 100, 100, 100, 13)
	if ref.Total() == 0 {
		t.Fatal("pre-existing tracer starved after Attach")
	}
	if col.Spans.Len() != ref.Total() {
		t.Fatalf("collector spans %d != tee'd events %d", col.Spans.Len(), ref.Total())
	}
}

func TestSnapshotPackedKernelStats(t *testing.T) {
	col := NewCollector()
	pk := &kernel.Packed{}
	cfg := strassen.DefaultConfig(pk)
	col.Attach(cfg)
	run(cfg, 128, 128, 128, 17)

	s := col.Snapshot()
	if len(s.Packed) != 1 {
		t.Fatalf("got %d packed kernel entries, want 1", len(s.Packed))
	}
	ps := s.Packed[0]
	// The name follows the dispatched micro-kernel ("simd" on SIMD hosts,
	// "packed" on scalar fallback); either way it must match the kernel's.
	if ps.Name != pk.Name() {
		t.Errorf("packed entry name = %q, kernel reports %q", ps.Name, pk.Name())
	}
	if ps.ISA != pk.ISA() || ps.ISA == "" {
		t.Errorf("packed entry ISA = %q, kernel reports %q", ps.ISA, pk.ISA())
	}
	if ps.SIMDTiles+ps.ScalarTiles <= 0 {
		t.Errorf("tile dispatch counters not collected: %+v", ps)
	}
	if ps.ISA == "scalar" && ps.SIMDTiles != 0 {
		t.Errorf("scalar dispatch reported %d SIMD tiles", ps.SIMDTiles)
	}
	if s.Metrics.Gauges["kernel.packed.simd_tiles"] != ps.SIMDTiles {
		t.Error("simd_tiles gauge not folded into metrics")
	}
	if ps.MulAdds <= 0 || ps.PackAWords <= 0 || ps.PackBWords <= 0 {
		t.Errorf("packed counters not collected: %+v", ps)
	}
	if ps.Arena.Peak <= 0 || ps.Arena.Live != 0 {
		t.Errorf("packed arena accounting off: %+v", ps.Arena)
	}
	// The packing arena must NOT leak into the Strassen-workspace figure:
	// Memory stays exactly the config tracker's stats (Table 1 comparable).
	if got, want := s.Memory, cfg.Tracker.Stats(); got != want {
		t.Errorf("Memory %+v != strassen tracker stats %+v (packing arena folded in?)", got, want)
	}
	if s.Metrics.Gauges["kernel.packed.mul_adds"] != ps.MulAdds {
		t.Error("packed mul_adds gauge not folded into metrics")
	}
	if s.Metrics.Gauges["kernel.packed.arena_peak_words"] != ps.Arena.Peak {
		t.Error("packed arena peak gauge not folded into metrics")
	}
}
