package cli

import "flag"

// AlgoFlag registers -algo on the given FlagSet (nil means
// flag.CommandLine) and returns the destination string. The value feeds
// strassen.ParseAlgo after flag parsing; commands follow the same
// precedence as the kernel dispatch policy (PR 5): an explicit flag wins,
// otherwise the DGEFMM_ALGO environment variable, otherwise the default
// hand-tuned Winograd path.
func AlgoFlag(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("algo", "",
		"fast-algorithm table: a registered ⟨m,k,n⟩ table name, auto (per-shape selection), or default (empty defers to DGEFMM_ALGO, then the built-in Winograd path)")
}
