package cli

import "flag"

// FusedFlag registers -fused on the given FlagSet (nil means
// flag.CommandLine) and returns the destination string. The value feeds
// strassen.ParseFusedMode after flag parsing; commands follow the same
// precedence as the kernel dispatch policy (PR 5): an explicit flag wins,
// otherwise the DGEFMM_FUSED environment variable, otherwise auto-detect.
func FusedFlag(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("fused", "auto",
		"fused Winograd base case: auto, on, or off (auto defers to DGEFMM_FUSED, then capability detection)")
}
