// Package cli holds the small pieces shared by this repo's commands:
// structured logging setup behind a common -log-level flag.
package cli

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"strings"
)

// LogLevelFlag registers -log-level on the given FlagSet (nil means
// flag.CommandLine) and returns the destination string. Call InitLogging
// after flag parsing to apply it.
func LogLevelFlag(fs *flag.FlagSet) *string {
	if fs == nil {
		fs = flag.CommandLine
	}
	return fs.String("log-level", "info", "log verbosity: debug, info, warn, or error")
}

// ParseLevel maps a -log-level value to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return slog.LevelInfo, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// InitLogging installs a text slog handler writing to stderr at the
// given level and returns the logger. Diagnostics go through slog so
// they carry levels and key-value context; measurement output (tables,
// JSON reports) stays on stdout, so piping results remains clean. An
// unknown level falls back to info with a warning rather than aborting
// a long run over a typo.
func InitLogging(level string) *slog.Logger {
	lv, err := ParseLevel(level)
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lv}))
	slog.SetDefault(logger)
	if err != nil {
		logger.Warn("bad -log-level, using info", "err", err)
	}
	return logger
}
