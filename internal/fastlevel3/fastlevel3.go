// Package fastlevel3 implements the program of the paper's reference [11]
// (Higham, "Exploiting fast matrix multiplication within the level 3 BLAS",
// ACM TOMS 1990): the remaining Level 3 BLAS operations — symmetric
// multiply/rank-k update and triangular multiply/solve — restructured so
// that asymptotically all their arithmetic happens inside general matrix
// multiplication, which is then performed by DGEFMM. Any Strassen speedup
// therefore transfers to the whole Level 3 BLAS, and through it (as the
// paper's introduction argues) to LAPACK-style blocked algorithms.
//
// Each routine partitions its operand into a small unblocked core plus
// GEMM-shaped updates:
//
//   - Dsyrk: 2×2 block recursion — two half-size SYRKs plus one GEMM.
//   - Dsymm: the symmetric operand is consumed in square diagonal blocks
//     (densified) driving GEMM panels.
//   - Dtrmm/Dtrsm: 2×2 triangular block recursion — two half-size
//     triangular ops plus one GEMM (the solve uses the multiply-accumulate
//     C ← C − A·B before the sub-solve).
//
// The multiplier is pluggable; the default is DGEFMM with default
// configuration.
package fastlevel3

import (
	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// Engine performs C ← alpha·op(A)·op(B) + beta·C for the GEMM-shaped parts
// of the Level 3 routines.
type Engine interface {
	// GEMM mirrors blas.Dgemm's semantics on raw column-major storage.
	GEMM(transA, transB blas.Transpose, m, n, k int, alpha float64,
		a []float64, lda int, b []float64, ldb int, beta float64,
		c []float64, ldc int)
}

// StrassenEngine runs the GEMM parts through DGEFMM.
type StrassenEngine struct {
	// Config for DGEFMM; nil selects the defaults.
	Config *strassen.Config
}

// GEMM implements Engine.
func (s StrassenEngine) GEMM(transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	strassen.DGEFMM(s.Config, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// GemmEngine runs the GEMM parts through the standard algorithm (the
// control arm for the ablation benches).
type GemmEngine struct {
	// Kernel below; nil selects the packed cache-blocked kernel, matching
	// the StrassenEngine default so the two arms differ only in the
	// algorithm above the kernel.
	Kernel blas.Kernel
}

// GEMM implements Engine.
func (g GemmEngine) GEMM(transA, transB blas.Transpose, m, n, k int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	kern := g.Kernel
	if kern == nil {
		kern = kernel.Default()
	}
	blas.DgemmKernel(kern, transA, transB, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc)
}

// Options configures the fast Level 3 routines.
type Options struct {
	// Engine for the GEMM-shaped work; nil selects StrassenEngine with
	// default configuration.
	Engine Engine
	// Base is the block order at or below which the reference (unblocked)
	// routine finishes; 0 selects 64.
	Base int
}

func (o *Options) engine() Engine {
	if o == nil || o.Engine == nil {
		return StrassenEngine{}
	}
	return o.Engine
}

func (o *Options) base() int {
	if o == nil || o.Base <= 0 {
		return 64
	}
	return o.Base
}

// Dsyrk computes C ← alpha·op(A)·op(A)ᵀ + beta·C for symmetric C (uplo
// triangle referenced/updated), with op(A) n×k, spending its flops in the
// engine via the block recursion
//
//	[C11 C12; C21 C22] ← [A1·A1ᵀ, A1·A2ᵀ; ·, A2·A2ᵀ]
//
// where the off-diagonal block is a plain GEMM of half the size.
func Dsyrk(opt *Options, uplo blas.Uplo, trans blas.Transpose, n, k int, alpha float64,
	a []float64, lda int, beta float64, c []float64, ldc int) {
	if n <= opt.base() {
		blas.Dsyrk(uplo, trans, n, k, alpha, a, lda, beta, c, ldc)
		return
	}
	n1 := n / 2
	n2 := n - n1
	upper := uplo == blas.Upper || uplo == 'u'
	notrans := !trans.IsTrans()

	// Row panels of op(A): A1 = op(A)[0:n1, :], A2 = op(A)[n1:, :].
	// In storage: notrans → rows of a; trans → columns of a.
	var a1, a2 []float64
	if notrans {
		a1, a2 = a, a[n1:]
	} else {
		a1, a2 = a, a[n1*lda:]
	}

	Dsyrk(opt, uplo, trans, n1, k, alpha, a1, lda, beta, c, ldc)
	Dsyrk(opt, uplo, trans, n2, k, alpha, a2, lda, beta, c[n1+n1*ldc:], ldc)

	tb := blas.Trans
	if !notrans {
		tb = blas.NoTrans
	}
	if upper {
		// C12 ← alpha·A1·A2ᵀ + beta·C12 (n1×n2 GEMM).
		opt.engine().GEMM(trans, tb, n1, n2, k, alpha, a1, lda, a2, lda, beta, c[n1*ldc:], ldc)
	} else {
		// C21 ← alpha·A2·A1ᵀ + beta·C21 (n2×n1 GEMM).
		opt.engine().GEMM(trans, tb, n2, n1, k, alpha, a2, lda, a1, lda, beta, c[n1:], ldc)
	}
}

// Dsymm computes C ← alpha·A·B + beta·C (side Left) or alpha·B·A + beta·C
// (side Right) for symmetric A, by densifying A once and handing the whole
// operation to the engine — for symmetric multiply *all* the arithmetic is
// GEMM-shaped, so this is the Higham construction in its simplest form.
func Dsymm(opt *Options, side blas.Side, uplo blas.Uplo, m, n int, alpha float64,
	a []float64, lda int, b []float64, ldb int, beta float64, c []float64, ldc int) {
	na := n
	if side == blas.Left || side == 'l' {
		na = m
	}
	full := densifySym(uplo, na, a, lda)
	if side == blas.Left || side == 'l' {
		opt.engine().GEMM(blas.NoTrans, blas.NoTrans, m, n, m, alpha, full.Data, full.Stride, b, ldb, beta, c, ldc)
	} else {
		opt.engine().GEMM(blas.NoTrans, blas.NoTrans, m, n, n, alpha, b, ldb, full.Data, full.Stride, beta, c, ldc)
	}
}

// densifySym expands the referenced triangle into a full symmetric matrix.
func densifySym(uplo blas.Uplo, n int, a []float64, lda int) *matrix.Dense {
	full := matrix.NewDense(n, n)
	upper := uplo == blas.Upper || uplo == 'u'
	for j := 0; j < n; j++ {
		for i := 0; i <= j; i++ {
			var v float64
			if upper {
				v = a[i+j*lda]
			} else {
				v = a[j+i*lda]
			}
			full.Set(i, j, v)
			full.Set(j, i, v)
		}
	}
	return full
}

// Dtrmm computes B ← alpha·op(A)·B for triangular A on the left (the right
// side reduces to it by transposition at the caller; the paper's codes only
// need the left case). The 2×2 recursion for lower-triangular A:
//
//	[B1; B2] ← [A11·B1; A21·B1 + A22·B2]
//
// whose cross term A21·B1 is a GEMM; upper-triangular and transposed cases
// permute the update order.
func Dtrmm(opt *Options, uplo blas.Uplo, transA blas.Transpose, diag blas.Diag,
	m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	if m <= opt.base() {
		blas.Dtrmm(blas.Left, uplo, transA, diag, m, n, alpha, a, lda, b, ldb)
		return
	}
	m1 := m / 2
	m2 := m - m1
	upper := uplo == blas.Upper || uplo == 'u'
	nota := !transA.IsTrans()

	a11 := a
	a22 := a[m1+m1*lda:]
	var off []float64 // the off-diagonal block: A12 (upper) or A21 (lower)
	if upper {
		off = a[m1*lda:]
	} else {
		off = a[m1:]
	}
	b1 := b
	b2 := b[m1:]

	switch {
	case upper == nota:
		// Effective upper: B1 ← op(A11)·B1 + op(off)·B2 — update B1 first.
		Dtrmm(opt, uplo, transA, diag, m1, n, alpha, a11, lda, b1, ldb)
		if nota {
			opt.engine().GEMM(blas.NoTrans, blas.NoTrans, m1, n, m2, alpha, off, lda, b2, ldb, 1, b1, ldb)
		} else {
			opt.engine().GEMM(blas.Trans, blas.NoTrans, m1, n, m2, alpha, off, lda, b2, ldb, 1, b1, ldb)
		}
		Dtrmm(opt, uplo, transA, diag, m2, n, alpha, a22, lda, b2, ldb)
	default:
		// Effective lower: B2 ← op(A22)·B2 + op(off)·B1 — update B2 first.
		Dtrmm(opt, uplo, transA, diag, m2, n, alpha, a22, lda, b2, ldb)
		if nota {
			opt.engine().GEMM(blas.NoTrans, blas.NoTrans, m2, n, m1, alpha, off, lda, b1, ldb, 1, b2, ldb)
		} else {
			opt.engine().GEMM(blas.Trans, blas.NoTrans, m2, n, m1, alpha, off, lda, b1, ldb, 1, b2, ldb)
		}
		Dtrmm(opt, uplo, transA, diag, m1, n, alpha, a11, lda, b1, ldb)
	}
}

// Dtrsm solves op(A)·X = alpha·B in place for triangular A on the left.
// The 2×2 recursion for effective-lower op(A):
//
//	solve A11·X1 = B1;  B2 ← B2 − A21·X1 (GEMM);  solve A22·X2 = B2.
func Dtrsm(opt *Options, uplo blas.Uplo, transA blas.Transpose, diag blas.Diag,
	m, n int, alpha float64, a []float64, lda int, b []float64, ldb int) {
	if m <= opt.base() {
		blas.Dtrsm(blas.Left, uplo, transA, diag, m, n, alpha, a, lda, b, ldb)
		return
	}
	m1 := m / 2
	m2 := m - m1
	upper := uplo == blas.Upper || uplo == 'u'
	nota := !transA.IsTrans()

	a11 := a
	a22 := a[m1+m1*lda:]
	var off []float64
	if upper {
		off = a[m1*lda:]
	} else {
		off = a[m1:]
	}
	b1 := b
	b2 := b[m1:]

	switch {
	case upper == nota:
		// Effective upper: solve bottom first, then eliminate from the top.
		Dtrsm(opt, uplo, transA, diag, m2, n, alpha, a22, lda, b2, ldb)
		// B1 ← alpha·B1 − op(off)·X2.
		if alpha != 1 {
			for j := 0; j < n; j++ {
				blas.Dscal(m1, alpha, b1[j*ldb:], 1)
			}
		}
		if nota {
			opt.engine().GEMM(blas.NoTrans, blas.NoTrans, m1, n, m2, -1, off, lda, b2, ldb, 1, b1, ldb)
		} else {
			opt.engine().GEMM(blas.Trans, blas.NoTrans, m1, n, m2, -1, off, lda, b2, ldb, 1, b1, ldb)
		}
		Dtrsm(opt, uplo, transA, diag, m1, n, 1, a11, lda, b1, ldb)
	default:
		// Effective lower: solve top first, then eliminate from the bottom.
		Dtrsm(opt, uplo, transA, diag, m1, n, alpha, a11, lda, b1, ldb)
		if alpha != 1 {
			for j := 0; j < n; j++ {
				blas.Dscal(m2, alpha, b2[j*ldb:], 1)
			}
		}
		if nota {
			opt.engine().GEMM(blas.NoTrans, blas.NoTrans, m2, n, m1, -1, off, lda, b1, ldb, 1, b2, ldb)
		} else {
			opt.engine().GEMM(blas.Trans, blas.NoTrans, m2, n, m1, -1, off, lda, b1, ldb, 1, b2, ldb)
		}
		Dtrsm(opt, uplo, transA, diag, m2, n, 1, a22, lda, b2, ldb)
	}
}
