package fastlevel3

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/blas"
	"repro/internal/strassen"
)

// testOpt uses a tiny base and the naive kernel so the GEMM-recursion and
// the Strassen engine are both exercised even on small test operands.
func testOpt() *Options {
	return &Options{
		Base: 8,
		Engine: StrassenEngine{Config: &strassen.Config{
			Kernel:    blas.NaiveKernel{},
			Criterion: strassen.Simple{Tau: 8},
		}},
	}
}

func randMat(rng *rand.Rand, r, c, ld int) []float64 {
	a := make([]float64, ld*c)
	for j := 0; j < c; j++ {
		for i := 0; i < r; i++ {
			a[i+j*ld] = 2*rng.Float64() - 1
		}
	}
	return a
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b)) }

func TestFastDsyrkMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(701))
	for _, n := range []int{4, 9, 16, 33, 50} {
		for _, k := range []int{3, 17, 40} {
			for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
				for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
					rowsA, colsA := n, k
					if trans.IsTrans() {
						rowsA, colsA = k, n
					}
					lda := rowsA + 2
					a := randMat(rng, rowsA, colsA, lda)
					c1 := randMat(rng, n, n, n)
					c2 := append([]float64(nil), c1...)
					blas.Dsyrk(uplo, trans, n, k, 1.5, a, lda, 0.5, c1, n)
					Dsyrk(testOpt(), uplo, trans, n, k, 1.5, a, lda, 0.5, c2, n)
					for i := range c1 {
						if !almostEq(c1[i], c2[i], 1e-11) {
							t.Fatalf("Dsyrk n=%d k=%d uplo=%c trans=%c mismatch", n, k, uplo, trans)
						}
					}
				}
			}
		}
	}
}

func TestFastDsymmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(702))
	for _, dims := range [][2]int{{5, 7}, {24, 16}, {40, 33}} {
		m, n := dims[0], dims[1]
		for _, side := range []blas.Side{blas.Left, blas.Right} {
			na := n
			if side == blas.Left {
				na = m
			}
			lda := na + 1
			a := randMat(rng, na, na, lda)
			b := randMat(rng, m, n, m)
			for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
				c1 := randMat(rng, m, n, m)
				c2 := append([]float64(nil), c1...)
				blas.Dsymm(side, uplo, m, n, 2, a, lda, b, m, -0.5, c1, m)
				Dsymm(testOpt(), side, uplo, m, n, 2, a, lda, b, m, -0.5, c2, m)
				for i := range c1 {
					if !almostEq(c1[i], c2[i], 1e-11) {
						t.Fatalf("Dsymm m=%d n=%d side=%c uplo=%c mismatch", m, n, side, uplo)
					}
				}
			}
		}
	}
}

func TestFastDtrmmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(703))
	for _, m := range []int{4, 17, 33, 48} {
		n := 11
		lda := m + 1
		a := randMat(rng, m, m, lda)
		for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
			for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, diag := range []blas.Diag{blas.NonUnit, blas.Unit} {
					b1 := randMat(rng, m, n, m)
					b2 := append([]float64(nil), b1...)
					blas.Dtrmm(blas.Left, uplo, trans, diag, m, n, 1.5, a, lda, b1, m)
					Dtrmm(testOpt(), uplo, trans, diag, m, n, 1.5, a, lda, b2, m)
					for i := range b1 {
						if !almostEq(b1[i], b2[i], 1e-11) {
							t.Fatalf("Dtrmm m=%d uplo=%c trans=%c diag=%c mismatch", m, uplo, trans, diag)
						}
					}
				}
			}
		}
	}
}

func TestFastDtrsmMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(704))
	for _, m := range []int{4, 17, 33, 48} {
		n := 9
		lda := m + 1
		a := randMat(rng, m, m, lda)
		for i := 0; i < m; i++ {
			a[i+i*lda] = 2 + rng.Float64() // well-conditioned
		}
		for _, uplo := range []blas.Uplo{blas.Upper, blas.Lower} {
			for _, trans := range []blas.Transpose{blas.NoTrans, blas.Trans} {
				for _, diag := range []blas.Diag{blas.NonUnit, blas.Unit} {
					b1 := randMat(rng, m, n, m)
					b2 := append([]float64(nil), b1...)
					blas.Dtrsm(blas.Left, uplo, trans, diag, m, n, 0.75, a, lda, b1, m)
					Dtrsm(testOpt(), uplo, trans, diag, m, n, 0.75, a, lda, b2, m)
					for i := range b1 {
						if !almostEq(b1[i], b2[i], 1e-9) {
							t.Fatalf("Dtrsm m=%d uplo=%c trans=%c diag=%c mismatch", m, uplo, trans, diag)
						}
					}
				}
			}
		}
	}
}

func TestTrmmTrsmRoundTripFast(t *testing.T) {
	rng := rand.New(rand.NewSource(705))
	m, n := 40, 6
	a := randMat(rng, m, m, m)
	for i := 0; i < m; i++ {
		a[i+i*m] = 3 + rng.Float64()
	}
	b := randMat(rng, m, n, m)
	orig := append([]float64(nil), b...)
	opt := testOpt()
	Dtrmm(opt, blas.Lower, blas.NoTrans, blas.NonUnit, m, n, 2, a, m, b, m)
	Dtrsm(opt, blas.Lower, blas.NoTrans, blas.NonUnit, m, n, 0.5, a, m, b, m)
	for i := range b {
		if !almostEq(b[i], orig[i], 1e-9) {
			t.Fatal("fast trmm/trsm roundtrip failed")
		}
	}
}

func TestFastLevel3Quick(t *testing.T) {
	f := func(nRaw, kRaw uint8, seed int64, upperRaw, transRaw bool) bool {
		n := int(nRaw%40) + 1
		k := int(kRaw%40) + 1
		rng := rand.New(rand.NewSource(seed))
		uplo := blas.Lower
		if upperRaw {
			uplo = blas.Upper
		}
		trans := blas.NoTrans
		if transRaw {
			trans = blas.Trans
		}
		rowsA, colsA := n, k
		if trans.IsTrans() {
			rowsA, colsA = k, n
		}
		a := randMat(rng, rowsA, colsA, rowsA)
		c1 := randMat(rng, n, n, n)
		c2 := append([]float64(nil), c1...)
		blas.Dsyrk(uplo, trans, n, k, 1, a, rowsA, 1, c1, n)
		Dsyrk(testOpt(), uplo, trans, n, k, 1, a, rowsA, 1, c2, n)
		for i := range c1 {
			if !almostEq(c1[i], c2[i], 1e-10) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestDefaultOptions(t *testing.T) {
	// nil options must work (default Strassen engine, base 64).
	rng := rand.New(rand.NewSource(706))
	n, k := 20, 12
	a := randMat(rng, n, k, n)
	c1 := make([]float64, n*n)
	c2 := make([]float64, n*n)
	blas.Dsyrk(blas.Lower, blas.NoTrans, n, k, 1, a, n, 0, c1, n)
	Dsyrk(nil, blas.Lower, blas.NoTrans, n, k, 1, a, n, 0, c2, n)
	for i := range c1 {
		if !almostEq(c1[i], c2[i], 1e-11) {
			t.Fatal("nil options Dsyrk mismatch")
		}
	}
}
