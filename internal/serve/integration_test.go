package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/blas"
	"repro/internal/strassen"
)

// newTestServer builds a Server and an httptest front end; both are torn
// down with the test (HTTP first, so no handler is in flight at Close).
func newTestServer(t *testing.T, opts *Options) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(opts)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestServeMatchesSequential is the core contract: an in-core response is
// bit-for-bit the sequential DGEFMM result — the coalescer, pool, and
// row-major/column-major mapping introduce no numerical drift.
func TestServeMatchesSequential(t *testing.T) {
	_, ts := newTestServer(t, &Options{Workers: 2})
	cl := &Client{BaseURL: ts.URL}
	rng := rand.New(rand.NewSource(41))

	cases := []GEMMRequest{
		{M: 8, N: 8, K: 8, Alpha: 1},
		{M: 17, N: 3, K: 29, Alpha: -0.5},                             // odd, rectangular
		{M: 5, N: 7, K: 9, TransA: blas.Trans, Alpha: 2},              // Aᵀ
		{M: 6, N: 4, K: 11, TransB: blas.Trans, Alpha: 1, Beta: 0.25}, // Bᵀ, accumulate
		{M: 13, N: 13, K: 13, TransA: blas.Trans, TransB: blas.Trans, Alpha: 1.5, Beta: -1},
		{M: 1, N: 1, K: 1, Alpha: 3},
		{M: 96, N: 96, K: 96, Alpha: 1}, // large enough to recurse
	}
	for _, req := range cases {
		req.A = randFloats(rng, req.M*req.K)
		req.B = randFloats(rng, req.K*req.N)
		if req.Beta != 0 {
			req.C = randFloats(rng, req.M*req.N)
		}
		want := referenceGEMM(&req)
		res, err := cl.GEMM(context.Background(), &req)
		if err != nil {
			t.Fatalf("m=%d n=%d k=%d: %v", req.M, req.N, req.K, err)
		}
		if !reflect.DeepEqual(res.C, want) {
			t.Fatalf("m=%d n=%d k=%d tA=%v tB=%v beta=%g: result differs from sequential DGEFMM",
				req.M, req.N, req.K, req.TransA.IsTrans(), req.TransB.IsTrans(), req.Beta)
		}
		if res.Batched < 1 {
			t.Fatalf("batched=%d on a successful call", res.Batched)
		}
		if res.OutOfCore {
			t.Fatal("small call routed out of core")
		}
	}
}

// TestServeCoalescing pins the tentpole behavior: concurrent same-shape
// requests ride one batch. The window is generous (200ms) so all arrivals
// join the first group regardless of scheduling.
func TestServeCoalescing(t *testing.T) {
	srv, ts := newTestServer(t, &Options{Workers: 2, CoalesceWindow: 200 * time.Millisecond})
	const calls = 8
	rng := rand.New(rand.NewSource(42))
	a, b := randFloats(rng, 24*24), randFloats(rng, 24*24)

	var wg sync.WaitGroup
	batched := make([]int, calls)
	errs := make([]error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := &Client{BaseURL: ts.URL}
			res, err := cl.GEMM(context.Background(), &GEMMRequest{
				M: 24, N: 24, K: 24, Alpha: 1, A: a, B: b,
			})
			if err != nil {
				errs[i] = err
				return
			}
			batched[i] = res.Batched
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	maxBatch := 0
	for _, n := range batched {
		if n > maxBatch {
			maxBatch = n
		}
	}
	if maxBatch < 2 {
		t.Fatalf("no coalescing: batch sizes %v", batched)
	}
	reg := srv.Collector().Registry
	nCalls := reg.Counter("serve.coalesce.calls").Value()
	nBatches := reg.Counter("serve.coalesce.batches").Value()
	if nCalls != calls {
		t.Fatalf("coalesce.calls = %d, want %d", nCalls, calls)
	}
	if nBatches >= calls {
		t.Fatalf("coalesce.batches = %d for %d calls: nothing coalesced", nBatches, calls)
	}
}

// TestServeDeadline: a request whose X-Deadline-Ms expires while parked in
// a long coalesce window gets 504 and the deadline counter ticks; the
// group's later flush must skip the dead call without incident.
func TestServeDeadline(t *testing.T) {
	srv, ts := newTestServer(t, &Options{
		Workers:        1,
		CoalesceWindow: 2 * time.Second, // far past the request deadline
	})
	var buf bytes.Buffer
	h := ReqHeader{M: 4, N: 4, K: 4, Alpha: 1}
	if err := EncodeRequest(&buf, &h, make([]float64, 16), make([]float64, 16), nil); err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/gemm", &buf)
	req.Header.Set("Content-Type", ContentType)
	req.Header.Set("X-Deadline-Ms", "50")

	start := time.Now()
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, bytes.TrimSpace(body))
	}
	if waited := time.Since(start); waited > time.Second {
		t.Fatalf("504 took %v: the deadline did not cut the coalesce window short", waited)
	}
	if n := srv.Collector().Registry.Counter("serve.errors.deadline").Value(); n != 1 {
		t.Fatalf("deadline counter = %d, want 1", n)
	}
	// Close flushes the still-pending group; the canceled call must be
	// skipped by the worker (batch.Call.Ctx), not executed or paniced on.
	srv.Close()
}

// slowKernel delays every leaf multiply, so a recursing request takes far
// longer than its deadline and the expiry lands while the multiply runs.
type slowKernel struct {
	blas.Kernel
	delay time.Duration
	calls atomic.Int64
}

func (k *slowKernel) MulAdd(transA, transB blas.Transpose, m, n, kk int, alpha float64,
	a []float64, lda int, b []float64, ldb int, c []float64, ldc int) {
	k.calls.Add(1)
	time.Sleep(k.delay)
	k.Kernel.MulAdd(transA, transB, m, n, kk, alpha, a, lda, b, ldb, c, ldc)
}

// TestServeDeadlineCancelsRunningMultiply: a deadline that expires while
// the multiply is EXECUTING (not parked in a coalesce window or queue)
// must cancel it mid-flight — the engine polls the call's context between
// products, so the worker abandons the remaining leaf multiplies instead
// of running the batch to completion after the client is gone.
func TestServeDeadlineCancelsRunningMultiply(t *testing.T) {
	kern := &slowKernel{Kernel: blas.NaiveKernel{}, delay: 2 * time.Millisecond}
	srv, ts := newTestServer(t, &Options{
		Workers:        1,
		CoalesceWindow: time.Millisecond,
		Config:         &strassen.Config{Kernel: kern, Criterion: strassen.Simple{Tau: 8}},
	})
	rng := rand.New(rand.NewSource(44))
	a, b := randFloats(rng, 64*64), randFloats(rng, 64*64)
	encode := func() *bytes.Buffer {
		var buf bytes.Buffer
		h := ReqHeader{M: 64, N: 64, K: 64, Alpha: 1}
		if err := EncodeRequest(&buf, &h, a, b, nil); err != nil {
			t.Fatal(err)
		}
		return &buf
	}

	// Control run without a deadline: measures the full leaf-multiply count
	// of this shape (and warms the pool's plan bucket).
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/gemm", encode())
	req.Header.Set("Content-Type", ContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control run status %d", resp.StatusCode)
	}
	total := kern.calls.Load()

	// Deadline run: 60ms expires a few dozen leaves in (~2ms each), well
	// before the full count is reached.
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/gemm", encode())
	req.Header.Set("Content-Type", ContentType)
	req.Header.Set("X-Deadline-Ms", "60")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%s), want 504", resp.StatusCode, bytes.TrimSpace(body))
	}
	if n := srv.Collector().Registry.Counter("serve.errors.deadline").Value(); n < 1 {
		t.Fatalf("deadline counter = %d, want ≥ 1", n)
	}

	// The worker must abandon the multiply: the leaf count stabilizes far
	// below the control run's total instead of grinding to completion.
	var last int64 = -1
	deadline := time.Now().Add(5 * time.Second)
	for {
		cur := kern.calls.Load()
		if cur == last {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("leaf multiplies never stabilized after cancellation")
		}
		last = cur
		time.Sleep(30 * time.Millisecond)
	}
	if ran := kern.calls.Load() - total; ran >= total/2 {
		t.Fatalf("canceled multiply still ran %d of %d leaf multiplies", ran, total)
	}
}

// TestServeBackpressure: past the admission high-water mark requests are
// shed with 429 + Retry-After instead of queueing behind the pool.
func TestServeBackpressure(t *testing.T) {
	srv, ts := newTestServer(t, &Options{
		Workers:        1,
		HighWater:      1,
		CoalesceWindow: time.Second, // parks the first request, holding its slot
	})
	rng := rand.New(rand.NewSource(43))
	a, b := randFloats(rng, 8*8), randFloats(rng, 8*8)

	first := make(chan error, 1)
	go func() {
		cl := &Client{BaseURL: ts.URL}
		_, err := cl.GEMM(context.Background(), &GEMMRequest{M: 8, N: 8, K: 8, Alpha: 1, A: a, B: b})
		first <- err
	}()

	// Wait until the first request is admitted (inflight gauge = 1).
	gauge := srv.Collector().Registry.Gauge("serve.inflight")
	deadline := time.Now().Add(5 * time.Second)
	for gauge.Value() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never admitted")
		}
		time.Sleep(time.Millisecond)
	}

	var buf bytes.Buffer
	h := ReqHeader{M: 8, N: 8, K: 8, Alpha: 1}
	if err := EncodeRequest(&buf, &h, a, b, nil); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/gemm", ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After header")
	}
	if n := srv.Collector().Registry.Counter("serve.rejected.backpressure").Value(); n != 1 {
		t.Fatalf("backpressure counter = %d, want 1", n)
	}
	if err := <-first; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}

func TestServeQuota(t *testing.T) {
	srv, ts := newTestServer(t, &Options{
		Workers: 1,
		Quota: QuotaConfig{
			Tenants: map[string]TenantQuota{"banned": {}},
		},
	})
	rng := rand.New(rand.NewSource(44))
	req := &GEMMRequest{M: 4, N: 4, K: 4, Alpha: 1,
		A: randFloats(rng, 16), B: randFloats(rng, 16)}

	banned := &Client{BaseURL: ts.URL, Tenant: "banned"}
	_, err := banned.GEMM(context.Background(), req)
	he, ok := err.(*HTTPError)
	if !ok || !he.Throttled() {
		t.Fatalf("zero-quota tenant got %v, want a 429 HTTPError", err)
	}
	if he.RetryAfter <= 0 {
		t.Fatal("429 without a Retry-After hint")
	}

	// The unlimited default is unaffected by the banned tenant's bucket.
	anon := &Client{BaseURL: ts.URL}
	if _, err := anon.GEMM(context.Background(), req); err != nil {
		t.Fatalf("anonymous tenant rejected: %v", err)
	}
	if n := srv.Collector().Registry.Counter("serve.rejected.quota").Value(); n != 1 {
		t.Fatalf("quota counter = %d, want 1", n)
	}
}

// TestServeOutOfCore routes an oversized operand set through the tiled
// path — chunked transfer in, tiled multiply, streamed result out — in both
// staging modes, and verifies against the sequential reference (approximate:
// the tiled accumulation order differs).
func TestServeOutOfCore(t *testing.T) {
	for _, mode := range []string{"mem", "spool"} {
		t.Run(mode, func(t *testing.T) {
			opts := &Options{
				Workers:        1,
				LargeWords:     1000, // 64³ operands (4096 words) go out of core
				OutOfCoreWords: 3 * 16 * 16,
			}
			if mode == "spool" {
				opts.SpoolDir = t.TempDir()
			}
			srv, ts := newTestServer(t, opts)
			rng := rand.New(rand.NewSource(45))
			req := &GEMMRequest{
				M: 64, N: 64, K: 64, Alpha: 1.5, Beta: 0.5,
				A: randFloats(rng, 64*64), B: randFloats(rng, 64*64), C: randFloats(rng, 64*64),
			}
			want := referenceGEMM(req)

			cl := &Client{BaseURL: ts.URL}
			res, err := cl.GEMM(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if !res.OutOfCore {
				t.Fatal("oversized request served in core")
			}
			if !approxEqual(res.C, want, 1e-10) {
				t.Fatal("out-of-core result differs from the sequential reference")
			}
			if n := srv.Collector().Registry.Counter("serve.outofcore.calls").Value(); n != 1 {
				t.Fatalf("outofcore counter = %d, want 1", n)
			}

			// The tiled path declines transposed operands with 400.
			treq := *req
			treq.TransA = blas.Trans
			_, err = cl.GEMM(context.Background(), &treq)
			if he, ok := err.(*HTTPError); !ok || he.Status != http.StatusBadRequest {
				t.Fatalf("transposed out-of-core request got %v, want 400", err)
			}
		})
	}
}

func TestServeBadRequests(t *testing.T) {
	srv, ts := newTestServer(t, &Options{Workers: 1})
	post := func(body []byte, hdr map[string]string) int {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/gemm", bytes.NewReader(body))
		req.Header.Set("Content-Type", ContentType)
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	var valid bytes.Buffer
	h := ReqHeader{M: 2, N: 2, K: 2, Alpha: 1}
	if err := EncodeRequest(&valid, &h, make([]float64, 4), make([]float64, 4), nil); err != nil {
		t.Fatal(err)
	}

	if code := post([]byte("garbage"), nil); code != http.StatusBadRequest {
		t.Fatalf("garbage body: %d, want 400", code)
	}
	if code := post(valid.Bytes()[:12], nil); code != http.StatusBadRequest {
		t.Fatalf("truncated body: %d, want 400", code)
	}
	if code := post(valid.Bytes(), map[string]string{"X-Deadline-Ms": "soon"}); code != http.StatusBadRequest {
		t.Fatalf("bad deadline header: %d, want 400", code)
	}
	if n := srv.Collector().Registry.Counter("serve.errors.bad_request").Value(); n != 3 {
		t.Fatalf("bad_request counter = %d, want 3", n)
	}
}

// TestServeObservability: the obs surface rides the service mux, and the
// serve metric family is visible in the OpenMetrics rendering.
func TestServeObservability(t *testing.T) {
	_, ts := newTestServer(t, &Options{Workers: 1})
	rng := rand.New(rand.NewSource(46))
	cl := &Client{BaseURL: ts.URL}
	if _, err := cl.GEMM(context.Background(), &GEMMRequest{
		M: 8, N: 8, K: 8, Alpha: 1,
		A: randFloats(rng, 64), B: randFloats(rng, 64),
	}); err != nil {
		t.Fatal(err)
	}

	get := func(path string) string {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %d", path, resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		return string(body)
	}

	if body := get("/openmetrics"); !strings.Contains(body, "serve_requests_total 1") ||
		!strings.Contains(body, "serve_ok_total 1") {
		t.Fatalf("openmetrics missing serve counters:\n%s", body)
	}
	if body := get("/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("healthz: %q", body)
	}
	if body := get("/v1/stats"); !strings.Contains(body, `"pool"`) {
		t.Fatalf("stats: %q", body)
	}
}

// TestServeShutdownLeakFree: a full serve/load/shutdown cycle leaves no
// goroutines behind — coalesce timers, pool workers, and HTTP servers all
// stop. Run under -race in CI.
func TestServeShutdownLeakFree(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := New(&Options{Workers: 2, CoalesceWindow: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	rng := rand.New(rand.NewSource(47))
	a, b := randFloats(rng, 16*16), randFloats(rng, 16*16)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl := &Client{BaseURL: ts.URL}
			if _, err := cl.GEMM(context.Background(), &GEMMRequest{
				M: 16, N: 16, K: 16, Alpha: 1, A: a, B: b,
			}); err != nil {
				t.Errorf("load call: %v", err)
			}
		}()
	}
	wg.Wait()
	ts.Close()
	srv.Close()
	http.DefaultClient.CloseIdleConnections()

	// Goroutine counts settle asynchronously (netpoll, timer goroutines);
	// poll with a deadline instead of asserting an instant.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestServeClosedPool: calls after Close are refused cleanly, not deadlocked.
func TestServeClosed(t *testing.T) {
	srv := New(&Options{Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()

	rng := rand.New(rand.NewSource(48))
	cl := &Client{BaseURL: ts.URL}
	_, err := cl.GEMM(context.Background(), &GEMMRequest{
		M: 4, N: 4, K: 4, Alpha: 1, A: randFloats(rng, 16), B: randFloats(rng, 16),
	})
	if err == nil {
		t.Fatal("call after Close succeeded")
	}
	he, ok := err.(*HTTPError)
	if !ok || he.Status != http.StatusServiceUnavailable {
		t.Fatalf("got %v, want 503", err)
	}
	if !strings.Contains(he.Error(), "503") || he.Throttled() {
		t.Fatalf("error string %q / Throttled=%v for a 503", he.Error(), he.Throttled())
	}
	if srv.Pool() == nil {
		t.Fatal("Pool accessor returned nil")
	}
}

// TestRunLoadInProcess exercises the load harness against an in-process
// server — the same path cmd/loadgen and the benchdiff serve suite use.
func TestRunLoadInProcess(t *testing.T) {
	_, ts := newTestServer(t, &Options{Workers: 2, CoalesceWindow: time.Millisecond})
	shapes, err := ParseShapes("16x16x16:2,24x16x8:1")
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL,
		Clients: 4,
		Calls:   40,
		Warmup:  1,
		Shapes:  shapes,
		Seed:    7,
		Check:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 40 || res.Errors != 0 || res.Rejected != 0 {
		t.Fatalf("calls=%d errors=%d rejected=%d, want 40/0/0", res.Calls, res.Errors, res.Rejected)
	}
	if res.CheckFailures != 0 {
		t.Fatalf("%d check failures", res.CheckFailures)
	}
	if res.CallsPerSec <= 0 || res.P50ms <= 0 || res.P99ms < res.P50ms {
		t.Fatalf("implausible stats: %+v", res)
	}
	if res.CoalesceRatio < 1 {
		t.Fatalf("coalesce ratio %f < 1", res.CoalesceRatio)
	}
	// Determinism: the same seed generates the same operands, so a second
	// run also checks clean against the same references.
	res2, err := RunLoad(context.Background(), LoadOptions{
		BaseURL: ts.URL, Clients: 4, Calls: 40, Shapes: shapes, Seed: 7, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CheckFailures != 0 {
		t.Fatalf("second run: %d check failures", res2.CheckFailures)
	}
	_ = fmt.Sprintf("%v", res2)
}
