package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"reflect"
	"testing"
)

// FuzzServeRequest hammers the wire decoder with arbitrary bytes: it must
// reject or accept without panicking or over-allocating (the Limits cap
// every length the attacker controls), and anything it accepts must
// re-encode and re-decode to the same request (no silent canonicalization
// on the hot path).
func FuzzServeRequest(f *testing.F) {
	// Seed with a valid request, plus the structured corruptions the unit
	// tests cover, so the fuzzer starts at the format's edges.
	mk := func(h ReqHeader, a, b, c []float64) []byte {
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, &h, a, b, c); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	valid := mk(ReqHeader{M: 2, N: 3, K: 1, Alpha: 1}, make([]float64, 2), make([]float64, 3), nil)
	f.Add(valid)
	f.Add(mk(ReqHeader{M: 1, N: 1, K: 1, TransA: "T", Alpha: 2, Beta: 0.5},
		[]float64{1}, []float64{2}, []float64{3}))
	f.Add(valid[:9])        // truncated header
	f.Add(append(valid, 0)) // trailing byte
	f.Add([]byte("DGF1"))   // magic only
	f.Add([]byte("XXXX\x00\x00\x00\x02{}"))
	corrupt := bytes.Clone(valid)
	binary.BigEndian.PutUint32(corrupt[4:], 1<<31) // dimension-overflow header length
	f.Add(corrupt)

	lim := Limits{MaxDim: 64, MaxOperandWords: 4096, MaxHeaderBytes: 1024}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(bytes.NewReader(data), lim)
		if err != nil {
			return
		}
		// NaN payloads in operand frames break DeepEqual without being a
		// decoder defect; normalize them out before the round trip.
		for _, fr := range [][]float64{req.A, req.B, req.C} {
			for i, v := range fr {
				if math.IsNaN(v) {
					fr[i] = 0
				}
			}
		}
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, &req.ReqHeader, req.A, req.B, req.C); err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		again, err := DecodeRequest(bytes.NewReader(buf.Bytes()), lim)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip drift:\n first %+v\nsecond %+v", req, again)
		}
	})
}
