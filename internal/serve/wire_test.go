package serve

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
)

func randFloats(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

func TestRequestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cases := []ReqHeader{
		{M: 4, N: 3, K: 5, Alpha: 1},
		{M: 1, N: 1, K: 1, Alpha: -2.5, Beta: 0.5},
		{M: 7, N: 2, K: 9, TransA: "T", Alpha: 1},
		{M: 2, N: 8, K: 3, TransB: "T", Alpha: 0.25, Beta: 1},
		{M: 5, N: 5, K: 5, TransA: "T", TransB: "T", Alpha: 1, Beta: -1},
	}
	for _, h := range cases {
		a := randFloats(rng, int(h.WordsA()))
		b := randFloats(rng, int(h.WordsB()))
		var c []float64
		if h.Beta != 0 {
			c = randFloats(rng, int(h.WordsC()))
		}
		var buf bytes.Buffer
		if err := EncodeRequest(&buf, &h, a, b, c); err != nil {
			t.Fatalf("%+v: encode: %v", h, err)
		}
		got, err := DecodeRequest(bytes.NewReader(buf.Bytes()), Limits{})
		if err != nil {
			t.Fatalf("%+v: decode: %v", h, err)
		}
		if got.ReqHeader != h {
			t.Fatalf("header round trip: got %+v, want %+v", got.ReqHeader, h)
		}
		if !reflect.DeepEqual(got.A, a) || !reflect.DeepEqual(got.B, b) {
			t.Fatalf("%+v: operand frames corrupted", h)
		}
		if h.Beta != 0 && !reflect.DeepEqual(got.C, c) {
			t.Fatalf("%+v: C frame corrupted", h)
		}
		if h.Beta == 0 && got.C != nil {
			t.Fatalf("%+v: C frame decoded despite beta == 0", h)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	c := randFloats(rng, 12)
	var buf bytes.Buffer
	in := &RespHeader{Status: "ok", Batched: 3, OutOfCore: true, ElapsedNs: 12345}
	if err := EncodeResponse(&buf, in, c); err != nil {
		t.Fatal(err)
	}
	h, got, err := DecodeResponse(bytes.NewReader(buf.Bytes()), Limits{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if *h != *in {
		t.Fatalf("header: got %+v, want %+v", h, in)
	}
	if !reflect.DeepEqual(got, c) {
		t.Fatal("result frame corrupted")
	}

	buf.Reset()
	if err := EncodeResponse(&buf, &RespHeader{Status: "error", Error: "boom"}, nil); err != nil {
		t.Fatal(err)
	}
	h, got, err = DecodeResponse(bytes.NewReader(buf.Bytes()), Limits{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "error" || h.Error != "boom" || got != nil {
		t.Fatalf("error response: %+v, frame %v", h, got)
	}
}

func TestDecodeRejections(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		h := ReqHeader{M: 2, N: 2, K: 2, Alpha: 1}
		a := make([]float64, 4)
		b := make([]float64, 4)
		if err := EncodeRequest(&buf, &h, a, b, nil); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	cases := []struct {
		name string
		body func() []byte
		want string
	}{
		{"empty", func() []byte { return nil }, "preamble"},
		{"bad magic", func() []byte {
			b := valid()
			b[0] = 'X'
			return b
		}, "magic"},
		{"zero header length", func() []byte {
			b := valid()
			binary.BigEndian.PutUint32(b[4:], 0)
			return b
		}, "length"},
		{"oversized header length", func() []byte {
			b := valid()
			binary.BigEndian.PutUint32(b[4:], 1<<30)
			return b
		}, "length"},
		{"truncated frame", func() []byte {
			b := valid()
			return b[:len(b)-5]
		}, "truncated"},
		{"trailing bytes", func() []byte {
			return append(valid(), 0xFF)
		}, "trailing"},
		{"bad json", func() []byte {
			var buf bytes.Buffer
			writePreamble(&buf, reqMagic, []byte("{not json"))
			return buf.Bytes()
		}, "header"},
	}
	for _, tc := range cases {
		_, err := DecodeRequest(bytes.NewReader(tc.body()), Limits{})
		if err == nil {
			t.Fatalf("%s: decode succeeded", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestHeaderValidation(t *testing.T) {
	lim := Limits{MaxDim: 100, MaxOperandWords: 500}
	cases := []struct {
		name string
		h    ReqHeader
		ok   bool
	}{
		{"valid", ReqHeader{M: 10, N: 10, K: 5, Alpha: 1}, true},
		{"zero dim", ReqHeader{M: 0, N: 10, K: 5, Alpha: 1}, false},
		{"negative dim", ReqHeader{M: 10, N: -1, K: 5, Alpha: 1}, false},
		{"dim over limit", ReqHeader{M: 101, N: 10, K: 5, Alpha: 1}, false},
		{"operand over limit", ReqHeader{M: 100, N: 100, K: 1, Alpha: 1}, false}, // C = 10000 words
		{"bad transA", ReqHeader{M: 2, N: 2, K: 2, TransA: "Q", Alpha: 1}, false},
		{"bad transB", ReqHeader{M: 2, N: 2, K: 2, TransB: "NT", Alpha: 1}, false},
		{"lowercase trans ok", ReqHeader{M: 2, N: 2, K: 2, TransA: "t", TransB: "n", Alpha: 1}, true},
		{"nan alpha", ReqHeader{M: 2, N: 2, K: 2, Alpha: math.NaN()}, false},
		{"inf beta", ReqHeader{M: 2, N: 2, K: 2, Alpha: 1, Beta: math.Inf(1)}, false},
	}
	for _, tc := range cases {
		err := tc.h.Validate(lim)
		if (err == nil) != tc.ok {
			t.Fatalf("%s: Validate = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

// Dimension overflow: a header whose dimensions multiply past int64 must be
// rejected by the dimension range check, never reach the frame allocator.
func TestHeaderOverflowRejected(t *testing.T) {
	h := ReqHeader{M: 1 << 23, N: 1 << 23, K: 1 << 23, Alpha: 1}
	if err := h.Validate(Limits{MaxDim: 1 << 30}); err == nil {
		t.Fatal("2^69-word operand accepted")
	}
}

func TestEncodeRequestValidation(t *testing.T) {
	h := ReqHeader{M: 2, N: 2, K: 2, Alpha: 1}
	var buf bytes.Buffer
	if err := EncodeRequest(&buf, &h, make([]float64, 3), make([]float64, 4), nil); err == nil {
		t.Fatal("short A frame accepted")
	}
	if err := EncodeRequest(&buf, &h, make([]float64, 4), make([]float64, 4), make([]float64, 4)); err == nil {
		t.Fatal("C frame accepted with beta == 0")
	}
	h.Beta = 1
	if err := EncodeRequest(&buf, &h, make([]float64, 4), make([]float64, 4), nil); err == nil {
		t.Fatal("missing C frame accepted with beta != 0")
	}
}

func TestParseShapes(t *testing.T) {
	got, err := ParseShapes("96x96x96:3, 64, 128x96x32:2")
	if err != nil {
		t.Fatal(err)
	}
	want := []Shape{{96, 96, 96, 3}, {64, 64, 64, 1}, {128, 32, 96, 2}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	for _, bad := range []string{"", "axbxc", "96x96", "96x96x96:0", "96x96x96:x"} {
		if _, err := ParseShapes(bad); err == nil {
			t.Fatalf("ParseShapes(%q) succeeded", bad)
		}
	}
}
