package serve

import (
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
)

// coalescer groups concurrent same-shape GEMM requests into one
// batch.Pool submission. The first request of a shape opens a group and
// arms a flush timer (the coalesce window); later same-shape arrivals join
// the group until it flushes — on the timer, or immediately when the group
// reaches maxBatch. One flush is one ExecuteEach call, so the whole group
// shares a single plan lookup and rides the pool's workers together; each
// member still gets its own per-call error (independent deadlines).
type coalescer struct {
	pool     *batch.Pool
	window   time.Duration
	maxBatch int

	// batches/calls feed the serve.coalesce_ratio metric: ratio =
	// calls.Value() / batches.Value().
	batches *obs.Counter
	calls   *obs.Counter

	mu      sync.Mutex
	pending map[shapeKey]*cgroup
	flushes sync.WaitGroup // open flushes; Close waits so the pool is quiescent
	closed  bool
}

// shapeKey matches internal/batch's bucket identity: calls agreeing on it
// share an execution plan, which is exactly the coalescing opportunity.
type shapeKey struct {
	m, n, k        int
	transA, transB bool
	betaZero       bool
}

func keyOf(c *batch.Call) shapeKey {
	return shapeKey{
		m: c.M, n: c.N, k: c.K,
		transA: c.TransA.IsTrans(), transB: c.TransB.IsTrans(),
		betaZero: c.Beta == 0,
	}
}

// result is one member's outcome: its error and the size of the batch it
// ran in.
type result struct {
	err     error
	batched int
}

// cgroup is one open shape group.
type cgroup struct {
	calls   []batch.Call
	out     []chan result
	timer   *time.Timer
	flushed bool
}

func newCoalescer(pool *batch.Pool, window time.Duration, maxBatch int, reg *obs.Registry) *coalescer {
	if maxBatch < 1 {
		maxBatch = 1
	}
	co := &coalescer{
		pool:     pool,
		window:   window,
		maxBatch: maxBatch,
		pending:  make(map[shapeKey]*cgroup),
	}
	if reg != nil {
		co.batches = reg.Counter("serve.coalesce.batches")
		co.calls = reg.Counter("serve.coalesce.calls")
	}
	return co
}

// submit enqueues a call and returns the channel its result will arrive
// on. The channel is buffered, so an abandoned waiter (deadline expired)
// never blocks the flusher.
func (co *coalescer) submit(call batch.Call) <-chan result {
	ch := make(chan result, 1)
	key := keyOf(&call)

	co.mu.Lock()
	if co.closed {
		co.mu.Unlock()
		ch <- result{err: errServerClosed}
		return ch
	}
	g := co.pending[key]
	if g == nil {
		g = &cgroup{}
		co.pending[key] = g
		co.flushes.Add(1)
		if co.window > 0 {
			gg := g
			g.timer = time.AfterFunc(co.window, func() { co.flush(key, gg) })
		}
	}
	g.calls = append(g.calls, call)
	g.out = append(g.out, ch)
	// With no window the group cannot wait for company: flush at once.
	full := len(g.calls) >= co.maxBatch || co.window <= 0
	co.mu.Unlock()

	if full {
		co.flush(key, g)
	}
	return ch
}

// flush executes one group. It is called from the window timer or from the
// submitter that filled the group; the flushed flag arbitrates the race.
func (co *coalescer) flush(key shapeKey, g *cgroup) {
	co.mu.Lock()
	if g.flushed {
		co.mu.Unlock()
		return
	}
	g.flushed = true
	if co.pending[key] == g {
		delete(co.pending, key)
	}
	calls, out := g.calls, g.out
	co.mu.Unlock()
	defer co.flushes.Done()
	if g.timer != nil {
		g.timer.Stop()
	}

	errs := co.pool.ExecuteEach(calls)
	if co.batches != nil {
		co.batches.Add(1)
		co.calls.Add(int64(len(calls)))
	}
	for i, ch := range out {
		ch <- result{err: errs[i], batched: len(calls)}
	}
}

// close flushes every pending group and waits for open flushes, leaving
// the pool quiescent so it can be closed without racing ExecuteEach.
func (co *coalescer) close() {
	co.mu.Lock()
	co.closed = true
	groups := make(map[shapeKey]*cgroup, len(co.pending))
	for k, g := range co.pending {
		groups[k] = g
	}
	co.mu.Unlock()
	for k, g := range groups {
		co.flush(k, g)
	}
	co.flushes.Wait()
}
