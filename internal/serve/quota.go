package serve

import (
	"math"
	"sync"
	"time"
)

// TenantQuota is a token-bucket rate limit: a bucket of Burst tokens
// refilled continuously at Rate tokens per second, with each admitted
// request spending one token. The zero value is a zero quota — every
// request is rejected — which is meaningful only as an explicit per-tenant
// entry (a deactivated tenant); a zero Default disables enforcement
// instead, see QuotaConfig.
type TenantQuota struct {
	Rate  float64 `json:"rate"`
	Burst float64 `json:"burst"`
}

func (q TenantQuota) zero() bool { return q.Rate <= 0 && q.Burst <= 0 }

// QuotaConfig maps tenants (the X-Tenant request header) to quotas.
// Tenants without an explicit entry fall back to Default; a zero-valued
// Default means those tenants are unlimited. An explicit zero-valued
// tenant entry is a zero-quota tenant: always rejected.
type QuotaConfig struct {
	Default TenantQuota
	Tenants map[string]TenantQuota
}

// tokenBucket is one tenant's bucket. A new bucket starts full (Burst
// tokens), so a fresh tenant can burst immediately.
type tokenBucket struct {
	mu     sync.Mutex
	q      TenantQuota
	tokens float64
	last   time.Time
}

func newTokenBucket(q TenantQuota, now time.Time) *tokenBucket {
	return &tokenBucket{q: q, tokens: q.Burst, last: now}
}

// take spends one token if available. When it cannot, it returns a
// Retry-After hint: the time until a full token accrues, or one second for
// buckets that never refill (zero-rate quotas).
func (b *tokenBucket) take(now time.Time) (ok bool, retryAfter time.Duration) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.After(b.last) {
		b.tokens = math.Min(b.q.Burst, b.tokens+now.Sub(b.last).Seconds()*b.q.Rate)
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if b.q.Rate <= 0 {
		return false, time.Second
	}
	d := time.Duration((1 - b.tokens) / b.q.Rate * float64(time.Second))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return false, d
}

// quotas is the per-tenant bucket table.
type quotas struct {
	cfg QuotaConfig
	now func() time.Time // test hook; time.Now in production

	mu      sync.Mutex
	buckets map[string]*tokenBucket
}

func newQuotas(cfg QuotaConfig) *quotas {
	return &quotas{cfg: cfg, now: time.Now, buckets: make(map[string]*tokenBucket)}
}

// admit charges the tenant one token. Tenants without an explicit quota
// under a zero Default are admitted without accounting (unlimited).
func (q *quotas) admit(tenant string) (ok bool, retryAfter time.Duration) {
	tq, explicit := q.cfg.Tenants[tenant]
	if !explicit {
		if q.cfg.Default.zero() {
			return true, 0
		}
		tq = q.cfg.Default
	}
	q.mu.Lock()
	b := q.buckets[tenant]
	if b == nil {
		b = newTokenBucket(tq, q.now())
		q.buckets[tenant] = b
	}
	q.mu.Unlock()
	return b.take(q.now())
}
