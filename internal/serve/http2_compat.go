//go:build !go1.24

package serve

import "net/http"

// EnableH2C is a no-op before go1.24 (http.Protocols does not exist);
// connections fall back to HTTP/1.1. Returns false: h2c was not enabled.
func EnableH2C(srv *http.Server, tr *http.Transport) bool {
	_ = srv
	_ = tr
	return false
}
