// Package serve is the network front end over the batched DGEFMM engine:
// an HTTP service exposing GEMM calls with same-shape request coalescing
// into internal/batch shape buckets, admission control and backpressure,
// per-tenant token-bucket quotas, request-deadline propagation down to
// batch cancellation, and an out-of-core tiled path for operands too large
// to hold in a single in-core workspace (internal/outofcore).
//
// The wire protocol is JSON control plus binary operand frames. One GEMM
// call travels as one POST body:
//
//	magic   "DGF1" (4 bytes)
//	hdrlen  uint32 big-endian — length of the JSON header that follows
//	header  JSON (ReqHeader): dimensions, transposes, scalars
//	A       float64 little-endian, row-major, tightly packed
//	B       float64 little-endian, row-major, tightly packed
//	C       present iff beta != 0 (the accumulation input)
//
// and the response mirrors it: magic "DGR1", a JSON RespHeader, then the
// m×n result frame iff the status is ok. Operand frames are row-major
// because that is what network clients naturally hold; the server maps
// them onto the engine's column-major BLAS convention without a transpose
// pass via the identity Cᵀ = α·op(B)ᵀ·op(A)ᵀ + β·Cᵀ (a row-major r×c
// matrix is byte-identical to its column-major c×r transpose).
//
// Observability rides on the same mux: the obs debug surface (/debug/vars,
// /debug/pprof, /metrics, /openmetrics, /trace, /spans) is mounted next to
// /v1/gemm, so the service is born with a live dashboard.
package serve

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"

	"repro/internal/blas"
)

// ContentType is the media type of request and response bodies.
const ContentType = "application/x-dgefmm"

var (
	reqMagic  = [4]byte{'D', 'G', 'F', '1'}
	respMagic = [4]byte{'D', 'G', 'R', '1'}
)

// Limits bounds what the decoder accepts; the zero value of any field
// selects its default. They are the wire format's defense against
// dimension overflow and memory-bomb headers.
type Limits struct {
	// MaxDim caps each of m, n, k. Default 65536; hard-capped at 2^24 so
	// operand word counts cannot overflow int64 arithmetic.
	MaxDim int
	// MaxOperandWords caps each operand frame's float64 count (m·k, k·n,
	// m·n). Default 2^26 (512 MiB per frame).
	MaxOperandWords int64
	// MaxHeaderBytes caps the JSON header length. Default 4096.
	MaxHeaderBytes int
}

// DefaultLimits are the server defaults.
var DefaultLimits = Limits{MaxDim: 1 << 16, MaxOperandWords: 1 << 26, MaxHeaderBytes: 1 << 12}

func (l Limits) withDefaults() Limits {
	if l.MaxDim <= 0 {
		l.MaxDim = DefaultLimits.MaxDim
	}
	if l.MaxDim > 1<<24 {
		l.MaxDim = 1 << 24
	}
	if l.MaxOperandWords <= 0 {
		l.MaxOperandWords = DefaultLimits.MaxOperandWords
	}
	if l.MaxHeaderBytes <= 0 {
		l.MaxHeaderBytes = DefaultLimits.MaxHeaderBytes
	}
	return l
}

// ReqHeader is the JSON control header of a GEMM request: compute
// C ← alpha·op(A)·op(B) + beta·C with op(A) M×K and op(B) K×N. TransA and
// TransB are "N" (or empty) for the identity and "T" for the transpose,
// matching the BLAS character arguments.
type ReqHeader struct {
	M      int     `json:"m"`
	N      int     `json:"n"`
	K      int     `json:"k"`
	TransA string  `json:"transA,omitempty"`
	TransB string  `json:"transB,omitempty"`
	Alpha  float64 `json:"alpha"`
	Beta   float64 `json:"beta,omitempty"`
}

func parseTrans(s, which string) (blas.Transpose, error) {
	switch s {
	case "", "N", "n":
		return blas.NoTrans, nil
	case "T", "t":
		return blas.Trans, nil
	}
	return 0, fmt.Errorf("serve: bad %s %q (want N or T)", which, s)
}

func (h *ReqHeader) transA() blas.Transpose { t, _ := parseTrans(h.TransA, "transA"); return t }
func (h *ReqHeader) transB() blas.Transpose { t, _ := parseTrans(h.TransB, "transB"); return t }

// WordsA/WordsB/WordsC are the operand frame sizes in float64 words. The
// stored operand always has r·c = M·K (resp. K·N) elements regardless of
// the transpose flag.
func (h *ReqHeader) WordsA() int64 { return int64(h.M) * int64(h.K) }
func (h *ReqHeader) WordsB() int64 { return int64(h.K) * int64(h.N) }
func (h *ReqHeader) WordsC() int64 { return int64(h.M) * int64(h.N) }

// Validate checks the header against the limits: dimension range (which
// also rules out word-count overflow), transpose flags, finite scalars.
func (h *ReqHeader) Validate(lim Limits) error {
	lim = lim.withDefaults()
	for _, d := range [...]struct {
		name string
		v    int
	}{{"m", h.M}, {"n", h.N}, {"k", h.K}} {
		if d.v < 1 || d.v > lim.MaxDim {
			return fmt.Errorf("serve: dimension %s=%d out of range [1, %d]", d.name, d.v, lim.MaxDim)
		}
	}
	if _, err := parseTrans(h.TransA, "transA"); err != nil {
		return err
	}
	if _, err := parseTrans(h.TransB, "transB"); err != nil {
		return err
	}
	for _, s := range [...]struct {
		name string
		v    float64
	}{{"alpha", h.Alpha}, {"beta", h.Beta}} {
		if math.IsNaN(s.v) || math.IsInf(s.v, 0) {
			return fmt.Errorf("serve: %s must be finite", s.name)
		}
	}
	for _, f := range [...]struct {
		name  string
		words int64
	}{{"A", h.WordsA()}, {"B", h.WordsB()}, {"C", h.WordsC()}} {
		if f.words > lim.MaxOperandWords {
			return fmt.Errorf("serve: operand %s needs %d words, over the %d limit", f.name, f.words, lim.MaxOperandWords)
		}
	}
	return nil
}

// DecodeHeader reads and validates the request preamble and JSON header,
// leaving r positioned at the first operand frame.
func DecodeHeader(r io.Reader, lim Limits) (*ReqHeader, error) {
	lim = lim.withDefaults()
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, fmt.Errorf("serve: short request preamble: %w", err)
	}
	if !bytes.Equal(pre[:4], reqMagic[:]) {
		return nil, fmt.Errorf("serve: bad request magic %q", pre[:4])
	}
	n := binary.BigEndian.Uint32(pre[4:])
	if n == 0 || n > uint32(lim.MaxHeaderBytes) {
		return nil, fmt.Errorf("serve: header length %d out of range (1..%d)", n, lim.MaxHeaderBytes)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("serve: truncated header: %w", err)
	}
	h := new(ReqHeader)
	if err := json.Unmarshal(buf, h); err != nil {
		return nil, fmt.Errorf("serve: header: %w", err)
	}
	if err := h.Validate(lim); err != nil {
		return nil, err
	}
	return h, nil
}

// frameChunk is the float64 count per conversion chunk: frames are decoded
// through a fixed-size byte buffer so a large operand never needs a second
// full-size allocation.
const frameChunk = 4096

// ReadFrame reads words little-endian float64s from r into a fresh slice.
func ReadFrame(r io.Reader, words int64, what string) ([]float64, error) {
	out := make([]float64, words)
	if err := ReadFrameInto(r, out, what); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFrameInto fills dst with little-endian float64s from r.
func ReadFrameInto(r io.Reader, dst []float64, what string) error {
	buf := make([]byte, min64(frameChunk, int64(len(dst)))*8)
	for off := 0; off < len(dst); {
		n := len(dst) - off
		if n > frameChunk {
			n = frameChunk
		}
		b := buf[:n*8]
		if _, err := io.ReadFull(r, b); err != nil {
			return fmt.Errorf("serve: truncated %s frame at word %d of %d: %w", what, off, len(dst), err)
		}
		for i := 0; i < n; i++ {
			dst[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		off += n
	}
	return nil
}

// WriteFrame writes the slice as little-endian float64s.
func WriteFrame(w io.Writer, src []float64) error {
	buf := make([]byte, min64(frameChunk, int64(len(src)))*8)
	for off := 0; off < len(src); {
		n := len(src) - off
		if n > frameChunk {
			n = frameChunk
		}
		b := buf[:n*8]
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(src[off+i]))
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
		off += n
	}
	return nil
}

// Request is a fully decoded in-core GEMM request. Operand slices hold the
// wire layout: row-major, tightly packed.
type Request struct {
	ReqHeader
	A, B []float64
	// C is the accumulation input; non-nil iff Beta != 0.
	C []float64
}

// DecodeRequest decodes a complete request body: header, operand frames,
// and an end-of-body check (trailing bytes are an error — a frame-length
// mismatch must not pass silently).
func DecodeRequest(r io.Reader, lim Limits) (*Request, error) {
	h, err := DecodeHeader(r, lim)
	if err != nil {
		return nil, err
	}
	req := &Request{ReqHeader: *h}
	if req.A, err = ReadFrame(r, h.WordsA(), "A"); err != nil {
		return nil, err
	}
	if req.B, err = ReadFrame(r, h.WordsB(), "B"); err != nil {
		return nil, err
	}
	if h.Beta != 0 {
		if req.C, err = ReadFrame(r, h.WordsC(), "C"); err != nil {
			return nil, err
		}
	}
	var one [1]byte
	if _, err := io.ReadFull(r, one[:]); err == nil {
		return nil, errors.New("serve: trailing bytes after operand frames")
	}
	return req, nil
}

// EncodeRequest writes a request body in the wire format. The operand
// slices must match the header's frame sizes; c must be non-nil iff
// beta != 0.
func EncodeRequest(w io.Writer, h *ReqHeader, a, b, c []float64) error {
	if err := h.Validate(Limits{}); err != nil {
		return err
	}
	if int64(len(a)) != h.WordsA() || int64(len(b)) != h.WordsB() {
		return fmt.Errorf("serve: operand length mismatch: len(A)=%d want %d, len(B)=%d want %d",
			len(a), h.WordsA(), len(b), h.WordsB())
	}
	if h.Beta != 0 && int64(len(c)) != h.WordsC() {
		return fmt.Errorf("serve: len(C)=%d, want %d (beta != 0)", len(c), h.WordsC())
	}
	if h.Beta == 0 && c != nil {
		return errors.New("serve: C frame present with beta == 0")
	}
	hdr, err := json.Marshal(h)
	if err != nil {
		return err
	}
	if err := writePreamble(w, reqMagic, hdr); err != nil {
		return err
	}
	if err := WriteFrame(w, a); err != nil {
		return err
	}
	if err := WriteFrame(w, b); err != nil {
		return err
	}
	if h.Beta != 0 {
		return WriteFrame(w, c)
	}
	return nil
}

// RespHeader is the JSON control header of a response.
type RespHeader struct {
	// Status is "ok" or "error".
	Status string `json:"status"`
	// Error carries the failure detail when Status is "error".
	Error string `json:"error,omitempty"`
	// Batched is the size of the coalesced batch this call rode in (1 =
	// it ran alone). Load generators derive the coalesce ratio from it.
	Batched int `json:"batched,omitempty"`
	// OutOfCore marks calls routed through the tiled out-of-core path.
	OutOfCore bool `json:"outOfCore,omitempty"`
	// ElapsedNs is the server-side latency from admission to result.
	ElapsedNs int64 `json:"elapsedNs,omitempty"`
}

func writePreamble(w io.Writer, magic [4]byte, hdr []byte) error {
	var pre [8]byte
	copy(pre[:4], magic[:])
	binary.BigEndian.PutUint32(pre[4:], uint32(len(hdr)))
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	_, err := w.Write(hdr)
	return err
}

// writeRespHeader emits the response preamble; the C frame (if any)
// follows via WriteFrame — split so the out-of-core path can stream the
// result band by band without materializing it.
func writeRespHeader(w io.Writer, h *RespHeader) error {
	hdr, err := json.Marshal(h)
	if err != nil {
		return err
	}
	return writePreamble(w, respMagic, hdr)
}

// EncodeResponse writes a complete response: header plus, when Status is
// "ok", the result frame.
func EncodeResponse(w io.Writer, h *RespHeader, c []float64) error {
	if err := writeRespHeader(w, h); err != nil {
		return err
	}
	if h.Status == "ok" {
		return WriteFrame(w, c)
	}
	return nil
}

// DecodeResponse reads a response; words is the expected result frame size
// (the caller knows m·n). On Status "error" the result slice is nil and
// the header carries the detail.
func DecodeResponse(r io.Reader, lim Limits, words int64) (*RespHeader, []float64, error) {
	lim = lim.withDefaults()
	var pre [8]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return nil, nil, fmt.Errorf("serve: short response preamble: %w", err)
	}
	if !bytes.Equal(pre[:4], respMagic[:]) {
		return nil, nil, fmt.Errorf("serve: bad response magic %q", pre[:4])
	}
	n := binary.BigEndian.Uint32(pre[4:])
	if n == 0 || n > uint32(lim.MaxHeaderBytes) {
		return nil, nil, fmt.Errorf("serve: response header length %d out of range", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, nil, fmt.Errorf("serve: truncated response header: %w", err)
	}
	h := new(RespHeader)
	if err := json.Unmarshal(buf, h); err != nil {
		return nil, nil, fmt.Errorf("serve: response header: %w", err)
	}
	if h.Status != "ok" {
		return h, nil, nil
	}
	c, err := ReadFrame(r, words, "C")
	if err != nil {
		return nil, nil, err
	}
	return h, c, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
