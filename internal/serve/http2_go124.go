//go:build go1.24

package serve

import "net/http"

// EnableH2C switches a server and/or transport to speak cleartext HTTP/2
// alongside HTTP/1, using the stdlib http.Protocols knob (go1.24+). Binary
// GEMM calls benefit from HTTP/2's single connection: many concurrent calls
// multiplex over one TCP stream, which is exactly the arrival pattern the
// coalescer feeds on. Returns true when h2c was actually enabled.
func EnableH2C(srv *http.Server, tr *http.Transport) bool {
	if srv != nil {
		p := new(http.Protocols)
		p.SetHTTP1(true)
		p.SetUnencryptedHTTP2(true)
		srv.Protocols = p
	}
	if tr != nil {
		p := new(http.Protocols)
		p.SetUnencryptedHTTP2(true)
		tr.Protocols = p
	}
	return true
}
