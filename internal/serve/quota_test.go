package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives the quotas' time hook deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestQuotas(cfg QuotaConfig) (*quotas, *fakeClock) {
	q := newQuotas(cfg)
	clk := newFakeClock()
	q.now = clk.now
	return q, clk
}

func TestQuotaTable(t *testing.T) {
	cases := []struct {
		name   string
		cfg    QuotaConfig
		tenant string
		// admitted counts how many back-to-back requests (no time passing)
		// succeed before the first rejection; -1 means never rejected.
		admitted int
	}{
		{"zero default is unlimited", QuotaConfig{}, "anyone", -1},
		{"default burst caps strangers",
			QuotaConfig{Default: TenantQuota{Rate: 10, Burst: 3}}, "stranger", 3},
		{"explicit tenant overrides default",
			QuotaConfig{Default: TenantQuota{Rate: 10, Burst: 3},
				Tenants: map[string]TenantQuota{"vip": {Rate: 100, Burst: 50}}}, "vip", 50},
		{"zero-quota tenant always rejected",
			QuotaConfig{Tenants: map[string]TenantQuota{"banned": {}}}, "banned", 0},
		{"zero-quota tenant under unlimited default still rejected",
			QuotaConfig{Default: TenantQuota{},
				Tenants: map[string]TenantQuota{"banned": {}}}, "banned", 0},
	}
	for _, tc := range cases {
		q, _ := newTestQuotas(tc.cfg)
		const probes = 100
		got := -1
		for i := 0; i < probes; i++ {
			ok, retry := q.admit(tc.tenant)
			if !ok {
				if retry <= 0 {
					t.Fatalf("%s: rejection without a Retry-After hint", tc.name)
				}
				got = i
				break
			}
		}
		if got != tc.admitted {
			t.Fatalf("%s: first rejection at call %d, want %d", tc.name, got, tc.admitted)
		}
	}
}

func TestQuotaRefill(t *testing.T) {
	q, clk := newTestQuotas(QuotaConfig{Default: TenantQuota{Rate: 2, Burst: 4}})

	for i := 0; i < 4; i++ {
		if ok, _ := q.admit("t"); !ok {
			t.Fatalf("burst call %d rejected", i)
		}
	}
	ok, retry := q.admit("t")
	if ok {
		t.Fatal("call past the burst admitted")
	}
	// 2 tokens/s with an empty bucket: a full token is 500ms away.
	if retry < 400*time.Millisecond || retry > 600*time.Millisecond {
		t.Fatalf("Retry-After hint %v, want ~500ms", retry)
	}

	clk.advance(retry)
	if ok, _ := q.admit("t"); !ok {
		t.Fatal("rejected after waiting out the Retry-After hint")
	}

	// Refill never exceeds the burst: a long idle stretch grants exactly
	// Burst tokens again, not Rate×idle.
	clk.advance(time.Hour)
	admitted := 0
	for i := 0; i < 100; i++ {
		ok, _ := q.admit("t")
		if !ok {
			break
		}
		admitted++
	}
	if admitted != 4 {
		t.Fatalf("after a long idle %d calls admitted, want the burst of 4", admitted)
	}
}

// Distinct tenants own distinct buckets: draining one leaves the other full.
func TestQuotaTenantIsolation(t *testing.T) {
	q, _ := newTestQuotas(QuotaConfig{Default: TenantQuota{Rate: 1, Burst: 2}})
	for i := 0; i < 2; i++ {
		if ok, _ := q.admit("a"); !ok {
			t.Fatalf("a: burst call %d rejected", i)
		}
	}
	if ok, _ := q.admit("a"); ok {
		t.Fatal("a: drained bucket admitted")
	}
	for i := 0; i < 2; i++ {
		if ok, _ := q.admit("b"); !ok {
			t.Fatalf("b: burst call %d rejected despite a's drain", i)
		}
	}
}

// Concurrent admits on one tenant must neither race (run under -race) nor
// over-admit: exactly Burst of the competing calls may pass.
func TestQuotaConcurrentAdmission(t *testing.T) {
	const burst, workers, perWorker = 16, 8, 10
	q, _ := newTestQuotas(QuotaConfig{Default: TenantQuota{Rate: 0.001, Burst: burst}})

	var wg sync.WaitGroup
	admitted := make([]int, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if ok, _ := q.admit("shared"); ok {
					admitted[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range admitted {
		total += n
	}
	if total != burst {
		t.Fatalf("%d admissions for a burst of %d", total, burst)
	}
}

// Concurrent first contact: the bucket must be created exactly once, so the
// combined admissions still respect the burst.
func TestQuotaConcurrentFirstContact(t *testing.T) {
	const burst = 3
	q, _ := newTestQuotas(QuotaConfig{Default: TenantQuota{Rate: 0.001, Burst: burst}})
	var wg sync.WaitGroup
	results := make(chan bool, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				ok, _ := q.admit("fresh")
				results <- ok
			}
		}()
	}
	wg.Wait()
	close(results)
	total := 0
	for ok := range results {
		if ok {
			total++
		}
	}
	if total != burst {
		t.Fatalf("%d admissions for a burst of %d", total, burst)
	}
}

func TestTokenBucketZeroRateHint(t *testing.T) {
	b := newTokenBucket(TenantQuota{}, time.Now())
	ok, retry := b.take(time.Now())
	if ok || retry != time.Second {
		t.Fatalf("zero-rate bucket: ok=%v retry=%v, want rejected with 1s hint", ok, retry)
	}
}
