package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/blas"
	"repro/internal/strassen"
)

// Shape is one entry of a load mix: an M×K by K×N multiply issued with
// relative frequency Weight.
type Shape struct {
	M, N, K int
	Weight  int
}

// ParseShapes parses a load-mix spec: comma-separated entries of the form
// "MxKxN:weight" ("96x96x96:3"), where a bare order ("64") means a cube
// and a missing weight means 1.
func ParseShapes(spec string) ([]Shape, error) {
	var out []Shape
	for _, ent := range strings.Split(spec, ",") {
		ent = strings.TrimSpace(ent)
		if ent == "" {
			continue
		}
		s := Shape{Weight: 1}
		if at := strings.IndexByte(ent, ':'); at >= 0 {
			w, err := strconv.Atoi(ent[at+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("serve: bad shape weight in %q", ent)
			}
			s.Weight = w
			ent = ent[:at]
		}
		dims := strings.Split(ent, "x")
		switch len(dims) {
		case 1:
			n, err := strconv.Atoi(dims[0])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("serve: bad shape %q", ent)
			}
			s.M, s.K, s.N = n, n, n
		case 3:
			for i, dst := range []*int{&s.M, &s.K, &s.N} {
				d, err := strconv.Atoi(dims[i])
				if err != nil || d < 1 {
					return nil, fmt.Errorf("serve: bad shape %q", ent)
				}
				*dst = d
			}
		default:
			return nil, fmt.Errorf("serve: bad shape %q (want MxKxN or order)", ent)
		}
		out = append(out, s)
	}
	if len(out) == 0 {
		return nil, errors.New("serve: empty shape mix")
	}
	return out, nil
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// BaseURL is the service root.
	BaseURL string
	// Clients is the number of concurrent client goroutines (default 8).
	Clients int
	// Calls is the total measured calls across clients (default 400).
	Calls int
	// Warmup calls per client are issued and discarded before measuring,
	// so plan construction and arena warmup stay out of the percentiles
	// (default 4 per client).
	Warmup int
	// Shapes is the weighted shape mix (required).
	Shapes []Shape
	// Seed makes the operand data and the shape sequence deterministic.
	Seed int64
	// Tenant is the X-Tenant header value.
	Tenant string
	// Timeout is the per-call deadline (0 = none).
	Timeout time.Duration
	// Check verifies every response against a locally computed reference
	// (sequential DGEFMM on the same operands) within a small relative
	// tolerance — the out-of-core tiled path accumulates in a different
	// order, so equality is approximate by design.
	Check bool
	// HTTPClient overrides the transport for every client goroutine.
	HTTPClient *httpDoer
}

type httpDoer = Client

// LoadResult aggregates one load run.
type LoadResult struct {
	Calls    int           `json:"calls"`    // successful measured calls
	Errors   int           `json:"errors"`   // failed calls (non-429)
	Rejected int           `json:"rejected"` // 429 rejections (quota/backpressure)
	Elapsed  time.Duration `json:"elapsed"`

	CallsPerSec   float64 `json:"calls_per_sec"`
	P50ms         float64 `json:"p50_ms"`
	P99ms         float64 `json:"p99_ms"`
	CoalesceRatio float64 `json:"coalesce_ratio"` // measured calls per server batch
	OutOfCore     int     `json:"out_of_core"`    // calls served by the tiled path
	CheckFailures int     `json:"check_failures"`
}

// RunLoad drives a deterministic concurrent load against a service and
// reports throughput, latency percentiles, and the coalesce ratio. Each
// client goroutine owns a seeded RNG (Seed+client), pre-generates one
// operand set per shape, and issues calls drawn from the weighted mix, so
// a run is reproducible modulo scheduling.
func RunLoad(ctx context.Context, opts LoadOptions) (*LoadResult, error) {
	if len(opts.Shapes) == 0 {
		return nil, errors.New("serve: RunLoad needs a shape mix")
	}
	clients := opts.Clients
	if clients <= 0 {
		clients = 8
	}
	total := opts.Calls
	if total <= 0 {
		total = 400
	}
	warmup := opts.Warmup
	if warmup < 0 {
		warmup = 0
	}

	totalWeight := 0
	for _, s := range opts.Shapes {
		totalWeight += s.Weight
	}

	type clientStats struct {
		lat       []float64 // ms
		invBatch  float64   // sum of 1/batched over ok calls
		ok        int
		errors    int
		rejected  int
		outOfCore int
		checkFail int
	}
	stats := make([]clientStats, clients)

	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		calls := total / clients
		if ci < total%clients {
			calls++
		}
		wg.Add(1)
		go func(ci, calls int) {
			defer wg.Done()
			st := &stats[ci]
			rng := rand.New(rand.NewSource(opts.Seed + int64(ci)))
			cl := Client{BaseURL: opts.BaseURL, Tenant: opts.Tenant}
			if opts.HTTPClient != nil {
				cl.HTTPClient = opts.HTTPClient.HTTPClient
			}

			// One operand set (and optional reference result) per shape.
			type shapeData struct {
				req  GEMMRequest
				want []float64
			}
			data := make([]shapeData, len(opts.Shapes))
			for si, sh := range opts.Shapes {
				a := randomSlice(rng, sh.M*sh.K)
				b := randomSlice(rng, sh.K*sh.N)
				data[si].req = GEMMRequest{
					TransA: blas.NoTrans, TransB: blas.NoTrans,
					M: sh.M, N: sh.N, K: sh.K, Alpha: 1,
					A: a, B: b,
				}
				if opts.Check {
					data[si].want = referenceGEMM(&data[si].req)
				}
			}
			pick := func() *shapeData {
				w := rng.Intn(totalWeight)
				for si := range opts.Shapes {
					if w -= opts.Shapes[si].Weight; w < 0 {
						return &data[si]
					}
				}
				return &data[len(data)-1]
			}

			issue := func(measured bool) {
				sd := pick()
				callCtx := ctx
				cancel := context.CancelFunc(func() {})
				if opts.Timeout > 0 {
					callCtx, cancel = context.WithTimeout(ctx, opts.Timeout)
				}
				res, err := cl.GEMM(callCtx, &sd.req)
				cancel()
				if !measured {
					return
				}
				if err != nil {
					var he *HTTPError
					if errors.As(err, &he) && he.Throttled() {
						st.rejected++
					} else {
						st.errors++
					}
					return
				}
				st.ok++
				st.lat = append(st.lat, float64(res.Latency.Nanoseconds())/1e6)
				if res.Batched > 0 {
					st.invBatch += 1 / float64(res.Batched)
				} else {
					st.invBatch++
				}
				if res.OutOfCore {
					st.outOfCore++
				}
				if sd.want != nil && !approxEqual(res.C, sd.want, 1e-10) {
					st.checkFail++
				}
			}

			for i := 0; i < warmup && ctx.Err() == nil; i++ {
				issue(false)
			}
			for i := 0; i < calls && ctx.Err() == nil; i++ {
				issue(true)
			}
		}(ci, calls)
	}
	wg.Wait()
	elapsed := time.Since(start)

	out := &LoadResult{Elapsed: elapsed}
	var lat []float64
	var invBatch float64
	for i := range stats {
		st := &stats[i]
		out.Calls += st.ok
		out.Errors += st.errors
		out.Rejected += st.rejected
		out.OutOfCore += st.outOfCore
		out.CheckFailures += st.checkFail
		invBatch += st.invBatch
		lat = append(lat, st.lat...)
	}
	if out.Calls > 0 && elapsed > 0 {
		out.CallsPerSec = float64(out.Calls) / elapsed.Seconds()
	}
	if invBatch > 0 {
		out.CoalesceRatio = float64(out.Calls) / invBatch
	}
	sort.Float64s(lat)
	out.P50ms = percentile(lat, 0.50)
	out.P99ms = percentile(lat, 0.99)
	if ctx.Err() != nil && out.Calls == 0 {
		return out, ctx.Err()
	}
	return out, nil
}

func randomSlice(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()*2 - 1
	}
	return v
}

// referenceGEMM computes the row-major expected result with a sequential
// DGEFMM call — the same mapping the server applies, so in-core responses
// match bit-for-bit.
func referenceGEMM(req *GEMMRequest) []float64 {
	hdr := &ReqHeader{
		M: req.M, N: req.N, K: req.K,
		TransA: transString(req.TransA), TransB: transString(req.TransB),
		Alpha: req.Alpha, Beta: req.Beta,
	}
	c := make([]float64, hdr.WordsC())
	if req.C != nil {
		copy(c, req.C)
	}
	call := callFromWire(hdr, req.A, req.B, c)
	cfg := strassen.DefaultConfig(nil)
	strassen.DGEFMM(cfg, call.TransA, call.TransB, call.M, call.N, call.K,
		call.Alpha, call.A, call.Lda, call.B, call.Ldb, call.Beta, call.C, call.Ldc)
	return c
}

// approxEqual compares element-wise with a relative-to-magnitude epsilon,
// loose enough for the out-of-core path's different accumulation order.
func approxEqual(got, want []float64, tol float64) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		diff := math.Abs(got[i] - want[i])
		scale := math.Max(1, math.Abs(want[i]))
		if diff > tol*scale {
			return false
		}
	}
	return true
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Round(q * float64(len(sorted)-1)))
	return sorted[idx]
}
