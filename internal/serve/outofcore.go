package serve

import (
	"context"
	"encoding/binary"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/outofcore"
)

// serveOutOfCore handles a request whose operands exceed the LargeWords
// threshold: instead of materializing them for the batch pool, the chunked
// transfer is decoded row band by row band into outofcore stores (files
// under SpoolDir, or accounted in-memory stores), multiplied with the
// tiled algorithm under a bounded in-core workspace, and the result is
// streamed back band by band. Peak in-core usage is therefore the tile
// workspace plus one transfer band, independent of the operand sizes.
//
// The tiled path computes in the logical (column-major) orientation, so
// transposed operands are not offered here — the client holds the operand
// it wants transposed and can stream it in its natural orientation.
func (s *Server) serveOutOfCore(ctx context.Context, w http.ResponseWriter, body io.Reader, hdr *ReqHeader, start time.Time) {
	if hdr.transA().IsTrans() || hdr.transB().IsTrans() {
		s.mBadRequest.Add(1)
		reject(w, http.StatusBadRequest, 0, "serve: out-of-core path supports transA=N, transB=N only")
		return
	}

	spool := ""
	if s.opts.SpoolDir != "" {
		dir, err := os.MkdirTemp(s.opts.SpoolDir, "dgefmm-oo-")
		if err != nil {
			s.mInternal.Add(1)
			reject(w, http.StatusInternalServerError, 0, err.Error())
			return
		}
		defer os.RemoveAll(dir)
		spool = dir
	}
	newStore := func(name string, rows, cols int) (outofcore.Store, func() error, error) {
		if spool == "" {
			return outofcore.NewMemStore(matrix.NewDense(rows, cols)), func() error { return nil }, nil
		}
		fs, err := outofcore.CreateFileStore(filepath.Join(spool, name), rows, cols)
		if err != nil {
			return nil, nil, err
		}
		return fs, fs.Close, nil
	}

	fail := func(code int, counter interface{ Add(int64) }, msg string) {
		counter.Add(1)
		reject(w, code, 0, msg)
	}

	// Band size: match the tile order so the transfer buffer never
	// dwarfs the compute workspace.
	band := outofcore.TileOrder(s.opts.OutOfCoreWords)
	if s.opts.OutOfCoreWords <= 0 {
		band = 256
	}

	aStore, aClose, err := newStore("a.f64", hdr.M, hdr.K)
	if err != nil {
		fail(http.StatusInternalServerError, s.mInternal, err.Error())
		return
	}
	defer aClose()
	bStore, bClose, err := newStore("b.f64", hdr.K, hdr.N)
	if err != nil {
		fail(http.StatusInternalServerError, s.mInternal, err.Error())
		return
	}
	defer bClose()
	cStore, cClose, err := newStore("c.f64", hdr.M, hdr.N)
	if err != nil {
		fail(http.StatusInternalServerError, s.mInternal, err.Error())
		return
	}
	defer cClose()

	if err := streamOperand(body, aStore, band); err != nil {
		fail(http.StatusBadRequest, s.mBadRequest, err.Error())
		return
	}
	if err := streamOperand(body, bStore, band); err != nil {
		fail(http.StatusBadRequest, s.mBadRequest, err.Error())
		return
	}
	if hdr.Beta != 0 {
		if err := streamOperand(body, cStore, band); err != nil {
			fail(http.StatusBadRequest, s.mBadRequest, err.Error())
			return
		}
	}
	if err := ctx.Err(); err != nil {
		fail(http.StatusGatewayTimeout, s.mDeadline, err.Error())
		return
	}

	// Tile products need a private kernel: the default kernels keep
	// packing arenas, and concurrent large requests must not share one.
	cfg := s.ooBase
	cfg.Kernel = blas.CloneKernel(cfg.Kernel)
	if err := outofcore.Multiply(cStore, aStore, bStore, hdr.Alpha, hdr.Beta, &outofcore.Options{
		WorkspaceWords: s.opts.OutOfCoreWords,
		Config:         &cfg,
	}); err != nil {
		fail(http.StatusInternalServerError, s.mInternal, err.Error())
		return
	}
	if err := ctx.Err(); err != nil {
		fail(http.StatusGatewayTimeout, s.mDeadline, err.Error())
		return
	}

	s.mOutOfCore.Add(1)
	s.mOK.Add(1)
	s.mBytesOut.Add(8 * hdr.WordsC())
	elapsed := time.Since(start)
	s.hLatency.Observe(elapsed)
	w.Header().Set("Content-Type", ContentType)
	if err := writeRespHeader(w, &RespHeader{
		Status:    "ok",
		Batched:   1,
		OutOfCore: true,
		ElapsedNs: elapsed.Nanoseconds(),
	}); err != nil {
		s.log.Debug("out-of-core response header write failed", "err", err)
		return
	}
	rr := outofcore.NewRowReader(cStore, band)
	for {
		row, err := rr.ReadRow()
		if err == io.EOF {
			return
		}
		if err != nil {
			s.log.Debug("out-of-core result read failed", "err", err)
			return
		}
		if err := WriteFrame(w, row); err != nil {
			s.log.Debug("out-of-core response write failed", "err", err)
			return
		}
	}
}

// streamOperand decodes one row-major wire frame into a store, one row at
// a time through a RowWriter band.
func streamOperand(body io.Reader, dst outofcore.Store, band int) error {
	rows, cols := dst.Dims()
	w := outofcore.NewRowWriter(dst, band)
	buf := make([]byte, cols*8)
	row := make([]float64, cols)
	for i := 0; i < rows; i++ {
		if _, err := io.ReadFull(body, buf); err != nil {
			return &frameError{err}
		}
		for j := 0; j < cols; j++ {
			row[j] = math.Float64frombits(binary.LittleEndian.Uint64(buf[j*8:]))
		}
		if err := w.WriteRow(row); err != nil {
			return err
		}
	}
	return w.Close()
}

type frameError struct{ err error }

func (e *frameError) Error() string { return "serve: truncated operand frame: " + e.err.Error() }
func (e *frameError) Unwrap() error { return e.err }
