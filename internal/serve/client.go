package serve

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/blas"
)

// GEMMRequest is a client-side GEMM call: C ← Alpha·op(A)·op(B) + Beta·C
// with op(A) M×K and op(B) K×N. Operands are row-major, tightly packed;
// C is required iff Beta != 0.
type GEMMRequest struct {
	TransA, TransB blas.Transpose
	M, N, K        int
	Alpha, Beta    float64
	A, B, C        []float64
}

// GEMMResult is a successful call's outcome.
type GEMMResult struct {
	// C is the m×n row-major result.
	C []float64
	// Batched is the size of the server-side coalesced batch the call
	// rode in.
	Batched int
	// OutOfCore marks results computed by the tiled out-of-core path.
	OutOfCore bool
	// Latency is the client-observed round-trip time.
	Latency time.Duration
}

// HTTPError is a non-200 response: quota or backpressure rejections
// surface as StatusTooManyRequests with a RetryAfter hint, expired
// deadlines as StatusGatewayTimeout.
type HTTPError struct {
	Status     int
	RetryAfter time.Duration
	Body       string
}

func (e *HTTPError) Error() string {
	return fmt.Sprintf("serve: HTTP %d: %s", e.Status, strings.TrimSpace(e.Body))
}

// Throttled reports whether the error is a 429 rejection.
func (e *HTTPError) Throttled() bool { return e.Status == http.StatusTooManyRequests }

// Client calls a dgefmmd service.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8433".
	BaseURL string
	// HTTPClient overrides http.DefaultClient (timeouts, transports).
	HTTPClient *http.Client
	// Tenant is sent as X-Tenant for quota accounting; empty means the
	// server's "anonymous" tenant.
	Tenant string
	// Limits bounds response decoding; zero selects DefaultLimits.
	Limits Limits
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func transString(t blas.Transpose) string {
	if t.IsTrans() {
		return "T"
	}
	return "N"
}

// GEMM performs one call. A context deadline is propagated to the server
// as the X-Deadline-Ms budget, so the server's batch layer can cancel the
// call if it cannot start in time.
func (c *Client) GEMM(ctx context.Context, req *GEMMRequest) (*GEMMResult, error) {
	hdr := &ReqHeader{
		M: req.M, N: req.N, K: req.K,
		TransA: transString(req.TransA), TransB: transString(req.TransB),
		Alpha: req.Alpha, Beta: req.Beta,
	}
	var body bytes.Buffer
	body.Grow(int(8*(hdr.WordsA()+hdr.WordsB()) + 256))
	if err := EncodeRequest(&body, hdr, req.A, req.B, req.C); err != nil {
		return nil, err
	}

	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimSuffix(c.BaseURL, "/")+"/v1/gemm", &body)
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", ContentType)
	if c.Tenant != "" {
		httpReq.Header.Set("X-Tenant", c.Tenant)
	}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		httpReq.Header.Set("X-Deadline-Ms", strconv.FormatInt(ms, 10))
	}

	start := time.Now()
	resp, err := c.httpClient().Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		text, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		he := &HTTPError{Status: resp.StatusCode, Body: string(text)}
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				he.RetryAfter = time.Duration(secs) * time.Second
			}
		}
		return nil, he
	}

	rh, out, err := DecodeResponse(resp.Body, c.Limits, hdr.WordsC())
	if err != nil {
		return nil, err
	}
	if rh.Status != "ok" {
		return nil, fmt.Errorf("serve: server error: %s", rh.Error)
	}
	return &GEMMResult{
		C:         out,
		Batched:   rh.Batched,
		OutOfCore: rh.OutOfCore,
		Latency:   time.Since(start),
	}, nil
}
