package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/obs"
	"repro/internal/strassen"
)

var errServerClosed = errors.New("serve: server is shutting down")

// Options configures New. The zero value (and a nil *Options) selects a
// GOMAXPROCS-sized batch pool, a 500µs coalesce window, no quotas, and an
// admission high-water mark derived from the queue depth.
type Options struct {
	// Pool, if non-nil, is the execution engine; the caller owns it and
	// Server.Close will not close it. Nil builds a pool from Workers,
	// QueueDepth, Config and Collector.
	Pool *batch.Pool
	// Workers and QueueDepth size the owned pool (see batch.Options).
	Workers    int
	QueueDepth int
	// Config is the base DGEFMM configuration; nil selects the defaults.
	Config *strassen.Config
	// Collector receives the service metrics and the pool's accounting,
	// and backs the debug endpoints. Nil creates a private collector (the
	// service is always observable).
	Collector *obs.Collector

	// HighWater is the admission-control mark: past this many concurrently
	// admitted requests the server answers 429 with Retry-After, shedding
	// load before the pool queue (whose send would otherwise block the
	// handler). <= 0 selects 4× the pool queue depth.
	HighWater int
	// CoalesceWindow is how long the first request of a shape waits for
	// same-shape company before its batch flushes. 0 selects
	// DefaultCoalesceWindow; negative disables waiting (every request
	// executes immediately, still through the pool). Long windows trade
	// latency for coalescing.
	CoalesceWindow time.Duration
	// MaxBatch flushes a shape group early once it holds this many calls.
	// <= 0 selects 32.
	MaxBatch int
	// Quota is the per-tenant admission quota table.
	Quota QuotaConfig

	// LargeWords routes requests whose largest operand exceeds this many
	// float64 words through the out-of-core tiled path instead of the
	// batch pool. <= 0 selects 1<<24 (128 MiB per operand); set it low to
	// exercise the tiled path on small matrices.
	LargeWords int64
	// OutOfCoreWords bounds the in-core workspace of the tiled path (see
	// outofcore.Options.WorkspaceWords). 0 selects that package's default.
	OutOfCoreWords int
	// SpoolDir, when non-empty, stages out-of-core operands in files under
	// this directory (outofcore.FileStore); empty keeps them in memory.
	SpoolDir string

	// Limits bounds the wire decoder; zero fields select DefaultLimits.
	Limits Limits
	// Logger receives request-level diagnostics; nil selects slog.Default.
	Logger *slog.Logger
}

// DefaultCoalesceWindow is the coalesce window when Options leaves it 0.
const DefaultCoalesceWindow = 500 * time.Microsecond

// Server is the GEMM service. Create with New, mount Handler on an
// http.Server, and Close when done (after http.Server.Shutdown, so no
// handler is in flight).
type Server struct {
	opts    Options
	pool    *batch.Pool
	ownPool bool
	coal    *coalescer
	quotas  *quotas
	col     *obs.Collector
	log     *slog.Logger
	lim     Limits

	highWater int64
	inflight  atomic.Int64
	closed    atomic.Bool

	// out-of-core base config: per-request clones get a fresh kernel.
	ooBase strassen.Config

	mRequests     *obs.Counter
	mOK           *obs.Counter
	mRejQuota     *obs.Counter
	mRejBackpress *obs.Counter
	mBadRequest   *obs.Counter
	mDeadline     *obs.Counter
	mInternal     *obs.Counter
	mOutOfCore    *obs.Counter
	mBytesIn      *obs.Counter
	mBytesOut     *obs.Counter
	gInflight     *obs.Gauge
	hLatency      *obs.Histogram
}

// New builds a Server. It starts the owned batch pool's workers; nothing
// listens until the caller serves Handler.
func New(opts *Options) *Server {
	var o Options
	if opts != nil {
		o = *opts
	}
	s := &Server{opts: o, lim: o.Limits.withDefaults()}
	s.col = o.Collector
	if s.col == nil {
		s.col = obs.NewCollector()
	}
	s.log = o.Logger
	if s.log == nil {
		s.log = slog.Default()
	}

	s.pool = o.Pool
	if s.pool == nil {
		s.pool = batch.NewPool(&batch.Options{
			Workers:    o.Workers,
			QueueDepth: o.QueueDepth,
			Config:     o.Config,
			Collector:  s.col,
		})
		s.ownPool = true
	}

	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	queue := o.QueueDepth
	if queue <= 0 {
		queue = 4 * workers
		if queue < 16 {
			queue = 16
		}
	}
	s.highWater = int64(o.HighWater)
	if s.highWater <= 0 {
		s.highWater = int64(4 * queue)
	}

	window := o.CoalesceWindow
	if window == 0 {
		window = DefaultCoalesceWindow
	}
	maxBatch := o.MaxBatch
	if maxBatch <= 0 {
		maxBatch = 32
	}
	s.coal = newCoalescer(s.pool, window, maxBatch, s.col.Registry)
	s.quotas = newQuotas(o.Quota)

	if o.LargeWords <= 0 {
		s.opts.LargeWords = 1 << 24
	}
	base := o.Config
	if base == nil {
		base = strassen.DefaultConfig(nil)
	}
	s.ooBase = *base
	s.ooBase.Tracker = nil

	reg := s.col.Registry
	s.mRequests = reg.Counter("serve.requests")
	s.mOK = reg.Counter("serve.ok")
	s.mRejQuota = reg.Counter("serve.rejected.quota")
	s.mRejBackpress = reg.Counter("serve.rejected.backpressure")
	s.mBadRequest = reg.Counter("serve.errors.bad_request")
	s.mDeadline = reg.Counter("serve.errors.deadline")
	s.mInternal = reg.Counter("serve.errors.internal")
	s.mOutOfCore = reg.Counter("serve.outofcore.calls")
	s.mBytesIn = reg.Counter("serve.bytes_in")
	s.mBytesOut = reg.Counter("serve.bytes_out")
	s.gInflight = reg.Gauge("serve.inflight")
	s.hLatency = reg.Histogram("serve.latency.ns")
	return s
}

// Collector returns the service's observability collector.
func (s *Server) Collector() *obs.Collector { return s.col }

// Pool returns the execution pool (owned or injected).
func (s *Server) Pool() *batch.Pool { return s.pool }

// Close drains pending coalesce groups and, when the pool is owned, closes
// it. Call after the HTTP server has shut down; Close is idempotent.
func (s *Server) Close() {
	if !s.closed.CompareAndSwap(false, true) {
		return
	}
	s.coal.close()
	if s.ownPool {
		s.pool.Close()
	}
}

// Handler returns the service mux: the GEMM endpoint plus the full obs
// debug surface (/debug/vars, /debug/pprof/..., /metrics, /openmetrics,
// /trace, /spans), /healthz, and /v1/stats.
func (s *Server) Handler() http.Handler {
	mux := obs.DebugMux(s.col)
	mux.HandleFunc("POST /v1/gemm", s.handleGEMM)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if s.closed.Load() {
			http.Error(w, "shutting down", http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		stats := struct {
			Inflight  int64       `json:"inflight"`
			HighWater int64       `json:"highWater"`
			Pool      batch.Stats `json:"pool"`
		}{s.inflight.Load(), s.highWater, s.pool.Stats()}
		_ = writeJSON(w, stats)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) error {
	return json.NewEncoder(w).Encode(v)
}

// admit reserves one in-flight slot, refusing past the high-water mark.
func (s *Server) admit() bool {
	for {
		cur := s.inflight.Load()
		if cur >= s.highWater {
			return false
		}
		if s.inflight.CompareAndSwap(cur, cur+1) {
			s.gInflight.Set(cur + 1)
			return true
		}
	}
}

func (s *Server) release() {
	s.gInflight.Set(s.inflight.Add(-1))
}

// reject answers a pre-body failure with a plain-text status. Rejections
// happen before any response framing, so clients key off the HTTP code.
func reject(w http.ResponseWriter, code int, retryAfter time.Duration, msg string) {
	if retryAfter > 0 {
		secs := int(retryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	http.Error(w, msg, code)
}

// handleGEMM is the service endpoint. The control flow mirrors the
// production trimmings in order: quota, admission, deadline, decode,
// (out-of-core | coalesce+batch), respond.
func (s *Server) handleGEMM(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.mRequests.Add(1)
	if s.closed.Load() {
		reject(w, http.StatusServiceUnavailable, time.Second, "shutting down")
		return
	}

	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		tenant = "anonymous"
	}
	if ok, retry := s.quotas.admit(tenant); !ok {
		s.mRejQuota.Add(1)
		reject(w, http.StatusTooManyRequests, retry, "tenant quota exceeded")
		return
	}
	if !s.admit() {
		s.mRejBackpress.Add(1)
		reject(w, http.StatusTooManyRequests, time.Second, "server at admission high-water mark")
		return
	}
	defer s.release()

	// Deadline propagation: the client's X-Deadline-Ms budget joins the
	// connection context; the combined context rides on the batch call,
	// where an expired deadline cancels the call — before it starts if it
	// is still queued, or mid-execution via the engine's between-product
	// polling if it is already running.
	ctx := r.Context()
	if ms := r.Header.Get("X-Deadline-Ms"); ms != "" {
		d, err := strconv.ParseInt(ms, 10, 64)
		if err != nil || d <= 0 {
			s.mBadRequest.Add(1)
			reject(w, http.StatusBadRequest, 0, "bad X-Deadline-Ms")
			return
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(d)*time.Millisecond)
		defer cancel()
	}

	hdr, err := DecodeHeader(r.Body, s.lim)
	if err != nil {
		s.mBadRequest.Add(1)
		reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	s.mBytesIn.Add(8 * (hdr.WordsA() + hdr.WordsB()))

	if s.large(hdr) {
		s.serveOutOfCore(ctx, w, r.Body, hdr, start)
		return
	}

	req := &Request{ReqHeader: *hdr}
	if req.A, err = ReadFrame(r.Body, hdr.WordsA(), "A"); err != nil {
		s.mBadRequest.Add(1)
		reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	if req.B, err = ReadFrame(r.Body, hdr.WordsB(), "B"); err != nil {
		s.mBadRequest.Add(1)
		reject(w, http.StatusBadRequest, 0, err.Error())
		return
	}
	if hdr.Beta != 0 {
		if req.C, err = ReadFrame(r.Body, hdr.WordsC(), "C"); err != nil {
			s.mBadRequest.Add(1)
			reject(w, http.StatusBadRequest, 0, err.Error())
			return
		}
	} else {
		req.C = make([]float64, hdr.WordsC())
	}

	call := callFromWire(hdr, req.A, req.B, req.C)
	call.Ctx = ctx
	ch := s.coal.submit(call)

	var res result
	select {
	case res = <-ch:
	case <-ctx.Done():
		// The call stays in its group; its Ctx makes the worker skip it.
		s.mDeadline.Add(1)
		reject(w, http.StatusGatewayTimeout, 0, ctx.Err().Error())
		return
	}
	if res.err != nil {
		if errors.Is(res.err, context.DeadlineExceeded) || errors.Is(res.err, context.Canceled) {
			s.mDeadline.Add(1)
			reject(w, http.StatusGatewayTimeout, 0, res.err.Error())
			return
		}
		s.mInternal.Add(1)
		reject(w, http.StatusInternalServerError, 0, res.err.Error())
		return
	}

	elapsed := time.Since(start)
	s.hLatency.Observe(elapsed)
	s.mOK.Add(1)
	s.mBytesOut.Add(8 * hdr.WordsC())
	w.Header().Set("Content-Type", ContentType)
	if err := EncodeResponse(w, &RespHeader{
		Status:    "ok",
		Batched:   res.batched,
		ElapsedNs: elapsed.Nanoseconds(),
	}, req.C); err != nil {
		s.log.Debug("response write failed", "err", err)
	}
}

// large reports whether a request must take the out-of-core path.
func (s *Server) large(h *ReqHeader) bool {
	lw := s.opts.LargeWords
	return h.WordsA() > lw || h.WordsB() > lw || h.WordsC() > lw
}

// callFromWire maps row-major wire operands onto a column-major batch call
// without copying, via Cᵀ = α·op(B)ᵀ·op(A)ᵀ + β·Cᵀ: a row-major r×c frame
// is byte-identical to the column-major c×r transpose, so swapping the
// operand slots and the m/n extents (transpose flags unchanged) computes
// the row-major result directly into the C frame.
func callFromWire(h *ReqHeader, a, b, c []float64) batch.Call {
	// Leading dimension of a wire frame viewed column-major = its wire row
	// length. A is stored m×k (row length k) or, transposed, k×m; B is
	// k×n (row length n) or n×k.
	lda := h.K
	if h.transA().IsTrans() {
		lda = h.M
	}
	ldb := h.N
	if h.transB().IsTrans() {
		ldb = h.K
	}
	return batch.Call{
		TransA: h.transB(), TransB: h.transA(),
		M: h.N, N: h.M, K: h.K,
		Alpha: h.Alpha, Beta: h.Beta,
		A: b, Lda: ldb,
		B: a, Ldb: lda,
		C: c, Ldc: h.N,
	}
}
