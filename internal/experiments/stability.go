package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/stability"
)

// Stability runs the Brent/Higham error study the paper's introduction
// leans on: measured forward error of DGEMM and of DGEFMM at increasing
// recursion depth, normalized by the classical bound u·n·max|A|·max|B|.
// The expected shape: the conventional algorithm sits near 1 (well under
// it for random sign-cancelling data), and Strassen grows by roughly the
// Higham factor per level while remaining far from anything that would
// matter at the depths real cutoffs produce.
func Stability(w io.Writer, n, maxDepth int, sc Scale) []stability.Measurement {
	if n == 0 {
		n = sc.sq(256, 64)
	}
	if maxDepth == 0 {
		maxDepth = sc.sq(4, 2)
	}
	kern := kernelOf("blocked")
	ms := stability.Study(kern, n, maxDepth, sc.sq(3, 1), 51)

	fprintln(w, fmt.Sprintf("Stability study: forward error on random order-%d inputs (u = %.3g)", n, stability.Unit))
	tb := bench.NewTable("engine", "depth", "max |Ĉ−C|", "vs classical bound", "Higham growth 6^d")
	for _, m := range ms {
		tb.AddRow(m.Engine, m.Depth,
			fmt.Sprintf("%.3e", m.MaxAbsErr),
			fmt.Sprintf("%.3f×", m.Normalized),
			fmt.Sprintf("%.0f", stability.HighamGrowth(m.Depth)))
	}
	_, _ = tb.WriteTo(w)
	fprintln(w, "paper context: Brent's and Higham's analyses show Strassen \"stable enough ... to be considered seriously\"")
	return ms
}
