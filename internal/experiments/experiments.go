// Package experiments regenerates every table and figure of the paper's
// evaluation (Section 4). Each function prints rows in the shape the paper
// reports and returns the measured data for programmatic checks; the
// cmd/dgefmm-bench binary and the repository-level benchmarks both drive
// these entry points.
//
// Machine mapping (see DESIGN.md): the paper's RS/6000, CRAY C90 and CRAY
// T3D are represented by the "blocked", "vector" and "naive" DGEMM kernels
// respectively — the cutoff behaviour the experiments probe depends on the
// machine only through the relative speed of DGEMM versus the O(n²)
// Strassen overheads, which is exactly what the kernel choice varies.
package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/blas"
	"repro/internal/kernel"
	"repro/internal/memtrack"
	"repro/internal/obs"
	"repro/internal/strassen"
)

// Machine pairs a paper machine with the kernel standing in for it.
type Machine struct {
	// Paper is the machine name used in the paper ("RS/6000", "C90", "T3D").
	Paper string
	// Kernel is the stand-in DGEMM kernel name.
	Kernel string
}

// Machines lists the three machine stand-ins in the paper's order.
func Machines() []Machine {
	return []Machine{
		{Paper: "RS/6000", Kernel: "blocked"},
		{Paper: "C90", Kernel: "vector"},
		{Paper: "T3D", Kernel: "naive"},
	}
}

// Scale trades experiment fidelity for runtime; the full paper-scale sweeps
// on a 1996 supercomputer translate to minutes of pure-Go compute, so the
// default sizes are chosen to finish a full regeneration in a few minutes
// on one CPU while preserving every qualitative shape.
type Scale struct {
	// Quick shrinks sizes further for smoke runs (CI, go test -short).
	Quick bool
}

// sq returns v normally and q in quick mode.
func (s Scale) sq(v, q int) int {
	if s.Quick {
		return q
	}
	return v
}

func kernelOf(name string) blas.Kernel {
	if name == "" || name == "auto" {
		return kernel.Default()
	}
	k := blas.KernelByName(name)
	if k == nil {
		k = kernel.Default()
	}
	return k
}

// KernelInfo describes what kernelOf(name) resolves to — the registry name
// plus the instruction set its inner loop was dispatched to — so benchmark
// output and logs state explicitly whether a host ran SIMD or the portable
// fallback.
func KernelInfo(name string) string {
	k := kernelOf(name)
	isa := "go"
	if ik, ok := k.(interface{ ISA() string }); ok {
		isa = ik.ISA()
	}
	return fmt.Sprintf("%s (ISA %s)", k.Name(), isa)
}

// collector, when installed via SetCollector, observes every
// configFor-built configuration, aggregating metrics and spans across the
// experiments that use the standard DGEFMM defaults.
var collector *obs.Collector

// SetCollector installs (or, with nil, removes) the observability collector
// attached to experiment configurations. cmd/dgefmm-bench uses it to back
// the -metrics-out/-trace-out/-http flags. Not safe to change while an
// experiment is running.
func SetCollector(c *obs.Collector) { collector = c }

// configFor returns the DGEFMM configuration used throughout the
// experiments for a kernel: the paper's defaults (hybrid criterion with the
// kernel's calibrated parameters, peeling, auto schedule), plus a workspace
// tracker so repeated timed calls reuse their temporaries instead of
// exercising the garbage collector. An installed collector is attached.
func configFor(kern blas.Kernel) *strassen.Config {
	cfg := strassen.DefaultConfig(kern)
	cfg.Tracker = memtrack.New()
	if collector != nil {
		collector.Attach(cfg)
	}
	return cfg
}

// rngFor gives each experiment its own deterministic stream.
func rngFor(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// fprintln writes a line, ignoring errors (console reporting).
func fprintln(w io.Writer, s string) { _, _ = io.WriteString(w, s+"\n") }
