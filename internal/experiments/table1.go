package experiments

import (
	"fmt"
	"io"

	"repro/internal/baselines"
	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/memtrack"
	"repro/internal/strassen"
)

// Table1Row is one implementation's memory footprint for order-m inputs:
// the paper's analytic bound (as a multiple of m²) and our measured peak.
type Table1Row struct {
	Impl          string
	Beta          float64
	PaperFormula  string  // the bound reported in the paper's Table 1
	PaperM2       float64 // that bound as a multiple of m² (NaN if n/a)
	MeasuredWords int64
	MeasuredM2    float64
}

// Table1 reproduces the paper's Table 1 ("Memory Requirements for Strassen
// codes on order m matrices") by measuring the peak temporary workspace of
// every implementation in this repository with the accounting allocator,
// for both β = 0 and β ≠ 0, and comparing with the paper's formulas.
func Table1(w io.Writer, m int, sc Scale) []Table1Row {
	if m == 0 {
		m = sc.sq(512, 96)
	}
	kern := blas.NaiveKernel{} // kernel choice does not affect workspace
	rng := rngFor(101)
	crit := strassen.Simple{Tau: 8} // deep recursion: worst-case workspace

	measure := func(run func(tr *memtrack.Tracker, a, b, c *matrix.Dense)) int64 {
		tr := memtrack.New()
		a := matrix.NewRandom(m, m, rng)
		b := matrix.NewRandom(m, m, rng)
		c := matrix.NewRandom(m, m, rng)
		run(tr, a, b, c)
		return tr.Peak()
	}
	dgefmmRun := func(sched strassen.Schedule, beta float64) int64 {
		return measure(func(tr *memtrack.Tracker, a, b, c *matrix.Dense) {
			cfg := &strassen.Config{Kernel: kern, Criterion: crit, Schedule: sched, Tracker: tr}
			strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
	}

	var rows []Table1Row
	add := func(impl string, beta float64, formula string, paperM2 float64, words int64) {
		rows = append(rows, Table1Row{
			Impl: impl, Beta: beta, PaperFormula: formula, PaperM2: paperM2,
			MeasuredWords: words, MeasuredM2: float64(words) / float64(m*m),
		})
	}

	// CRAY SGEMMS analogue (Strassen original + padding). Paper: 7m²/3 for
	// both cases.
	sgemms := func(beta float64) int64 {
		return measure(func(tr *memtrack.Tracker, a, b, c *matrix.Dense) {
			cfg := &baselines.SgemmsConfig{Kernel: kern, Tau: 8, Tracker: tr}
			baselines.SGEMMS(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
	}
	add("SGEMMS (CRAY style)", 0, "7m²/3", 7.0/3, sgemms(0))
	add("SGEMMS (CRAY style)", 1, "7m²/3", 7.0/3, sgemms(1))

	// IBM ESSL DGEMMS analogue: multiply-only (β=0 by construction); the
	// general case needs the caller's extra m×n update buffer
	// (DgemmsGeneral). Paper: 1.40m²; β≠0 "not directly supported".
	dgemms0 := measure(func(tr *memtrack.Tracker, a, b, c *matrix.Dense) {
		cfg := &baselines.DgemmsConfig{Kernel: kern, Tau: 8, Tracker: tr}
		baselines.DGEMMS(cfg, blas.NoTrans, blas.NoTrans, m, m, m,
			a.Data, a.Stride, b.Data, b.Stride, c.Data, c.Stride)
	})
	add("DGEMMS (ESSL style)", 0, "1.40m²", 1.40, dgemms0)
	dgemms1 := measure(func(tr *memtrack.Tracker, a, b, c *matrix.Dense) {
		cfg := &baselines.DgemmsConfig{Kernel: kern, Tau: 8, Tracker: tr}
		baselines.DgemmsGeneral(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
			a.Data, a.Stride, b.Data, b.Stride, 1, c.Data, c.Stride)
	})
	add("DGEMMS+update loop", 1, "(not directly supported)", 0, dgemms1)

	// DGEMMW analogue. Paper: 2m²/3 (β=0), 5m²/3 (β≠0). Our stand-in pads
	// with explicit copies, so its measured footprint exceeds the published
	// bound on odd sizes; on even sizes (measured here) padding is a no-op.
	dgemmw := func(beta float64) int64 {
		return measure(func(tr *memtrack.Tracker, a, b, c *matrix.Dense) {
			cfg := &baselines.DgemmwConfig{Kernel: kern, Tau: 8, Tracker: tr}
			baselines.DGEMMW(cfg, blas.NoTrans, blas.NoTrans, m, m, m, 1,
				a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
		})
	}
	add("DGEMMW (Douglas style)", 0, "2m²/3", 2.0/3, dgemmw(0))
	add("DGEMMW (Douglas style)", 1, "5m²/3", 5.0/3, dgemmw(1))

	// STRASSEN1 and STRASSEN2 schedules in isolation.
	add("STRASSEN1", 0, "2m²/3", 2.0/3, dgefmmRun(strassen.ScheduleStrassen1, 0))
	add("STRASSEN1", 1, "2m²", 2.0, dgefmmRun(strassen.ScheduleStrassen1, 1))
	add("STRASSEN2", 0, "m²", 1.0, dgefmmRun(strassen.ScheduleStrassen2, 0))
	add("STRASSEN2", 1, "m²", 1.0, dgefmmRun(strassen.ScheduleStrassen2, 1))

	// DGEFMM: the paper's dispatch (STRASSEN1 for β=0, STRASSEN2 otherwise).
	add("DGEFMM", 0, "2m²/3", 2.0/3, dgefmmRun(strassen.ScheduleAuto, 0))
	add("DGEFMM", 1, "m²", 1.0, dgefmmRun(strassen.ScheduleAuto, 1))

	tb := bench.NewTable("implementation", "beta", "paper bound", "paper (m²)", "measured words", "measured (m²)")
	for _, r := range rows {
		beta := "= 0"
		if r.Beta != 0 {
			beta = "≠ 0"
		}
		paperCol := "-"
		if r.PaperM2 > 0 {
			paperCol = fmt.Sprintf("%.3f", r.PaperM2)
		}
		tb.AddRow(r.Impl, beta, r.PaperFormula, paperCol, r.MeasuredWords, fmt.Sprintf("%.3f", r.MeasuredM2))
	}
	fprintln(w, fmt.Sprintf("Table 1: temporary memory for order m=%d matrices (words of float64)", m))
	_, _ = tb.WriteTo(w)
	return rows
}
