package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/sched"
	"repro/internal/strassen"
)

// AblationRow is one configuration's time on the ablation workload.
type AblationRow struct {
	Name    string
	Seconds float64
}

// timeConfig measures DGEFMM under cfg on an m×m problem.
func timeConfig(cfg *strassen.Config, m int, alpha, beta float64, seed int64) float64 {
	rng := rngFor(seed)
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewRandom(m, m, rng)
	return bench.Seconds(func() {
		strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, m, m, m, alpha,
			a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
	})
}

// AblationSchedules compares STRASSEN1 and STRASSEN2 in the β=0 case (the
// paper's observation: "our STRASSEN2 construction ... not only saves
// temporary memory but yields a code that has higher performance ... due to
// better locality of memory usage" — i.e. STRASSEN2 pays no time penalty
// despite its extra accumulation work).
func AblationSchedules(w io.Writer, sc Scale) []AblationRow {
	kern := kernelOf("blocked")
	m := sc.sq(4*strassen.DefaultParams("blocked").Tau, 2*strassen.DefaultParams("blocked").Tau)
	base := configFor(kern)
	rows := []AblationRow{}
	for _, cfg := range []struct {
		name  string
		sched strassen.Schedule
		beta  float64
	}{
		{"STRASSEN1, β=0", strassen.ScheduleStrassen1, 0},
		{"STRASSEN2, β=0", strassen.ScheduleStrassen2, 0},
		{"STRASSEN1(+copy), β=1/4", strassen.ScheduleStrassen1, 0.25},
		{"STRASSEN2, β=1/4", strassen.ScheduleStrassen2, 0.25},
	} {
		c := *base
		c.Schedule = cfg.sched
		rows = append(rows, AblationRow{Name: cfg.name, Seconds: timeConfig(&c, m, 1.0/3, cfg.beta, 281)})
	}
	printAblation(w, fmt.Sprintf("Ablation: computation schedules (order %d, blocked kernel)", m), rows)
	return rows
}

// AblationOddHandling compares dynamic peeling against dynamic and static
// padding on all-odd sizes — the paper's Section 3.3 design decision.
func AblationOddHandling(w io.Writer, sc Scale) []AblationRow {
	kern := kernelOf("blocked")
	tau := strassen.DefaultParams("blocked").Tau
	m := sc.sq(4*tau+3, 2*tau+1) // odd at every recursion level
	base := configFor(kern)
	rows := []AblationRow{}
	for _, odd := range []strassen.OddStrategy{strassen.OddPeel, strassen.OddPadDynamic, strassen.OddPadStatic} {
		c := *base
		c.Odd = odd
		rows = append(rows, AblationRow{Name: odd.String(), Seconds: timeConfig(&c, m, 1, 0, 283)})
	}
	printAblation(w, fmt.Sprintf("Ablation: odd-dimension handling (order %d, odd at every level)", m), rows)
	return rows
}

// AblationVariant compares Winograd's variant (15 adds) against Strassen's
// original construction (18 adds) — equations (4) vs (5) in time.
func AblationVariant(w io.Writer, sc Scale) []AblationRow {
	kern := kernelOf("blocked")
	m := sc.sq(4*strassen.DefaultParams("blocked").Tau, 2*strassen.DefaultParams("blocked").Tau)
	base := configFor(kern)
	rows := []AblationRow{}
	for _, cfg := range []struct {
		name  string
		sched strassen.Schedule
	}{
		{"Winograd (15 adds)", strassen.ScheduleAuto},
		{"Strassen original (18 adds)", strassen.ScheduleOriginal},
	} {
		c := *base
		c.Schedule = cfg.sched
		rows = append(rows, AblationRow{Name: cfg.name, Seconds: timeConfig(&c, m, 1, 0, 285)})
	}
	printAblation(w, fmt.Sprintf("Ablation: Winograd vs original variant (order %d)", m), rows)
	return rows
}

// AblationPeeling compares last- vs first-peeling — the paper's Section 5
// "investigate alternate peeling techniques" item.
func AblationPeeling(w io.Writer, sc Scale) []AblationRow {
	kern := kernelOf("blocked")
	tau := strassen.DefaultParams("blocked").Tau
	m := sc.sq(4*tau+3, 2*tau+1)
	base := configFor(kern)
	rows := []AblationRow{}
	for _, odd := range []strassen.OddStrategy{strassen.OddPeel, strassen.OddPeelFirst} {
		c := *base
		c.Odd = odd
		rows = append(rows, AblationRow{Name: odd.String(), Seconds: timeConfig(&c, m, 1, 0, 291)})
	}
	printAblation(w, fmt.Sprintf("Ablation: peel-last vs peel-first (order %d)", m), rows)
	return rows
}

// AblationParallel compares the sequential engine with the task-parallel
// schedule and the column-parallel kernel — the Section 5 parallelism item.
// On a single-CPU host the interest is overhead, not speedup.
func AblationParallel(w io.Writer, sc Scale) []AblationRow {
	kern := kernelOf("blocked")
	tau := strassen.DefaultParams("blocked").Tau
	m := sc.sq(4*tau, 2*tau)
	rows := []AblationRow{}

	seq := configFor(kern)
	rows = append(rows, AblationRow{Name: "sequential", Seconds: timeConfig(seq, m, 1, 0, 293)})

	par := configFor(kern)
	par.Parallel = 4
	par.ParallelLevels = 1
	rows = append(rows, AblationRow{Name: "task-parallel products (4)", Seconds: timeConfig(par, m, 1, 0, 293)})

	rt := sched.New(4, 293)
	defer rt.Close()
	dag := configFor(kern)
	dag.Sched = rt
	rows = append(rows, AblationRow{Name: "work-stealing DAG runtime (4)", Seconds: timeConfig(dag, m, 1, 0, 293)})

	pk := configFor(&blas.ParallelKernel{Workers: 4, Base: kern})
	rows = append(rows, AblationRow{Name: "column-parallel kernel (4)", Seconds: timeConfig(pk, m, 1, 0, 293)})

	printAblation(w, fmt.Sprintf("Ablation: parallel execution modes (order %d, GOMAXPROCS-bound)", m), rows)
	return rows
}

// AblationCutoffs compares recursion-control policies end to end: no
// recursion (plain DGEMM), no cutoff (recurse to the hilt), the theoretical
// op-count cutoff (7), and the calibrated hybrid (15) — the paper's
// Section 2 point that cutoffs matter enormously (38.2 % at order 256 in
// the model) and that op counts alone mispredict the right cutoff.
func AblationCutoffs(w io.Writer, sc Scale) []AblationRow {
	kern := kernelOf("blocked")
	params := strassen.DefaultParams("blocked")
	m := sc.sq(4*params.Tau, 2*params.Tau)
	rows := []AblationRow{}
	for _, cfg := range []struct {
		name string
		crit strassen.Criterion
	}{
		{"never (plain DGEMM)", strassen.Never{}},
		{"no cutoff (full recursion)", strassen.Always{}},
		{"theoretical (7), τ=12", strassen.Theoretical{}},
		{"simple (11), calibrated τ", strassen.Simple{Tau: params.Tau}},
		{"hybrid (15), calibrated", params.Hybrid()},
	} {
		c := strassen.Config{Kernel: kern, Criterion: cfg.crit, Odd: strassen.OddPeel}
		rows = append(rows, AblationRow{Name: cfg.name, Seconds: timeConfig(&c, m, 1, 0, 287)})
	}
	printAblation(w, fmt.Sprintf("Ablation: cutoff criteria (order %d)", m), rows)
	return rows
}

// AblationKernels reports plain DGEMM throughput of every registered
// kernel: the three machine stand-ins plus the packed cache-blocked kernel
// (the default base-case multiplier), grounding the machine mapping of
// DESIGN.md.
func AblationKernels(w io.Writer, sc Scale) []AblationRow {
	m := sc.sq(384, 128)
	rng := rngFor(289)
	a := matrix.NewRandom(m, m, rng)
	b := matrix.NewRandom(m, m, rng)
	c := matrix.NewRandom(m, m, rng)
	rows := []AblationRow{}
	fprintln(w, fmt.Sprintf("Kernels: plain DGEMM at order %d", m))
	tb := bench.NewTable("kernel", "seconds", "MFLOPS")
	for _, name := range blas.KernelNames() {
		kern := blas.KernelByName(name)
		s := bench.Seconds(func() {
			blas.DgemmKernel(kern, blas.NoTrans, blas.NoTrans, m, m, m, 1,
				a.Data, a.Stride, b.Data, b.Stride, 0, c.Data, c.Stride)
		})
		rows = append(rows, AblationRow{Name: name, Seconds: s})
		tb.AddRow(name, fmt.Sprintf("%.4g", s), fmt.Sprintf("%.0f", bench.GemmFlops(m, m, m)/s/1e6))
	}
	_, _ = tb.WriteTo(w)
	return rows
}

func printAblation(w io.Writer, title string, rows []AblationRow) {
	fprintln(w, title)
	tb := bench.NewTable("configuration", "seconds", "vs first")
	for _, r := range rows {
		tb.AddRow(r.Name, fmt.Sprintf("%.4g", r.Seconds), fmt.Sprintf("%.3f×", r.Seconds/rows[0].Seconds))
	}
	_, _ = tb.WriteTo(w)
}
