package experiments

import (
	"io"
	"math"
	"runtime"
	"strings"
	"testing"

	"repro/internal/blas"
	"repro/internal/kernel"
)

// Smoke tests run every experiment in quick mode, asserting structural
// properties of the measurements (counts, positivity, the paper's
// qualitative shapes where they are robust at tiny sizes). The full-scale
// runs live in cmd/dgefmm-bench and the repository benchmarks.

var quick = Scale{Quick: true}

func TestMachines(t *testing.T) {
	ms := Machines()
	if len(ms) != 3 {
		t.Fatal("three machines")
	}
	if ms[0].Paper != "RS/6000" || ms[0].Kernel != "blocked" {
		t.Fatalf("machine mapping: %+v", ms[0])
	}
}

func TestTable1Quick(t *testing.T) {
	var sb strings.Builder
	rows := Table1(&sb, 64, quick)
	if len(rows) != 12 {
		t.Fatalf("want 12 rows, got %d", len(rows))
	}
	byKey := map[string]Table1Row{}
	for _, r := range rows {
		key := r.Impl
		if r.Beta != 0 {
			key += "≠"
		}
		byKey[key] = r
	}
	// The paper's own memory claims, measured: DGEFMM within its bounds.
	m2 := float64(64 * 64)
	if r := byKey["DGEFMM"]; float64(r.MeasuredWords) > 2*m2/3 {
		t.Errorf("DGEFMM β=0 measured %d > 2m²/3", r.MeasuredWords)
	}
	if r := byKey["DGEFMM≠"]; float64(r.MeasuredWords) > m2 {
		t.Errorf("DGEFMM β≠0 measured %d > m²", r.MeasuredWords)
	}
	// DGEFMM β≠0 must not exceed the lean schedules' shared machinery (our
	// SGEMMS stand-in reuses it, so it ties rather than exceeds — see the
	// substitution note in baselines).
	if byKey["DGEFMM≠"].MeasuredWords > byKey["SGEMMS (CRAY style)≠"].MeasuredWords {
		t.Error("DGEFMM should not use more workspace than the CRAY-style code")
	}
	// The multiply-only interface pays a full extra m×n for the caller-side
	// update in the general case — the Table 1 asymmetry DGEFMM removes.
	if byKey["DGEMMS+update loop≠"].MeasuredWords < byKey["DGEMMS (ESSL style)"].MeasuredWords+int64(64*64) {
		t.Error("DGEMMS general case should pay an extra m² for the update buffer")
	}
	if !strings.Contains(sb.String(), "Table 1") {
		t.Error("missing header")
	}
}

func TestFigure2Quick(t *testing.T) {
	pts := Figure2(io.Discard, "naive", 16, 64, 16, quick)
	if len(pts) != 4 {
		t.Fatalf("want 4 points, got %d", len(pts))
	}
	for _, p := range pts {
		if p.Ratio <= 0 {
			t.Fatal("nonpositive ratio")
		}
	}
}

func TestTable2Quick(t *testing.T) {
	rows := Table2(io.Discard, quick)
	if len(rows) != 3 {
		t.Fatal("three machines")
	}
	for _, r := range rows {
		if r.Tau <= 0 {
			t.Fatalf("machine %s: τ=%d", r.Machine.Paper, r.Tau)
		}
	}
}

func TestTable3Quick(t *testing.T) {
	rows := Table3(io.Discard, quick)
	if len(rows) != 3 {
		t.Fatal("three machines")
	}
	for _, r := range rows {
		if r.Params.TauM <= 0 || r.Params.TauK <= 0 || r.Params.TauN <= 0 {
			t.Fatalf("machine %s: params %+v", r.Machine.Paper, r.Params)
		}
	}
}

func TestTable4Quick(t *testing.T) {
	rows := Table4(io.Discard, 2, quick)
	if len(rows) == 0 {
		t.Fatal("no comparisons produced")
	}
	for _, r := range rows {
		if r.Summary.Mean <= 0 {
			t.Fatalf("%s %s: bad mean", r.Machine.Paper, r.Comparison)
		}
	}
}

func TestTable5Quick(t *testing.T) {
	rows := Table5(io.Discard, 2, quick)
	if len(rows) != 6 { // 3 machines × 2 recursion depths
		t.Fatalf("want 6 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.TGemm <= 0 || r.TDgefmm <= 0 {
			t.Fatal("nonpositive time")
		}
	}
	// Orders must double (+small peel term) per recursion.
	if rows[1].Order != 2*rows[0].Order {
		t.Fatalf("orders: %d then %d", rows[0].Order, rows[1].Order)
	}
}

func TestFigure3Quick(t *testing.T) {
	simple, general := Figure3(io.Discard, quick)
	if len(simple.Ratios) == 0 || len(general.Ratios) == 0 {
		t.Fatal("empty series")
	}
	if math.IsNaN(simple.Mean()) || math.IsNaN(general.Mean()) {
		t.Fatal("NaN mean")
	}
}

func TestFigure4Quick(t *testing.T) {
	simple, general := Figure4(io.Discard, quick)
	if len(simple.Ratios) == 0 || len(general.Ratios) == 0 {
		t.Fatal("empty series")
	}
}

func TestFigure5Quick(t *testing.T) {
	general, simple := Figure5(io.Discard, quick)
	if len(general.Ratios) == 0 || len(simple.Ratios) == 0 {
		t.Fatal("empty series")
	}
}

func TestFigure6Quick(t *testing.T) {
	s := Figure6(io.Discard, 3, quick)
	if len(s.Ratios) != 3 {
		t.Fatalf("want 3 problems, got %d", len(s.Ratios))
	}
	for i := range s.X {
		if s.X[i] <= 0 {
			t.Fatal("log-volume must be positive")
		}
	}
}

func TestTable6Quick(t *testing.T) {
	rows := Table6(io.Discard, 64, quick)
	if len(rows) != 2 {
		t.Fatal("two engines")
	}
	if rows[0].Engine != "DGEMM" || rows[1].Engine != "DGEFMM" {
		t.Fatal("engine order")
	}
	for _, r := range rows {
		if r.TotalSec <= 0 || r.MMSec <= 0 || r.MMCalls == 0 {
			t.Fatalf("row %+v", r)
		}
		if r.MMSec > r.TotalSec {
			t.Fatal("MM time cannot exceed total")
		}
	}
	if rows[1].MaxValErr > 1e-6 {
		t.Fatalf("eigenvalues disagree across engines: %g", rows[1].MaxValErr)
	}
}

func TestParallelScalingQuick(t *testing.T) {
	rows := ParallelScaling(io.Discard, 48, quick)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	if last := rows[len(rows)-1].Workers; last != runtime.GOMAXPROCS(0) {
		t.Errorf("last worker count %d, want GOMAXPROCS %d", last, runtime.GOMAXPROCS(0))
	}
	seen := map[int]bool{}
	for _, r := range rows {
		if r.Seconds <= 0 || r.Speedup <= 0 {
			t.Errorf("non-positive measurement: %+v", r)
		}
		if seen[r.Workers] {
			t.Errorf("duplicate worker count %d", r.Workers)
		}
		seen[r.Workers] = true
	}
}

func TestAblationsQuick(t *testing.T) {
	if rows := AblationSchedules(io.Discard, quick); len(rows) != 4 {
		t.Fatal("schedules rows")
	}
	if rows := AblationOddHandling(io.Discard, quick); len(rows) != 3 {
		t.Fatal("odd rows")
	}
	if rows := AblationVariant(io.Discard, quick); len(rows) != 2 {
		t.Fatal("variant rows")
	}
	if rows := AblationCutoffs(io.Discard, quick); len(rows) != 5 {
		t.Fatal("cutoff rows")
	}
	if rows := AblationPeeling(io.Discard, quick); len(rows) != 2 {
		t.Fatal("peeling rows")
	}
	if rows := AblationParallel(io.Discard, quick); len(rows) != 4 {
		t.Fatal("parallel rows: want sequential, task-parallel, DAG runtime, column-parallel")
	}
	rows := AblationKernels(io.Discard, quick)
	if len(rows) != len(blas.KernelNames()) {
		t.Fatalf("kernel rows: got %d, want one per registered kernel (%d)", len(rows), len(blas.KernelNames()))
	}
	// The cache-aware kernels must beat naive — that ordering is what the
	// machine mapping relies on — and packed must be in the report now that
	// it is the default base-case multiplier. "simd" only registers on
	// hosts whose CPU passes feature detection.
	byName := map[string]float64{}
	for _, r := range rows {
		byName[r.Name] = r.Seconds
	}
	// The rows must mirror the registry exactly: "simd" appears iff it
	// registered (hardware has it AND no DGEFMM_KERNEL override pinned the
	// process to another path).
	for _, name := range blas.KernelNames() {
		if _, ok := byName[name]; !ok {
			t.Errorf("registered kernel %q missing from the ablation", name)
		}
	}
	if _, simdRegistered := byName["simd"]; simdRegistered && !kernel.HasSIMD() {
		t.Error("simd kernel reported on a host without SIMD")
	}
	if byName["blocked"] >= byName["naive"] {
		t.Errorf("blocked (%v) should beat naive (%v)", byName["blocked"], byName["naive"])
	}
	if _, ok := byName["packed"]; !ok {
		t.Error("packed kernel missing from the kernel ablation")
	}
	if byName["packed"] >= byName["naive"] {
		t.Errorf("packed (%v) should beat naive (%v)", byName["packed"], byName["naive"])
	}
}

func TestModelQuick(t *testing.T) {
	rows := Model(io.Discard, quick)
	if len(rows) != 3 {
		t.Fatalf("want 3 machines, got %d", len(rows))
	}
	// Wall-clock fits on a shared host can be polluted by a stray sample;
	// require a clean fit on a majority of the machines.
	clean := 0
	for _, r := range rows {
		if r.Gemm.C3 > 0 && r.Gemm.R2 > 0.9 && r.Predicted > 1 {
			clean++
		} else {
			t.Logf("%s: noisy fit: %v (predicted %d)", r.Machine.Paper, r.Gemm, r.Predicted)
		}
	}
	if clean < 2 {
		t.Fatalf("only %d of 3 machines produced a clean model fit", clean)
	}
}

func TestStabilityQuick(t *testing.T) {
	ms := Stability(io.Discard, 48, 2, quick)
	if len(ms) != 3 {
		t.Fatalf("want DGEMM + 2 depths, got %d rows", len(ms))
	}
	for _, m := range ms {
		if m.MaxAbsErr < 0 || m.MaxAbsErr > 1e-9 {
			t.Fatalf("implausible error %g at depth %d", m.MaxAbsErr, m.Depth)
		}
	}
}
