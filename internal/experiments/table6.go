package experiments

import (
	"fmt"
	"io"
	"math"

	"repro/internal/bench"
	"repro/internal/eigen"
	"repro/internal/matrix"
)

// Table6Row is one eigensolver run: total wall time and the portion spent
// in matrix multiplication, for one multiplication engine.
type Table6Row struct {
	Engine    string
	TotalSec  float64
	MMSec     float64
	MMCalls   int
	MaxValErr float64 // cross-engine eigenvalue agreement (set on the 2nd row)
}

// Table6 reproduces the paper's Table 6: the ISDA symmetric eigensolver on
// a randomly-generated matrix, run once with DGEMM and once with DGEFMM as
// the multiplication engine ("accomplished easily by renaming all calls to
// DGEMM as calls to DGEFMM"). The paper used order 1000 on the RS/6000 and
// saw a ≈20 % saving in multiplication time; the order here is scaled to
// the pure-Go single-CPU budget.
func Table6(w io.Writer, n int, sc Scale) []Table6Row {
	if n == 0 {
		n = sc.sq(512, 96)
	}
	kern := kernelOf("blocked")
	rng := rngFor(271)
	a := matrix.NewRandomSymmetric(n, rng)

	// Each engine runs twice (full scale) and the faster run is kept: at
	// reduced order the DGEMM/DGEFMM gap is a few percent, within the
	// wall-clock noise of a single solver run on a shared host.
	run := func(mul eigen.Multiplier) (*eigen.Result, float64) {
		var best *eigen.Result
		bestTotal := 0.0
		for r := 0; r < sc.sq(2, 1); r++ {
			var res *eigen.Result
			total := bench.SecondsOnce(func() {
				var err error
				res, err = eigen.Solve(a, &eigen.Options{Mul: mul, BaseSize: sc.sq(48, 24)})
				if err != nil {
					panic(fmt.Sprintf("experiments: eigensolver failed: %v", err))
				}
			})
			if best == nil || total < bestTotal {
				best, bestTotal = res, total
			}
		}
		return best, bestTotal
	}

	gemmRes, gemmTotal := run(eigen.GemmMultiplier{Kernel: kern})
	strassenRes, strTotal := run(eigen.StrassenMultiplier{Config: configFor(kern)})

	var maxErr float64
	for i := range gemmRes.Values {
		if d := math.Abs(gemmRes.Values[i] - strassenRes.Values[i]); d > maxErr {
			maxErr = d
		}
	}

	rows := []Table6Row{
		{Engine: "DGEMM", TotalSec: gemmTotal, MMSec: gemmRes.Stats.MMTime.Seconds(), MMCalls: gemmRes.Stats.MMCount},
		{Engine: "DGEFMM", TotalSec: strTotal, MMSec: strassenRes.Stats.MMTime.Seconds(), MMCalls: strassenRes.Stats.MMCount, MaxValErr: maxErr},
	}

	fprintln(w, fmt.Sprintf("Table 6: ISDA eigensolver timings for a random %d×%d symmetric matrix", n, n))
	tb := bench.NewTable("", "using DGEMM", "using DGEFMM")
	tb.AddRow("Total time (s)", fmt.Sprintf("%.3f", gemmTotal), fmt.Sprintf("%.3f", strTotal))
	tb.AddRow("MM time (s)", fmt.Sprintf("%.3f", gemmRes.Stats.MMTime.Seconds()), fmt.Sprintf("%.3f", strassenRes.Stats.MMTime.Seconds()))
	tb.AddRow("MM calls", gemmRes.Stats.MMCount, strassenRes.Stats.MMCount)
	_, _ = tb.WriteTo(w)
	fprintln(w, fmt.Sprintf("MM-time saving: %.1f%% (paper: ≈20%% at order 1000); max eigenvalue disagreement %.2e",
		100*(1-strassenRes.Stats.MMTime.Seconds()/gemmRes.Stats.MMTime.Seconds()), maxErr))
	return rows
}
