package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// Table5Row is one (machine, order) measurement: DGEMM and DGEFMM times at
// the smallest order performing a given number of recursions.
type Table5Row struct {
	Machine    Machine
	Recursions int
	Order      int
	TGemm      float64
	TDgefmm    float64
}

// Table5 reproduces the paper's Table 5: times for DGEMM and DGEFMM at
// orders τ+1, 2τ+2, 4τ+4, ... (the smallest sizes performing 1, 2, 3, ...
// recursions), with α=1/3 and β=1/4 as in the paper. Two paper claims are
// checked downstream: DGEFMM's time grows by ≈7× per doubling, and at the
// largest size DGEFMM takes 0.66–0.78 of DGEMM's time.
func Table5(w io.Writer, maxRecursions int, sc Scale) []Table5Row {
	if maxRecursions == 0 {
		maxRecursions = sc.sq(3, 2)
	}
	alpha, beta := 1.0/3, 1.0/4
	var rows []Table5Row
	for _, mach := range Machines() {
		kern := kernelOf(mach.Kernel)
		tau := strassen.DefaultParams(mach.Kernel).Tau
		cfg := configFor(kern)
		rng := rngFor(233)
		for d := 1; d <= maxRecursions; d++ {
			order := (tau + 1) << uint(d-1) // τ+1, 2τ+2, 4τ+4, ...
			a := matrix.NewRandom(order, order, rng)
			b := matrix.NewRandom(order, order, rng)
			c := matrix.NewRandom(order, order, rng)
			tg := bench.Seconds(func() {
				blas.DgemmKernel(kern, blas.NoTrans, blas.NoTrans, order, order, order,
					alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
			})
			ts := bench.Seconds(func() {
				strassen.DGEFMM(cfg, blas.NoTrans, blas.NoTrans, order, order, order,
					alpha, a.Data, a.Stride, b.Data, b.Stride, beta, c.Data, c.Stride)
			})
			rows = append(rows, Table5Row{Machine: mach, Recursions: d, Order: order, TGemm: tg, TDgefmm: ts})
		}
	}

	fprintln(w, "Table 5: DGEMM vs DGEFMM at the smallest orders with 1..d recursions (α=1/3, β=1/4)")
	tb := bench.NewTable("machine", "recursions", "order", "DGEMM (s)", "DGEFMM (s)", "DGEFMM/DGEMM", "scaling vs prev")
	var prev *Table5Row
	for i := range rows {
		r := &rows[i]
		scaling := "-"
		if prev != nil && prev.Machine == r.Machine {
			scaling = fmt.Sprintf("%.2f× (theory 7×)", r.TDgefmm/prev.TDgefmm)
		}
		tb.AddRow(r.Machine.Paper, r.Recursions, r.Order,
			fmt.Sprintf("%.4g", r.TGemm), fmt.Sprintf("%.4g", r.TDgefmm),
			fmt.Sprintf("%.3f", r.TDgefmm/r.TGemm), scaling)
		prev = r
	}
	_, _ = tb.WriteTo(w)
	fprintln(w, "paper: scaling within 10% of 7× per doubling; largest-size ratio 0.66–0.78")
	return rows
}
