// Batched-DGEFMM throughput: the batch engine (worker pool + per-worker
// workspace arenas + shape plans) versus the naive usage it replaces — a
// sequential loop of independent Multiply calls, each paying its own
// workspace allocation and cutoff decisions. This is the production-scale
// batching item of the roadmap, quantified; cmd/dgefmm-bench -batch drives
// it and writes the BENCH_PR2.json artifact.

package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/batch"
	"repro/internal/blas"
	"repro/internal/matrix"
	"repro/internal/strassen"
)

// BatchResult is the machine-readable outcome of one batch-vs-loop
// comparison (the BENCH_PR2.json schema).
type BatchResult struct {
	// TakenAt stamps the run (RFC 3339).
	TakenAt string `json:"taken_at"`
	// Order is the square matrix order of every call; Calls the batch size.
	Order int `json:"order"`
	Calls int `json:"calls"`
	// Workers is the pool size used; GOMAXPROCS the machine parallelism the
	// run actually had (speedup beyond ~1 needs GOMAXPROCS > 1).
	Workers    int `json:"workers"`
	GOMAXPROCS int `json:"gomaxprocs"`
	// Kernel names the DGEMM kernel under the recursion.
	Kernel string `json:"kernel"`
	// Reps is the number of repetitions the times are the best of.
	Reps int `json:"reps"`
	// LoopSeconds is the best sequential-loop time for the whole batch;
	// BatchSeconds the best warm-pool time. Speedup = loop/batch.
	LoopSeconds  float64 `json:"loop_seconds"`
	BatchSeconds float64 `json:"batch_seconds"`
	Speedup      float64 `json:"speedup"`
	// LoopGFLOPS and BatchGFLOPS are the corresponding 2mnk·calls rates.
	LoopGFLOPS  float64 `json:"loop_gflops"`
	BatchGFLOPS float64 `json:"batch_gflops"`
	// PlanWords is the planned per-worker workspace requirement and
	// WorkspaceBound the paper's analytic Table 1 figure it sits under.
	PlanWords      int64 `json:"plan_words"`
	WorkspaceBound int64 `json:"workspace_bound"`
	// ArenaPeakWords is the largest observed per-worker arena peak, and
	// SteadyStateFreshAllocs the number of fresh workspace allocations the
	// arenas performed across all timed (post-warmup) batches — the
	// zero-steady-state-allocation claim, measured.
	ArenaPeakWords         int64 `json:"arena_peak_words"`
	SteadyStateFreshAllocs int64 `json:"steady_state_fresh_allocs"`
	ArenaReuses            int64 `json:"arena_reuses"`
}

// BatchBench times a batch of independent order×order DGEFMM calls (β = 0,
// shared A, distinct B_i and C_i) two ways: a sequential loop of Multiply
// calls with a plain configuration, and a warm batch.Pool. calls, order,
// workers and reps ≤ 0 select defaults (64 calls of order 512, GOMAXPROCS
// workers, 3 reps; quick scale shrinks to 16 calls of order 128).
func BatchBench(w io.Writer, calls, order, workers, reps int, kernelName string, sc Scale) BatchResult {
	if calls <= 0 {
		calls = sc.sq(64, 16)
	}
	if order <= 0 {
		order = sc.sq(512, 128)
	}
	if reps <= 0 {
		reps = 3
	}
	kern := kernelOf(kernelName)
	base := strassen.DefaultConfig(kern)

	rng := rngFor(2026)
	a := matrix.NewRandom(order, order, rng)
	bs := make([]*matrix.Dense, calls)
	cs := make([]*matrix.Dense, calls)
	for i := range bs {
		bs[i] = matrix.NewRandom(order, order, rng)
		cs[i] = matrix.NewDense(order, order)
	}
	mkCalls := func() []batch.Call {
		out := make([]batch.Call, calls)
		for i := range out {
			out[i] = batch.NewCall(cs[i], blas.NoTrans, blas.NoTrans, 1, a, bs[i], 0)
		}
		return out
	}

	// Baseline: the loop a caller writes without the pool — one Multiply
	// after another on a plain config, workspace allocated per call.
	loopBest := 0.0
	for r := 0; r < reps; r++ {
		start := time.Now()
		for i := 0; i < calls; i++ {
			strassen.Multiply(base, cs[i], blas.NoTrans, blas.NoTrans, 1, a, bs[i], 0)
		}
		if sec := time.Since(start).Seconds(); loopBest == 0 || sec < loopBest {
			loopBest = sec
		}
	}

	// Treatment: the batch pool, warmed by one untimed batch so plans and
	// arenas exist, then timed over the same repetitions.
	pool := batch.NewPool(&batch.Options{Workers: workers, Config: base})
	defer pool.Close()
	if err := pool.Execute(mkCalls()); err != nil {
		fprintln(w, "batch warmup failed: "+err.Error())
		return BatchResult{}
	}
	warm := pool.Stats()
	batchBest := 0.0
	for r := 0; r < reps; r++ {
		cb := mkCalls()
		start := time.Now()
		if err := pool.Execute(cb); err != nil {
			fprintln(w, "batch run failed: "+err.Error())
			return BatchResult{}
		}
		if sec := time.Since(start).Seconds(); batchBest == 0 || sec < batchBest {
			batchBest = sec
		}
	}
	steady := pool.Stats()

	flops := 2 * float64(order) * float64(order) * float64(order) * float64(calls)
	res := BatchResult{
		TakenAt:        time.Now().UTC().Format(time.RFC3339),
		Order:          order,
		Calls:          calls,
		Workers:        steady.Workers,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Kernel:         kernelName,
		Reps:           reps,
		LoopSeconds:    loopBest,
		BatchSeconds:   batchBest,
		Speedup:        loopBest / batchBest,
		LoopGFLOPS:     flops / loopBest / 1e9,
		BatchGFLOPS:    flops / batchBest / 1e9,
		PlanWords:      steady.PlanWords,
		WorkspaceBound: strassen.WorkspaceBound(base.Schedule, order, order, order, true),
	}
	for i, ar := range steady.Arenas {
		if ar.Peak > res.ArenaPeakWords {
			res.ArenaPeakWords = ar.Peak
		}
		res.SteadyStateFreshAllocs += ar.Allocs - warm.Arenas[i].Allocs
		res.ArenaReuses += ar.Reused
	}

	fprintln(w, fmt.Sprintf("batched DGEFMM: %d calls of order %d (%s kernel, %d workers, GOMAXPROCS=%d, best of %d)",
		calls, order, kernelName, res.Workers, res.GOMAXPROCS, reps))
	fprintln(w, fmt.Sprintf("  sequential loop: %8.3fs  %7.2f GFLOPS", res.LoopSeconds, res.LoopGFLOPS))
	fprintln(w, fmt.Sprintf("  batch pool:      %8.3fs  %7.2f GFLOPS  (speedup %.2fx)", res.BatchSeconds, res.BatchGFLOPS, res.Speedup))
	fprintln(w, fmt.Sprintf("  per-worker arena: peak %d words (plan %d, Table 1 bound %d = 2m²/3)",
		res.ArenaPeakWords, res.PlanWords, res.WorkspaceBound))
	fprintln(w, fmt.Sprintf("  steady state: %d fresh workspace allocations across %d timed batches, %d reuses",
		res.SteadyStateFreshAllocs, reps, res.ArenaReuses))
	return res
}

// WriteFile writes the comparison as indented JSON (BENCH_PR2.json).
func (r BatchResult) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
