package experiments

import (
	"fmt"
	"io"

	"repro/internal/bench"
	"repro/internal/cutoff"
	"repro/internal/strassen"
)

// Table4Row is one criteria-comparison experiment on one machine: the
// statistics of time(new criterion 15)/time(other criterion) over random
// problems on which the two disagree.
type Table4Row struct {
	Machine    Machine
	Comparison string
	Summary    bench.Summary
	Samples    int
}

// Table4 reproduces the paper's Table 4: for each machine, DGEFMM timed
// under the new hybrid criterion (15) against (11) and against (12), on
// random disagreement problems, reported as range/quartiles/average of the
// time ratios (ratios < 1 favor the new criterion). A third row restricts
// to problems with two dimensions large, as in the paper.
//
// Sample sizes are scaled down from the paper's 100/1000/100 to fit a
// single-CPU pure-Go budget; the statistics of interest (average below 1,
// always-improved two-large case) are stable at this size.
func Table4(w io.Writer, samples int, sc Scale) []Table4Row {
	if samples == 0 {
		samples = sc.sq(24, 6)
	}
	var rows []Table4Row
	for _, mach := range Machines() {
		kern := kernelOf(mach.Kernel)
		params := strassen.DefaultParams(mach.Kernel)
		hybrid := params.Hybrid()
		simple := strassen.Simple{Tau: params.Tau}
		scaled := strassen.Scaled{Tau: params.Tau}

		// Dimension ranges: the paper ran "from the smaller of τ/3 and τm,
		// τk, or τn ... to 2050" (1550 on the T3D). Scale the upper end to
		// this machine's budget.
		loDim := params.Tau / 3
		if params.TauM < loDim {
			loDim = params.TauM
		}
		hi := sc.sq(params.Tau*5, params.Tau*2)
		large := hi * 9 / 10
		lo := bench.Problem{M: loDim, K: loDim, N: loDim}
		hiP := bench.Problem{M: hi, K: hi, N: hi}

		addCmp := func(name string, other strassen.Criterion, n int, keep func(bench.Problem) bool) {
			cmp := cutoff.CompareCriteria(kern, hybrid, other, n, lo, hiP, keep, 229)
			if len(cmp.Ratios) == 0 {
				return
			}
			rows = append(rows, Table4Row{Machine: mach, Comparison: name, Summary: cmp.Summary, Samples: len(cmp.Ratios)})
		}
		addCmp("(15)/(11)", simple, samples, nil)
		addCmp("(15)/(12)", scaled, samples*2, nil)
		addCmp("(15)/(12), two dims large", scaled, samples, func(p bench.Problem) bool {
			nLarge := 0
			for _, d := range []int{p.M, p.K, p.N} {
				if d >= large {
					nLarge++
				}
			}
			return nLarge >= 2
		})
	}

	fprintln(w, "Table 4: comparison of cutoff criteria, ratios of DGEFMM time (15)/other (α=1, β=0)")
	tb := bench.NewTable("machine", "comparison", "n", "range", "quartiles", "average")
	for _, r := range rows {
		tb.AddRow(r.Machine.Paper, r.Comparison, r.Samples,
			fmt.Sprintf("%.4f–%.4f", r.Summary.Min, r.Summary.Max),
			fmt.Sprintf("%.4f;%.4f;%.4f", r.Summary.Q1, r.Summary.Median, r.Summary.Q3),
			fmt.Sprintf("%.4f", r.Summary.Mean))
	}
	_, _ = tb.WriteTo(w)
	fprintln(w, "paper averages: RS/6000 0.9529/1.0017/0.9888; C90 0.9375/0.9428/0.9098; T3D 0.9518/0.9777/0.9340")
	return rows
}
